// Distributed locking over the shared log (§5.1: FlexLog "can be used to
// implement fundamental primitives for systems such as distributed
// locking"): three workers serialize access to a critical section through
// a lock color; the log's total order is the fairness queue.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/lock"
	"flexlog/internal/types"
)

func main() {
	cluster, err := core.SimpleCluster(core.TestClusterConfig(), 1)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	var order []string
	var inCritical int
	var mu sync.Mutex

	var wg sync.WaitGroup
	for _, name := range []string{"alpha", "beta", "gamma"} {
		client, err := cluster.NewClient()
		if err != nil {
			log.Fatal(err)
		}
		l, err := lock.Create(client, 70, types.MasterColor, name)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(name string, l *lock.Lock) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			for round := 0; round < 2; round++ {
				if err := l.Acquire(ctx); err != nil {
					log.Fatalf("%s acquire: %v", name, err)
				}
				mu.Lock()
				inCritical++
				if inCritical != 1 {
					log.Fatalf("mutual exclusion violated: %d holders", inCritical)
				}
				order = append(order, fmt.Sprintf("%s#%d", name, round))
				inCritical--
				mu.Unlock()
				if err := l.Release(); err != nil {
					log.Fatalf("%s release: %v", name, err)
				}
			}
		}(name, l)
	}
	wg.Wait()
	fmt.Println("critical-section order (serialized by the lock color's log):")
	for i, entry := range order {
		fmt.Printf("  %d. %s\n", i+1, entry)
	}
	fmt.Println("mutual exclusion held across all entries")
}
