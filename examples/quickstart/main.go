// Quickstart: deploy an in-process FlexLog, append records, read them
// back, subscribe to the log, and trim it — the full Table 2 API.
package main

import (
	"fmt"
	"log"

	"flexlog/internal/core"
	"flexlog/internal/types"
)

func main() {
	// One master region, two shards of three replicas, plus a sequencer
	// group with two backups — a miniature of the paper's testbed.
	cluster, err := core.SimpleCluster(core.TestClusterConfig(), 2)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	client, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}

	// Append: records get globally ordered sequence numbers.
	var sns []types.SN
	for i := 1; i <= 5; i++ {
		sn, err := client.Append([][]byte{fmt.Appendf(nil, "event-%d", i)}, types.MasterColor)
		if err != nil {
			log.Fatal(err)
		}
		sns = append(sns, sn)
		fmt.Printf("appended event-%d at %v\n", i, sn)
	}

	// Read one record back by its sequence number.
	data, err := client.Read(sns[2], types.MasterColor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read %v -> %q\n", sns[2], data)

	// Subscribe: the totally ordered view across all shards.
	records, err := client.Subscribe(types.MasterColor, types.InvalidSN)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subscribe found %d records:\n", len(records))
	for _, r := range records {
		fmt.Printf("  %v %q\n", r.SN, r.Data)
	}

	// Trim: garbage-collect the prefix.
	head, tail, err := client.Trim(sns[1], types.MasterColor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trimmed up to %v; log bounds now [%v, %v]\n", sns[1], head, tail)

	// A multi-record batch gets a consecutive SN range.
	last, err := client.Append([][]byte{[]byte("batch-a"), []byte("batch-b")}, types.MasterColor)
	if err != nil {
		log.Fatal(err)
	}
	first := last - 1
	a, _ := client.Read(first, types.MasterColor)
	b, _ := client.Read(last, types.MasterColor)
	fmt.Printf("batch occupies [%v, %v]: %q, %q\n", first, last, a, b)
}
