// Quickstart: deploy an in-process FlexLog, append records, read them
// back, subscribe to the log, and trim it — the full Table 2 API, using
// the v2 client surface: functional options, context-first operations,
// async append futures, and typed *core.OpError errors.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/types"
)

func main() {
	// One master region, two shards of three replicas, plus a sequencer
	// group with two backups — a miniature of the paper's testbed.
	cluster, err := core.SimpleCluster(core.TestClusterConfig(), 2)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	// v2 construction: functional options on top of the cluster defaults.
	// WithBatching coalesces concurrent appends into single ordering
	// requests; a lone append pays at most the 100 µs linger.
	client, err := cluster.NewClient(
		core.WithTimeout(5*time.Second),
		core.WithBatching(core.DefaultBatchConfig()),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// AsyncAppend: fire all five, then collect — the futures resolve as
	// their (coalesced) batches commit.
	futs := make([]*core.AppendFuture, 5)
	for i := range futs {
		futs[i] = client.AsyncAppend([][]byte{fmt.Appendf(nil, "event-%d", i+1)}, types.MasterColor)
	}
	var sns []types.SN
	for i, f := range futs {
		sn, err := f.Wait(ctx)
		if err != nil {
			log.Fatal(err)
		}
		sns = append(sns, sn)
		fmt.Printf("appended event-%d at %v\n", i+1, sn)
	}

	// ReadCtx: read one record back by its sequence number.
	data, err := client.ReadCtx(ctx, sns[2], types.MasterColor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read %v -> %q\n", sns[2], data)

	// Errors are typed: a missing SN is an *OpError wrapping ErrNotFound.
	var maxSN types.SN
	for _, sn := range sns {
		if sn > maxSN {
			maxSN = sn
		}
	}
	if _, err := client.ReadCtx(ctx, maxSN+100, types.MasterColor); err != nil {
		var oe *core.OpError
		if errors.As(err, &oe) && errors.Is(err, core.ErrNotFound) {
			fmt.Printf("read of absent SN: op=%s color=%v -> not found (⊥)\n", oe.Op, oe.Color)
		} else {
			log.Fatal(err)
		}
	}

	// Subscribe: the totally ordered view across all shards.
	records, err := client.Subscribe(types.MasterColor, types.InvalidSN)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subscribe found %d records:\n", len(records))
	for _, r := range records {
		fmt.Printf("  %v %q\n", r.SN, r.Data)
	}

	// TrimCtx: garbage-collect the prefix.
	head, tail, err := client.TrimCtx(ctx, sns[1], types.MasterColor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trimmed up to %v; log bounds now [%v, %v]\n", sns[1], head, tail)

	// A multi-record append gets a consecutive SN range — the invariant
	// the batching layer leans on for per-caller demultiplexing.
	last, err := client.AppendCtx(ctx, [][]byte{[]byte("batch-a"), []byte("batch-b")}, types.MasterColor)
	if err != nil {
		log.Fatal(err)
	}
	first := last - 1
	a, _ := client.ReadCtx(ctx, first, types.MasterColor)
	b, _ := client.ReadCtx(ctx, last, types.MasterColor)
	fmt.Printf("batch occupies [%v, %v]: %q, %q\n", first, last, a, b)
}
