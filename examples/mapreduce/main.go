// Chained (map-reduce style) execution over FlexLog — the §5.1 causality
// recipe: "each mapper writes to a distinct colored log. Upon its
// completion, it appends a final record to a specific log, the black log.
// Reducers wait until all mappers append final records on the black log."
//
// The mappers count words in their input shard in parallel (no cross-
// mapper ordering needed: distinct colors), the black log acts as the
// phase barrier, and the reducer merges the per-mapper counts.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/types"
)

const (
	mapperColorBase types.ColorID = 100 // mapper i writes color base+i
	blackLog        types.ColorID = 99  // completion barrier
)

var corpus = []string{
	"the quick brown fox jumps over the lazy dog",
	"the dog barks and the fox runs into the quiet woods",
	"quick thinking wins the day says the quick fox",
}

func main() {
	cluster, err := core.TreeCluster(core.TestClusterConfig(), 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	boot, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	if err := boot.AddColor(blackLog, types.MasterColor); err != nil {
		log.Fatal(err)
	}
	for i := range corpus {
		if err := boot.AddColor(mapperColorBase+types.ColorID(i), types.MasterColor); err != nil {
			log.Fatal(err)
		}
	}

	// Map phase: parallel tasks, each on its own color — no ordering
	// between them (this is exactly the flexibility §3.1 argues for).
	for i, shard := range corpus {
		go func(i int, text string) {
			client, err := cluster.NewClient()
			if err != nil {
				log.Fatal(err)
			}
			counts := map[string]int{}
			for _, w := range strings.Fields(text) {
				counts[w]++
			}
			enc, _ := json.Marshal(counts)
			color := mapperColorBase + types.ColorID(i)
			if _, err := client.Append([][]byte{enc}, color); err != nil {
				log.Fatal(err)
			}
			// Completion record on the black log: the phase barrier.
			done := fmt.Appendf(nil, "mapper-%d-done", i)
			if _, err := client.Append([][]byte{done}, blackLog); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("mapper %d finished (%d distinct words)\n", i, len(counts))
		}(i, shard)
	}

	// Reduce phase: wait for all mappers on the black log, then merge.
	reducer, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		records, err := reducer.Subscribe(blackLog, types.InvalidSN)
		if err != nil {
			log.Fatal(err)
		}
		if len(records) == len(corpus) {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("mappers did not finish in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Println("barrier reached: all mappers done")

	total := map[string]int{}
	for i := range corpus {
		records, err := reducer.Subscribe(mapperColorBase+types.ColorID(i), types.InvalidSN)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range records {
			var counts map[string]int
			if err := json.Unmarshal(r.Data, &counts); err != nil {
				log.Fatal(err)
			}
			for w, n := range counts {
				total[w] += n
			}
		}
	}
	words := make([]string, 0, len(total))
	for w := range total {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool {
		if total[words[i]] != total[words[j]] {
			return total[words[i]] > total[words[j]]
		}
		return words[i] < words[j]
	})
	fmt.Println("top words:")
	for i, w := range words {
		if i == 5 {
			break
		}
		fmt.Printf("  %-8s %d\n", w, total[w])
	}
}
