// Durable object over the shared log (§3.2): a key-value "object" whose
// state is the fold of a colored log's events. Two independent handles
// observe the same linearizable history; a checkpoint compacts the log
// without losing state.
package main

import (
	"fmt"
	"log"

	"flexlog/internal/core"
	"flexlog/internal/kv"
	"flexlog/internal/types"
)

func main() {
	cluster, err := core.SimpleCluster(core.TestClusterConfig(), 1)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	c1, _ := cluster.NewClient()
	profile, err := kv.Create(c1, 60, types.MasterColor)
	if err != nil {
		log.Fatal(err)
	}

	// Function instance 1 mutates the object.
	profile.Put("name", "ada")
	profile.Put("plan", "free")
	profile.Put("plan", "pro") // upgrade
	profile.Delete("trial_until")

	// Function instance 2 (separate client) sees the same state — the
	// consensus machinery is hidden behind the Put/Get API.
	c2, _ := cluster.NewClient()
	view := kv.New(c2, 60)
	name, _ := view.Get("name")
	plan, _ := view.Get("plan")
	fmt.Printf("instance 2 reads: name=%s plan=%s\n", name, plan)

	// Compact: the event history folds into one snapshot record.
	if err := profile.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("checkpointed: history trimmed, state preserved")

	// A brand-new instance replays snapshot + tail only.
	c3, _ := cluster.NewClient()
	fresh := kv.New(c3, 60)
	snap, err := fresh.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fresh instance state after compaction: %v\n", snap)

	// Writes keep flowing after compaction.
	profile.Put("last_login", "2026-07-05")
	v, _ := fresh.Get("last_login")
	fmt.Printf("post-checkpoint write visible everywhere: last_login=%s\n", v)
}
