// Multi-tenancy on distinct colors (§5.1): two unrelated applications
// append concurrently to their own colored logs. FlexLog imposes no
// ordering relation between the tenants' records — each tenant gets its
// own totally ordered log, served by its own leaf sequencer — while a
// third application demonstrates the stronger end of the spectrum by
// using the master region's global total order.
package main

import (
	"fmt"
	"log"
	"sync"

	"flexlog/internal/core"
	"flexlog/internal/types"
)

func main() {
	// Two leaf regions (one per tenant) under the master region.
	cluster, err := core.TreeCluster(core.TestClusterConfig(), 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	// A shard on the master region for the globally ordered app.
	if _, err := cluster.AddShard(types.MasterColor); err != nil {
		log.Fatal(err)
	}

	const perTenant = 10
	var wg sync.WaitGroup
	for tenant := 1; tenant <= 2; tenant++ {
		wg.Add(1)
		go func(tenant int) {
			defer wg.Done()
			client, err := cluster.NewClient()
			if err != nil {
				log.Fatal(err)
			}
			color := types.ColorID(tenant)
			for i := 0; i < perTenant; i++ {
				rec := fmt.Appendf(nil, "tenant%d-update-%d", tenant, i)
				if _, err := client.Append([][]byte{rec}, color); err != nil {
					log.Fatal(err)
				}
			}
		}(tenant)
	}
	wg.Wait()

	observer, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	for tenant := 1; tenant <= 2; tenant++ {
		records, err := observer.Subscribe(types.ColorID(tenant), types.InvalidSN)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tenant %d log: %d records, SNs %v..%v — isolated and internally ordered\n",
			tenant, len(records), records[0].SN, records[len(records)-1].SN)
		for _, r := range records {
			if string(r.Data[:7]) != fmt.Sprintf("tenant%d", tenant) {
				log.Fatalf("tenant isolation violated: %q in tenant %d's log", r.Data, tenant)
			}
		}
	}

	// The sequencers of the two tenants never talked to each other: no
	// cross-tenant ordering exists, which is what lets both run at full
	// speed (the FlexLog-P configuration of §9.1).
	fmt.Println("no ordering relation exists between the two tenants' records (eventual consistency across colors)")

	// Strongest consistency when needed: the master region's log is
	// totally ordered across everything appended to it.
	sn1, _ := observer.Append([][]byte{[]byte("global-1")}, types.MasterColor)
	sn2, _ := observer.Append([][]byte{[]byte("global-2")}, types.MasterColor)
	fmt.Printf("master-region appends are totally ordered: %v < %v = %v\n", sn1, sn2, sn1 < sn2)
}
