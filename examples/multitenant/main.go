// Multi-tenancy in FlexLog has two layers (§5.1, DESIGN.md §13):
//
//   - Colors isolate ORDER: each tenant appends to its own colored log,
//     served by its own leaf sequencer, with no ordering relation (and no
//     coordination cost) across tenants.
//   - Tenant QoS isolates RESOURCES: every client carries a TenantID, and
//     replicas map it onto weighted-fair scheduling, token-bucket
//     admission and per-tenant accounting, so a flooding tenant cannot
//     starve its neighbors even on shared shards.
//
// This example runs both: two well-behaved tenants on their own colors,
// then a rate-capped aggressor flooding the shared master shard while a
// victim keeps appending, and finally a hedged read against a
// jitter-degraded replica.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/qos"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

const (
	tenantA   types.TenantID = 1 // color 1, weight 4
	tenantB   types.TenantID = 2 // color 2, weight 4
	tenantBad types.TenantID = 7 // the noisy neighbor: weight 1, tight rate cap
)

func main() {
	cfg := core.TestClusterConfig()
	// The QoS manifest: who gets how much. Weights set the DRR share on
	// the replica service lanes; Rate/Burst arm token-bucket admission
	// (tenants without a Rate — and the default tenant 0 — are never
	// throttled). Colors attribute sequencer work to tenants.
	// Rate is enforced at each replica's ingress, and a region striped
	// over k shards admits up to k x Rate cluster-wide — size the cap
	// against the shard fan-out, not the whole cluster.
	cfg.Tenants = []qos.TenantConfig{
		{ID: tenantA, Weight: 4, Colors: []types.ColorID{1}},
		{ID: tenantB, Weight: 4, Colors: []types.ColorID{2}},
		{ID: tenantBad, Weight: 1, Rate: 50, Burst: 5},
	}

	// Two leaf regions (one per well-behaved tenant) under the master.
	cluster, err := core.TreeCluster(cfg, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	if _, err := cluster.AddShard(types.MasterColor); err != nil {
		log.Fatal(err)
	}

	// ---- Layer 1: colors isolate order ----

	const perTenant = 10
	var wg sync.WaitGroup
	for _, tenant := range []types.TenantID{tenantA, tenantB} {
		wg.Add(1)
		go func(tenant types.TenantID) {
			defer wg.Done()
			// WithTenant stamps the identity on every request this client
			// sends; replicas and sequencers account it per tenant.
			client, err := cluster.NewClient(core.WithTenant(tenant))
			if err != nil {
				log.Fatal(err)
			}
			color := types.ColorID(tenant)
			for i := 0; i < perTenant; i++ {
				rec := fmt.Appendf(nil, "tenant%d-update-%d", tenant, i)
				if _, err := client.Append([][]byte{rec}, color); err != nil {
					log.Fatal(err)
				}
			}
		}(tenant)
	}
	wg.Wait()

	observer, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	for _, tenant := range []types.TenantID{tenantA, tenantB} {
		records, err := observer.Subscribe(types.ColorID(tenant), types.InvalidSN)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tenant %d log: %d records, SNs %v..%v — isolated and internally ordered\n",
			tenant, len(records), records[0].SN, records[len(records)-1].SN)
		for _, r := range records {
			if string(r.Data[:7]) != fmt.Sprintf("tenant%d", tenant) {
				log.Fatalf("tenant isolation violated: %q in tenant %d's log", r.Data, tenant)
			}
		}
	}
	fmt.Println("no ordering relation exists between the two tenants' records (eventual consistency across colors)")

	// ---- Layer 2: QoS isolates resources on a SHARED log ----

	// The aggressor floods the shared master log. Admission control
	// rejects appends beyond its 50 rec/s envelope with ErrThrottled and
	// a retry-after hint; the client retries internally honoring the
	// hint, so with a short deadline the typed error surfaces to the
	// caller.
	victim, err := cluster.NewClient(core.WithTenant(tenantA))
	if err != nil {
		log.Fatal(err)
	}

	window := 800 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), window)
	var mu sync.Mutex
	var throttled, flooded, victimOK int
	var hint time.Duration
	wg.Add(1)
	go func() { // the victim keeps working through the flood
		defer wg.Done()
		for ctx.Err() == nil {
			if _, err := victim.AppendCtx(ctx, [][]byte{[]byte("paying-customer")}, types.MasterColor); err == nil {
				victimOK++
			}
		}
	}()
	for i := 0; i < 4; i++ { // four concurrent flooders
		noisy, err := cluster.NewClient(core.WithTenant(tenantBad))
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				opCtx, opCancel := context.WithTimeout(ctx, 50*time.Millisecond)
				_, err := noisy.AppendCtx(opCtx, [][]byte{[]byte("flood")}, types.MasterColor)
				opCancel()
				mu.Lock()
				switch {
				case err == nil:
					flooded++
				case errors.Is(err, core.ErrThrottled):
					throttled++
					// The server says when capacity will exist again.
					var ra *core.RetryAfterError
					if errors.As(err, &ra) {
						hint = ra.After
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	cancel()
	fmt.Printf("aggressor over %v: %d admitted, %d throttled (last retry-after hint %v)\n",
		window, flooded, throttled, hint)
	fmt.Printf("victim completed %d appends on the SAME log while the flood ran\n", victimOK)
	if throttled == 0 {
		log.Fatal("admission control never engaged — QoS misconfigured")
	}

	// Every replica keeps per-tenant books (also exported through the
	// metrics registry and /debug/lanes).
	shard := cluster.Topology().ShardsInRegion(types.MasterColor)[0]
	if r := cluster.Replica(shard.Replicas[0]); r != nil {
		for _, ts := range r.TenantStats() {
			fmt.Printf("  replica %d books: tenant=%d appends=%d reads=%d throttled=%d shed=%d\n",
				shard.Replicas[0], ts.Tenant, ts.Appends, ts.Reads, ts.Throttled, ts.Shed)
		}
	}

	// ---- Hedged reads: tail tolerance for the read path ----

	// One replica per master shard turns slow (millisecond jitter, the
	// slow-replica nemesis). A hedging client clones a straggling read to
	// a second replica after 300us and takes the first answer — a round
	// hedges whenever its randomly chosen primary is the degraded one.
	hedger, err := cluster.NewClient(
		core.WithTenant(tenantA),
		core.WithHedging(core.HedgeConfig{Delay: 300 * time.Microsecond, BudgetPercent: 50}),
	)
	if err != nil {
		log.Fatal(err)
	}
	sn, err := hedger.Append([][]byte{[]byte("hedge-me")}, types.MasterColor)
	if err != nil {
		log.Fatal(err)
	}
	masterShards := cluster.Topology().ShardsInRegion(types.MasterColor)
	for _, sh := range masterShards {
		cluster.Network().SetNodeFaults(sh.Replicas[0], transport.FaultModel{JitterMax: 2 * time.Millisecond})
	}
	for i := 0; i < 50; i++ {
		if _, err := hedger.Read(sn, types.MasterColor); err != nil {
			log.Fatal(err)
		}
	}
	for _, sh := range masterShards {
		cluster.Network().SetNodeFaults(sh.Replicas[0], transport.FaultModel{})
	}
	fmt.Printf("50 reads against a jitter-degraded log: %d hedged to healthy siblings\n", hedger.HedgedReads())
}
