// Message queue between two serverless functions — the paper's Listing 1.
//
// Func1 appends payload data to a data log (the "yellow" color), creates a
// queue color (the "black" color), and enqueues the data's sequence number
// as a message. Func2 subscribes to the queue until the expected message
// appears, then reads the payload from the data log.
package main

import (
	"fmt"
	"log"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/faas"
	"flexlog/internal/types"
)

const (
	yellow types.ColorID = 11 // data log
	black  types.ColorID = 12 // message queue
)

// MessageQueue is the Listing 1 structure: a queue is just a colored log.
type MessageQueue struct {
	color  types.ColorID
	handle *core.Client
}

// Enqueue appends one message.
func (mq *MessageQueue) Enqueue(msg []byte) (types.SN, error) {
	return mq.handle.Append([][]byte{msg}, mq.color)
}

// Lookup subscribes and scans for the first message matching f (Listing
// 1's getIdx); it polls until found or the deadline passes.
func (mq *MessageQueue) Lookup(f func([]byte) bool, deadline time.Time) (types.Record, error) {
	for {
		records, err := mq.handle.Subscribe(mq.color, types.InvalidSN)
		if err != nil {
			return types.Record{}, err
		}
		for _, r := range records {
			if f(r.Data) {
				return r, nil
			}
		}
		if time.Now().After(deadline) {
			return types.Record{}, fmt.Errorf("message not found before deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func main() {
	cluster, err := core.SimpleCluster(core.TestClusterConfig(), 1)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	platform, err := faas.New(faas.Config{Workers: 2}, cluster)
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.AddColor(yellow, types.MasterColor); err != nil {
		log.Fatal(err)
	}

	// Func1: append data to yellow, create the black queue, enqueue the
	// data's SN (Listing 1 lines 21–26).
	platform.Deploy("func1", func(inv *faas.Invocation) ([]byte, error) {
		snY, err := inv.Log.Append([][]byte{inv.Input}, yellow)
		if err != nil {
			return nil, err
		}
		if err := inv.Log.AddColor(black, types.MasterColor); err != nil {
			return nil, err
		}
		mq := &MessageQueue{color: black, handle: inv.Log}
		msg := fmt.Appendf(nil, "YELLOW_READ_IDX=%d", uint64(snY))
		if _, err := mq.Enqueue(msg); err != nil {
			return nil, err
		}
		fmt.Printf("func1: data at yellow/%v, queued %q\n", snY, msg)
		return msg, nil
	})

	// Func2: poll the black queue for the expected message, then read the
	// yellow record it points to (Listing 1 lines 27–32).
	platform.Deploy("func2", func(inv *faas.Invocation) ([]byte, error) {
		mq := &MessageQueue{color: black, handle: inv.Log}
		rec, err := mq.Lookup(func(b []byte) bool {
			var sn uint64
			return len(b) > 0 && parseIdx(b, &sn)
		}, time.Now().Add(5*time.Second))
		if err != nil {
			return nil, err
		}
		var sn uint64
		parseIdx(rec.Data, &sn)
		fmt.Printf("func2: found %q at black/%v\n", rec.Data, rec.SN)
		return inv.Log.Read(types.SN(sn), yellow)
	})

	if _, err := platform.Invoke("tenant", "func1", []byte("the payload")); err != nil {
		log.Fatal(err)
	}
	out, err := platform.Invoke("tenant", "func2", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("func2 read the payload through the queue: %q\n", out)
}

func parseIdx(b []byte, sn *uint64) bool {
	n, err := fmt.Sscanf(string(b), "YELLOW_READ_IDX=%d", sn)
	return err == nil && n == 1
}
