// Atomic multi-color append (§6.4): a transfer between two account
// ledgers, each kept in its own colored log. The debit and the credit must
// become visible together — Algorithm 2 stages both record sets on the
// special (broker) color and the broker shard's replicas replay them into
// the target colors, all-or-nothing.
package main

import (
	"fmt"
	"log"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/types"
)

const (
	ledgerA types.ColorID = 21
	ledgerB types.ColorID = 22
)

func main() {
	cluster, err := core.SimpleCluster(core.TestClusterConfig(), 1)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	client, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range []types.ColorID{ledgerA, ledgerB} {
		if err := client.AddColor(c, types.MasterColor); err != nil {
			log.Fatal(err)
		}
	}

	// Opening balances.
	if _, err := client.Append([][]byte{[]byte("open A=100")}, ledgerA); err != nil {
		log.Fatal(err)
	}
	if _, err := client.Append([][]byte{[]byte("open B=40")}, ledgerB); err != nil {
		log.Fatal(err)
	}

	// The transfer: debit A and credit B atomically. The master region is
	// the special broker color known to all participants a priori (§6.4).
	err = client.MultiAppend(
		[][][]byte{
			{[]byte("debit A -25 (tx#1)")},
			{[]byte("credit B +25 (tx#1)")},
		},
		[]types.ColorID{ledgerA, ledgerB},
		types.MasterColor,
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("multi-color append acknowledged: both ledgers will contain tx#1")

	// The replays are asynchronous on the broker replicas; wait for both
	// ledgers to show the transfer.
	waitFor := func(color types.ColorID, want string) types.Record {
		deadline := time.Now().Add(5 * time.Second)
		for {
			records, err := client.Subscribe(color, types.InvalidSN)
			if err == nil {
				for _, r := range records {
					if string(r.Data) == want {
						return r
					}
				}
			}
			if time.Now().After(deadline) {
				log.Fatalf("ledger %v never received %q", color, want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	debit := waitFor(ledgerA, "debit A -25 (tx#1)")
	credit := waitFor(ledgerB, "credit B +25 (tx#1)")
	fmt.Printf("ledger A: %q at %v\n", debit.Data, debit.SN)
	fmt.Printf("ledger B: %q at %v\n", credit.Data, credit.SN)

	// Show the final ledgers.
	for _, c := range []types.ColorID{ledgerA, ledgerB} {
		records, err := client.Subscribe(c, types.InvalidSN)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v:\n", c)
		for _, r := range records {
			fmt.Printf("  %v %s\n", r.SN, r.Data)
		}
	}
	fmt.Println("either both appends of a multi-color append become visible or neither does (§7)")
}
