// Package ctrlplane is FlexLog's elastic reconfiguration control plane
// (DESIGN.md §15): online topology mutation — replica add with background
// catch-up, replica drain with cutover, shard split and merge, sequencer-
// tree growth — under live traffic, plus the autoscaler that issues such
// plans from declarative thresholds over the observability registry.
//
// Every mutation runs as a Plan: a small state machine
// (Pending → CatchingUp → Converging → Cutover → Done, with Failed and
// RolledBack exits) whose transitions are the protocol steps described in
// DESIGN.md §15. Correctness rests on three rules, enforced here and in
// the data plane:
//
//   - epoch fencing: every topology mutation bumps the layout version;
//     snapshots only apply forward, and clients re-resolve membership on
//     their retry ticks, so in-flight operations either land on current
//     members or surface a typed retryable rejection (ErrReconfiguring);
//   - catch-up before membership: a replica being added lives outside the
//     topology (unaddressable) until its donor lag reaches the promote
//     threshold; only then does it enter the shard and converge the final
//     tail through the ordinary §6.3 sync-phase;
//   - removal after flush: a replica being drained leaves the topology
//     FIRST (acked records are, by Alg. 1, committed on every member, so
//     survivors hold everything acked), then rejects new appends while its
//     pending orders flush, and is only stopped once they have.
//
// The package deliberately depends on replica/topology/obs but NOT on
// core: the deployment harness (core.Cluster) satisfies the small Cluster
// interface below, and tests drive the controller through it.
package ctrlplane

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"flexlog/internal/obs"
	"flexlog/internal/replica"
	"flexlog/internal/topology"
	"flexlog/internal/types"
)

// Cluster is the node-lifecycle surface the controller drives. core.Cluster
// implements it; tests may substitute fakes.
type Cluster interface {
	// Topology returns the shared layout the controller mutates.
	Topology() *topology.Topology
	// SpawnReplica creates a replica process for a shard without adding it
	// to the shard's membership.
	SpawnReplica(shard types.ShardID) (types.NodeID, error)
	// RemoveReplicaNode stops a replica process and releases its resources.
	RemoveReplicaNode(id types.NodeID) error
	// AddShard attaches a fresh shard (with its replicas) to a leaf color.
	AddShard(leaf types.ColorID) (types.ShardID, error)
	// AddRegion declares a color and spawns its sequencer group.
	AddRegion(color, parent types.ColorID) error
	// Replica returns a live replica handle by node id (nil if unknown).
	Replica(id types.NodeID) *replica.Replica
}

// PlanKind names a reconfiguration operation.
type PlanKind int

// Plan kinds.
const (
	KindAddReplica PlanKind = iota
	KindDrainReplica
	KindSplitShard
	KindMergeShard
	KindAddRegion
)

// String returns the CLI-facing kind label (e.g. "add-replica").
func (k PlanKind) String() string {
	switch k {
	case KindAddReplica:
		return "add-replica"
	case KindDrainReplica:
		return "drain-replica"
	case KindSplitShard:
		return "split-shard"
	case KindMergeShard:
		return "merge-shard"
	case KindAddRegion:
		return "add-region"
	default:
		return "unknown"
	}
}

// PlanState is a plan's position in the reconfiguration state machine.
type PlanState int

// Plan states. Terminal states are StateDone, StateFailed, StateRolledBack.
const (
	StatePending    PlanState = iota
	StateCatchingUp           // joiner pulling history from its donor
	StateConverging           // promoted joiner running the sync-phase tail
	StateCutover              // membership changed; flushing / migrating
	StateDone
	StateFailed
	StateRolledBack
)

// String returns the state label shown in /debug/topology plan history.
func (s PlanState) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateCatchingUp:
		return "catching-up"
	case StateConverging:
		return "converging"
	case StateCutover:
		return "cutover"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateRolledBack:
		return "rolled-back"
	default:
		return "unknown"
	}
}

// Terminal reports whether the state machine has exited.
func (s PlanState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateRolledBack
}

// Plan is one reconfiguration operation and its progress. Fields are
// snapshots — read them through Controller.Plans or Controller.Plan.
type Plan struct {
	ID     uint64
	Kind   PlanKind
	Shard  types.ShardID // subject shard (add/drain/merge source)
	Target types.ShardID // merge destination / split result
	Color  types.ColorID // leaf (split) or new region color (add-region)
	Parent types.ColorID // parent region (add-region)
	Node   types.NodeID  // replica added or drained
	Donor  types.NodeID  // catch-up donor (add-replica)
	State  PlanState
	Err    string // failure cause in terminal Failed/RolledBack states
	Start  time.Time
	End    time.Time // zero until terminal

	abort chan struct{}
}

// String renders one plan-history line: id, kind, the ids it touched,
// its state, and the failure cause if it exited Failed/RolledBack.
func (p *Plan) String() string {
	s := fmt.Sprintf("plan %d %s", p.ID, p.Kind)
	switch p.Kind {
	case KindAddReplica:
		s += fmt.Sprintf(" shard=%d node=%d donor=%d", p.Shard, p.Node, p.Donor)
	case KindDrainReplica:
		s += fmt.Sprintf(" shard=%d node=%d", p.Shard, p.Node)
	case KindSplitShard:
		s += fmt.Sprintf(" leaf=%d new=%d", p.Color, p.Target)
	case KindMergeShard:
		s += fmt.Sprintf(" src=%d dst=%d", p.Shard, p.Target)
	case KindAddRegion:
		s += fmt.Sprintf(" color=%d parent=%d shard=%d", p.Color, p.Parent, p.Target)
	}
	s += fmt.Sprintf(" state=%s", p.State)
	if p.Err != "" {
		s += fmt.Sprintf(" err=%q", p.Err)
	}
	return s
}

// Config parameterizes a Controller.
type Config struct {
	// PollInterval is the progress-polling cadence (catch-up lag, drain
	// flush, sync convergence); 0 uses 2ms.
	PollInterval time.Duration
	// PromoteLag is the catch-up lag (records behind the donor) at or
	// below which a joiner is promoted; the promotion sync-phase converges
	// the remainder. 0 uses 256.
	PromoteLag uint64
	// CatchupTimeout bounds StateCatchingUp: a joiner that cannot reach
	// PromoteLag within it is rolled back (stopped and removed). 0 uses 30s.
	CatchupTimeout time.Duration
	// DrainTimeout bounds the pending-order flush of a drain; on expiry the
	// node is removed anyway (acked data is committed on the survivors).
	// 0 uses 10s.
	DrainTimeout time.Duration
	// ConvergeTimeout bounds the promotion sync-phase. 0 uses 30s.
	ConvergeTimeout time.Duration
	// Obs, when set, publishes the flexlog_ctrl_* metric families.
	Obs *obs.Registry
}

// Controller owns reconfiguration plans for one cluster. All methods are
// safe for concurrent use; each blocking operation drives its own plan.
type Controller struct {
	cl  Cluster
	cfg Config

	mu     sync.Mutex
	nextID uint64
	plans  []*Plan
}

// ErrAborted is the terminal cause of a plan cancelled via Abort.
var ErrAborted = errors.New("ctrlplane: plan aborted")

// New creates a controller for the cluster.
func New(cl Cluster, cfg Config) *Controller {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 2 * time.Millisecond
	}
	if cfg.PromoteLag == 0 {
		cfg.PromoteLag = 256
	}
	if cfg.CatchupTimeout <= 0 {
		cfg.CatchupTimeout = 30 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.ConvergeTimeout <= 0 {
		cfg.ConvergeTimeout = 30 * time.Second
	}
	c := &Controller{cl: cl, cfg: cfg}
	c.initObs()
	return c
}

// Cluster returns the deployment surface this controller drives.
func (c *Controller) Cluster() Cluster { return c.cl }

// Plans returns a snapshot of every plan, oldest first.
func (c *Controller) Plans() []Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Plan, len(c.plans))
	for i, p := range c.plans {
		out[i] = *p
	}
	return out
}

// Plan returns a snapshot of one plan by id.
func (c *Controller) Plan(id uint64) (Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.plans {
		if p.ID == id {
			return *p, true
		}
	}
	return Plan{}, false
}

// Abort cancels an in-flight plan: the driving goroutine observes the
// abort at its next poll tick and rolls back what it can (a joining
// replica is stopped and removed; later stages finish their step first).
// The operator surface for a stuck plan — see the OPERATIONS.md runbook.
func (c *Controller) Abort(id uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.plans {
		if p.ID != id {
			continue
		}
		if p.State.Terminal() {
			return fmt.Errorf("ctrlplane: plan %d already %s", id, p.State)
		}
		select {
		case <-p.abort:
		default:
			close(p.abort)
		}
		return nil
	}
	return fmt.Errorf("ctrlplane: unknown plan %d", id)
}

// newPlan registers a plan in StatePending.
func (c *Controller) newPlan(kind PlanKind) *Plan {
	c.mu.Lock()
	c.nextID++
	p := &Plan{ID: c.nextID, Kind: kind, State: StatePending, Start: time.Now(), abort: make(chan struct{})}
	c.plans = append(c.plans, p)
	c.mu.Unlock()
	c.countStart(kind)
	return p
}

// setState advances a plan's visible state under the controller lock.
func (c *Controller) setState(p *Plan, s PlanState) {
	c.mu.Lock()
	p.State = s
	if s.Terminal() {
		p.End = time.Now()
	}
	c.mu.Unlock()
	if s == StateDone {
		c.countDone()
	}
}

// fail moves a plan to a terminal failure state with its cause.
func (c *Controller) fail(p *Plan, state PlanState, err error) error {
	c.mu.Lock()
	p.State = state
	p.Err = err.Error()
	p.End = time.Now()
	c.mu.Unlock()
	c.countFailed()
	return err
}

// aborted reports whether the plan was cancelled.
func (p *Plan) aborted() bool {
	select {
	case <-p.abort:
		return true
	default:
		return false
	}
}

// poll waits one tick, reporting false when the plan was aborted.
func (c *Controller) poll(p *Plan) bool {
	time.Sleep(c.cfg.PollInterval)
	return !p.aborted()
}

// ---- Replica add (spawn → catch-up → promote → converge) ----

// AddReplica grows a shard by one replica under live traffic: spawn the
// node outside the topology, background catch-up from a donor until the
// lag is within PromoteLag, then add it to the membership and converge the
// tail with a sync-phase. Blocks until the plan is terminal.
func (c *Controller) AddReplica(shard types.ShardID) (Plan, error) {
	p := c.newPlan(KindAddReplica)
	p.Shard = shard
	topo := c.cl.Topology()
	sh, err := topo.Shard(shard)
	if err != nil {
		return *p, c.fail(p, StateFailed, err)
	}
	donor, ok := c.pickDonor(sh.Replicas)
	if !ok {
		return *p, c.fail(p, StateFailed, fmt.Errorf("ctrlplane: shard %d has no operational donor", shard))
	}
	p.Donor = donor
	id, err := c.cl.SpawnReplica(shard)
	if err != nil {
		return *p, c.fail(p, StateFailed, err)
	}
	p.Node = id
	rep := c.cl.Replica(id)
	if rep == nil {
		return *p, c.fail(p, StateFailed, fmt.Errorf("ctrlplane: spawned replica %d not found", id))
	}

	// Catch-up: the joiner pulls history in bounded rounds while the shard
	// keeps serving. Stuck transfers roll back — the joiner never entered
	// the topology, so rollback is just stopping the process.
	c.setState(p, StateCatchingUp)
	rep.StartJoin(donor)
	deadline := time.Now().Add(c.cfg.CatchupTimeout)
	for rep.JoinLag() > c.cfg.PromoteLag {
		if time.Now().After(deadline) {
			_ = c.cl.RemoveReplicaNode(id)
			return *p, c.fail(p, StateRolledBack,
				fmt.Errorf("ctrlplane: catch-up stuck (lag %d after %v)", rep.JoinLag(), c.cfg.CatchupTimeout))
		}
		if !c.poll(p) {
			_ = c.cl.RemoveReplicaNode(id)
			return *p, c.fail(p, StateRolledBack, ErrAborted)
		}
	}

	// Promote: enter the membership (version bump fences stale snapshots),
	// then one ordinary §6.3 sync-phase converges the in-flight tail. The
	// shard pause is proportional to the tail, not the log.
	c.setState(p, StateConverging)
	if err := topo.AddReplicaToShard(shard, id); err != nil {
		_ = c.cl.RemoveReplicaNode(id)
		return *p, c.fail(p, StateRolledBack, err)
	}
	rep.Promote()
	deadline = time.Now().Add(c.cfg.ConvergeTimeout)
	for rep.Mode() != replica.ModeOperational {
		if time.Now().After(deadline) {
			return *p, c.fail(p, StateFailed,
				fmt.Errorf("ctrlplane: promotion sync-phase did not converge within %v", c.cfg.ConvergeTimeout))
		}
		if !c.poll(p) {
			return *p, c.fail(p, StateFailed, ErrAborted)
		}
	}
	c.setState(p, StateDone)
	return *p, nil
}

// pickDonor chooses the first operational replica as catch-up donor.
func (c *Controller) pickDonor(ids []types.NodeID) (types.NodeID, bool) {
	for _, id := range ids {
		if r := c.cl.Replica(id); r != nil && r.Mode() == replica.ModeOperational {
			return id, true
		}
	}
	return 0, false
}

// ---- Replica drain (membership removal → flush → stop) ----

// DrainReplica removes one replica from a shard under live traffic: the
// topology drops it first (clients re-resolve away from it; Alg. 1
// guarantees survivors hold everything acked), then the node rejects new
// appends while its pending orders flush, and is stopped once they have
// (or DrainTimeout expires). Pass node 0 to drain the highest-id replica.
// Blocks until the plan is terminal.
func (c *Controller) DrainReplica(shard types.ShardID, node types.NodeID) (Plan, error) {
	p := c.newPlan(KindDrainReplica)
	p.Shard = shard
	topo := c.cl.Topology()
	if node == 0 {
		sh, err := topo.Shard(shard)
		if err != nil {
			return *p, c.fail(p, StateFailed, err)
		}
		for _, id := range sh.Replicas {
			if id > node {
				node = id
			}
		}
	}
	p.Node = node
	rep := c.cl.Replica(node)
	if rep == nil {
		return *p, c.fail(p, StateFailed, fmt.Errorf("ctrlplane: unknown replica %d", node))
	}
	if err := topo.RemoveReplicaFromShard(shard, node); err != nil {
		return *p, c.fail(p, StateFailed, err)
	}

	c.setState(p, StateCutover)
	rep.Drain()
	deadline := time.Now().Add(c.cfg.DrainTimeout)
	for rep.PendingOrders() > 0 && time.Now().Before(deadline) {
		if !c.poll(p) {
			break // abort: stop now; acked data is safe on the survivors
		}
	}
	if err := c.cl.RemoveReplicaNode(node); err != nil {
		return *p, c.fail(p, StateFailed, err)
	}
	c.setState(p, StateDone)
	return *p, nil
}

// ---- Shard split / merge ----

// SplitShard adds a fresh shard to a leaf color under live traffic. No
// record migration is needed: reads and subscribes consult every shard of
// a color, so the new shard simply starts absorbing new appends — the
// FlexLog analogue of splitting a partition. Blocks until terminal.
func (c *Controller) SplitShard(leaf types.ColorID) (Plan, error) {
	p := c.newPlan(KindSplitShard)
	p.Color = leaf
	c.setState(p, StateCutover)
	id, err := c.cl.AddShard(leaf)
	if err != nil {
		return *p, c.fail(p, StateFailed, err)
	}
	c.mu.Lock()
	p.Target = id
	c.mu.Unlock()
	c.setState(p, StateDone)
	return *p, nil
}

// MergeShard folds shard src into dst (same leaf): src replicas drain
// (rejecting new appends, flushing pending orders), their committed
// records are migrated into every dst replica at their authoritative SNs
// (idempotent — the SN space is per color, assigned once), then src leaves
// the topology and its replicas stop. Reads of migrated records are served
// by dst from then on. Blocks until terminal.
func (c *Controller) MergeShard(src, dst types.ShardID) (Plan, error) {
	p := c.newPlan(KindMergeShard)
	p.Shard, p.Target = src, dst
	topo := c.cl.Topology()
	srcSh, err := topo.Shard(src)
	if err != nil {
		return *p, c.fail(p, StateFailed, err)
	}
	dstSh, err := topo.Shard(dst)
	if err != nil {
		return *p, c.fail(p, StateFailed, err)
	}
	if src == dst || srcSh.Leaf != dstSh.Leaf {
		return *p, c.fail(p, StateFailed,
			fmt.Errorf("ctrlplane: merge requires distinct shards of one leaf (src leaf %d, dst leaf %d)", srcSh.Leaf, dstSh.Leaf))
	}

	// Quiesce src: every replica drains, so no new appends land there while
	// we migrate. Src stays in the topology — its records remain readable
	// throughout.
	c.setState(p, StateCutover)
	var srcReps []*replica.Replica
	for _, id := range srcSh.Replicas {
		rep := c.cl.Replica(id)
		if rep == nil {
			return *p, c.fail(p, StateFailed, fmt.Errorf("ctrlplane: unknown replica %d", id))
		}
		srcReps = append(srcReps, rep)
	}
	for _, rep := range srcReps {
		rep.Drain()
	}
	deadline := time.Now().Add(c.cfg.DrainTimeout)
	for pendingTotal(srcReps) > 0 && time.Now().Before(deadline) {
		if !c.poll(p) {
			return *p, c.fail(p, StateFailed, ErrAborted)
		}
	}

	// Migrate: pull every committed src record into every dst replica.
	donor := srcReps[0]
	var dstReps []*replica.Replica
	for _, id := range dstSh.Replicas {
		rep := c.cl.Replica(id)
		if rep == nil {
			return *p, c.fail(p, StateFailed, fmt.Errorf("ctrlplane: unknown replica %d", id))
		}
		dstReps = append(dstReps, rep)
	}
	if err := migrateRecords(donor, dstReps); err != nil {
		return *p, c.fail(p, StateFailed, err)
	}

	// Cut src out of the layout (version bump → clients re-resolve), then
	// stop its processes.
	if err := topo.RemoveShard(src); err != nil {
		return *p, c.fail(p, StateFailed, err)
	}
	for _, id := range srcSh.Replicas {
		if err := c.cl.RemoveReplicaNode(id); err != nil {
			return *p, c.fail(p, StateFailed, err)
		}
	}
	c.setState(p, StateDone)
	return *p, nil
}

// pendingTotal sums the un-flushed pending orders across replicas.
func pendingTotal(reps []*replica.Replica) int {
	total := 0
	for _, r := range reps {
		total += r.PendingOrders()
	}
	return total
}

// migrateRecords copies every committed record the donor holds into every
// destination replica at its authoritative SN. Ingestion is idempotent, so
// a partially-failed migration can simply be re-run.
func migrateRecords(donor *replica.Replica, dsts []*replica.Replica) error {
	recs, err := donor.CommittedRecords()
	if err != nil {
		return fmt.Errorf("ctrlplane: scanning merge donor: %w", err)
	}
	for color, wire := range recs {
		for _, d := range dsts {
			d.IngestCommitted(color, wire)
		}
	}
	return nil
}

// ---- Sequencer-tree growth ----

// AddRegion grows the ordering tree with a new colored region under
// parent, with one shard attached so the color is immediately appendable.
// Blocks until terminal.
func (c *Controller) AddRegion(color, parent types.ColorID) (Plan, error) {
	p := c.newPlan(KindAddRegion)
	p.Color, p.Parent = color, parent
	c.setState(p, StateCutover)
	if err := c.cl.AddRegion(color, parent); err != nil {
		return *p, c.fail(p, StateFailed, err)
	}
	shard, err := c.cl.AddShard(color)
	if err != nil {
		return *p, c.fail(p, StateFailed, err)
	}
	c.mu.Lock()
	p.Target = shard
	c.mu.Unlock()
	c.setState(p, StateDone)
	return *p, nil
}

// ---- Observability ----

// initObs publishes the flexlog_ctrl_* families (OPERATIONS.md §2.10).
func (c *Controller) initObs() {
	reg := c.cfg.Obs
	if reg == nil {
		return
	}
	reg.GaugeFunc("flexlog_ctrl_plans_active",
		"Reconfiguration plans currently in flight.", nil,
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			n := 0
			for _, p := range c.plans {
				if !p.State.Terminal() {
					n++
				}
			}
			return float64(n)
		})
}

func (c *Controller) countStart(kind PlanKind) {
	if c.cfg.Obs == nil {
		return
	}
	c.cfg.Obs.Counter("flexlog_ctrl_plans_total",
		"Reconfiguration plans started, per kind.",
		obs.Labels{"kind": kind.String()}).Inc()
}

func (c *Controller) countDone() {
	if c.cfg.Obs == nil {
		return
	}
	c.cfg.Obs.Counter("flexlog_ctrl_plans_done_total",
		"Reconfiguration plans completed successfully.", nil).Inc()
}

func (c *Controller) countFailed() {
	if c.cfg.Obs == nil {
		return
	}
	c.cfg.Obs.Counter("flexlog_ctrl_plans_failed_total",
		"Reconfiguration plans that failed or were rolled back.", nil).Inc()
}
