package ctrlplane

import (
	"fmt"
	"net/http"
	"sort"

	"flexlog/internal/replica"
)

// TopologyHandler serves /debug/topology: the current layout (version,
// sequencer tree, shards with per-replica mode and reconfiguration lag)
// followed by the plan history — the first page of the reconfiguration
// runbook (OPERATIONS.md). Mount it via obs.MuxConfig.Extra.
func TopologyHandler(c *Controller) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		topo := c.cl.Topology()
		snap := topo.Snapshot()
		fmt.Fprintf(w, "# topology version %d\n\n", snap.Version)

		fmt.Fprintf(w, "%-8s %-8s %-8s %-8s %s\n", "COLOR", "PARENT", "ROOT", "LEADER", "MEMBERS")
		sort.Slice(snap.Regions, func(i, j int) bool { return snap.Regions[i].Region < snap.Regions[j].Region })
		for _, r := range snap.Regions {
			parent := "-"
			if !r.IsRoot {
				parent = fmt.Sprintf("%d", r.Parent)
			}
			fmt.Fprintf(w, "%-8d %-8s %-8v %-8d %v\n", r.Region, parent, r.IsRoot, r.Leader, r.Members)
		}

		fmt.Fprintf(w, "\n%-8s %-8s %s\n", "SHARD", "LEAF", "REPLICAS (id:mode[:lag])")
		sort.Slice(snap.Shards, func(i, j int) bool { return snap.Shards[i].ID < snap.Shards[j].ID })
		for _, sh := range snap.Shards {
			fmt.Fprintf(w, "%-8d %-8d ", sh.ID, sh.Leaf)
			for i, id := range sh.Replicas {
				if i > 0 {
					fmt.Fprint(w, " ")
				}
				rep := c.cl.Replica(id)
				if rep == nil {
					// Not locally inspectable: removed from the in-process
					// cluster, or (on a server) a remote process.
					fmt.Fprintf(w, "%d:-", id)
					continue
				}
				mode := rep.Mode()
				fmt.Fprintf(w, "%d:%s", id, mode)
				switch mode {
				case replica.ModeJoining:
					fmt.Fprintf(w, ":lag=%d", rep.JoinLag())
				case replica.ModeDraining:
					fmt.Fprintf(w, ":pending=%d", rep.PendingOrders())
				}
			}
			fmt.Fprintln(w)
		}

		plans := c.Plans()
		fmt.Fprintf(w, "\n# %d reconfiguration plans (oldest first)\n", len(plans))
		for i := range plans {
			fmt.Fprintln(w, plans[i].String())
		}
	})
}
