package ctrlplane

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"time"

	"flexlog/internal/obs"
	"flexlog/internal/topology"
	"flexlog/internal/types"
)

// Policy is the declarative autoscaling contract (DESIGN.md §15.4): the
// thresholds the autoscaler compares against the observability registry
// and the caps that bound what it may do about them.
type Policy struct {
	// MaxPendingOrders: when any replica's un-flushed order backlog
	// (flexlog_replica_pending_orders) exceeds it, the owning shard is
	// write-saturated — split its leaf, or add a replica when the leaf is
	// at its shard cap. 0 disables the write trigger.
	MaxPendingOrders float64
	// MaxHeldReads: when any replica holds more parked reads
	// (flexlog_replica_held_reads) than it, the shard lacks read capacity —
	// add a replica. 0 disables the read trigger.
	MaxHeldReads float64
	// MaxShardsPerLeaf caps split-shard actions per leaf color; 0 uses 4.
	MaxShardsPerLeaf int
	// MaxReplicasPerShard caps add-replica actions per shard; 0 uses 5.
	MaxReplicasPerShard int
	// Cooldown is the minimum gap between executed actions, letting the
	// previous reconfiguration absorb load before re-measuring; 0 uses 30s.
	Cooldown time.Duration
	// Advisory suppresses execution: breaches are recorded as Advice (and
	// in flexlog_ctrl_autoscale_actions_total) but no plan is issued.
	Advisory bool
}

func (p Policy) withDefaults() Policy {
	if p.MaxShardsPerLeaf == 0 {
		p.MaxShardsPerLeaf = 4
	}
	if p.MaxReplicasPerShard == 0 {
		p.MaxReplicasPerShard = 5
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 30 * time.Second
	}
	return p
}

// Advice is one autoscaler conclusion: the action a threshold breach
// calls for, whether or not it was executed.
type Advice struct {
	Time   time.Time
	Kind   PlanKind
	Shard  types.ShardID
	Leaf   types.ColorID
	Reason string
	// Executed is false in advisory mode, during cooldown, or when the
	// issued plan failed.
	Executed bool
}

// Autoscaler polls the observability registry against a Policy and issues
// reconfiguration plans through a Controller. One evaluation produces at
// most one action — reconfigurations are deliberately serialized so each
// can settle before the next measurement.
type Autoscaler struct {
	ctrl   *Controller
	reg    *obs.Registry
	policy Policy
	every  time.Duration

	mu     sync.Mutex
	last   time.Time // last executed action (cooldown anchor)
	advice []Advice

	stop chan struct{}
	done chan struct{}
}

// NewAutoscaler builds an autoscaler over the registry the cluster's
// replicas publish into. interval 0 polls every second.
func NewAutoscaler(ctrl *Controller, reg *obs.Registry, p Policy, interval time.Duration) *Autoscaler {
	if interval <= 0 {
		interval = time.Second
	}
	a := &Autoscaler{ctrl: ctrl, reg: reg, policy: p.withDefaults(), every: interval}
	return a
}

// Start begins the polling loop; Stop (or ctx cancellation) ends it.
func (a *Autoscaler) Start(ctx context.Context) {
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	go func() {
		defer close(a.done)
		t := time.NewTicker(a.every)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-a.stop:
				return
			case <-t.C:
				a.Evaluate()
			}
		}
	}()
}

// Stop halts the polling loop and waits for it to exit.
func (a *Autoscaler) Stop() {
	if a.stop == nil {
		return
	}
	select {
	case <-a.stop:
	default:
		close(a.stop)
	}
	<-a.done
}

// Advice returns every conclusion reached so far, oldest first.
func (a *Autoscaler) Advice() []Advice {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Advice, len(a.advice))
	copy(out, a.advice)
	return out
}

// Evaluate runs one policy evaluation immediately (the ticker calls this;
// tests may too). It returns the advice produced, if any.
func (a *Autoscaler) Evaluate() *Advice {
	a.countEval()
	adv := a.evaluate()
	if adv == nil {
		return nil
	}
	a.countAction()
	a.mu.Lock()
	a.advice = append(a.advice, *adv)
	a.mu.Unlock()
	return adv
}

// evaluate measures, thresholds, and (unless advisory/cooling down)
// executes at most one action.
func (a *Autoscaler) evaluate() *Advice {
	topo := a.ctrl.Cluster().Topology()

	// Write pressure: the hottest replica's order backlog, attributed to
	// its shard through the node label.
	if a.policy.MaxPendingOrders > 0 {
		node, v := hottestNode(a.reg.Samples("flexlog_replica_pending_orders"))
		if v > a.policy.MaxPendingOrders {
			if sh, ok := topo.ShardOfReplica(node); ok {
				return a.act(a.writeAction(sh),
					"pending orders "+strconv.FormatFloat(v, 'f', 0, 64)+
						" > "+strconv.FormatFloat(a.policy.MaxPendingOrders, 'f', 0, 64))
			}
		}
	}

	// Read pressure: parked reads signal too few replicas serving the
	// shard's read fan-in — widen it.
	if a.policy.MaxHeldReads > 0 {
		node, v := hottestNode(a.reg.Samples("flexlog_replica_held_reads"))
		if v > a.policy.MaxHeldReads {
			if sh, ok := topo.ShardOfReplica(node); ok {
				adv := Advice{Kind: KindAddReplica, Shard: sh.ID, Leaf: sh.Leaf}
				if len(sh.Replicas) >= a.policy.MaxReplicasPerShard {
					return nil // at cap; nothing sane to do
				}
				return a.act(adv,
					"held reads "+strconv.FormatFloat(v, 'f', 0, 64)+
						" > "+strconv.FormatFloat(a.policy.MaxHeldReads, 'f', 0, 64))
			}
		}
	}
	return nil
}

// writeAction maps a write-saturated shard to an action under the caps:
// split the leaf while below the shard cap (new shards absorb new
// appends), otherwise widen the shard itself.
func (a *Autoscaler) writeAction(sh topology.ShardInfo) Advice {
	topo := a.ctrl.Cluster().Topology()
	if len(topo.ShardsInRegion(sh.Leaf)) < a.policy.MaxShardsPerLeaf {
		return Advice{Kind: KindSplitShard, Shard: sh.ID, Leaf: sh.Leaf}
	}
	return Advice{Kind: KindAddReplica, Shard: sh.ID, Leaf: sh.Leaf}
}

// act finalizes an advice: stamp it, honor advisory mode and cooldown,
// execute otherwise.
func (a *Autoscaler) act(adv Advice, reason string) *Advice {
	adv.Time = time.Now()
	adv.Reason = reason
	if a.policy.Advisory {
		return &adv
	}
	a.mu.Lock()
	cooling := time.Since(a.last) < a.policy.Cooldown && !a.last.IsZero()
	if !cooling {
		a.last = time.Now()
	}
	a.mu.Unlock()
	if cooling {
		return nil // re-measure after the previous action settles
	}
	var err error
	switch adv.Kind {
	case KindSplitShard:
		_, err = a.ctrl.SplitShard(adv.Leaf)
	case KindAddReplica:
		_, err = a.ctrl.AddReplica(adv.Shard)
	}
	adv.Executed = err == nil
	return &adv
}

// hottestNode picks the sample with the largest value and parses its node
// label. Returns node 0 when the family is empty.
func hottestNode(samples []obs.Sample) (types.NodeID, float64) {
	var (
		node types.NodeID
		max  float64
	)
	for _, s := range samples {
		if s.Value > max {
			if id, ok := parseNodeLabel(s.Labels); ok {
				node, max = id, s.Value
			}
		}
	}
	return node, max
}

// parseNodeLabel extracts the node id from a rendered label body like
// `node="12"` (possibly among other pairs).
func parseNodeLabel(labels string) (types.NodeID, bool) {
	const key = `node="`
	i := strings.Index(labels, key)
	if i < 0 {
		return 0, false
	}
	rest := labels[i+len(key):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return 0, false
	}
	n, err := strconv.ParseUint(rest[:j], 10, 64)
	if err != nil {
		return 0, false
	}
	return types.NodeID(n), true
}

func (a *Autoscaler) countEval() {
	if a.reg != nil {
		a.reg.Counter("flexlog_ctrl_autoscale_evals_total",
			"Autoscaler policy evaluations.", nil).Inc()
	}
}

func (a *Autoscaler) countAction() {
	if a.reg != nil {
		a.reg.Counter("flexlog_ctrl_autoscale_actions_total",
			"Autoscaler threshold breaches that produced advice or a plan.", nil).Inc()
	}
}
