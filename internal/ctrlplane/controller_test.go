package ctrlplane_test

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/ctrlplane"
	"flexlog/internal/obs"
	"flexlog/internal/types"
)

func newCluster(t *testing.T, shards int) *core.Cluster {
	t.Helper()
	cl, err := core.SimpleCluster(core.TestClusterConfig(), shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	return cl
}

func newController(cl *core.Cluster, reg *obs.Registry) *ctrlplane.Controller {
	return ctrlplane.New(cl, ctrlplane.Config{
		PollInterval:   time.Millisecond,
		PromoteLag:     64,
		CatchupTimeout: 10 * time.Second,
		DrainTimeout:   5 * time.Second,
		Obs:            reg,
	})
}

func appendN(t *testing.T, c *core.Client, color types.ColorID, n int) []types.SN {
	t.Helper()
	sns := make([]types.SN, 0, n)
	for i := 0; i < n; i++ {
		sn, err := c.Append([][]byte{[]byte(fmt.Sprintf("rec-%d-%d", color, i))}, color)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		sns = append(sns, sn)
	}
	return sns
}

func TestAddReplicaCatchesUpAndPromotes(t *testing.T) {
	cl := newCluster(t, 1)
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, c, types.MasterColor, 200)

	ctrl := newController(cl, nil)
	sh := cl.Topology().Snapshot().Shards[0]
	before := len(sh.Replicas)

	plan, err := ctrl.AddReplica(sh.ID)
	if err != nil {
		t.Fatalf("AddReplica: %v (plan %v)", err, plan)
	}
	if plan.State != ctrlplane.StateDone {
		t.Fatalf("plan state = %v, want done", plan.State)
	}
	after, err := cl.Topology().Shard(sh.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Replicas) != before+1 {
		t.Fatalf("shard has %d replicas, want %d", len(after.Replicas), before+1)
	}

	// The promoted replica must hold the full committed history: its commit
	// frontier matches the donor's.
	donor := cl.Replica(plan.Donor)
	joined := cl.Replica(plan.Node)
	if joined == nil {
		t.Fatal("joined replica not found")
	}
	want := donor.Store().MaxSN(types.MasterColor)
	if got := joined.Store().MaxSN(types.MasterColor); got != want {
		t.Fatalf("joined replica frontier %v, donor %v", got, want)
	}

	// And the widened shard keeps serving appends (the client needs acks
	// from ALL members, including the new one).
	appendN(t, c, types.MasterColor, 20)
}

func TestDrainReplicaFlushesAndRemoves(t *testing.T) {
	cl := newCluster(t, 1)
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, c, types.MasterColor, 50)

	ctrl := newController(cl, nil)
	sh := cl.Topology().Snapshot().Shards[0]
	before := len(sh.Replicas)

	plan, err := ctrl.DrainReplica(sh.ID, 0)
	if err != nil {
		t.Fatalf("DrainReplica: %v (plan %v)", err, plan)
	}
	after, err := cl.Topology().Shard(sh.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Replicas) != before-1 {
		t.Fatalf("shard has %d replicas, want %d", len(after.Replicas), before-1)
	}
	if cl.Replica(plan.Node) != nil {
		t.Fatalf("drained replica %d still registered", plan.Node)
	}
	// Acked history survives on the remaining members.
	sns := appendN(t, c, types.MasterColor, 20)
	if _, err := c.Read(sns[len(sns)-1], types.MasterColor); err != nil {
		t.Fatalf("read after drain: %v", err)
	}
}

func TestDrainLastReplicaRefused(t *testing.T) {
	cl := newCluster(t, 1)
	ctrl := newController(cl, nil)
	sh := cl.Topology().Snapshot().Shards[0]
	for i := 0; i < len(sh.Replicas)-1; i++ {
		if _, err := ctrl.DrainReplica(sh.ID, 0); err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
	}
	if _, err := ctrl.DrainReplica(sh.ID, 0); err == nil {
		t.Fatal("draining the last replica should fail")
	}
}

func TestSplitShardKeepsHistoryReadable(t *testing.T) {
	cl := newCluster(t, 1)
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	pre := appendN(t, c, types.MasterColor, 30)

	ctrl := newController(cl, nil)
	plan, err := ctrl.SplitShard(types.MasterColor)
	if err != nil {
		t.Fatalf("SplitShard: %v", err)
	}
	if plan.State != ctrlplane.StateDone || plan.Target == 0 {
		t.Fatalf("plan = %v", plan)
	}
	if got := len(cl.Topology().ShardsInRegion(types.MasterColor)); got != 2 {
		t.Fatalf("%d shards after split, want 2", got)
	}
	// Old records remain readable (reads consult every shard) and new
	// appends land somewhere.
	for _, sn := range pre {
		if _, err := c.Read(sn, types.MasterColor); err != nil {
			t.Fatalf("read %v after split: %v", sn, err)
		}
	}
	appendN(t, c, types.MasterColor, 30)
}

func TestMergeShardMigratesRecords(t *testing.T) {
	cl := newCluster(t, 2)
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	// Spread records across both shards (random shard choice per append).
	pre := appendN(t, c, types.MasterColor, 60)

	shards := cl.Topology().Snapshot().Shards
	if len(shards) != 2 {
		t.Fatalf("want 2 shards, got %d", len(shards))
	}
	ctrl := newController(cl, nil)
	plan, err := ctrl.MergeShard(shards[0].ID, shards[1].ID)
	if err != nil {
		t.Fatalf("MergeShard: %v (plan %v)", err, plan)
	}
	if got := len(cl.Topology().ShardsInRegion(types.MasterColor)); got != 1 {
		t.Fatalf("%d shards after merge, want 1", got)
	}
	for _, id := range shards[0].Replicas {
		if cl.Replica(id) != nil {
			t.Fatalf("source replica %d still registered", id)
		}
	}
	// Every pre-merge record is still readable from the surviving shard.
	for _, sn := range pre {
		if _, err := c.Read(sn, types.MasterColor); err != nil {
			t.Fatalf("read %v after merge: %v", sn, err)
		}
	}
	appendN(t, c, types.MasterColor, 20)
}

func TestAddRegionMakesColorServable(t *testing.T) {
	cl := newCluster(t, 1)
	ctrl := newController(cl, nil)
	plan, err := ctrl.AddRegion(7, types.MasterColor)
	if err != nil {
		t.Fatalf("AddRegion: %v", err)
	}
	if plan.State != ctrlplane.StateDone {
		t.Fatalf("plan = %v", plan)
	}
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	sn, err := c.Append([][]byte{[]byte("colored")}, 7)
	if err != nil {
		t.Fatalf("append to new region: %v", err)
	}
	if _, err := c.Read(sn, 7); err != nil {
		t.Fatalf("read from new region: %v", err)
	}
}

func TestPlanObservabilityAndHistory(t *testing.T) {
	cl := newCluster(t, 1)
	reg := obs.NewRegistry()
	ctrl := newController(cl, reg)
	if _, err := ctrl.SplitShard(types.MasterColor); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.SplitShard(99); err == nil { // unknown leaf
		t.Fatal("split of unknown leaf should fail")
	}
	plans := ctrl.Plans()
	if len(plans) != 2 {
		t.Fatalf("%d plans, want 2", len(plans))
	}
	if plans[0].State != ctrlplane.StateDone || plans[1].State != ctrlplane.StateFailed {
		t.Fatalf("plan states = %v, %v", plans[0].State, plans[1].State)
	}
	if got := reg.SumCounter("flexlog_ctrl_plans_total"); got != 2 {
		t.Fatalf("plans_total = %d, want 2", got)
	}
	if got := reg.SumCounter("flexlog_ctrl_plans_done_total"); got != 1 {
		t.Fatalf("plans_done_total = %d, want 1", got)
	}
	if got := reg.SumCounter("flexlog_ctrl_plans_failed_total"); got != 1 {
		t.Fatalf("plans_failed_total = %d, want 1", got)
	}
	if got := reg.MaxGauge("flexlog_ctrl_plans_active"); got != 0 {
		t.Fatalf("plans_active = %v, want 0", got)
	}
}

func TestTopologyHandler(t *testing.T) {
	cl := newCluster(t, 2)
	ctrl := newController(cl, nil)
	if _, err := ctrl.SplitShard(types.MasterColor); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	ctrlplane.TopologyHandler(ctrl).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/topology", nil))
	body := rec.Body.String()
	for _, want := range []string{"topology version", "SHARD", "split-shard", "state=done"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/debug/topology missing %q:\n%s", want, body)
		}
	}
}

func TestAutoscalerPolicy(t *testing.T) {
	cl := newCluster(t, 1)
	ctrl := newController(cl, nil)
	node := cl.Topology().Snapshot().Shards[0].Replicas[0]

	// A private registry with a synthetic backlog gauge stands in for a
	// write-saturated replica.
	reg := obs.NewRegistry()
	backlog := 0.0
	reg.GaugeFunc("flexlog_replica_pending_orders", "test", obs.Labels{"node": fmt.Sprintf("%d", node)},
		func() float64 { return backlog })

	as := ctrlplane.NewAutoscaler(ctrl, reg, ctrlplane.Policy{
		MaxPendingOrders: 100,
		Advisory:         true,
	}, time.Hour)

	if adv := as.Evaluate(); adv != nil {
		t.Fatalf("advice below threshold: %+v", adv)
	}
	backlog = 500
	adv := as.Evaluate()
	if adv == nil {
		t.Fatal("no advice above threshold")
	}
	if adv.Kind != ctrlplane.KindSplitShard {
		t.Fatalf("advice kind = %v, want split-shard (leaf below shard cap)", adv.Kind)
	}
	if adv.Executed {
		t.Fatal("advisory mode must not execute")
	}
	if got := len(cl.Topology().ShardsInRegion(types.MasterColor)); got != 1 {
		t.Fatalf("advisory mode split the shard: %d shards", got)
	}
	if got := reg.SumCounter("flexlog_ctrl_autoscale_evals_total"); got != 2 {
		t.Fatalf("evals_total = %d, want 2", got)
	}
	if got := reg.SumCounter("flexlog_ctrl_autoscale_actions_total"); got != 1 {
		t.Fatalf("actions_total = %d, want 1", got)
	}
}

func TestAutoscalerExecutesSplit(t *testing.T) {
	cl := newCluster(t, 1)
	ctrl := newController(cl, nil)
	node := cl.Topology().Snapshot().Shards[0].Replicas[0]
	reg := obs.NewRegistry()
	reg.GaugeFunc("flexlog_replica_pending_orders", "test", obs.Labels{"node": fmt.Sprintf("%d", node)},
		func() float64 { return 1000 })
	as := ctrlplane.NewAutoscaler(ctrl, reg, ctrlplane.Policy{MaxPendingOrders: 100}, time.Hour)

	adv := as.Evaluate()
	if adv == nil || !adv.Executed {
		t.Fatalf("expected executed advice, got %+v", adv)
	}
	if got := len(cl.Topology().ShardsInRegion(types.MasterColor)); got != 2 {
		t.Fatalf("%d shards after autoscale, want 2", got)
	}
	// Cooldown: the still-breaching gauge must not trigger a second action.
	if adv := as.Evaluate(); adv != nil {
		t.Fatalf("action during cooldown: %+v", adv)
	}
}
