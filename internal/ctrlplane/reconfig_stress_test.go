package ctrlplane_test

import (
	"context"
	"testing"
	"time"

	"flexlog/internal/chaos"
	"flexlog/internal/core"
	"flexlog/internal/ctrlplane"
	"flexlog/internal/histcheck"
	"flexlog/internal/types"
)

// TestReconfigUnderLoad floods appends and reads across two colors while
// the control plane concurrently splits one color's shard, drains a
// replica from the other, and grows a third shard's membership — then
// gates the whole run on the linearizability oracle: every acknowledged
// append must be readable at its exact SN, no SN reuse, the final
// subscribe complete and duplicate-free. This is the PR's safety argument
// for epoch-fenced reconfiguration, run under -race in `make verify`.
func TestReconfigUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("reconfig stress skipped in -short mode")
	}
	ccfg := core.TestClusterConfig()
	cl, err := core.TreeCluster(ccfg, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	colors := []types.ColorID{1, 2}

	ctrl := ctrlplane.New(cl, ctrlplane.Config{
		PollInterval:   time.Millisecond,
		PromoteLag:     256,
		CatchupTimeout: 20 * time.Second,
		DrainTimeout:   10 * time.Second,
	})

	const dur = 1500 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), dur)
	defer cancel()
	wl, err := chaos.StartWorkload(ctx, cl, chaos.WorkloadConfig{
		Seed:      42,
		Colors:    colors,
		Writers:   3,
		Readers:   2,
		OpTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Reconfigure under fire: split color 1, drain a replica of color 2's
	// shard, and widen the split target's sibling — all concurrent with the
	// workload and with each other.
	errs := make(chan error, 3)
	time.Sleep(dur / 4) // let history accumulate first
	go func() {
		_, err := ctrl.SplitShard(1)
		errs <- err
	}()
	go func() {
		sh := cl.Topology().ShardsInRegion(2)[0]
		_, err := ctrl.DrainReplica(sh.ID, 0)
		errs <- err
	}()
	go func() {
		sh := cl.Topology().ShardsInRegion(1)[0]
		_, err := ctrl.AddReplica(sh.ID)
		errs <- err
	}()
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Errorf("reconfiguration under load: %v", err)
		}
	}

	<-ctx.Done()
	wl.Wait()
	// Let re-driven commits land before the final read.
	time.Sleep(10 * ccfg.RetryTimeout)

	final, err := chaos.CollectFinal(cl, colors)
	if err != nil {
		t.Fatalf("collecting final state: %v", err)
	}
	ops := wl.Recorder().Ops()
	violations := histcheck.Check(ops, final)
	for _, v := range violations {
		t.Errorf("violation: %s", v)
	}
	if len(violations) > 0 {
		t.Fatalf("%d history violations across %d ops", len(violations), len(ops))
	}

	st := wl.Stats()
	if st.Appends == 0 || st.Reads == 0 {
		t.Fatalf("no coverage: %s", st)
	}

	// The topology must reflect all three plans.
	if got := len(cl.Topology().ShardsInRegion(1)); got != 2 {
		t.Errorf("color 1 has %d shards, want 2 after split", got)
	}
	sh2 := cl.Topology().ShardsInRegion(2)[0]
	if got := len(sh2.Replicas); got != ccfg.ReplicationFactor-1 {
		t.Errorf("color 2 shard has %d replicas, want %d after drain", got, ccfg.ReplicationFactor-1)
	}
	t.Logf("ops=%d %s", len(ops), st)
}
