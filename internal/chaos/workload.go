package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/histcheck"
	"flexlog/internal/types"
)

// WorkloadConfig sizes the recorded load that runs under the nemesis.
type WorkloadConfig struct {
	// Seed derives every workload rng (payload ids are seed-tagged too, so
	// two runs never alias payloads across colors).
	Seed int64
	// Colors are the leaf colors written, read and trimmed.
	Colors []types.ColorID
	// Writers / Readers are goroutine counts per color.
	Writers int
	Readers int
	// Trims enables one trimmer per color.
	Trims bool
	// Multi enables one multi-color appender spanning all Colors, staged
	// via the MultiBroker region (Alg. 2).
	Multi       bool
	MultiBroker types.ColorID
	// OpTimeout bounds each operation; expired operations are recorded as
	// indeterminate (they may still apply — the checker tolerates both).
	OpTimeout time.Duration
}

// Stats aggregates workload outcomes, including the availability signal:
// the longest wall-clock window in which no append was acknowledged.
type Stats struct {
	Appends, AppendFails uint64
	Reads, ReadFails     uint64
	NotFounds            uint64
	Trims, TrimFails     uint64
	Multis, MultiFails   uint64
	MaxAppendGap         time.Duration
}

func (s Stats) String() string {
	return fmt.Sprintf("appends=%d/%d reads=%d/%d (⊥=%d) trims=%d/%d multis=%d/%d maxAppendGap=%s",
		s.Appends, s.Appends+s.AppendFails,
		s.Reads, s.Reads+s.ReadFails, s.NotFounds,
		s.Trims, s.Trims+s.TrimFails,
		s.Multis, s.Multis+s.MultiFails,
		s.MaxAppendGap.Round(time.Millisecond))
}

// Workload is a running set of recorded client goroutines.
type Workload struct {
	rec *histcheck.Recorder
	cfg WorkloadConfig

	appends, appendFails atomic.Uint64
	reads, readFails     atomic.Uint64
	notFounds            atomic.Uint64
	trims, trimFails     atomic.Uint64
	multis, multiFails   atomic.Uint64

	mu      sync.Mutex
	acked   map[types.ColorID][]types.SN // read targets, pruned by trims
	lastAck time.Time
	maxGap  time.Duration

	wg sync.WaitGroup
}

// StartWorkload launches the workload goroutines against the cluster.
// Each goroutine owns a dedicated client. The workload stops when ctx is
// cancelled; call Wait to join it.
func StartWorkload(ctx context.Context, cl *core.Cluster, cfg WorkloadConfig) (*Workload, error) {
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 2 * time.Second
	}
	w := &Workload{
		rec:     histcheck.NewRecorder(),
		cfg:     cfg,
		acked:   make(map[types.ColorID][]types.SN),
		lastAck: time.Now(),
	}
	spawn := func(fn func(cli *core.Client, rng *rand.Rand), salt int64) error {
		cli, err := cl.NewClient()
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(cfg.Seed ^ salt*-0x61c8864680b583eb))
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			fn(cli, rng)
		}()
		return nil
	}
	salt := int64(1)
	for _, color := range cfg.Colors {
		color := color
		for i := 0; i < cfg.Writers; i++ {
			id := salt
			if err := spawn(func(cli *core.Client, rng *rand.Rand) {
				w.writer(ctx, cli, rng, color, id)
			}, salt); err != nil {
				return nil, err
			}
			salt++
		}
		for i := 0; i < cfg.Readers; i++ {
			if err := spawn(func(cli *core.Client, rng *rand.Rand) {
				w.reader(ctx, cli, rng, color)
			}, salt); err != nil {
				return nil, err
			}
			salt++
		}
		if cfg.Trims {
			if err := spawn(func(cli *core.Client, rng *rand.Rand) {
				w.trimmer(ctx, cli, rng, color)
			}, salt); err != nil {
				return nil, err
			}
			salt++
		}
	}
	if cfg.Multi && len(cfg.Colors) >= 2 {
		if err := spawn(func(cli *core.Client, rng *rand.Rand) {
			w.multiAppender(ctx, cli, rng)
		}, salt); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Wait joins every workload goroutine.
func (w *Workload) Wait() { w.wg.Wait() }

// Recorder exposes the history for checking.
func (w *Workload) Recorder() *histcheck.Recorder { return w.rec }

// Stats snapshots the aggregate outcome counters.
func (w *Workload) Stats() Stats {
	w.mu.Lock()
	gap := w.maxGap
	if tail := time.Since(w.lastAck); tail > gap {
		gap = tail
	}
	w.mu.Unlock()
	return Stats{
		Appends: w.appends.Load(), AppendFails: w.appendFails.Load(),
		Reads: w.reads.Load(), ReadFails: w.readFails.Load(),
		NotFounds: w.notFounds.Load(),
		Trims:     w.trims.Load(), TrimFails: w.trimFails.Load(),
		Multis: w.multis.Load(), MultiFails: w.multiFails.Load(),
		MaxAppendGap: gap,
	}
}

func (w *Workload) noteAck(color types.ColorID, sn types.SN) {
	now := time.Now()
	w.mu.Lock()
	if gap := now.Sub(w.lastAck); gap > w.maxGap {
		w.maxGap = gap
	}
	w.lastAck = now
	lst := w.acked[color]
	if len(lst) < 1<<14 {
		w.acked[color] = append(lst, sn)
	}
	w.mu.Unlock()
}

func (w *Workload) randomAcked(color types.ColorID, rng *rand.Rand) (types.SN, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	lst := w.acked[color]
	if len(lst) == 0 {
		return types.InvalidSN, false
	}
	return lst[rng.Intn(len(lst))], true
}

// trimFrontier picks a conservative trim point — the first-quartile acked
// SN — so readers keep mostly-live targets, and prunes the target list.
func (w *Workload) trimFrontier(color types.ColorID) (types.SN, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	lst := w.acked[color]
	if len(lst) < 16 {
		return types.InvalidSN, false
	}
	sorted := append([]types.SN(nil), lst...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	frontier := sorted[len(sorted)/4]
	kept := lst[:0]
	for _, sn := range lst {
		if sn > frontier {
			kept = append(kept, sn)
		}
	}
	w.acked[color] = kept
	return frontier, true
}

func (w *Workload) writer(ctx context.Context, cli *core.Client, rng *rand.Rand, color types.ColorID, id int64) {
	n := 0
	for ctx.Err() == nil {
		n++
		payload := []byte(fmt.Sprintf("s%x-c%d-w%d-%06d", w.cfg.Seed, color, id, n))
		p := w.rec.BeginAppend(color, payload)
		opCtx, cancel := context.WithTimeout(ctx, w.cfg.OpTimeout)
		sn, err := cli.AppendCtx(opCtx, [][]byte{payload}, color)
		cancel()
		if err != nil {
			p.Fail()
			w.appendFails.Add(1)
			sleepJitter(ctx, rng, 2*time.Millisecond)
			continue
		}
		p.Ack(sn)
		w.appends.Add(1)
		w.noteAck(color, sn)
		sleepJitter(ctx, rng, time.Millisecond)
	}
}

func (w *Workload) reader(ctx context.Context, cli *core.Client, rng *rand.Rand, color types.ColorID) {
	for ctx.Err() == nil {
		sn, ok := w.randomAcked(color, rng)
		if !ok {
			sleepJitter(ctx, rng, 2*time.Millisecond)
			continue
		}
		p := w.rec.BeginRead(color, sn)
		opCtx, cancel := context.WithTimeout(ctx, w.cfg.OpTimeout)
		data, err := cli.ReadCtx(opCtx, sn, color)
		cancel()
		switch {
		case err == nil:
			p.ReadOK(data)
			w.reads.Add(1)
		case errors.Is(err, core.ErrNotFound):
			p.ReadNotFound()
			w.reads.Add(1)
			w.notFounds.Add(1)
		default:
			p.Fail()
			w.readFails.Add(1)
		}
		sleepJitter(ctx, rng, time.Millisecond)
	}
}

func (w *Workload) trimmer(ctx context.Context, cli *core.Client, rng *rand.Rand, color types.ColorID) {
	for ctx.Err() == nil {
		sleepJitter(ctx, rng, 120*time.Millisecond)
		frontier, ok := w.trimFrontier(color)
		if !ok {
			continue
		}
		p := w.rec.BeginTrim(color, frontier)
		opCtx, cancel := context.WithTimeout(ctx, 2*w.cfg.OpTimeout)
		_, _, err := cli.TrimCtx(opCtx, frontier, color)
		cancel()
		if err != nil {
			p.Fail()
			w.trimFails.Add(1)
			continue
		}
		p.Ack(frontier)
		w.trims.Add(1)
	}
}

func (w *Workload) multiAppender(ctx context.Context, cli *core.Client, rng *rand.Rand) {
	n := 0
	for ctx.Err() == nil {
		sleepJitter(ctx, rng, 40*time.Millisecond)
		n++
		colors := append([]types.ColorID(nil), w.cfg.Colors...)
		datas := make([][]byte, len(colors))
		sets := make([][][]byte, len(colors))
		for i, c := range colors {
			datas[i] = []byte(fmt.Sprintf("s%x-multi-%06d-c%d", w.cfg.Seed, n, c))
			sets[i] = [][]byte{datas[i]}
		}
		p := w.rec.BeginMulti(colors, datas)
		opCtx, cancel := context.WithTimeout(ctx, 2*w.cfg.OpTimeout)
		err := cli.MultiAppendCtx(opCtx, sets, colors, w.cfg.MultiBroker)
		cancel()
		if err != nil {
			p.Fail()
			w.multiFails.Add(1)
			continue
		}
		p.Ack(types.InvalidSN)
		w.multis.Add(1)
	}
}

// sleepJitter pauses for [d/2, 3d/2), or until ctx is cancelled.
func sleepJitter(ctx context.Context, rng *rand.Rand, d time.Duration) {
	if d <= 0 {
		return
	}
	pause := d/2 + time.Duration(rng.Int63n(int64(d)))
	select {
	case <-ctx.Done():
	case <-time.After(pause):
	}
}

// CollectFinal takes the quiesced end-of-run view the checker validates
// against: one full subscribe per color. Any single replica must be able
// to serve the complete committed log (Alg. 1 acks require all replicas),
// so one subscribe per color is the strongest faithful read.
func CollectFinal(cl *core.Cluster, colors []types.ColorID) (histcheck.FinalState, error) {
	cli, err := cl.NewClient()
	if err != nil {
		return histcheck.FinalState{}, err
	}
	final := histcheck.FinalState{Logs: make(map[types.ColorID][]types.Record, len(colors))}
	for _, c := range colors {
		recs, err := cli.Subscribe(c, types.InvalidSN)
		if err != nil {
			return histcheck.FinalState{}, fmt.Errorf("chaos: final subscribe of color %d: %w", c, err)
		}
		final.Logs[c] = recs
	}
	return final, nil
}
