// Package chaos is the deterministic nemesis harness: it generates a
// timed schedule of faults (lossy links, replica crashes, sequencer
// leader kills, partitions) from a single seed, applies it to a live
// in-process core.Cluster while a recorded workload runs, and hands the
// resulting history to the histcheck oracle. The same seed always yields
// the same schedule, so any failing soak is replayable bit-for-bit.
package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// EventKind labels one nemesis action.
type EventKind uint8

// Nemesis actions.
const (
	// EvSetFaults installs a network-wide default fault model (drops,
	// duplicates, reorders, jitter) on every link.
	EvSetFaults EventKind = iota
	// EvClearFaults removes all fault models.
	EvClearFaults
	// EvCrashReplica crash-stops replica Node and isolates it.
	EvCrashReplica
	// EvRecoverReplica rejoins and recovers replica Node (triggering the
	// §6.3 sync-phase).
	EvRecoverReplica
	// EvKillLeader crash-stops the currently-serving sequencer leader of
	// region Color and isolates it (§5.2 failover).
	EvKillLeader
	// EvRestartLeader rejoins the killed sequencer of region Color as a
	// fresh backup process (group repair).
	EvRestartLeader
	// EvPartition cuts the bidirectional link between nodes A and B.
	EvPartition
	// EvHeal restores the link between nodes A and B.
	EvHeal
	// EvCrashMidSpill crash-stops replica Node in the middle of a
	// PM→cold-tier segment eviction: the cold blob is written but not yet
	// synced when the whole store crashes (storage.CrashMidEviction).
	// Recovery must take the intact PM copy ("PM wins").
	EvCrashMidSpill
	// EvCrashMidCkpt crash-stops replica Node in the middle of a
	// checkpoint write: the checkpoint blob is written but not synced
	// (storage.CrashMidCheckpoint). Recovery must reject the torn
	// checkpoint and fall back to the previous one.
	EvCrashMidCkpt
	// EvSlowReplica degrades every link touching replica Node with the
	// event's fault model (typically heavy jitter) while the rest of the
	// fabric stays clean — the slow-replica nemesis hedged reads are
	// designed for (DESIGN.md §13.4). Not structural: the node stays up
	// and in quorum, it is just slow.
	EvSlowReplica
	// EvSlowHeal removes replica Node's link degradation.
	EvSlowHeal
	// EvNoisyStart launches an aggressor append flood against region
	// Color under tenant identity Tenant — the noisy-neighbor nemesis
	// admission control and the weighted-fair lanes must contain
	// (DESIGN.md §13.2–§13.3). The flood's appends are unrecorded; the
	// oracle judges only the victim workload, which must keep making
	// progress.
	EvNoisyStart
	// EvNoisyStop cancels the aggressor flood.
	EvNoisyStop
	// EvSplitShard asks the reconfiguration controller to split leaf
	// region Color (add a shard) while the nemeses run — scheduled inside
	// a partition window, so epoch fencing faces a torn fabric. Requires
	// an Engine controller (Engine.SetController); skipped otherwise.
	EvSplitShard
	// EvDrainReplica asks the controller to drain one replica from a
	// shard of leaf region Color — scheduled right after a leader kill,
	// so the drain's pending-order flush overlaps a §5.2 failover.
	// Requires an Engine controller; skipped otherwise.
	EvDrainReplica
)

func (k EventKind) String() string {
	switch k {
	case EvSetFaults:
		return "set-faults"
	case EvClearFaults:
		return "clear-faults"
	case EvCrashReplica:
		return "crash-replica"
	case EvRecoverReplica:
		return "recover-replica"
	case EvKillLeader:
		return "kill-leader"
	case EvRestartLeader:
		return "restart-leader"
	case EvPartition:
		return "partition"
	case EvHeal:
		return "heal"
	case EvCrashMidSpill:
		return "crash-mid-spill"
	case EvCrashMidCkpt:
		return "crash-mid-ckpt"
	case EvSlowReplica:
		return "slow-replica"
	case EvSlowHeal:
		return "slow-heal"
	case EvNoisyStart:
		return "noisy-start"
	case EvNoisyStop:
		return "noisy-stop"
	case EvSplitShard:
		return "split-shard"
	case EvDrainReplica:
		return "drain-replica"
	}
	return "unknown"
}

// Event is one scheduled nemesis action at offset At from run start.
type Event struct {
	At   time.Duration
	Kind EventKind

	Node   types.NodeID         // CrashReplica / RecoverReplica / SlowReplica target
	Color  types.ColorID        // KillLeader / RestartLeader region, NoisyStart flood target
	A, B   types.NodeID         // Partition / Heal endpoints
	Fault  transport.FaultModel // SetFaults / SlowReplica model
	Tenant types.TenantID       // NoisyStart aggressor identity
}

func (e Event) String() string {
	at := e.At.Round(time.Millisecond)
	switch e.Kind {
	case EvSetFaults:
		return fmt.Sprintf("%7s %s %s", at, e.Kind, e.Fault)
	case EvCrashReplica, EvRecoverReplica, EvCrashMidSpill, EvCrashMidCkpt:
		return fmt.Sprintf("%7s %s node=%d", at, e.Kind, e.Node)
	case EvKillLeader, EvRestartLeader:
		return fmt.Sprintf("%7s %s color=%d", at, e.Kind, e.Color)
	case EvPartition, EvHeal:
		return fmt.Sprintf("%7s %s %d<->%d", at, e.Kind, e.A, e.B)
	case EvSlowReplica:
		return fmt.Sprintf("%7s %s node=%d %s", at, e.Kind, e.Node, e.Fault)
	case EvSlowHeal:
		return fmt.Sprintf("%7s %s node=%d", at, e.Kind, e.Node)
	case EvNoisyStart:
		return fmt.Sprintf("%7s %s color=%d tenant=%d", at, e.Kind, e.Color, e.Tenant)
	case EvSplitShard, EvDrainReplica:
		return fmt.Sprintf("%7s %s color=%d", at, e.Kind, e.Color)
	}
	return fmt.Sprintf("%7s %s", at, e.Kind)
}

// Schedule is a fully materialized nemesis plan: every action and its
// time offset, derived deterministically from Seed.
type Schedule struct {
	Seed     int64
	Duration time.Duration
	Events   []Event // sorted by At
}

func (s Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos schedule: seed=%d duration=%s events=%d\n",
		s.Seed, s.Duration, len(s.Events))
	for _, e := range s.Events {
		b.WriteString("  " + e.String() + "\n")
	}
	return b.String()
}

// GenConfig bounds schedule generation.
type GenConfig struct {
	// Duration is the soak length the schedule spans.
	Duration time.Duration
	// Replicas are the crashable replica node ids.
	Replicas []types.NodeID
	// Colors are the regions whose sequencer leaders may be killed.
	Colors []types.ColorID
	// Aggressor is the tenant identity the noisy-neighbor flood appends
	// under. Leave 0 (the default tenant) for an uncapped flood; give a
	// rate-limited tenant to soak admission control under chaos.
	Aggressor types.TenantID
	// Reconfig adds the control-plane nemeses: a shard split scheduled
	// inside a partition window and a replica drain scheduled during a
	// leader failover. The engine needs a controller (SetController) to
	// apply them. Off by default so existing schedules replay unchanged.
	Reconfig bool
}

// Generate derives a schedule from the seed. Same seed and config in,
// same schedule out — that is the replay contract.
//
// Shape: two lossy-link windows (the first with drops, duplicates and
// jitter; the second adding reorders) overlap a serialized sequence of
// structural nemeses (replica crash/recover, leader kill/restart,
// two-node partition blips). Structural events never overlap each other:
// an append needs ALL shard replicas and a new leader needs SeqInit acks
// from ALL region replicas, so two concurrent structural faults could
// stall a region for the whole window rather than exercise recovery.
func Generate(seed int64, cfg GenConfig) Schedule {
	rng := rand.New(rand.NewSource(seed))
	d := cfg.Duration
	var evs []Event

	frac := func(f float64) time.Duration {
		return time.Duration(float64(d) * f)
	}
	ms := func(lo, hi int) time.Duration {
		return time.Duration(lo+rng.Intn(hi-lo+1)) * time.Millisecond
	}
	prob := func(lo, hi float64) float64 {
		return lo + rng.Float64()*(hi-lo)
	}

	// Lossy-link windows. Probabilities are drawn low enough that
	// retry-driven protocols converge between structural faults.
	w1 := transport.FaultModel{
		DropProb:  prob(0.005, 0.025),
		DupProb:   prob(0.005, 0.025),
		JitterMax: time.Duration(50+rng.Intn(251)) * time.Microsecond,
	}
	evs = append(evs,
		Event{At: frac(0.08), Kind: EvSetFaults, Fault: w1},
		Event{At: frac(0.42), Kind: EvClearFaults},
	)
	w2 := transport.FaultModel{
		DropProb:    prob(0.005, 0.025),
		DupProb:     prob(0.005, 0.025),
		ReorderProb: prob(0.01, 0.05),
		JitterMax:   time.Duration(50+rng.Intn(251)) * time.Microsecond,
	}
	evs = append(evs,
		Event{At: frac(0.52), Kind: EvSetFaults, Fault: w2},
		Event{At: frac(0.92), Kind: EvClearFaults},
	)

	// Multi-tenant QoS nemeses (DESIGN.md §13): one slow-replica window —
	// a single node's links get millisecond-scale jitter, the tail that
	// hedged reads cut — and one noisy-neighbor window — an aggressor
	// flood admission control and the weighted-fair lanes must contain.
	// Both overlap the lossy windows and the structural slots: neither is
	// structural (no quorum member disappears), and node-scoped models
	// take precedence over the fabric-wide default, so the slow node
	// stays slow through a lossy window.
	if len(cfg.Replicas) > 0 {
		node := cfg.Replicas[rng.Intn(len(cfg.Replicas))]
		slow := transport.FaultModel{
			JitterMax: time.Duration(2+rng.Intn(4)) * time.Millisecond,
		}
		evs = append(evs,
			Event{At: frac(0.12), Kind: EvSlowReplica, Node: node, Fault: slow},
			Event{At: frac(0.38), Kind: EvSlowHeal, Node: node},
		)
	}
	if len(cfg.Colors) > 0 {
		color := cfg.Colors[rng.Intn(len(cfg.Colors))]
		evs = append(evs,
			Event{At: frac(0.55), Kind: EvNoisyStart, Color: color, Tenant: cfg.Aggressor},
			Event{At: frac(0.82), Kind: EvNoisyStop},
		)
	}

	// Serialized structural slots. Replica crashes cycle through flavors:
	// the first crash slot lands mid-spill (inside a PM→cold eviction),
	// the second mid-checkpoint, and the rest are plain crash-stops — so
	// every generated schedule exercises both torn-tier windows at least
	// once while keeping crash/recover pairing intact.
	cursor := frac(0.10)
	limit := frac(0.85)
	crashes := 0
	for cursor < limit {
		roll := rng.Float64()
		switch {
		case roll < 0.55 && len(cfg.Replicas) > 0:
			node := cfg.Replicas[rng.Intn(len(cfg.Replicas))]
			down := ms(30, 90)
			kind := EvCrashReplica
			switch crashes {
			case 0:
				kind = EvCrashMidSpill
			case 1:
				kind = EvCrashMidCkpt
			}
			crashes++
			evs = append(evs,
				Event{At: cursor, Kind: kind, Node: node},
				Event{At: cursor + down, Kind: EvRecoverReplica, Node: node},
			)
			cursor += down
		case roll < 0.80 && len(cfg.Colors) > 0:
			color := cfg.Colors[rng.Intn(len(cfg.Colors))]
			down := ms(160, 280)
			evs = append(evs,
				Event{At: cursor, Kind: EvKillLeader, Color: color},
				Event{At: cursor + down, Kind: EvRestartLeader, Color: color},
			)
			cursor += down
		case len(cfg.Replicas) >= 2:
			i := rng.Intn(len(cfg.Replicas))
			j := rng.Intn(len(cfg.Replicas) - 1)
			if j >= i {
				j++
			}
			a, b := cfg.Replicas[i], cfg.Replicas[j]
			down := ms(20, 50)
			evs = append(evs,
				Event{At: cursor, Kind: EvPartition, A: a, B: b},
				Event{At: cursor + down, Kind: EvHeal, A: a, B: b},
			)
			cursor += down
		}
		cursor += ms(150, 400)
	}

	// Control-plane nemeses (DESIGN.md §15): reconfigure while the fabric
	// is already hostile. The split lands just inside the first partition
	// window (epoch fencing vs a torn fabric); the drain lands just after
	// the first leader kill (pending-order flush vs a §5.2 failover).
	// Drawn AFTER the structural loop so enabling Reconfig never perturbs
	// the base schedule's rng stream.
	if cfg.Reconfig && len(cfg.Colors) > 0 {
		splitAt, drainAt := frac(0.30), frac(0.60)
		for _, ev := range evs {
			if ev.Kind == EvPartition {
				splitAt = ev.At + 2*time.Millisecond
				break
			}
		}
		for _, ev := range evs {
			if ev.Kind == EvKillLeader {
				drainAt = ev.At + 10*time.Millisecond
				break
			}
		}
		evs = append(evs,
			Event{At: splitAt, Kind: EvSplitShard, Color: cfg.Colors[rng.Intn(len(cfg.Colors))]},
			Event{At: drainAt, Kind: EvDrainReplica, Color: cfg.Colors[rng.Intn(len(cfg.Colors))]},
		)
	}

	sortEvents(evs)
	return Schedule{Seed: seed, Duration: d, Events: evs}
}

// sortEvents orders by At, stably (pairs generated in order stay paired).
func sortEvents(evs []Event) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].At < evs[j-1].At; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}
