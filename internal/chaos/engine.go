package chaos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/ctrlplane"
	"flexlog/internal/replica"
	"flexlog/internal/seq"
	"flexlog/internal/storage"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// Engine plays a Schedule against a live cluster. The schedule names
// regions, not leader node ids: which sequencer a kill-leader event hits
// is resolved at apply time (it may be a backup that won an earlier
// failover), and the resolution is recorded in Applied for replay logs.
type Engine struct {
	cl    *core.Cluster
	sched Schedule

	mu      sync.Mutex
	killed  map[types.ColorID]types.NodeID // leader killed, awaiting restart
	applied []string

	noisyCancel context.CancelFunc // running aggressor flood, if any
	noisyWG     sync.WaitGroup

	ctrl       *ctrlplane.Controller // reconfiguration nemesis target, if any
	reconfigWG sync.WaitGroup        // in-flight split/drain plans
}

// NewEngine binds a schedule to a cluster.
func NewEngine(cl *core.Cluster, sched Schedule) *Engine {
	return &Engine{
		cl:     cl,
		sched:  sched,
		killed: make(map[types.ColorID]types.NodeID),
	}
}

// SetController arms the reconfiguration nemeses (EvSplitShard,
// EvDrainReplica); without one they are skipped with a note. Plans run
// asynchronously — the schedule keeps firing while a drain flushes — and
// HealAndRecover joins them before judging cluster health.
func (e *Engine) SetController(c *ctrlplane.Controller) { e.ctrl = c }

// Run applies the schedule in real time, starting now. It returns when
// the last event fired or the context was cancelled. The network's fault
// rng is seeded from the schedule so drop/dup/reorder decisions replay
// with the schedule.
func (e *Engine) Run(ctx context.Context) {
	e.cl.Network().SetFaultSeed(e.sched.Seed)
	start := time.Now()
	for _, ev := range e.sched.Events {
		if wait := ev.At - time.Since(start); wait > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(wait):
			}
		} else if ctx.Err() != nil {
			return
		}
		e.apply(ev)
	}
}

func (e *Engine) apply(ev Event) {
	net := e.cl.Network()
	switch ev.Kind {
	case EvSetFaults:
		net.SetDefaultFaults(ev.Fault)
	case EvClearFaults:
		net.ClearFaults()
	case EvCrashReplica:
		r := e.cl.Replica(ev.Node)
		if r == nil {
			e.note(ev, "skipped: unknown replica")
			return
		}
		r.Crash()
		net.Isolate(ev.Node)
	case EvCrashMidSpill, EvCrashMidCkpt:
		// A crash inside a tier-lifecycle window: arm the store's one-shot
		// failpoint, then synchronously drive the matching lifecycle
		// operation into it. The store crashes itself mid-operation
		// (ErrInjectedCrash); any other failure (e.g. nothing evictable
		// yet) degrades to a plain crash-stop — the flavor is opportunistic,
		// the crash itself is not.
		r := e.cl.Replica(ev.Node)
		if r == nil {
			e.note(ev, "skipped: unknown replica")
			return
		}
		st := r.Store()
		var opErr error
		if ev.Kind == EvCrashMidSpill {
			st.InjectCrash(storage.CrashMidEviction)
			opErr = st.ForceEvict()
		} else {
			st.InjectCrash(storage.CrashMidCheckpoint)
			opErr = st.ForceCheckpoint()
		}
		st.InjectCrash(0) // disarm if the op failed before the window
		r.Crash()
		net.Isolate(ev.Node)
		if !errors.Is(opErr, storage.ErrInjectedCrash) {
			e.note(ev, fmt.Sprintf("degraded to plain crash: %v", opErr))
			return
		}
	case EvRecoverReplica:
		net.Rejoin(ev.Node)
		if r := e.cl.Replica(ev.Node); r != nil {
			if err := r.Recover(); err != nil {
				e.note(ev, fmt.Sprintf("recover failed: %v", err))
				return
			}
		}
	case EvKillLeader:
		e.mu.Lock()
		_, pending := e.killed[ev.Color]
		e.mu.Unlock()
		if pending {
			e.note(ev, "skipped: previous leader kill not yet restarted")
			return
		}
		s := e.cl.LeaderOf(ev.Color)
		if s == nil {
			e.note(ev, "skipped: no serving leader")
			return
		}
		id := s.ID()
		e.mu.Lock()
		e.killed[ev.Color] = id
		e.mu.Unlock()
		s.Crash()
		net.Isolate(id)
		e.note(ev, fmt.Sprintf("node=%d", id))
		return
	case EvRestartLeader:
		e.mu.Lock()
		id, ok := e.killed[ev.Color]
		delete(e.killed, ev.Color)
		e.mu.Unlock()
		if !ok {
			e.note(ev, "skipped: nothing to restart")
			return
		}
		net.Rejoin(id)
		if err := e.cl.RestartSequencer(id); err != nil {
			e.note(ev, fmt.Sprintf("restart failed: %v", err))
			return
		}
		e.note(ev, fmt.Sprintf("node=%d", id))
		return
	case EvPartition:
		net.Partition(ev.A, ev.B)
	case EvHeal:
		net.Heal(ev.A, ev.B)
	case EvSlowReplica:
		net.SetNodeFaults(ev.Node, ev.Fault)
	case EvSlowHeal:
		net.SetNodeFaults(ev.Node, transport.FaultModel{})
	case EvNoisyStart:
		if msg := e.startNoisy(ev); msg != "" {
			e.note(ev, msg)
			return
		}
	case EvNoisyStop:
		e.stopNoisy()
	case EvSplitShard:
		if e.ctrl == nil {
			e.note(ev, "skipped: no controller")
			return
		}
		e.reconfigWG.Add(1)
		go func() {
			defer e.reconfigWG.Done()
			if plan, err := e.ctrl.SplitShard(ev.Color); err != nil {
				e.note(ev, fmt.Sprintf("failed: %v", err))
			} else {
				e.note(ev, fmt.Sprintf("done: shard=%d", plan.Target))
			}
		}()
		return
	case EvDrainReplica:
		if e.ctrl == nil {
			e.note(ev, "skipped: no controller")
			return
		}
		shard, node, ok := e.drainTarget(ev.Color)
		if !ok {
			e.note(ev, "skipped: no drainable replica")
			return
		}
		e.reconfigWG.Add(1)
		go func() {
			defer e.reconfigWG.Done()
			if _, err := e.ctrl.DrainReplica(shard, node); err != nil {
				e.note(ev, fmt.Sprintf("failed: %v", err))
			} else {
				e.note(ev, fmt.Sprintf("done: shard=%d node=%d", shard, node))
			}
		}()
		return
	}
	e.note(ev, "")
}

// drainTarget picks an operational replica to drain from the leaf's
// shards: the highest-id operational member of the first shard that keeps
// at least one replica afterwards. Crashed replicas are never drained —
// they cannot flush pending orders.
func (e *Engine) drainTarget(leaf types.ColorID) (types.ShardID, types.NodeID, bool) {
	for _, sh := range e.cl.Topology().ShardsInRegion(leaf) {
		if len(sh.Replicas) < 2 {
			continue
		}
		var best types.NodeID
		for _, id := range sh.Replicas {
			if r := e.cl.Replica(id); r != nil && r.Mode() == replica.ModeOperational && id > best {
				best = id
			}
		}
		if best != 0 {
			return sh.ID, best, true
		}
	}
	return 0, 0, false
}

// startNoisy launches the aggressor flood: two goroutines appending to
// the event's region as fast as admission allows, under the event's
// tenant identity. Append errors are swallowed — being throttled and
// shed IS the behavior under test; what matters is that the recorded
// victim workload keeps making progress while the flood runs.
func (e *Engine) startNoisy(ev Event) string {
	e.mu.Lock()
	if e.noisyCancel != nil {
		e.mu.Unlock()
		return "skipped: flood already running"
	}
	ctx, cancel := context.WithCancel(context.Background())
	e.noisyCancel = cancel
	e.mu.Unlock()
	cli, err := e.cl.NewClient(core.WithTenant(ev.Tenant))
	if err != nil {
		cancel()
		e.mu.Lock()
		e.noisyCancel = nil
		e.mu.Unlock()
		return fmt.Sprintf("skipped: client: %v", err)
	}
	for i := 0; i < 2; i++ {
		i := i
		e.noisyWG.Add(1)
		go func() {
			defer e.noisyWG.Done()
			for n := 0; ctx.Err() == nil; n++ {
				payload := []byte(fmt.Sprintf("noisy-t%d-g%d-%07d", ev.Tenant, i, n))
				opCtx, opCancel := context.WithTimeout(ctx, time.Second)
				_, _ = cli.AppendCtx(opCtx, [][]byte{payload}, ev.Color)
				opCancel()
			}
		}()
	}
	return ""
}

// stopNoisy cancels a running flood and joins its goroutines.
func (e *Engine) stopNoisy() {
	e.mu.Lock()
	cancel := e.noisyCancel
	e.noisyCancel = nil
	e.mu.Unlock()
	if cancel != nil {
		cancel()
		e.noisyWG.Wait()
	}
}

func (e *Engine) note(ev Event, extra string) {
	line := ev.String()
	if extra != "" {
		line += " (" + extra + ")"
	}
	e.mu.Lock()
	e.applied = append(e.applied, line)
	e.mu.Unlock()
}

// Applied returns the resolved nemesis log: the events actually applied,
// with runtime resolutions (which node a leader kill hit) and skips.
func (e *Engine) Applied() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.applied...)
}

// HealAndRecover ends the chaos: it clears every fault model, heals all
// partitions, restarts any still-killed sequencers, recovers any
// still-crashed replicas, and waits until every replica is operational
// and every listed region has a serving leader again. The returned error
// carries what was still unhealthy at the deadline.
func (e *Engine) HealAndRecover(replicas []types.NodeID, colors []types.ColorID, timeout time.Duration) error {
	e.stopNoisy()
	net := e.cl.Network()
	net.ClearFaults()
	net.HealAll()

	e.mu.Lock()
	killed := e.killed
	e.killed = make(map[types.ColorID]types.NodeID)
	e.mu.Unlock()
	for _, id := range killed {
		net.Rejoin(id)
		if err := e.cl.RestartSequencer(id); err != nil {
			return fmt.Errorf("chaos: restarting sequencer %d: %w", id, err)
		}
	}
	for _, id := range replicas {
		r := e.cl.Replica(id)
		if r == nil {
			continue
		}
		if r.Mode() == replica.ModeCrashed {
			net.Rejoin(id)
			if err := r.Recover(); err != nil {
				return fmt.Errorf("chaos: recovering replica %d: %w", id, err)
			}
		}
	}

	// Join in-flight reconfiguration plans only now: a drain's pending-
	// order flush may need the just-restarted leader to commit, and the
	// health check below must see the final membership (a half-drained
	// node would read as a stuck replica).
	e.reconfigWG.Wait()

	deadline := time.Now().Add(timeout)
	for {
		unhealthy := e.unhealthy(replicas, colors)
		if unhealthy == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: cluster did not quiesce within %s: %s", timeout, unhealthy)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// unhealthy reports the first non-quiesced component, or "".
func (e *Engine) unhealthy(replicas []types.NodeID, colors []types.ColorID) string {
	for _, id := range replicas {
		r := e.cl.Replica(id)
		if r == nil {
			continue
		}
		if m := r.Mode(); m != replica.ModeOperational {
			return fmt.Sprintf("replica %d mode=%v", id, m)
		}
	}
	for _, c := range colors {
		s := e.cl.LeaderOf(c)
		if s == nil {
			return fmt.Sprintf("color %d has no leader", c)
		}
		if s.Role() != seq.RoleLeader || !s.Serving() {
			return fmt.Sprintf("color %d leader %d role=%v serving=%v", c, s.ID(), s.Role(), s.Serving())
		}
	}
	return ""
}
