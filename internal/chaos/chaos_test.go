package chaos

import (
	"context"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/ctrlplane"
	"flexlog/internal/histcheck"
	"flexlog/internal/qos"
	"flexlog/internal/types"
)

// defaultSeed is the pinned CI seed; override with FLEXLOG_CHAOS_SEED to
// replay a failing run.
const defaultSeed int64 = 20260805

// aggressorTenant is the identity the noisy-neighbor flood appends
// under; the soak cluster declares it with a tight rate cap so admission
// control and the weighted-fair lanes face the nemeses live.
const aggressorTenant types.TenantID = 9

func soakSeed(t *testing.T) int64 {
	t.Helper()
	env := os.Getenv("FLEXLOG_CHAOS_SEED")
	if env == "" {
		return defaultSeed
	}
	seed, err := strconv.ParseInt(env, 10, 64)
	if err != nil {
		t.Fatalf("bad FLEXLOG_CHAOS_SEED %q: %v", env, err)
	}
	return seed
}

func TestScheduleDeterminism(t *testing.T) {
	cfg := GenConfig{
		Duration:  30 * time.Second,
		Replicas:  []types.NodeID{1, 2, 3, 4, 5, 6},
		Colors:    []types.ColorID{1, 2},
		Aggressor: aggressorTenant,
	}
	a := Generate(42, cfg)
	b := Generate(42, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%s\nvs\n%s", a, b)
	}
	c := Generate(43, cfg)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical schedules")
	}
	// The shape contract: both lossy windows and at least one structural
	// nemesis of each family over a 30s horizon.
	counts := make(map[EventKind]int)
	for _, ev := range a.Events {
		counts[ev.Kind]++
		if ev.At < 0 || ev.At > cfg.Duration {
			t.Fatalf("event %s outside the run window", ev)
		}
	}
	if counts[EvSetFaults] != 2 || counts[EvClearFaults] != 2 {
		t.Fatalf("want two lossy-link windows, got %d/%d", counts[EvSetFaults], counts[EvClearFaults])
	}
	// Replica crashes come in three flavors (plain, mid-spill,
	// mid-checkpoint); every flavor pairs with the same recover event.
	crashes := counts[EvCrashReplica] + counts[EvCrashMidSpill] + counts[EvCrashMidCkpt]
	if crashes == 0 || crashes != counts[EvRecoverReplica] {
		t.Fatalf("replica crash/recover unpaired: %d/%d", crashes, counts[EvRecoverReplica])
	}
	// The flavor cycle guarantees both tier-lifecycle crash windows are
	// exercised once per schedule (given at least two crash slots).
	if counts[EvCrashMidSpill] != 1 || counts[EvCrashMidCkpt] != 1 {
		t.Fatalf("want one mid-spill and one mid-ckpt crash, got %d/%d",
			counts[EvCrashMidSpill], counts[EvCrashMidCkpt])
	}
	if counts[EvKillLeader] == 0 || counts[EvKillLeader] != counts[EvRestartLeader] {
		t.Fatalf("leader kill/restart unpaired: %d/%d", counts[EvKillLeader], counts[EvRestartLeader])
	}
	if counts[EvPartition] != counts[EvHeal] {
		t.Fatalf("partition/heal unpaired: %d/%d", counts[EvPartition], counts[EvHeal])
	}
	// The QoS nemeses: exactly one slow-replica window and one
	// noisy-neighbor window per schedule, each opened and closed.
	if counts[EvSlowReplica] != 1 || counts[EvSlowHeal] != 1 {
		t.Fatalf("slow-replica window unpaired: %d/%d", counts[EvSlowReplica], counts[EvSlowHeal])
	}
	if counts[EvNoisyStart] != 1 || counts[EvNoisyStop] != 1 {
		t.Fatalf("noisy-neighbor window unpaired: %d/%d", counts[EvNoisyStart], counts[EvNoisyStop])
	}
	for _, ev := range a.Events {
		if ev.Kind == EvNoisyStart && ev.Tenant != aggressorTenant {
			t.Fatalf("noisy-start carries tenant %d, want %d", ev.Tenant, aggressorTenant)
		}
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].At < a.Events[i-1].At {
			t.Fatal("schedule not sorted by offset")
		}
	}

	// The Reconfig variant adds exactly one split (inside the first
	// partition window) and one drain (during the first leader failover)
	// WITHOUT perturbing the base schedule: stripping the two control-plane
	// events must give back the exact base event list.
	rcfg := cfg
	rcfg.Reconfig = true
	r := Generate(42, rcfg)
	var splits, drains int
	var stripped []Event
	for _, ev := range r.Events {
		switch ev.Kind {
		case EvSplitShard:
			splits++
		case EvDrainReplica:
			drains++
		default:
			stripped = append(stripped, ev)
		}
	}
	if splits != 1 || drains != 1 {
		t.Fatalf("reconfig schedule has %d splits / %d drains, want 1/1", splits, drains)
	}
	if !reflect.DeepEqual(stripped, a.Events) {
		t.Fatal("enabling Reconfig perturbed the base schedule")
	}
	for _, ev := range r.Events {
		if ev.Kind == EvSplitShard || ev.Kind == EvDrainReplica {
			if ev.At < 0 || ev.At > rcfg.Duration {
				t.Fatalf("reconfig event %s outside the run window", ev)
			}
		}
	}
}

// TestChaosSoakShort is the tier-1 smoke soak: a few seconds of seeded
// chaos on every run (including -short), checked by the histcheck oracle.
func TestChaosSoakShort(t *testing.T) {
	dur := 6 * time.Second
	if testing.Short() {
		dur = 3 * time.Second
	}
	runSoak(t, soakSeed(t), dur)
}

// TestChaosSoak is the full acceptance soak (≥30s), gated behind
// FLEXLOG_CHAOS_SOAK=1 so routine test runs stay fast:
//
//	FLEXLOG_CHAOS_SOAK=1 go test -race -run TestChaosSoak ./internal/chaos/
func TestChaosSoak(t *testing.T) {
	if os.Getenv("FLEXLOG_CHAOS_SOAK") == "" {
		t.Skip("set FLEXLOG_CHAOS_SOAK=1 to run the 30s chaos soak")
	}
	dur := 30 * time.Second
	// A numeric value > 1 is a duration in seconds (e.g. =60 for the
	// 60 s write-path acceptance soak).
	if secs, err := strconv.Atoi(os.Getenv("FLEXLOG_CHAOS_SOAK")); err == nil && secs > 1 {
		dur = time.Duration(secs) * time.Second
	}
	runSoak(t, soakSeed(t), dur)
}

func runSoak(t *testing.T, seed int64, dur time.Duration) {
	t.Helper()
	ccfg := core.TestClusterConfig()
	// Damp spurious failovers under the race scheduler: a new leader needs
	// SeqInit acks from ALL region replicas, so a false positive while a
	// replica is crashed stalls the region for the whole crash window.
	ccfg.FailureTimeout = 100 * time.Millisecond
	// Soak the FULL parallel write path: TestClusterConfig already turns
	// on the write lane and group commit; add order-request coalescing so
	// lane parallelism, folded PM windows and batched ordering all face
	// the nemeses together.
	ccfg.OrderCoalesce = true
	// Run the full tiered-storage lifecycle under chaos: segments small
	// enough that the workload actually fills them, a PM budget tight
	// enough to force background evictions, and frequent checkpoints so
	// the mid-spill/mid-ckpt nemeses land inside real activity.
	ccfg.Storage.SegmentSize = 32 << 10
	ccfg.Storage.PMBudget = 4 * ccfg.Storage.SegmentSize
	ccfg.Storage.CheckpointEvery = 64
	ccfg.Storage.LifecycleInterval = 5 * time.Millisecond
	// Multi-tenant QoS under chaos (DESIGN.md §13): the recorded victim
	// workload runs as the default tenant (never throttled); the
	// EvNoisyStart aggressor floods under a tenant with a tight rate cap,
	// so token-bucket admission, weighted-fair dispatch and the typed
	// backpressure path all face the nemeses while the oracle watches the
	// victim's history.
	ccfg.Tenants = []qos.TenantConfig{
		{ID: types.DefaultTenant, Weight: 4},
		{ID: aggressorTenant, Weight: 1, Rate: 200, Burst: 50},
	}
	cl, err := core.TreeCluster(ccfg, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	colors := []types.ColorID{1, 2}
	var replicas []types.NodeID
	for _, c := range colors {
		for _, sh := range cl.Topology().ShardsInRegion(c) {
			replicas = append(replicas, sh.Replicas...)
		}
	}

	sched := Generate(seed, GenConfig{Duration: dur, Replicas: replicas, Colors: colors, Aggressor: aggressorTenant, Reconfig: true})
	eng := NewEngine(cl, sched)
	// Arm the control-plane nemeses: the soak now splits a shard inside a
	// partition window and drains a replica during a leader failover, with
	// the same oracle judging the history.
	eng.SetController(ctrlplane.New(cl, ctrlplane.Config{
		PollInterval: 2 * time.Millisecond,
		DrainTimeout: 5 * time.Second,
	}))

	failCtx := func(format string, args ...any) {
		t.Helper()
		t.Logf("replay with FLEXLOG_CHAOS_SEED=%d", seed)
		t.Logf("%s", sched)
		t.Logf("applied nemeses:\n  %s", strings.Join(eng.Applied(), "\n  "))
		t.Fatalf(format, args...)
	}

	ctx, cancel := context.WithTimeout(context.Background(), dur)
	defer cancel()
	wl, err := StartWorkload(ctx, cl, WorkloadConfig{
		Seed:        seed,
		Colors:      colors,
		Writers:     2,
		Readers:     2,
		Trims:       true,
		Multi:       true,
		MultiBroker: types.MasterColor,
		OpTimeout:   2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(ctx)
	<-ctx.Done()
	wl.Wait()

	if err := eng.HealAndRecover(replicas, colors, 20*time.Second); err != nil {
		failCtx("%v", err)
	}
	// Let re-driven commits and trim barriers land before the final read.
	time.Sleep(10 * ccfg.RetryTimeout)

	final, err := CollectFinal(cl, colors)
	if err != nil {
		failCtx("collecting final state: %v", err)
	}
	ops := wl.Recorder().Ops()
	violations := histcheck.Check(ops, final)
	if len(violations) > 0 {
		for _, v := range violations {
			t.Errorf("violation: %s", v)
		}
		failCtx("%d history violations across %d ops", len(violations), len(ops))
	}

	st := wl.Stats()
	if st.Appends == 0 {
		failCtx("workload acknowledged zero appends — no coverage")
	}
	if st.Reads == 0 {
		failCtx("workload completed zero reads — no coverage")
	}
	t.Logf("seed=%d dur=%s ops=%d %s", seed, dur, len(ops), st)
}
