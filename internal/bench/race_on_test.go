//go:build race

package bench

// raceEnabled reports that the race detector is active: measurement-based
// shape assertions are skipped because the detector's 5-20x slowdown
// distorts both injected-latency ratios and real-compute/storage splits.
const raceEnabled = true
