// Package bench regenerates every table and figure of the paper's
// evaluation (§9). Each experiment builds the relevant systems — FlexLog's
// storage and ordering layers, the Boki/Scalog/Paxos baselines — on the
// calibrated simulated substrates (PM, SSD, datacenter links), drives the
// paper's workload, and prints the same rows/series the paper reports.
//
// Absolute numbers depend on the latency calibration (the substrates model
// the paper's testbed, they are not it); what the experiments reproduce is
// the shape of each result: who wins, by roughly what factor, and where
// the crossovers fall. EXPERIMENTS.md records paper-vs-measured values.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"flexlog/internal/metrics"
	"flexlog/internal/obs"
	"flexlog/internal/simclock"
)

// RunConfig controls experiment scale.
type RunConfig struct {
	// Quick shrinks sweeps and durations for CI and go-test benchmarks.
	Quick bool
	// Duration is the measurement window per point (default 2s, quick
	// 300ms).
	Duration time.Duration
	// Obs, when set, is wired into the clusters of the experiments that
	// support it (the chaos soak, ablate-obs) so flexlog-bench can dump a
	// registry snapshot on exit (-metrics-dump).
	Obs *obs.Registry
	// Codec pins the TCP wire codec ("gob" or "binary") for experiments
	// that exercise real sockets (ablate-codec). Empty runs both sides of
	// the ablation.
	Codec string
}

// PointDuration resolves the per-point measurement window.
func (c RunConfig) PointDuration() time.Duration {
	if c.Duration > 0 {
		return c.Duration
	}
	if c.Quick {
		return 300 * time.Millisecond
	}
	return 2 * time.Second
}

// Report is one experiment's regenerated table/figure.
type Report struct {
	ID      string
	Title   string
	XHeader string
	Series  []*metrics.Series
	Notes   []string
}

// String renders the report in the style of the paper's figures.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	b.WriteString(metrics.Table(r.XHeader, r.Series...))
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Value looks a measured point up by series name and x label (used by
// EXPERIMENTS.md generation and by the shape-checking tests).
func (r *Report) Value(series, label string) (float64, bool) {
	for _, s := range r.Series {
		if s.Name == series {
			return s.Value(label)
		}
	}
	return 0, false
}

// Experiment regenerates one table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg RunConfig) (*Report, error)
}

// registry of experiments, filled by the fig*.go files' init functions.
var registry = map[string]Experiment{}

func register(e Experiment) {
	registry[e.ID] = e
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// withLatencyInjection runs fn with calibrated latency injection enabled
// and restores the previous setting afterwards. Every experiment that
// measures time uses it.
func withLatencyInjection(fn func() error) error {
	prev := simclock.Enable(true)
	defer simclock.Enable(prev)
	return fn()
}
