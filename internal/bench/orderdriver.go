package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flexlog/internal/proto"
	"flexlog/internal/seq"
	"flexlog/internal/topology"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// orderDriver stands in for a storage replica in ordering-layer-only
// experiments (§9.1: "we isolate the ordering layer overheads by executing
// the workloads without writing any data to the underlying storage
// layer"): it issues order requests and receives the order responses.
type orderDriver struct {
	id  types.NodeID
	fid uint32
	ep  transport.Endpoint
	ctr atomic.Uint32

	mu    sync.Mutex
	waits map[types.Token]chan types.SN
}

func newOrderDriver(net *transport.Network, id types.NodeID) (*orderDriver, error) {
	d := &orderDriver{id: id, fid: uint32(id), waits: make(map[types.Token]chan types.SN)}
	ep, err := net.Register(id, func(from types.NodeID, msg transport.Message) {
		resp, ok := msg.(proto.OrderResp)
		if !ok {
			return
		}
		d.mu.Lock()
		ch := d.waits[resp.Token]
		delete(d.waits, resp.Token)
		d.mu.Unlock()
		if ch != nil {
			ch <- resp.LastSN
		}
	})
	if err != nil {
		return nil, err
	}
	d.ep = ep
	return d, nil
}

// request asks the target sequencer for n SNs in color and waits for the
// response, returning the round-trip latency.
func (d *orderDriver) request(target types.NodeID, color types.ColorID, n uint32, timeout time.Duration) (time.Duration, error) {
	token := types.MakeToken(d.fid, d.ctr.Add(1))
	ch := make(chan types.SN, 1)
	d.mu.Lock()
	d.waits[token] = ch
	d.mu.Unlock()
	req := proto.OrderReq{Color: color, Token: token, NRecords: n, Replicas: []types.NodeID{d.id}}
	start := time.Now()
	if err := d.ep.Send(target, req); err != nil {
		return 0, err
	}
	select {
	case <-ch:
		return time.Since(start), nil
	case <-time.After(timeout):
		d.mu.Lock()
		delete(d.waits, token)
		d.mu.Unlock()
		return 0, fmt.Errorf("order request timed out after %v", timeout)
	}
}

// seqTreeConfig builds seq.Config values with bench-appropriate timings.
func benchSeqConfig(id types.NodeID, region types.ColorID, topo *topology.Topology, batch time.Duration) seq.Config {
	cfg := seq.DefaultConfig()
	cfg.ID = id
	cfg.Region = region
	cfg.Topo = topo
	cfg.BatchInterval = batch
	cfg.HeartbeatInterval = 50 * time.Millisecond
	cfg.FailureTimeout = time.Second
	cfg.RetryTimeout = 2 * time.Second
	cfg.StartAsLeader = true
	return cfg
}

// buildSeqTree constructs the paper's 3-sequencer chain (root–middle–leaf,
// §9.1) and returns (leafID, leafColor, stop). Drivers send master-color
// requests to the leaf for total ordering, or leaf-color requests for
// FlexLog-P partial ordering.
func buildSeqTree(net *transport.Network, batch time.Duration) (leafID types.NodeID, leafColor types.ColorID, stop func(), err error) {
	topo := topology.New()
	if err := topo.AddRegion(0, 0, 9000, nil); err != nil {
		return 0, 0, nil, err
	}
	if err := topo.AddRegion(1, 0, 9010, nil); err != nil {
		return 0, 0, nil, err
	}
	if err := topo.AddRegion(2, 1, 9020, nil); err != nil {
		return 0, 0, nil, err
	}
	var seqs []*seq.Sequencer
	for _, sc := range []struct {
		id     types.NodeID
		region types.ColorID
	}{{9000, 0}, {9010, 1}, {9020, 2}} {
		s, err := seq.New(benchSeqConfig(sc.id, sc.region, topo, batch), net)
		if err != nil {
			return 0, 0, nil, err
		}
		seqs = append(seqs, s)
	}
	stop = func() {
		for _, s := range seqs {
			s.Stop()
		}
	}
	return 9020, 2, stop, nil
}

// buildSeqStar constructs a root with `leaves` leaf sequencers (the Fig. 9
// scalability topology) and returns the leaf ids.
func buildSeqStar(net *transport.Network, leaves int, batch time.Duration) (leafIDs []types.NodeID, stop func(), err error) {
	topo := topology.New()
	if err := topo.AddRegion(0, 0, 9000, nil); err != nil {
		return nil, nil, err
	}
	var seqs []*seq.Sequencer
	root, err := seq.New(benchSeqConfig(9000, 0, topo, batch), net)
	if err != nil {
		return nil, nil, err
	}
	seqs = append(seqs, root)
	for i := 1; i <= leaves; i++ {
		color := types.ColorID(i)
		id := types.NodeID(9000 + 10*i)
		if err := topo.AddRegion(color, 0, id, nil); err != nil {
			return nil, nil, err
		}
		s, err := seq.New(benchSeqConfig(id, color, topo, batch), net)
		if err != nil {
			return nil, nil, err
		}
		seqs = append(seqs, s)
		leafIDs = append(leafIDs, id)
	}
	stop = func() {
		for _, s := range seqs {
			s.Stop()
		}
	}
	return leafIDs, stop, nil
}
