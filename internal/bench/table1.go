package bench

import (
	"fmt"

	"flexlog/internal/metrics"
	"flexlog/internal/ssd"
	"flexlog/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Profiling of two serverless functions: % of CPU time in storage calls (Table 1)",
		Run:   runTable1,
	})
}

func runTable1(cfg RunConfig) (*Report, error) {
	frames, frameBytes := 60, 256<<10
	if cfg.Quick {
		frames, frameBytes = 15, 64<<10
	}
	var video, gzip workload.ProfileReport
	err := withLatencyInjection(func() error {
		var err error
		video, err = workload.ProfileVideo(ssd.New(ssd.NVMe()), frames, frameBytes)
		if err != nil {
			return err
		}
		gzip, err = workload.ProfileGzip(ssd.New(ssd.NVMe()), frames, frameBytes)
		return err
	})
	if err != nil {
		return nil, err
	}
	videoSeries := metrics.NewSeries("Video processing", "%")
	gzipSeries := metrics.NewSeries("Gzip compression", "%")
	for _, class := range []string{"open", "read", "write", "fstat", "close"} {
		videoSeries.Add(class+"()", video.ClassPercent(class))
		gzipSeries.Add(class+"()", gzip.ClassPercent(class))
	}
	videoSeries.Add("Total", video.StoragePercent())
	gzipSeries.Add("Total", gzip.StoragePercent())
	return &Report{
		ID:      "table1",
		Title:   "CPU time in storage syscalls (paper: video 41%, gzip 48.1%)",
		XHeader: "syscall",
		Series:  []*metrics.Series{videoSeries, gzipSeries},
		Notes: []string{
			fmt.Sprintf("synthetic FunctionBench stand-ins over the simulated NVMe device; %d objects of %d KiB", frames, frameBytes>>10),
		},
	}, nil
}
