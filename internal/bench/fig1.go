package bench

import (
	"fmt"
	"time"

	"flexlog/internal/metrics"
	"flexlog/internal/pmem"
	"flexlog/internal/ssd"
	"flexlog/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Storage latency for read and write operations vs block size (Figure 1)",
		Run:   runFig1,
	})
}

// runFig1 measures the six curves of Figure 1: PM via kernel bypass, PM
// via OS syscalls and SSD file I/O, reads and writes, across block sizes
// 64 B – 8 KiB.
func runFig1(cfg RunConfig) (*Report, error) {
	iters := 400
	if cfg.Quick {
		iters = 80
	}
	series := map[string]*metrics.Series{
		"pmem_read":     metrics.NewSeries("pmem_read", "ns"),
		"pmem_write":    metrics.NewSeries("pmem_write", "ns"),
		"read_syscall":  metrics.NewSeries("read_syscall", "ns"),
		"write_syscall": metrics.NewSeries("write_syscall", "ns"),
		"fileio_read":   metrics.NewSeries("fileio_read", "ns"),
		"fileio_write":  metrics.NewSeries("fileio_write", "ns"),
	}

	err := withLatencyInjection(func() error {
		for _, bs := range workload.BlockSizes {
			label := fmt.Sprint(bs)
			buf := workload.Payload(bs, int64(bs))

			// PM, kernel bypass (DAX) and via syscalls.
			for _, mode := range []struct {
				model       pmem.LatencyModel
				readSeries  string
				writeSeries string
			}{
				{pmem.OptaneBypass(), "pmem_read", "pmem_write"},
				{pmem.OptaneSyscall(), "read_syscall", "write_syscall"},
			} {
				pool, err := pmem.New(bs+64, mode.model)
				if err != nil {
					return err
				}
				off, err := pool.Alloc(bs)
				if err != nil {
					return err
				}
				wh, rh := metrics.NewHistogram(), metrics.NewHistogram()
				for i := 0; i < iters; i++ {
					start := time.Now()
					if err := pool.Write(off, buf); err != nil {
						return err
					}
					wh.Record(time.Since(start))
					start = time.Now()
					if err := pool.Read(off, buf); err != nil {
						return err
					}
					rh.Record(time.Since(start))
				}
				series[mode.readSeries].Add(label, float64(rh.Percentile(50)))
				series[mode.writeSeries].Add(label, float64(wh.Percentile(50)))
			}

			// SSD file I/O.
			dev := ssd.New(ssd.NVMe())
			if _, err := dev.Append("f", buf); err != nil {
				return err
			}
			wh, rh := metrics.NewHistogram(), metrics.NewHistogram()
			for i := 0; i < iters; i++ {
				start := time.Now()
				if _, err := dev.Append("f", buf); err != nil {
					return err
				}
				wh.Record(time.Since(start))
				start = time.Now()
				if err := dev.ReadAt("f", 0, buf); err != nil {
					return err
				}
				rh.Record(time.Since(start))
			}
			series["fileio_read"].Add(label, float64(rh.Percentile(50)))
			series["fileio_write"].Add(label, float64(wh.Percentile(50)))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:      "fig1",
		Title:   "median latency (ns); paper: PM ~10x faster than SSD, bypass up to 100x below syscall path at small blocks",
		XHeader: "block sz (B)",
		Series: []*metrics.Series{
			series["pmem_read"], series["read_syscall"], series["fileio_read"],
			series["pmem_write"], series["write_syscall"], series["fileio_write"],
		},
	}, nil
}
