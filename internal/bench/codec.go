package bench

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flexlog/internal/metrics"
	"flexlog/internal/proto"
	"flexlog/internal/transport"
	"flexlog/internal/types"
	"flexlog/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "ablate-codec",
		Title: "Ablation: wire codec (hand-rolled binary vs gob) on the TCP deployment path",
		Run:   runAblateCodec,
	})
}

// codecRegisterGob installs the proto gob dictionary once, for the gob
// side of the ablation (the binary side never consults it).
var codecRegisterGob = sync.OnceFunc(proto.RegisterGob)

// runAblateCodec measures what the wire codec costs on a real TCP
// deployment. Unlike the other ablations this one runs over actual
// loopback sockets, because the point of the binary codec is exactly the
// part the in-process network skips: encode, syscall, decode. A driver
// endpoint streams 64x64B AppendReq frames one-way to a sink endpoint
// from a sweep of concurrent senders; the sink counts records during a
// steady-state window. The gob and binary series differ only in the
// driver's outbound codec (the sink auto-detects framing per connection,
// so the same sink serves both). Micro allocs/op for both codecs are
// reported alongside as notes.
func runAblateCodec(cfg RunConfig) (*Report, error) {
	codecRegisterGob()
	senderCounts := []int{1, 4, 16}
	if cfg.Quick {
		senderCounts = []int{2, 8}
	}
	window := cfg.PointDuration()

	codecs := []transport.Codec{transport.CodecGob, transport.CodecBinary}
	if cfg.Codec != "" {
		c, err := transport.ParseCodec(cfg.Codec)
		if err != nil {
			return nil, fmt.Errorf("ablate-codec: %w", err)
		}
		codecs = []transport.Codec{c}
	}

	series := make(map[transport.Codec]*metrics.Series, len(codecs))
	rates := make(map[transport.Codec]map[int]float64, len(codecs))
	for _, c := range codecs {
		series[c] = metrics.NewSeries(c.String(), "kRec/s")
		rates[c] = make(map[int]float64, len(senderCounts))
	}
	notes := []string{
		fmt.Sprintf("real loopback TCP, 64x64B records per append frame, %v window per point", window),
		codecAllocNote(),
	}

	var maxBatch uint64
	for _, codec := range codecs {
		for _, senders := range senderCounts {
			rate, stats, err := codecOneWayRate(codec, senders, window)
			if err != nil {
				return nil, fmt.Errorf("ablate-codec %s/%d: %w", codec, senders, err)
			}
			series[codec].Add(fmt.Sprint(senders), rate/1e3)
			rates[codec][senders] = rate
			if codec == transport.CodecBinary && stats.WritevMax > maxBatch {
				maxBatch = stats.WritevMax
			}
		}
	}
	if maxBatch > 0 {
		notes = append(notes, fmt.Sprintf("largest writev batch: %d frames in one syscall", maxBatch))
	}
	if len(codecs) == 2 {
		top := senderCounts[len(senderCounts)-1]
		notes = append(notes, fmt.Sprintf("binary/gob speedup at %d senders: %.1fx",
			top, rates[transport.CodecBinary][top]/rates[transport.CodecGob][top]))
	}

	out := make([]*metrics.Series, 0, len(codecs))
	for _, c := range codecs {
		out = append(out, series[c])
	}
	return &Report{
		ID:      "ablate-codec",
		Title:   "wire codec on TCP: hand-rolled binary vs gob, one-way append stream",
		XHeader: "senders",
		Series:  out,
		Notes:   notes,
	}, nil
}

// codecOneWayRate streams appends from a driver endpoint to a sink over
// loopback with the given outbound codec and returns steady-state
// records/s plus the driver's transport stats.
func codecOneWayRate(codec transport.Codec, senders int, window time.Duration) (float64, transport.TCPStats, error) {
	addrs, err := codecFreeAddrs(2)
	if err != nil {
		return 0, transport.TCPStats{}, err
	}
	book := transport.NewAddressBook(map[types.NodeID]string{1: addrs[0], 2: addrs[1]})

	var received atomic.Uint64
	sink, err := transport.ListenTCP(2, book, func(_ types.NodeID, msg transport.Message) {
		if m, ok := msg.(proto.AppendReq); ok {
			received.Add(uint64(len(m.Records)))
		}
	})
	if err != nil {
		return 0, transport.TCPStats{}, err
	}
	defer sink.Close()

	driver, err := transport.ListenTCP(1, book, func(types.NodeID, transport.Message) {},
		transport.WithTCPCodec(codec))
	if err != nil {
		return 0, transport.TCPStats{}, err
	}
	defer driver.Close()

	msg := proto.AppendReq{Color: types.MasterColor, Token: types.MakeToken(1, 1),
		Records: codecRecords(), Client: 1}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, senders)
	for w := 0; w < senders; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if err := driver.Send(2, msg); err != nil {
					errc <- err
					return
				}
			}
		}()
	}

	// Warm up (dial, pool, gob type dictionary), then measure two
	// consecutive windows and keep the better one: both codecs are
	// sink-decode-bound here, so steady state is the peak rate and a
	// scheduler stall in one window should not masquerade as codec cost.
	time.Sleep(window / 4)
	var count uint64
	for i := 0; i < 2; i++ {
		base := received.Load()
		time.Sleep(window)
		if c := received.Load() - base; c > count {
			count = c
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		return 0, transport.TCPStats{}, err
	}
	if count == 0 {
		return 0, transport.TCPStats{}, fmt.Errorf("no records delivered in window")
	}
	return float64(count) / window.Seconds(), driver.Stats(), nil
}

// codecAllocNote measures per-frame allocations for both codecs the same
// way the codec-smoke test does, so the report carries the allocs/op side
// of the ablation next to the throughput side.
func codecAllocNote() string {
	req := proto.AppendReq{Color: types.MasterColor, Token: 1,
		Records: codecRecords(), Client: 1}
	var msg any = req
	buf := make([]byte, 0, 4096)
	binAllocs := testing.AllocsPerRun(100, func() {
		buf, _ = proto.AppendFrame(buf[:0], 1, msg)
	})
	// Persistent stream encoder into a resettable buffer — the same
	// amortization the per-connection gob path gets.
	var gbuf bytes.Buffer
	enc := gob.NewEncoder(&gbuf)
	gobAllocs := testing.AllocsPerRun(100, func() {
		gbuf.Reset()
		if err := enc.Encode(req); err != nil {
			panic(err)
		}
	})
	return fmt.Sprintf("encode allocs/op: binary %.0f, gob %.0f (64x64B append frame)", binAllocs, gobAllocs)
}

// codecRecords builds the per-frame record batch: 64 x 64B, the shape of
// a client-batched round of small state updates (the paper's serverless
// workloads skew small; see ablate-clientbatch).
func codecRecords() [][]byte {
	recs := make([][]byte, 64)
	for i := range recs {
		recs[i] = workload.Payload(64, int64(41+i))
	}
	return recs
}

// codecFreeAddrs reserves n distinct loopback addresses.
func codecFreeAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs, nil
}
