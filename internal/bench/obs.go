package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/metrics"
	"flexlog/internal/obs"
	"flexlog/internal/types"
	"flexlog/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "ablate-obs",
		Title: "Ablation: observability overhead (tracing + registry on vs off)",
		Run:   runAblateObs,
	})
}

// obsOverheadBudget is the acceptance bound: with tracing on, modeled
// append throughput must stay within this fraction of the tracing-off
// run. The experiment fails (make verify's obs smoke) if it does not.
const obsOverheadBudget = 5.0 // percent

// runAblateObs measures what full observability costs on the append hot
// path. Two identical functional runs — concurrent callers appending
// through one handle — differ only in the registry: off is a nil registry
// (instrumentation no-ops on nil receivers), on is a live registry with
// every tracer enabled, a 0-threshold slow ring (every request is
// recorded — the worst case), and client-side context traces on every
// append. The asserted number is the modeled throughput delta — message
// counts x per-message cost + device time, the fig4/fig11 methodology —
// which is deterministic; the wall-clock delta is reported as a note (it
// carries scheduler noise, so it informs DESIGN.md's overhead budget but
// does not gate).
func runAblateObs(cfg RunConfig) (*Report, error) {
	callers := 32
	opsPerCaller := 300
	if cfg.Quick {
		callers, opsPerCaller = 8, 100
	}

	modeledS := metrics.NewSeries("Modeled append throughput", "kRec/s")
	wallS := metrics.NewSeries("Wall-clock append rate", "kRec/s")

	var modeled, wallRate [2]float64
	var familyCount int
	for i, mode := range []string{"off", "on"} {
		ccfg := core.BenchClusterConfig()
		var reg *obs.Registry
		if mode == "on" {
			reg = cfg.Obs
			if reg == nil {
				reg = obs.NewRegistry()
			}
			ccfg.Obs = reg
			ccfg.TraceSlow = time.Nanosecond // every request enters the slow ring
		}
		cl, err := core.SimpleCluster(ccfg, 1)
		if err != nil {
			return nil, err
		}
		c, err := cl.NewClient()
		if err != nil {
			cl.Stop()
			return nil, err
		}
		baseMsgs := cl.Network().NodeDelivered()
		baseDev := replicaDeviceTime(cl)
		payload := workload.Payload(128, 17)

		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		wallStart := time.Now()
		for w := 0; w < callers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for j := 0; j < opsPerCaller; j++ {
					ctx := context.Background()
					var tr *obs.Trace
					if reg != nil {
						tr = obs.NewTrace("append")
						ctx = obs.WithTrace(ctx, tr)
					}
					if _, err := c.AppendCtx(ctx, [][]byte{payload}, types.MasterColor); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("caller %d op %d: %w", w, j, err)
						}
						mu.Unlock()
						return
					}
					tr.Finish()
				}
			}(w)
		}
		wg.Wait()
		wallElapsed := time.Since(wallStart)
		if firstErr != nil {
			cl.Stop()
			return nil, firstErr
		}
		busiest := busiestNodeTime(cl, baseMsgs, baseDev)
		if busiest <= 0 {
			cl.Stop()
			return nil, fmt.Errorf("ablate-obs: no modeled busy time")
		}
		records := float64(callers * opsPerCaller)
		modeled[i] = records / busiest.Seconds()
		wallRate[i] = records / wallElapsed.Seconds()
		modeledS.Add(mode, modeled[i]/1e3)
		wallS.Add(mode, wallRate[i]/1e3)
		if reg != nil {
			// Exercise a full scrape while the cluster is live, and check
			// the registry actually covers the stack.
			if snap := reg.Snapshot(); len(snap) == 0 {
				cl.Stop()
				return nil, fmt.Errorf("ablate-obs: empty registry snapshot")
			}
			familyCount = len(reg.Families())
		}
		cl.Stop()
	}

	modeledDelta := 100 * (modeled[0] - modeled[1]) / modeled[0]
	wallDelta := 100 * (wallRate[0] - wallRate[1]) / wallRate[0]
	if modeledDelta > obsOverheadBudget {
		return nil, fmt.Errorf("ablate-obs: modeled throughput dropped %.2f%% with tracing on (budget %.1f%%)",
			modeledDelta, obsOverheadBudget)
	}
	return &Report{
		ID:      "ablate-obs",
		Title:   "observability overhead: full tracing + registry vs nil registry",
		XHeader: "observability",
		Series:  []*metrics.Series{modeledS, wallS},
		Notes: []string{
			fmt.Sprintf("modeled delta %.2f%%, wall-clock delta %.2f%% (budget %.1f%%, modeled gates)",
				modeledDelta, wallDelta, obsOverheadBudget),
			fmt.Sprintf("%d metric families registered; slow-ring threshold 1ns (every request recorded)", familyCount),
			fmt.Sprintf("%d callers x %d appends per mode, 128B payloads", callers, opsPerCaller),
		},
	}, nil
}
