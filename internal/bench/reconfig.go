package bench

import (
	"fmt"
	"sync"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/ctrlplane"
	"flexlog/internal/metrics"
	"flexlog/internal/types"
	"flexlog/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "ablate-reconfig",
		Title: "Ablation: append availability through a live shard split + replica drain",
		Run:   runAblateReconfig,
	})
}

// reconfigWriters is the closed-loop append fleet size.
const reconfigWriters = 4

// runAblateReconfig measures what a live reconfiguration costs the write
// path: the same closed-loop append fleet runs through three phases —
// before any reconfiguration, WHILE the control plane splits the shard's
// leaf and drains a replica from the original shard, and after the plans
// complete. The DESIGN.md §15 availability claim is that the dip during
// the window is bounded (clients ride typed retryable rejections and
// epoch-fenced re-resolution, never stalls) and post-split throughput
// recovers to at least the pre-split level — the added shard can only
// widen the append fan-out.
//
// Unlike the modeled ablations this one reports wall-clock throughput:
// the cluster runs on the latency-free test link, so wall time is
// dominated by real synchronization — exactly the retry/fencing cost
// under test.
func runAblateReconfig(cfg RunConfig) (*Report, error) {
	opsPerWriter := 600
	if cfg.Quick {
		opsPerWriter = 300
	}

	ccfg := core.TestClusterConfig()
	cl, err := core.SimpleCluster(ccfg, 1)
	if err != nil {
		return nil, err
	}
	defer cl.Stop()
	ctrl := ctrlplane.New(cl, ctrlplane.Config{
		PollInterval: time.Millisecond,
		DrainTimeout: 10 * time.Second,
	})

	payload := workload.Payload(128, 17)
	clients := make([]*core.Client, reconfigWriters)
	for w := range clients {
		c, err := cl.NewClient()
		if err != nil {
			return nil, err
		}
		clients[w] = c
	}

	// measure runs one closed-loop phase and returns kOps/s of wall time.
	measure := func(ops int) (float64, error) {
		var firstErr error
		var mu sync.Mutex
		start := time.Now()
		var wg sync.WaitGroup
		for w := range clients {
			wg.Add(1)
			go func(c *core.Client) {
				defer wg.Done()
				for i := 0; i < ops; i++ {
					if _, err := c.Append([][]byte{payload}, types.MasterColor); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
			}(clients[w])
		}
		wg.Wait()
		if firstErr != nil {
			return 0, firstErr
		}
		return float64(reconfigWriters*ops) / 1e3 / time.Since(start).Seconds(), nil
	}

	if _, err := measure(20); err != nil { // warmup
		return nil, err
	}
	pre, err := measure(opsPerWriter)
	if err != nil {
		return nil, err
	}

	// The reconfiguration window: split the leaf (a second shard starts
	// absorbing appends) and drain a replica from the original shard, both
	// while the fleet keeps appending.
	shard := cl.Topology().Snapshot().Shards[0].ID
	reconfigDone := make(chan error, 1)
	go func() {
		if _, err := ctrl.SplitShard(types.MasterColor); err != nil {
			reconfigDone <- err
			return
		}
		_, err := ctrl.DrainReplica(shard, 0)
		reconfigDone <- err
	}()
	during, err := measure(opsPerWriter)
	if err != nil {
		return nil, err
	}
	if err := <-reconfigDone; err != nil {
		return nil, fmt.Errorf("reconfig during load: %w", err)
	}
	post, err := measure(opsPerWriter)
	if err != nil {
		return nil, err
	}

	s := metrics.NewSeries("append throughput", "kOps/s")
	s.Add("pre", pre)
	s.Add("during", during)
	s.Add("post", post)
	rel := metrics.NewSeries("vs pre", "x")
	rel.Add("pre", 1)
	rel.Add("during", during/pre)
	rel.Add("post", post/pre)

	return &Report{
		ID:      "ablate-reconfig",
		Title:   "live reconfiguration: append throughput before, during, and after a concurrent shard split + replica drain",
		XHeader: "phase",
		Series:  []*metrics.Series{s, rel},
		Notes: []string{
			fmt.Sprintf("%d closed-loop writers, %d appends each per phase; wall-clock throughput on the latency-free link", reconfigWriters, opsPerWriter),
			"during-phase appends overlap SplitShard + DrainReplica; clients absorb typed retryable rejections and re-resolve membership (DESIGN.md §15)",
			"bars: bounded dip during the window, post >= 95% of pre",
		},
	}, nil
}
