package bench

import (
	"fmt"
	"sync"
	"time"

	"flexlog/internal/metrics"
	"flexlog/internal/paxos"
	"flexlog/internal/scalog"
	"flexlog/internal/transport"
	"flexlog/internal/types"
	"flexlog/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig4lat",
		Title: "Ordering-layer latency: FlexLog vs Boki, by read share (Figure 4, left)",
		Run:   runFig4Latency,
	})
	register(Experiment{
		ID:    "fig4thr",
		Title: "Ordering-layer throughput: FlexLog / FlexLog-P vs optimized Paxos (Figure 4, right)",
		Run:   runFig4Throughput,
	})
}

// fig4ReadPercents are the workload mixes of Figure 4.
var fig4ReadPercents = []int{10, 15, 50}

// throughputBatchWindow is the aggregation window used by the functional
// throughput runs (see the fig4thr note on why it is wider than 1 µs).
const throughputBatchWindow = 20 * time.Microsecond

// bokiBatchInterval is the Scalog/Boki counter commit interval: the
// ordering layer advances the replicated tail once per interval, so every
// append pays half of it in expectation on top of the Paxos round.
const bokiBatchInterval = time.Millisecond

// storageReadLatency is the (negligible) local PM read charged to read
// operations in the ordering-only workloads (§9.1 RQ1.1: "the storage
// latency is 1 us").
const storageReadLatency = time.Microsecond

// runFig4Latency measures single-client append-ordering latency for
// FlexLog's 3-sequencer tree and the Boki/Scalog orderer across read
// mixes.
func runFig4Latency(cfg RunConfig) (*Report, error) {
	opsPerPoint := 300
	if cfg.Quick {
		opsPerPoint = 60
	}
	flexSeries := metrics.NewSeries("FlexLog", "usec")
	bokiSeries := metrics.NewSeries("Boki", "usec")

	err := withLatencyInjection(func() error {
		for _, rp := range fig4ReadPercents {
			label := fmt.Sprint(rp)

			// FlexLog: root–middle–leaf tree, total order (master color).
			net := transport.NewNetwork(transport.DatacenterLink())
			leaf, _, stopTree, err := buildSeqTree(net, time.Microsecond)
			if err != nil {
				return err
			}
			driver, err := newOrderDriver(net, 100)
			if err != nil {
				stopTree()
				return err
			}
			mean, err := measureOrderingLatency(driver, leaf, types.MasterColor, rp, opsPerPoint)
			stopTree()
			if err != nil {
				return err
			}
			flexSeries.Add(label, float64(mean)/1e3)

			// Boki: aggregator + classic-Paxos counter with the Scalog
			// commit interval.
			net2 := transport.NewNetwork(transport.DatacenterLink())
			ids, _, err := paxos.AcceptorSet(net2, 9100, 3)
			if err != nil {
				return err
			}
			ord, err := scalog.New(scalog.Config{
				ID: 9200, Acceptors: ids,
				BatchInterval: bokiBatchInterval,
				UniquePrimary: false, // classic two-phase Paxos (§3.3)
				PhaseTimeout:  time.Second,
			}, net2)
			if err != nil {
				return err
			}
			driver2, err := newOrderDriver(net2, 100)
			if err != nil {
				ord.Stop()
				return err
			}
			mean, err = measureOrderingLatency(driver2, 9200, types.MasterColor, rp, opsPerPoint)
			ord.Stop()
			if err != nil {
				return err
			}
			bokiSeries.Add(label, float64(mean)/1e3)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:      "fig4lat",
		Title:   "mean append-ordering latency (µs); paper: FlexLog < 250µs, 2.5–4x below Boki",
		XHeader: "Reads (%)",
		Series:  []*metrics.Series{flexSeries, bokiSeries},
		Notes: []string{
			"reads bypass the ordering layer and cost only the ~1µs local PM access (§9.1)",
			fmt.Sprintf("Boki modeled as classic 2-phase Paxos counter with a %v commit interval", bokiBatchInterval),
		},
	}, nil
}

// measureOrderingLatency runs a single closed-loop client with the given
// read share and returns the mean append-ordering latency.
func measureOrderingLatency(d *orderDriver, target types.NodeID, color types.ColorID, readPercent, appends int) (time.Duration, error) {
	mix := workload.NewMix(readPercent, int64(readPercent)+1)
	h := metrics.NewHistogram()
	done := 0
	for done < appends {
		if mix.NextIsRead() {
			// Reads only touch local storage (no ordering round).
			start := time.Now()
			simSpin(storageReadLatency)
			_ = time.Since(start)
			continue
		}
		lat, err := d.request(target, color, 1, 10*time.Second)
		if err != nil {
			return 0, err
		}
		h.Record(lat)
		done++
	}
	return h.Mean(), nil
}

// runFig4Throughput measures multi-client ordering throughput for FlexLog
// (total order via the tree), FlexLog-P (leaf-only partial order) and the
// optimized Paxos counter. Throughput is modeled: the protocols run
// functionally and each node's modeled busy time is its delivered-message
// count times the calibrated per-message processing cost; the bottleneck
// node bounds throughput (see fig5to7.go for the methodology note).
func runFig4Throughput(cfg RunConfig) (*Report, error) {
	drivers := 24
	opsPerDriver := 4000
	if cfg.Quick {
		drivers = 8
		opsPerDriver = 800
	}
	flexSeries := metrics.NewSeries("FlexLog", "kOps/s")
	flexPSeries := metrics.NewSeries("FlexLog-P", "kOps/s")
	paxosSeries := metrics.NewSeries("Paxos", "kOps/s")

	for _, rp := range fig4ReadPercents {
		label := fmt.Sprint(rp)

		// FlexLog total order. The aggregation window is widened from the
		// paper's 1 µs because the functional (single-core) run serializes
		// arrivals that a parallel testbed would overlap within 1 µs; the
		// wider window restores the same requests-per-batch regime.
		ops, err := runOrderingThroughput(drivers, opsPerDriver, rp, func(net *transport.Network) (types.NodeID, types.ColorID, func(), error) {
			leaf, _, stop, err := buildSeqTree(net, throughputBatchWindow)
			return leaf, types.MasterColor, stop, err
		})
		if err != nil {
			return nil, err
		}
		flexSeries.Add(label, ops/1e3)

		// FlexLog-P: leaf-owned color, the root is never consulted.
		ops, err = runOrderingThroughput(drivers, opsPerDriver, rp, func(net *transport.Network) (types.NodeID, types.ColorID, func(), error) {
			leaf, leafColor, stop, err := buildSeqTree(net, throughputBatchWindow)
			return leaf, leafColor, stop, err
		})
		if err != nil {
			return nil, err
		}
		flexPSeries.Add(label, ops/1e3)

		// Optimized Paxos: unique primary, one pipelined decision per
		// order request.
		ops, err = runOrderingThroughput(drivers, opsPerDriver, rp, func(net *transport.Network) (types.NodeID, types.ColorID, func(), error) {
			ids, _, err := paxos.AcceptorSet(net, 9100, 3)
			if err != nil {
				return 0, 0, nil, err
			}
			ord, err := scalog.New(scalog.Config{
				ID: 9200, Acceptors: ids,
				UniquePrimary: true,
				PerRequest:    true,
				PhaseTimeout:  time.Second,
			}, net)
			if err != nil {
				return 0, 0, nil, err
			}
			return 9200, types.MasterColor, ord.Stop, nil
		})
		if err != nil {
			return nil, err
		}
		paxosSeries.Add(label, ops/1e3)
	}
	return &Report{
		ID:      "fig4thr",
		Title:   "ordering throughput (kOps/s); paper: FlexLog 2-3x Paxos, FlexLog-P ~10% above total order",
		XHeader: "Reads (%)",
		Series:  []*metrics.Series{flexSeries, flexPSeries, paxosSeries},
		Notes: []string{
			"modeled from per-node message counts x calibrated per-message cost; Paxos pays one quorum round (4 messages at the primary) per request",
		},
	}, nil
}

// runOrderingThroughput runs the ordering layer functionally with
// closed-loop drivers and returns the modeled throughput from per-node
// message accounting. Reads bypass the ordering layer entirely.
func runOrderingThroughput(drivers, opsPerDriver, readPercent int, build func(net *transport.Network) (types.NodeID, types.ColorID, func(), error)) (float64, error) {
	net := transport.NewNetwork(transport.DatacenterLink())
	target, color, stop, err := build(net)
	if err != nil {
		return 0, err
	}
	defer stop()

	ds := make([]*orderDriver, drivers)
	for i := range ds {
		d, err := newOrderDriver(net, types.NodeID(100+i))
		if err != nil {
			return 0, err
		}
		ds[i] = d
	}
	var wg sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	for w := 0; w < drivers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mix := workload.NewMix(readPercent, int64(w+1))
			for i := 0; i < opsPerDriver; i++ {
				if mix.NextIsRead() {
					continue // local storage access; no ordering traffic
				}
				if _, err := ds[w].request(target, color, 1, 30*time.Second); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	// Bottleneck: the busiest ordering-layer node (drivers model client
	// machines and are excluded — the paper scales clients freely).
	perNode := net.NodeDelivered()
	var maxMsgs uint64
	for id, n := range perNode {
		if id >= 100 && id < 9000 {
			continue // driver nodes
		}
		if n > maxMsgs {
			maxMsgs = n
		}
	}
	if maxMsgs == 0 {
		return 0, fmt.Errorf("ordering throughput run produced no traffic")
	}
	busy := time.Duration(maxMsgs) * net.Model().ProcCost
	totalOps := float64(drivers * opsPerDriver)
	return totalOps / busy.Seconds(), nil
}
