package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flexlog/internal/lsm"
	"flexlog/internal/metrics"
	"flexlog/internal/pmem"
	"flexlog/internal/ssd"
	"flexlog/internal/storage"
	"flexlog/internal/types"
	"flexlog/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "Storage-layer throughput vs record size: FlexLog(PM) vs Boki(RocksDB) (Figure 5)",
		Run:   runFig5,
	})
	register(Experiment{
		ID:    "fig6",
		Title: "Storage-layer throughput vs threads: FlexLog(PM) vs Boki(RocksDB) (Figure 6)",
		Run:   runFig6,
	})
	register(Experiment{
		ID:    "fig7",
		Title: "Storage-layer throughput vs R/W ratio: FlexLog(PM) vs Boki(RocksDB) (Figure 7)",
		Run:   runFig7,
	})
}

// Throughput methodology: the single-core bench host cannot host the
// paper's 12-core testbed in real time, so the storage comparisons run the
// engines functionally (latency injection off) and convert the observed
// device-operation counts into modeled time using the same calibrated
// latency constants the injection path uses:
//
//	modeled ops/s = ops / max(parallelDeviceTime / threads, serialDeviceTime)
//
// PM accesses and SST reads are parallel across threads (byte-addressable
// PM and NVMe queue depth); WAL syncs are the serial resource (one fsync
// stream), which is also why group commit gives the RocksDB baseline its
// thread scaling — exactly the behaviour §9.1 describes.

// engineCost decomposes an engine's modeled device time.
type engineCost struct {
	parallel time.Duration
	serial   time.Duration
}

// storageEngine abstracts the two storage layers compared in §9.1.
type storageEngine interface {
	write(worker, iter int, payload []byte) error
	read(worker, iter int) error
	cost() engineCost
	close()
}

// flexStorage drives FlexLog's tiered store: Put+Commit per write (the
// replica-local append path), cache→PM Get per read.
type flexStorage struct {
	st     *storage.Store
	color  types.ColorID
	next   atomic.Uint64
	window uint64
	trimMu sync.Mutex
	pmMod  pmem.LatencyModel
	ssdMod ssd.LatencyModel
}

func newFlexStorage(recordBytes int) (*flexStorage, error) {
	cfg := storage.Config{
		SegmentSize: 4 << 20,
		NumSegments: 32,
		CacheBytes:  16 << 20,
		PMModel:     pmem.OptaneBypass(),
		SSDModel:    ssd.NVMe(),
	}
	st, err := storage.New(cfg)
	if err != nil {
		return nil, err
	}
	window := uint64((32 << 20) / recordBytes)
	if window > 20_000 {
		window = 20_000
	}
	if window < 2_000 {
		window = 2_000
	}
	f := &flexStorage{st: st, color: 1, window: window, pmMod: cfg.PMModel, ssdMod: cfg.SSDModel}
	pay := workload.Payload(recordBytes, 42)
	for i := uint64(0); i < f.window/2; i++ {
		if err := f.writeOne(pay); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func (f *flexStorage) writeOne(payload []byte) error {
	n := f.next.Add(1)
	tok := types.Token(n)
	if err := f.st.Put(f.color, tok, payload); err != nil {
		return err
	}
	if err := f.st.Commit(tok, types.MakeSN(1, uint32(n))); err != nil {
		return err
	}
	if n%4096 == 0 && n > 2*f.window {
		f.trimMu.Lock()
		_, _, err := f.st.Trim(f.color, types.MakeSN(1, uint32(n-f.window)))
		f.trimMu.Unlock()
		return err
	}
	return nil
}

func (f *flexStorage) write(worker, iter int, payload []byte) error {
	return f.writeOne(payload)
}

func (f *flexStorage) read(worker, iter int) error {
	frontier := f.next.Load()
	if frontier == 0 {
		return nil
	}
	lo := uint64(1)
	if frontier > f.window/2 {
		lo = frontier - f.window/2
	}
	span := frontier - lo + 1
	sn := lo + (uint64(worker)*2654435761+uint64(iter)*40503)%span
	_, err := f.st.Get(f.color, types.MakeSN(1, uint32(sn)))
	if err == storage.ErrTrimmed || err == storage.ErrNotFound {
		return nil // racing the trim window is not an engine failure
	}
	return err
}

func (f *flexStorage) cost() engineCost {
	s := f.st.Stats()
	return engineCost{
		parallel: f.pmMod.TimeOf(s.PM),
		serial:   f.ssdMod.TimeOf(s.SSD), // overflow flushes share one SSD
	}
}

func (f *flexStorage) close() {}

// bokiStorage drives the RocksDB stand-in with WAL sync on and uniform
// keys (the db_bench configuration of §9.1).
type bokiStorage struct {
	db     *lsm.DB
	keys   int
	ssdMod ssd.LatencyModel
}

func newBokiStorage(recordBytes int) (*bokiStorage, error) {
	mod := ssd.NVMe()
	db, err := lsm.Open(lsm.Config{
		MemTableBytes:     64 << 20, // the paper's 64 MiB MemTable
		CompactionTrigger: 4,
		SyncWAL:           true, // the paper's WAL-enabled configuration
	}, ssd.New(mod))
	if err != nil {
		return nil, err
	}
	b := &bokiStorage{db: db, keys: 20_000, ssdMod: mod}
	pay := workload.Payload(recordBytes, 42)
	for i := 0; i < b.keys; i += 97 {
		if err := db.Put(workload.Key(i), pay); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func (b *bokiStorage) write(worker, iter int, payload []byte) error {
	k := (worker*2654435761 + iter*40503) % b.keys
	return b.db.Put(workload.Key(k), payload)
}

func (b *bokiStorage) read(worker, iter int) error {
	k := (worker*2654435761 + iter*40503) % b.keys
	_, err := b.db.Get(workload.Key(k))
	if err == lsm.ErrNotFound {
		return nil
	}
	return err
}

func (b *bokiStorage) cost() engineCost {
	s := b.db.Stats()
	total := b.ssdMod.TimeOf(s.SSD)
	serial := time.Duration(s.SSD.Syncs) * b.ssdMod.SyncCost
	if serial > total {
		serial = total
	}
	return engineCost{parallel: total - serial, serial: serial}
}

func (b *bokiStorage) close() { b.db.Close() }

// runStoragePoint runs the engine functionally and returns the modeled
// throughput at the given thread count and read mix.
func runStoragePoint(mk func(recordBytes int) (storageEngine, error), recordBytes, threads, readPercent, opsPerThread int) (float64, error) {
	eng, err := mk(recordBytes)
	if err != nil {
		return 0, err
	}
	defer eng.close()
	base := eng.cost() // exclude preload costs
	payload := workload.Payload(recordBytes, 7)

	var wg sync.WaitGroup
	var firstErr atomic.Value
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerThread; i++ {
				isRead := (w*31+i*17)%100 < readPercent
				var err error
				if isRead {
					err = eng.read(w, i)
				} else {
					err = eng.write(w, i, payload)
				}
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return 0, err
	}
	c := eng.cost()
	// A per-op CPU floor keeps all-cache-hit workloads from dividing by
	// zero: even a DRAM hit costs some instructions.
	const perOpCPU = 150 * time.Nanosecond
	parallel := c.parallel - base.parallel + perOpCPU*time.Duration(threads*opsPerThread)
	serial := c.serial - base.serial
	perThread := parallel / time.Duration(threads)
	bottleneck := perThread
	if serial > bottleneck {
		bottleneck = serial
	}
	ops := float64(threads * opsPerThread)
	return ops / bottleneck.Seconds(), nil
}

func mkFlex(recordBytes int) (storageEngine, error) { return newFlexStorage(recordBytes) }
func mkBoki(recordBytes int) (storageEngine, error) { return newBokiStorage(recordBytes) }

func storagePointOps(cfg RunConfig) int {
	if cfg.Quick {
		return 2_000
	}
	return 20_000
}

func runFig5(cfg RunConfig) (*Report, error) {
	threads := 8
	sizes := workload.RecordSizes
	if cfg.Quick {
		sizes = []int{64, 1024, 8192}
	}
	flex := metrics.NewSeries("FlexLog (PM)", "ops/s")
	boki := metrics.NewSeries("Boki (RocksDB)", "ops/s")
	for _, sz := range sizes {
		label := sizeLabel(sz)
		ops, err := runStoragePoint(mkFlex, sz, threads, 50, storagePointOps(cfg))
		if err != nil {
			return nil, err
		}
		flex.Add(label, ops)
		ops, err = runStoragePoint(mkBoki, sz, threads, 50, storagePointOps(cfg))
		if err != nil {
			return nil, err
		}
		boki.Add(label, ops)
	}
	return &Report{
		ID:      "fig5",
		Title:   "storage throughput vs record size; paper: FlexLog ~10x Boki, both roughly flat in size",
		XHeader: "record sz (B)",
		Series:  []*metrics.Series{flex, boki},
		Notes:   []string{fmt.Sprintf("%d threads, 50%%R; modeled from calibrated device costs", threads)},
	}, nil
}

func runFig6(cfg RunConfig) (*Report, error) {
	threads := workload.ThreadCounts
	if cfg.Quick {
		threads = []int{1, 4, 12}
	}
	flex := metrics.NewSeries("FlexLog (PM)", "ops/s")
	boki := metrics.NewSeries("Boki (RocksDB)", "ops/s")
	for _, th := range threads {
		label := fmt.Sprint(th)
		ops, err := runStoragePoint(mkFlex, 1024, th, 50, storagePointOps(cfg))
		if err != nil {
			return nil, err
		}
		flex.Add(label, ops)
		ops, err = runStoragePoint(mkBoki, 1024, th, 50, storagePointOps(cfg))
		if err != nil {
			return nil, err
		}
		boki.Add(label, ops)
	}
	return &Report{
		ID:      "fig6",
		Title:   "storage throughput vs threads; paper: both scale, FlexLog >10x higher",
		XHeader: "threads",
		Series:  []*metrics.Series{flex, boki},
		Notes:   []string{"1 KiB records, 50%R; Boki scales via WAL group commit until the sync stream saturates"},
	}, nil
}

func runFig7(cfg RunConfig) (*Report, error) {
	mixes := workload.ReadPercents
	if cfg.Quick {
		mixes = []int{0, 50, 99}
	}
	flex := metrics.NewSeries("FlexLog (PM)", "ops/s")
	boki := metrics.NewSeries("Boki (RocksDB)", "ops/s")
	for _, rp := range mixes {
		label := fmt.Sprint(rp)
		ops, err := runStoragePoint(mkFlex, 1024, 8, rp, storagePointOps(cfg))
		if err != nil {
			return nil, err
		}
		flex.Add(label, ops)
		ops, err = runStoragePoint(mkBoki, 1024, 8, rp, storagePointOps(cfg))
		if err != nil {
			return nil, err
		}
		boki.Add(label, ops)
	}
	return &Report{
		ID:      "fig7",
		Title:   "storage throughput vs R/W ratio; paper: read-heavy faster (MemTable/cache), FlexLog >10x",
		XHeader: "Reads (%)",
		Series:  []*metrics.Series{flex, boki},
		Notes:   []string{"1 KiB records, 8 threads"},
	}, nil
}

func sizeLabel(sz int) string {
	if sz >= 1024 {
		return fmt.Sprintf("%dK", sz/1024)
	}
	return fmt.Sprint(sz)
}
