package bench

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/faas"
	"flexlog/internal/metrics"
	"flexlog/internal/types"
)

func init() {
	register(Experiment{
		ID:    "ext-burst",
		Title: "Extension: bursts of serverless invocations over FlexLog (§3.1 scalability requirement)",
		Run:   runExtBurst,
	})
}

// runExtBurst is not a paper figure; it exercises the §3.1 design
// requirement the evaluation argues for — "scalability for handling bursts
// of serverless functions as well as high function concurrency" — end to
// end: a burst of concurrent invocations lands on the FaaS platform, each
// invocation appends its event to its tenant's color and reads it back,
// and the experiment reports completion rate, retry-absorbed rejections,
// and the burst's drain time.
func runExtBurst(cfg RunConfig) (*Report, error) {
	bursts := []int{50, 200, 800}
	if cfg.Quick {
		bursts = []int{50, 200}
	}
	completion := metrics.NewSeries("Completed", "%")
	drain := metrics.NewSeries("Drain time", "ms")
	retries := metrics.NewSeries("Overload retries per invocation", "")

	for _, n := range bursts {
		cluster, err := core.TreeCluster(core.TestClusterConfig(), 2, 1)
		if err != nil {
			return nil, err
		}
		platform, err := faas.New(faas.Config{Workers: 4, SlotsPerWorker: 16}, cluster)
		if err != nil {
			cluster.Stop()
			return nil, err
		}
		if err := platform.Deploy("record-event", func(inv *faas.Invocation) ([]byte, error) {
			color := types.ColorID(1)
			if inv.Tenant == "tenant-b" {
				color = 2
			}
			sn, err := inv.Log.Append([][]byte{inv.Input}, color)
			if err != nil {
				return nil, err
			}
			return inv.Log.Read(sn, color)
		}); err != nil {
			cluster.Stop()
			return nil, err
		}

		var completed, retryCount atomic.Uint64
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tenant := "tenant-a"
				if i%2 == 1 {
					tenant = "tenant-b"
				}
				payload := fmt.Appendf(nil, "event-%d", i)
				for {
					out, err := platform.Invoke(tenant, "record-event", payload)
					if err == nil {
						if string(out) == string(payload) {
							completed.Add(1)
						}
						return
					}
					if errors.Is(err, faas.ErrOverloaded) {
						// The burst exceeds instant capacity; the client
						// backs off and retries — the autoscaling-queue
						// behaviour of a real platform.
						retryCount.Add(1)
						time.Sleep(time.Millisecond)
						continue
					}
					return
				}
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start)
		cluster.Stop()

		label := fmt.Sprint(n)
		completion.Add(label, 100*float64(completed.Load())/float64(n))
		drain.Add(label, float64(elapsed)/1e6)
		retries.Add(label, float64(retryCount.Load())/float64(n))
	}
	return &Report{
		ID:      "ext-burst",
		Title:   "burst handling: every invocation completes; overload is absorbed by retries, not lost work",
		XHeader: "burst size",
		Series:  []*metrics.Series{completion, drain, retries},
		Notes:   []string{"2 tenants on disjoint colors, 4 workers x 16 slots; functions append+read their event"},
	}, nil
}
