package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/metrics"
	"flexlog/internal/qos"
	"flexlog/internal/transport"
	"flexlog/internal/types"
	"flexlog/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "ablate-qos",
		Title: "Ablation: multi-tenant QoS (admission + weighted-fair lanes) and hedged reads",
		Run:   runAblateQoS,
	})
}

// Tenant identities of the QoS ablation: the victim carries the paying
// workload (weighted 4, never rate-limited), the aggressor floods under
// a tight admission envelope.
const (
	qosVictim    types.TenantID = 1
	qosAggressor types.TenantID = 2
)

// runAblateQoS measures the two QoS mechanisms of DESIGN.md §13 on a
// live cluster, wall-clock:
//
//   - Noisy-neighbor isolation: closed-loop victim writers run solo
//     ("baseline" row), then again while an aggressor tenant floods the
//     same shard ("qos" row). Token-bucket admission throttles the
//     aggressor at replica ingress and the weighted-fair lanes keep the
//     victim's share of service: on an idle host the victim keeps
//     ≥ ~80% of its solo throughput, and on any host the replicas'
//     per-tenant books must show the victim holding the dominant share
//     of served records. At nominal (solo) load nothing may be shed.
//   - Hedged-read tail: one replica of the shard gets millisecond-scale
//     link jitter (the slow-replica nemesis). A closed-loop reader
//     measures read P99 without hedging ("baseline") and with hedging
//     ("qos"); the hedge must cut the tail, because a straggling round
//     is cloned to a healthy sibling after the straggler threshold.
func runAblateQoS(cfg RunConfig) (*Report, error) {
	dur := cfg.PointDuration()
	reads := 400
	if cfg.Quick {
		reads = 200
	}

	solo, err := qosIsolationRun(false, dur)
	if err != nil {
		return nil, err
	}
	noisy, err := qosIsolationRun(true, dur)
	if err != nil {
		return nil, err
	}

	unhedgedP99, _, err := qosHedgedTail(false, reads)
	if err != nil {
		return nil, err
	}
	hedgedP99, hedges, err := qosHedgedTail(true, reads)
	if err != nil {
		return nil, err
	}

	victim := metrics.NewSeries("victim appends", "kOps/s")
	victim.Add("baseline", float64(solo.victimOps)/dur.Seconds()/1e3)
	victim.Add("qos", float64(noisy.victimOps)/dur.Seconds()/1e3)
	// Server-side fairness, from the replicas' own per-tenant books: the
	// victim's share of all records the shard actually served. Unlike the
	// wall-clock rows this is insensitive to how fast the bench host
	// happened to run each window.
	share := metrics.NewSeries("victim served share", "%")
	share.Add("baseline", solo.victimShare()*100)
	share.Add("qos", noisy.victimShare()*100)
	throttled := metrics.NewSeries("agg throttled", "records")
	throttled.Add("baseline", 0)
	throttled.Add("qos", float64(noisy.aggThrottled))
	sheds := metrics.NewSeries("lane sheds", "msgs")
	sheds.Add("baseline", float64(solo.sheds))
	sheds.Add("qos", float64(noisy.sheds))
	p99 := metrics.NewSeries("read P99", "usec")
	p99.Add("baseline", float64(unhedgedP99)/1e3)
	p99.Add("qos", float64(hedgedP99)/1e3)
	hedgeCount := metrics.NewSeries("hedged rounds", "count")
	hedgeCount.Add("baseline", 0)
	hedgeCount.Add("qos", float64(hedges))

	ratio := 0.0
	if solo.victimOps > 0 {
		ratio = float64(noisy.victimOps) / float64(solo.victimOps)
	}
	return &Report{
		ID:      "ablate-qos",
		Title:   "multi-tenant QoS: admission + weighted-fair lanes contain the aggressor; hedged reads cut the slow-replica tail",
		XHeader: "scenario",
		Series:  []*metrics.Series{victim, share, throttled, sheds, p99, hedgeCount},
		Notes: []string{
			"'victim appends'/'agg throttled'/'lane sheds': baseline = victim solo, qos = victim + rate-capped aggressor flood; wall-clock closed-loop over " + dur.String(),
			fmt.Sprintf("victim keeps %.0f%% of solo throughput with the aggressor flooding (acceptance bar: >= ~80%% on an idle host)", ratio*100),
			"'victim served share': replica-side per-tenant record accounting — admission caps the aggressor's slice of served work regardless of bench-host speed",
			"'read P99'/'hedged rounds': one replica has millisecond link jitter; baseline = hedging off, qos = hedging on (straggler threshold 300us, budget 60%)",
		},
	}, nil
}

// qosIsoResult aggregates one isolation window: the victim's completed
// appends (client wall-clock), plus the replicas' server-side per-tenant
// record books, aggressor throttles, and lane sheds.
type qosIsoResult struct {
	victimOps    uint64
	aggThrottled uint64
	sheds        uint64
	victimRecs   uint64 // records the replicas served for the victim
	aggRecs      uint64 // records the replicas served for the aggressor
}

// victimShare is the victim's fraction of all tenant records the shard
// served. Replica-side accounting counts both tenants identically, so
// the ratio is independent of replication fan-out and of how fast the
// bench host ran the window.
func (r qosIsoResult) victimShare() float64 {
	total := r.victimRecs + r.aggRecs
	if total == 0 {
		return 0
	}
	return float64(r.victimRecs) / float64(total)
}

// qosIsolationRun drives the noisy-neighbor scenario for dur.
func qosIsolationRun(withAggressor bool, dur time.Duration) (qosIsoResult, error) {
	var res qosIsoResult
	ccfg := core.TestClusterConfig()
	// The aggressor's envelope must be small relative to shard capacity —
	// that is what an operator's rate cap is for. Capacity on this
	// single-core host also shrinks several-fold when the process or the
	// machine is busy (the full test sweep), so the cap is sized against
	// the degraded case: 200 rec/s admitted stays a small slice of even a
	// quartered victim capacity.
	ccfg.Tenants = []qos.TenantConfig{
		{ID: qosVictim, Weight: 4},
		{ID: qosAggressor, Weight: 1, Rate: 200, Burst: 20},
	}
	cl, err := core.SimpleCluster(ccfg, 1)
	if err != nil {
		return res, err
	}
	defer cl.Stop()

	payload := workload.Payload(128, 11)
	ctx, cancel := context.WithTimeout(context.Background(), dur)
	defer cancel()
	var ok atomic.Uint64
	var wg sync.WaitGroup
	runner := func(t types.TenantID, count bool) error {
		c, cerr := cl.NewClient(core.WithTenant(t))
		if cerr != nil {
			return cerr
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				opCtx, opCancel := context.WithTimeout(ctx, time.Second)
				_, err := c.AppendCtx(opCtx, [][]byte{payload}, types.MasterColor)
				opCancel()
				if err == nil && count {
					ok.Add(1)
				}
				// Aggressor errors are the mechanism working: throttled
				// appends surface ErrThrottled with a retry-after hint the
				// client backoff honors on the next attempt.
			}
		}()
		return nil
	}
	for i := 0; i < 4; i++ {
		if err := runner(qosVictim, true); err != nil {
			return res, err
		}
	}
	// Two flood workers, not four: the aggressor and victim share the
	// bench host's CPU as ordinary goroutines, and QoS governs the
	// cluster's resources, not the flooding process's own CPU — more
	// workers would measure Go scheduler fair-share, not lane fairness.
	if withAggressor {
		for i := 0; i < 2; i++ {
			if err := runner(qosAggressor, false); err != nil {
				return res, err
			}
		}
	}
	<-ctx.Done()
	wg.Wait()

	for _, sh := range cl.Topology().ShardsInRegion(types.MasterColor) {
		for _, id := range sh.Replicas {
			r := cl.Replica(id)
			if r == nil {
				continue
			}
			for _, ts := range r.TenantStats() {
				switch ts.Tenant {
				case qosAggressor:
					res.aggThrottled += ts.Throttled
					res.aggRecs += ts.Records
				case qosVictim:
					res.victimRecs += ts.Records
				}
				res.sheds += ts.Shed
			}
		}
	}
	res.victimOps = ok.Load()
	return res, nil
}

// qosHedgedTail measures closed-loop read P99 against a shard with one
// jitter-degraded replica, with hedging off or on, and reports how many
// rounds actually hedged.
func qosHedgedTail(hedged bool, reads int) (p99 time.Duration, hedges uint64, err error) {
	cl, err := core.SimpleCluster(core.TestClusterConfig(), 1)
	if err != nil {
		return 0, 0, err
	}
	defer cl.Stop()

	var opts []core.Option
	if hedged {
		opts = append(opts, core.WithHedging(core.HedgeConfig{
			Delay:         300 * time.Microsecond,
			BudgetPercent: 60,
		}))
	}
	c, err := cl.NewClient(opts...)
	if err != nil {
		return 0, 0, err
	}

	// Warm a small working set before degrading the replica: appends need
	// acks from ALL replicas, so warming under jitter would only slow the
	// setup without adding signal.
	payload := workload.Payload(128, 13)
	var sns []types.SN
	for i := 0; i < 32; i++ {
		sn, err := c.Append([][]byte{payload}, types.MasterColor)
		if err != nil {
			return 0, 0, err
		}
		sns = append(sns, sn)
	}
	slow := cl.Topology().ShardsInRegion(types.MasterColor)[0].Replicas[0]
	cl.Network().SetNodeFaults(slow, transport.FaultModel{JitterMax: 3 * time.Millisecond})

	h := metrics.NewHistogram()
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < reads; i++ {
		sn := sns[rng.Intn(len(sns))]
		t0 := time.Now()
		if _, err := c.Read(sn, types.MasterColor); err != nil {
			return 0, 0, err
		}
		h.Record(time.Since(t0))
	}
	return h.Percentile(99), c.HedgedReads(), nil
}
