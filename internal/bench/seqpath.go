package bench

import (
	"fmt"
	"sync"
	"time"

	"flexlog/internal/metrics"
	"flexlog/internal/seq"
	"flexlog/internal/topology"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

func init() {
	register(Experiment{
		ID:    "ablate-seq",
		Title: "Ablation: lock-free sequencer hot path (order lanes + pipelined flush)",
		Run:   runAblateSeq,
	})
}

// seqPathModes are the ablation steps, cumulative left to right.
//
//   - serial: OrderWorkers=0, PipelinedFlush=false — every order message
//     runs on the sequencer's single delivery loop and the flusher sends
//     one upward frame per color, the pre-lock-free behavior.
//   - +lanes: the keyed order lane delivers different colors on different
//     workers (one color stays FIFO on one worker), so the atomic SN word
//     and the striped dedup/pending structures actually run concurrently.
//   - full:   the flusher additionally pipelines upward rounds and packs
//     multiple colors into one AggOrderReqBatch frame to the parent.
var seqPathModes = []string{"serial", "+lanes", "full"}

// seqPathWorkers sizes the order lane in the lane-on modes.
const seqPathWorkers = 16

// runAblateSeq measures what the lock-free hot path buys on the topology
// built to stress it: a sequencer chain root(c0)←c1←…←cN where the
// deepest node is the shard's entry leaf, so order requests for N
// distinct colors all enter at ONE sequencer and climb to their owners.
// With the serialized delivery loop every color contends on that one
// goroutine; with the order lane they only share atomics.
//
// Throughput is modeled from a functional run, like the other ablations:
// per sequencer node, unlaned messages are serial while laned messages
// charge the busiest lane worker (colors pin to workers, so the busiest
// worker bounds the lane). Latency is a separate injected run with one
// closed-loop driver on the paper's 3-sequencer chain, where neither the
// lane nor pipelining can help; the bar is that they also do not hurt.
func runAblateSeq(cfg RunConfig) (*Report, error) {
	colorCounts := []int{4, 16, 64}
	opsPerDriver := 300
	latOps := 150
	if cfg.Quick {
		opsPerDriver = 60
		latOps = 40
	}

	series := make(map[string]*metrics.Series, len(seqPathModes))
	for _, mode := range seqPathModes {
		series[mode] = metrics.NewSeries(mode, "kReqs/s")
	}
	notes := []string{
		fmt.Sprintf("sequencer chain of depth N: N colors' order requests enter at one leaf and climb to their owners; lane-on modes run %d order workers", seqPathWorkers),
		"modeled throughput over the busiest sequencer node; laned messages charge the busiest lane worker, everything else stays serial",
	}

	var statNote string
	for _, colors := range colorCounts {
		label := fmt.Sprint(colors)
		for _, mode := range seqPathModes {
			ops, note, err := seqPathThroughput(mode, colors, opsPerDriver)
			if err != nil {
				return nil, err
			}
			series[mode].Add(label, ops/1e3)
			if mode == "full" && colors == colorCounts[len(colorCounts)-1] {
				statNote = note
			}
		}
	}
	if statNote != "" {
		notes = append(notes, statNote)
	}

	// Single-driver injected latency on the 3-node chain: serial vs full.
	// The lane dispatch and the flush pipeline must stay in the noise for
	// one closed-loop requester.
	latSerial := metrics.NewSeries("1-driver lat serial", "usec")
	latFull := metrics.NewSeries("1-driver lat full", "usec")
	for _, mode := range []string{"serial", "full"} {
		var lat time.Duration
		err := withLatencyInjection(func() error {
			var err error
			lat, err = seqPathLatency(mode, latOps)
			return err
		})
		if err != nil {
			return nil, err
		}
		s := latSerial
		if mode == "full" {
			s = latFull
		}
		s.Add("1", float64(lat)/1e3)
	}

	return &Report{
		ID:      "ablate-seq",
		Title:   "sequencer hot-path ablation: order lanes unserialize concurrent colors, pipelined flush overlaps and packs upward rounds",
		XHeader: "concurrent colors",
		Series: []*metrics.Series{
			series["serial"], series["+lanes"], series["full"],
			latSerial, latFull,
		},
		Notes: notes,
	}, nil
}

// seqPathConfig resolves one ablation mode into the seq knobs.
func seqPathConfig(mode string) (workers int, pipelined bool, err error) {
	switch mode {
	case "serial":
		return 0, false, nil
	case "+lanes":
		return seqPathWorkers, false, nil
	case "full":
		return seqPathWorkers, true, nil
	default:
		return 0, false, fmt.Errorf("seqpath: unknown mode %q", mode)
	}
}

// buildSeqChain constructs the depth-N sequencer chain root(color 0) ←
// color 1 ← … ← color N. The deepest node (owning color N) is the entry
// leaf; every other color's owner is one of its ancestors, so a request
// for color c entering at the leaf climbs N-c aggregation stages.
func buildSeqChain(net *transport.Network, colors, workers int, pipelined bool) (leafID types.NodeID, seqs []*seq.Sequencer, stop func(), err error) {
	topo := topology.New()
	for c := 0; c <= colors; c++ {
		parent := types.ColorID(0)
		if c > 0 {
			parent = types.ColorID(c - 1)
		}
		if err := topo.AddRegion(types.ColorID(c), parent, types.NodeID(9000+10*c), nil); err != nil {
			return 0, nil, nil, err
		}
	}
	for c := 0; c <= colors; c++ {
		scfg := benchSeqConfig(types.NodeID(9000+10*c), types.ColorID(c), topo, throughputBatchWindow)
		scfg.OrderWorkers = workers
		scfg.PipelinedFlush = pipelined
		s, err := seq.New(scfg, net)
		if err != nil {
			for _, prev := range seqs {
				prev.Stop()
			}
			return 0, nil, nil, err
		}
		seqs = append(seqs, s)
	}
	stop = func() {
		for _, s := range seqs {
			s.Stop()
		}
	}
	return types.NodeID(9000 + 10*colors), seqs, stop, nil
}

// seqPathBaseline snapshots the sequencer-side counters at the start of
// the measured phase: per-node total and lane-delivered message counts,
// plus each node's per-worker processed counts.
type seqPathBaseline struct {
	msgs      map[types.NodeID]uint64
	writeMsgs map[types.NodeID]uint64
	perWorker map[types.NodeID][]uint64
}

func snapshotSeqPath(net *transport.Network) seqPathBaseline {
	base := seqPathBaseline{
		msgs:      net.NodeDelivered(),
		writeMsgs: net.NodeWriteDelivered(),
		perWorker: make(map[types.NodeID][]uint64),
	}
	for id := range base.msgs {
		if ws, ok := net.WriteLaneStats(id); ok {
			base.perWorker[id] = ws.PerWorker
		}
	}
	return base
}

// seqBusiestTime models the run's cost at its most loaded sequencer:
// unlaned deliveries are serial at ProcCost each; laned deliveries run on
// the order-lane pool, where the busiest worker (colors are pinned, so
// workers can skew) bounds the lane.
func seqBusiestTime(net *transport.Network, base seqPathBaseline) time.Duration {
	proc := net.Model().ProcCost
	msgs := net.NodeDelivered()
	writeMsgs := net.NodeWriteDelivered()
	var busiest time.Duration
	for id, n := range msgs {
		if id < 9000 {
			continue // drivers model the load-generating client fleet
		}
		laned := writeMsgs[id] - base.writeMsgs[id]
		serial := (n - base.msgs[id]) - laned
		busy := time.Duration(serial) * proc
		if ws, ok := net.WriteLaneStats(id); ok {
			var maxWorker uint64
			for i, c := range ws.PerWorker {
				var b uint64
				if bw := base.perWorker[id]; i < len(bw) {
					b = bw[i]
				}
				if d := c - b; d > maxWorker {
					maxWorker = d
				}
			}
			busy += time.Duration(maxWorker) * proc
		} else {
			busy += time.Duration(laned) * proc
		}
		if busy > busiest {
			busiest = busy
		}
	}
	return busiest
}

// seqPathThroughput runs one functional point: `colors` closed-loop
// drivers, each pinned to its own color, all hammering the entry leaf.
func seqPathThroughput(mode string, colors, opsPerDriver int) (float64, string, error) {
	workers, pipelined, err := seqPathConfig(mode)
	if err != nil {
		return 0, "", err
	}
	net := transport.NewNetwork(transport.DatacenterLink())
	leafID, seqs, stop, err := buildSeqChain(net, colors, workers, pipelined)
	if err != nil {
		return 0, "", err
	}
	defer stop()

	ds := make([]*orderDriver, colors)
	for i := range ds {
		d, err := newOrderDriver(net, types.NodeID(100+i))
		if err != nil {
			return 0, "", err
		}
		ds[i] = d
	}

	var firstErr error
	var mu sync.Mutex
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	run := func(ops int) {
		var wg sync.WaitGroup
		for w := 0; w < colors; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				color := types.ColorID(w + 1)
				for i := 0; i < ops; i++ {
					if _, err := ds[w].request(leafID, color, 1, 30*time.Second); err != nil {
						fail(fmt.Errorf("order color %v: %w", color, err))
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}

	run(2) // warmup: fault in queues, token stripes, lane workers
	if firstErr != nil {
		return 0, "", firstErr
	}
	base := snapshotSeqPath(net)
	run(opsPerDriver)
	if firstErr != nil {
		return 0, "", firstErr
	}

	busiest := seqBusiestTime(net, base)
	if busiest <= 0 {
		return 0, "", fmt.Errorf("seqpath: no modeled busy time")
	}

	note := ""
	if mode == "full" {
		st := seqs[len(seqs)-1].Stats() // the entry leaf
		note = fmt.Sprintf("leaf flusher at %d colors (full): %d flush rounds (%d urgent) carried %d upward batches, %d pipelined on top of an unanswered round",
			colors, st.FlushRounds, st.UrgentFlushes, st.BatchesSent, st.PipelinedBatches)
	}
	return float64(colors*opsPerDriver) / busiest.Seconds(), note, nil
}

// seqPathLatency returns the measured mean order round-trip of one lone
// closed-loop driver on the 3-sequencer chain under calibrated injection.
// The driver asks for master-color SNs at the leaf — the full two-stage
// climb, so every mechanism under test sits on its critical path.
func seqPathLatency(mode string, ops int) (time.Duration, error) {
	workers, pipelined, err := seqPathConfig(mode)
	if err != nil {
		return 0, err
	}
	net := transport.NewNetwork(transport.DatacenterLink())
	leafID, _, stop, err := buildSeqChain(net, 2, workers, pipelined)
	if err != nil {
		return 0, err
	}
	defer stop()
	d, err := newOrderDriver(net, 100)
	if err != nil {
		return 0, err
	}
	h := metrics.NewHistogram()
	for i := 0; i < ops; i++ {
		lat, err := d.request(leafID, types.MasterColor, 1, 30*time.Second)
		if err != nil {
			return 0, err
		}
		h.Record(lat)
	}
	if h.Count() == 0 {
		return 0, fmt.Errorf("seqpath: latency run recorded no requests")
	}
	return h.Mean(), nil
}
