package bench

import (
	"fmt"
	"sync"
	"time"

	"flexlog/internal/metrics"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Ordering-layer scalability vs number of leaf sequencers (Figure 9)",
		Run:   runFig9,
	})
}

// leafCounts is the Fig. 9 sweep.
var leafCounts = []int{1, 2, 4, 6}

// runFig9 measures ordering throughput as leaf sequencers are added as
// aggregating proxies to the root (§9.3). Every request asks for a
// master-region SN, so the root orders everything; leaves batch. The
// throughput is modeled from per-node message counts: each leaf is
// saturated by its own order-request stream (≈1.2M/s at the calibrated
// per-message cost) while the root sees only the aggregated batches, so
// capacity grows by about one leaf's worth per added leaf — the paper's
// "additional 1M sequence numbers per second for each leaf sequencer".
func runFig9(cfg RunConfig) (*Report, error) {
	driversPerLeaf := 8
	opsPerDriver := 4000
	if cfg.Quick {
		opsPerDriver = 800
	}
	series := metrics.NewSeries("FlexLog ordering", "MReqs/s")
	for _, leaves := range leafCounts {
		net := transport.NewNetwork(transport.DatacenterLink())
		leafIDs, stop, err := buildSeqStar(net, leaves, throughputBatchWindow)
		if err != nil {
			return nil, err
		}
		drivers := driversPerLeaf * leaves
		ds := make([]*orderDriver, drivers)
		for i := range ds {
			d, err := newOrderDriver(net, types.NodeID(100+i))
			if err != nil {
				stop()
				return nil, err
			}
			ds[i] = d
		}
		var wg sync.WaitGroup
		var firstErr error
		var mu sync.Mutex
		for w := 0; w < drivers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				target := leafIDs[w%len(leafIDs)]
				for i := 0; i < opsPerDriver; i++ {
					if _, err := ds[w].request(target, types.MasterColor, 1, 30*time.Second); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
			}(w)
		}
		wg.Wait()
		stop()
		if firstErr != nil {
			return nil, firstErr
		}
		perNode := net.NodeDelivered()
		var maxMsgs uint64
		for id, n := range perNode {
			if id < 9000 {
				continue // drivers model client machines
			}
			if n > maxMsgs {
				maxMsgs = n
			}
		}
		busy := time.Duration(maxMsgs) * net.Model().ProcCost
		total := float64(drivers * opsPerDriver)
		series.Add(fmt.Sprint(leaves), total/busy.Seconds()/1e6)
	}
	return &Report{
		ID:      "fig9",
		Title:   "ordering throughput vs leaf sequencers; paper: ~1.2M SN/s for 1 leaf, ≈ +1M per extra leaf",
		XHeader: "leaf sequencers",
		Series:  []*metrics.Series{series},
		Notes:   []string{"modeled from per-node message counts; aggregation keeps the root off the per-request path"},
	}, nil
}
