package bench

import (
	"fmt"
	"math/rand"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/metrics"
	"flexlog/internal/types"
	"flexlog/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "Append/read latency vs replication factor, one shard (Figure 8)",
		Run:   runFig8,
	})
}

// replicationFactors is the Fig. 8 sweep.
var replicationFactors = []int{2, 3, 4, 6, 8}

// runFig8 deploys one shard with varying replica counts connected to the
// root sequencer (the minimal ordering layer for linearizability, §9.2)
// and measures append and read latency under a 95%W/5%R workload with the
// calibrated latency injection.
func runFig8(cfg RunConfig) (*Report, error) {
	opsPerPoint := 400
	factors := replicationFactors
	if cfg.Quick {
		opsPerPoint = 80
		factors = []int{2, 3, 8}
	}
	appendS := metrics.NewSeries("Appends", "ms")
	readS := metrics.NewSeries("Reads", "ms")

	err := withLatencyInjection(func() error {
		for _, rf := range factors {
			app, rd, err := measureClusterLatency(rf, 1, opsPerPoint, 5)
			if err != nil {
				return err
			}
			appendS.Add(fmt.Sprint(rf), float64(app)/1e6)
			readS.Add(fmt.Sprint(rf), float64(rd)/1e6)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:      "fig8",
		Title:   "latency vs replication factor; paper: appends stable to 3 then grow, reads flat (local reads)",
		XHeader: "replication",
		Series:  []*metrics.Series{appendS, readS},
		Notes:   []string{"1 shard, root sequencer, 95%W/5%R, 1 KiB records"},
	}, nil
}

// measureClusterLatency runs a single closed-loop client against a fresh
// single-region cluster with `shards` shards of `rf` replicas, measuring
// mean append and read latency at the given read percentage.
func measureClusterLatency(rf, shards, ops, readPercent int) (appendLat, readLat time.Duration, err error) {
	ccfg := core.BenchClusterConfig()
	ccfg.ReplicationFactor = rf
	ccfg.SeqBackups = 0 // ordering fault tolerance is orthogonal here
	cl := core.NewCluster(ccfg)
	defer cl.Stop()
	if err := cl.AddRegion(types.MasterColor, types.MasterColor); err != nil {
		return 0, 0, err
	}
	for i := 0; i < shards; i++ {
		if _, err := cl.AddShard(types.MasterColor); err != nil {
			return 0, 0, err
		}
	}
	c, err := cl.NewClient()
	if err != nil {
		return 0, 0, err
	}
	payload := workload.Payload(1024, 1)
	// Seed a few records so reads always have targets.
	var sns []types.SN
	for i := 0; i < 8; i++ {
		sn, err := c.Append([][]byte{payload}, types.MasterColor)
		if err != nil {
			return 0, 0, err
		}
		sns = append(sns, sn)
	}
	appendH, readH := metrics.NewHistogram(), metrics.NewHistogram()
	mix := workload.NewMix(readPercent, 7)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < ops; i++ {
		if mix.NextIsRead() {
			sn := sns[rng.Intn(len(sns))]
			start := time.Now()
			if _, err := c.Read(sn, types.MasterColor); err != nil {
				return 0, 0, fmt.Errorf("read: %w", err)
			}
			readH.Record(time.Since(start))
			continue
		}
		start := time.Now()
		sn, err := c.Append([][]byte{payload}, types.MasterColor)
		if err != nil {
			return 0, 0, fmt.Errorf("append: %w", err)
		}
		appendH.Record(time.Since(start))
		sns = append(sns, sn)
		if len(sns) > 64 {
			sns = sns[1:]
		}
	}
	if readH.Count() == 0 {
		// Guarantee at least one read sample.
		start := time.Now()
		if _, err := c.Read(sns[0], types.MasterColor); err != nil {
			return 0, 0, err
		}
		readH.Record(time.Since(start))
	}
	return appendH.Mean(), readH.Mean(), nil
}
