package bench

import (
	"fmt"
	"time"

	"flexlog/internal/metrics"
	"flexlog/internal/pmem"
	"flexlog/internal/ssd"
	"flexlog/internal/storage"
	"flexlog/internal/types"
	"flexlog/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "ablate-tiering",
		Title: "Ablation: storage lifecycle (PM budget + checkpoints) vs recovery cost growth",
		Run:   runAblateTiering,
	})
}

// runAblateTiering contrasts the background storage lifecycle against the
// lifecycle-less store as the log grows 1x → 4x with a constant live
// window (rolling trims). With the lifecycle on — a PM budget of two
// segments and periodic checkpoints — recovery replay is bounded by the
// resident set plus the uncovered suffix, so recovery cost stays flat as
// the log grows; the lifecycle-less store rescans everything ever
// flushed, so its cost grows with total log size (the Fig. 10 linearity,
// now avoidable). The "on" arm also proves the transparent cold read
// path: reads of evicted live records must be served from the cold tier
// (ColdMissReads > 0) and every append must succeed while eviction runs.
func runAblateTiering(cfg RunConfig) (*Report, error) {
	const (
		recordBytes = 128
		segSize     = uint64(64 << 10)
		numSegs     = 8
		ckptEvery   = 256
	)
	baseN := 2000
	window := 1200 // live records kept by the rolling trim
	if cfg.Quick {
		baseN, window = 1200, 800
	}
	budget := 2 * segSize // resident bound well under the live window

	recOn := metrics.NewSeries("Recovery (lifecycle on)", "ms")
	recOff := metrics.NewSeries("Recovery (lifecycle off)", "ms")
	repOn := metrics.NewSeries("Replay (lifecycle on)", "entries")
	repOff := metrics.NewSeries("Replay (lifecycle off)", "entries")
	var maxAppend time.Duration

	runArm := func(lifecycle bool, n int) (time.Duration, int, error) {
		scfg := storage.Config{
			SegmentSize: segSize,
			NumSegments: numSegs,
			CacheBytes:  0, // cold misses must hit the cold tier, not DRAM
			PMModel:     pmem.OptaneBypass(),
			SSDModel:    ssd.NVMe(),
		}
		if lifecycle {
			scfg.PMBudget = budget
			scfg.CheckpointEvery = ckptEvery
			scfg.LifecycleInterval = time.Millisecond
		}
		st, err := storage.Open(scfg)
		if err != nil {
			return 0, 0, err
		}
		defer st.Close()

		payload := workload.Payload(recordBytes, 7)
		for i := 1; i <= n; i++ {
			tok := types.Token(i)
			t0 := time.Now()
			if err := st.Put(1, tok, payload); err != nil {
				return 0, 0, fmt.Errorf("append %d/%d stalled: %w", i, n, err)
			}
			if err := st.Commit(tok, types.MakeSN(1, uint32(i))); err != nil {
				return 0, 0, err
			}
			if d := time.Since(t0); d > maxAppend {
				maxAppend = d
			}
			// Rolling trim: the live window stays constant while the
			// cumulative log grows.
			if i > window && i%200 == 0 {
				if _, _, err := st.Trim(1, types.MakeSN(1, uint32(i-window))); err != nil {
					return 0, 0, err
				}
			}
		}
		if lifecycle {
			// Settle deterministically instead of waiting out background
			// ticks: enforce the budget, then cover the flushed suffix.
			for st.Stats().ResidentBytes > budget {
				if err := st.ForceEvict(); err != nil {
					break
				}
			}
			if err := st.ForceCheckpoint(); err != nil {
				return 0, 0, err
			}
			// The oldest live records are now cold; reads must fall
			// through to the cold tier transparently.
			for k := 0; k < 100; k++ {
				sn := types.MakeSN(1, uint32(n-window+1+k))
				if _, err := st.Get(1, sn); err != nil {
					return 0, 0, fmt.Errorf("cold read of %v: %w", sn, err)
				}
			}
			if st.Stats().ColdMissReads == 0 {
				return 0, 0, fmt.Errorf("no reads were served from the cold tier (budget %d, window %d)", budget, window)
			}
		}
		st.Crash()
		start := time.Now()
		if err := st.Recover(); err != nil {
			return 0, 0, err
		}
		elapsed := time.Since(start)
		// The recovered store still serves both ends of the live window.
		if _, err := st.Get(1, types.MakeSN(1, uint32(n))); err != nil {
			return 0, 0, fmt.Errorf("post-recovery read (tail): %w", err)
		}
		if _, err := st.Get(1, types.MakeSN(1, uint32(n-window+1))); err != nil {
			return 0, 0, fmt.Errorf("post-recovery read (head): %w", err)
		}
		return elapsed, st.LastRecovery().ReplayedEntries, nil
	}

	err := withLatencyInjection(func() error {
		for mult := 1; mult <= 4; mult++ {
			n := baseN * mult
			label := fmt.Sprintf("%dx", mult)
			for _, lc := range []bool{true, false} {
				elapsed, replayed, err := runArm(lc, n)
				if err != nil {
					return fmt.Errorf("%s lifecycle=%v: %w", label, lc, err)
				}
				if lc {
					recOn.Add(label, float64(elapsed)/1e6)
					repOn.Add(label, float64(replayed))
				} else {
					recOff.Add(label, float64(elapsed)/1e6)
					repOff.Add(label, float64(replayed))
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:      "ablate-tiering",
		Title:   "storage lifecycle ablation: recovery cost vs log growth at a constant live window",
		XHeader: "log size",
		Series:  []*metrics.Series{recOn, recOff, repOn, repOff},
		Notes: []string{
			fmt.Sprintf("%d-byte records, %d-entry live window, PM budget %d KiB (2 of %d segments), checkpoint every %d flushed entries",
				recordBytes, window, budget>>10, numSegs, ckptEvery),
			fmt.Sprintf("max append+commit latency across all arms: %s (appends never stall on eviction)", maxAppend.Round(time.Microsecond)),
			"lifecycle on: replay bounded by resident set + uncovered suffix; lifecycle off: rescans the whole flushed log",
		},
	}, nil
}
