package bench

import (
	"fmt"
	"time"

	"flexlog/internal/metrics"
	"flexlog/internal/pmem"
	"flexlog/internal/ssd"
	"flexlog/internal/storage"
	"flexlog/internal/types"
	"flexlog/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "Replica recovery time vs number of committed records (Figure 10)",
		Run:   runFig10,
	})
}

// recoverySweep is the Fig. 10 x axis.
var recoverySweep = []int{100, 1_000, 5_000, 10_000, 100_000, 1_000_000, 3_000_000}

// runFig10 fills a replica's storage stack with N committed records,
// crashes it, and measures the recovery scan (§9.4: "recovery time is
// heavily dependent on the number of committed records ... grows almost
// linearly ... as a result of reading all records that have to be
// recovered in a sequential manner").
func runFig10(cfg RunConfig) (*Report, error) {
	sweep := recoverySweep
	if cfg.Quick {
		sweep = []int{100, 1_000, 10_000, 100_000}
	}
	const recordBytes = 128
	series := metrics.NewSeries("Recovery time", "ms")

	err := withLatencyInjection(func() error {
		for _, n := range sweep {
			// Size PM to hold all n records (entry header + framing).
			entry := int(uint64(recordBytes) + 48)
			segSize := uint64(8 << 20)
			numSegs := (n*entry)/int(segSize-32) + 2
			st, err := storage.New(storage.Config{
				SegmentSize: segSize,
				NumSegments: numSegs,
				CacheBytes:  0, // recovery reads PM, not the cache
				PMModel:     pmem.OptaneBypass(),
				SSDModel:    ssd.NVMe(),
			})
			if err != nil {
				return err
			}
			payload := workload.Payload(recordBytes, 3)
			for i := 1; i <= n; i++ {
				tok := types.Token(i)
				if err := st.Put(1, tok, payload); err != nil {
					return fmt.Errorf("fill %d/%d: %w", i, n, err)
				}
				if err := st.Commit(tok, types.MakeSN(1, uint32(i))); err != nil {
					return err
				}
			}
			st.Crash()
			start := time.Now()
			if err := st.Recover(); err != nil {
				return err
			}
			elapsed := time.Since(start)
			series.Add(recoveryLabel(n), float64(elapsed)/1e6)
			// Sanity: the recovered store still serves its records.
			if _, err := st.Get(1, types.MakeSN(1, uint32(n))); err != nil {
				return fmt.Errorf("post-recovery read: %w", err)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:      "fig10",
		Title:   "recovery time vs records to recover; paper: ~linear growth",
		XHeader: "records",
		Series:  []*metrics.Series{series},
		Notes:   []string{fmt.Sprintf("%d-byte records; recovery sequentially scans PM segments and rebuilds the indexes", recordBytes)},
	}, nil
}

func recoveryLabel(n int) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%de6", n/1_000_000)
	case n >= 1_000:
		return fmt.Sprintf("%dK", n/1_000)
	default:
		return fmt.Sprint(n)
	}
}
