package bench

import (
	"fmt"
	"strings"
	"testing"
)

func quick() RunConfig { return RunConfig{Quick: true} }

func runExperiment(t *testing.T, id string) *Report {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	rep, err := e.Run(quick())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if rep.String() == "" {
		t.Fatalf("%s produced empty report", id)
	}
	t.Logf("\n%s", rep)
	return rep
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "fig1", "fig4lat", "fig4thr", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11",
		"ablate-batch", "ablate-cache", "ablate-readhold",
		"ablate-clientbatch", "ablate-readpath", "ablate-writepath",
		"ablate-tiering", "ablate-codec", "ablate-qos", "ablate-seq",
		"ablate-reconfig",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q missing", id)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d experiments, want >= %d", len(All()), len(want))
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id resolved")
	}
}

func TestTable1Shape(t *testing.T) {
	if raceEnabled {
		t.Skip("measurement-based shape test skipped under the race detector")
	}
	rep := runExperiment(t, "table1")
	for _, fn := range []string{"Video processing", "Gzip compression"} {
		total, ok := rep.Value(fn, "Total")
		if !ok {
			t.Fatalf("missing Total for %s", fn)
		}
		// Paper: 41% and 48.1%. The synthetic pipelines must land in the
		// same regime: storage is a major cost but not everything.
		if total < 10 || total > 85 {
			t.Errorf("%s storage share = %.1f%%, outside plausible regime", fn, total)
		}
	}
}

func TestFig1Shape(t *testing.T) {
	if raceEnabled {
		t.Skip("measurement-based shape test skipped under the race detector")
	}
	rep := runExperiment(t, "fig1")
	for _, label := range []string{"64", "1024", "8192"} {
		pm, ok1 := rep.Value("pmem_read", label)
		sys, ok2 := rep.Value("read_syscall", label)
		file, ok3 := rep.Value("fileio_read", label)
		if !ok1 || !ok2 || !ok3 {
			t.Fatalf("missing series values at %s", label)
		}
		// The Figure 1 ladder: pmem < pmem-syscall < fileio.
		if !(pm < sys && sys < file) {
			t.Errorf("latency ladder broken at %sB: pm=%.0f sys=%.0f file=%.0f", label, pm, sys, file)
		}
	}
	// "PM improves I/O latency up to 10x compared to SSDs."
	pm, _ := rep.Value("pmem_read", "8192")
	file, _ := rep.Value("fileio_read", "8192")
	if file < 5*pm {
		t.Errorf("PM/SSD gap too small at 8K: pm=%.0f file=%.0f", pm, file)
	}
}

func TestFig4LatencyShape(t *testing.T) {
	rep := runExperiment(t, "fig4lat")
	for _, label := range []string{"10", "50"} {
		flex, ok1 := rep.Value("FlexLog", label)
		boki, ok2 := rep.Value("Boki", label)
		if !ok1 || !ok2 {
			t.Fatalf("missing values at %s%% reads", label)
		}
		// Paper: FlexLog 2.5–4x faster. Accept >= 1.5x as the shape.
		if boki < 1.5*flex {
			t.Errorf("ordering latency gap too small at %s%%: flex=%.0fµs boki=%.0fµs", label, flex, boki)
		}
	}
}

func TestFig4ThroughputShape(t *testing.T) {
	rep := runExperiment(t, "fig4thr")
	flex, _ := rep.Value("FlexLog", "10")
	flexP, _ := rep.Value("FlexLog-P", "10")
	paxos, _ := rep.Value("Paxos", "10")
	if flex <= 0 || flexP <= 0 || paxos <= 0 {
		t.Fatalf("missing throughput values: %v %v %v", flex, flexP, paxos)
	}
	// Paper: FlexLog 2–3x Paxos; FlexLog-P >= FlexLog.
	if flex < 1.5*paxos {
		t.Errorf("FlexLog %.0fk not well above Paxos %.0fk", flex, paxos)
	}
	if flexP < flex*0.95 {
		t.Errorf("FlexLog-P %.0fk below total-order FlexLog %.0fk", flexP, flex)
	}
}

func TestFig5Shape(t *testing.T) {
	rep := runExperiment(t, "fig5")
	for _, label := range []string{"64", "1K", "8K"} {
		flex, ok1 := rep.Value("FlexLog (PM)", label)
		boki, ok2 := rep.Value("Boki (RocksDB)", label)
		if !ok1 || !ok2 {
			t.Fatalf("missing values at %s", label)
		}
		// Paper: an order of magnitude. Accept >= 4x as the shape.
		if flex < 4*boki {
			t.Errorf("storage gap too small at %s: flex=%.0f boki=%.0f", label, flex, boki)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	rep := runExperiment(t, "fig6")
	flex1, _ := rep.Value("FlexLog (PM)", "1")
	flex12, _ := rep.Value("FlexLog (PM)", "12")
	boki1, _ := rep.Value("Boki (RocksDB)", "1")
	boki12, _ := rep.Value("Boki (RocksDB)", "12")
	if flex12 < 4*flex1 {
		t.Errorf("FlexLog does not scale with threads: %.0f -> %.0f", flex1, flex12)
	}
	if boki12 < 2*boki1 {
		t.Errorf("Boki does not scale with threads: %.0f -> %.0f", boki1, boki12)
	}
	if flex12 < 4*boki12 {
		t.Errorf("FlexLog not well above Boki at 12 threads: %.0f vs %.0f", flex12, boki12)
	}
}

func TestFig7Shape(t *testing.T) {
	rep := runExperiment(t, "fig7")
	flex0, _ := rep.Value("FlexLog (PM)", "0")
	flex99, _ := rep.Value("FlexLog (PM)", "99")
	boki0, _ := rep.Value("Boki (RocksDB)", "0")
	boki99, _ := rep.Value("Boki (RocksDB)", "99")
	// Read-heavy workloads are faster for both engines (cache/MemTable).
	if flex99 < flex0 {
		t.Errorf("FlexLog read-heavy slower than write-heavy: %.0f vs %.0f", flex99, flex0)
	}
	if boki99 < boki0 {
		t.Errorf("Boki read-heavy slower than write-heavy: %.0f vs %.0f", boki99, boki0)
	}
}

func TestFig8Shape(t *testing.T) {
	rep := runExperiment(t, "fig8")
	app2, _ := rep.Value("Appends", "2")
	app8, _ := rep.Value("Appends", "8")
	rd2, _ := rep.Value("Reads", "2")
	rd8, _ := rep.Value("Reads", "8")
	if app2 <= 0 || app8 <= 0 {
		t.Fatal("missing append latencies")
	}
	// Paper: append latency grows with replication; reads stay flat.
	if app8 < app2 {
		t.Errorf("append latency fell with replication: %.2fms -> %.2fms", app2, app8)
	}
	if rd8 > 3*rd2+1 {
		t.Errorf("read latency not flat: %.2fms -> %.2fms", rd2, rd8)
	}
	if rd2 > app2 {
		t.Errorf("reads (%.2fms) should be cheaper than appends (%.2fms)", rd2, app2)
	}
}

func TestFig9Shape(t *testing.T) {
	rep := runExperiment(t, "fig9")
	one, _ := rep.Value("FlexLog ordering", "1")
	four, _ := rep.Value("FlexLog ordering", "4")
	if one <= 0 || four <= 0 {
		t.Fatal("missing throughput values")
	}
	// Paper: linear scaling (~1M extra per leaf). Accept >= 2.5x at 4.
	if four < 2.5*one {
		t.Errorf("ordering layer not scaling: 1 leaf %.2fM, 4 leaves %.2fM", one, four)
	}
	// Calibration: a single leaf saturates around ~1.2M reqs/s.
	if one < 0.5 || one > 3 {
		t.Errorf("single-leaf capacity %.2fM off the calibrated ~1.2M", one)
	}
}

func TestFig10Shape(t *testing.T) {
	rep := runExperiment(t, "fig10")
	small, _ := rep.Value("Recovery time", "1K")
	large, ok := rep.Value("Recovery time", "100K")
	if !ok {
		t.Fatal("missing 100K point")
	}
	// Linear growth: 100x records => much larger recovery time.
	if large < 5*small {
		t.Errorf("recovery not growing with records: 1K=%.2fms 100K=%.2fms", small, large)
	}
}

// TestTieringShape is the tiering-smoke acceptance check: with the
// lifecycle on (PM budget + checkpoints) recovery replay stays flat as
// the log grows 4x at a constant live window, while the lifecycle-less
// store's replay grows with the whole flushed log. The experiment itself
// already asserts that every append succeeded and that evicted reads were
// served from the cold tier.
func TestTieringShape(t *testing.T) {
	rep := runExperiment(t, "ablate-tiering")
	onFirst, ok1 := rep.Value("Replay (lifecycle on)", "1x")
	onLast, ok2 := rep.Value("Replay (lifecycle on)", "4x")
	offFirst, ok3 := rep.Value("Replay (lifecycle off)", "1x")
	offLast, ok4 := rep.Value("Replay (lifecycle off)", "4x")
	if !ok1 || !ok2 || !ok3 || !ok4 {
		t.Fatal("missing replay points")
	}
	// Checkpoints bound replay: 4x log growth must not grow the replayed
	// suffix beyond one checkpoint interval of slack.
	if onLast > 1.3*onFirst+256 {
		t.Errorf("lifecycle-on replay grew with the log: 1x=%.0f 4x=%.0f entries", onFirst, onLast)
	}
	// The ablation baseline rescans everything flushed — it must grow.
	if offLast < 2*offFirst {
		t.Errorf("lifecycle-off replay did not grow: 1x=%.0f 4x=%.0f entries", offFirst, offLast)
	}
	if raceEnabled {
		return // wall-clock assertions are meaningless under -race
	}
	recFirst, _ := rep.Value("Recovery (lifecycle on)", "1x")
	recLast, ok := rep.Value("Recovery (lifecycle on)", "4x")
	if !ok {
		t.Fatal("missing recovery points")
	}
	// Lenient flatness: bounded replay must keep recovery time from
	// tracking log growth (4x data, well under 2.5x time).
	if recLast > 2.5*recFirst+1 {
		t.Errorf("lifecycle-on recovery time grew with the log: 1x=%.2fms 4x=%.2fms", recFirst, recLast)
	}
}

func TestFig11Shape(t *testing.T) {
	if raceEnabled {
		t.Skip("measurement-based shape test skipped under the race detector")
	}
	// The modeled throughput depends on how ordering requests coalesce,
	// which follows wall-clock batching windows — a slow window on a
	// loaded machine skews the 3-vs-6-shard ratio. Retry once before
	// declaring a regression, like the other shape tests.
	var err error
	for attempt := 1; attempt <= 2; attempt++ {
		rep := runExperiment(t, "fig11")
		if err = fig11ShapeGates(rep); err == nil {
			return
		}
		t.Logf("attempt %d: %v", attempt, err)
	}
	t.Error(err)
}

func fig11ShapeGates(rep *Report) error {
	thr3, _ := rep.Value("Throughput (3 shards)", "4")
	thr6, _ := rep.Value("Throughput (6 shards)", "4")
	rd3, _ := rep.Value("Read lat (3 shards)", "4")
	rd6, _ := rep.Value("Read lat (6 shards)", "4")
	if thr3 <= 0 || thr6 <= 0 {
		return fmt.Errorf("missing throughput values")
	}
	// Paper: double the shards => ~double the throughput. Quick mode uses
	// few ops, so accept a modestly smaller factor against sampling noise.
	if thr6 < 1.4*thr3 {
		return fmt.Errorf("6 shards (%.0fk) not well above 3 shards (%.0fk)", thr6, thr3)
	}
	// Reads are local: latency roughly unaffected by data-layer scale.
	if rd6 > 2.5*rd3+1 {
		return fmt.Errorf("read latency grew with shards: %.2fms vs %.2fms", rd3, rd6)
	}
	return nil
}

func TestAblations(t *testing.T) {
	batch := runExperiment(t, "ablate-batch")
	// Larger windows must reduce per-request root messages.
	small, _ := batch.Value("Root msgs per request", "0s")
	big, ok := batch.Value("Root msgs per request", "100µs")
	if !ok {
		t.Fatal("missing 100µs point")
	}
	if big > small {
		t.Errorf("aggregation not reducing root load: %.3f -> %.3f", small, big)
	}

	cache := runExperiment(t, "ablate-cache")
	on, _ := cache.Value("Read throughput", "on")
	off, _ := cache.Value("Read throughput", "off")
	if on < off {
		t.Errorf("cache made reads slower: on=%.0f off=%.0f", on, off)
	}

	hold := runExperiment(t, "ablate-readhold")
	s0, _ := hold.Value("Read success", "0s")
	s5, ok := hold.Value("Read success", "5ms")
	if !ok {
		t.Fatal("missing 5ms point")
	}
	if s5 < s0 {
		t.Errorf("read-hold did not improve success: 0s=%.0f%% 5ms=%.0f%%", s0, s5)
	}
}

func TestAblateClientBatchShape(t *testing.T) {
	if raceEnabled {
		t.Skip("measurement-based shape test skipped under the race detector")
	}
	rep := runExperiment(t, "ablate-clientbatch")
	thrOff, ok1 := rep.Value("Append throughput", "off")
	thrOn, ok2 := rep.Value("Append throughput", "on")
	if !ok1 || !ok2 || thrOff <= 0 {
		t.Fatalf("missing throughput values: off=%v on=%v", thrOff, thrOn)
	}
	// ISSUE acceptance: batching buys >= 2x modeled records/sec under
	// concurrent callers (the leaf sequencer's three OrderReqs per append
	// amortize across the batch).
	if thrOn < 2*thrOff {
		t.Errorf("batching gain too small: on=%.0fk off=%.0fk (<2x)", thrOn, thrOff)
	}
	size, ok := rep.Value("Mean batch size", "on")
	if !ok || size < 2 {
		t.Errorf("mean batch size %.1f, want >= 2 under concurrent callers", size)
	}
	latOff, ok1 := rep.Value("1-client mean latency", "off")
	latOn, ok2 := rep.Value("1-client mean latency", "on")
	if !ok1 || !ok2 || latOff <= 0 {
		t.Fatalf("missing latency values: off=%v on=%v", latOff, latOn)
	}
	// A lone closed-loop client pays at most the linger (100 µs) on top of
	// the unbatched latency; allow scheduling slack on loaded CI machines.
	linger := clientBatchTuning().MaxBatchDelay.Seconds() * 1e6
	const slackUsec = 1000
	if latOn > latOff+linger+slackUsec {
		t.Errorf("single-client latency regressed beyond the linger: on=%.0fµs off=%.0fµs linger=%.0fµs",
			latOn, latOff, linger)
	}
}

func TestAblateReadPathShape(t *testing.T) {
	if raceEnabled {
		t.Skip("measurement-based shape test skipped under the race detector")
	}
	// The latency gate compares two ~100 µs measurements taken in separate
	// windows; when the whole-repo test sweep runs every package in
	// parallel, a scheduler stall on one side shows up as a multi-x
	// "regression". Retry once before failing.
	var err error
	for attempt := 1; attempt <= 2; attempt++ {
		rep := runExperiment(t, "ablate-readpath")
		if err = readPathShapeGates(rep); err == nil {
			return
		}
		t.Logf("attempt %d: %v", attempt, err)
	}
	t.Error(err)
}

// readPathShapeGates checks one ablate-readpath report against the
// acceptance bars of the read-lane PR.
func readPathShapeGates(rep *Report) error {
	// ISSUE acceptance: >= 4x modeled read throughput at the largest reader
	// count under the 95% read mix (the read lane divides read-class work
	// across the replica's worker pool).
	thrOff, ok1 := rep.Value("95%R lane off", "64")
	thrOn, ok2 := rep.Value("95%R lane on", "64")
	if !ok1 || !ok2 || thrOff <= 0 {
		return fmt.Errorf("missing 64-reader throughput values: off=%v on=%v", thrOff, thrOn)
	}
	if thrOn < 4*thrOff {
		return fmt.Errorf("lane gain too small at 64 readers/95%%R: on=%.0fk off=%.0fk (<4x)", thrOn, thrOff)
	}
	// The 50% mix still benefits but less: the mutation stream stays serial.
	mixOff, ok1 := rep.Value("50%R lane off", "64")
	mixOn, ok2 := rep.Value("50%R lane on", "64")
	if !ok1 || !ok2 || mixOff <= 0 {
		return fmt.Errorf("missing 50%%R values: off=%v on=%v", mixOff, mixOn)
	}
	if mixOn < mixOff {
		return fmt.Errorf("lane hurt the 50%%R mix: on=%.0fk off=%.0fk", mixOn, mixOff)
	}
	// ISSUE acceptance: a lone closed-loop reader must not regress beyond
	// 10% (plus scheduling slack for loaded CI machines).
	latOff, ok1 := rep.Value("1-reader lat off", "1")
	latOn, ok2 := rep.Value("1-reader lat on", "1")
	if !ok1 || !ok2 || latOff <= 0 {
		return fmt.Errorf("missing single-reader latency values: off=%v on=%v", latOff, latOn)
	}
	// 100 µs absolute slack: the measurement is ~100 µs and the full test
	// suite runs packages in parallel, so scheduling noise alone can add
	// tens of µs to either side.
	const slackUsec = 100
	if latOn > 1.10*latOff+slackUsec {
		return fmt.Errorf("single-reader latency regressed: on=%.0fµs off=%.0fµs (>10%%)", latOn, latOff)
	}
	return nil
}

func TestAblateWritePathShape(t *testing.T) {
	if raceEnabled {
		t.Skip("measurement-based shape test skipped under the race detector")
	}
	rep := runExperiment(t, "ablate-writepath")
	// ISSUE acceptance: >= 4x modeled append throughput at the largest
	// writer count across >= 8 colors with the full write path vs the
	// serialized one.
	thrSerial, ok1 := rep.Value("serial", "64")
	thrFull, ok2 := rep.Value("full", "64")
	if !ok1 || !ok2 || thrSerial <= 0 {
		t.Fatalf("missing 64-writer throughput values: serial=%v full=%v", thrSerial, thrFull)
	}
	if thrFull < 4*thrSerial {
		t.Errorf("write-path gain too small at 64 writers: full=%.0fk serial=%.0fk (<4x)", thrFull, thrSerial)
	}
	// Each ablation step must not regress the previous one.
	thrLanes, ok := rep.Value("+lanes", "64")
	if !ok || thrLanes < thrSerial {
		t.Errorf("write lanes alone regressed throughput: lanes=%.0fk serial=%.0fk", thrLanes, thrSerial)
	}
	thrGC, ok := rep.Value("+group-commit", "64")
	if !ok || thrGC < 0.9*thrLanes {
		t.Errorf("group commit regressed the lanes mode: gc=%.0fk lanes=%.0fk", thrGC, thrLanes)
	}
	// ISSUE acceptance: a lone closed-loop writer must not regress beyond
	// 10% (plus scheduling slack for loaded CI machines).
	latSerial, ok1 := rep.Value("1-writer lat serial", "1")
	latFull, ok2 := rep.Value("1-writer lat full", "1")
	if !ok1 || !ok2 || latSerial <= 0 {
		t.Fatalf("missing single-writer latency values: serial=%v full=%v", latSerial, latFull)
	}
	const slackUsec = 100
	if latFull > 1.10*latSerial+slackUsec {
		t.Errorf("single-writer latency regressed: full=%.0fµs serial=%.0fµs (>10%%)", latFull, latSerial)
	}
	// Satellite: drop counters are reported and must be zero on the
	// healthy path — the silent-loss modes are now countable, not silent.
	for _, s := range []string{"append drops (full)", "oreq drops (full)"} {
		for _, label := range []string{"1", "64"} {
			d, ok := rep.Value(s, label)
			if !ok {
				t.Fatalf("missing %s at %s writers", s, label)
			}
			if d != 0 {
				t.Errorf("%s = %.0f at %s writers, want 0", s, d, label)
			}
		}
	}
}

func TestAblateSeqShape(t *testing.T) {
	if raceEnabled {
		t.Skip("measurement-based shape test skipped under the race detector")
	}
	// Both the throughput model (wall-clock batching windows decide how
	// order requests coalesce) and the latency gate (two ~100 µs
	// measurements in separate windows) are noise-sensitive on a loaded
	// machine; retry once before declaring a regression.
	var err error
	for attempt := 1; attempt <= 2; attempt++ {
		rep := runExperiment(t, "ablate-seq")
		if err = seqPathShapeGates(rep); err == nil {
			return
		}
		t.Logf("attempt %d: %v", attempt, err)
	}
	t.Error(err)
}

// seqPathShapeGates checks one ablate-seq report against the acceptance
// bars of the lock-free-sequencer PR.
func seqPathShapeGates(rep *Report) error {
	// ISSUE acceptance: >= 3x modeled ordering throughput at 64 concurrent
	// colors with the full hot path vs the serialized delivery loop.
	thrSerial, ok1 := rep.Value("serial", "64")
	thrFull, ok2 := rep.Value("full", "64")
	if !ok1 || !ok2 || thrSerial <= 0 {
		return fmt.Errorf("missing 64-color throughput values: serial=%v full=%v", thrSerial, thrFull)
	}
	if thrFull < 3*thrSerial {
		return fmt.Errorf("hot-path gain too small at 64 colors: full=%.0fk serial=%.0fk (<3x)", thrFull, thrSerial)
	}
	// The order lane alone must not regress the serialized loop.
	thrLanes, ok := rep.Value("+lanes", "64")
	if !ok || thrLanes < thrSerial {
		return fmt.Errorf("order lanes alone regressed throughput: lanes=%.0fk serial=%.0fk", thrLanes, thrSerial)
	}
	// ISSUE acceptance: a lone closed-loop driver's order round-trip must
	// stay within 10% (plus scheduling slack for loaded CI machines).
	latSerial, ok1 := rep.Value("1-driver lat serial", "1")
	latFull, ok2 := rep.Value("1-driver lat full", "1")
	if !ok1 || !ok2 || latSerial <= 0 {
		return fmt.Errorf("missing single-driver latency values: serial=%v full=%v", latSerial, latFull)
	}
	const slackUsec = 100
	if latFull > 1.10*latSerial+slackUsec {
		return fmt.Errorf("single-driver latency regressed: full=%.0fµs serial=%.0fµs (>10%%)", latFull, latSerial)
	}
	return nil
}

func TestReportRendering(t *testing.T) {
	rep := &Report{ID: "x", Title: "t", XHeader: "h"}
	if !strings.Contains(rep.String(), "x: t") {
		t.Fatal("report header missing")
	}
	if _, ok := rep.Value("nope", "nope"); ok {
		t.Fatal("phantom value")
	}
}

func TestExtBurstShape(t *testing.T) {
	rep := runExperiment(t, "ext-burst")
	for _, label := range []string{"50", "200"} {
		pct, ok := rep.Value("Completed", label)
		if !ok {
			t.Fatalf("missing completion at %s", label)
		}
		if pct < 100 {
			t.Errorf("burst %s lost work: %.1f%% completed", label, pct)
		}
	}
}

func TestAblateCodecShape(t *testing.T) {
	if raceEnabled {
		t.Skip("measurement-based shape test skipped under the race detector")
	}
	// The gates compare socket throughput measured in separate time
	// windows, so a loaded machine (e.g. the whole-repo `go test ./...`
	// sweep running every package in parallel) can hand one codec a bad
	// window. Retry before declaring a regression.
	var err error
	for attempt := 1; attempt <= 3; attempt++ {
		rep := runExperiment(t, "ablate-codec")
		if err = codecShapeGates(rep); err == nil {
			return
		}
		t.Logf("attempt %d: %v", attempt, err)
	}
	t.Error(err)
}

func TestAblateQoSShape(t *testing.T) {
	if raceEnabled {
		t.Skip("measurement-based shape test skipped under the race detector")
	}
	// Both gates compare wall-clock measurements taken in separate time
	// windows, so a loaded machine can hand one side a bad window; retry
	// once before declaring a regression.
	var err error
	for attempt := 1; attempt <= 2; attempt++ {
		rep := runExperiment(t, "ablate-qos")
		if err = qosShapeGates(rep); err == nil {
			return
		}
		t.Logf("attempt %d: %v", attempt, err)
	}
	t.Error(err)
}

// qosShapeGates checks one ablate-qos report against the acceptance bars:
// the victim keeps the dominant share of served records under the
// aggressor flood (and >= ~80% of its solo wall-clock throughput when the
// host is fast enough for that comparison to mean anything), the
// aggressor actually gets throttled, nothing is shed at nominal (solo)
// load, and hedging cuts the slow-replica read P99.
func qosShapeGates(rep *Report) error {
	solo, ok1 := rep.Value("victim appends", "baseline")
	noisy, ok2 := rep.Value("victim appends", "qos")
	if !ok1 || !ok2 || solo <= 0 {
		return fmt.Errorf("missing victim throughput values: solo=%v noisy=%v", solo, noisy)
	}
	// The replica-side share gate is host-speed-independent: admission
	// caps the aggressor at 200 rec/s + burst, so however fast the window
	// ran, the victim must have received the overwhelming share of served
	// records. (A fair-share scheduler without admission would leave the
	// victim near its 4/5 lane weight; broken isolation drops it further.)
	shareQoS, ok := rep.Value("victim served share", "qos")
	if !ok {
		return fmt.Errorf("missing victim served share")
	}
	if shareQoS < 80 {
		return fmt.Errorf("noisy-neighbor isolation broken: victim served share %.1f%% (<80%%)", shareQoS)
	}
	// The solo-vs-noisy wall-clock ratio compares two separate time
	// windows. On an idle host it is the paper-style acceptance bar; on a
	// contended host (the whole-repo test sweep on one core) the two
	// windows mostly measure ambient load, so only a catastrophic floor
	// is enforced there — the share gate above still binds.
	const nominalKOps = 12 // fresh single-core runs deliver ~20k ops/s
	ratioBar := 0.8
	if solo < nominalKOps {
		ratioBar = 0.4
	}
	if noisy < ratioBar*solo {
		return fmt.Errorf("noisy-neighbor isolation broken: victim %.2fk ops/s with aggressor vs %.2fk solo (<%.0f%%)", noisy, solo, ratioBar*100)
	}
	if throttled, ok := rep.Value("agg throttled", "qos"); !ok || throttled == 0 {
		return fmt.Errorf("aggressor was never throttled (admission control inert): %v", throttled)
	}
	if sheds, ok := rep.Value("lane sheds", "baseline"); !ok || sheds != 0 {
		return fmt.Errorf("unexpected sheds at nominal load: %v", sheds)
	}
	unhedged, ok1 := rep.Value("read P99", "baseline")
	hedged, ok2 := rep.Value("read P99", "qos")
	if !ok1 || !ok2 || unhedged <= 0 {
		return fmt.Errorf("missing read P99 values: unhedged=%v hedged=%v", unhedged, hedged)
	}
	if hedged >= 0.9*unhedged {
		return fmt.Errorf("hedging did not cut the slow-replica tail: P99 hedged=%.0fus unhedged=%.0fus", hedged, unhedged)
	}
	if n, ok := rep.Value("hedged rounds", "qos"); !ok || n == 0 {
		return fmt.Errorf("no rounds hedged (hedging inert): %v", n)
	}
	return nil
}

// codecShapeGates checks one ablate-codec report against the acceptance
// bars: >= 2x TCP-deployment append throughput with the binary codec vs
// gob at the largest sender count, and no regression (beyond window noise)
// at the smallest.
func codecShapeGates(rep *Report) error {
	top := "8" // quick mode's largest sender count
	gobThr, ok1 := rep.Value("gob", top)
	binThr, ok2 := rep.Value("binary", top)
	if !ok1 || !ok2 || gobThr <= 0 {
		return fmt.Errorf("missing %s-sender throughput values: gob=%v binary=%v", top, gobThr, binThr)
	}
	if binThr < 2*gobThr {
		return fmt.Errorf("codec gain too small at %s senders: binary=%.0fk gob=%.0fk (<2x)", top, binThr, gobThr)
	}
	// Binary must also win (or at worst tie within noise) with a single
	// sender pair. Both codecs are sink-bound at this count, so window
	// placement dominates on a busy machine — allow a wider margin than
	// the headline gate.
	gob1, ok1 := rep.Value("gob", "2")
	bin1, ok2 := rep.Value("binary", "2")
	if !ok1 || !ok2 {
		return fmt.Errorf("missing 2-sender values: gob=%v binary=%v", gob1, bin1)
	}
	if bin1 < 0.75*gob1 {
		return fmt.Errorf("binary codec regressed the 2-sender stream: binary=%.0fk gob=%.0fk", bin1, gob1)
	}
	return nil
}

func TestAblateReconfigShape(t *testing.T) {
	if raceEnabled {
		t.Skip("measurement-based shape test skipped under the race detector")
	}
	// Three wall-clock windows on a shared machine can each catch a bad
	// scheduling patch; retry once before declaring a regression.
	var err error
	for attempt := 1; attempt <= 2; attempt++ {
		rep := runExperiment(t, "ablate-reconfig")
		if err = reconfigShapeGates(rep); err == nil {
			return
		}
		t.Logf("attempt %d: %v", attempt, err)
	}
	t.Error(err)
}

// reconfigShapeGates checks one ablate-reconfig report against the
// DESIGN.md §15 availability bars: the dip while the split + drain run is
// bounded (no stall — clients ride typed rejections and re-resolution),
// and post-split throughput recovers to >= 95% of pre-split.
func reconfigShapeGates(rep *Report) error {
	pre, ok1 := rep.Value("append throughput", "pre")
	during, ok2 := rep.Value("append throughput", "during")
	post, ok3 := rep.Value("append throughput", "post")
	if !ok1 || !ok2 || !ok3 || pre <= 0 {
		return fmt.Errorf("missing phase values: pre=%v during=%v post=%v", pre, during, post)
	}
	if during < 0.5*pre {
		return fmt.Errorf("reconfiguration dip not bounded: during=%.1fk pre=%.1fk (<50%%)", during, pre)
	}
	if post < 0.95*pre {
		return fmt.Errorf("post-split throughput did not recover: post=%.1fk pre=%.1fk (<95%%)", post, pre)
	}
	return nil
}
