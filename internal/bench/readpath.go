package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/metrics"
	"flexlog/internal/pmem"
	"flexlog/internal/ssd"
	"flexlog/internal/types"
	"flexlog/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "ablate-readpath",
		Title: "Ablation: parallel replica read path (read lane + striped cache)",
		Run:   runAblateReadPath,
	})
}

// runAblateReadPath measures what the concurrent read/subscribe lane buys:
//
//   - Throughput (modeled, functional run): N reader clients run a read-
//     heavy mix against one shard. With the lane off every ReadReq is
//     processed serially on the replica's delivery loop, competing with
//     the mutation stream; with the lane on, read-class messages fan out
//     across the replica's worker pool and only mutations stay serial.
//     Modeled time charges read-class work at 1/workers of its serial
//     cost on the busiest node (the workers run concurrently) — the same
//     message+device accounting as fig4/fig11, split by message class.
//   - Latency (injected run): a single closed-loop reader, where the lane
//     cannot help — the acceptance bar is that it also does not hurt
//     (dispatch overhead must stay in the noise).
//
// Client-side append batching is ON in both modes — all readers share one
// client handle so concurrent appends actually coalesce — keeping the
// mutation lane equally amortized; the comparison isolates the read path.
func runAblateReadPath(cfg RunConfig) (*Report, error) {
	readerCounts := []int{1, 4, 16, 64}
	opsPerReader := 300
	latOps := 150
	if cfg.Quick {
		readerCounts = []int{1, 64}
		opsPerReader = 80
		latOps = 40
	}

	series := map[int]map[string]*metrics.Series{
		95: {
			"off": metrics.NewSeries("95%R lane off", "kOps/s"),
			"on":  metrics.NewSeries("95%R lane on", "kOps/s"),
		},
		50: {
			"off": metrics.NewSeries("50%R lane off", "kOps/s"),
			"on":  metrics.NewSeries("50%R lane on", "kOps/s"),
		},
	}
	notes := []string{
		"modeled throughput over the busiest node; read-class messages and device reads charged at 1/workers with the lane on",
		"client-side append batching enabled in both modes; reads hit the striped cache zero-copy",
	}

	var laneNote string
	for _, mix := range []int{95, 50} {
		for _, readers := range readerCounts {
			for _, mode := range []string{"off", "on"} {
				ops, note, err := readPathThroughput(mix, readers, opsPerReader, mode == "on")
				if err != nil {
					return nil, err
				}
				series[mix][mode].Add(fmt.Sprint(readers), ops/1e3)
				// Keep the lane counters of the biggest lane-on run.
				if mode == "on" && mix == 95 && readers == readerCounts[len(readerCounts)-1] {
					laneNote = note
				}
			}
		}
	}
	if laneNote != "" {
		notes = append(notes, laneNote)
	}

	// Single-reader injected latency: the lane must not tax a lone reader.
	// One point each, anchored at the 1-reader row (Table is positional).
	latOffS := metrics.NewSeries("1-reader lat off", "usec")
	latOnS := metrics.NewSeries("1-reader lat on", "usec")
	for _, mode := range []string{"off", "on"} {
		var lat time.Duration
		err := withLatencyInjection(func() error {
			var err error
			lat, err = readPathLatency(latOps, mode == "on")
			return err
		})
		if err != nil {
			return nil, err
		}
		s := latOffS
		if mode == "on" {
			s = latOnS
		}
		s.Add(fmt.Sprint(readerCounts[0]), float64(lat)/1e3)
	}

	return &Report{
		ID:      "ablate-readpath",
		Title:   "read-path ablation: the read lane unserializes replica reads; a lone reader pays nothing",
		XHeader: "readers",
		Series: []*metrics.Series{
			series[95]["off"], series[95]["on"],
			series[50]["off"], series[50]["on"],
			latOffS, latOnS,
		},
		Notes: notes,
	}, nil
}

// readPathTuning is clientBatchTuning with a 10x linger. The runs here are
// functional (modeled time, not wall time), but coalescing happens in real
// time: on a loaded CI machine a 100 µs linger cuts ragged small batches,
// which makes the serial mutation share — and so the lane-off/lane-on
// ratio — noisy across runs. The longer linger makes batches cut on size,
// not on scheduling luck, in both lane modes alike.
func readPathTuning() core.BatchConfig {
	t := clientBatchTuning()
	t.MaxBatchDelay = time.Millisecond
	return t
}

// readPathCluster builds the 1-shard deployment with the lane on or off.
func readPathCluster(laneOn bool) (*core.Cluster, int, error) {
	ccfg := core.BenchClusterConfig()
	ccfg.SeqBackups = 0
	workers := ccfg.ReadWorkers
	if !laneOn {
		ccfg.ReadWorkers = 0
		workers = 1
	}
	cl, err := core.SimpleCluster(ccfg, 1)
	return cl, workers, err
}

// readPathWorkload drives the mix: all readers share one batched client
// handle (so concurrent appends coalesce), each reader appends a small
// warm-up working set, then runs mix% reads against it. afterWarmup fires
// once all readers are warm.
func readPathWorkload(cl *core.Cluster, mix, readers, opsPerReader int, appendH, readH *metrics.Histogram, afterWarmup func()) error {
	payload := workload.Payload(128, 7)
	var firstErr error
	var mu sync.Mutex
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	c, err := cl.NewClient(core.WithBatching(readPathTuning()))
	if err != nil {
		return err
	}
	type workerState struct {
		c   *core.Client
		own []types.SN
	}
	workers := make([]*workerState, readers)
	var warm sync.WaitGroup
	for w := 0; w < readers; w++ {
		workers[w] = &workerState{c: c}
		warm.Add(1)
		go func(ws *workerState) {
			defer warm.Done()
			for i := 0; i < 8; i++ {
				sn, err := ws.c.Append([][]byte{payload}, types.MasterColor)
				if err != nil {
					fail(fmt.Errorf("warmup append: %w", err))
					return
				}
				ws.own = append(ws.own, sn)
			}
		}(workers[w])
	}
	warm.Wait()
	if firstErr != nil {
		return firstErr
	}
	if afterWarmup != nil {
		afterWarmup()
	}

	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int, ws *workerState) {
			defer wg.Done()
			m := workload.NewMix(mix, int64(w)+5)
			rng := rand.New(rand.NewSource(int64(w) + 23))
			for i := 0; i < opsPerReader; i++ {
				if m.NextIsRead() {
					sn := ws.own[rng.Intn(len(ws.own))]
					t0 := time.Now()
					if _, err := ws.c.Read(sn, types.MasterColor); err != nil {
						fail(fmt.Errorf("read: %w", err))
						return
					}
					if readH != nil {
						readH.Record(time.Since(t0))
					}
					continue
				}
				t0 := time.Now()
				sn, err := ws.c.Append([][]byte{payload}, types.MasterColor)
				if err != nil {
					fail(fmt.Errorf("append: %w", err))
					return
				}
				if appendH != nil {
					appendH.Record(time.Since(t0))
				}
				ws.own = append(ws.own, sn)
				if len(ws.own) > 64 {
					ws.own = ws.own[1:]
				}
			}
		}(w, workers[w])
	}
	wg.Wait()
	return firstErr
}

// readPathBaseline snapshots per-node counters at the start of the
// measured phase: total and read-class message counts, and replica device
// time split into its read and write components.
type readPathBaseline struct {
	msgs     map[types.NodeID]uint64
	readMsgs map[types.NodeID]uint64
	readDev  map[types.NodeID]time.Duration
	writeDev map[types.NodeID]time.Duration
}

func snapshotReadPath(cl *core.Cluster) readPathBaseline {
	rd, wr := replicaDeviceSplit(cl)
	return readPathBaseline{
		msgs:     cl.Network().NodeDelivered(),
		readMsgs: cl.Network().NodeReadDelivered(),
		readDev:  rd,
		writeDev: wr,
	}
}

// replicaDeviceSplit returns per-replica modeled device time split into
// the read side and the write side, using the calibrated bench models.
// TimeOf is linear in the Stats fields, so zeroing one half splits it.
func replicaDeviceSplit(cl *core.Cluster) (readDev, writeDev map[types.NodeID]time.Duration) {
	storageCfg := core.BenchClusterConfig().Storage
	readDev = make(map[types.NodeID]time.Duration)
	writeDev = make(map[types.NodeID]time.Duration)
	for _, sh := range cl.Topology().ShardsInRegion(types.MasterColor) {
		for _, id := range sh.Replicas {
			r := cl.Replica(id)
			if r == nil {
				continue
			}
			s := r.Store().Stats()
			readDev[id] = storageCfg.PMModel.TimeOf(pmem.Stats{Reads: s.PM.Reads, BytesRead: s.PM.BytesRead}) +
				storageCfg.SSDModel.TimeOf(ssd.Stats{Reads: s.SSD.Reads, BytesRead: s.SSD.BytesRead})
			writeDev[id] = storageCfg.PMModel.TimeOf(s.PM) + storageCfg.SSDModel.TimeOf(s.SSD) - readDev[id]
		}
	}
	return readDev, writeDev
}

// readPathBusiestTime is busiestNodeTime made lane-aware: on each node the
// mutation stream (messages and device writes) stays serial, while the
// read-class messages and device reads divide across the lane workers.
func readPathBusiestTime(cl *core.Cluster, base readPathBaseline, laneWorkers int) time.Duration {
	proc := cl.Network().Model().ProcCost
	msgs := cl.Network().NodeDelivered()
	readMsgs := cl.Network().NodeReadDelivered()
	readDev, writeDev := replicaDeviceSplit(cl)
	var busiest time.Duration
	for id, n := range msgs {
		if id >= 100_000 {
			continue // clients model the paper's load-generating fleet
		}
		reads := readMsgs[id] - base.readMsgs[id]
		mut := (n - base.msgs[id]) - reads
		serial := time.Duration(mut)*proc + (writeDev[id] - base.writeDev[id])
		par := time.Duration(reads)*proc + (readDev[id] - base.readDev[id])
		busy := serial + par/time.Duration(laneWorkers)
		if busy > busiest {
			busiest = busy
		}
	}
	return busiest
}

// readPathThroughput returns the modeled ops/s of one functional run, plus
// a lane-counter note for lane-on runs.
func readPathThroughput(mix, readers, opsPerReader int, laneOn bool) (float64, string, error) {
	cl, laneWorkers, err := readPathCluster(laneOn)
	if err != nil {
		return 0, "", err
	}
	defer cl.Stop()
	var base readPathBaseline
	err = readPathWorkload(cl, mix, readers, opsPerReader, nil, nil, func() {
		base = snapshotReadPath(cl)
	})
	if err != nil {
		return 0, "", err
	}
	busiest := readPathBusiestTime(cl, base, laneWorkers)
	if busiest <= 0 {
		return 0, "", fmt.Errorf("readpath: no modeled busy time")
	}

	note := ""
	if laneOn {
		var enq, maxDepth, wakeups uint64
		var busy time.Duration
		for _, sh := range cl.Topology().ShardsInRegion(types.MasterColor) {
			for _, id := range sh.Replicas {
				if ls, ok := cl.Network().LaneStats(id); ok {
					enq += ls.Enqueued
					busy += ls.Busy
					if ls.MaxDepth > maxDepth {
						maxDepth = ls.MaxDepth
					}
				}
				if r := cl.Replica(id); r != nil {
					wakeups += r.Stats().HeldWakeups
				}
			}
		}
		note = fmt.Sprintf("lane counters at %d readers / %d%%R: %d enqueued, max queue depth %d, worker busy %v, %d held-read wakeups",
			readers, mix, enq, maxDepth, busy.Round(time.Microsecond), wakeups)
	}
	return float64(readers*opsPerReader) / busiest.Seconds(), note, nil
}

// readPathLatency returns the measured mean read latency of one lone
// closed-loop reader under calibrated injection.
func readPathLatency(ops int, laneOn bool) (time.Duration, error) {
	cl, _, err := readPathCluster(laneOn)
	if err != nil {
		return 0, err
	}
	defer cl.Stop()
	h := metrics.NewHistogram()
	if err := readPathWorkload(cl, 95, 1, ops, nil, h, nil); err != nil {
		return 0, err
	}
	if h.Count() == 0 {
		return 0, fmt.Errorf("readpath: latency run recorded no reads")
	}
	return h.Mean(), nil
}
