package bench

import (
	"errors"
	"sync"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/metrics"
	"flexlog/internal/pmem"
	"flexlog/internal/ssd"
	"flexlog/internal/storage"
	"flexlog/internal/transport"
	"flexlog/internal/types"
	"flexlog/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "ablate-batch",
		Title: "Ablation: sequencer aggregation window vs ordering latency and root load",
		Run:   runAblateBatch,
	})
	register(Experiment{
		ID:    "ablate-cache",
		Title: "Ablation: DRAM cache on/off in the storage read path",
		Run:   runAblateCache,
	})
	register(Experiment{
		ID:    "ablate-readhold",
		Title: "Ablation: read-hold timeout vs ⊥ rate for reads racing appends (§6.3)",
		Run:   runAblateReadHold,
	})
}

// runAblateBatch sweeps the leaf aggregation window: larger windows cut
// the root's message load (throughput capacity) at the cost of added
// append latency — the §5.2 design tradeoff.
func runAblateBatch(cfg RunConfig) (*Report, error) {
	windows := []time.Duration{0, time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond}
	opsPerDriver := 2000
	drivers := 8
	latOps := 150
	if cfg.Quick {
		opsPerDriver, latOps = 500, 40
	}
	latS := metrics.NewSeries("Append order latency", "usec")
	rootS := metrics.NewSeries("Root msgs per request", "")

	for _, w := range windows {
		label := w.String()
		// Root load, functional.
		net := transport.NewNetwork(transport.DatacenterLink())
		leaf, _, stop, err := buildSeqTree(net, w)
		if err != nil {
			return nil, err
		}
		ds := make([]*orderDriver, drivers)
		for i := range ds {
			if ds[i], err = newOrderDriver(net, types.NodeID(100+i)); err != nil {
				stop()
				return nil, err
			}
		}
		var wg sync.WaitGroup
		var firstErr error
		var mu sync.Mutex
		for i := 0; i < drivers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for j := 0; j < opsPerDriver; j++ {
					if _, err := ds[i].request(leaf, types.MasterColor, 1, 30*time.Second); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
			}(i)
		}
		wg.Wait()
		stop()
		if firstErr != nil {
			return nil, firstErr
		}
		rootMsgs := net.NodeDelivered()[9000]
		rootS.Add(label, float64(rootMsgs)/float64(drivers*opsPerDriver))

		// Latency, injected, single client.
		err = withLatencyInjection(func() error {
			net2 := transport.NewNetwork(transport.DatacenterLink())
			leaf2, _, stop2, err := buildSeqTree(net2, w)
			if err != nil {
				return err
			}
			defer stop2()
			d, err := newOrderDriver(net2, 100)
			if err != nil {
				return err
			}
			h := metrics.NewHistogram()
			for i := 0; i < latOps; i++ {
				lat, err := d.request(leaf2, types.MasterColor, 1, 10*time.Second)
				if err != nil {
					return err
				}
				h.Record(lat)
			}
			latS.Add(label, float64(h.Mean())/1e3)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return &Report{
		ID:      "ablate-batch",
		Title:   "aggregation window tradeoff: fewer root messages vs higher append latency",
		XHeader: "window",
		Series:  []*metrics.Series{latS, rootS},
	}, nil
}

// runAblateCache compares the tiered store's read path with and without
// the DRAM cache under a read-heavy workload.
func runAblateCache(cfg RunConfig) (*Report, error) {
	ops := 20000
	if cfg.Quick {
		ops = 4000
	}
	series := metrics.NewSeries("Read throughput", "ops/s")
	hits := metrics.NewSeries("Cache hit rate", "%")
	for _, cache := range []int{16 << 20, 0} {
		label := "on"
		if cache == 0 {
			label = "off"
		}
		st, err := storage.New(storage.Config{
			SegmentSize: 4 << 20, NumSegments: 16, CacheBytes: cache,
			PMModel: pmem.OptaneBypass(), SSDModel: ssd.NVMe(),
		})
		if err != nil {
			return nil, err
		}
		payload := workload.Payload(1024, 9)
		const n = 4000
		for i := 1; i <= n; i++ {
			st.Put(1, types.Token(i), payload)
			st.Commit(types.Token(i), types.MakeSN(1, uint32(i)))
		}
		base := core.BenchClusterConfig().Storage
		before := base.PMModel.TimeOf(st.Stats().PM)
		keys := workload.NewUniformKeys(n, 3)
		for i := 0; i < ops; i++ {
			// Zipf-ish locality: 90% of reads hit 10% of records.
			k := keys.Next()
			if i%10 != 0 {
				k = k % (n / 10)
			}
			if _, err := st.Get(1, types.MakeSN(1, uint32(k+1))); err != nil {
				return nil, err
			}
		}
		stats := st.Stats()
		devTime := base.PMModel.TimeOf(stats.PM) - before
		perOp := devTime/time.Duration(ops) + 150*time.Nanosecond
		series.Add(label, float64(time.Second/perOp))
		total := stats.CacheHits + stats.CacheMisses
		if total > 0 {
			hits.Add(label, 100*float64(stats.CacheHits)/float64(total))
		} else {
			hits.Add(label, 0)
		}
	}
	return &Report{
		ID:      "ablate-cache",
		Title:   "DRAM cache ablation: read-heavy workload with 90/10 locality",
		XHeader: "cache",
		Series:  []*metrics.Series{series, hits},
	}, nil
}

// runAblateReadHold measures how the §6.3 read-hold timeout masks the race
// between a read and the append whose SN it anticipates.
func runAblateReadHold(cfg RunConfig) (*Report, error) {
	holds := []time.Duration{0, time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond}
	trials := 40
	if cfg.Quick {
		holds = []time.Duration{0, 5 * time.Millisecond}
		trials = 15
	}
	series := metrics.NewSeries("Read success", "%")

	err := withLatencyInjection(func() error {
		for _, hold := range holds {
			ccfg := core.BenchClusterConfig()
			ccfg.ReadHoldTimeout = hold
			ccfg.SeqBackups = 0
			cl, err := core.SimpleCluster(ccfg, 1)
			if err != nil {
				return err
			}
			writer, err := cl.NewClient()
			if err != nil {
				cl.Stop()
				return err
			}
			reader, err := cl.NewClient()
			if err != nil {
				cl.Stop()
				return err
			}
			// Seed so the next SN is predictable.
			last, err := writer.Append([][]byte{[]byte("seed")}, types.MasterColor)
			if err != nil {
				cl.Stop()
				return err
			}
			success := 0
			for i := 0; i < trials; i++ {
				next := last + 1
				done := make(chan types.SN, 1)
				go func() {
					sn, err := writer.Append([][]byte{[]byte("race")}, types.MasterColor)
					if err == nil {
						done <- sn
					} else {
						done <- types.InvalidSN
					}
				}()
				// Read the anticipated SN while the append is in flight.
				if _, err := reader.Read(next, types.MasterColor); err == nil {
					success++
				} else if !errors.Is(err, core.ErrNotFound) {
					cl.Stop()
					return err
				}
				sn := <-done
				if sn.Valid() {
					last = sn
				}
			}
			cl.Stop()
			series.Add(hold.String(), 100*float64(success)/float64(trials))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:      "ablate-readhold",
		Title:   "read-hold ablation: reads racing the append they anticipate; holds mask the race without violating linearizability",
		XHeader: "hold timeout",
		Series:  []*metrics.Series{series},
		Notes:   []string{"a ⊥ under a short hold is legal (§6.3) — the FaaS application re-executes the read"},
	}, nil
}
