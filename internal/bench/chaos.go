package bench

import (
	"context"
	"fmt"
	"time"

	"flexlog/internal/chaos"
	"flexlog/internal/core"
	"flexlog/internal/histcheck"
	"flexlog/internal/metrics"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

func init() {
	register(Experiment{
		ID:    "chaos",
		Title: "Extension: availability under seeded nemeses (chaos engine + history checker)",
		Run:   runChaos,
	})
}

// chaosBenchSeed pins the nemesis schedules and the network fault rng so
// the reported numbers replay bit-for-bit.
const chaosBenchSeed int64 = 20260805

// runChaos measures availability per nemesis family: a recorded workload
// runs against a live cluster while one family of faults is injected —
// lossy links, replica crash/recover, sequencer leader kill/restart, or
// partition blips — and each run reports the append success rate, the
// longest window without an acknowledged append, and the history-checker
// verdict over the run's full operation record.
func runChaos(cfg RunConfig) (*Report, error) {
	dur := 4 * cfg.PointDuration()
	if dur < time.Second {
		dur = time.Second
	}
	colors := []types.ColorID{1, 2}

	avail := metrics.NewSeries("Append availability", "%")
	gap := metrics.NewSeries("Max append gap", "ms")
	acked := metrics.NewSeries("Appends acked", "")
	viol := metrics.NewSeries("History violations", "")

	families := []struct {
		label  string
		events func(replicas []types.NodeID) []chaos.Event
	}{
		{"baseline", func([]types.NodeID) []chaos.Event { return nil }},
		{"lossy-links", func([]types.NodeID) []chaos.Event {
			return []chaos.Event{
				{At: dur / 10, Kind: chaos.EvSetFaults, Fault: transport.FaultModel{
					DropProb: 0.02, DupProb: 0.02, ReorderProb: 0.03, JitterMax: 200 * time.Microsecond}},
				{At: dur * 9 / 10, Kind: chaos.EvClearFaults},
			}
		}},
		{"replica-crash", func(replicas []types.NodeID) []chaos.Event {
			var evs []chaos.Event
			down := 60 * time.Millisecond
			for i, at := 0, dur/10; at+down < dur*9/10; i, at = i+1, at+400*time.Millisecond {
				id := replicas[i%len(replicas)]
				evs = append(evs,
					chaos.Event{At: at, Kind: chaos.EvCrashReplica, Node: id},
					chaos.Event{At: at + down, Kind: chaos.EvRecoverReplica, Node: id})
			}
			return evs
		}},
		{"leader-kill", func([]types.NodeID) []chaos.Event {
			var evs []chaos.Event
			down := 200 * time.Millisecond
			for i, at := 0, dur/10; at+down < dur*9/10; i, at = i+1, at+700*time.Millisecond {
				color := colors[i%len(colors)]
				evs = append(evs,
					chaos.Event{At: at, Kind: chaos.EvKillLeader, Color: color},
					chaos.Event{At: at + down, Kind: chaos.EvRestartLeader, Color: color})
			}
			return evs
		}},
		{"partition", func(replicas []types.NodeID) []chaos.Event {
			var evs []chaos.Event
			down := 40 * time.Millisecond
			for i, at := 0, dur/10; at+down < dur*9/10; i, at = i+1, at+300*time.Millisecond {
				a := replicas[i%len(replicas)]
				b := replicas[(i+1)%len(replicas)]
				evs = append(evs,
					chaos.Event{At: at, Kind: chaos.EvPartition, A: a, B: b},
					chaos.Event{At: at + down, Kind: chaos.EvHeal, A: a, B: b})
			}
			return evs
		}},
	}

	notes := []string{fmt.Sprintf("seed=%d, %s per family; availability = acked appends / attempted", chaosBenchSeed, dur)}
	for _, fam := range families {
		ccfg := core.TestClusterConfig()
		ccfg.FailureTimeout = 100 * time.Millisecond
		// Publish the soak's clusters into the shared registry so
		// flexlog-bench -metrics-dump captures injection counters and
		// per-node state from the last family run.
		ccfg.Obs = cfg.Obs
		cl, err := core.TreeCluster(ccfg, 2, 1)
		if err != nil {
			return nil, err
		}
		var replicas []types.NodeID
		for _, c := range colors {
			for _, sh := range cl.Topology().ShardsInRegion(c) {
				replicas = append(replicas, sh.Replicas...)
			}
		}
		sched := chaos.Schedule{Seed: chaosBenchSeed, Duration: dur, Events: fam.events(replicas)}
		eng := chaos.NewEngine(cl, sched)

		ctx, cancel := context.WithTimeout(context.Background(), dur)
		wl, err := chaos.StartWorkload(ctx, cl, chaos.WorkloadConfig{
			Seed:      chaosBenchSeed,
			Colors:    colors,
			Writers:   2,
			Readers:   1,
			OpTimeout: 2 * time.Second,
		})
		if err != nil {
			cancel()
			cl.Stop()
			return nil, err
		}
		eng.Run(ctx)
		<-ctx.Done()
		cancel()
		wl.Wait()

		if err := eng.HealAndRecover(replicas, colors, 20*time.Second); err != nil {
			cl.Stop()
			return nil, fmt.Errorf("%s: %w", fam.label, err)
		}
		time.Sleep(10 * ccfg.RetryTimeout)
		final, err := chaos.CollectFinal(cl, colors)
		if err != nil {
			cl.Stop()
			return nil, fmt.Errorf("%s: %w", fam.label, err)
		}
		violations := histcheck.Check(wl.Recorder().Ops(), final)
		st := wl.Stats()
		cl.Stop()

		total := st.Appends + st.AppendFails
		pct := 100.0
		if total > 0 {
			pct = 100 * float64(st.Appends) / float64(total)
		}
		avail.Add(fam.label, pct)
		gap.Add(fam.label, float64(st.MaxAppendGap.Milliseconds()))
		acked.Add(fam.label, float64(st.Appends))
		viol.Add(fam.label, float64(len(violations)))
		if len(violations) > 0 {
			notes = append(notes, fmt.Sprintf("%s: %d history violations, e.g. %s", fam.label, len(violations), violations[0]))
		}
	}

	return &Report{
		ID:      "chaos",
		Title:   "Extension: availability under seeded nemeses (chaos engine + history checker)",
		XHeader: "nemesis",
		Series:  []*metrics.Series{avail, gap, acked, viol},
		Notes:   notes,
	}, nil
}
