package bench

import (
	"fmt"
	"sync"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/metrics"
	"flexlog/internal/types"
	"flexlog/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "ablate-clientbatch",
		Title: "Ablation: client-side append batching & pipelining (v2 API)",
		Run:   runAblateClientBatch,
	})
}

// clientBatchTuning is the batching configuration the ablation turns on:
// the DefaultBatchConfig values, pinned here so the experiment (and its
// shape test) does not drift if the library default is retuned.
func clientBatchTuning() core.BatchConfig {
	return core.BatchConfig{
		MaxBatchRecords: 64,
		MaxBatchBytes:   256 << 10,
		MaxBatchDelay:   100 * time.Microsecond,
		MaxInFlight:     4,
	}
}

// runAblateClientBatch measures what the client-side batching layer buys
// and what it costs:
//
//   - Throughput (modeled, functional run): 64 concurrent callers share one
//     client handle and append back-to-back. Unbatched, every append is its
//     own AppendReq broadcast and three OrderReqs at the leaf sequencer;
//     batched, coalesced batches amortize both. Throughput is records over
//     the busiest node's modeled busy time (messages x ProcCost + device
//     time), clients excluded — the fig4/fig11 methodology.
//   - Latency (injected run): a single closed-loop client, where batching
//     can only hurt — each lone append waits out the linger. The regression
//     must stay bounded by MaxBatchDelay.
func runAblateClientBatch(cfg RunConfig) (*Report, error) {
	callers := 64
	opsPerCaller := 400
	latOps := 150
	if cfg.Quick {
		callers, opsPerCaller, latOps = 16, 100, 40
	}

	thruS := metrics.NewSeries("Append throughput", "kRec/s")
	latS := metrics.NewSeries("1-client mean latency", "usec")
	sizeS := metrics.NewSeries("Mean batch size", "rec")

	for _, mode := range []string{"off", "on"} {
		var opts []core.Option
		if mode == "on" {
			opts = append(opts, core.WithBatching(clientBatchTuning()))
		}

		// Throughput, functional.
		ccfg := core.BenchClusterConfig()
		cl, err := core.SimpleCluster(ccfg, 1)
		if err != nil {
			return nil, err
		}
		c, err := cl.NewClient(opts...)
		if err != nil {
			cl.Stop()
			return nil, err
		}
		baseMsgs := cl.Network().NodeDelivered()
		baseDev := replicaDeviceTime(cl)
		payload := workload.Payload(128, 11)
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		for w := 0; w < callers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < opsPerCaller; i++ {
					if _, err := c.Append([][]byte{payload}, types.MasterColor); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("caller %d op %d: %w", w, i, err)
						}
						mu.Unlock()
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if firstErr != nil {
			cl.Stop()
			return nil, firstErr
		}
		busiest := busiestNodeTime(cl, baseMsgs, baseDev)
		if busiest <= 0 {
			cl.Stop()
			return nil, fmt.Errorf("clientbatch: no modeled busy time")
		}
		records := float64(callers * opsPerCaller)
		thruS.Add(mode, records/busiest.Seconds()/1e3)
		if mode == "on" {
			sizeS.Add(mode, c.Metrics().BatchRecords.MeanValue())
		} else {
			sizeS.Add(mode, 1) // every append is its own request
		}
		cl.Stop()

		// Latency, injected, single closed-loop client.
		err = withLatencyInjection(func() error {
			cl2, err := core.SimpleCluster(core.BenchClusterConfig(), 1)
			if err != nil {
				return err
			}
			defer cl2.Stop()
			c2, err := cl2.NewClient(opts...)
			if err != nil {
				return err
			}
			h := metrics.NewHistogram()
			for i := 0; i < latOps; i++ {
				start := time.Now()
				if _, err := c2.Append([][]byte{payload}, types.MasterColor); err != nil {
					return err
				}
				h.Record(time.Since(start))
			}
			latS.Add(mode, float64(h.Mean())/1e3)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	return &Report{
		ID:      "ablate-clientbatch",
		Title:   "client-side batching ablation: coalesced appends amortize ordering and data RPCs; a lone client pays at most the linger",
		XHeader: "batching",
		Series:  []*metrics.Series{thruS, latS, sizeS},
		Notes: []string{
			fmt.Sprintf("%d concurrent callers on one handle; tuning: %d rec / %d KiB / %v linger / %d in flight",
				callers, clientBatchTuning().MaxBatchRecords, clientBatchTuning().MaxBatchBytes>>10,
				clientBatchTuning().MaxBatchDelay, clientBatchTuning().MaxInFlight),
		},
	}, nil
}
