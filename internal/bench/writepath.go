package bench

import (
	"fmt"
	"sync"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/metrics"
	"flexlog/internal/types"
	"flexlog/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "ablate-writepath",
		Title: "Ablation: parallel replica write path (write lanes + group commit + order coalescing)",
		Run:   runAblateWritePath,
	})
}

// writePathChainDepth is the depth of the region chain under the master
// color. With the single shard attached to the deepest leaf, the shard
// lies in every ancestor's region, so chainDepth+1 distinct colors all
// land on the same replicas — the worst case for a serialized write path.
const writePathChainDepth = 7

// writePathModes are the ablation steps, cumulative left to right.
var writePathModes = []string{"serial", "+lanes", "+group-commit", "full"}

// runAblateWritePath measures what each layer of the parallel write path
// buys, on a deployment designed to stress it: a region chain
// master←c1←…←c7 with one shard at the deepest leaf, so 8 colors' append
// streams converge on one replica set.
//
//   - serial:        WriteWorkers=0, GroupCommit=false, OrderCoalesce=false
//     — every mutation runs on the replica's delivery loop and every PM
//     batch is its own transaction, the pre-PR behavior.
//   - +lanes:        the keyed write lane spreads mutation-class messages
//     (and their PM work) across the worker pool by color.
//   - +group-commit: concurrent PM batches fold into shared transactions.
//   - full:          order requests additionally coalesce per color on the
//     replica→sequencer edge.
//
// Throughput is modeled from a functional run — the same busiest-node
// message+device accounting as fig11/ablate-readpath, with write-class
// messages and device writes charged at 1/workers when the lane is on.
// Latency is a separate injected run with one closed-loop writer, where
// none of the three mechanisms can help; the bar is that they also do
// not hurt. Drop counters (appends abandoned by storage hard-failures,
// order requests dropped before reaching a sequencer) are reported for
// the full mode and must stay zero.
func runAblateWritePath(cfg RunConfig) (*Report, error) {
	writerCounts := []int{1, 4, 16, 64}
	opsPerWriter := 300
	latOps := 150
	if cfg.Quick {
		writerCounts = []int{1, 64}
		opsPerWriter = 60
		latOps = 40
	}

	series := make(map[string]*metrics.Series, len(writePathModes))
	for _, mode := range writePathModes {
		series[mode] = metrics.NewSeries(mode, "kOps/s")
	}
	appendDrops := metrics.NewSeries("append drops (full)", "msgs")
	oreqDrops := metrics.NewSeries("oreq drops (full)", "msgs")
	notes := []string{
		fmt.Sprintf("region chain of depth %d, one shard at the deepest leaf: %d colors share one replica set",
			writePathChainDepth, writePathChainDepth+1),
		"modeled throughput over the busiest node; write-class messages and device writes charged at 1/workers with the lane on",
	}

	var laneNote string
	for _, writers := range writerCounts {
		label := fmt.Sprint(writers)
		for _, mode := range writePathModes {
			ops, drops, note, err := writePathThroughput(mode, writers, opsPerWriter)
			if err != nil {
				return nil, err
			}
			series[mode].Add(label, ops/1e3)
			if mode == "full" {
				appendDrops.Add(label, float64(drops.appends))
				oreqDrops.Add(label, float64(drops.oreqs))
				if writers == writerCounts[len(writerCounts)-1] {
					laneNote = note
				}
			}
		}
	}
	if laneNote != "" {
		notes = append(notes, laneNote)
	}

	// Single-writer injected latency: serial vs full. The lane dispatch,
	// the commit-window wait and the coalescing window must all stay in
	// the noise for a lone writer.
	latSerial := metrics.NewSeries("1-writer lat serial", "usec")
	latFull := metrics.NewSeries("1-writer lat full", "usec")
	for _, mode := range []string{"serial", "full"} {
		var lat time.Duration
		err := withLatencyInjection(func() error {
			var err error
			lat, err = writePathLatency(mode, latOps)
			return err
		})
		if err != nil {
			return nil, err
		}
		s := latSerial
		if mode == "full" {
			s = latFull
		}
		s.Add(fmt.Sprint(writerCounts[0]), float64(lat)/1e3)
	}

	return &Report{
		ID:      "ablate-writepath",
		Title:   "write-path ablation: lanes unserialize per-color appends, group commit folds PM transactions, coalescing thins the sequencer edge",
		XHeader: "writers",
		Series: []*metrics.Series{
			series["serial"], series["+lanes"], series["+group-commit"], series["full"],
			latSerial, latFull, appendDrops, oreqDrops,
		},
		Notes: notes,
	}, nil
}

// writePathColors returns the chain's colors, root first.
func writePathColors() []types.ColorID {
	colors := make([]types.ColorID, 0, writePathChainDepth+1)
	colors = append(colors, types.MasterColor)
	for i := 1; i <= writePathChainDepth; i++ {
		colors = append(colors, types.ColorID(i))
	}
	return colors
}

// writePathCluster builds the chain deployment with the given ablation
// mode and returns it plus the effective write-lane worker count (1 when
// the lane is off, for the modeled-time accounting).
func writePathCluster(mode string) (*core.Cluster, int, error) {
	ccfg := core.BenchClusterConfig()
	ccfg.SeqBackups = 0
	workers := ccfg.WriteWorkers
	switch mode {
	case "serial":
		ccfg.WriteWorkers = 0
		ccfg.GroupCommit = false
		ccfg.OrderCoalesce = false
		workers = 1
	case "+lanes":
		ccfg.GroupCommit = false
		ccfg.OrderCoalesce = false
	case "+group-commit":
		ccfg.OrderCoalesce = false
	case "full":
	default:
		return nil, 0, fmt.Errorf("writepath: unknown mode %q", mode)
	}
	cl := core.NewCluster(ccfg)
	parent := types.MasterColor
	for _, color := range writePathColors() {
		if err := cl.AddRegion(color, parent); err != nil {
			return nil, 0, err
		}
		parent = color
	}
	if _, err := cl.AddShard(parent); err != nil {
		return nil, 0, err
	}
	return cl, workers, nil
}

// writePathWorkload drives the append-only load: each writer owns the
// chain color writers[w] = colors[w mod len(colors)] and appends its ops
// there through its own unbatched client — the comparison isolates the
// replica-side write path, not client coalescing. afterWarmup fires once
// every writer has placed its first records.
func writePathWorkload(cl *core.Cluster, writers, opsPerWriter int, h *metrics.Histogram, afterWarmup func()) error {
	payload := workload.Payload(128, 11)
	colors := writePathColors()
	var firstErr error
	var mu sync.Mutex
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	clients := make([]*core.Client, writers)
	var warm sync.WaitGroup
	for w := 0; w < writers; w++ {
		c, err := cl.NewClient()
		if err != nil {
			return err
		}
		clients[w] = c
		warm.Add(1)
		go func(w int, c *core.Client) {
			defer warm.Done()
			color := colors[w%len(colors)]
			for i := 0; i < 2; i++ {
				if _, err := c.Append([][]byte{payload}, color); err != nil {
					fail(fmt.Errorf("warmup append color %v: %w", color, err))
					return
				}
			}
		}(w, c)
	}
	warm.Wait()
	if firstErr != nil {
		return firstErr
	}
	if afterWarmup != nil {
		afterWarmup()
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int, c *core.Client) {
			defer wg.Done()
			color := colors[w%len(colors)]
			for i := 0; i < opsPerWriter; i++ {
				t0 := time.Now()
				if _, err := c.Append([][]byte{payload}, color); err != nil {
					fail(fmt.Errorf("append color %v: %w", color, err))
					return
				}
				if h != nil {
					h.Record(time.Since(t0))
				}
			}
		}(w, clients[w])
	}
	wg.Wait()
	return firstErr
}

// writePathBaseline snapshots the counters of the measured phase's start:
// per-node total and write-class message counts, and the replica device
// time split (readpath.go's replicaDeviceSplit).
type writePathBaseline struct {
	msgs      map[types.NodeID]uint64
	writeMsgs map[types.NodeID]uint64
	readDev   map[types.NodeID]time.Duration
	writeDev  map[types.NodeID]time.Duration
}

func snapshotWritePath(cl *core.Cluster) writePathBaseline {
	rd, wr := replicaDeviceSplit(cl)
	return writePathBaseline{
		msgs:      cl.Network().NodeDelivered(),
		writeMsgs: cl.Network().NodeWriteDelivered(),
		readDev:   rd,
		writeDev:  wr,
	}
}

// writePathBusiestTime is readPathBusiestTime mirrored onto the write
// side: per node, read-class traffic and everything without a lane stays
// serial, while write-class messages and the device write time divide
// across the write-lane workers. Sequencer nodes have no write lane, so
// their whole load is serial — which is exactly where order-request
// coalescing shows up, as fewer delivered messages.
func writePathBusiestTime(cl *core.Cluster, base writePathBaseline, laneWorkers int) time.Duration {
	proc := cl.Network().Model().ProcCost
	msgs := cl.Network().NodeDelivered()
	writeMsgs := cl.Network().NodeWriteDelivered()
	readDev, writeDev := replicaDeviceSplit(cl)
	var busiest time.Duration
	for id, n := range msgs {
		if id >= 100_000 {
			continue // clients model the paper's load-generating fleet
		}
		wr := writeMsgs[id] - base.writeMsgs[id]
		serialMsgs := (n - base.msgs[id]) - wr
		serial := time.Duration(serialMsgs)*proc + (readDev[id] - base.readDev[id])
		par := time.Duration(wr)*proc + (writeDev[id] - base.writeDev[id])
		busy := serial + par/time.Duration(laneWorkers)
		if busy > busiest {
			busiest = busy
		}
	}
	return busiest
}

// writePathDrops sums the replica-side drop counters after a run — the
// silent-loss modes this PR made countable.
type writePathDrops struct {
	appends uint64
	oreqs   uint64
}

func sumWritePathDrops(cl *core.Cluster) writePathDrops {
	var d writePathDrops
	for _, sh := range cl.Topology().ShardsInRegion(types.MasterColor) {
		for _, id := range sh.Replicas {
			if r := cl.Replica(id); r != nil {
				s := r.Stats()
				d.appends += s.AppendDrops
				d.oreqs += s.OReqDrops
			}
		}
	}
	return d
}

// writePathThroughput runs one functional point and returns the modeled
// ops/s, the drop counters, and (for lane-on runs) a lane-counter note.
func writePathThroughput(mode string, writers, opsPerWriter int) (float64, writePathDrops, string, error) {
	cl, laneWorkers, err := writePathCluster(mode)
	if err != nil {
		return 0, writePathDrops{}, "", err
	}
	defer cl.Stop()
	var base writePathBaseline
	err = writePathWorkload(cl, writers, opsPerWriter, nil, func() {
		base = snapshotWritePath(cl)
	})
	if err != nil {
		return 0, writePathDrops{}, "", err
	}
	busiest := writePathBusiestTime(cl, base, laneWorkers)
	if busiest <= 0 {
		return 0, writePathDrops{}, "", fmt.Errorf("writepath: no modeled busy time")
	}
	drops := sumWritePathDrops(cl)

	note := ""
	if mode != "serial" {
		var enq, maxDepth uint64
		var busy time.Duration
		var gcWindows, gcOps uint64
		for _, sh := range cl.Topology().ShardsInRegion(types.MasterColor) {
			for _, id := range sh.Replicas {
				if ws, ok := cl.Network().WriteLaneStats(id); ok {
					enq += ws.Enqueued
					busy += ws.Busy
					if ws.MaxDepth > maxDepth {
						maxDepth = ws.MaxDepth
					}
				}
				if r := cl.Replica(id); r != nil {
					gs := r.Store().Stats().GC
					gcWindows += gs.Windows
					gcOps += gs.Ops
				}
			}
		}
		note = fmt.Sprintf("write-lane counters at %d writers (%s): %d enqueued, max queue depth %d, worker busy %v; group commit folded %d ops into %d windows",
			writers, mode, enq, maxDepth, busy.Round(time.Microsecond), gcOps, gcWindows)
	}
	return float64(writers*opsPerWriter) / busiest.Seconds(), drops, note, nil
}

// writePathLatency returns the measured mean append latency of one lone
// closed-loop writer under calibrated injection.
func writePathLatency(mode string, ops int) (time.Duration, error) {
	cl, _, err := writePathCluster(mode)
	if err != nil {
		return 0, err
	}
	defer cl.Stop()
	h := metrics.NewHistogram()
	if err := writePathWorkload(cl, 1, ops, h, nil); err != nil {
		return 0, err
	}
	if h.Count() == 0 {
		return 0, fmt.Errorf("writepath: latency run recorded no appends")
	}
	return h.Mean(), nil
}
