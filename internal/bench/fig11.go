package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/metrics"
	"flexlog/internal/types"
	"flexlog/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig11",
		Title: "Latency vs throughput for 3 vs 6 shards, 95%R/5%W (Figure 11)",
		Run:   runFig11,
	})
}

// runFig11 deploys the paper's two data-layer scales — 3 shards under one
// leaf sequencer, and 6 shards under two leaves of a 3-sequencer tree —
// and reports, per offered load (client count), the modeled throughput
// (per-node message + device accounting over a functional run) and the
// measured append/read latency (separate calibrated-injection run).
func runFig11(cfg RunConfig) (*Report, error) {
	clientCounts := []int{1, 2, 4, 8}
	latOps, thrOps := 120, 1500
	if cfg.Quick {
		clientCounts = []int{1, 4}
		latOps, thrOps = 40, 1000
	}
	thrS3 := metrics.NewSeries("Throughput (3 shards)", "kOps/s")
	thrS6 := metrics.NewSeries("Throughput (6 shards)", "kOps/s")
	appS3 := metrics.NewSeries("Append lat (3 shards)", "ms")
	appS6 := metrics.NewSeries("Append lat (6 shards)", "ms")
	rdS3 := metrics.NewSeries("Read lat (3 shards)", "ms")
	rdS6 := metrics.NewSeries("Read lat (6 shards)", "ms")

	for _, clients := range clientCounts {
		label := fmt.Sprint(clients)
		for _, setup := range []struct {
			leaves, shardsPerLeaf int
			thr, app, rd          *metrics.Series
		}{
			{1, 3, thrS3, appS3, rdS3},
			{2, 3, thrS6, appS6, rdS6},
		} {
			// Throughput: functional run, accounting-based.
			ops, err := fig11Throughput(setup.leaves, setup.shardsPerLeaf, clients, thrOps)
			if err != nil {
				return nil, err
			}
			setup.thr.Add(label, ops/1e3)

			// Latency: calibrated injection, small closed loop.
			var appLat, rdLat time.Duration
			err = withLatencyInjection(func() error {
				var err error
				appLat, rdLat, err = fig11Latency(setup.leaves, setup.shardsPerLeaf, clients, latOps)
				return err
			})
			if err != nil {
				return nil, err
			}
			setup.app.Add(label, float64(appLat)/1e6)
			setup.rd.Add(label, float64(rdLat)/1e6)
		}
	}
	return &Report{
		ID:      "fig11",
		Title:   "latency vs throughput, 3 vs 6 shards; paper: ~2x throughput at 6 shards, reads flat, appends slightly higher with tree depth",
		XHeader: "clients",
		Series:  []*metrics.Series{thrS3, thrS6, appS3, appS6, rdS3, rdS6},
		Notes: []string{
			"throughput modeled from per-node message+device accounting over a functional run",
			"95% reads / 5% appends to the master (totally ordered) region, 1 KiB records; reads use the client placement cache",
		},
	}, nil
}

// fig11Cluster builds one of the two deployments.
func fig11Cluster(leaves, shardsPerLeaf int) (*core.Cluster, error) {
	ccfg := core.BenchClusterConfig()
	ccfg.SeqBackups = 0
	return core.TreeCluster(ccfg, leaves, shardsPerLeaf)
}

// fig11Workload runs the 95%R/5%W mix with the given per-client op count.
// Each client first appends a small warm-up set (the records it will read
// back, as a function reading its own state would); afterWarmup fires once
// all clients are warm — the throughput accounting snapshots its baseline
// there so the measured phase reflects steady state.
func fig11Workload(cl *core.Cluster, clients, opsPerClient int, appendH, readH *metrics.Histogram, afterWarmup func()) error {
	payload := workload.Payload(1024, 5)
	var firstErr error
	var mu sync.Mutex
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	type workerState struct {
		c   *core.Client
		own []types.SN
	}
	workers := make([]*workerState, clients)
	var warm sync.WaitGroup
	for w := 0; w < clients; w++ {
		c, err := cl.NewClient()
		if err != nil {
			return err
		}
		workers[w] = &workerState{c: c}
		warm.Add(1)
		go func(ws *workerState) {
			defer warm.Done()
			for i := 0; i < 8; i++ {
				sn, err := ws.c.Append([][]byte{payload}, types.MasterColor)
				if err != nil {
					fail(fmt.Errorf("warmup append: %w", err))
					return
				}
				ws.own = append(ws.own, sn)
			}
		}(workers[w])
	}
	warm.Wait()
	if firstErr != nil {
		return firstErr
	}
	if afterWarmup != nil {
		afterWarmup()
	}

	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int, ws *workerState) {
			defer wg.Done()
			mix := workload.NewMix(95, int64(w)+3)
			rng := rand.New(rand.NewSource(int64(w) + 17))
			for i := 0; i < opsPerClient; i++ {
				if mix.NextIsRead() {
					sn := ws.own[rng.Intn(len(ws.own))]
					t0 := time.Now()
					if _, err := ws.c.Read(sn, types.MasterColor); err != nil {
						fail(fmt.Errorf("read: %w", err))
						return
					}
					if readH != nil {
						readH.Record(time.Since(t0))
					}
					continue
				}
				t0 := time.Now()
				sn, err := ws.c.Append([][]byte{payload}, types.MasterColor)
				if err != nil {
					fail(fmt.Errorf("append: %w", err))
					return
				}
				if appendH != nil {
					appendH.Record(time.Since(t0))
				}
				ws.own = append(ws.own, sn)
				if len(ws.own) > 64 {
					ws.own = ws.own[1:]
				}
			}
		}(w, workers[w])
	}
	wg.Wait()
	return firstErr
}

// fig11Throughput returns the modeled ops/s of a functional run.
func fig11Throughput(leaves, shardsPerLeaf, clients, opsPerClient int) (float64, error) {
	cl, err := fig11Cluster(leaves, shardsPerLeaf)
	if err != nil {
		return 0, err
	}
	defer cl.Stop()
	var baseMsgs map[types.NodeID]uint64
	var baseDev map[types.NodeID]time.Duration
	err = fig11Workload(cl, clients, opsPerClient, nil, nil, func() {
		baseMsgs = cl.Network().NodeDelivered()
		baseDev = replicaDeviceTime(cl)
	})
	if err != nil {
		return 0, err
	}
	busiest := busiestNodeTime(cl, baseMsgs, baseDev)
	if busiest <= 0 {
		return 0, fmt.Errorf("fig11: no modeled busy time")
	}
	return float64(clients*opsPerClient) / busiest.Seconds(), nil
}

// fig11Latency returns measured mean append/read latency under injection.
func fig11Latency(leaves, shardsPerLeaf, clients, opsPerClient int) (time.Duration, time.Duration, error) {
	cl, err := fig11Cluster(leaves, shardsPerLeaf)
	if err != nil {
		return 0, 0, err
	}
	defer cl.Stop()
	appendH, readH := metrics.NewHistogram(), metrics.NewHistogram()
	if err := fig11Workload(cl, clients, opsPerClient, appendH, readH, nil); err != nil {
		return 0, 0, err
	}
	return appendH.Mean(), readH.Mean(), nil
}

// replicaDeviceTime snapshots per-replica modeled device time using the
// bench configuration's calibrated device models.
func replicaDeviceTime(cl *core.Cluster) map[types.NodeID]time.Duration {
	storageCfg := core.BenchClusterConfig().Storage
	out := make(map[types.NodeID]time.Duration)
	for _, sh := range cl.Topology().ShardsInRegion(types.MasterColor) {
		for _, id := range sh.Replicas {
			r := cl.Replica(id)
			if r == nil {
				continue
			}
			s := r.Store().Stats()
			out[id] = storageCfg.PMModel.TimeOf(s.PM) + storageCfg.SSDModel.TimeOf(s.SSD)
		}
	}
	return out
}

// busiestNodeTime computes max over cluster nodes of modeled busy time
// accumulated since the baseline snapshots (messages x ProcCost + device
// time for replicas). Client nodes are excluded: they model the paper's
// load-generating function fleet.
func busiestNodeTime(cl *core.Cluster, baseMsgs map[types.NodeID]uint64, baseDev map[types.NodeID]time.Duration) time.Duration {
	proc := cl.Network().Model().ProcCost
	msgs := cl.Network().NodeDelivered()
	dev := replicaDeviceTime(cl)
	var busiest time.Duration
	for id, n := range msgs {
		if id >= 100_000 {
			continue // clients
		}
		busy := time.Duration(n-baseMsgs[id]) * proc
		busy += dev[id] - baseDev[id]
		if busy > busiest {
			busiest = busy
		}
	}
	return busiest
}
