package bench

import (
	"time"

	"flexlog/internal/simclock"
)

// simSpin injects a delay when latency injection is active (the bench
// always enables it, but quick unit tests of the harness may not).
func simSpin(d time.Duration) { simclock.Wait(d) }
