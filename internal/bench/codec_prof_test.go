package bench

import (
	"testing"
	"time"

	"flexlog/internal/transport"
)

// BenchmarkCodecOneWayBinary is the profiling entry point for the binary
// TCP path (the workload of ablate-codec at 8 senders):
//
//	go test -bench CodecOneWay -benchtime 1x -cpuprofile cpu.pprof ./internal/bench/
func BenchmarkCodecOneWayBinary(b *testing.B) {
	codecRegisterGob()
	for i := 0; i < b.N; i++ {
		rate, _, err := codecOneWayRate(transport.CodecBinary, 8, 2*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rate/1e3, "kRec/s")
	}
}
