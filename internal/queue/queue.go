// Package queue implements the message-queue abstraction of the paper's
// Listing 1: a queue is a colored log; Enqueue appends, Get reads by
// index, and Lookup subscribes until an expected record appears. It is the
// inter-function communication primitive §3.2 motivates ("a shared log can
// be used for inter-process communication (building serverless message
// queues)").
package queue

import (
	"bytes"
	"context"
	"errors"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/types"
)

// ErrNotFound is returned by Lookup when the record does not appear before
// the context is done.
var ErrNotFound = errors.New("queue: record not found")

// MessageQueue is a queue defined by a color (Listing 1).
type MessageQueue struct {
	color  types.ColorID
	handle *core.Client
	// PollInterval is the subscribe retry cadence in Lookup/Dequeue.
	PollInterval time.Duration
}

// New binds a queue to an existing color.
func New(handle *core.Client, color types.ColorID) *MessageQueue {
	return &MessageQueue{color: color, handle: handle, PollInterval: 2 * time.Millisecond}
}

// Create provisions the color (AddColor) and binds a queue to it.
// Creating an existing color is a no-op, so concurrent creators converge.
func Create(handle *core.Client, color, parent types.ColorID) (*MessageQueue, error) {
	if err := handle.AddColor(color, parent); err != nil {
		return nil, err
	}
	return New(handle, color), nil
}

// Color returns the queue's color.
func (mq *MessageQueue) Color() types.ColorID { return mq.color }

// Enqueue appends one message and returns its index (SN).
func (mq *MessageQueue) Enqueue(record []byte) (types.SN, error) {
	return mq.handle.Append([][]byte{record}, mq.color)
}

// Get returns the record at the given index (Listing 1's Get).
func (mq *MessageQueue) Get(idx types.SN) ([]byte, error) {
	return mq.handle.Read(idx, mq.color)
}

// Len returns the number of currently retained messages.
func (mq *MessageQueue) Len() (int, error) {
	records, err := mq.handle.Subscribe(mq.color, types.InvalidSN)
	if err != nil {
		return 0, err
	}
	return len(records), nil
}

// Lookup polls the queue until a record equal to expected appears and
// returns its index (Listing 1's getIdx), or ErrNotFound when ctx ends.
func (mq *MessageQueue) Lookup(ctx context.Context, expected []byte) (types.SN, error) {
	return mq.LookupFunc(ctx, func(b []byte) bool { return bytes.Equal(b, expected) })
}

// LookupFunc polls until a record matching f appears.
func (mq *MessageQueue) LookupFunc(ctx context.Context, f func([]byte) bool) (types.SN, error) {
	for {
		records, err := mq.handle.Subscribe(mq.color, types.InvalidSN)
		if err != nil {
			return types.InvalidSN, err
		}
		for _, r := range records {
			if f(r.Data) {
				return r.SN, nil
			}
		}
		select {
		case <-ctx.Done():
			return types.InvalidSN, ErrNotFound
		case <-time.After(mq.PollInterval):
		}
	}
}

// Dequeue returns the oldest message with SN > after and its index,
// blocking (by polling) until one appears or ctx ends. Combined with Ack
// this gives at-least-once consumption.
func (mq *MessageQueue) Dequeue(ctx context.Context, after types.SN) (types.SN, []byte, error) {
	for {
		records, err := mq.handle.Subscribe(mq.color, after)
		if err != nil {
			return types.InvalidSN, nil, err
		}
		if len(records) > 0 {
			return records[0].SN, records[0].Data, nil
		}
		select {
		case <-ctx.Done():
			return types.InvalidSN, nil, ErrNotFound
		case <-time.After(mq.PollInterval):
		}
	}
}

// Ack garbage-collects the queue up to and including idx (Trim).
func (mq *MessageQueue) Ack(idx types.SN) error {
	_, _, err := mq.handle.Trim(idx, mq.color)
	return err
}
