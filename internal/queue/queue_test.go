package queue

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/types"
)

func newQueue(t *testing.T) (*core.Cluster, *MessageQueue) {
	t.Helper()
	cl, err := core.SimpleCluster(core.TestClusterConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	mq, err := Create(c, 30, types.MasterColor)
	if err != nil {
		t.Fatal(err)
	}
	return cl, mq
}

func TestEnqueueGet(t *testing.T) {
	_, mq := newQueue(t)
	idx, err := mq.Enqueue([]byte("m1"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := mq.Get(idx)
	if err != nil || string(got) != "m1" {
		t.Fatalf("get = %q, %v", got, err)
	}
	if mq.Color() != 30 {
		t.Fatalf("color = %v", mq.Color())
	}
}

func TestLookupFindsMessage(t *testing.T) {
	_, mq := newQueue(t)
	mq.Enqueue([]byte("a"))
	want, _ := mq.Enqueue([]byte("needle"))
	mq.Enqueue([]byte("b"))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	idx, err := mq.Lookup(ctx, []byte("needle"))
	if err != nil || idx != want {
		t.Fatalf("lookup = %v, %v (want %v)", idx, err, want)
	}
}

func TestLookupTimesOut(t *testing.T) {
	_, mq := newQueue(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := mq.Lookup(ctx, []byte("never")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lookup of missing message: %v", err)
	}
}

func TestLookupBlocksUntilProducerArrives(t *testing.T) {
	_, mq := newQueue(t)
	go func() {
		time.Sleep(10 * time.Millisecond)
		mq.Enqueue([]byte("late"))
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := mq.Lookup(ctx, []byte("late")); err != nil {
		t.Fatal(err)
	}
}

func TestDequeueAckDrainsInOrder(t *testing.T) {
	_, mq := newQueue(t)
	for i := 0; i < 5; i++ {
		if _, err := mq.Enqueue(fmt.Appendf(nil, "m%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var cursor types.SN
	for i := 0; i < 5; i++ {
		idx, data, err := mq.Dequeue(ctx, cursor)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != fmt.Sprintf("m%d", i) {
			t.Fatalf("dequeue %d = %q", i, data)
		}
		if err := mq.Ack(idx); err != nil {
			t.Fatal(err)
		}
		cursor = idx
	}
	if n, _ := mq.Len(); n != 0 {
		t.Fatalf("queue not drained: %d left", n)
	}
}

func TestProducerConsumerPipeline(t *testing.T) {
	cl, mq := newQueue(t)
	consumerClient, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	consumer := New(consumerClient, mq.Color())
	const n = 20
	var got []string
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		var cursor types.SN
		for len(got) < n {
			idx, data, err := consumer.Dequeue(ctx, cursor)
			if err != nil {
				t.Errorf("dequeue: %v", err)
				return
			}
			got = append(got, string(data))
			cursor = idx
		}
	}()
	for i := 0; i < n; i++ {
		if _, err := mq.Enqueue(fmt.Appendf(nil, "job-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	for i, g := range got {
		if g != fmt.Sprintf("job-%02d", i) {
			t.Fatalf("out of order at %d: %q", i, g)
		}
	}
}

func TestTwoQueuesAreIndependent(t *testing.T) {
	cl, mq1 := newQueue(t)
	c2, _ := cl.NewClient()
	mq2, err := Create(c2, 31, types.MasterColor)
	if err != nil {
		t.Fatal(err)
	}
	mq1.Enqueue([]byte("one"))
	mq2.Enqueue([]byte("two"))
	if n, _ := mq1.Len(); n != 1 {
		t.Fatalf("queue1 len = %d", n)
	}
	if n, _ := mq2.Len(); n != 1 {
		t.Fatalf("queue2 len = %d", n)
	}
	got, _ := mq2.Get(types.MakeSN(1, 1))
	if string(got) != "two" {
		t.Fatalf("queue2 head = %q", got)
	}
}
