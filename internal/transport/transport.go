// Package transport provides the messaging substrate of FlexLog's
// deployment (§4 network model): reliable FIFO point-to-point links and a
// broadcast primitive.
//
// Two interchangeable implementations are provided:
//
//   - an in-process network with a configurable delay model, partitions and
//     crash-style fault injection, used by the cluster harness, the tests
//     and the benchmarks (the paper's 10 Gbps RTT is injected here);
//   - a TCP transport (gob-framed) for real multi-process deployments via
//     cmd/flexlog-server.
//
// Per the paper, links are reliable and FIFO (TCP in practice); message
// loss only occurs under injected partitions or node crashes, which the
// recovery protocols (§6.3) are responsible for masking.
package transport

import (
	"errors"

	"flexlog/internal/types"
)

// Message is any protocol payload. For the TCP transport, concrete types
// must be registered with encoding/gob (see package proto).
type Message any

// Handler processes one inbound message. Handlers of a given endpoint are
// invoked sequentially in delivery order (the "negligible local
// computation" round model of §4); long work should be handed off.
type Handler func(from types.NodeID, msg Message)

// Endpoint is one node's attachment to the network.
type Endpoint interface {
	// ID returns the node id this endpoint speaks as.
	ID() types.NodeID
	// Send delivers msg to the given node, FIFO with respect to other
	// Sends from this endpoint to the same destination.
	Send(to types.NodeID, msg Message) error
	// Broadcast sends msg to every listed node (§4 broadcast primitive:
	// realized as reliable FIFO unicasts; the recovery protocols supply
	// the all-or-nothing completion guarantee under failures).
	Broadcast(tos []types.NodeID, msg Message) error
	// Close detaches the endpoint; pending messages to it are dropped.
	Close() error
}

// ErrClosed is returned when sending from or to a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// ErrUnknownNode is returned when the destination was never registered.
var ErrUnknownNode = errors.New("transport: unknown node")

// ErrPartitioned is returned when fault injection has cut the link.
// Protocol code generally treats this the same as a message that was sent
// and lost to a crash: it relies on timeouts, not on the error.
var ErrPartitioned = errors.New("transport: link partitioned")
