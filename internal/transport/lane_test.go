package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flexlog/internal/types"
)

// laneMsg / mutMsg are the two message classes of the lane tests.
type laneMsg struct{ N int }
type mutMsg struct{ N int }

func classifyLane(m Message) bool {
	_, ok := m.(laneMsg)
	return ok
}

// TestLaneConcurrency proves classified messages are served concurrently:
// K handlers must be in flight at once, which a single delivery loop can
// never produce.
func TestLaneConcurrency(t *testing.T) {
	const workers = 4
	net := NewNetwork(ZeroLink())
	var mu sync.Mutex
	inFlight, maxInFlight := 0, 0
	release := make(chan struct{})
	_, err := net.RegisterWithLane(1, func(from types.NodeID, msg Message) {
		mu.Lock()
		inFlight++
		if inFlight > maxInFlight {
			maxInFlight = inFlight
		}
		mu.Unlock()
		<-release
		mu.Lock()
		inFlight--
		mu.Unlock()
	}, LaneConfig{Workers: workers, Classify: classifyLane})
	if err != nil {
		t.Fatal(err)
	}
	src, err := net.Register(2, func(types.NodeID, Message) {})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < workers; i++ {
		if err := src.Send(1, laneMsg{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		got := inFlight
		mu.Unlock()
		if got == workers {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("only %d handlers in flight, want %d", got, workers)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(release)
	ls, ok := net.LaneStats(1)
	if !ok {
		t.Fatal("no lane stats for node 1")
	}
	if ls.Enqueued != workers {
		t.Fatalf("lane enqueued = %d, want %d", ls.Enqueued, workers)
	}
}

// TestLaneMutationFIFO checks that mutation traffic keeps per-sender FIFO
// order and that a read handed to the lane sees every earlier mutation
// already processed (reads complete late, never early).
func TestLaneMutationFIFO(t *testing.T) {
	net := NewNetwork(ZeroLink())
	var mutSeen atomic.Int64
	type obs struct {
		read     bool
		mutsDone int64
		n        int
	}
	obsCh := make(chan obs, 1024)
	_, err := net.RegisterWithLane(1, func(from types.NodeID, msg Message) {
		switch m := msg.(type) {
		case mutMsg:
			obsCh <- obs{n: m.N, mutsDone: mutSeen.Add(1)}
		case laneMsg:
			obsCh <- obs{read: true, n: m.N, mutsDone: mutSeen.Load()}
		}
	}, LaneConfig{Workers: 3, Classify: classifyLane})
	if err != nil {
		t.Fatal(err)
	}
	src, err := net.Register(2, func(types.NodeID, Message) {})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 200
	for i := 0; i < rounds; i++ {
		if err := src.Send(1, mutMsg{N: i}); err != nil {
			t.Fatal(err)
		}
		if err := src.Send(1, laneMsg{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	nextMut := 0
	for seen := 0; seen < 2*rounds; seen++ {
		var o obs
		select {
		case o = <-obsCh:
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out after %d observations", seen)
		}
		if o.read {
			// Read i was enqueued after mutation i, so mutation i must
			// already have been handled when the read ran.
			if o.mutsDone < int64(o.n+1) {
				t.Fatalf("read %d ran with only %d mutations done", o.n, o.mutsDone)
			}
		} else {
			if o.n != nextMut {
				t.Fatalf("mutation order violated: got %d, want %d", o.n, nextMut)
			}
			nextMut++
		}
	}
}

// TestWithReadLaneWrapper exercises the handler-level pool used over
// custom transports.
func TestWithReadLaneWrapper(t *testing.T) {
	var reads, muts atomic.Int64
	h := func(from types.NodeID, msg Message) {
		if classifyLane(msg) {
			reads.Add(1)
		} else {
			muts.Add(1)
		}
	}
	wrapped, stats, stop := WithReadLane(h, LaneConfig{Workers: 2, Classify: classifyLane})
	for i := 0; i < 50; i++ {
		wrapped(7, laneMsg{N: i})
		wrapped(7, mutMsg{N: i})
	}
	stop() // drains the pool
	if got := reads.Load(); got != 50 {
		t.Fatalf("reads = %d, want 50", got)
	}
	if got := muts.Load(); got != 50 {
		t.Fatalf("muts = %d, want 50", got)
	}
	if s := stats(); s.Enqueued != 50 || s.Dequeued != 50 {
		t.Fatalf("lane stats = %+v, want 50/50", s)
	}

	// Disabled lane passes straight through.
	plain, _, stopPlain := WithReadLane(h, LaneConfig{})
	plain(7, laneMsg{})
	stopPlain()
	if got := reads.Load(); got != 51 {
		t.Fatalf("pass-through reads = %d, want 51", got)
	}
}
