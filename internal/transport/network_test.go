package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"flexlog/internal/simclock"
	"flexlog/internal/types"
)

type sink struct {
	mu   sync.Mutex
	msgs []Message
	from []types.NodeID
	ch   chan struct{}
}

func newSink() *sink { return &sink{ch: make(chan struct{}, 1024)} }

func (s *sink) handler(from types.NodeID, msg Message) {
	s.mu.Lock()
	s.msgs = append(s.msgs, msg)
	s.from = append(s.from, from)
	s.mu.Unlock()
	s.ch <- struct{}{}
}

func (s *sink) wait(t *testing.T, n int) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case <-s.ch:
		case <-deadline:
			t.Fatalf("timed out waiting for %d messages (got %d)", n, i)
		}
	}
}

func (s *sink) snapshot() []Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Message(nil), s.msgs...)
}

func TestSendDelivers(t *testing.T) {
	n := NewNetwork(ZeroLink())
	rx := newSink()
	a, err := n.Register(1, func(types.NodeID, Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register(2, rx.handler); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, "hello"); err != nil {
		t.Fatal(err)
	}
	rx.wait(t, 1)
	got := rx.snapshot()
	if got[0] != "hello" || rx.from[0] != 1 {
		t.Fatalf("got %v from %v", got[0], rx.from[0])
	}
	if d, _ := n.Stats(); d != 1 {
		t.Fatalf("delivered = %d", d)
	}
}

func TestDuplicateRegistration(t *testing.T) {
	n := NewNetwork(ZeroLink())
	n.Register(1, func(types.NodeID, Message) {})
	if _, err := n.Register(1, func(types.NodeID, Message) {}); err == nil {
		t.Fatal("duplicate registration should fail")
	}
}

func TestSendToUnknown(t *testing.T) {
	n := NewNetwork(ZeroLink())
	a, _ := n.Register(1, func(types.NodeID, Message) {})
	if err := a.Send(99, "x"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("send to unknown: %v", err)
	}
}

func TestFIFOPerSender(t *testing.T) {
	n := NewNetwork(ZeroLink())
	rx := newSink()
	a, _ := n.Register(1, func(types.NodeID, Message) {})
	n.Register(2, rx.handler)
	const count = 500
	for i := 0; i < count; i++ {
		if err := a.Send(2, i); err != nil {
			t.Fatal(err)
		}
	}
	rx.wait(t, count)
	for i, m := range rx.snapshot() {
		if m.(int) != i {
			t.Fatalf("message %d out of order: %v", i, m)
		}
	}
}

func TestBroadcast(t *testing.T) {
	n := NewNetwork(ZeroLink())
	a, _ := n.Register(1, func(types.NodeID, Message) {})
	sinks := []*sink{newSink(), newSink(), newSink()}
	for i, s := range sinks {
		n.Register(types.NodeID(i+2), s.handler)
	}
	if err := a.Broadcast([]types.NodeID{2, 3, 4}, "b"); err != nil {
		t.Fatal(err)
	}
	for _, s := range sinks {
		s.wait(t, 1)
	}
}

func TestPartitionBlocksAndHeals(t *testing.T) {
	n := NewNetwork(ZeroLink())
	rx := newSink()
	a, _ := n.Register(1, func(types.NodeID, Message) {})
	n.Register(2, rx.handler)
	n.Partition(1, 2)
	if err := a.Send(2, "x"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned send: %v", err)
	}
	if _, dropped := n.Stats(); dropped != 1 {
		t.Fatalf("dropped = %d", dropped)
	}
	n.Heal(1, 2)
	if err := a.Send(2, "y"); err != nil {
		t.Fatal(err)
	}
	rx.wait(t, 1)
}

func TestIsolateAndRejoin(t *testing.T) {
	n := NewNetwork(ZeroLink())
	rx := newSink()
	a, _ := n.Register(1, func(types.NodeID, Message) {})
	n.Register(2, rx.handler)
	n.Isolate(2)
	if err := a.Send(2, "x"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("send to isolated: %v", err)
	}
	n.Rejoin(2)
	if err := a.Send(2, "y"); err != nil {
		t.Fatal(err)
	}
	rx.wait(t, 1)
	// HealAll also clears isolations and partitions.
	n.Isolate(1)
	n.Partition(1, 2)
	n.HealAll()
	if err := a.Send(2, "z"); err != nil {
		t.Fatal(err)
	}
	rx.wait(t, 1)
}

func TestCloseStopsDelivery(t *testing.T) {
	n := NewNetwork(ZeroLink())
	rx := newSink()
	a, _ := n.Register(1, func(types.NodeID, Message) {})
	b, _ := n.Register(2, rx.handler)
	b.Close()
	if err := a.Send(2, "x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("send to closed: %v", err)
	}
}

func TestDeregister(t *testing.T) {
	n := NewNetwork(ZeroLink())
	a, _ := n.Register(1, func(types.NodeID, Message) {})
	n.Register(2, func(types.NodeID, Message) {})
	n.Deregister(2)
	if err := a.Send(2, "x"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("send after deregister: %v", err)
	}
	n.Deregister(42) // unknown deregister is a no-op
}

func TestDelayInjection(t *testing.T) {
	prev := simclock.Enable(true)
	defer simclock.Enable(prev)
	n := NewNetwork(LinkModel{Delay: 2 * time.Millisecond})
	rx := newSink()
	a, _ := n.Register(1, func(types.NodeID, Message) {})
	n.Register(2, rx.handler)
	start := time.Now()
	a.Send(2, "x")
	rx.wait(t, 1)
	if el := time.Since(start); el < 2*time.Millisecond {
		t.Fatalf("delivered after %v, want >= 2ms", el)
	}
}

func TestDelayIsPipelined(t *testing.T) {
	prev := simclock.Enable(true)
	defer simclock.Enable(prev)
	n := NewNetwork(LinkModel{Delay: 5 * time.Millisecond})
	rx := newSink()
	a, _ := n.Register(1, func(types.NodeID, Message) {})
	n.Register(2, rx.handler)
	const count = 20
	start := time.Now()
	for i := 0; i < count; i++ {
		a.Send(2, i)
	}
	rx.wait(t, count)
	el := time.Since(start)
	// Sequential (non-pipelined) delivery would take count*5ms = 100ms.
	// Pipelined delivery of a burst should take ≈ one delay.
	if el > 50*time.Millisecond {
		t.Fatalf("burst of %d took %v: delays are not pipelined", count, el)
	}
}

func TestPerKBSerializationCost(t *testing.T) {
	m := LinkModel{
		Delay:     time.Millisecond,
		PerKB:     time.Millisecond,
		SizeOfMsg: func(msg Message) int { return len(msg.(string)) },
	}
	small := m.delayFor("x")
	large := m.delayFor(string(make([]byte, 4096)))
	if large <= small {
		t.Fatalf("large message should cost more: %v vs %v", large, small)
	}
	if DatacenterLink().Delay <= 0 {
		t.Fatal("datacenter link must have positive delay")
	}
}

func TestConcurrentSenders(t *testing.T) {
	n := NewNetwork(ZeroLink())
	rx := newSink()
	n.Register(100, rx.handler)
	const senders, per = 8, 100
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ep, err := n.Register(types.NodeID(s+1), func(types.NodeID, Message) {})
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < per; i++ {
				if err := ep.Send(100, i); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	rx.wait(t, senders*per)
}
