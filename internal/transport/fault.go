package transport

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flexlog/internal/types"
)

// FaultModel describes message-level faults injected on a directed link
// (§4 relaxation for robustness testing). The zero value is a perfect
// link: the transport's FIFO/reliability contract holds exactly. Each
// probability is evaluated independently per message, using a per-link
// deterministic rng derived from the network's fault seed — so a given
// sender's message sequence over a given link experiences the same fault
// pattern on every run with the same seed.
//
// FIFO is relaxed only on links whose model says so: ReorderProb lets a
// message overtake the previously queued one (later-sent delivered first,
// as with multi-path packet overtaking); causality is never violated.
type FaultModel struct {
	// DropProb silently loses the message (the sender still sees a nil
	// error, as with a datagram lost on the wire).
	DropProb float64
	// DupProb delivers the message twice (retransmission duplicates).
	DupProb float64
	// ReorderProb lets the message overtake the last not-yet-delivered
	// message queued at the destination.
	ReorderProb float64
	// JitterMax adds a uniform extra delivery delay in [0, JitterMax).
	JitterMax time.Duration
	// DropNext is a one-shot scripted fault: drop exactly the next
	// DropNext messages on the link, then continue with the
	// probabilistic model. Used to script deterministic loss bursts
	// (e.g. a run of lost heartbeats).
	DropNext int
}

// Zero reports whether the model injects no faults at all.
func (f FaultModel) Zero() bool {
	return f.DropProb == 0 && f.DupProb == 0 && f.ReorderProb == 0 &&
		f.JitterMax == 0 && f.DropNext == 0
}

// String renders the model compactly for nemesis-schedule replay logs.
func (f FaultModel) String() string {
	if f.Zero() {
		return "clean"
	}
	var parts []string
	if f.DropProb > 0 {
		parts = append(parts, fmt.Sprintf("drop=%.2f", f.DropProb))
	}
	if f.DupProb > 0 {
		parts = append(parts, fmt.Sprintf("dup=%.2f", f.DupProb))
	}
	if f.ReorderProb > 0 {
		parts = append(parts, fmt.Sprintf("reorder=%.2f", f.ReorderProb))
	}
	if f.JitterMax > 0 {
		parts = append(parts, fmt.Sprintf("jitter<%v", f.JitterMax))
	}
	if f.DropNext > 0 {
		parts = append(parts, fmt.Sprintf("dropnext=%d", f.DropNext))
	}
	return strings.Join(parts, ",")
}

// FaultStats counts faults the network injected so far.
type FaultStats struct {
	Drops    uint64 // messages silently lost (DropProb / DropNext)
	Dups     uint64 // messages delivered twice
	Reorders uint64 // messages that overtook an earlier one
	Jittered uint64 // messages delayed by jitter
}

// linkFaults is the live fault state of one directed link. The rng is
// derived from (network seed, from, to), so the fault decision sequence
// on a link is a deterministic function of the seed and that link's
// message count.
type linkFaults struct {
	mu    sync.Mutex
	model FaultModel
	rng   *rand.Rand
}

// faultDecision is the outcome of evaluating a model for one message.
type faultDecision struct {
	drop    bool
	dup     bool
	reorder bool
	jitter  time.Duration
}

// decide draws one message's fate from the link model.
func (lf *linkFaults) decide() faultDecision {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	if lf.model.DropNext > 0 {
		lf.model.DropNext--
		return faultDecision{drop: true}
	}
	var d faultDecision
	m := &lf.model
	if m.DropProb > 0 && lf.rng.Float64() < m.DropProb {
		d.drop = true
		return d
	}
	if m.DupProb > 0 && lf.rng.Float64() < m.DupProb {
		d.dup = true
	}
	if m.ReorderProb > 0 && lf.rng.Float64() < m.ReorderProb {
		d.reorder = true
	}
	if m.JitterMax > 0 {
		d.jitter = time.Duration(lf.rng.Int63n(int64(m.JitterMax)))
	}
	return d
}

// linkSeed mixes the base seed with the directed link identity
// (splitmix64-style constants) so every link gets an independent stream.
func linkSeed(base int64, from, to types.NodeID) int64 {
	h := uint64(base)
	h ^= uint64(from) * 0x9E3779B97F4A7C15
	h ^= uint64(to) * 0xBF58476D1CE4E5B9
	h ^= h >> 31
	h *= 0x94D049BB133111EB
	return int64(h)
}

// faultState is the network-wide fault configuration.
type faultState struct {
	mu    sync.Mutex
	seed  int64
	links map[[2]types.NodeID]*linkFaults // directed [from, to]
	def   *FaultModel                     // applies to links without an explicit model

	// nodes holds node-scoped models (the "slow replica" nemesis): a
	// model here covers every link touching the node, in both directions,
	// and takes precedence over per-link and default models — a degraded
	// NIC dominates whatever the fabric is doing. nodeLinks caches the
	// lazily materialized per-link state so each directed link keeps its
	// own deterministic rng stream.
	nodes     map[types.NodeID]*FaultModel
	nodeLinks map[[2]types.NodeID]*linkFaults

	drops    atomic.Uint64
	dups     atomic.Uint64
	reorders atomic.Uint64
	jittered atomic.Uint64
}

// SetFaultSeed fixes the seed the per-link fault rngs derive from and
// resets every link's fault stream. Call before configuring models; the
// default seed is 1.
func (n *Network) SetFaultSeed(seed int64) {
	f := &n.faults
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seed = seed
	for key, lf := range f.links {
		lf.mu.Lock()
		lf.rng = rand.New(rand.NewSource(linkSeed(seed, key[0], key[1])))
		lf.mu.Unlock()
	}
	for key, lf := range f.nodeLinks {
		lf.mu.Lock()
		lf.rng = rand.New(rand.NewSource(linkSeed(seed, key[0], key[1])))
		lf.mu.Unlock()
	}
}

// SetNodeFaults installs a fault model on every link touching node, in
// both directions, current and future — the "slow replica" nemesis: one
// node's NIC degrades (typically heavy JitterMax) while the rest of the
// fabric stays clean. The node-scoped model takes precedence over
// per-link and default models while installed. A zero model removes the
// node's treatment; links then revert to whatever per-link or default
// model applies.
func (n *Network) SetNodeFaults(node types.NodeID, m FaultModel) {
	f := &n.faults
	f.mu.Lock()
	defer f.mu.Unlock()
	if m.Zero() {
		delete(f.nodes, node)
		for key := range f.nodeLinks {
			if key[0] == node || key[1] == node {
				delete(f.nodeLinks, key)
			}
		}
	} else {
		if f.nodes == nil {
			f.nodes = make(map[types.NodeID]*FaultModel)
		}
		mm := m
		f.nodes[node] = &mm
		for key, lf := range f.nodeLinks {
			if key[0] == node || key[1] == node {
				lf.setModel(m)
			}
		}
	}
	n.updateFaultsActiveLocked()
}

// nodeModelLocked resolves the node-scoped model covering a directed
// link, or nil. The destination's model wins when both ends are
// degraded. Caller holds faults.mu.
func (f *faultState) nodeModelLocked(from, to types.NodeID) *FaultModel {
	if m := f.nodes[to]; m != nil {
		return m
	}
	return f.nodes[from]
}

// SetLinkFaults installs a fault model on the directed link from→to.
// A zero model restores the link to perfect delivery.
func (n *Network) SetLinkFaults(from, to types.NodeID, m FaultModel) {
	f := &n.faults
	f.mu.Lock()
	defer f.mu.Unlock()
	if m.Zero() && f.def == nil {
		delete(f.links, [2]types.NodeID{from, to})
	} else {
		f.linkLocked(from, to).setModel(m)
	}
	n.updateFaultsActiveLocked()
}

// SetDefaultFaults installs a fault model on every link, current and
// future, that has no explicit per-link model. A zero model clears it.
func (n *Network) SetDefaultFaults(m FaultModel) {
	f := &n.faults
	f.mu.Lock()
	defer f.mu.Unlock()
	if m.Zero() {
		f.def = nil
		// Links materialized from the old default revert to clean unless
		// they were explicitly configured; drop the lazily created ones.
		for key, lf := range f.links {
			lf.mu.Lock()
			zero := lf.model.Zero()
			lf.mu.Unlock()
			if zero {
				delete(f.links, key)
			}
		}
	} else {
		def := m
		f.def = &def
		for _, lf := range f.links {
			lf.setModel(m)
		}
	}
	n.updateFaultsActiveLocked()
}

// ClearFaults removes every fault model (per-link and default). Fault
// counters are preserved.
func (n *Network) ClearFaults() {
	f := &n.faults
	f.mu.Lock()
	defer f.mu.Unlock()
	f.links = make(map[[2]types.NodeID]*linkFaults)
	f.def = nil
	f.nodes = nil
	f.nodeLinks = nil
	n.updateFaultsActiveLocked()
}

// FaultStats returns the totals of injected faults.
func (n *Network) FaultStats() FaultStats {
	f := &n.faults
	return FaultStats{
		Drops:    f.drops.Load(),
		Dups:     f.dups.Load(),
		Reorders: f.reorders.Load(),
		Jittered: f.jittered.Load(),
	}
}

// updateFaultsActiveLocked refreshes the fast-path flag. Caller holds
// faults.mu.
func (n *Network) updateFaultsActiveLocked() {
	n.faultsOn.Store(len(n.faults.links) > 0 || n.faults.def != nil ||
		len(n.faults.nodes) > 0)
}

// linkLocked returns (creating if needed) the directed link's fault
// state. Caller holds faults.mu.
func (f *faultState) linkLocked(from, to types.NodeID) *linkFaults {
	key := [2]types.NodeID{from, to}
	lf := f.links[key]
	if lf == nil {
		seed := f.seed
		if seed == 0 {
			seed = 1
		}
		lf = &linkFaults{rng: rand.New(rand.NewSource(linkSeed(seed, from, to)))}
		if f.def != nil {
			lf.model = *f.def
		}
		f.links[key] = lf
	}
	return lf
}

func (lf *linkFaults) setModel(m FaultModel) {
	lf.mu.Lock()
	lf.model = m
	lf.mu.Unlock()
}

// faultsFor resolves the live fault state of a directed link, or nil when
// the link is perfect. It materializes default-model links lazily so each
// gets its own deterministic rng stream.
func (n *Network) faultsFor(from, to types.NodeID) *linkFaults {
	if !n.faultsOn.Load() {
		return nil
	}
	f := &n.faults
	f.mu.Lock()
	defer f.mu.Unlock()
	if m := f.nodeModelLocked(from, to); m != nil {
		key := [2]types.NodeID{from, to}
		lf := f.nodeLinks[key]
		if lf == nil {
			seed := f.seed
			if seed == 0 {
				seed = 1
			}
			lf = &linkFaults{model: *m, rng: rand.New(rand.NewSource(linkSeed(seed, from, to)))}
			if f.nodeLinks == nil {
				f.nodeLinks = make(map[[2]types.NodeID]*linkFaults)
			}
			f.nodeLinks[key] = lf
		}
		return lf
	}
	if lf, ok := f.links[[2]types.NodeID{from, to}]; ok {
		return lf
	}
	if f.def == nil {
		return nil
	}
	return f.linkLocked(from, to)
}
