package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flexlog/internal/simclock"
	"flexlog/internal/types"
)

// LinkModel describes the latency of in-process links. The default model is
// calibrated to the paper's testbed: a 10 Gbps datacenter fabric with an
// order-request RTT of ≈110 µs (§9.3), i.e. ≈55 µs one-way per hop.
//
// Delay is pipelined (many messages can be in flight), while ProcCost is
// the serial per-message processing cost at the receiving node — the term
// that bounds a node's message capacity. It is calibrated so a leaf
// sequencer saturates at ≈1.2 M order requests per second, the figure §9.3
// reports, and it is what makes message-heavy protocols (Paxos' quorum
// rounds) pay relative to FlexLog's counter bump (Fig. 4 right).
type LinkModel struct {
	Delay     time.Duration // one-way propagation delay (pipelined)
	PerKB     time.Duration // serialization cost per KiB of payload size
	ProcCost  time.Duration // serial receive-side processing per message
	SizeOfMsg func(Message) int
}

// DatacenterLink returns the calibrated 10 Gbps fabric model.
func DatacenterLink() LinkModel {
	return LinkModel{
		Delay:    55 * time.Microsecond,
		PerKB:    800 * time.Nanosecond, // ~10 Gbps wire rate
		ProcCost: 800 * time.Nanosecond, // ≈1.2M msgs/s node capacity
	}
}

// ZeroLink is the latency-free model used by unit tests.
func ZeroLink() LinkModel { return LinkModel{} }

func (m LinkModel) delayFor(msg Message) time.Duration {
	d := m.Delay
	if m.PerKB > 0 && m.SizeOfMsg != nil {
		d += m.PerKB * time.Duration(m.SizeOfMsg(msg)) / 1024
	}
	return d
}

// envelope is one in-flight message.
type envelope struct {
	from      types.NodeID
	msg       Message
	deliverAt time.Time
}

// Network is the in-process transport fabric. It provides registration,
// per-destination FIFO delivery with pipelined delay injection, and fault
// injection for the recovery and chaos tests: partitions and crashed
// endpoints (clean faults) plus per-link message-level fault models
// (drop, duplication, reorder, delay jitter — see FaultModel).
type Network struct {
	model LinkModel

	mu       sync.RWMutex
	nodes    map[types.NodeID]*inprocEndpoint
	cut      map[[2]types.NodeID]bool // symmetric partition set
	isolated map[types.NodeID]bool

	faults   faultState  // message-level fault injection (fault.go)
	faultsOn atomic.Bool // fast-path flag: any fault model installed

	delivered atomic.Uint64
	dropped   atomic.Uint64
}

// NewNetwork creates an empty in-process network with the given link model.
func NewNetwork(model LinkModel) *Network {
	return &Network{
		model:    model,
		nodes:    make(map[types.NodeID]*inprocEndpoint),
		cut:      make(map[[2]types.NodeID]bool),
		isolated: make(map[types.NodeID]bool),
		faults:   faultState{seed: 1, links: make(map[[2]types.NodeID]*linkFaults)},
	}
}

// Register attaches a node with the given handler and starts its delivery
// loop. The handler runs on a single goroutine per endpoint.
func (n *Network) Register(id types.NodeID, h Handler) (Endpoint, error) {
	return n.RegisterWithLane(id, h, LaneConfig{})
}

// RegisterWithLane attaches a node whose endpoint splits inbound traffic
// into two service lanes: messages the lane config classifies (reads,
// subscribes) run on a pool of lane workers, everything else keeps the
// single-goroutine FIFO delivery loop. The delivery loop still dequeues
// in arrival order, so a classified message is only handed to the pool
// after every earlier mutation has been processed — reads can complete
// late, never early. With a zero/disabled lane config this is Register.
func (n *Network) RegisterWithLane(id types.NodeID, h Handler, lane LaneConfig) (Endpoint, error) {
	return n.RegisterWithLanes(id, h, Lanes{Read: lane})
}

// RegisterWithLanes attaches a node with both service lanes: read-class
// messages go to the shared read pool, write-class messages are sharded
// by key (color) onto per-key FIFO workers, and everything else keeps the
// single-goroutine delivery loop. The delivery loop still dequeues in
// arrival order, and a key is pinned to one worker, so messages of one
// color retain their FIFO order end to end.
func (n *Network) RegisterWithLanes(id types.NodeID, h Handler, lanes Lanes) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.nodes[id]; dup {
		return nil, fmt.Errorf("transport: node %v already registered", id)
	}
	ep := &inprocEndpoint{net: n, id: id, handler: h}
	if lanes.Read.Enabled() {
		ep.classify = lanes.Read.Classify
		ep.lane = newReadLane(lanes.Read, h, n.model.ProcCost)
	}
	if lanes.Write.Enabled() {
		ep.writeKey = lanes.Write.Key
		ep.wlane = newWriteLane(lanes.Write, h, n.model.ProcCost)
	}
	ep.cond = sync.NewCond(&ep.qmu)
	n.nodes[id] = ep
	go ep.deliveryLoop()
	return ep, nil
}

// Deregister removes a node (used when simulating permanent departure).
func (n *Network) Deregister(id types.NodeID) {
	n.mu.Lock()
	ep := n.nodes[id]
	delete(n.nodes, id)
	n.mu.Unlock()
	if ep != nil {
		ep.Close()
	}
}

// Shutdown closes every registered endpoint: delivery loops exit and
// their lane worker pools drain. Cluster teardown calls this after
// stopping the nodes — without it every stopped cluster would strand
// its delivery and lane goroutines, which is a real leak for processes
// that create clusters in sequence (benchmarks, chaos soaks, tests).
// Endpoints stay in the registry so per-node delivery counters remain
// readable after shutdown; restarting nodes mid-run uses Deregister.
func (n *Network) Shutdown() {
	n.mu.Lock()
	eps := make([]*inprocEndpoint, 0, len(n.nodes))
	for _, ep := range n.nodes {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
}

// Partition cuts the (symmetric) link between a and b.
func (n *Network) Partition(a, b types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[linkKey(a, b)] = true
}

// Heal restores the link between a and b.
func (n *Network) Heal(a, b types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, linkKey(a, b))
}

// Isolate cuts every link of the node (a network partition of one).
func (n *Network) Isolate(id types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.isolated[id] = true
}

// Rejoin reverses Isolate.
func (n *Network) Rejoin(id types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.isolated, id)
}

// HealAll removes all partitions and isolations.
func (n *Network) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut = make(map[[2]types.NodeID]bool)
	n.isolated = make(map[types.NodeID]bool)
}

// Stats returns (delivered, dropped) message counts.
func (n *Network) Stats() (delivered, dropped uint64) {
	return n.delivered.Load(), n.dropped.Load()
}

// NodeDelivered returns the per-node count of messages delivered so far.
// The throughput benchmarks use these counts with the link model's
// per-message processing cost to compute each node's modeled busy time.
func (n *Network) NodeDelivered() map[types.NodeID]uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make(map[types.NodeID]uint64, len(n.nodes))
	for id, ep := range n.nodes {
		out[id] = ep.delivered.Load()
	}
	return out
}

// NodeReadDelivered returns the per-node count of messages delivered via
// the read lane (a subset of NodeDelivered); nodes without a lane report 0.
// The lane-aware throughput model uses this split: lane messages share
// their processing cost across the lane's workers.
func (n *Network) NodeReadDelivered() map[types.NodeID]uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make(map[types.NodeID]uint64, len(n.nodes))
	for id, ep := range n.nodes {
		out[id] = ep.readDelivered.Load()
	}
	return out
}

// LaneStats snapshots the read-lane counters of a node. ok is false when
// the node is unknown or has no lane.
func (n *Network) LaneStats(id types.NodeID) (LaneStats, bool) {
	n.mu.RLock()
	ep := n.nodes[id]
	n.mu.RUnlock()
	if ep == nil || ep.lane == nil {
		return LaneStats{}, false
	}
	return ep.lane.stats(), true
}

// NodeWriteDelivered returns the per-node count of messages delivered via
// the write lane (a subset of NodeDelivered); nodes without a write lane
// report 0. The lane-aware throughput model splits these across workers
// using WriteLaneStats.PerWorker.
func (n *Network) NodeWriteDelivered() map[types.NodeID]uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make(map[types.NodeID]uint64, len(n.nodes))
	for id, ep := range n.nodes {
		out[id] = ep.writeDelivered.Load()
	}
	return out
}

// WriteLaneStats snapshots the write-lane counters of a node. ok is false
// when the node is unknown or has no write lane.
func (n *Network) WriteLaneStats(id types.NodeID) (WriteLaneStats, bool) {
	n.mu.RLock()
	ep := n.nodes[id]
	n.mu.RUnlock()
	if ep == nil || ep.wlane == nil {
		return WriteLaneStats{}, false
	}
	return ep.wlane.stats(), true
}

// Model returns the network's link model.
func (n *Network) Model() LinkModel { return n.model }

func linkKey(a, b types.NodeID) [2]types.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]types.NodeID{a, b}
}

func (n *Network) reachable(from, to types.NodeID) bool {
	if n.isolated[from] || n.isolated[to] {
		return false
	}
	return !n.cut[linkKey(from, to)]
}

// inprocEndpoint is one node's in-process attachment.
type inprocEndpoint struct {
	net            *Network
	id             types.NodeID
	handler        Handler
	classify       func(Message) bool
	lane           *readLane
	writeKey       func(Message) (uint64, bool)
	wlane          *writeLane
	delivered      atomic.Uint64
	readDelivered  atomic.Uint64
	writeDelivered atomic.Uint64

	qmu    sync.Mutex
	cond   *sync.Cond
	queue  []envelope
	closed bool
}

func (e *inprocEndpoint) ID() types.NodeID { return e.id }

func (e *inprocEndpoint) Send(to types.NodeID, msg Message) error {
	n := e.net
	n.mu.RLock()
	dst, ok := n.nodes[to]
	if !ok {
		n.mu.RUnlock()
		return fmt.Errorf("%w: %v", ErrUnknownNode, to)
	}
	if !n.reachable(e.id, to) {
		n.mu.RUnlock()
		n.dropped.Add(1)
		return ErrPartitioned
	}
	n.mu.RUnlock()

	var fd faultDecision
	if lf := n.faultsFor(e.id, to); lf != nil {
		fd = lf.decide()
		if fd.drop {
			// A lossy-link loss, not a partition: the sender sees success
			// (as with a datagram lost on the wire) and relies on its
			// retry/timeout machinery.
			n.dropped.Add(1)
			n.faults.drops.Add(1)
			return nil
		}
		if fd.dup {
			n.faults.dups.Add(1)
		}
		if fd.reorder {
			n.faults.reorders.Add(1)
		}
		if fd.jitter > 0 {
			n.faults.jittered.Add(1)
		}
	}

	env := envelope{from: e.id, msg: msg}
	var delay time.Duration
	if simclock.Enabled() {
		delay = n.model.delayFor(msg)
	}
	delay += fd.jitter // jitter applies even without the latency model
	if delay > 0 {
		env.deliverAt = time.Now().Add(delay)
	}
	dst.qmu.Lock()
	if dst.closed {
		dst.qmu.Unlock()
		return ErrClosed
	}
	if fd.reorder && len(dst.queue) > 0 {
		// Overtake the last queued message: this (later-sent) envelope is
		// delivered before it — the FIFO relaxation of FaultModel. Never
		// reorders ahead of messages already handed to the handler, so
		// causality is preserved.
		last := len(dst.queue) - 1
		dst.queue = append(dst.queue, dst.queue[last])
		dst.queue[last] = env
	} else {
		dst.queue = append(dst.queue, env)
	}
	if fd.dup {
		dst.queue = append(dst.queue, env)
	}
	dst.cond.Signal()
	dst.qmu.Unlock()
	return nil
}

func (e *inprocEndpoint) Broadcast(tos []types.NodeID, msg Message) error {
	var firstErr error
	for _, to := range tos {
		if err := e.Send(to, msg); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (e *inprocEndpoint) Close() error {
	e.qmu.Lock()
	e.closed = true
	e.queue = nil
	e.cond.Broadcast()
	e.qmu.Unlock()
	return nil
}

// deliveryLoop pops envelopes in arrival order, waits out each one's
// delivery deadline (pipelined: deadlines were stamped at send time), and
// invokes the handler. Read-class envelopes are handed to the lane pool
// instead: the lane worker pays the delivery deadline and processing cost,
// so classified messages overlap while mutations stay serial.
func (e *inprocEndpoint) deliveryLoop() {
	if e.lane != nil {
		defer e.lane.close()
	}
	if e.wlane != nil {
		defer e.wlane.close()
	}
	for {
		e.qmu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if e.closed {
			e.qmu.Unlock()
			return
		}
		env := e.queue[0]
		e.queue = e.queue[1:]
		e.qmu.Unlock()

		if e.lane != nil && e.classify(env.msg) && e.lane.dispatch(env.from, env.msg, env.deliverAt) {
			e.net.delivered.Add(1)
			e.delivered.Add(1)
			e.readDelivered.Add(1)
			continue
		}
		if e.wlane != nil {
			if key, ok := e.writeKey(env.msg); ok && e.wlane.dispatch(env.from, env.msg, env.deliverAt, key) {
				e.net.delivered.Add(1)
				e.delivered.Add(1)
				e.writeDelivered.Add(1)
				continue
			}
		}
		if !env.deliverAt.IsZero() {
			simclock.SpinUntil(env.deliverAt)
			// Serial receive-side processing: unlike the propagation
			// delay this is NOT pipelined — it is the node's CPU. Only
			// modeled when latency injection is on (deliverAt may also be
			// set by fault jitter alone).
			if simclock.Enabled() {
				simclock.Spin(e.net.model.ProcCost)
			}
		}
		e.net.delivered.Add(1)
		e.delivered.Add(1)
		e.handler(env.from, env.msg)
	}
}
