package transport

import (
	"sync"
	"testing"
	"time"

	"flexlog/internal/types"
)

// keyedMsg is the write-class message of these tests: Key is the lane key
// (a color in the replica), Seq the per-key send order.
type keyedMsg struct {
	Key uint64
	Seq int
}

func keyOf(m Message) (uint64, bool) {
	km, ok := m.(keyedMsg)
	if !ok {
		return 0, false
	}
	return km.Key, true
}

// TestWriteLanePerKeyFIFO floods a keyed write lane from one sender and
// verifies that every key's messages are handled in send order, whatever
// worker they land on.
func TestWriteLanePerKeyFIFO(t *testing.T) {
	const keys = 8
	const perKey = 200
	net := NewNetwork(ZeroLink())
	var mu sync.Mutex
	lastSeq := make(map[uint64]int)
	violations := 0
	handled := 0
	_, err := net.RegisterWithLanes(1, func(from types.NodeID, msg Message) {
		km := msg.(keyedMsg)
		mu.Lock()
		if km.Seq != lastSeq[km.Key]+1 {
			violations++
		}
		lastSeq[km.Key] = km.Seq
		handled++
		mu.Unlock()
	}, Lanes{Write: WriteLaneConfig{Workers: 3, Key: keyOf}})
	if err != nil {
		t.Fatal(err)
	}
	src, err := net.Register(2, func(types.NodeID, Message) {})
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= perKey; seq++ {
		for k := uint64(0); k < keys; k++ {
			if err := src.Send(1, keyedMsg{Key: k, Seq: seq}); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.After(10 * time.Second)
	for {
		mu.Lock()
		done := handled == keys*perKey
		v := violations
		mu.Unlock()
		if done {
			if v != 0 {
				t.Fatalf("%d per-key FIFO violations", v)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatalf("handled %d of %d", handled, keys*perKey)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	ws, ok := net.WriteLaneStats(1)
	if !ok {
		t.Fatal("no write-lane stats for node 1")
	}
	if ws.Enqueued != keys*perKey || ws.Dequeued != keys*perKey {
		t.Fatalf("write lane stats = %+v", ws)
	}
	var perWorker uint64
	for _, n := range ws.PerWorker {
		perWorker += n
	}
	if perWorker != keys*perKey {
		t.Fatalf("per-worker sum = %d", perWorker)
	}
	if nd := net.NodeWriteDelivered(); nd[1] != keys*perKey {
		t.Fatalf("NodeWriteDelivered = %v", nd)
	}
}

// TestWriteLaneConcurrencyAcrossKeys proves different keys are served in
// parallel: with W workers and W distinct keys, W handlers must be in
// flight at once.
func TestWriteLaneConcurrencyAcrossKeys(t *testing.T) {
	const workers = 4
	net := NewNetwork(ZeroLink())
	var mu sync.Mutex
	inFlight, maxInFlight := 0, 0
	release := make(chan struct{})
	_, err := net.RegisterWithLanes(1, func(from types.NodeID, msg Message) {
		mu.Lock()
		inFlight++
		if inFlight > maxInFlight {
			maxInFlight = inFlight
		}
		mu.Unlock()
		<-release
		mu.Lock()
		inFlight--
		mu.Unlock()
	}, Lanes{Write: WriteLaneConfig{Workers: workers, Key: keyOf}})
	if err != nil {
		t.Fatal(err)
	}
	src, err := net.Register(2, func(types.NodeID, Message) {})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < workers; i++ {
		if err := src.Send(1, keyedMsg{Key: uint64(i), Seq: 1}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		got := inFlight
		mu.Unlock()
		if got == workers {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("only %d handlers in flight, want %d", got, workers)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(release)
}

// TestWithLanesClassifiesBothWays exercises the handler-level wrapper used
// by TCP deployments: read-class, write-class and inline messages all
// reach the handler, and the stop function drains both pools.
func TestWithLanesClassifiesBothWays(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]int{}
	h := func(from types.NodeID, msg Message) {
		mu.Lock()
		defer mu.Unlock()
		switch msg.(type) {
		case laneMsg:
			seen["read"]++
		case keyedMsg:
			seen["write"]++
		default:
			seen["inline"]++
		}
	}
	wrapped, readStats, writeStats, stop := WithLanes(h, Lanes{
		Read:  LaneConfig{Workers: 2, Classify: classifyLane},
		Write: WriteLaneConfig{Workers: 2, Key: keyOf},
	})
	for i := 1; i <= 10; i++ {
		wrapped(2, laneMsg{N: i})
		wrapped(2, keyedMsg{Key: uint64(i % 3), Seq: i})
		wrapped(2, mutMsg{N: i})
	}
	stop()
	mu.Lock()
	defer mu.Unlock()
	if seen["read"] != 10 || seen["write"] != 10 || seen["inline"] != 10 {
		t.Fatalf("seen = %v", seen)
	}
	if rs := readStats(); rs.Dequeued != 10 {
		t.Fatalf("read stats = %+v", rs)
	}
	if ws := writeStats(); ws.Dequeued != 10 {
		t.Fatalf("write stats = %+v", ws)
	}
}
