package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"flexlog/internal/types"
)

// qosMsg is the tenant-tagged message class of the lane QoS tests.
type qosMsg struct {
	T types.TenantID
	N int
}

func qosTenantOf(m Message) (types.TenantID, bool) {
	qm, ok := m.(qosMsg)
	if !ok {
		return types.DefaultTenant, false
	}
	return qm.T, true
}

// qosLaneHarness gates a single-worker lane so tests can fill queues
// deterministically: the first dispatched message parks its worker on
// gate; everything dispatched after that stays queued until the gate
// opens.
type qosLaneHarness struct {
	gate    chan struct{}
	started chan struct{}

	mu    sync.Mutex
	got   []qosMsg
	sheds []qosMsg
}

func newQoSLaneHarness() *qosLaneHarness {
	return &qosLaneHarness{
		gate:    make(chan struct{}),
		started: make(chan struct{}, 1024),
	}
}

func (h *qosLaneHarness) handler(_ types.NodeID, m Message) {
	h.started <- struct{}{}
	<-h.gate
	h.mu.Lock()
	h.got = append(h.got, m.(qosMsg))
	h.mu.Unlock()
}

func (h *qosLaneHarness) shed(_ types.NodeID, m Message, _ types.TenantID) {
	h.mu.Lock()
	h.sheds = append(h.sheds, m.(qosMsg))
	h.mu.Unlock()
}

func (h *qosLaneHarness) qos(weights map[types.TenantID]uint32) LaneQoS {
	return LaneQoS{TenantOf: qosTenantOf, Weights: weights, Shed: h.shed}
}

func (h *qosLaneHarness) served() []qosMsg {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]qosMsg(nil), h.got...)
}

func (h *qosLaneHarness) shedList() []qosMsg {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]qosMsg(nil), h.sheds...)
}

func waitDequeued(t *testing.T, n uint64, stats func() uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for stats() < n {
		if time.Now().After(deadline) {
			t.Fatalf("lane drained %d messages, want %d", stats(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLaneBackpressureRead pins the read lane's full-queue semantics
// under QoS: a full tenant queue sheds (dispatch still reports true and
// the Shed hook fires, so the owner can send a typed rejection) while
// other tenants keep their headroom, and nothing blocks the caller.
func TestLaneBackpressureRead(t *testing.T) {
	h := newQoSLaneHarness()
	l := newReadLane(LaneConfig{
		Workers:  1,
		Classify: func(Message) bool { return true },
		QueueCap: 4,
		QoS:      h.qos(nil),
	}, h.handler, 0)

	// Park the worker, then fill tenant 2's queue to its bound.
	if !l.dispatch(9, qosMsg{T: 2, N: 0}, time.Time{}) {
		t.Fatal("dispatch on open lane reported closed")
	}
	<-h.started
	for i := 1; i <= 4; i++ {
		if !l.dispatch(9, qosMsg{T: 2, N: i}, time.Time{}) {
			t.Fatalf("dispatch %d reported closed", i)
		}
	}
	if got := l.stats().Shed; got != 0 {
		t.Fatalf("sheds before the queue is full: %d", got)
	}
	// Queue full: the overflow message is shed, not blocked on.
	if !l.dispatch(9, qosMsg{T: 2, N: 5}, time.Time{}) {
		t.Fatal("shed dispatch must still report true (handled, not closed)")
	}
	// A different tenant still has its own headroom.
	if !l.dispatch(9, qosMsg{T: 1, N: 0}, time.Time{}) {
		t.Fatal("dispatch for the uncongested tenant reported closed")
	}

	close(h.gate)
	waitDequeued(t, 6, func() uint64 { return l.stats().Dequeued })

	st := l.stats()
	if st.Shed != 1 {
		t.Fatalf("lane shed = %d, want 1", st.Shed)
	}
	sheds := h.shedList()
	if len(sheds) != 1 || sheds[0] != (qosMsg{T: 2, N: 5}) {
		t.Fatalf("shed hook saw %v, want the overflow message of tenant 2", sheds)
	}
	var t1, t2 TenantLaneStats
	for _, ts := range st.Tenants {
		switch ts.Tenant {
		case 1:
			t1 = ts
		case 2:
			t2 = ts
		}
	}
	if t1.Enqueued != 1 || t1.Shed != 0 {
		t.Fatalf("tenant 1 stats = %+v, want 1 enqueued / 0 shed", t1)
	}
	if t2.Enqueued != 5 || t2.Shed != 1 {
		t.Fatalf("tenant 2 stats = %+v, want 5 enqueued / 1 shed", t2)
	}

	l.close()
	if l.dispatch(9, qosMsg{T: 1, N: 1}, time.Time{}) {
		t.Fatal("dispatch after close must report false")
	}
}

// TestLaneBackpressureWrite pins the same full-queue semantics on the
// keyed write lane: per-worker tenant queues shed on overflow without
// blocking, and the key's messages that were accepted stay FIFO.
func TestLaneBackpressureWrite(t *testing.T) {
	h := newQoSLaneHarness()
	l := newWriteLane(WriteLaneConfig{
		Workers:  1,
		Key:      func(Message) (uint64, bool) { return 7, true },
		QueueCap: 3,
		QoS:      h.qos(nil),
	}, h.handler, 0)

	if !l.dispatch(9, qosMsg{T: 2, N: 0}, time.Time{}, 7) {
		t.Fatal("dispatch on open lane reported closed")
	}
	<-h.started
	for i := 1; i <= 3; i++ {
		if !l.dispatch(9, qosMsg{T: 2, N: i}, time.Time{}, 7) {
			t.Fatalf("dispatch %d reported closed", i)
		}
	}
	if !l.dispatch(9, qosMsg{T: 2, N: 4}, time.Time{}, 7) {
		t.Fatal("shed dispatch must still report true")
	}

	close(h.gate)
	waitDequeued(t, 4, func() uint64 { return l.stats().Dequeued })

	st := l.stats()
	if st.Shed != 1 {
		t.Fatalf("lane shed = %d, want 1", st.Shed)
	}
	sheds := h.shedList()
	if len(sheds) != 1 || sheds[0] != (qosMsg{T: 2, N: 4}) {
		t.Fatalf("shed hook saw %v, want the overflow message", sheds)
	}
	// The accepted prefix of the key's stream was served in order.
	want := []qosMsg{{T: 2, N: 0}, {T: 2, N: 1}, {T: 2, N: 2}, {T: 2, N: 3}}
	got := h.served()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("write lane order = %v, want %v", got, want)
	}

	l.close()
	if l.dispatch(9, qosMsg{T: 2, N: 9}, time.Time{}, 7) {
		t.Fatal("dispatch after close must report false")
	}
}

// TestLaneTenantFIFOWeightedDispatch pins the DRR service order on a
// parked single-worker lane: with weights 3:1, tenant 1 is served three
// messages per round to tenant 2's one, and each tenant's own stream
// stays strictly FIFO.
func TestLaneTenantFIFOWeightedDispatch(t *testing.T) {
	h := newQoSLaneHarness()
	l := newWriteLane(WriteLaneConfig{
		Workers:  1,
		Key:      func(Message) (uint64, bool) { return 1, true },
		QueueCap: 64,
		QoS:      h.qos(map[types.TenantID]uint32{1: 3, 2: 1}),
	}, h.handler, 0)
	defer l.close()

	// Park the worker on a throwaway message so the queues below build up
	// with no concurrent draining — the DRR order is then deterministic.
	if !l.dispatch(9, qosMsg{T: 1, N: -1}, time.Time{}, 1) {
		t.Fatal("dispatch reported closed")
	}
	<-h.started
	for i := 0; i < 8; i++ {
		l.dispatch(9, qosMsg{T: 1, N: i}, time.Time{}, 1)
	}
	for i := 0; i < 4; i++ {
		l.dispatch(9, qosMsg{T: 2, N: i}, time.Time{}, 1)
	}
	close(h.gate)
	waitDequeued(t, 13, func() uint64 { return l.stats().Dequeued })

	got := h.served()[1:] // drop the parking message
	want := []qosMsg{
		{T: 1, N: 0}, {T: 1, N: 1}, {T: 1, N: 2}, {T: 2, N: 0},
		{T: 1, N: 3}, {T: 1, N: 4}, {T: 1, N: 5}, {T: 2, N: 1},
		{T: 1, N: 6}, {T: 1, N: 7}, {T: 2, N: 2}, {T: 2, N: 3},
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("DRR service order\n got %v\nwant %v", got, want)
	}
}

// TestLaneTenantFIFOConcurrent hammers the weighted read lane from
// concurrent per-tenant producers and checks the invariant that matters
// under load: every tenant's stream is served in its own send order,
// whatever the cross-tenant interleave. Run under -race this also
// exercises the wfq's producer/consumer synchronization.
func TestLaneTenantFIFOConcurrent(t *testing.T) {
	const perTenant = 200
	tenants := []types.TenantID{1, 2, 3}
	var mu sync.Mutex
	seen := make(map[types.TenantID][]int)
	// One worker: handler invocation order then equals pop order, so
	// within-tenant FIFO is directly observable (more workers could record
	// two pops out of order even though the lane popped them FIFO).
	l := newReadLane(LaneConfig{
		Workers:  1,
		Classify: func(Message) bool { return true },
		QueueCap: perTenant + 1,
		QoS: LaneQoS{
			TenantOf: qosTenantOf,
			Weights:  map[types.TenantID]uint32{1: 4, 2: 2, 3: 1},
		},
	}, func(_ types.NodeID, m Message) {
		qm := m.(qosMsg)
		mu.Lock()
		seen[qm.T] = append(seen[qm.T], qm.N)
		mu.Unlock()
	}, 0)

	var wg sync.WaitGroup
	for _, tenant := range tenants {
		tenant := tenant
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				if !l.dispatch(9, qosMsg{T: tenant, N: i}, time.Time{}) {
					t.Errorf("tenant %d dispatch %d reported closed", tenant, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	waitDequeued(t, uint64(len(tenants)*perTenant), func() uint64 { return l.stats().Dequeued })
	l.close()

	if st := l.stats(); st.Shed != 0 {
		t.Fatalf("sheds under nominal load: %d", st.Shed)
	}
	for _, tenant := range tenants {
		mu.Lock()
		order := append([]int(nil), seen[tenant]...)
		mu.Unlock()
		if len(order) != perTenant {
			t.Fatalf("tenant %d: served %d of %d", tenant, len(order), perTenant)
		}
		for i, n := range order {
			if n != i {
				t.Fatalf("tenant %d: message %d served at position %d — FIFO broken", tenant, n, i)
			}
		}
	}
}
