package transport

import (
	"sync"
	"testing"
	"time"

	"flexlog/internal/types"
)

// collector is a handler that records received messages.
type collector struct {
	mu   sync.Mutex
	msgs []Message
}

func (c *collector) handle(from types.NodeID, msg Message) {
	c.mu.Lock()
	c.msgs = append(c.msgs, msg)
	c.mu.Unlock()
}

func (c *collector) ints() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.msgs))
	for _, m := range c.msgs {
		out = append(out, m.(int))
	}
	return out
}

func (c *collector) waitLen(t *testing.T, want int) []int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := c.ints()
		if len(got) >= want {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d messages, have %d", want, len(got))
		}
		time.Sleep(time.Millisecond)
	}
}

func faultPair(t *testing.T) (*Network, Endpoint, *collector) {
	t.Helper()
	n := NewNetwork(ZeroLink())
	var rx collector
	src, err := n.Register(1, func(types.NodeID, Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register(2, rx.handle); err != nil {
		t.Fatal(err)
	}
	return n, src, &rx
}

func TestFaultDropAll(t *testing.T) {
	n, src, rx := faultPair(t)
	n.SetLinkFaults(1, 2, FaultModel{DropProb: 1})
	for i := 0; i < 50; i++ {
		if err := src.Send(2, i); err != nil {
			t.Fatalf("lossy drop must look like success, got %v", err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if got := rx.ints(); len(got) != 0 {
		t.Fatalf("DropProb=1 delivered %d messages", len(got))
	}
	if st := n.FaultStats(); st.Drops != 50 {
		t.Fatalf("Drops = %d, want 50", st.Drops)
	}
}

func TestFaultDropNextOneShot(t *testing.T) {
	n, src, rx := faultPair(t)
	n.SetLinkFaults(1, 2, FaultModel{DropNext: 3})
	for i := 0; i < 10; i++ {
		src.Send(2, i)
	}
	got := rx.waitLen(t, 7)
	if len(got) != 7 {
		t.Fatalf("delivered %d, want 7", len(got))
	}
	for i, v := range got {
		if v != i+3 {
			t.Fatalf("message %d = %d, want %d (first 3 dropped)", i, v, i+3)
		}
	}
	if st := n.FaultStats(); st.Drops != 3 {
		t.Fatalf("Drops = %d, want 3", st.Drops)
	}
}

func TestFaultDupAll(t *testing.T) {
	n, src, rx := faultPair(t)
	n.SetLinkFaults(1, 2, FaultModel{DupProb: 1})
	for i := 0; i < 20; i++ {
		src.Send(2, i)
	}
	got := rx.waitLen(t, 40)
	if len(got) != 40 {
		t.Fatalf("delivered %d, want 40", len(got))
	}
	for i := 0; i < 20; i++ {
		if got[2*i] != i || got[2*i+1] != i {
			t.Fatalf("message %d not duplicated in place: %v", i, got[2*i:2*i+2])
		}
	}
}

func TestFaultReorderRelaxesFIFO(t *testing.T) {
	n, src, rx := faultPair(t)
	// Make delivery slow enough for a queue to build, so reorder swaps
	// have queued messages to overtake.
	n.SetLinkFaults(1, 2, FaultModel{ReorderProb: 0.5, JitterMax: 200 * time.Microsecond})
	const total = 400
	for i := 0; i < total; i++ {
		src.Send(2, i)
	}
	got := rx.waitLen(t, total)
	// Every message must arrive exactly once...
	seen := make(map[int]bool, total)
	for _, v := range got {
		if seen[v] {
			t.Fatalf("message %d delivered twice", v)
		}
		seen[v] = true
	}
	if len(seen) != total {
		t.Fatalf("delivered %d distinct, want %d", len(seen), total)
	}
	// ...and at least one pair must be out of order.
	inversions := 0
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("ReorderProb=0.5 produced a perfectly FIFO delivery")
	}
	if st := n.FaultStats(); st.Reorders == 0 {
		t.Fatal("reorder counter never bumped")
	}
}

func TestFaultJitterDelaysDelivery(t *testing.T) {
	n, src, rx := faultPair(t)
	n.SetLinkFaults(1, 2, FaultModel{JitterMax: 3 * time.Millisecond})
	start := time.Now()
	const total = 20
	for i := 0; i < total; i++ {
		src.Send(2, i)
	}
	got := rx.waitLen(t, total)
	if len(got) != total {
		t.Fatalf("delivered %d, want %d", len(got), total)
	}
	// Jitter deadlines are stamped at send time and waited out pipelined,
	// so the burst elapses ~max(jitter) of the 20 draws, not the sum: the
	// chance every uniform[0,3ms) draw lands under 1ms is (1/3)^20.
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Fatalf("jittered delivery finished in %v, suspiciously fast", elapsed)
	}
	if st := n.FaultStats(); st.Jittered == 0 {
		t.Fatal("jitter counter never bumped")
	}
}

// TestFaultSeedDeterminism verifies the per-link decision stream is a pure
// function of (seed, link, message index): two networks with the same seed
// and model drop exactly the same message positions.
func TestFaultSeedDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		n, src, rx := faultPair(t)
		n.SetFaultSeed(seed)
		n.SetLinkFaults(1, 2, FaultModel{DropProb: 0.3})
		const total = 200
		for i := 0; i < total; i++ {
			src.Send(2, i)
		}
		// Drain: survivors arrive in order; wait for the expected count.
		want := int(n.delivered.Load()) // racy hint; wait on stats instead
		_ = want
		deadline := time.Now().Add(5 * time.Second)
		for {
			st := n.FaultStats()
			if int(st.Drops)+len(rx.ints()) == total {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("drain timeout")
			}
			time.Sleep(time.Millisecond)
		}
		return rx.ints()
	}
	a := run(42)
	b := run(42)
	c := run(43)
	if len(a) != len(b) {
		t.Fatalf("same seed delivered %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical drop pattern")
		}
	}
}

// TestDefaultFaultsCoverNewLinks verifies SetDefaultFaults applies to links
// that first carry traffic later, and that ClearFaults restores perfection.
func TestDefaultFaultsCoverNewLinks(t *testing.T) {
	n := NewNetwork(ZeroLink())
	var rx collector
	src, _ := n.Register(1, func(types.NodeID, Message) {})
	n.SetDefaultFaults(FaultModel{DropProb: 1})
	if _, err := n.Register(3, rx.handle); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		src.Send(3, i)
	}
	time.Sleep(10 * time.Millisecond)
	if got := rx.ints(); len(got) != 0 {
		t.Fatalf("default faults ignored on new link: %d delivered", len(got))
	}
	n.ClearFaults()
	for i := 0; i < 10; i++ {
		src.Send(3, i)
	}
	rx.waitLen(t, 10)
}
