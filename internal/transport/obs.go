package transport

import (
	"flexlog/internal/obs"
)

// PublishObs registers the network's delivery and fault-injection
// counters with the observability registry. The fault counters are the
// chaos layer's injection totals (drops, dups, reorders, jitter) — they
// were previously only reachable through FaultStats snapshots; publishing
// them func-backed keeps the single atomic source of truth.
func (n *Network) PublishObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("flexlog_net_delivered_total",
		"Messages delivered by the in-process network.", nil,
		n.delivered.Load)
	reg.CounterFunc("flexlog_net_dropped_total",
		"Messages dropped by the in-process network (partitions, stopped nodes).", nil,
		n.dropped.Load)
	for _, kind := range []struct {
		name string
		fn   func() uint64
	}{
		{"drop", n.faults.drops.Load},
		{"dup", n.faults.dups.Load},
		{"reorder", n.faults.reorders.Load},
		{"jitter", n.faults.jittered.Load},
	} {
		reg.CounterFunc("flexlog_fault_injected_total",
			"Faults injected by the chaos layer, by kind.",
			obs.Labels{"kind": kind.name}, kind.fn)
	}
}
