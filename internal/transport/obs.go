package transport

import (
	"flexlog/internal/obs"
)

// PublishObs registers the network's delivery and fault-injection
// counters with the observability registry. The fault counters are the
// chaos layer's injection totals (drops, dups, reorders, jitter) — they
// were previously only reachable through FaultStats snapshots; publishing
// them func-backed keeps the single atomic source of truth.
func (n *Network) PublishObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("flexlog_net_delivered_total",
		"Messages delivered by the in-process network.", nil,
		n.delivered.Load)
	reg.CounterFunc("flexlog_net_dropped_total",
		"Messages dropped by the in-process network (partitions, stopped nodes).", nil,
		n.dropped.Load)
	for _, kind := range []struct {
		name string
		fn   func() uint64
	}{
		{"drop", n.faults.drops.Load},
		{"dup", n.faults.dups.Load},
		{"reorder", n.faults.reorders.Load},
		{"jitter", n.faults.jittered.Load},
	} {
		reg.CounterFunc("flexlog_fault_injected_total",
			"Faults injected by the chaos layer, by kind.",
			obs.Labels{"kind": kind.name}, kind.fn)
	}
}

// PublishObs registers the TCP endpoint's codec and syscall counters with
// the observability registry. All series are func-backed views over the
// endpoint's atomics, so scraping never touches the send path.
func (e *TCPEndpoint) PublishObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("flexlog_tcp_frames_total",
		"Frames encoded (out) and decoded (in) by the TCP transport.",
		obs.Labels{"dir": "out"}, e.framesOut.Load)
	reg.CounterFunc("flexlog_tcp_frames_total",
		"Frames encoded (out) and decoded (in) by the TCP transport.",
		obs.Labels{"dir": "in"}, e.framesIn.Load)
	reg.CounterFunc("flexlog_tcp_bytes_total",
		"Wire bytes written (out) and read (in) by the TCP transport.",
		obs.Labels{"dir": "out"}, e.bytesOut.Load)
	reg.CounterFunc("flexlog_tcp_bytes_total",
		"Wire bytes written (out) and read (in) by the TCP transport.",
		obs.Labels{"dir": "in"}, e.bytesIn.Load)
	reg.CounterFunc("flexlog_tcp_sends_total",
		"Send/Broadcast destination deliveries (a broadcast counts once per peer, its frame once).",
		nil, e.sendsOut.Load)
	reg.CounterFunc("flexlog_tcp_gob_frames_total",
		"Frames that fell back to gob encoding (codec=gob or unknown message type).",
		nil, e.gobFrames.Load)
	reg.CounterFunc("flexlog_tcp_buf_pool_total",
		"Frame buffer pool lookups by result.",
		obs.Labels{"result": "hit"}, e.poolHits.Load)
	reg.CounterFunc("flexlog_tcp_buf_pool_total",
		"Frame buffer pool lookups by result.",
		obs.Labels{"result": "miss"}, e.poolMisses.Load)
	reg.CounterFunc("flexlog_tcp_writev_calls_total",
		"Vectored write syscalls issued; frames_total{dir=out}/writev_calls_total is the mean batch size.",
		nil, e.writevCalls.Load)
	reg.GaugeFunc("flexlog_tcp_writev_max_batch",
		"Largest number of frames coalesced into a single vectored write.",
		nil, func() float64 { return float64(e.writevMax.Load()) })
	reg.CounterFunc("flexlog_tcp_decode_errors_total",
		"Inbound frames that failed to decode (connection is dropped).",
		nil, e.decodeErrs.Load)
}
