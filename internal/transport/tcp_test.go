package transport

import (
	"encoding/gob"
	"errors"
	"net"
	"testing"
	"time"

	"flexlog/internal/types"
)

type tcpTestMsg struct {
	Seq  int
	Body string
}

func init() {
	gob.Register(tcpTestMsg{})
}

// freeAddrs reserves n distinct loopback addresses.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

func TestTCPRoundTrip(t *testing.T) {
	addrs := freeAddrs(t, 2)
	book := NewAddressBook(map[types.NodeID]string{1: addrs[0], 2: addrs[1]})

	rx := newSink()
	b, err := ListenTCP(2, book, rx.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := ListenTCP(1, book, func(types.NodeID, Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.ID() != 1 || a.Addr() == "" {
		t.Fatalf("endpoint identity wrong: %v %q", a.ID(), a.Addr())
	}

	const count = 100
	for i := 0; i < count; i++ {
		if err := a.Send(2, tcpTestMsg{Seq: i, Body: "hi"}); err != nil {
			t.Fatal(err)
		}
	}
	rx.wait(t, count)
	for i, m := range rx.snapshot() {
		got := m.(tcpTestMsg)
		if got.Seq != i || got.Body != "hi" {
			t.Fatalf("message %d = %+v", i, got)
		}
		if rx.from[i] != 1 {
			t.Fatalf("from = %v", rx.from[i])
		}
	}
}

func TestTCPBroadcast(t *testing.T) {
	addrs := freeAddrs(t, 3)
	book := NewAddressBook(map[types.NodeID]string{1: addrs[0], 2: addrs[1], 3: addrs[2]})
	rx2, rx3 := newSink(), newSink()
	b, _ := ListenTCP(2, book, rx2.handler)
	defer b.Close()
	c, _ := ListenTCP(3, book, rx3.handler)
	defer c.Close()
	a, _ := ListenTCP(1, book, func(types.NodeID, Message) {})
	defer a.Close()
	if err := a.Broadcast([]types.NodeID{2, 3}, tcpTestMsg{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	rx2.wait(t, 1)
	rx3.wait(t, 1)
}

func TestTCPUnknownDestination(t *testing.T) {
	addrs := freeAddrs(t, 1)
	book := NewAddressBook(map[types.NodeID]string{1: addrs[0]})
	a, _ := ListenTCP(1, book, func(types.NodeID, Message) {})
	defer a.Close()
	if err := a.Send(9, tcpTestMsg{}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("send to unknown: %v", err)
	}
}

func TestTCPListenWithoutAddress(t *testing.T) {
	book := NewAddressBook(nil)
	if _, err := ListenTCP(1, book, func(types.NodeID, Message) {}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("listen without address: %v", err)
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	addrs := freeAddrs(t, 2)
	book := NewAddressBook(map[types.NodeID]string{1: addrs[0], 2: addrs[1]})
	b, _ := ListenTCP(2, book, func(types.NodeID, Message) {})
	defer b.Close()
	a, _ := ListenTCP(1, book, func(types.NodeID, Message) {})
	a.Close()
	a.Close() // double close is safe
	if err := a.Send(2, tcpTestMsg{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	addrs := freeAddrs(t, 2)
	book := NewAddressBook(map[types.NodeID]string{1: addrs[0], 2: addrs[1]})
	rx := newSink()
	b, _ := ListenTCP(2, book, rx.handler)
	a, _ := ListenTCP(1, book, func(types.NodeID, Message) {})
	defer a.Close()

	if err := a.Send(2, tcpTestMsg{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	rx.wait(t, 1)

	// Restart the peer; the first send may fail on the dead connection,
	// after which the endpoint redials.
	b.Close()
	rx2 := newSink()
	b2, err := ListenTCP(2, book, rx2.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()

	// The first write after the peer restarted may be silently buffered on
	// the dead connection, so retry until a message actually arrives.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("could not reconnect to restarted peer")
		}
		_ = a.Send(2, tcpTestMsg{Seq: 2}) // error drops the cached conn
		select {
		case <-rx2.ch:
			return
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func TestAddressBookLookup(t *testing.T) {
	book := NewAddressBook(map[types.NodeID]string{7: "127.0.0.1:9999"})
	if a, ok := book.Lookup(7); !ok || a != "127.0.0.1:9999" {
		t.Fatalf("lookup = %q, %v", a, ok)
	}
	if _, ok := book.Lookup(8); ok {
		t.Fatal("missing entry reported present")
	}
}
