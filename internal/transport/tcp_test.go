package transport

import (
	"bytes"
	"encoding/gob"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"flexlog/internal/obs"
	"flexlog/internal/proto"
	"flexlog/internal/types"
)

type tcpTestMsg struct {
	Seq  int
	Body string
}

func init() {
	gob.Register(tcpTestMsg{})
}

// freeAddrs reserves n distinct loopback addresses.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

func TestTCPRoundTrip(t *testing.T) {
	addrs := freeAddrs(t, 2)
	book := NewAddressBook(map[types.NodeID]string{1: addrs[0], 2: addrs[1]})

	rx := newSink()
	b, err := ListenTCP(2, book, rx.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := ListenTCP(1, book, func(types.NodeID, Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.ID() != 1 || a.Addr() == "" {
		t.Fatalf("endpoint identity wrong: %v %q", a.ID(), a.Addr())
	}

	const count = 100
	for i := 0; i < count; i++ {
		if err := a.Send(2, tcpTestMsg{Seq: i, Body: "hi"}); err != nil {
			t.Fatal(err)
		}
	}
	rx.wait(t, count)
	for i, m := range rx.snapshot() {
		got := m.(tcpTestMsg)
		if got.Seq != i || got.Body != "hi" {
			t.Fatalf("message %d = %+v", i, got)
		}
		if rx.from[i] != 1 {
			t.Fatalf("from = %v", rx.from[i])
		}
	}
}

func TestTCPBroadcast(t *testing.T) {
	addrs := freeAddrs(t, 3)
	book := NewAddressBook(map[types.NodeID]string{1: addrs[0], 2: addrs[1], 3: addrs[2]})
	rx2, rx3 := newSink(), newSink()
	b, _ := ListenTCP(2, book, rx2.handler)
	defer b.Close()
	c, _ := ListenTCP(3, book, rx3.handler)
	defer c.Close()
	a, _ := ListenTCP(1, book, func(types.NodeID, Message) {})
	defer a.Close()
	if err := a.Broadcast([]types.NodeID{2, 3}, tcpTestMsg{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	rx2.wait(t, 1)
	rx3.wait(t, 1)
}

func TestTCPUnknownDestination(t *testing.T) {
	addrs := freeAddrs(t, 1)
	book := NewAddressBook(map[types.NodeID]string{1: addrs[0]})
	a, _ := ListenTCP(1, book, func(types.NodeID, Message) {})
	defer a.Close()
	if err := a.Send(9, tcpTestMsg{}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("send to unknown: %v", err)
	}
}

func TestTCPListenWithoutAddress(t *testing.T) {
	book := NewAddressBook(nil)
	if _, err := ListenTCP(1, book, func(types.NodeID, Message) {}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("listen without address: %v", err)
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	addrs := freeAddrs(t, 2)
	book := NewAddressBook(map[types.NodeID]string{1: addrs[0], 2: addrs[1]})
	b, _ := ListenTCP(2, book, func(types.NodeID, Message) {})
	defer b.Close()
	a, _ := ListenTCP(1, book, func(types.NodeID, Message) {})
	a.Close()
	a.Close() // double close is safe
	if err := a.Send(2, tcpTestMsg{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	addrs := freeAddrs(t, 2)
	book := NewAddressBook(map[types.NodeID]string{1: addrs[0], 2: addrs[1]})
	rx := newSink()
	b, _ := ListenTCP(2, book, rx.handler)
	a, _ := ListenTCP(1, book, func(types.NodeID, Message) {})
	defer a.Close()

	if err := a.Send(2, tcpTestMsg{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	rx.wait(t, 1)

	// Restart the peer; the first send may fail on the dead connection,
	// after which the endpoint redials.
	b.Close()
	rx2 := newSink()
	b2, err := ListenTCP(2, book, rx2.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()

	// The first write after the peer restarted may be silently buffered on
	// the dead connection, so retry until a message actually arrives.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("could not reconnect to restarted peer")
		}
		_ = a.Send(2, tcpTestMsg{Seq: 2}) // error drops the cached conn
		select {
		case <-rx2.ch:
			return
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func TestAddressBookLookup(t *testing.T) {
	book := NewAddressBook(map[types.NodeID]string{7: "127.0.0.1:9999"})
	if a, ok := book.Lookup(7); !ok || a != "127.0.0.1:9999" {
		t.Fatalf("lookup = %q, %v", a, ok)
	}
	if _, ok := book.Lookup(8); ok {
		t.Fatal("missing entry reported present")
	}
}

// TestTCPCodecRoundTrip sends codec-native proto messages (including the
// alias-heavy append/read frames) over a real socket and checks they
// arrive intact and self-contained.
func TestTCPCodecRoundTrip(t *testing.T) {
	addrs := freeAddrs(t, 2)
	book := NewAddressBook(map[types.NodeID]string{1: addrs[0], 2: addrs[1]})
	rx := newSink()
	b, err := ListenTCP(2, book, rx.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := ListenTCP(1, book, func(types.NodeID, Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	sent := []Message{
		proto.AppendReq{Color: 3, Token: types.MakeToken(7, 9), Records: [][]byte{[]byte("alpha"), nil, []byte("beta")}, Client: 1},
		proto.ReadResp{ID: 42, SN: types.MakeSN(1, 5), Data: []byte("payload"), Found: true},
		proto.OrderResp{Token: 11, LastSN: types.MakeSN(2, 8), NRecords: 4, Color: 3},
		proto.SyncState{ID: 1, Epoch: 2, MaxSNs: map[types.ColorID]types.SN{0: 5, 9: 7}, From: 1},
	}
	for _, m := range sent {
		if err := a.Send(2, m); err != nil {
			t.Fatal(err)
		}
	}
	rx.wait(t, len(sent))
	got := rx.snapshot()
	ar := got[0].(proto.AppendReq)
	if ar.Color != 3 || ar.Token != types.MakeToken(7, 9) || len(ar.Records) != 3 ||
		string(ar.Records[0]) != "alpha" || len(ar.Records[1]) != 0 || string(ar.Records[2]) != "beta" {
		t.Fatalf("AppendReq = %+v", ar)
	}
	rr := got[1].(proto.ReadResp)
	if rr.ID != 42 || !rr.Found || string(rr.Data) != "payload" {
		t.Fatalf("ReadResp = %+v", rr)
	}
	or := got[2].(proto.OrderResp)
	if or.NRecords != 4 || or.LastSN != types.MakeSN(2, 8) {
		t.Fatalf("OrderResp = %+v", or)
	}
	ss := got[3].(proto.SyncState)
	if ss.MaxSNs[9] != 7 || ss.Epoch != 2 {
		t.Fatalf("SyncState = %+v", ss)
	}
	st := a.Stats()
	if st.GobFrames != 0 {
		t.Fatalf("codec-native messages took the gob path: %+v", st)
	}
}

// TestTCPBroadcastEncodesOnce is the regression gate for the old
// per-destination re-encode: a broadcast to N peers must cost exactly one
// frame encode and N writes.
func TestTCPBroadcastEncodesOnce(t *testing.T) {
	addrs := freeAddrs(t, 4)
	book := NewAddressBook(map[types.NodeID]string{1: addrs[0], 2: addrs[1], 3: addrs[2], 4: addrs[3]})
	sinks := map[types.NodeID]*sink{2: newSink(), 3: newSink(), 4: newSink()}
	for id, s := range sinks {
		ep, err := ListenTCP(id, book, s.handler)
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
	}
	a, err := ListenTCP(1, book, func(types.NodeID, Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	msg := proto.OrderResp{Token: 1, LastSN: types.MakeSN(1, 1), NRecords: 1}
	if err := a.Broadcast([]types.NodeID{2, 3, 4}, msg); err != nil {
		t.Fatal(err)
	}
	for _, s := range sinks {
		s.wait(t, 1)
	}
	st := a.Stats()
	if st.FramesOut != 1 {
		t.Fatalf("broadcast encoded %d times, want 1", st.FramesOut)
	}
	if st.SendsOut != 3 {
		t.Fatalf("broadcast wrote %d frames, want 3", st.SendsOut)
	}
}

// TestTCPSlowDialDoesNotBlockOtherPeers pins the per-peer dial guard: a
// peer whose dial hangs must not stall sends to healthy peers (the old
// endpoint dialed while holding the endpoint-wide mutex).
func TestTCPSlowDialDoesNotBlockOtherPeers(t *testing.T) {
	addrs := freeAddrs(t, 3)
	book := NewAddressBook(map[types.NodeID]string{1: addrs[0], 2: addrs[1], 9: addrs[2]})
	rx := newSink()
	b, err := ListenTCP(2, book, rx.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := ListenTCP(1, book, func(types.NodeID, Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	release := make(chan struct{})
	realDial := a.dial
	a.dial = func(addr string) (net.Conn, error) {
		if addr == addrs[2] {
			<-release // node 9 is unreachable: hang until the test ends
			return nil, errors.New("gave up")
		}
		return realDial(addr)
	}
	defer close(release)

	stuck := make(chan struct{})
	go func() {
		defer close(stuck)
		_ = a.Send(9, proto.SeqHeartbeat{Epoch: 1, From: 1}) // hangs in dial
	}()

	// While node 9's dial hangs, sends to node 2 must go through.
	done := make(chan error, 1)
	go func() {
		done <- a.Send(2, proto.SeqHeartbeat{Epoch: 1, From: 1})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("send to healthy peer: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("send to healthy peer blocked behind a hung dial")
	}
	rx.wait(t, 1)
	select {
	case <-stuck:
		t.Fatal("hung dial returned early; test proved nothing")
	default:
	}
}

// TestTCPGobCodecInterop runs one endpoint pinned to the legacy gob codec
// against a binary-codec endpoint: inbound framing is sniffed per
// connection, so a mixed cluster keeps working during a rolling upgrade.
func TestTCPGobCodecInterop(t *testing.T) {
	deployRegisterOnce()
	addrs := freeAddrs(t, 2)
	book := NewAddressBook(map[types.NodeID]string{1: addrs[0], 2: addrs[1]})
	rxGob, rxBin := newSink(), newSink()
	gobEP, err := ListenTCP(1, book, rxGob.handler, WithTCPCodec(CodecGob))
	if err != nil {
		t.Fatal(err)
	}
	defer gobEP.Close()
	binEP, err := ListenTCP(2, book, rxBin.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer binEP.Close()

	if err := gobEP.Send(2, proto.AppendAck{Token: 5, SN: 6}); err != nil {
		t.Fatal(err)
	}
	if err := binEP.Send(1, proto.AppendAck{Token: 7, SN: 8}); err != nil {
		t.Fatal(err)
	}
	rxBin.wait(t, 1)
	rxGob.wait(t, 1)
	if got := rxBin.snapshot()[0].(proto.AppendAck); got.Token != 5 || got.SN != 6 {
		t.Fatalf("gob→binary delivery = %+v", got)
	}
	if got := rxGob.snapshot()[0].(proto.AppendAck); got.Token != 7 || got.SN != 8 {
		t.Fatalf("binary→gob delivery = %+v", got)
	}
}

var deployRegisterOnce = sync.OnceFunc(func() { proto.RegisterGob() })

// TestParseCodec covers the -codec flag values.
func TestParseCodec(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Codec
		ok   bool
	}{{"", CodecBinary, true}, {"binary", CodecBinary, true}, {"gob", CodecGob, true}, {"nope", 0, false}} {
		got, err := ParseCodec(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseCodec(%q) = %v, %v", tc.in, got, err)
		}
	}
	if CodecBinary.String() != "binary" || CodecGob.String() != "gob" {
		t.Error("codec names wrong")
	}
}

// BenchmarkTCPBroadcast measures the encode-once broadcast against three
// loopback peers (the old transport re-encoded per destination).
func BenchmarkTCPBroadcast(b *testing.B) {
	lns := make([]net.Listener, 4)
	addrs := make(map[types.NodeID]string, 4)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		lns[i] = ln
		addrs[types.NodeID(i+1)] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	book := NewAddressBook(addrs)
	for id := types.NodeID(2); id <= 4; id++ {
		ep, err := ListenTCP(id, book, func(types.NodeID, Message) {})
		if err != nil {
			b.Fatal(err)
		}
		defer ep.Close()
	}
	a, err := ListenTCP(1, book, func(types.NodeID, Message) {})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	msg := proto.OrderResp{Token: 1, LastSN: types.MakeSN(1, 1), NRecords: 1}
	tos := []types.NodeID{2, 3, 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Broadcast(tos, msg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTCPPublishObs checks the endpoint's codec counters surface through
// the obs registry and move when traffic flows.
func TestTCPPublishObs(t *testing.T) {
	addrs := freeAddrs(t, 2)
	book := NewAddressBook(map[types.NodeID]string{1: addrs[0], 2: addrs[1]})
	rx := newSink()
	bEp, err := ListenTCP(2, book, rx.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer bEp.Close()
	a, err := ListenTCP(1, book, func(types.NodeID, Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	reg := obs.NewRegistry()
	a.PublishObs(reg)
	bEp.PublishObs(reg)

	if err := a.Send(2, proto.AppendAck{Token: 1, SN: 2}); err != nil {
		t.Fatal(err)
	}
	rx.wait(t, 1)

	var out bytes.Buffer
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"flexlog_tcp_frames_total",
		"flexlog_tcp_bytes_total",
		"flexlog_tcp_sends_total",
		"flexlog_tcp_gob_frames_total",
		"flexlog_tcp_buf_pool_total",
		"flexlog_tcp_writev_calls_total",
		"flexlog_tcp_writev_max_batch",
		"flexlog_tcp_decode_errors_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("registry output missing %s", want)
		}
	}
	st := a.Stats()
	if st.FramesOut == 0 || st.WritevCalls == 0 {
		t.Fatalf("sender stats did not move: %+v", st)
	}
	if bs := bEp.Stats(); bs.FramesIn == 0 {
		t.Fatalf("receiver stats did not move: %+v", bs)
	}
}
