package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"flexlog/internal/proto"
	"flexlog/internal/types"
)

// Codec selects the outbound framing of a TCPEndpoint. Inbound framing is
// auto-detected per connection (binary-codec peers announce themselves
// with proto.Magic), so endpoints with different codecs interoperate.
type Codec int

const (
	// CodecBinary is the hand-rolled length-prefixed binary codec
	// (DESIGN.md §12): varint fields, pooled buffers, vectored writes.
	CodecBinary Codec = iota
	// CodecGob is the legacy reflection-driven encoding/gob stream, kept
	// for the ablation baseline (-codec=gob) and rolling upgrades.
	CodecGob
)

// ParseCodec maps a -codec flag value to a Codec.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "binary":
		return CodecBinary, nil
	case "gob":
		return CodecGob, nil
	default:
		return 0, fmt.Errorf("transport: unknown codec %q (want binary or gob)", s)
	}
}

func (c Codec) String() string {
	if c == CodecGob {
		return "gob"
	}
	return "binary"
}

// wireEnvelope is the gob frame exchanged on legacy gob connections.
type wireEnvelope struct {
	From types.NodeID
	Msg  Message
}

// AddressBook maps node ids to TCP addresses for a multi-process
// deployment. It is immutable after construction.
type AddressBook struct {
	addrs map[types.NodeID]string
}

// NewAddressBook builds an address book from a static map.
func NewAddressBook(addrs map[types.NodeID]string) *AddressBook {
	m := make(map[types.NodeID]string, len(addrs))
	for id, a := range addrs {
		m[id] = a
	}
	return &AddressBook{addrs: m}
}

// Lookup returns the address of a node.
func (b *AddressBook) Lookup(id types.NodeID) (string, bool) {
	a, ok := b.addrs[id]
	return a, ok
}

// maxPooledFrame caps the size of buffers returned to the frame pool;
// occasional giant frames (bulk sync fetches) are left for the GC rather
// than pinning their capacity forever.
const maxPooledFrame = 1 << 20

// framePool recycles encode and read buffers across all TCP endpooints in
// the process. It stores *[]byte so Put does not allocate.
var framePool = sync.Pool{}

// TCPStats is a point-in-time snapshot of one endpoint's wire-level
// counters (also published to the obs registry via PublishObs).
type TCPStats struct {
	FramesOut   uint64 // frames encoded for sending (broadcast counts once)
	SendsOut    uint64 // frame writes enqueued (broadcast counts per peer)
	BytesOut    uint64 // frame bytes written, including length prefixes
	FramesIn    uint64 // frames decoded from inbound connections
	BytesIn     uint64 // frame bytes read, including length prefixes
	GobFrames   uint64 // messages that took a gob path (codec or fallback)
	PoolHits    uint64 // frame buffers served from the pool
	PoolMisses  uint64 // frame buffers freshly allocated
	WritevCalls uint64 // vectored writes issued
	WritevMax   uint64 // largest frame batch written by one writev
	DecodeErrs  uint64 // inbound framing/decode failures (connection dropped)
}

// WritevFrames is implied: SendsOut frames leave through WritevCalls
// writes, so the mean writev batch is SendsOut/WritevCalls.

// TCPEndpoint implements Endpoint over real TCP sockets. Outbound frames
// use the binary wire codec by default (see package proto): encode
// happens once into a pooled buffer, concurrent sends to the same peer
// coalesce into a single vectored write (net.Buffers → one writev
// syscall), and broadcasts encode once and write the same buffer to every
// peer. Connections are established lazily and reused; each peer gets one
// outbound connection, preserving per-destination FIFO order. Dialing
// never holds the endpoint-wide lock, so an unreachable peer cannot stall
// sends to healthy ones.
type TCPEndpoint struct {
	id      types.NodeID
	book    *AddressBook
	handler Handler
	ln      net.Listener
	codec   Codec
	dial    func(addr string) (net.Conn, error) // swappable for tests

	mu      sync.Mutex
	conns   map[types.NodeID]*outConn
	inbound map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup

	framesOut   atomic.Uint64
	sendsOut    atomic.Uint64
	bytesOut    atomic.Uint64
	framesIn    atomic.Uint64
	bytesIn     atomic.Uint64
	gobFrames   atomic.Uint64
	poolHits    atomic.Uint64
	poolMisses  atomic.Uint64
	writevCalls atomic.Uint64
	writevMax   atomic.Uint64
	decodeErrs  atomic.Uint64
}

// TCPOption customizes a TCPEndpoint.
type TCPOption func(*TCPEndpoint)

// WithTCPCodec selects the outbound codec (default CodecBinary).
func WithTCPCodec(c Codec) TCPOption {
	return func(e *TCPEndpoint) { e.codec = c }
}

// flushGroup is one round of frames bound for a peer. The first sender to
// arrive while no flush is running becomes the flusher and writes every
// group that accumulates while it is busy — later senders' frames ride
// along in one vectored write instead of taking the syscall themselves.
type flushGroup struct {
	bufs  [][]byte  // frames in send order (consumed by net.Buffers)
	owned []*[]byte // pool returns after the write; nil entries are shared
	done  chan struct{}
	err   error
}

// outConn is the cached outbound connection to one peer.
type outConn struct {
	addr     string
	codec    Codec
	dialOnce sync.Once
	dialErr  error
	c        net.Conn

	mu       sync.Mutex
	next     *flushGroup // accumulating group (binary codec)
	flushing bool
	err      error // sticky write error; connection is dead

	enc *gob.Encoder // gob codec only
}

// ListenTCP starts a TCP endpoint for node id at the address the book
// assigns to it. The handler is invoked sequentially per inbound
// connection (TCP already guarantees per-sender FIFO).
func ListenTCP(id types.NodeID, book *AddressBook, h Handler, opts ...TCPOption) (*TCPEndpoint, error) {
	addr, ok := book.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("%w: %v has no address", ErrUnknownNode, id)
	}
	ep := &TCPEndpoint{
		id:      id,
		book:    book,
		handler: h,
		codec:   CodecBinary,
		dial:    func(a string) (net.Conn, error) { return net.Dial("tcp", a) },
		conns:   make(map[types.NodeID]*outConn),
		inbound: make(map[net.Conn]struct{}),
	}
	for _, o := range opts {
		o(ep)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ep.ln = ln
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// Addr returns the listener's bound address (useful with ":0" books).
func (e *TCPEndpoint) Addr() string { return e.ln.Addr().String() }

// ID returns the node id this endpoint speaks as.
func (e *TCPEndpoint) ID() types.NodeID { return e.id }

// Stats snapshots the endpoint's wire counters.
func (e *TCPEndpoint) Stats() TCPStats {
	return TCPStats{
		FramesOut:   e.framesOut.Load(),
		SendsOut:    e.sendsOut.Load(),
		BytesOut:    e.bytesOut.Load(),
		FramesIn:    e.framesIn.Load(),
		BytesIn:     e.bytesIn.Load(),
		GobFrames:   e.gobFrames.Load(),
		PoolHits:    e.poolHits.Load(),
		PoolMisses:  e.poolMisses.Load(),
		WritevCalls: e.writevCalls.Load(),
		WritevMax:   e.writevMax.Load(),
		DecodeErrs:  e.decodeErrs.Load(),
	}
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			c.Close()
			return
		}
		e.inbound[c] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(c)
	}
}

// readLoop sniffs the connection preamble — binary-codec peers lead with
// proto.Magic, anything else is a legacy gob stream — then decodes frames
// until the connection breaks.
func (e *TCPEndpoint) readLoop(c net.Conn) {
	defer e.wg.Done()
	defer func() {
		c.Close()
		e.mu.Lock()
		delete(e.inbound, c)
		e.mu.Unlock()
	}()
	br := bufio.NewReaderSize(c, 64<<10)
	head, err := br.Peek(len(proto.Magic))
	if err != nil {
		return
	}
	if bytes.Equal(head, proto.Magic[:]) {
		br.Discard(len(proto.Magic))
		e.readBinary(br)
		return
	}
	e.readGob(br)
}

// readBinary drains length-prefixed codec frames. The frame buffer is
// pooled: proto.DecodeFrame returns self-contained messages, so the
// buffer recycles as soon as a frame is decoded, before handler dispatch.
func (e *TCPEndpoint) readBinary(br *bufio.Reader) {
	var hdr [4]byte
	var fd proto.FrameDecoder // per-connection scratch (read loop is single-goroutine)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n == 0 || n > proto.MaxFrame {
			e.decodeErrs.Add(1)
			return
		}
		var from types.NodeID
		var msg Message
		var err error
		if buf, perr := br.Peek(int(n)); perr == nil {
			// Fast path: the whole frame is resident in the bufio window,
			// so decode straight out of it — decoded messages are
			// self-contained, so aliasing the reader's buffer is safe and
			// saves a full frame copy.
			from, msg, err = fd.Decode(buf)
			br.Discard(int(n))
		} else {
			// Frame larger than the read buffer: assemble it in a pooled
			// buffer, which recycles as soon as the frame is decoded.
			bp := e.getBuf(int(n))
			buf := (*bp)[:n]
			if _, err := io.ReadFull(br, buf); err != nil {
				putBuf(bp)
				return
			}
			from, msg, err = fd.Decode(buf)
			putBuf(bp)
		}
		if err != nil {
			// Framing is byte-synchronous: a bad frame means the stream
			// is unrecoverable. Drop the connection; the peer redials.
			e.decodeErrs.Add(1)
			return
		}
		e.framesIn.Add(1)
		e.bytesIn.Add(uint64(n) + 4)
		e.handler(from, msg)
	}
}

// readGob drains a legacy gob stream.
func (e *TCPEndpoint) readGob(br *bufio.Reader) {
	dec := gob.NewDecoder(br)
	for {
		var env wireEnvelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		e.framesIn.Add(1)
		e.gobFrames.Add(1)
		e.handler(env.From, env.Msg)
	}
}

// getBuf fetches a frame buffer with capacity ≥ n from the pool.
func (e *TCPEndpoint) getBuf(n int) *[]byte {
	if v := framePool.Get(); v != nil {
		bp := v.(*[]byte)
		if cap(*bp) >= n {
			e.poolHits.Add(1)
			return bp
		}
	}
	e.poolMisses.Add(1)
	b := make([]byte, 0, max(n, 4096))
	return &b
}

// putBuf recycles a frame buffer (oversized ones are left to the GC).
func putBuf(bp *[]byte) {
	if cap(*bp) > maxPooledFrame {
		return
	}
	*bp = (*bp)[:0]
	framePool.Put(bp)
}

// encode frames msg into a pooled buffer.
func (e *TCPEndpoint) encode(msg Message) (*[]byte, error) {
	bp := e.getBuf(0)
	b, err := proto.AppendFrame((*bp)[:0], e.id, msg)
	if err != nil {
		putBuf(bp)
		return nil, err
	}
	*bp = b
	e.framesOut.Add(1)
	if b[4] == proto.TagGobFallback {
		e.gobFrames.Add(1)
	}
	return bp, nil
}

// Send marshals and writes msg on the (cached) connection to the peer.
func (e *TCPEndpoint) Send(to types.NodeID, msg Message) error {
	oc, err := e.conn(to)
	if err != nil {
		return err
	}
	if oc.codec == CodecGob {
		return e.sendGob(to, oc, msg)
	}
	bp, err := e.encode(msg)
	if err != nil {
		return err
	}
	if err := e.write(oc, *bp, bp); err != nil {
		e.dropConn(to, oc)
		return err
	}
	return nil
}

// Broadcast sends msg to every listed node. With the binary codec the
// message is encoded exactly once and the same buffer is written to every
// peer.
func (e *TCPEndpoint) Broadcast(tos []types.NodeID, msg Message) error {
	if e.codec == CodecGob {
		var firstErr error
		for _, to := range tos {
			if err := e.Send(to, msg); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	var bp *[]byte
	var firstErr error
	for _, to := range tos {
		oc, err := e.conn(to)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if oc.codec == CodecGob {
			// A peer pinned to gob mid-list (not possible today — the
			// codec is endpoint-wide — but cheap to keep correct).
			if err := e.sendGob(to, oc, msg); err != nil && firstErr == nil {
				firstErr = err
			}
			continue
		}
		if bp == nil {
			if bp, err = e.encode(msg); err != nil {
				return err
			}
		}
		// nil owner: the shared buffer is recycled once, below, after
		// every (synchronous) write finished.
		if err := e.write(oc, *bp, nil); err != nil {
			e.dropConn(to, oc)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if bp != nil {
		putBuf(bp)
	}
	return firstErr
}

// write queues one encoded frame on the peer connection and returns once
// it has been written (or failed). The first sender to arrive while the
// connection is idle writes its own frame plus every frame queued behind
// it as a single vectored write; concurrent senders therefore share
// writev syscalls instead of serializing on the socket. owner, when
// non-nil, is returned to the frame pool after the write.
func (e *TCPEndpoint) write(oc *outConn, frame []byte, owner *[]byte) error {
	e.sendsOut.Add(1)
	e.bytesOut.Add(uint64(len(frame)))
	oc.mu.Lock()
	if oc.err != nil {
		err := oc.err
		oc.mu.Unlock()
		if owner != nil {
			putBuf(owner)
		}
		return err
	}
	g := oc.next
	if g == nil {
		g = &flushGroup{done: make(chan struct{})}
		oc.next = g
	}
	g.bufs = append(g.bufs, frame)
	g.owned = append(g.owned, owner)
	if oc.flushing {
		oc.mu.Unlock()
		<-g.done
		return g.err
	}
	oc.flushing = true
	mine := g
	for oc.next != nil {
		cur := oc.next
		oc.next = nil
		if oc.err != nil {
			cur.err = oc.err
			finishGroup(cur)
			continue
		}
		oc.mu.Unlock()
		nframes := uint64(len(cur.bufs))
		e.writevCalls.Add(1)
		for {
			prev := e.writevMax.Load()
			if nframes <= prev || e.writevMax.CompareAndSwap(prev, nframes) {
				break
			}
		}
		bufs := net.Buffers(cur.bufs)
		_, err := bufs.WriteTo(oc.c)
		oc.mu.Lock()
		if err != nil {
			oc.err = err
		}
		cur.err = err
		finishGroup(cur)
	}
	oc.flushing = false
	oc.mu.Unlock()
	return mine.err
}

// finishGroup recycles a group's pooled frames and releases its waiters.
func finishGroup(g *flushGroup) {
	for _, bp := range g.owned {
		if bp != nil {
			putBuf(bp)
		}
	}
	close(g.done)
}

// sendGob writes one message on a gob-codec connection.
func (e *TCPEndpoint) sendGob(to types.NodeID, oc *outConn, msg Message) error {
	oc.mu.Lock()
	defer oc.mu.Unlock()
	if oc.err != nil {
		return oc.err
	}
	e.sendsOut.Add(1)
	e.framesOut.Add(1)
	e.gobFrames.Add(1)
	if err := oc.enc.Encode(wireEnvelope{From: e.id, Msg: msg}); err != nil {
		oc.err = err
		e.dropConn(to, oc)
		return err
	}
	return nil
}

// conn returns the cached outbound connection to the peer, dialing it on
// first use. The endpoint-wide lock covers only the map access: the dial
// itself runs under a per-peer once-guard, so a slow or unreachable peer
// delays only senders to that peer, never the whole endpoint.
func (e *TCPEndpoint) conn(to types.NodeID) (*outConn, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	oc, ok := e.conns[to]
	if !ok {
		addr, ok := e.book.Lookup(to)
		if !ok {
			e.mu.Unlock()
			return nil, fmt.Errorf("%w: %v", ErrUnknownNode, to)
		}
		oc = &outConn{addr: addr, codec: e.codec}
		e.conns[to] = oc
	}
	e.mu.Unlock()
	oc.dialOnce.Do(func() {
		c, err := e.dial(oc.addr)
		if err != nil {
			oc.dialErr = err
			return
		}
		if oc.codec == CodecBinary {
			if _, err := c.Write(proto.Magic[:]); err != nil {
				c.Close()
				oc.dialErr = err
				return
			}
		} else {
			oc.enc = gob.NewEncoder(c)
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			c.Close()
			oc.dialErr = ErrClosed
			return
		}
		e.mu.Unlock()
		oc.c = c
	})
	if oc.dialErr != nil {
		// A failed dial is not sticky: evict the conn slot so the next
		// Send redials with a fresh once-guard.
		e.dropConn(to, oc)
		return nil, oc.dialErr
	}
	return oc, nil
}

// dropConn evicts a broken connection so the next Send redials.
func (e *TCPEndpoint) dropConn(to types.NodeID, oc *outConn) {
	e.mu.Lock()
	if e.conns[to] == oc {
		delete(e.conns, to)
	}
	e.mu.Unlock()
	if oc.c != nil {
		oc.c.Close()
	}
}

// Close shuts the listener and all cached connections down.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := e.conns
	e.conns = map[types.NodeID]*outConn{}
	in := make([]net.Conn, 0, len(e.inbound))
	for c := range e.inbound {
		in = append(in, c)
	}
	e.mu.Unlock()
	err := e.ln.Close()
	for _, oc := range conns {
		if oc.c != nil {
			oc.c.Close()
		}
	}
	for _, c := range in {
		c.Close()
	}
	e.wg.Wait()
	return err
}
