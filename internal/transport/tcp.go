package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"flexlog/internal/types"
)

// wireEnvelope is the gob frame exchanged on TCP connections.
type wireEnvelope struct {
	From types.NodeID
	Msg  Message
}

// AddressBook maps node ids to TCP addresses for a multi-process
// deployment. It is immutable after construction.
type AddressBook struct {
	addrs map[types.NodeID]string
}

// NewAddressBook builds an address book from a static map.
func NewAddressBook(addrs map[types.NodeID]string) *AddressBook {
	m := make(map[types.NodeID]string, len(addrs))
	for id, a := range addrs {
		m[id] = a
	}
	return &AddressBook{addrs: m}
}

// Lookup returns the address of a node.
func (b *AddressBook) Lookup(id types.NodeID) (string, bool) {
	a, ok := b.addrs[id]
	return a, ok
}

// TCPEndpoint implements Endpoint over real TCP sockets with gob framing.
// Connections are established lazily and reused; each peer gets one
// outbound connection, preserving per-destination FIFO order.
type TCPEndpoint struct {
	id      types.NodeID
	book    *AddressBook
	handler Handler
	ln      net.Listener

	mu      sync.Mutex
	conns   map[types.NodeID]*outConn
	inbound map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup
}

type outConn struct {
	mu  sync.Mutex
	c   net.Conn
	enc *gob.Encoder
}

// ListenTCP starts a TCP endpoint for node id at the address the book
// assigns to it. The handler is invoked sequentially per inbound
// connection (TCP already guarantees per-sender FIFO).
func ListenTCP(id types.NodeID, book *AddressBook, h Handler) (*TCPEndpoint, error) {
	addr, ok := book.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("%w: %v has no address", ErrUnknownNode, id)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ep := &TCPEndpoint{
		id:      id,
		book:    book,
		handler: h,
		ln:      ln,
		conns:   make(map[types.NodeID]*outConn),
		inbound: make(map[net.Conn]struct{}),
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// Addr returns the listener's bound address (useful with ":0" books).
func (e *TCPEndpoint) Addr() string { return e.ln.Addr().String() }

// ID returns the node id this endpoint speaks as.
func (e *TCPEndpoint) ID() types.NodeID { return e.id }

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			c.Close()
			return
		}
		e.inbound[c] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(c)
	}
}

func (e *TCPEndpoint) readLoop(c net.Conn) {
	defer e.wg.Done()
	defer func() {
		c.Close()
		e.mu.Lock()
		delete(e.inbound, c)
		e.mu.Unlock()
	}()
	dec := gob.NewDecoder(c)
	for {
		var env wireEnvelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		e.handler(env.From, env.Msg)
	}
}

// Send marshals and writes msg on the (cached) connection to the peer.
func (e *TCPEndpoint) Send(to types.NodeID, msg Message) error {
	oc, err := e.conn(to)
	if err != nil {
		return err
	}
	oc.mu.Lock()
	defer oc.mu.Unlock()
	if err := oc.enc.Encode(wireEnvelope{From: e.id, Msg: msg}); err != nil {
		// Drop the broken connection so the next Send redials.
		e.mu.Lock()
		if e.conns[to] == oc {
			delete(e.conns, to)
		}
		e.mu.Unlock()
		oc.c.Close()
		return err
	}
	return nil
}

// Broadcast sends msg to every listed node.
func (e *TCPEndpoint) Broadcast(tos []types.NodeID, msg Message) error {
	var firstErr error
	for _, to := range tos {
		if err := e.Send(to, msg); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (e *TCPEndpoint) conn(to types.NodeID) (*outConn, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	if oc, ok := e.conns[to]; ok {
		return oc, nil
	}
	addr, ok := e.book.Lookup(to)
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownNode, to)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	oc := &outConn{c: c, enc: gob.NewEncoder(c)}
	e.conns[to] = oc
	return oc, nil
}

// Close shuts the listener and all cached connections down.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := e.conns
	e.conns = map[types.NodeID]*outConn{}
	in := make([]net.Conn, 0, len(e.inbound))
	for c := range e.inbound {
		in = append(in, c)
	}
	e.mu.Unlock()
	err := e.ln.Close()
	for _, oc := range conns {
		oc.c.Close()
	}
	for _, c := range in {
		c.Close()
	}
	e.wg.Wait()
	return err
}
