package transport

import (
	"sync"
	"sync/atomic"
	"time"

	"flexlog/internal/simclock"
	"flexlog/internal/types"
)

// LaneConfig enables a read-class service lane on an endpoint: inbound
// messages the classifier accepts are handed to a pool of workers instead
// of running inline on the single delivery goroutine. Mutation traffic
// keeps its per-sender FIFO delivery; classified traffic gives that up in
// exchange for concurrency — safe for FlexLog reads because a read's only
// ordering obligation is against commits already delivered when the read
// was dequeued (the delivery loop still dequeues in arrival order).
//
// Each lane worker models one extra core of the receiving node: with
// latency injection enabled the per-message processing cost is paid on the
// worker, so classified messages overlap where the delivery loop would
// serialize them.
type LaneConfig struct {
	// Workers is the pool size; 0 disables the lane (all traffic inline).
	Workers int
	// Classify reports whether a message may be served on the lane.
	Classify func(Message) bool
	// QueueCap bounds the lane's buffer; a full queue backpressures the
	// delivery loop. 0 uses a default of 4096.
	QueueCap int
	// Observe, when set, is called after each lane message with the time
	// it waited in the queue and the time its handler ran — the lane_wait
	// stage of the observability layer. Must be cheap and thread-safe.
	Observe func(queueWait, service time.Duration)
}

// Enabled reports whether the config describes an active lane.
func (c LaneConfig) Enabled() bool { return c.Workers > 0 && c.Classify != nil }

// LaneStats is a point-in-time snapshot of one endpoint's read lane.
type LaneStats struct {
	Enqueued uint64        // messages handed to the lane
	Dequeued uint64        // messages whose handler finished
	MaxDepth uint64        // high-water mark of the queue depth
	Busy     time.Duration // summed wall time workers spent per message
}

// Depth returns the instantaneous queue depth (including in-service).
func (s LaneStats) Depth() uint64 { return s.Enqueued - s.Dequeued }

// laneItem is one classified message in flight to a worker.
type laneItem struct {
	from      types.NodeID
	msg       Message
	deliverAt time.Time
	enq       time.Time // stamped only when the lane has an Observe hook
}

// readLane is the worker pool behind LaneConfig. It is shared by the
// in-process endpoints (which also charge the modeled per-message cost on
// the worker) and by the handler wrapper used over custom transports.
type readLane struct {
	cfg      LaneConfig
	handler  Handler
	procCost time.Duration
	ch       chan laneItem
	wg       sync.WaitGroup

	closeMu sync.RWMutex
	closed  bool

	enqueued atomic.Uint64
	dequeued atomic.Uint64
	maxDepth atomic.Uint64
	busyNs   atomic.Int64
}

// newReadLane starts the worker pool. procCost is the modeled serial
// receive cost charged per message when latency injection is enabled
// (zero over real transports, which pay their cost in actual CPU).
func newReadLane(cfg LaneConfig, h Handler, procCost time.Duration) *readLane {
	cap := cfg.QueueCap
	if cap <= 0 {
		cap = 4096
	}
	l := &readLane{cfg: cfg, handler: h, procCost: procCost, ch: make(chan laneItem, cap)}
	for i := 0; i < cfg.Workers; i++ {
		l.wg.Add(1)
		go l.worker()
	}
	return l
}

// dispatch hands a classified message to the pool, blocking when the
// queue is full (backpressure on the caller, mirroring a busy core). It
// reports false once the lane is closed — the caller then handles the
// message inline (where a stopped node's mode check drops it).
func (l *readLane) dispatch(from types.NodeID, msg Message, deliverAt time.Time) bool {
	l.closeMu.RLock()
	if l.closed {
		l.closeMu.RUnlock()
		return false
	}
	n := l.enqueued.Add(1)
	if depth := n - l.dequeued.Load(); depth > 0 {
		for {
			cur := l.maxDepth.Load()
			if depth <= cur || l.maxDepth.CompareAndSwap(cur, depth) {
				break
			}
		}
	}
	it := laneItem{from: from, msg: msg, deliverAt: deliverAt}
	if l.cfg.Observe != nil {
		it.enq = time.Now()
	}
	l.ch <- it
	l.closeMu.RUnlock()
	return true
}

func (l *readLane) worker() {
	defer l.wg.Done()
	for it := range l.ch {
		start := time.Now()
		if !it.deliverAt.IsZero() {
			simclock.SpinUntil(it.deliverAt)
			// The receive-side processing cost is paid here, per worker:
			// this is what the read lane buys — classified messages use
			// the node's other cores instead of the delivery loop's one.
			// Skipped when only fault jitter stamped the deadline.
			if simclock.Enabled() {
				simclock.Spin(l.procCost)
			}
		}
		l.handler(it.from, it.msg)
		service := time.Since(start)
		l.busyNs.Add(int64(service))
		l.dequeued.Add(1)
		if l.cfg.Observe != nil && !it.enq.IsZero() {
			l.cfg.Observe(start.Sub(it.enq), service)
		}
	}
}

// close drains the pool; later dispatch calls report false. Idempotent.
func (l *readLane) close() {
	l.closeMu.Lock()
	if l.closed {
		l.closeMu.Unlock()
		return
	}
	l.closed = true
	l.closeMu.Unlock()
	close(l.ch)
	l.wg.Wait()
}

func (l *readLane) stats() LaneStats {
	return LaneStats{
		Enqueued: l.enqueued.Load(),
		Dequeued: l.dequeued.Load(),
		MaxDepth: l.maxDepth.Load(),
		Busy:     time.Duration(l.busyNs.Load()),
	}
}

// WithReadLane wraps a handler so classified messages run on a worker
// pool — the read-lane building block for endpoints the Network does not
// manage (e.g. the TCP transport, where the OS already delivers
// per-connection concurrently but the node wants reads off the mutation
// path). The returned stop function drains the pool; the returned stats
// function snapshots lane counters.
func WithReadLane(h Handler, cfg LaneConfig) (wrapped Handler, stats func() LaneStats, stop func()) {
	if !cfg.Enabled() {
		return h, func() LaneStats { return LaneStats{} }, func() {}
	}
	l := newReadLane(cfg, h, 0)
	wrapped = func(from types.NodeID, msg Message) {
		if cfg.Classify(msg) && l.dispatch(from, msg, time.Time{}) {
			return
		}
		h(from, msg)
	}
	return wrapped, l.stats, l.close
}

// ---- Write lane ----

// WriteLaneConfig enables a keyed write lane: mutation messages the Key
// function accepts are sharded by key onto a pool of single-goroutine
// workers. Unlike the read lane's shared queue, each worker owns a FIFO
// channel and a key is pinned to one worker (key mod Workers), so every
// message of one key is processed in arrival order — the invariant the
// append protocol needs (an AppendReq must reach storage before the
// OrderResp that commits its token, and both carry the same color) —
// while different keys proceed in parallel.
type WriteLaneConfig struct {
	// Workers is the pool size; 0 disables the lane.
	Workers int
	// Key reports whether the message belongs on the write lane and, if
	// so, its shard key (the color for FlexLog mutations).
	Key func(Message) (uint64, bool)
	// QueueCap bounds each worker's buffer; a full queue backpressures
	// the delivery loop. 0 uses a default of 1024 per worker.
	QueueCap int
	// Observe, when set, is called after each lane message with the time
	// it waited in its worker's queue and the time its handler ran — the
	// lane_wait stage of the observability layer. Must be cheap and
	// thread-safe.
	Observe func(queueWait, service time.Duration)
}

// Enabled reports whether the config describes an active write lane.
func (c WriteLaneConfig) Enabled() bool { return c.Workers > 0 && c.Key != nil }

// WriteLaneStats is a point-in-time snapshot of one endpoint's write lane.
// PerWorker lets the modeled-throughput benchmarks charge each worker for
// the messages it actually processed (the busiest worker bounds the lane).
type WriteLaneStats struct {
	Enqueued  uint64        // messages handed to the lane
	Dequeued  uint64        // messages whose handler finished
	MaxDepth  uint64        // high-water mark of the summed queue depth
	Busy      time.Duration // summed wall time workers spent per message
	PerWorker []uint64      // per-worker processed counts
}

// Depth returns the instantaneous queue depth (including in-service).
func (s WriteLaneStats) Depth() uint64 { return s.Enqueued - s.Dequeued }

// writeLane is the keyed worker pool behind WriteLaneConfig.
type writeLane struct {
	cfg      WriteLaneConfig
	handler  Handler
	procCost time.Duration
	chs      []chan laneItem
	wg       sync.WaitGroup

	closeMu sync.RWMutex
	closed  bool

	enqueued  atomic.Uint64
	dequeued  atomic.Uint64
	maxDepth  atomic.Uint64
	busyNs    atomic.Int64
	perWorker []atomic.Uint64
}

func newWriteLane(cfg WriteLaneConfig, h Handler, procCost time.Duration) *writeLane {
	cap := cfg.QueueCap
	if cap <= 0 {
		cap = 1024
	}
	l := &writeLane{
		cfg:       cfg,
		handler:   h,
		procCost:  procCost,
		chs:       make([]chan laneItem, cfg.Workers),
		perWorker: make([]atomic.Uint64, cfg.Workers),
	}
	for i := range l.chs {
		l.chs[i] = make(chan laneItem, cap)
		l.wg.Add(1)
		go l.worker(i)
	}
	return l
}

// dispatch routes the message to the key's worker, blocking when that
// worker's queue is full. Reports false once the lane is closed (the
// caller then handles the message inline).
func (l *writeLane) dispatch(from types.NodeID, msg Message, deliverAt time.Time, key uint64) bool {
	l.closeMu.RLock()
	if l.closed {
		l.closeMu.RUnlock()
		return false
	}
	n := l.enqueued.Add(1)
	if depth := n - l.dequeued.Load(); depth > 0 {
		for {
			cur := l.maxDepth.Load()
			if depth <= cur || l.maxDepth.CompareAndSwap(cur, depth) {
				break
			}
		}
	}
	it := laneItem{from: from, msg: msg, deliverAt: deliverAt}
	if l.cfg.Observe != nil {
		it.enq = time.Now()
	}
	l.chs[key%uint64(len(l.chs))] <- it
	l.closeMu.RUnlock()
	return true
}

func (l *writeLane) worker(i int) {
	defer l.wg.Done()
	for it := range l.chs[i] {
		start := time.Now()
		if !it.deliverAt.IsZero() {
			simclock.SpinUntil(it.deliverAt)
			// As on the read lane, the serial receive cost is paid on the
			// worker: mutations of different colors use different cores.
			if simclock.Enabled() {
				simclock.Spin(l.procCost)
			}
		}
		l.handler(it.from, it.msg)
		service := time.Since(start)
		l.busyNs.Add(int64(service))
		l.perWorker[i].Add(1)
		l.dequeued.Add(1)
		if l.cfg.Observe != nil && !it.enq.IsZero() {
			l.cfg.Observe(start.Sub(it.enq), service)
		}
	}
}

// close drains the pool; later dispatch calls report false. Idempotent.
func (l *writeLane) close() {
	l.closeMu.Lock()
	if l.closed {
		l.closeMu.Unlock()
		return
	}
	l.closed = true
	l.closeMu.Unlock()
	for _, ch := range l.chs {
		close(ch)
	}
	l.wg.Wait()
}

func (l *writeLane) stats() WriteLaneStats {
	per := make([]uint64, len(l.perWorker))
	for i := range l.perWorker {
		per[i] = l.perWorker[i].Load()
	}
	return WriteLaneStats{
		Enqueued:  l.enqueued.Load(),
		Dequeued:  l.dequeued.Load(),
		MaxDepth:  l.maxDepth.Load(),
		Busy:      time.Duration(l.busyNs.Load()),
		PerWorker: per,
	}
}

// Lanes bundles an endpoint's service lanes: a read lane (shared queue,
// any-order concurrency) and a keyed write lane (per-key FIFO). Either or
// both may be disabled.
type Lanes struct {
	Read  LaneConfig
	Write WriteLaneConfig
}

// WithLanes wraps a handler with both lanes for endpoints the Network
// does not manage (e.g. a TCP transport). Classification order matches
// the in-process delivery loop: read class first, then write class, else
// inline. The stop function drains both pools.
func WithLanes(h Handler, lanes Lanes) (wrapped Handler, readStats func() LaneStats, writeStats func() WriteLaneStats, stop func()) {
	readStats = func() LaneStats { return LaneStats{} }
	writeStats = func() WriteLaneStats { return WriteLaneStats{} }
	var rl *readLane
	var wl *writeLane
	if lanes.Read.Enabled() {
		rl = newReadLane(lanes.Read, h, 0)
		readStats = rl.stats
	}
	if lanes.Write.Enabled() {
		wl = newWriteLane(lanes.Write, h, 0)
		writeStats = wl.stats
	}
	if rl == nil && wl == nil {
		return h, readStats, writeStats, func() {}
	}
	wrapped = func(from types.NodeID, msg Message) {
		if rl != nil && lanes.Read.Classify(msg) && rl.dispatch(from, msg, time.Time{}) {
			return
		}
		if wl != nil {
			if key, ok := lanes.Write.Key(msg); ok && wl.dispatch(from, msg, time.Time{}, key) {
				return
			}
		}
		h(from, msg)
	}
	stop = func() {
		if rl != nil {
			rl.close()
		}
		if wl != nil {
			wl.close()
		}
	}
	return wrapped, readStats, writeStats, stop
}
