package transport

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"flexlog/internal/simclock"
	"flexlog/internal/types"
)

// LaneQoS configures multi-tenant quality of service on a lane. When
// enabled (TenantOf set), the lane's single FIFO buffer is replaced by
// per-tenant bounded FIFO queues drained with deficit-round-robin in
// proportion to Weights, and a full tenant queue sheds the message
// (invoking Shed, so the owner can answer with a typed rejection) instead
// of blocking the delivery loop — overload becomes an explicit, attributed
// signal rather than silent queue growth. FIFO order is preserved within a
// tenant's queue; fairness holds across tenants.
type LaneQoS struct {
	// TenantOf extracts the message's tenant. ok=false (internal traffic:
	// order responses, sync, heartbeats) maps to types.DefaultTenant,
	// which always schedules but is never shed ahead of client traffic
	// differently — it is simply one more weighted queue.
	TenantOf func(Message) (types.TenantID, bool)
	// Weights maps tenant → scheduling weight (messages served per DRR
	// round). Missing or zero entries default to 1.
	Weights map[types.TenantID]uint32
	// Shed, when set, is called (outside the scheduler lock) for each
	// message rejected because its tenant queue was full. The lane counts
	// the shed either way; without a callback the message is dropped and
	// the sender discovers it by timeout.
	Shed func(from types.NodeID, msg Message, tenant types.TenantID)
}

// Enabled reports whether QoS scheduling is configured.
func (q LaneQoS) Enabled() bool { return q.TenantOf != nil }

// TenantLaneStats is one tenant's slice of a lane's QoS accounting.
type TenantLaneStats struct {
	Tenant   types.TenantID
	Enqueued uint64 // messages accepted into this tenant's queue
	Shed     uint64 // messages rejected because the queue was full
}

// ---- Weighted-fair tenant queue ----

// pushResult is the outcome of a wfq enqueue attempt.
type pushResult int

const (
	pushOK pushResult = iota
	pushShed
	pushClosed
)

// tenantQ is one tenant's bounded FIFO inside a wfq.
type tenantQ struct {
	id     types.TenantID
	weight int
	items  []laneItem
	head   int // items[head:] are pending; the prefix is already served
	inRing bool
	enq    uint64
	shed   uint64
}

func (q *tenantQ) depth() int { return len(q.items) - q.head }

// wfq is a weighted-fair queue of lane items: per-tenant bounded FIFOs
// drained by deficit-round-robin (quantum = weight, unit cost per
// message). Safe for many producers and many consumers; all state is
// guarded by mu.
type wfq struct {
	mu      sync.Mutex
	cond    *sync.Cond
	capPer  int // per-tenant queue bound
	weights map[types.TenantID]uint32
	queues  map[types.TenantID]*tenantQ
	ring    []*tenantQ // non-empty queues, round-robin order
	cur     int        // ring index currently being served
	credit  int        // remaining quantum of ring[cur]
	closed  bool
}

func newWFQ(capPer int, weights map[types.TenantID]uint32) *wfq {
	w := &wfq{
		capPer:  capPer,
		weights: weights,
		queues:  make(map[types.TenantID]*tenantQ),
	}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// push appends the item to its tenant's queue, reporting pushShed when the
// queue is at capacity and pushClosed after close.
func (w *wfq) push(it laneItem, tenant types.TenantID) pushResult {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return pushClosed
	}
	q := w.queues[tenant]
	if q == nil {
		weight := 1
		if wt, ok := w.weights[tenant]; ok && wt > 0 {
			weight = int(wt)
		}
		q = &tenantQ{id: tenant, weight: weight}
		w.queues[tenant] = q
	}
	if q.depth() >= w.capPer {
		q.shed++
		w.mu.Unlock()
		return pushShed
	}
	q.items = append(q.items, it)
	q.enq++
	if !q.inRing {
		q.inRing = true
		w.ring = append(w.ring, q)
	}
	w.mu.Unlock()
	w.cond.Signal()
	return pushOK
}

// pop removes the next item under DRR order, blocking while the queue is
// empty. After close it drains the remaining items, then reports false.
func (w *wfq) pop() (laneItem, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if len(w.ring) > 0 {
			if w.cur >= len(w.ring) {
				w.cur = 0
			}
			q := w.ring[w.cur]
			if w.credit <= 0 {
				w.credit = q.weight
			}
			it := q.items[q.head]
			q.items[q.head] = laneItem{} // release references
			q.head++
			w.credit--
			if q.depth() == 0 {
				q.items = q.items[:0]
				q.head = 0
				q.inRing = false
				w.ring = append(w.ring[:w.cur], w.ring[w.cur+1:]...)
				w.credit = 0
			} else if w.credit == 0 {
				w.cur++
			}
			return it, true
		}
		if w.closed {
			return laneItem{}, false
		}
		w.cond.Wait()
	}
}

func (w *wfq) close() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	w.cond.Broadcast()
}

// tenantStats snapshots per-tenant accounting, sorted by tenant id.
func (w *wfq) tenantStats() []TenantLaneStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]TenantLaneStats, 0, len(w.queues))
	for _, q := range w.queues {
		out = append(out, TenantLaneStats{Tenant: q.id, Enqueued: q.enq, Shed: q.shed})
	}
	slices.SortFunc(out, func(a, b TenantLaneStats) int { return int(a.Tenant) - int(b.Tenant) })
	return out
}

// mergeTenantStats folds per-worker tenant stats into one sorted slice.
func mergeTenantStats(parts ...[]TenantLaneStats) []TenantLaneStats {
	acc := make(map[types.TenantID]*TenantLaneStats)
	for _, part := range parts {
		for _, ts := range part {
			if cur := acc[ts.Tenant]; cur != nil {
				cur.Enqueued += ts.Enqueued
				cur.Shed += ts.Shed
			} else {
				c := ts
				acc[ts.Tenant] = &c
			}
		}
	}
	out := make([]TenantLaneStats, 0, len(acc))
	for _, ts := range acc {
		out = append(out, *ts)
	}
	slices.SortFunc(out, func(a, b TenantLaneStats) int { return int(a.Tenant) - int(b.Tenant) })
	return out
}

// LaneConfig enables a read-class service lane on an endpoint: inbound
// messages the classifier accepts are handed to a pool of workers instead
// of running inline on the single delivery goroutine. Mutation traffic
// keeps its per-sender FIFO delivery; classified traffic gives that up in
// exchange for concurrency — safe for FlexLog reads because a read's only
// ordering obligation is against commits already delivered when the read
// was dequeued (the delivery loop still dequeues in arrival order).
//
// Each lane worker models one extra core of the receiving node: with
// latency injection enabled the per-message processing cost is paid on the
// worker, so classified messages overlap where the delivery loop would
// serialize them.
type LaneConfig struct {
	// Workers is the pool size; 0 disables the lane (all traffic inline).
	Workers int
	// Classify reports whether a message may be served on the lane.
	Classify func(Message) bool
	// QueueCap bounds the lane's buffer; a full queue backpressures the
	// delivery loop. 0 uses a default of 4096.
	QueueCap int
	// Observe, when set, is called after each lane message with the time
	// it waited in the queue and the time its handler ran — the lane_wait
	// stage of the observability layer. Must be cheap and thread-safe.
	Observe func(queueWait, service time.Duration)
	// QoS, when enabled, replaces the shared FIFO buffer with per-tenant
	// weighted-fair queues that shed on overflow. See LaneQoS.
	QoS LaneQoS
}

// Enabled reports whether the config describes an active lane.
func (c LaneConfig) Enabled() bool { return c.Workers > 0 && c.Classify != nil }

// LaneStats is a point-in-time snapshot of one endpoint's read lane.
type LaneStats struct {
	Enqueued uint64        // messages handed to the lane
	Dequeued uint64        // messages whose handler finished
	MaxDepth uint64        // high-water mark of the queue depth
	Busy     time.Duration // summed wall time workers spent per message
	Shed     uint64        // messages rejected by QoS queue bounds
	Tenants  []TenantLaneStats
}

// Depth returns the instantaneous queue depth (including in-service).
func (s LaneStats) Depth() uint64 { return s.Enqueued - s.Dequeued }

// laneItem is one classified message in flight to a worker.
type laneItem struct {
	from      types.NodeID
	msg       Message
	deliverAt time.Time
	enq       time.Time // stamped only when the lane has an Observe hook
}

// readLane is the worker pool behind LaneConfig. It is shared by the
// in-process endpoints (which also charge the modeled per-message cost on
// the worker) and by the handler wrapper used over custom transports.
type readLane struct {
	cfg      LaneConfig
	handler  Handler
	procCost time.Duration
	ch       chan laneItem
	qos      *wfq // non-nil when cfg.QoS is enabled; replaces ch
	wg       sync.WaitGroup

	closeMu sync.RWMutex
	closed  bool

	enqueued atomic.Uint64
	dequeued atomic.Uint64
	maxDepth atomic.Uint64
	busyNs   atomic.Int64
	shed     atomic.Uint64
}

// newReadLane starts the worker pool. procCost is the modeled serial
// receive cost charged per message when latency injection is enabled
// (zero over real transports, which pay their cost in actual CPU).
func newReadLane(cfg LaneConfig, h Handler, procCost time.Duration) *readLane {
	cap := cfg.QueueCap
	if cap <= 0 {
		cap = 4096
	}
	l := &readLane{cfg: cfg, handler: h, procCost: procCost}
	if cfg.QoS.Enabled() {
		l.qos = newWFQ(cap, cfg.QoS.Weights)
	} else {
		l.ch = make(chan laneItem, cap)
	}
	for i := 0; i < cfg.Workers; i++ {
		l.wg.Add(1)
		go l.worker()
	}
	return l
}

// dispatch hands a classified message to the pool. Without QoS a full
// queue blocks (backpressure on the caller, mirroring a busy core); with
// QoS a full tenant queue sheds the message instead (the Shed hook turns
// it into a typed rejection). It reports false once the lane is closed —
// the caller then handles the message inline (where a stopped node's mode
// check drops it).
func (l *readLane) dispatch(from types.NodeID, msg Message, deliverAt time.Time) bool {
	it := laneItem{from: from, msg: msg, deliverAt: deliverAt}
	if l.cfg.Observe != nil {
		it.enq = time.Now()
	}
	if l.qos != nil {
		tenant, _ := l.cfg.QoS.TenantOf(msg)
		switch l.qos.push(it, tenant) {
		case pushClosed:
			return false
		case pushShed:
			l.shed.Add(1)
			if l.cfg.QoS.Shed != nil {
				l.cfg.QoS.Shed(from, msg, tenant)
			}
			return true
		}
		l.noteEnqueued()
		return true
	}
	l.closeMu.RLock()
	if l.closed {
		l.closeMu.RUnlock()
		return false
	}
	l.noteEnqueued()
	l.ch <- it
	l.closeMu.RUnlock()
	return true
}

// noteEnqueued bumps the enqueue counter and the depth high-water mark.
// The explicit n > dq guard keeps a racing fast pop (which can make the
// dequeue counter momentarily pass our enqueue snapshot) from wrapping
// the unsigned depth into garbage.
func (l *readLane) noteEnqueued() {
	n := l.enqueued.Add(1)
	if dq := l.dequeued.Load(); n > dq {
		depth := n - dq
		for {
			cur := l.maxDepth.Load()
			if depth <= cur || l.maxDepth.CompareAndSwap(cur, depth) {
				break
			}
		}
	}
}

func (l *readLane) worker() {
	defer l.wg.Done()
	if l.qos != nil {
		for {
			it, ok := l.qos.pop()
			if !ok {
				return
			}
			l.process(it)
		}
	}
	for it := range l.ch {
		l.process(it)
	}
}

func (l *readLane) process(it laneItem) {
	start := time.Now()
	if !it.deliverAt.IsZero() {
		simclock.SpinUntil(it.deliverAt)
		// The receive-side processing cost is paid here, per worker:
		// this is what the read lane buys — classified messages use
		// the node's other cores instead of the delivery loop's one.
		// Skipped when only fault jitter stamped the deadline.
		if simclock.Enabled() {
			simclock.Spin(l.procCost)
		}
	}
	l.handler(it.from, it.msg)
	service := time.Since(start)
	l.busyNs.Add(int64(service))
	l.dequeued.Add(1)
	if l.cfg.Observe != nil && !it.enq.IsZero() {
		l.cfg.Observe(start.Sub(it.enq), service)
	}
}

// close drains the pool; later dispatch calls report false. Idempotent.
func (l *readLane) close() {
	l.closeMu.Lock()
	if l.closed {
		l.closeMu.Unlock()
		return
	}
	l.closed = true
	l.closeMu.Unlock()
	if l.qos != nil {
		l.qos.close()
	} else {
		close(l.ch)
	}
	l.wg.Wait()
}

func (l *readLane) stats() LaneStats {
	s := LaneStats{
		Enqueued: l.enqueued.Load(),
		Dequeued: l.dequeued.Load(),
		MaxDepth: l.maxDepth.Load(),
		Busy:     time.Duration(l.busyNs.Load()),
		Shed:     l.shed.Load(),
	}
	if l.qos != nil {
		s.Tenants = l.qos.tenantStats()
	}
	return s
}

// WithReadLane wraps a handler so classified messages run on a worker
// pool — the read-lane building block for endpoints the Network does not
// manage (e.g. the TCP transport, where the OS already delivers
// per-connection concurrently but the node wants reads off the mutation
// path). The returned stop function drains the pool; the returned stats
// function snapshots lane counters.
func WithReadLane(h Handler, cfg LaneConfig) (wrapped Handler, stats func() LaneStats, stop func()) {
	if !cfg.Enabled() {
		return h, func() LaneStats { return LaneStats{} }, func() {}
	}
	l := newReadLane(cfg, h, 0)
	wrapped = func(from types.NodeID, msg Message) {
		if cfg.Classify(msg) && l.dispatch(from, msg, time.Time{}) {
			return
		}
		h(from, msg)
	}
	return wrapped, l.stats, l.close
}

// ---- Write lane ----

// WriteLaneConfig enables a keyed write lane: mutation messages the Key
// function accepts are sharded by key onto a pool of single-goroutine
// workers. Unlike the read lane's shared queue, each worker owns a FIFO
// channel and a key is pinned to one worker (key mod Workers), so every
// message of one key is processed in arrival order — the invariant the
// append protocol needs (an AppendReq must reach storage before the
// OrderResp that commits its token, and both carry the same color) —
// while different keys proceed in parallel.
type WriteLaneConfig struct {
	// Workers is the pool size; 0 disables the lane.
	Workers int
	// Key reports whether the message belongs on the write lane and, if
	// so, its shard key (the color for FlexLog mutations).
	Key func(Message) (uint64, bool)
	// QueueCap bounds each worker's buffer; a full queue backpressures
	// the delivery loop. 0 uses a default of 1024 per worker.
	QueueCap int
	// Observe, when set, is called after each lane message with the time
	// it waited in its worker's queue and the time its handler ran — the
	// lane_wait stage of the observability layer. Must be cheap and
	// thread-safe.
	Observe func(queueWait, service time.Duration)
	// QoS, when enabled, replaces each worker's FIFO buffer with
	// per-tenant weighted-fair queues that shed on overflow. A key stays
	// pinned to its worker, and a tenant's messages for one key stay FIFO
	// within that worker's tenant queue. See LaneQoS.
	QoS LaneQoS
}

// Enabled reports whether the config describes an active write lane.
func (c WriteLaneConfig) Enabled() bool { return c.Workers > 0 && c.Key != nil }

// WriteLaneStats is a point-in-time snapshot of one endpoint's write lane.
// PerWorker lets the modeled-throughput benchmarks charge each worker for
// the messages it actually processed (the busiest worker bounds the lane).
type WriteLaneStats struct {
	Enqueued  uint64        // messages handed to the lane
	Dequeued  uint64        // messages whose handler finished
	MaxDepth  uint64        // high-water mark of the summed queue depth
	Busy      time.Duration // summed wall time workers spent per message
	PerWorker []uint64      // per-worker processed counts
	Shed      uint64        // messages rejected by QoS queue bounds
	Tenants   []TenantLaneStats
}

// Depth returns the instantaneous queue depth (including in-service).
func (s WriteLaneStats) Depth() uint64 { return s.Enqueued - s.Dequeued }

// writeLane is the keyed worker pool behind WriteLaneConfig.
type writeLane struct {
	cfg      WriteLaneConfig
	handler  Handler
	procCost time.Duration
	chs      []chan laneItem
	qos      []*wfq // one per worker when cfg.QoS is enabled; replaces chs
	wg       sync.WaitGroup

	closeMu sync.RWMutex
	closed  bool

	enqueued  atomic.Uint64
	dequeued  atomic.Uint64
	maxDepth  atomic.Uint64
	busyNs    atomic.Int64
	shed      atomic.Uint64
	perWorker []atomic.Uint64
}

func newWriteLane(cfg WriteLaneConfig, h Handler, procCost time.Duration) *writeLane {
	cap := cfg.QueueCap
	if cap <= 0 {
		cap = 1024
	}
	l := &writeLane{
		cfg:       cfg,
		handler:   h,
		procCost:  procCost,
		perWorker: make([]atomic.Uint64, cfg.Workers),
	}
	if cfg.QoS.Enabled() {
		l.qos = make([]*wfq, cfg.Workers)
		for i := range l.qos {
			l.qos[i] = newWFQ(cap, cfg.QoS.Weights)
		}
	} else {
		l.chs = make([]chan laneItem, cfg.Workers)
		for i := range l.chs {
			l.chs[i] = make(chan laneItem, cap)
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		l.wg.Add(1)
		go l.worker(i)
	}
	return l
}

// dispatch routes the message to the key's worker. Without QoS a full
// worker queue blocks; with QoS a full tenant queue sheds the message
// (the Shed hook turns it into a typed rejection). Reports false once the
// lane is closed (the caller then handles the message inline).
func (l *writeLane) dispatch(from types.NodeID, msg Message, deliverAt time.Time, key uint64) bool {
	it := laneItem{from: from, msg: msg, deliverAt: deliverAt}
	if l.cfg.Observe != nil {
		it.enq = time.Now()
	}
	if l.qos != nil {
		tenant, _ := l.cfg.QoS.TenantOf(msg)
		switch l.qos[key%uint64(len(l.qos))].push(it, tenant) {
		case pushClosed:
			return false
		case pushShed:
			l.shed.Add(1)
			if l.cfg.QoS.Shed != nil {
				l.cfg.QoS.Shed(from, msg, tenant)
			}
			return true
		}
		l.noteEnqueued()
		return true
	}
	l.closeMu.RLock()
	if l.closed {
		l.closeMu.RUnlock()
		return false
	}
	l.noteEnqueued()
	l.chs[key%uint64(len(l.chs))] <- it
	l.closeMu.RUnlock()
	return true
}

// noteEnqueued bumps the enqueue counter and the depth high-water mark
// (see readLane.noteEnqueued for the wrap guard).
func (l *writeLane) noteEnqueued() {
	n := l.enqueued.Add(1)
	if dq := l.dequeued.Load(); n > dq {
		depth := n - dq
		for {
			cur := l.maxDepth.Load()
			if depth <= cur || l.maxDepth.CompareAndSwap(cur, depth) {
				break
			}
		}
	}
}

func (l *writeLane) worker(i int) {
	defer l.wg.Done()
	if l.qos != nil {
		for {
			it, ok := l.qos[i].pop()
			if !ok {
				return
			}
			l.process(i, it)
		}
	}
	for it := range l.chs[i] {
		l.process(i, it)
	}
}

func (l *writeLane) process(i int, it laneItem) {
	start := time.Now()
	if !it.deliverAt.IsZero() {
		simclock.SpinUntil(it.deliverAt)
		// As on the read lane, the serial receive cost is paid on the
		// worker: mutations of different colors use different cores.
		if simclock.Enabled() {
			simclock.Spin(l.procCost)
		}
	}
	l.handler(it.from, it.msg)
	service := time.Since(start)
	l.busyNs.Add(int64(service))
	l.perWorker[i].Add(1)
	l.dequeued.Add(1)
	if l.cfg.Observe != nil && !it.enq.IsZero() {
		l.cfg.Observe(start.Sub(it.enq), service)
	}
}

// close drains the pool; later dispatch calls report false. Idempotent.
func (l *writeLane) close() {
	l.closeMu.Lock()
	if l.closed {
		l.closeMu.Unlock()
		return
	}
	l.closed = true
	l.closeMu.Unlock()
	if l.qos != nil {
		for _, q := range l.qos {
			q.close()
		}
	} else {
		for _, ch := range l.chs {
			close(ch)
		}
	}
	l.wg.Wait()
}

func (l *writeLane) stats() WriteLaneStats {
	per := make([]uint64, len(l.perWorker))
	for i := range l.perWorker {
		per[i] = l.perWorker[i].Load()
	}
	s := WriteLaneStats{
		Enqueued:  l.enqueued.Load(),
		Dequeued:  l.dequeued.Load(),
		MaxDepth:  l.maxDepth.Load(),
		Busy:      time.Duration(l.busyNs.Load()),
		PerWorker: per,
		Shed:      l.shed.Load(),
	}
	if l.qos != nil {
		parts := make([][]TenantLaneStats, len(l.qos))
		for i, q := range l.qos {
			parts[i] = q.tenantStats()
		}
		s.Tenants = mergeTenantStats(parts...)
	}
	return s
}

// Lanes bundles an endpoint's service lanes: a read lane (shared queue,
// any-order concurrency) and a keyed write lane (per-key FIFO). Either or
// both may be disabled.
type Lanes struct {
	Read  LaneConfig
	Write WriteLaneConfig
}

// WithLanes wraps a handler with both lanes for endpoints the Network
// does not manage (e.g. a TCP transport). Classification order matches
// the in-process delivery loop: read class first, then write class, else
// inline. The stop function drains both pools.
func WithLanes(h Handler, lanes Lanes) (wrapped Handler, readStats func() LaneStats, writeStats func() WriteLaneStats, stop func()) {
	readStats = func() LaneStats { return LaneStats{} }
	writeStats = func() WriteLaneStats { return WriteLaneStats{} }
	var rl *readLane
	var wl *writeLane
	if lanes.Read.Enabled() {
		rl = newReadLane(lanes.Read, h, 0)
		readStats = rl.stats
	}
	if lanes.Write.Enabled() {
		wl = newWriteLane(lanes.Write, h, 0)
		writeStats = wl.stats
	}
	if rl == nil && wl == nil {
		return h, readStats, writeStats, func() {}
	}
	wrapped = func(from types.NodeID, msg Message) {
		if rl != nil && lanes.Read.Classify(msg) && rl.dispatch(from, msg, time.Time{}) {
			return
		}
		if wl != nil {
			if key, ok := lanes.Write.Key(msg); ok && wl.dispatch(from, msg, time.Time{}, key) {
				return
			}
		}
		h(from, msg)
	}
	stop = func() {
		if rl != nil {
			rl.close()
		}
		if wl != nil {
			wl.close()
		}
	}
	return wrapped, readStats, writeStats, stop
}
