package kv

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"flexlog/internal/core"
	"flexlog/internal/types"
)

func newStoreCluster(t *testing.T) *core.Cluster {
	t.Helper()
	cl, err := core.SimpleCluster(core.TestClusterConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	return cl
}

func mkStore(t *testing.T, cl *core.Cluster) *Store {
	t.Helper()
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	st, err := Create(c, 50, types.MasterColor)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPutGetDelete(t *testing.T) {
	cl := newStoreCluster(t)
	st := mkStore(t, cl)
	if err := st.Put("k", "v1"); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("k")
	if err != nil || got != "v1" {
		t.Fatalf("get = %q, %v", got, err)
	}
	st.Put("k", "v2") // overwrite
	got, _ = st.Get("k")
	if got != "v2" {
		t.Fatalf("get after overwrite = %q", got)
	}
	st.Delete("k")
	if _, err := st.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete: %v", err)
	}
}

func TestTwoHandlesShareState(t *testing.T) {
	cl := newStoreCluster(t)
	a := mkStore(t, cl)
	b := mkStore(t, cl)
	a.Put("shared", "from-a")
	got, err := b.Get("shared")
	if err != nil || got != "from-a" {
		t.Fatalf("b sees %q, %v", got, err)
	}
	b.Put("shared", "from-b")
	got, _ = a.Get("shared")
	if got != "from-b" {
		t.Fatalf("a sees %q", got)
	}
}

func TestFreshHandleReplaysHistory(t *testing.T) {
	cl := newStoreCluster(t)
	a := mkStore(t, cl)
	for i := 0; i < 10; i++ {
		a.Put(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	a.Delete("k3")
	// A brand-new handle must converge to the same state.
	b := mkStore(t, cl)
	n, err := b.Len()
	if err != nil || n != 9 {
		t.Fatalf("len = %d, %v", n, err)
	}
	if _, err := b.Get("k3"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key visible: %v", err)
	}
	got, _ := b.Get("k7")
	if got != "v7" {
		t.Fatalf("k7 = %q", got)
	}
}

func TestFreshAppendBeforeSyncDoesNotSkipHistory(t *testing.T) {
	cl := newStoreCluster(t)
	a := mkStore(t, cl)
	a.Put("old", "1")
	// b appends before ever reading: its first fold must not jump past
	// the history.
	b := mkStore(t, cl)
	b.Put("new", "2")
	if got, err := b.Get("old"); err != nil || got != "1" {
		t.Fatalf("history skipped: %q, %v", got, err)
	}
}

func TestCheckpointCompactsAndPreserves(t *testing.T) {
	cl := newStoreCluster(t)
	st := mkStore(t, cl)
	for i := 0; i < 20; i++ {
		st.Put(fmt.Sprintf("k%d", i%5), fmt.Sprintf("v%d", i))
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Fresh handle after compaction: replay is snapshot + tail only.
	b := mkStore(t, cl)
	snap, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 5 {
		t.Fatalf("snapshot has %d keys", len(snap))
	}
	for i := 0; i < 5; i++ {
		want := fmt.Sprintf("v%d", 15+i)
		if snap[fmt.Sprintf("k%d", i)] != want {
			t.Fatalf("k%d = %q, want %q", i, snap[fmt.Sprintf("k%d", i)], want)
		}
	}
	// Writes continue after the checkpoint.
	st.Put("post", "yes")
	if got, _ := b.Get("post"); got != "yes" {
		t.Fatalf("post-checkpoint write invisible: %q", got)
	}
}

func TestWriteInterleavedWithCheckpointSurvives(t *testing.T) {
	cl := newStoreCluster(t)
	a := mkStore(t, cl)
	b := mkStore(t, cl)
	a.Put("base", "1")
	// b writes concurrently with a's checkpoint. Regardless of whether
	// b's write lands before or after the snapshot record, it must
	// survive replay.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); a.Checkpoint() }()
	go func() { defer wg.Done(); b.Put("racer", "alive") }()
	wg.Wait()
	fresh := mkStore(t, cl)
	got, err := fresh.Get("racer")
	if err != nil || got != "alive" {
		t.Fatalf("interleaved write lost: %q, %v", got, err)
	}
	if got, err := fresh.Get("base"); err != nil || got != "1" {
		t.Fatalf("base lost: %q, %v", got, err)
	}
}

func TestConcurrentWritersConverge(t *testing.T) {
	cl := newStoreCluster(t)
	const writers, per = 4, 10
	var wg sync.WaitGroup
	stores := make([]*Store, writers)
	for w := 0; w < writers; w++ {
		stores[w] = mkStore(t, cl)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				stores[w].Put(fmt.Sprintf("w%d-%d", w, i), "x")
			}
		}(w)
	}
	wg.Wait()
	// All handles converge to the same 40-key state.
	want, err := stores[0].Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != writers*per {
		t.Fatalf("state has %d keys, want %d", len(want), writers*per)
	}
	for w := 1; w < writers; w++ {
		got, err := stores[w].Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("handle %d diverged: %d keys", w, len(got))
		}
	}
}

func TestStoreSurvivesReplicaCrash(t *testing.T) {
	cl := newStoreCluster(t)
	st := mkStore(t, cl)
	st.Put("durable", "yes")
	// Crash + recover a replica of the store's shard.
	shards := cl.Topology().ShardsInRegion(50)
	r := cl.Replica(shards[0].Replicas[0])
	r.Crash()
	cl.Network().Isolate(r.ID())
	cl.Network().Rejoin(r.ID())
	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("durable")
	if err != nil || got != "yes" {
		t.Fatalf("state lost across crash: %q, %v", got, err)
	}
}
