// Package kv implements a durable, consistent key-value map materialized
// from a colored log — the "high-level data structures, e.g., Durable
// Objects, that are durable, scalable and consistent because they hide a
// consensus protocol behind their API" of §3.2, in the style of Tango
// objects over a shared log.
//
// Every mutation is an event appended to the store's color; the map state
// is the deterministic fold of the event sequence. Because the color is
// linearizable (§7, Theorem 1), every client that replays the log derives
// the same state, and read-your-writes follows from replaying at least up
// to one's own append. Checkpoint folds the current state into a snapshot
// record and trims the events it covers, bounding replay cost.
package kv

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"flexlog/internal/core"
	"flexlog/internal/types"
)

// ErrNotFound is returned for absent keys.
var ErrNotFound = errors.New("kv: key not found")

// event is one log entry.
type event struct {
	Kind  string            `json:"kind"` // "put" | "del" | "snap"
	Key   string            `json:"key,omitempty"`
	Value string            `json:"value,omitempty"`
	State map[string]string `json:"state,omitempty"` // snapshots only
	UpTo  types.SN          `json:"up_to,omitempty"` // snapshots: highest folded SN
}

// Store is a key-value map backed by one color. Multiple Store handles
// (across processes) bound to the same color observe the same linearizable
// history.
type Store struct {
	color  types.ColorID
	handle *core.Client

	mu      sync.Mutex
	state   map[string]string
	applied types.SN // highest SN folded into state
}

// New binds a store to an existing color.
func New(handle *core.Client, color types.ColorID) *Store {
	return &Store{color: color, handle: handle, state: make(map[string]string)}
}

// Create provisions the color and binds a store.
func Create(handle *core.Client, color, parent types.ColorID) (*Store, error) {
	if err := handle.AddColor(color, parent); err != nil {
		return nil, err
	}
	return New(handle, color), nil
}

// Put stores key=value. The write is durable and totally ordered when Put
// returns.
func (s *Store) Put(key, value string) error {
	return s.append(event{Kind: "put", Key: key, Value: value})
}

// Delete removes a key.
func (s *Store) Delete(key string) error {
	return s.append(event{Kind: "del", Key: key})
}

func (s *Store) append(ev event) error {
	enc, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	sn, err := s.handle.Append([][]byte{enc}, s.color)
	if err != nil {
		return err
	}
	// Fold our own write immediately when it directly extends our view
	// (read-your-writes without a replay); any gap defers to Sync.
	s.mu.Lock()
	if sn == s.applied+1 {
		s.applyLocked(ev)
		s.applied = sn
	}
	s.mu.Unlock()
	return nil
}

// applyLocked folds one mutation into state. Caller holds s.mu.
// Snapshot events are handled by Sync, not here.
func (s *Store) applyLocked(ev event) {
	switch ev.Kind {
	case "put":
		s.state[ev.Key] = ev.Value
	case "del":
		delete(s.state, ev.Key)
	}
}

// Sync replays all log events this handle has not folded yet. Get calls
// Sync first, so reads are linearizable with respect to completed writes.
//
// Snapshot handling: a snapshot covers the mutations with SN <= UpTo; a
// concurrent writer's mutation can land between UpTo and the snapshot's
// own SN, so replay loads the newest useful snapshot first and then folds
// every surviving mutation above max(applied, UpTo) in order — including
// those that interleaved with the snapshot append.
func (s *Store) Sync() error {
	s.mu.Lock()
	from := s.applied
	s.mu.Unlock()
	records, err := s.handle.Subscribe(s.color, from)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	// Pass 1: find the newest snapshot that is ahead of our fold point.
	events := make([]event, len(records))
	for i, r := range records {
		if err := json.Unmarshal(r.Data, &events[i]); err != nil {
			return fmt.Errorf("kv: corrupt event at %v: %w", r.SN, err)
		}
	}
	for i := len(records) - 1; i >= 0; i-- {
		ev := events[i]
		if ev.Kind != "snap" || records[i].SN <= s.applied || ev.UpTo < s.applied {
			continue
		}
		s.state = make(map[string]string, len(ev.State))
		for k, v := range ev.State {
			s.state[k] = v
		}
		s.applied = ev.UpTo
		break
	}
	// Pass 2: fold surviving mutations above the fold point, in order.
	maxSN := s.applied
	for i, r := range records {
		if r.SN > maxSN {
			maxSN = r.SN
		}
		if r.SN <= s.applied || events[i].Kind == "snap" {
			continue
		}
		s.applyLocked(events[i])
		s.applied = r.SN
	}
	if maxSN > s.applied {
		s.applied = maxSN
	}
	return nil
}

// Get returns the value for key after syncing with the log.
func (s *Store) Get(key string) (string, error) {
	if err := s.Sync(); err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.state[key]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return v, nil
}

// Len returns the number of keys after syncing.
func (s *Store) Len() (int, error) {
	if err := s.Sync(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.state), nil
}

// Snapshot returns a copy of the current state after syncing.
func (s *Store) Snapshot() (map[string]string, error) {
	if err := s.Sync(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.state))
	for k, v := range s.state {
		out[k] = v
	}
	return out, nil
}

// Checkpoint appends a snapshot of the current state and trims every event
// it covers, bounding the replay cost of future handles (the log-compaction
// pattern of log-structured protocols).
func (s *Store) Checkpoint() error {
	if err := s.Sync(); err != nil {
		return err
	}
	s.mu.Lock()
	state := make(map[string]string, len(s.state))
	for k, v := range s.state {
		state[k] = v
	}
	upTo := s.applied
	s.mu.Unlock()

	enc, err := json.Marshal(event{Kind: "snap", State: state, UpTo: upTo})
	if err != nil {
		return err
	}
	if _, err := s.handle.Append([][]byte{enc}, s.color); err != nil {
		return err
	}
	// Trim exactly what the snapshot covers. Mutations that interleaved
	// with the snapshot append have SN > upTo, so they survive the trim
	// and Sync folds them on top of the snapshot.
	_, _, err = s.handle.Trim(upTo, s.color)
	return err
}
