package scalog

import (
	"sync"
	"testing"
	"time"

	"flexlog/internal/paxos"
	"flexlog/internal/proto"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// receiver collects OrderResps for a fake replica set.
type receiver struct {
	mu    sync.Mutex
	resps []proto.OrderResp
	ch    chan struct{}
}

func newReceiver(t *testing.T, net *transport.Network, id types.NodeID) *receiver {
	t.Helper()
	r := &receiver{ch: make(chan struct{}, 4096)}
	if _, err := net.Register(id, func(from types.NodeID, msg transport.Message) {
		if resp, ok := msg.(proto.OrderResp); ok {
			r.mu.Lock()
			r.resps = append(r.resps, resp)
			r.mu.Unlock()
			r.ch <- struct{}{}
		}
	}); err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *receiver) wait(t *testing.T, n int) []proto.OrderResp {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case <-r.ch:
		case <-deadline:
			t.Fatalf("timed out waiting for %d responses (got %d)", n, i)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]proto.OrderResp(nil), r.resps...)
}

func newOrderer(t *testing.T, batch time.Duration) (*transport.Network, *Orderer, *receiver) {
	t.Helper()
	net := transport.NewNetwork(transport.ZeroLink())
	ids, _, err := paxos.AcceptorSet(net, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(Config{
		ID: 100, Acceptors: ids,
		BatchInterval: batch,
		UniquePrimary: true,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(o.Stop)
	rx := newReceiver(t, net, 50)
	// Sender endpoint standing in for a replica.
	return net, o, rx
}

func TestOrdererAssignsDistinctSNs(t *testing.T) {
	net, o, rx := newOrderer(t, 0)
	sender, err := net.Register(60, func(types.NodeID, transport.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := uint32(1); i <= n; i++ {
		sender.Send(100, proto.OrderReq{
			Color: 0, Token: types.MakeToken(9, i), NRecords: 1,
			Replicas: []types.NodeID{50},
		})
	}
	resps := rx.wait(t, n)
	seen := make(map[types.SN]bool)
	for _, r := range resps {
		if seen[r.LastSN] {
			t.Fatalf("duplicate SN %v", r.LastSN)
		}
		seen[r.LastSN] = true
	}
	if got := o.Stats().Assigned; got != n {
		t.Fatalf("assigned = %d", got)
	}
}

func TestOrdererBatchesRequests(t *testing.T) {
	net, o, rx := newOrderer(t, 3*time.Millisecond)
	sender, _ := net.Register(60, func(types.NodeID, transport.Message) {})
	const n = 30
	for i := uint32(1); i <= n; i++ {
		sender.Send(100, proto.OrderReq{
			Color: 0, Token: types.MakeToken(9, i), NRecords: 1,
			Replicas: []types.NodeID{50},
		})
	}
	rx.wait(t, n)
	st := o.Stats()
	if st.Batches >= n {
		t.Fatalf("no batching: %d batches for %d requests", st.Batches, n)
	}
	// Each batch costs exactly one Paxos decision.
	if d := o.PaxosStats().Decided; d != st.Batches {
		t.Fatalf("decisions %d != batches %d", d, st.Batches)
	}
}

func TestOrdererTokenDedup(t *testing.T) {
	net, o, rx := newOrderer(t, 0)
	sender, _ := net.Register(60, func(types.NodeID, transport.Message) {})
	req := proto.OrderReq{Color: 0, Token: types.MakeToken(9, 1), NRecords: 1, Replicas: []types.NodeID{50}}
	sender.Send(100, req)
	first := rx.wait(t, 1)
	sender.Send(100, req)   // retry: must re-broadcast the same SN
	second := rx.wait(t, 1) // one more response
	if first[0].LastSN != second[1].LastSN {
		t.Fatalf("dedup broken: %v vs %v", first[0].LastSN, second[1].LastSN)
	}
	if o.Stats().Assigned != 1 {
		t.Fatalf("assigned = %d", o.Stats().Assigned)
	}
}

func TestOrdererRangeRequests(t *testing.T) {
	net, _, rx := newOrderer(t, 0)
	sender, _ := net.Register(60, func(types.NodeID, transport.Message) {})
	sender.Send(100, proto.OrderReq{Color: 0, Token: types.MakeToken(9, 1), NRecords: 5, Replicas: []types.NodeID{50}})
	sender.Send(100, proto.OrderReq{Color: 0, Token: types.MakeToken(9, 2), NRecords: 3, Replicas: []types.NodeID{50}})
	resps := rx.wait(t, 2)
	// Ranges must be disjoint and contiguous in total.
	total := uint32(0)
	maxEnd := types.SN(0)
	for _, r := range resps {
		total += r.NRecords
		if r.LastSN > maxEnd {
			maxEnd = r.LastSN
		}
	}
	if total != 8 || maxEnd != types.SN(8) {
		t.Fatalf("total=%d maxEnd=%v", total, maxEnd)
	}
}

// TestDuelingOrderers reproduces the §3.3 multi-proposer configuration:
// two orderers share the acceptors without a unique primary; preemptions
// occur and progress (per decision) costs far more work.
func TestDuelingOrderers(t *testing.T) {
	net := transport.NewNetwork(transport.ZeroLink())
	ids, _, err := paxos.AcceptorSet(net, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id types.NodeID) *Orderer {
		o, err := New(Config{
			ID: id, Acceptors: ids,
			UniquePrimary: false,
			PhaseTimeout:  5 * time.Millisecond,
			MaxAttempts:   100,
		}, net)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(o.Stop)
		return o
	}
	o1, o2 := mk(100), mk(200)
	rx := newReceiver(t, net, 50)
	sender, _ := net.Register(60, func(types.NodeID, transport.Message) {})

	const n = 20
	for i := uint32(1); i <= n; i++ {
		target := types.NodeID(100)
		if i%2 == 0 {
			target = 200
		}
		sender.Send(target, proto.OrderReq{
			Color: 0, Token: types.MakeToken(9, i), NRecords: 1,
			Replicas: []types.NodeID{50},
		})
	}
	rx.wait(t, n)
	pre := o1.PaxosStats().Preemptions + o2.PaxosStats().Preemptions
	t.Logf("dueling orderers: %d preemptions for %d requests", pre, n)
	if pre == 0 {
		t.Log("no preemptions observed this run (timing-dependent); acceptable")
	}
}
