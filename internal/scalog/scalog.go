// Package scalog implements the Scalog-style ordering layer that Boki
// adopts (§3.3, §9.1): order requests are batched by an aggregator and the
// log tail is advanced through a Paxos-replicated counter — one consensus
// decision per batch. It answers the same OrderReq/OrderResp wire protocol
// as FlexLog's sequencer tree, over the same transport, which is what makes
// the Figure 4 comparison apples-to-apples.
package scalog

import (
	"runtime"
	"sync"
	"time"

	"flexlog/internal/paxos"
	"flexlog/internal/proto"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// Config parameterizes one Scalog orderer.
type Config struct {
	ID        types.NodeID
	Acceptors []types.NodeID
	// BatchInterval is the aggregation window before a Paxos decision is
	// requested for the pending batch.
	BatchInterval time.Duration
	// UniquePrimary enables the Multi-Paxos optimization (skip Phase 1).
	// Disable when multiple orderers share the acceptors (§3.3 livelock
	// configuration).
	UniquePrimary bool
	// PerRequest disables aggregation entirely: every order request costs
	// one (pipelined) Paxos decision — the "optimized Paxos" baseline of
	// Fig. 4 (right), as opposed to Scalog/Boki's batched counter.
	PerRequest bool
	// PhaseTimeout / MaxAttempts pass through to the proposer.
	PhaseTimeout time.Duration
	MaxAttempts  int
}

type member struct {
	token    types.Token
	n        uint32
	replicas []types.NodeID
	color    types.ColorID
}

// Stats counts orderer activity.
type Stats struct {
	Requests  uint64
	Batches   uint64
	Assigned  uint64
	DupTokens uint64
	Failures  uint64 // batches that failed consensus (livelock bound)
}

// Orderer is one Scalog ordering node: aggregator + Paxos proposer.
type Orderer struct {
	cfg     Config
	counter *paxos.Counter
	ep      transport.Endpoint

	mu      sync.Mutex
	pending []member
	tokens  map[types.Token]types.SN
	stats   Stats

	stopCh  chan struct{}
	stopped sync.WaitGroup
	kick    chan struct{}
}

// New creates an orderer and registers it on the network. The Paxos
// proposer is registered under ID+1.
func New(cfg Config, net *transport.Network) (*Orderer, error) {
	counter, err := paxos.NewCounter(paxos.ProposerConfig{
		ID:           cfg.ID + 1,
		Acceptors:    cfg.Acceptors,
		SkipPhase1:   cfg.UniquePrimary,
		PhaseTimeout: cfg.PhaseTimeout,
		MaxAttempts:  cfg.MaxAttempts,
	}, net)
	if err != nil {
		return nil, err
	}
	o := &Orderer{
		cfg:     cfg,
		counter: counter,
		tokens:  make(map[types.Token]types.SN),
		stopCh:  make(chan struct{}),
		kick:    make(chan struct{}, 1),
	}
	ep, err := net.Register(cfg.ID, o.handle)
	if err != nil {
		counter.Stop()
		return nil, err
	}
	o.ep = ep
	o.stopped.Add(1)
	go o.flusherLoop()
	return o, nil
}

// Stats returns a snapshot of the counters.
func (o *Orderer) Stats() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats
}

// PaxosStats exposes the underlying proposer counters (preemptions etc.).
func (o *Orderer) PaxosStats() paxos.ProposerStats { return o.counter.Stats() }

// Stop shuts the orderer down.
func (o *Orderer) Stop() {
	select {
	case <-o.stopCh:
		return
	default:
	}
	close(o.stopCh)
	o.stopped.Wait()
	o.counter.Stop()
}

func (o *Orderer) handle(from types.NodeID, msg transport.Message) {
	req, ok := msg.(proto.OrderReq)
	if !ok {
		return
	}
	o.mu.Lock()
	o.stats.Requests++
	if sn, dup := o.tokens[req.Token]; dup {
		o.stats.DupTokens++
		o.mu.Unlock()
		if sn.Valid() {
			o.ep.Broadcast(req.Replicas, proto.OrderResp{Token: req.Token, LastSN: sn, NRecords: req.NRecords, Color: req.Color})
		}
		return
	}
	o.tokens[req.Token] = types.InvalidSN
	if o.cfg.PerRequest {
		o.mu.Unlock()
		// One pipelined Paxos decision per request; run off the delivery
		// goroutine so decisions overlap.
		go o.decideOne(req)
		return
	}
	o.pending = append(o.pending, member{token: req.Token, n: req.NRecords, replicas: req.Replicas, color: req.Color})
	o.mu.Unlock()
	select {
	case o.kick <- struct{}{}:
	default:
	}
}

// decideOne serves one order request with its own Paxos decision.
func (o *Orderer) decideOne(req proto.OrderReq) {
	end, err := o.counter.Next(req.NRecords)
	o.mu.Lock()
	if err != nil {
		o.stats.Failures++
		delete(o.tokens, req.Token)
		o.mu.Unlock()
		return
	}
	o.stats.Batches++
	o.stats.Assigned += uint64(req.NRecords)
	sn := types.SN(end)
	o.tokens[req.Token] = sn
	o.mu.Unlock()
	o.ep.Broadcast(req.Replicas, proto.OrderResp{Token: req.Token, LastSN: sn, NRecords: req.NRecords, Color: req.Color})
}

func (o *Orderer) flusherLoop() {
	defer o.stopped.Done()
	for {
		select {
		case <-o.stopCh:
			return
		case <-o.kick:
		}
		if o.cfg.BatchInterval > 0 {
			if o.cfg.BatchInterval >= time.Millisecond {
				time.Sleep(o.cfg.BatchInterval)
			} else {
				start := time.Now()
				for time.Since(start) < o.cfg.BatchInterval {
					runtime.Gosched() // let requests join the window
				}
			}
		}
		o.flush()
	}
}

func (o *Orderer) flush() {
	o.mu.Lock()
	batch := o.pending
	o.pending = nil
	o.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	var total uint32
	for _, m := range batch {
		total += m.n
	}
	// One Paxos decision advances the replicated tail by the batch total
	// (Scalog's per-interval counter commit).
	end, err := o.counter.Next(total)
	if err != nil {
		o.mu.Lock()
		o.stats.Failures++
		// Forget the tokens so retries can re-enter.
		for _, m := range batch {
			delete(o.tokens, m.token)
		}
		o.mu.Unlock()
		return
	}
	o.mu.Lock()
	o.stats.Batches++
	o.stats.Assigned += uint64(total)
	running := end - uint64(total)
	type out struct {
		resp     proto.OrderResp
		replicas []types.NodeID
	}
	outs := make([]out, 0, len(batch))
	for _, m := range batch {
		running += uint64(m.n)
		sn := types.SN(running)
		o.tokens[m.token] = sn
		outs = append(outs, out{
			resp:     proto.OrderResp{Token: m.token, LastSN: sn, NRecords: m.n, Color: m.color},
			replicas: m.replicas,
		})
	}
	o.mu.Unlock()
	for _, ot := range outs {
		o.ep.Broadcast(ot.replicas, ot.resp)
	}
}
