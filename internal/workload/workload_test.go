package workload

import (
	"testing"
	"time"

	"flexlog/internal/simclock"
	"flexlog/internal/ssd"
)

func TestPayloadDeterministic(t *testing.T) {
	a := Payload(128, 7)
	b := Payload(128, 7)
	c := Payload(128, 8)
	if len(a) != 128 {
		t.Fatalf("len = %d", len(a))
	}
	if string(a) != string(b) {
		t.Fatal("same seed produced different payloads")
	}
	if string(a) == string(c) {
		t.Fatal("different seeds produced identical payloads")
	}
}

func TestMixRatio(t *testing.T) {
	m := NewMix(75, 1)
	reads := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if m.NextIsRead() {
			reads++
		}
	}
	pct := 100 * float64(reads) / n
	if pct < 72 || pct > 78 {
		t.Fatalf("read ratio = %.1f%%, want ~75%%", pct)
	}
	if NewMix(0, 1).NextIsRead() {
		t.Fatal("0%% mix produced a read")
	}
	m100 := NewMix(100, 1)
	if !m100.NextIsRead() {
		t.Fatal("100%% mix produced a write")
	}
}

func TestUniformKeysInRange(t *testing.T) {
	u := NewUniformKeys(100, 1)
	seen := make(map[int]bool)
	for i := 0; i < 5000; i++ {
		k := u.Next()
		if k < 0 || k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) < 95 {
		t.Fatalf("uniform keys covered only %d/100", len(seen))
	}
	if string(Key(1)) != "key-000000000001" {
		t.Fatalf("key format: %q", Key(1))
	}
}

func TestRunClosedLoop(t *testing.T) {
	res := RunClosedLoop(4, 50*time.Millisecond, func(w, i int) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if res.Ops == 0 {
		t.Fatal("no ops completed")
	}
	if res.OpsPerSec <= 0 {
		t.Fatal("no throughput computed")
	}
	// 4 workers × ~50 iterations ≈ 200; generous bounds.
	if res.Ops > 400 {
		t.Fatalf("implausible op count %d", res.Ops)
	}
}

func TestRunClosedLoopCountsErrors(t *testing.T) {
	res := RunClosedLoop(1, 20*time.Millisecond, func(w, i int) error {
		time.Sleep(time.Millisecond)
		if i%2 == 0 {
			return errFake
		}
		return nil
	})
	if res.Errors == 0 {
		t.Fatal("errors not counted")
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake" }

func TestProfileVideoShape(t *testing.T) {
	if raceEnabled {
		t.Skip("compute/storage split distorted by the race detector")
	}
	prev := simclock.Enable(true)
	defer simclock.Enable(prev)
	dev := ssd.New(ssd.NVMe())
	rep, err := ProfileVideo(dev, 20, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	pct := rep.StoragePercent()
	// Table 1 reports ≈41% for video; the synthetic pipeline must land in
	// the same regime (storage is a major but not dominant cost).
	if pct < 15 || pct > 75 {
		t.Fatalf("video storage share = %.1f%%, outside the Table-1 regime", pct)
	}
	for _, class := range []string{"open", "read", "write", "fstat", "close"} {
		if rep.PerClass[class] <= 0 {
			t.Errorf("class %q unaccounted", class)
		}
	}
	if rep.ClassPercent("read") <= rep.ClassPercent("fstat") {
		t.Error("reads should dominate fstat time")
	}
}

func TestProfileGzipShape(t *testing.T) {
	if raceEnabled {
		t.Skip("compute/storage split distorted by the race detector")
	}
	prev := simclock.Enable(true)
	defer simclock.Enable(prev)
	dev := ssd.New(ssd.NVMe())
	rep, err := ProfileGzip(dev, 20, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 48.1%. The compute side is measured in real time, so the share
	// drifts up on hosts that compress faster; keep the band wide enough
	// for that while still requiring compute to be visible at all.
	pct := rep.StoragePercent()
	if pct < 15 || pct > 90 {
		t.Fatalf("gzip storage share = %.1f%%, outside the Table-1 regime", pct)
	}
	// Gzip writes compressed output: write time must be nonzero.
	if rep.PerClass["write"] <= 0 {
		t.Error("write time unaccounted")
	}
}

func TestSweepsNonEmpty(t *testing.T) {
	if len(RecordSizes) == 0 || len(BlockSizes) == 0 || len(ThreadCounts) == 0 || len(ReadPercents) == 0 {
		t.Fatal("sweep tables empty")
	}
}
