package workload

import (
	"bytes"
	"compress/flate"
	"fmt"
	"time"

	"flexlog/internal/simclock"
	"flexlog/internal/ssd"
)

// Table 1 of the paper profiles two serverless functions — video
// processing and gzip compression — and reports the share of CPU time
// spent in storage system calls (open/read/write/fstat/close), finding
// ≈40–48% of time in storage.
//
// The paper runs FunctionBench workloads on local storage; neither the
// original videos nor the exact binaries are available here, so this file
// builds the closest synthetic equivalent: the same open→stat→read→
// compute→write→close sequence per object against the simulated NVMe
// device, with the compute stage being a real pixel transform (video) or a
// real flate compression (gzip). The profiler attributes elapsed time to
// the same syscall classes Table 1 reports.

// SyscallCosts models the fixed kernel-crossing cost of metadata calls.
type SyscallCosts struct {
	Open  time.Duration
	Fstat time.Duration
	Close time.Duration
}

// DefaultSyscallCosts reflects measured ext4 metadata syscall latencies.
func DefaultSyscallCosts() SyscallCosts {
	return SyscallCosts{
		Open:  2500 * time.Nanosecond,
		Fstat: 900 * time.Nanosecond,
		Close: 700 * time.Nanosecond,
	}
}

// ProfileReport is the Table 1 row for one function.
type ProfileReport struct {
	Function string
	Total    time.Duration
	PerClass map[string]time.Duration
}

// StoragePercent returns the share of total time spent in storage calls.
func (r ProfileReport) StoragePercent() float64 {
	var st time.Duration
	for _, d := range r.PerClass {
		st += d
	}
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(st) / float64(r.Total)
}

// ClassPercent returns one syscall class's share of total time.
func (r ProfileReport) ClassPercent(class string) float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.PerClass[class]) / float64(r.Total)
}

// profiler measures per-class storage time.
type profiler struct {
	perClass map[string]time.Duration
	costs    SyscallCosts
}

func newProfiler(costs SyscallCosts) *profiler {
	return &profiler{perClass: make(map[string]time.Duration), costs: costs}
}

func (p *profiler) meta(class string, cost time.Duration) {
	start := time.Now()
	simclock.Wait(cost)
	p.perClass[class] += time.Since(start)
}

func (p *profiler) timed(class string, fn func() error) error {
	start := time.Now()
	err := fn()
	p.perClass[class] += time.Since(start)
	return err
}

// ProfileVideo runs the synthetic video-processing function: per frame,
// open the input, fstat it, read it, apply a brightness/contrast transform
// over every pixel (three passes, mirroring decode→filter→encode), write
// the output frame and close both files.
func ProfileVideo(dev *ssd.Device, frames, frameBytes int) (ProfileReport, error) {
	p := newProfiler(DefaultSyscallCosts())
	// Stage the input "video" on the device.
	for f := 0; f < frames; f++ {
		if _, err := dev.Append(frameName(f), Payload(frameBytes, int64(f))); err != nil {
			return ProfileReport{}, err
		}
	}
	start := time.Now()
	buf := make([]byte, frameBytes)
	for f := 0; f < frames; f++ {
		p.meta("open", p.costs.Open)
		p.meta("fstat", p.costs.Fstat)
		if err := p.timed("read", func() error {
			return dev.ReadAt(frameName(f), 0, buf)
		}); err != nil {
			return ProfileReport{}, err
		}
		// Compute: three full passes over the frame (decode, filter,
		// encode stand-ins) — real CPU work, not simulated.
		transformFrame(buf)
		if err := p.timed("write", func() error {
			_, err := dev.Append(frameName(f)+".out", buf)
			return err
		}); err != nil {
			return ProfileReport{}, err
		}
		p.meta("close", p.costs.Close)
		p.meta("close", p.costs.Close)
		p.meta("open", p.costs.Open) // output file open, charged per frame
	}
	return ProfileReport{
		Function: "Video processing",
		Total:    time.Since(start),
		PerClass: p.perClass,
	}, nil
}

// transformFrame applies repeated byte-level passes (brightness, contrast,
// clamp), standing in for decode/filter/encode CPU work. The pass count is
// calibrated so the storage share of the pipeline lands in the ~40% regime
// Table 1 reports for video processing on local storage.
func transformFrame(frame []byte) {
	for pass := 0; pass < 18; pass++ {
		acc := byte(pass)
		for i, v := range frame {
			nv := v + acc
			nv = nv ^ (nv >> 2)
			if nv > 250 {
				nv = 250
			}
			frame[i] = nv
			acc = nv
		}
	}
}

// ProfileGzip runs the synthetic gzip function: per chunk, open, fstat,
// read, flate-compress (real compression), write the compressed output,
// close.
func ProfileGzip(dev *ssd.Device, chunks, chunkBytes int) (ProfileReport, error) {
	p := newProfiler(DefaultSyscallCosts())
	pattern := []byte("the quick brown fox jumps over the lazy dog. ")
	for c := 0; c < chunks; c++ {
		// Text-like compressible input loads the compressor realistically.
		data := bytes.Repeat(pattern, chunkBytes/len(pattern)+1)[:chunkBytes]
		if _, err := dev.Append(chunkName(c), data); err != nil {
			return ProfileReport{}, err
		}
	}
	start := time.Now()
	buf := make([]byte, chunkBytes)
	for c := 0; c < chunks; c++ {
		p.meta("open", p.costs.Open)
		p.meta("fstat", p.costs.Fstat)
		if err := p.timed("read", func() error {
			return dev.ReadAt(chunkName(c), 0, buf)
		}); err != nil {
			return ProfileReport{}, err
		}
		var out bytes.Buffer
		w, err := flate.NewWriter(&out, flate.DefaultCompression)
		if err != nil {
			return ProfileReport{}, err
		}
		if _, err := w.Write(buf); err != nil {
			return ProfileReport{}, err
		}
		w.Close()
		if err := p.timed("write", func() error {
			_, err := dev.Append(chunkName(c)+".gz", out.Bytes())
			return err
		}); err != nil {
			return ProfileReport{}, err
		}
		p.meta("close", p.costs.Close)
		p.meta("close", p.costs.Close)
		p.meta("open", p.costs.Open)
	}
	return ProfileReport{
		Function: "Gzip compression",
		Total:    time.Since(start),
		PerClass: p.perClass,
	}, nil
}

func frameName(f int) string { return fmt.Sprintf("frame-%05d", f) }
func chunkName(c int) string { return fmt.Sprintf("chunk-%05d", c) }
