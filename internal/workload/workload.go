// Package workload provides the load generators of the evaluation (§9):
// record-size sweeps, read/write mixtures with uniform key selection (the
// db_bench configuration of §9.1), closed-loop client drivers, and the two
// profiled serverless functions of Table 1 — a video-processing pipeline
// and a gzip-compression pipeline — instrumented to attribute CPU time to
// storage versus compute.
package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// RecordSizes is the record-size sweep of Fig. 5 (bytes).
var RecordSizes = []int{64, 128, 512, 1024, 2048, 4096, 8192}

// BlockSizes is the block-size sweep of Fig. 1 (bytes).
var BlockSizes = []int{64, 128, 256, 512, 1024, 2048, 4096, 8192}

// ThreadCounts is the thread sweep of Fig. 6.
var ThreadCounts = []int{1, 2, 4, 6, 8, 10, 12}

// ReadPercents is the R/W-ratio sweep of Fig. 7 (percent reads).
var ReadPercents = []int{0, 25, 50, 75, 90, 95, 99}

// Payload returns a deterministic pseudo-random record of n bytes: random
// enough to defeat trivial compression, reproducible across runs.
func Payload(n int, seed int64) []byte {
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Intn(256))
	}
	return b
}

// Mix decides reads vs writes with the given read percentage.
type Mix struct {
	ReadPercent int
	rng         *rand.Rand
}

// NewMix creates a deterministic mix generator.
func NewMix(readPercent int, seed int64) *Mix {
	return &Mix{ReadPercent: readPercent, rng: rand.New(rand.NewSource(seed))}
}

// NextIsRead reports whether the next operation should be a read.
func (m *Mix) NextIsRead() bool {
	return m.rng.Intn(100) < m.ReadPercent
}

// UniformKeys generates uniformly distributed keys over [0, n) — the
// "uniform index distribution" db_bench setting of §9.1.
type UniformKeys struct {
	N   int
	rng *rand.Rand
}

// NewUniformKeys creates a deterministic uniform key generator.
func NewUniformKeys(n int, seed int64) *UniformKeys {
	return &UniformKeys{N: n, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next key index.
func (u *UniformKeys) Next() int { return u.rng.Intn(u.N) }

// Key renders a key index as a fixed-width byte key.
func Key(i int) []byte { return []byte(fmt.Sprintf("key-%012d", i)) }

// Result summarizes one closed-loop run.
type Result struct {
	Ops       uint64
	Errors    uint64
	Elapsed   time.Duration
	OpsPerSec float64
}

// RunClosedLoop drives `threads` workers for `duration`, each invoking op
// until the deadline; op returns an error to count failures. Returns the
// aggregate throughput.
func RunClosedLoop(threads int, duration time.Duration, op func(worker int, iter int) error) Result {
	start := time.Now()
	done := make(chan Result, threads)
	for w := 0; w < threads; w++ {
		go func(w int) {
			var r Result
			deadline := start.Add(duration)
			for i := 0; time.Now().Before(deadline); i++ {
				if err := op(w, i); err != nil {
					r.Errors++
				} else {
					r.Ops++
				}
			}
			done <- r
		}(w)
	}
	var total Result
	for w := 0; w < threads; w++ {
		r := <-done
		total.Ops += r.Ops
		total.Errors += r.Errors
	}
	total.Elapsed = time.Since(start)
	total.OpsPerSec = float64(total.Ops) / total.Elapsed.Seconds()
	return total
}
