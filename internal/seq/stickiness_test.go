package seq

import (
	"testing"
	"time"

	"flexlog/internal/transport"
)

// TestLossyHeartbeatsDoNotDeposeLeader covers leader stickiness: a backup
// that stops hearing heartbeats because the leader→backup link drops
// messages (not because the leader died) must not depose the leader. The
// live leader and the still-connected backup reject its claims with
// LeaderAlive, the claimant abandons without adopting a higher epoch, and
// once the link heals it settles back as a backup of the original epoch.
func TestLossyHeartbeatsDoNotDeposeLeader(t *testing.T) {
	net, group, _ := failoverCluster(t)
	// Warm up: let the leader collect heartbeat acks from both backups.
	waitUntil(t, time.Second, func() bool {
		return group[100].Role() == RoleLeader && group[100].Serving()
	}, "initial leader serving")
	time.Sleep(15 * time.Millisecond)

	// Drop every leader→102 message for several failure timeouts: 102 goes
	// silent-on-leader and starts claiming, but 100 still reaches a
	// majority (itself + 101) and 101 still hears 100.
	net.SetFaultSeed(7)
	net.SetLinkFaults(100, 102, transport.FaultModel{DropProb: 1})
	time.Sleep(4 * group[100].cfg.FailureTimeout)
	net.ClearFaults()

	if fs := net.FaultStats(); fs.Drops == 0 {
		t.Fatal("fault injection dropped nothing; test exercised no loss")
	}
	// The leader must have survived with its original epoch: no spurious
	// epoch bump, no stand-down.
	if group[100].Role() != RoleLeader || !group[100].Serving() {
		t.Fatalf("leader deposed by lossy link: role=%v serving=%v",
			group[100].Role(), group[100].Serving())
	}
	if e := group[100].Epoch(); e != 1 {
		t.Fatalf("leader epoch = %d, want 1 (no spurious bump)", e)
	}
	if group[100].Stats().Elections != 0 {
		t.Fatalf("leader ran %d elections, want 0", group[100].Stats().Elections)
	}
	// The cut-off backup re-converges as a backup of the original epoch.
	waitUntil(t, time.Second, func() bool {
		return group[102].Role() == RoleBackup && group[102].Epoch() == 1
	}, "backup 102 settles back under epoch-1 leader")
	if group[101].Role() != RoleBackup {
		t.Fatalf("node 101 role = %v, want backup", group[101].Role())
	}
}

// TestGenuineFailoverStillConverges guards the other side of stickiness:
// when the leader really dies, LeaderAlive rejections must not block the
// election — backups stop hearing the leader, the recent-heartbeat window
// expires, and the highest backup wins as before.
func TestGenuineFailoverStillConverges(t *testing.T) {
	net, group, _ := failoverCluster(t)
	waitUntil(t, time.Second, func() bool {
		return group[100].Role() == RoleLeader && group[100].Serving()
	}, "initial leader serving")
	time.Sleep(15 * time.Millisecond)

	group[100].Crash()
	net.Isolate(100)
	waitUntil(t, 5*time.Second, func() bool {
		return group[102].Role() == RoleLeader && group[102].Serving()
	}, "backup 102 takes over after a real crash")
	if e := group[102].Epoch(); e < 2 {
		t.Fatalf("new leader epoch = %d, want >= 2", e)
	}
}
