package seq

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"flexlog/internal/proto"
	"flexlog/internal/topology"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// This file holds the -race stress tests of the lock-free hot path: many
// colors ordered concurrently through the full tree (lanes, striped token
// dedup, MPSC pending queues, pipelined flush), and an epoch bump forced
// into the middle of a request flood (the packed SN word's poison
// protocol). The assertions are the ordering layer's core invariants:
// ranges never overlap, streams stay FIFO, duplicates get their original
// SN back, and no SN is ever minted under an epoch the node did not serve.

func stressSeqConfig(id types.NodeID, region types.ColorID, topo *topology.Topology) Config {
	cfg := DefaultConfig()
	cfg.ID = id
	cfg.Region = region
	cfg.Topo = topo
	cfg.BatchInterval = 100 * time.Microsecond
	cfg.HeartbeatInterval = 50 * time.Millisecond
	cfg.FailureTimeout = time.Second
	cfg.RetryTimeout = time.Second
	cfg.StartAsLeader = true
	return cfg
}

// stressDriver is a minimal order-requesting replica stand-in.
type stressDriver struct {
	id    types.NodeID
	ep    transport.Endpoint
	mu    sync.Mutex
	waits map[types.Token]chan proto.OrderResp
}

func newStressDriver(t *testing.T, net *transport.Network, id types.NodeID) *stressDriver {
	t.Helper()
	d := &stressDriver{id: id, waits: make(map[types.Token]chan proto.OrderResp)}
	ep, err := net.Register(id, func(from types.NodeID, msg transport.Message) {
		resp, ok := msg.(proto.OrderResp)
		if !ok {
			return
		}
		d.mu.Lock()
		ch := d.waits[resp.Token]
		delete(d.waits, resp.Token)
		d.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	})
	if err != nil {
		t.Fatalf("register driver %v: %v", id, err)
	}
	d.ep = ep
	return d
}

// request sends one OrderReq for token and waits for the response.
func (d *stressDriver) request(target types.NodeID, color types.ColorID, token types.Token, n uint32, timeout time.Duration) (proto.OrderResp, error) {
	ch := make(chan proto.OrderResp, 1)
	d.mu.Lock()
	d.waits[token] = ch
	d.mu.Unlock()
	req := proto.OrderReq{Color: color, Token: token, NRecords: n, Replicas: []types.NodeID{d.id}}
	if err := d.ep.Send(target, req); err != nil {
		return proto.OrderResp{}, err
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-time.After(timeout):
		d.mu.Lock()
		delete(d.waits, token)
		d.mu.Unlock()
		return proto.OrderResp{}, fmt.Errorf("order request %v timed out", token)
	}
}

// snRange is one assigned range (last-n, last].
type snRange struct {
	last types.SN
	n    uint32
}

// assertDisjoint fails if any two ranges of one color/epoch overlap.
func assertDisjoint(t *testing.T, what string, ranges []snRange) {
	t.Helper()
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].last < ranges[j].last })
	for i := 1; i < len(ranges); i++ {
		prev, cur := ranges[i-1], ranges[i]
		if uint64(cur.last)-uint64(cur.n) < uint64(prev.last) {
			t.Fatalf("%s: overlapping SN ranges: (%v-%d, %v] and (%v-%d, %v]",
				what, prev.last, prev.n, prev.last, cur.last, cur.n, cur.last)
		}
	}
}

// TestConcurrentOrderingStress hammers the 3-sequencer chain with many
// concurrent streams across all three colors — owner-path assignment at
// the leaf, single-hop aggregation at the middle, two-hop at the root —
// with deliberate duplicate retries mixed in, and checks every invariant
// the lock-free structures must uphold.
func TestConcurrentOrderingStress(t *testing.T) {
	net := transport.NewNetwork(transport.ZeroLink())
	topo := topology.New()
	for _, r := range []struct {
		color, parent types.ColorID
		id            types.NodeID
	}{{0, 0, 9000}, {1, 0, 9010}, {2, 1, 9020}} {
		if err := topo.AddRegion(r.color, r.parent, r.id, nil); err != nil {
			t.Fatal(err)
		}
	}
	tenants := map[types.ColorID]types.TenantID{0: 1, 1: 1, 2: 2}
	var seqs []*Sequencer
	for _, r := range []struct {
		color types.ColorID
		id    types.NodeID
	}{{0, 9000}, {1, 9010}, {2, 9020}} {
		cfg := stressSeqConfig(r.id, r.color, topo)
		cfg.TenantOf = tenants
		if r.id == 9020 {
			cfg.OrderWorkers = 8 // the entry leaf takes the concurrent load
		}
		s, err := New(cfg, net)
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, s)
	}
	defer func() {
		for _, s := range seqs {
			s.Stop()
		}
	}()
	leaf := seqs[2]
	const leafID = types.NodeID(9020)

	const goroutines = 8
	const ops = 120
	colors := []types.ColorID{0, 1, 2}

	type result struct {
		color types.ColorID
		resp  proto.OrderResp
		seq   int // per-stream send order
	}
	var resMu sync.Mutex
	results := make([]result, 0, goroutines*ops)
	sent := make([]map[types.ColorID]uint64, goroutines) // records sent per color, incl. dup retries

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		sent[g] = make(map[types.ColorID]uint64)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			d := newStressDriver(t, net, types.NodeID(100+g))
			fid := uint32(100 + g)
			for i := 0; i < ops; i++ {
				color := colors[i%len(colors)]
				n := uint32(i%3 + 1)
				token := types.MakeToken(fid, uint32(i+1))
				resp, err := d.request(leafID, color, token, n, 10*time.Second)
				if err != nil {
					errs <- err
					return
				}
				resMu.Lock()
				results = append(results, result{color: color, resp: resp, seq: i})
				sent[g][color] += uint64(n)
				resMu.Unlock()
				if i%6 == 5 {
					// Duplicate retry: the token cache must re-answer with
					// the ORIGINAL assignment, never a fresh range. The
					// token's assigned state is written by a racing handler
					// goroutine, so allow a couple of rounds for it to land.
					// Every attempt reaches the sequencer (in-process
					// delivery is reliable), so every attempt is counted
					// toward the tenant-accounting expectation.
					var dup proto.OrderResp
					var derr error
					for attempt := 0; attempt < 3; attempt++ {
						resMu.Lock()
						sent[g][color] += uint64(n)
						resMu.Unlock()
						dup, derr = d.request(leafID, color, token, n, 2*time.Second)
						if derr == nil {
							break
						}
					}
					if derr != nil {
						errs <- fmt.Errorf("dup retry %v: %w", token, derr)
						return
					}
					if dup.LastSN != resp.LastSN {
						errs <- fmt.Errorf("dup retry %v got SN %v, original %v", token, dup.LastSN, resp.LastSN)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Invariant 1: per color, assigned ranges are globally disjoint.
	byColor := make(map[types.ColorID][]snRange)
	for _, r := range results {
		byColor[r.color] = append(byColor[r.color], snRange{last: r.resp.LastSN, n: r.resp.NRecords})
	}
	for color, ranges := range byColor {
		if len(ranges) != goroutines*ops/len(colors) {
			t.Fatalf("color %v: %d responses, want %d", color, len(ranges), goroutines*ops/len(colors))
		}
		assertDisjoint(t, fmt.Sprintf("color %v", color), ranges)
	}

	// Invariant 2: each closed-loop stream sees strictly increasing SNs
	// (per-color FIFO through lane, pending queue, and owner).
	streams := make(map[string][]result)
	for _, r := range results {
		key := fmt.Sprintf("%d/%v", r.resp.Token>>32, r.color)
		streams[key] = append(streams[key], r)
	}
	for key, rs := range streams {
		sort.Slice(rs, func(i, j int) bool { return rs[i].seq < rs[j].seq })
		for i := 1; i < len(rs); i++ {
			if rs[i].resp.LastSN <= rs[i-1].resp.LastSN {
				t.Fatalf("stream %s: SN went backwards: %v then %v", key, rs[i-1].resp.LastSN, rs[i].resp.LastSN)
			}
		}
	}

	// Invariant 3: wait-free tenant accounting at the entry leaf matches
	// the records actually requested (duplicate retries are attributed
	// too — they are received work, dedup or not).
	wantTenant := make(map[types.TenantID]uint64)
	for g := range sent {
		for color, n := range sent[g] {
			wantTenant[tenants[color]] += n
		}
	}
	got := leaf.TenantOrdered()
	for tenant, want := range wantTenant {
		if got[tenant] != want {
			t.Errorf("tenant %v ordered = %d, want %d (full map: %v)", tenant, got[tenant], want, got)
		}
	}
}

// TestEpochBumpDuringFlood forces leadership stand-downs and epoch bumps
// into the middle of a request flood and checks the packed SN word's
// poison protocol: every response carries an epoch this node actually
// served, no SN is minted while stood down, and each epoch's ranges tile
// contiguously from counter 1 — no gaps (lost creep) and no overlaps
// (double assignment) across the transitions.
func TestEpochBumpDuringFlood(t *testing.T) {
	net := transport.NewNetwork(transport.ZeroLink())
	topo := topology.New()
	if err := topo.AddRegion(0, 0, 9000, nil); err != nil {
		t.Fatal(err)
	}
	cfg := stressSeqConfig(9000, 0, topo)
	cfg.OrderWorkers = 4
	s, err := New(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	// The collector is the "replica" every request names: it records each
	// OrderResp broadcast to it.
	var respMu sync.Mutex
	var resps []proto.OrderResp
	if _, err := net.Register(100, func(from types.NodeID, msg transport.Message) {
		if resp, ok := msg.(proto.OrderResp); ok {
			respMu.Lock()
			resps = append(resps, resp)
			respMu.Unlock()
		}
	}); err != nil {
		t.Fatal(err)
	}

	served := map[uint32]bool{}
	var servedMu sync.Mutex
	s.mu.Lock()
	served[uint32(s.epoch)] = true
	s.mu.Unlock()

	// Fire-and-forget flood: unique tokens, no duplicates — every response
	// must be a fresh assignment.
	const senders = 4
	const perSender = 1500
	var floodWG sync.WaitGroup
	for i := 0; i < senders; i++ {
		ep, err := net.Register(types.NodeID(200+i), func(types.NodeID, transport.Message) {})
		if err != nil {
			t.Fatal(err)
		}
		floodWG.Add(1)
		go func(i int, ep transport.Endpoint) {
			defer floodWG.Done()
			fid := uint32(200 + i)
			for c := 0; c < perSender; c++ {
				req := proto.OrderReq{
					Color:    0,
					Token:    types.MakeToken(fid, uint32(c+1)),
					NRecords: uint32(c%3 + 1),
					Replicas: []types.NodeID{100},
				}
				_ = ep.Send(9000, req)
			}
		}(i, ep)
	}

	// The bumper: poison the word (stand down), then re-serve under a
	// bumped epoch, repeatedly, while the flood is in flight.
	bumperDone := make(chan struct{})
	go func() {
		defer close(bumperDone)
		for k := 0; k < 8; k++ {
			time.Sleep(time.Millisecond)
			s.mu.Lock()
			s.stopServingLocked()
			s.mu.Unlock()
			time.Sleep(500 * time.Microsecond)
			s.mu.Lock()
			s.setEpochLocked(s.epoch + 1)
			servedMu.Lock()
			served[uint32(s.epoch)] = true
			servedMu.Unlock()
			s.beginServingLocked()
			s.mu.Unlock()
		}
	}()

	floodWG.Wait()
	<-bumperDone
	// Let queued deliveries drain; the final epoch is serving, so anything
	// still in flight either assigns under it or was already dropped.
	time.Sleep(100 * time.Millisecond)

	respMu.Lock()
	defer respMu.Unlock()
	if len(resps) == 0 {
		t.Fatal("flood produced no responses")
	}
	if len(resps) > senders*perSender {
		t.Fatalf("more responses (%d) than requests (%d)", len(resps), senders*perSender)
	}

	byEpoch := make(map[uint32][]snRange)
	for _, r := range resps {
		ep := r.LastSN.Epoch()
		if ep == 0 {
			t.Fatalf("response %v carries the poisoned epoch 0", r.LastSN)
		}
		servedMu.Lock()
		ok := served[ep]
		servedMu.Unlock()
		if !ok {
			t.Fatalf("response %v carries epoch %d, which this node never served (served: %v)", r.LastSN, ep, served)
		}
		byEpoch[ep] = append(byEpoch[ep], snRange{last: r.LastSN, n: r.NRecords})
	}

	// Per epoch, the assigned ranges must tile exactly (1..max]: every
	// fetch-add that succeeded was broadcast, the counter starts at 0 on
	// beginServing, and an epoch is served exactly once.
	for ep, ranges := range byEpoch {
		sort.Slice(ranges, func(i, j int) bool { return ranges[i].last < ranges[j].last })
		var expect uint64
		for _, r := range ranges {
			start := uint64(r.last.Counter()) - uint64(r.n)
			if start != expect {
				t.Fatalf("epoch %d: range (%d, %d] does not tile (expected to start at %d)",
					ep, start, r.last.Counter(), expect)
			}
			expect = uint64(r.last.Counter())
		}
	}
	t.Logf("flood: %d/%d responses across %d served epochs, stats %+v",
		len(resps), senders*perSender, len(byEpoch), s.Stats())
}
