package seq

import (
	"sync"
	"testing"
	"time"

	"flexlog/internal/proto"
	"flexlog/internal/topology"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// fakeReplica records order responses and auto-acks SeqInit messages.
type fakeReplica struct {
	id types.NodeID
	ep transport.Endpoint

	mu    sync.Mutex
	resps []proto.OrderResp
	inits []proto.SeqInit
}

func newFakeReplica(t *testing.T, net *transport.Network, id types.NodeID) *fakeReplica {
	t.Helper()
	r := &fakeReplica{id: id}
	ep, err := net.Register(id, func(from types.NodeID, msg transport.Message) {
		switch m := msg.(type) {
		case proto.OrderResp:
			r.mu.Lock()
			r.resps = append(r.resps, m)
			r.mu.Unlock()
		case proto.OrderRespBatch:
			r.mu.Lock()
			for _, it := range m.Items {
				r.resps = append(r.resps, proto.OrderResp{Token: it.Token, LastSN: it.LastSN, NRecords: it.NRecords, Color: m.Color})
			}
			r.mu.Unlock()
		case proto.SeqInit:
			r.mu.Lock()
			r.inits = append(r.inits, m)
			r.mu.Unlock()
			r.ep.Send(m.From, proto.SeqInitAck{Epoch: m.Epoch, From: r.id})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	r.ep = ep
	return r
}

func (r *fakeReplica) responses() []proto.OrderResp {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]proto.OrderResp(nil), r.resps...)
}

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out: %s", msg)
}

func testConfig(id types.NodeID, region types.ColorID, topo *topology.Topology) Config {
	cfg := DefaultConfig()
	cfg.ID = id
	cfg.Region = region
	cfg.Topo = topo
	cfg.BatchInterval = 0
	cfg.HeartbeatInterval = 2 * time.Millisecond
	cfg.FailureTimeout = 12 * time.Millisecond
	cfg.RetryTimeout = 30 * time.Millisecond
	cfg.StartAsLeader = true
	return cfg
}

// singleRoot spins up one root sequencer (region 0) with three fake
// replicas forming shard 1.
func singleRoot(t *testing.T) (*transport.Network, *Sequencer, []*fakeReplica) {
	t.Helper()
	net := transport.NewNetwork(transport.ZeroLink())
	topo := topology.New()
	if err := topo.AddRegion(0, 0, 100, nil); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddShard(1, 0, []types.NodeID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	var reps []*fakeReplica
	for _, id := range []types.NodeID{1, 2, 3} {
		reps = append(reps, newFakeReplica(t, net, id))
	}
	s, err := New(testConfig(100, 0, topo), net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return net, s, reps
}

func orderReq(tokenCtr uint32, color types.ColorID, n uint32) proto.OrderReq {
	return proto.OrderReq{
		Color:    color,
		Token:    types.MakeToken(9, tokenCtr),
		NRecords: n,
		Shard:    1,
		Replicas: []types.NodeID{1, 2, 3},
	}
}

func TestRootAssignsAndBroadcasts(t *testing.T) {
	_, s, reps := singleRoot(t)
	reps[0].ep.Send(100, orderReq(1, 0, 1))
	for _, r := range reps {
		r := r
		waitUntil(t, time.Second, func() bool { return len(r.responses()) == 1 }, "OResp broadcast")
	}
	resp := reps[0].responses()[0]
	if resp.LastSN != types.MakeSN(1, 1) {
		t.Fatalf("first SN = %v", resp.LastSN)
	}
	if got := s.Stats().Assigned; got != 1 {
		t.Fatalf("assigned = %d", got)
	}
}

func TestSNsAreMonotonic(t *testing.T) {
	_, _, reps := singleRoot(t)
	const n = 50
	for i := uint32(1); i <= n; i++ {
		reps[0].ep.Send(100, orderReq(i, 0, 1))
	}
	r := reps[1]
	waitUntil(t, 2*time.Second, func() bool { return len(r.responses()) == n }, "all responses")
	seen := make(map[types.SN]bool)
	for _, resp := range r.responses() {
		if seen[resp.LastSN] {
			t.Fatalf("duplicate SN %v", resp.LastSN)
		}
		seen[resp.LastSN] = true
	}
}

func TestBatchGetsRange(t *testing.T) {
	_, _, reps := singleRoot(t)
	reps[0].ep.Send(100, orderReq(1, 0, 5))
	r := reps[0]
	waitUntil(t, time.Second, func() bool { return len(r.responses()) == 1 }, "batch response")
	resp := r.responses()[0]
	if resp.LastSN != types.MakeSN(1, 5) || resp.NRecords != 5 {
		t.Fatalf("batch resp = %+v", resp)
	}
}

func TestTokenDedupSameSN(t *testing.T) {
	_, s, reps := singleRoot(t)
	req := orderReq(1, 0, 1)
	reps[0].ep.Send(100, req)
	r := reps[0]
	waitUntil(t, time.Second, func() bool { return len(r.responses()) == 1 }, "first response")
	// Retry (e.g. replica missed the OResp): must re-broadcast the SAME SN.
	reps[1].ep.Send(100, req)
	waitUntil(t, time.Second, func() bool { return len(r.responses()) == 2 }, "retry rebroadcast")
	rs := r.responses()
	if rs[0].LastSN != rs[1].LastSN {
		t.Fatalf("retry changed SN: %v vs %v", rs[0].LastSN, rs[1].LastSN)
	}
	if s.Stats().Assigned != 1 {
		t.Fatalf("assigned = %d, dedup failed", s.Stats().Assigned)
	}
}

// twoLevel builds root(0) ← leaf(1), shard 1 on leaf region 1.
func twoLevel(t *testing.T, batch time.Duration) (*transport.Network, *Sequencer, *Sequencer, []*fakeReplica) {
	t.Helper()
	net := transport.NewNetwork(transport.ZeroLink())
	topo := topology.New()
	topo.AddRegion(0, 0, 100, nil)
	topo.AddRegion(1, 0, 110, nil)
	topo.AddShard(1, 1, []types.NodeID{1, 2, 3})
	var reps []*fakeReplica
	for _, id := range []types.NodeID{1, 2, 3} {
		reps = append(reps, newFakeReplica(t, net, id))
	}
	root, err := New(testConfig(100, 0, topo), net)
	if err != nil {
		t.Fatal(err)
	}
	cfgLeaf := testConfig(110, 1, topo)
	cfgLeaf.BatchInterval = batch
	leaf, err := New(cfgLeaf, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { root.Stop(); leaf.Stop() })
	return net, root, leaf, reps
}

func TestTreeForwardsToRoot(t *testing.T) {
	_, root, leaf, reps := twoLevel(t, 0)
	// A total-order request (color 0) entering at the leaf must be
	// assigned by the root.
	req := orderReq(1, 0, 1)
	reps[0].ep.Send(110, req)
	r := reps[2]
	waitUntil(t, time.Second, func() bool { return len(r.responses()) == 1 }, "tree order response")
	if got := root.Stats().Assigned; got != 1 {
		t.Fatalf("root assigned = %d", got)
	}
	if got := leaf.Stats().BatchesSent; got == 0 {
		t.Fatal("leaf sent no batches")
	}
	if resp := r.responses()[0]; resp.Color != 0 {
		t.Fatalf("resp color = %v", resp.Color)
	}
}

func TestLeafOwnedColorSkipsRoot(t *testing.T) {
	_, root, leaf, reps := twoLevel(t, 0)
	// FlexLog-P: appends to the leaf's own color are serialized by the
	// leaf alone (§9.1).
	reps[0].ep.Send(110, orderReq(1, 1, 1))
	r := reps[0]
	waitUntil(t, time.Second, func() bool { return len(r.responses()) == 1 }, "leaf-local response")
	if root.Stats().Assigned != 0 {
		t.Fatal("root should not be involved in leaf-colored appends")
	}
	if leaf.Stats().Assigned != 1 {
		t.Fatalf("leaf assigned = %d", leaf.Stats().Assigned)
	}
}

func TestAggregationMergesRequests(t *testing.T) {
	_, root, leaf, reps := twoLevel(t, 3*time.Millisecond)
	const n = 20
	for i := uint32(1); i <= n; i++ {
		reps[0].ep.Send(110, orderReq(i, 0, 1))
	}
	r := reps[1]
	waitUntil(t, 2*time.Second, func() bool { return len(r.responses()) == n }, "all aggregated responses")
	// With a 3ms window, far fewer upward batches than requests.
	if sent := leaf.Stats().BatchesSent; sent >= n {
		t.Fatalf("aggregation ineffective: %d batches for %d reqs", sent, n)
	}
	if root.Stats().Assigned != n {
		t.Fatalf("root assigned = %d", root.Stats().Assigned)
	}
	// All SNs distinct.
	seen := make(map[types.SN]bool)
	for _, resp := range r.responses() {
		if seen[resp.LastSN] {
			t.Fatalf("duplicate SN %v", resp.LastSN)
		}
		seen[resp.LastSN] = true
	}
}

func TestThreeLevelTree(t *testing.T) {
	net := transport.NewNetwork(transport.ZeroLink())
	topo := topology.New()
	topo.AddRegion(0, 0, 100, nil)
	topo.AddRegion(1, 0, 110, nil)
	topo.AddRegion(2, 1, 120, nil)
	topo.AddShard(1, 2, []types.NodeID{1, 2, 3})
	var reps []*fakeReplica
	for _, id := range []types.NodeID{1, 2, 3} {
		reps = append(reps, newFakeReplica(t, net, id))
	}
	root, _ := New(testConfig(100, 0, topo), net)
	mid, _ := New(testConfig(110, 1, topo), net)
	leaf, _ := New(testConfig(120, 2, topo), net)
	t.Cleanup(func() { root.Stop(); mid.Stop(); leaf.Stop() })

	// Color 0 → root assigns (via middle).
	reps[0].ep.Send(120, orderReq(1, 0, 1))
	// Color 1 → middle assigns.
	reps[0].ep.Send(120, orderReq(2, 1, 1))
	// Color 2 → leaf assigns.
	reps[0].ep.Send(120, orderReq(3, 2, 1))
	r := reps[0]
	waitUntil(t, 2*time.Second, func() bool { return len(r.responses()) == 3 }, "three-level responses")
	if root.Stats().Assigned != 1 || mid.Stats().Assigned != 1 || leaf.Stats().Assigned != 1 {
		t.Fatalf("assigned root=%d mid=%d leaf=%d",
			root.Stats().Assigned, mid.Stats().Assigned, leaf.Stats().Assigned)
	}
	colors := map[types.ColorID]bool{}
	for _, resp := range r.responses() {
		colors[resp.Color] = true
	}
	if len(colors) != 3 {
		t.Fatalf("response colors = %v", colors)
	}
}

func TestStoppedSequencerDropsRequests(t *testing.T) {
	_, s, reps := singleRoot(t)
	s.Stop()
	reps[0].ep.Send(100, orderReq(1, 0, 1))
	time.Sleep(20 * time.Millisecond)
	if len(reps[0].responses()) != 0 {
		t.Fatal("stopped sequencer answered a request")
	}
	if s.Role() != RoleStopped {
		t.Fatalf("role = %v", s.Role())
	}
}

func TestRoleStrings(t *testing.T) {
	if RoleLeader.String() != "leader" || RoleBackup.String() != "backup" || RoleStopped.String() != "stopped" {
		t.Fatal("role strings wrong")
	}
}
