package seq

import (
	"testing"
	"time"

	"flexlog/internal/proto"
	"flexlog/internal/topology"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// TestAggregatedRangesAreDisjoint pushes multi-record batches through a
// two-level tree and verifies the root-assigned ranges are split without
// overlap or gap reuse (§5.2: "assigns all SNs in the range [s, s+n]").
func TestAggregatedRangesAreDisjoint(t *testing.T) {
	_, root, _, reps := twoLevel(t, 2*time.Millisecond)
	const n = 30
	sizes := make(map[types.Token]uint32)
	for i := uint32(1); i <= n; i++ {
		size := (i % 4) + 1 // batches of 1..4 records
		req := orderReq(i, 0, size)
		sizes[req.Token] = size
		reps[0].ep.Send(110, req)
	}
	r := reps[1]
	waitUntil(t, 5*time.Second, func() bool { return len(r.responses()) == n }, "all range responses")

	type span struct{ first, last uint64 }
	var spans []span
	var total uint32
	for _, resp := range r.responses() {
		size := sizes[resp.Token]
		if resp.NRecords != size {
			t.Fatalf("resp NRecords = %d, want %d", resp.NRecords, size)
		}
		last := uint64(resp.LastSN)
		spans = append(spans, span{first: last - uint64(size) + 1, last: last})
		total += size
	}
	// Overlap check.
	for i, a := range spans {
		for j, b := range spans {
			if i == j {
				continue
			}
			if a.first <= b.last && b.first <= a.last {
				t.Fatalf("ranges overlap: [%d,%d] and [%d,%d]", a.first, a.last, b.first, b.last)
			}
		}
	}
	if got := root.Stats().Assigned; got != uint64(total) {
		t.Fatalf("root assigned %d, want %d", got, total)
	}
}

// TestChildBatchResendIsDeduplicated verifies the owner's (from, batchID)
// dedup: a leaf that re-sends an aggregated batch (e.g. after a timeout)
// must get the same range back instead of a fresh one.
func TestChildBatchResendIsDeduplicated(t *testing.T) {
	net := transport.NewNetwork(transport.ZeroLink())
	topo := topology.New()
	topo.AddRegion(0, 0, 100, nil)
	topo.AddRegion(1, 0, 110, nil)
	root, err := New(testConfig(100, 0, topo), net)
	if err != nil {
		t.Fatal(err)
	}
	defer root.Stop()

	// A bare endpoint impersonating the leaf sequencer.
	respCh := make(chan proto.AggOrderResp, 16)
	leafEP, err := net.Register(110, func(from types.NodeID, msg transport.Message) {
		if m, ok := msg.(proto.AggOrderResp); ok {
			respCh <- m
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	req := proto.AggOrderReq{Color: 0, BatchID: 7, Total: 5, From: 110}
	leafEP.Send(100, req)
	first := <-respCh
	leafEP.Send(100, req) // resend after a (simulated) timeout
	second := <-respCh
	if first.LastSN != second.LastSN || first.BatchID != 7 {
		t.Fatalf("resend changed range: %v vs %v", first.LastSN, second.LastSN)
	}
	if root.Stats().Assigned != 5 {
		t.Fatalf("root assigned %d, want 5 (dedup failed)", root.Stats().Assigned)
	}
	// A distinct batch id gets a fresh, adjacent range.
	leafEP.Send(100, proto.AggOrderReq{Color: 0, BatchID: 8, Total: 3, From: 110})
	third := <-respCh
	if third.LastSN != first.LastSN+3 {
		t.Fatalf("fresh batch range = %v, want %v", third.LastSN, first.LastSN+3)
	}
}

// TestMisroutedColorDropped: a request for a color outside the tree is
// dropped (stat counted), not assigned.
func TestMisroutedColorDropped(t *testing.T) {
	_, s, reps := singleRoot(t)
	reps[0].ep.Send(100, orderReq(1, 42, 1)) // color 42 does not exist
	waitUntil(t, 2*time.Second, func() bool { return s.Stats().DroppedStale > 0 }, "misroute dropped")
	if s.Stats().Assigned != 0 {
		t.Fatal("misrouted request was assigned")
	}
}

// TestEpochInSNsAfterManualElection: SNs issued by a new leader carry the
// new epoch in their high bits, so they compare above all old SNs even
// with a reset counter (§5.2 Safety).
func TestEpochInSNsAfterManualElection(t *testing.T) {
	net, group, reps := failoverCluster(t)
	reps[0].ep.Send(100, orderReq(1, 0, 1))
	r := reps[0]
	waitUntil(t, 2*time.Second, func() bool { return len(r.responses()) == 1 }, "old-epoch SN")
	oldSN := r.responses()[0].LastSN

	group[100].Crash()
	net.Isolate(100)
	waitUntil(t, 10*time.Second, func() bool {
		return group[102].Role() == RoleLeader && group[102].Serving()
	}, "failover")

	reps[0].ep.Send(102, orderReq(2, 0, 1))
	waitUntil(t, 2*time.Second, func() bool { return len(r.responses()) == 2 }, "new-epoch SN")
	newSN := r.responses()[1].LastSN
	if newSN.Counter() > oldSN.Counter() {
		t.Logf("note: new counter %d restarted above old %d", newSN.Counter(), oldSN.Counter())
	}
	if newSN.Epoch() <= oldSN.Epoch() {
		t.Fatalf("epoch did not advance: %v -> %v", oldSN, newSN)
	}
	if newSN <= oldSN {
		t.Fatalf("SN order violated across failover: %v <= %v", newSN, oldSN)
	}
}
