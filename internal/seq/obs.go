package seq

import (
	"fmt"
	"slices"

	"flexlog/internal/obs"
	"flexlog/internal/types"
)

// PublishObs registers the sequencer's counters and role with the
// observability registry. Publication is func-backed: the mutex-guarded
// Stats struct stays the single source of truth and is snapshotted at
// scrape time (one lock per family read — scrapes are rare).
func (s *Sequencer) PublishObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	lb := obs.Labels{"node": fmt.Sprintf("%d", s.cfg.ID)}
	for _, c := range []struct {
		name string
		help string
		fn   func(Stats) uint64
	}{
		{"flexlog_seq_assigned_total", "Sequence numbers issued by this node as region owner.", func(st Stats) uint64 { return st.Assigned }},
		{"flexlog_seq_direct_reqs_total", "Order requests received from replicas (including batch items).", func(st Stats) uint64 { return st.DirectReqs }},
		{"flexlog_seq_req_batches_total", "Coalesced OrderReqBatch messages received.", func(st Stats) uint64 { return st.ReqBatches }},
		{"flexlog_seq_child_reqs_total", "Aggregated requests received from child sequencers.", func(st Stats) uint64 { return st.ChildReqs }},
		{"flexlog_seq_batches_sent_total", "Aggregated requests sent to the parent sequencer.", func(st Stats) uint64 { return st.BatchesSent }},
		{"flexlog_seq_resends_total", "Unanswered aggregated requests re-sent (parent failover).", func(st Stats) uint64 { return st.Resends }},
		{"flexlog_seq_elections_total", "Leaderships won by this node.", func(st Stats) uint64 { return st.Elections }},
		{"flexlog_seq_epoch_grants_total", "Epochs granted to child groups.", func(st Stats) uint64 { return st.EpochGrants }},
		{"flexlog_seq_dup_tokens_total", "Duplicate order requests absorbed by the token cache.", func(st Stats) uint64 { return st.DupTokens }},
		{"flexlog_seq_dropped_stale_total", "Stale-epoch messages dropped.", func(st Stats) uint64 { return st.DroppedStale }},
	} {
		fn := c.fn
		reg.CounterFunc(c.name, c.help, lb, func() uint64 { return fn(s.Stats()) })
	}
	reg.GaugeFunc("flexlog_seq_epoch",
		"Ordering epoch this sequencer currently serves.", lb,
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.epoch)
		})
	// Per-tenant ordering accounting, one series per declared tenant plus
	// the default tenant (unclaimed colors) — cardinality is bounded by
	// the operator's tenant list, never by traffic.
	if len(s.cfg.TenantOf) > 0 {
		tenants := []types.TenantID{types.DefaultTenant}
		for _, t := range s.cfg.TenantOf {
			if !slices.Contains(tenants, t) {
				tenants = append(tenants, t)
			}
		}
		slices.Sort(tenants)
		for _, t := range tenants {
			id := t
			tlb := obs.Labels{"node": fmt.Sprintf("%d", s.cfg.ID), "tenant": fmt.Sprintf("%d", id)}
			reg.CounterFunc("flexlog_seq_tenant_ordered_total",
				"Records ordered per tenant, attributed at the entry sequencer by the color→tenant map.",
				tlb, func() uint64 { return s.TenantOrdered()[id] })
		}
	}
	reg.GaugeFunc("flexlog_seq_leader",
		"1 when this node is its group's serving leader, else 0.", lb,
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.role == RoleLeader && s.serving {
				return 1
			}
			return 0
		})
}
