package seq

import (
	"fmt"
	"slices"

	"flexlog/internal/obs"
	"flexlog/internal/types"
)

// PublishObs registers the sequencer's counters and role with the
// observability registry. Publication is func-backed and wait-free end to
// end: every family reads atomic counters (or the packed SN word), so a
// /metrics scrape can never stall the ordering path.
func (s *Sequencer) PublishObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	lb := obs.Labels{"node": fmt.Sprintf("%d", s.cfg.ID)}
	for _, c := range []struct {
		name string
		help string
		fn   func(Stats) uint64
	}{
		{"flexlog_seq_assigned_total", "Sequence numbers issued by this node as region owner.", func(st Stats) uint64 { return st.Assigned }},
		{"flexlog_seq_direct_reqs_total", "Order requests received from replicas (including batch items).", func(st Stats) uint64 { return st.DirectReqs }},
		{"flexlog_seq_req_batches_total", "Coalesced OrderReqBatch messages received.", func(st Stats) uint64 { return st.ReqBatches }},
		{"flexlog_seq_child_reqs_total", "Aggregated requests received from child sequencers.", func(st Stats) uint64 { return st.ChildReqs }},
		{"flexlog_seq_batches_sent_total", "Aggregated requests sent to the parent sequencer.", func(st Stats) uint64 { return st.BatchesSent }},
		{"flexlog_seq_resends_total", "Unanswered aggregated requests re-sent (parent failover).", func(st Stats) uint64 { return st.Resends }},
		{"flexlog_seq_elections_total", "Leaderships won by this node.", func(st Stats) uint64 { return st.Elections }},
		{"flexlog_seq_epoch_grants_total", "Epochs granted to child groups.", func(st Stats) uint64 { return st.EpochGrants }},
		{"flexlog_seq_dup_tokens_total", "Duplicate order requests absorbed by the token cache.", func(st Stats) uint64 { return st.DupTokens }},
		{"flexlog_seq_dropped_stale_total", "Stale-epoch messages dropped.", func(st Stats) uint64 { return st.DroppedStale }},
		{"flexlog_seq_flush_rounds_total", "Flusher passes over the pending per-color queues.", func(st Stats) uint64 { return st.FlushRounds }},
		{"flexlog_seq_urgent_flushes_total", "Flush rounds triggered early by a queue crossing FlushThreshold.", func(st Stats) uint64 { return st.UrgentFlushes }},
		{"flexlog_seq_pipelined_batches_total", "Upward batches sent while a prior round for the same color was still unanswered.", func(st Stats) uint64 { return st.PipelinedBatches }},
	} {
		fn := c.fn
		reg.CounterFunc(c.name, c.help, lb, func() uint64 { return fn(s.Stats()) })
	}
	reg.GaugeFunc("flexlog_seq_epoch",
		"Ordering epoch this sequencer currently serves.", lb,
		func() float64 { return float64(s.Epoch()) })
	reg.GaugeFunc("flexlog_seq_pending_records",
		"Records waiting in the per-color pending queues for the next upward flush.", lb,
		func() float64 {
			var n int64
			for _, q := range s.pendingQueues() {
				n += q.nrec.Load()
			}
			if n < 0 {
				n = 0
			}
			return float64(n)
		})
	reg.GaugeFunc("flexlog_seq_inflight_batches",
		"Aggregated upward batches awaiting a parent response.", lb,
		func() float64 {
			n := 0
			s.inflight.Range(func(_, _ any) bool {
				n++
				return true
			})
			return float64(n)
		})
	// Per-tenant ordering accounting, one series per declared tenant plus
	// the default tenant (unclaimed colors) — cardinality is bounded by
	// the operator's tenant list, never by traffic.
	if len(s.cfg.TenantOf) > 0 {
		tenants := []types.TenantID{types.DefaultTenant}
		for _, t := range s.cfg.TenantOf {
			if !slices.Contains(tenants, t) {
				tenants = append(tenants, t)
			}
		}
		slices.Sort(tenants)
		for _, t := range tenants {
			id := t
			tlb := obs.Labels{"node": fmt.Sprintf("%d", s.cfg.ID), "tenant": fmt.Sprintf("%d", id)}
			reg.CounterFunc("flexlog_seq_tenant_ordered_total",
				"Records ordered per tenant, attributed at the entry sequencer by the color→tenant map.",
				tlb, func() uint64 { return s.TenantOrdered()[id] })
		}
	}
	reg.GaugeFunc("flexlog_seq_leader",
		"1 when this node is its group's serving leader, else 0.", lb,
		func() float64 {
			if s.Serving() {
				return 1
			}
			return 0
		})
}
