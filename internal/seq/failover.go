package seq

import (
	"time"

	"flexlog/internal/proto"
	"flexlog/internal/types"
)

// This file implements §5.2 "Sequencer replication": heartbeats, split-brain
// avoidance, the epoch-claim election among backups, and the SeqInit
// handshake with the region's replicas that gates a new leader's service.

// timerLoop drives heartbeats, failure detection and in-flight resends.
func (s *Sequencer) timerLoop() {
	defer s.stopped.Done()
	interval := s.cfg.HeartbeatInterval
	if interval <= 0 {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
		}
		s.tick()
	}
}

func (s *Sequencer) tick() {
	now := time.Now()
	s.mu.Lock()
	role := s.role
	epoch := s.epoch
	s.mu.Unlock()

	switch role {
	case RoleLeader:
		s.leaderTick(now, epoch)
	case RoleBackup:
		s.backupTick(now, epoch)
	}
	s.resendExpired(now)
}

// group returns this sequencer group's stable member list (the initial
// leader and its 2f backups; leadership moves within this set).
func (s *Sequencer) group() []types.NodeID {
	si, err := s.topo.Sequencer(s.cfg.Region)
	if err != nil {
		return nil
	}
	return si.Members
}

// peers returns the group without this node.
func (s *Sequencer) peers() []types.NodeID {
	var out []types.NodeID
	for _, id := range s.group() {
		if id != s.cfg.ID {
			out = append(out, id)
		}
	}
	return out
}

// majority returns the quorum size of the group (f+1 of 2f+1).
func (s *Sequencer) majority() int {
	n := len(s.group())
	if n == 0 {
		return 1
	}
	return n/2 + 1
}

func (s *Sequencer) leaderTick(now time.Time, epoch types.Epoch) {
	peers := s.peers()
	for _, b := range peers {
		s.ep.Send(b, proto.SeqHeartbeat{Epoch: epoch, From: s.cfg.ID})
	}
	// Re-send SeqInit to replicas that have not acknowledged yet (their
	// sync-phase may still be running, or the message raced a recovery).
	s.mu.Lock()
	if !s.serving && s.initAcks != nil {
		var unacked []types.NodeID
		for r, acked := range s.initAcks {
			if !acked {
				unacked = append(unacked, r)
			}
		}
		id := s.cfg.ID
		s.mu.Unlock()
		for _, r := range unacked {
			s.ep.Send(r, proto.SeqInit{Epoch: epoch, From: id})
		}
	} else {
		s.mu.Unlock()
	}
	if len(peers) == 0 {
		return // singleton group: no split brain possible
	}
	// Split-brain avoidance: count peers acked within the failure window;
	// with self, we need a majority or we must stand down (§5.2 "a (old)
	// sequencer shuts down if it does not receive heartbeats from the
	// majority for some time").
	s.mu.Lock()
	live := 1 // self
	for _, t := range s.hbAcks {
		if now.Sub(t) <= s.cfg.FailureTimeout {
			live++
		}
	}
	if live < s.majority() && s.sawFirstAck() {
		s.role = RoleBackup
		s.stopServingLocked()
		s.lastLeaderHB = now // restart failure detection as a backup
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

// sawFirstAck avoids a leader standing down before backups had any chance
// to ack (process start). Caller holds s.mu.
func (s *Sequencer) sawFirstAck() bool {
	return len(s.hbAcks) > 0
}

func (s *Sequencer) backupTick(now time.Time, epoch types.Epoch) {
	s.mu.Lock()
	silent := now.Sub(s.lastLeaderHB)
	claiming := s.initEpoch > s.epoch // already running a claim/init
	if claiming && now.Sub(s.claimStart) > 4*s.cfg.FailureTimeout {
		// The claim stalled (e.g. the quorum was partitioned away):
		// abandon it so the next tick can try a fresh epoch.
		s.initEpoch = 0
		s.initAcks = nil
		claiming = false
	}
	s.mu.Unlock()
	if claiming {
		return
	}
	// Stagger candidacy so the highest node id moves first (§5.2: the new
	// sequencer is the backup with the highest epoch and node-id).
	if silent < s.cfg.FailureTimeout+s.staggerDelay() {
		return
	}
	// Claim one above everything we know: both the last epoch we saw a
	// leader use and the highest epoch we granted to someone else. This
	// guarantees at most one leader per epoch even across chained
	// failovers, keeping SNs strictly increasing (§5.2 Safety).
	s.mu.Lock()
	base := epoch
	if s.grantedEpoch > base {
		base = s.grantedEpoch
	}
	s.mu.Unlock()
	s.startClaim(base + 1)
}

// staggerDelay gives higher-id nodes a shorter wait before claiming.
func (s *Sequencer) staggerDelay() time.Duration {
	var maxID types.NodeID
	for _, id := range s.group() {
		if id > maxID {
			maxID = id
		}
	}
	diff := time.Duration(maxID - s.cfg.ID)
	return diff * s.cfg.HeartbeatInterval
}

// startClaim begins an election for the given epoch.
func (s *Sequencer) startClaim(epoch types.Epoch) {
	s.mu.Lock()
	if s.role != RoleBackup || epoch <= s.epoch || epoch <= s.grantedEpoch {
		s.mu.Unlock()
		return
	}
	s.initEpoch = epoch
	s.claimStart = time.Now()
	s.initAcks = map[types.NodeID]bool{s.cfg.ID: true} // vote for self
	// Self-grant.
	if epoch > s.grantedEpoch {
		s.grantedEpoch = epoch
		s.grantedTo = s.cfg.ID
	}
	peers := s.peers()
	id := s.cfg.ID
	s.mu.Unlock()
	for _, p := range peers {
		s.ep.Send(p, proto.EpochClaim{Epoch: epoch, From: id})
	}
	// Singleton group wins immediately.
	s.mu.Lock()
	if len(s.initAcks) >= s.majority() && s.initEpoch == epoch {
		s.becomeLeaderLocked(epoch)
	}
	s.mu.Unlock()
}

func (s *Sequencer) onEpochClaim(m proto.EpochClaim) {
	s.mu.Lock()
	if s.role == RoleStopped {
		s.mu.Unlock()
		return
	}
	now := time.Now()
	// Leader stickiness: a claim triggered by lost heartbeats on one link
	// must not depose a live leader. A leader that can still reach a
	// majority rejects instead of stepping down; a backup that heard the
	// leader recently (within the failure window, minus slack for beats in
	// flight) rejects instead of granting. The claimant abandons without
	// adopting our epoch (see proto.EpochReject.LeaderAlive).
	if m.Epoch > s.epoch {
		if s.role == RoleLeader {
			live := 1 // self
			for _, t := range s.hbAcks {
				if now.Sub(t) <= s.cfg.FailureTimeout {
					live++
				}
			}
			if live >= s.majority() || !s.sawFirstAck() {
				reject := proto.EpochReject{Epoch: s.epoch, Claimant: s.cfg.ID, LeaderAlive: true}
				s.mu.Unlock()
				s.ep.Send(m.From, reject)
				return
			}
		}
		if s.role == RoleBackup {
			window := s.cfg.FailureTimeout - 2*s.cfg.HeartbeatInterval
			if window > 0 && !s.lastLeaderBeat.IsZero() && now.Sub(s.lastLeaderBeat) < window {
				reject := proto.EpochReject{Epoch: s.epoch, LeaderAlive: true}
				s.mu.Unlock()
				s.ep.Send(m.From, reject)
				return
			}
		}
	}
	// Grant each epoch at most once (ensuring a unique winner per epoch);
	// re-grant idempotently to the same claimant.
	switch {
	case m.Epoch > s.grantedEpoch:
		s.grantedEpoch = m.Epoch
		s.grantedTo = m.From
	case m.Epoch == s.grantedEpoch && m.From == s.grantedTo:
		// idempotent re-grant
	default:
		reject := proto.EpochReject{Epoch: s.grantedEpoch, Claimant: s.grantedTo}
		s.mu.Unlock()
		s.ep.Send(m.From, reject)
		return
	}
	s.c.epochGrants.Add(1)
	// A claim is also evidence the old leader died; observing a higher
	// epoch makes us step down if we were leader.
	if s.role == RoleLeader && m.Epoch > s.epoch {
		s.role = RoleBackup
		s.stopServingLocked()
	}
	s.lastLeaderHB = time.Now() // suppress our own candidacy for a beat
	grant := proto.EpochGrant{Epoch: m.Epoch, From: s.cfg.ID}
	s.mu.Unlock()
	s.ep.Send(m.From, grant)
}

func (s *Sequencer) onEpochGrant(m proto.EpochGrant) {
	s.mu.Lock()
	if s.role != RoleBackup || m.Epoch != s.initEpoch || s.initAcks == nil {
		s.mu.Unlock()
		return
	}
	s.initAcks[m.From] = true
	if len(s.initAcks) >= s.majority() {
		s.becomeLeaderLocked(m.Epoch)
	}
	s.mu.Unlock()
}

func (s *Sequencer) onEpochReject(m proto.EpochReject) {
	s.mu.Lock()
	if s.role != RoleBackup {
		s.mu.Unlock()
		return
	}
	if m.LeaderAlive {
		// Stickiness rejection: the leader is alive, our silence was lost
		// heartbeats. Abandon the claim WITHOUT adopting the epoch — our
		// epoch must stay low enough to accept the live leader's
		// heartbeats, or we would claim again forever (epoch inflation).
		s.initEpoch = 0
		s.initAcks = nil
		s.lastLeaderHB = time.Now()
		s.mu.Unlock()
		return
	}
	// We lost this epoch. Adopt the higher epoch knowledge and back off;
	// if the winner dies we will claim epoch+1 later.
	if m.Epoch > s.epoch {
		s.setEpochLocked(m.Epoch)
	}
	if m.Epoch >= s.initEpoch {
		s.initEpoch = 0
		s.initAcks = nil
		s.lastLeaderHB = time.Now()
	}
	s.mu.Unlock()
}

// becomeLeaderLocked transitions to leadership of the epoch after the
// majority granted it. The epoch is already replicated on a majority (the
// grants). Service starts only after every replica of the region
// acknowledges SeqInit (§5.2 "every new sequencer sends initialization
// requests to all replicas and waits to be acknowledged by all").
// Caller holds s.mu.
func (s *Sequencer) becomeLeaderLocked(epoch types.Epoch) {
	s.role = RoleLeader
	s.setEpochLocked(epoch)
	s.stopServingLocked() // not serving until SeqInit completes; counter restarts at 0 then
	s.c.elections.Add(1)
	s.initEpoch = epoch
	s.hbAcks = make(map[types.NodeID]time.Time)
	// Reset aggregation state: in-flight work from the old epoch is
	// re-driven by replica retries. Token dedup entries invalidate lazily
	// (they are stamped with their creation epoch), and pending-queue
	// members from the old term are dropped at the next flush the same
	// way. aggSeen deliberately survives: a child's resend after our
	// failover must still get its ORIGINAL assigned range back.
	s.inflight.Range(func(k, _ any) bool {
		s.inflight.Delete(k)
		return true
	})
	for _, q := range s.pendingQueues() {
		q.outstanding.Store(0)
	}

	replicas := s.topo.ReplicasInRegion(s.cfg.Region)
	s.initAcks = make(map[types.NodeID]bool, len(replicas))
	for _, r := range replicas {
		s.initAcks[r] = false
	}
	id := s.cfg.ID
	go func() {
		s.topo.SetLeader(s.cfg.Region, id)
		if len(replicas) == 0 {
			s.mu.Lock()
			if s.role == RoleLeader && s.epoch == epoch {
				s.beginServingLocked()
			}
			s.mu.Unlock()
			return
		}
		for _, r := range replicas {
			s.ep.Send(r, proto.SeqInit{Epoch: epoch, From: id})
		}
	}()
}

func (s *Sequencer) onSeqInitAck(m proto.SeqInitAck) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.role != RoleLeader || m.Epoch != s.epoch || s.serving {
		return
	}
	if _, expected := s.initAcks[m.From]; !expected {
		return
	}
	s.initAcks[m.From] = true
	for _, acked := range s.initAcks {
		if !acked {
			return
		}
	}
	s.beginServingLocked()
}

func (s *Sequencer) onHeartbeat(m proto.SeqHeartbeat) {
	s.mu.Lock()
	if s.role == RoleStopped {
		s.mu.Unlock()
		return
	}
	if m.Epoch > s.epoch {
		s.setEpochLocked(m.Epoch)
		if s.role == RoleLeader {
			// A higher-epoch leader exists: stand down.
			s.role = RoleBackup
			s.stopServingLocked()
		}
	}
	if m.Epoch >= s.epoch {
		now := time.Now()
		s.lastLeaderHB = now
		s.lastLeaderBeat = now
	}
	epoch := s.epoch
	id := s.cfg.ID
	s.mu.Unlock()
	s.ep.Send(m.From, proto.SeqHeartbeatAck{Epoch: epoch, From: id})
}

func (s *Sequencer) onHeartbeatAck(m proto.SeqHeartbeatAck) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.role != RoleLeader {
		return
	}
	if m.Epoch > s.epoch {
		// Backups know a newer epoch: a successor was elected. Stand down.
		s.setEpochLocked(m.Epoch)
		s.role = RoleBackup
		s.stopServingLocked()
		s.lastLeaderHB = time.Now()
		return
	}
	s.hbAcks[m.From] = time.Now()
}

// resendExpired re-sends aggregated batches that have waited longer than
// RetryTimeout (e.g. across a parent sequencer failover). Batch ids are
// deduplicated by the owner, so resending is safe.
func (s *Sequencer) resendExpired(now time.Time) {
	if s.cfg.RetryTimeout <= 0 {
		return
	}
	type out struct {
		req proto.AggOrderReq
		to  types.NodeID
	}
	var outs []out
	se := s.servingEpoch()
	s.inflight.Range(func(k, v any) bool {
		id := k.(uint64)
		inf := v.(*inflight)
		if se != 0 && inf.epoch != se {
			// Flushed under a dead local term (raced the re-election's
			// inflight clear): discard, replicas re-drive the work.
			if _, loaded := s.inflight.LoadAndDelete(id); loaded {
				s.queueFor(inf.color).outstanding.Add(-1)
			}
			return true
		}
		sent := inf.sentAt.Load()
		if now.UnixNano()-sent < int64(s.cfg.RetryTimeout) {
			return true
		}
		// CAS the send stamp so concurrent ticks re-send at most once.
		if !inf.sentAt.CompareAndSwap(sent, now.UnixNano()) {
			return true
		}
		parent, ok := s.parentLeader()
		if !ok {
			return true
		}
		s.c.resends.Add(1)
		outs = append(outs, out{
			req: proto.AggOrderReq{Color: inf.color, BatchID: id, Total: inf.total, From: s.cfg.ID},
			to:  parent,
		})
		return true
	})
	for _, o := range outs {
		s.ep.Send(o.to, o.req)
	}
}
