package seq

import (
	"testing"
	"time"

	"flexlog/internal/topology"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// failoverCluster builds a root sequencer group {100 leader, 101, 102
// backups} over region 0 with shard 1 = replicas {1,2,3}.
func failoverCluster(t *testing.T) (*transport.Network, map[types.NodeID]*Sequencer, []*fakeReplica) {
	t.Helper()
	net := transport.NewNetwork(transport.ZeroLink())
	topo := topology.New()
	if err := topo.AddRegion(0, 0, 100, []types.NodeID{101, 102}); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddShard(1, 0, []types.NodeID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	var reps []*fakeReplica
	for _, id := range []types.NodeID{1, 2, 3} {
		reps = append(reps, newFakeReplica(t, net, id))
	}
	group := make(map[types.NodeID]*Sequencer)
	for _, id := range []types.NodeID{100, 101, 102} {
		cfg := testConfig(id, 0, topo)
		cfg.StartAsLeader = id == 100
		s, err := New(cfg, net)
		if err != nil {
			t.Fatal(err)
		}
		group[id] = s
		t.Cleanup(s.Stop)
	}
	return net, group, reps
}

func TestBackupsStayPassive(t *testing.T) {
	_, group, reps := failoverCluster(t)
	time.Sleep(30 * time.Millisecond) // several heartbeat rounds
	if group[100].Role() != RoleLeader || !group[100].Serving() {
		t.Fatal("initial leader lost leadership without failure")
	}
	if group[101].Role() != RoleBackup || group[102].Role() != RoleBackup {
		t.Fatal("backups left passive role without failure")
	}
	// Requests still served by the leader.
	reps[0].ep.Send(100, orderReq(1, 0, 1))
	r := reps[0]
	waitUntil(t, time.Second, func() bool { return len(r.responses()) == 1 }, "request served")
}

func TestFailoverElectsHighestBackup(t *testing.T) {
	net, group, reps := failoverCluster(t)
	// Kill the leader.
	group[100].Crash()
	net.Isolate(100)

	// The highest-id backup (102) must take over.
	waitUntil(t, 5*time.Second, func() bool {
		return group[102].Role() == RoleLeader && group[102].Serving()
	}, "backup 102 becomes serving leader")
	if group[101].Role() != RoleBackup {
		t.Fatalf("node 101 role = %v, want backup", group[101].Role())
	}
	if e := group[102].Epoch(); e < 2 {
		t.Fatalf("new leader epoch = %d, want >= 2", e)
	}
	// Replicas were initialized by the new leader.
	reps[0].mu.Lock()
	inits := len(reps[0].inits)
	reps[0].mu.Unlock()
	if inits == 0 {
		t.Fatal("replicas never received SeqInit")
	}

	// New SNs come from the new epoch and exceed all epoch-1 SNs.
	reps[0].ep.Send(102, orderReq(1, 0, 1))
	r := reps[0]
	waitUntil(t, time.Second, func() bool { return len(r.responses()) == 1 }, "post-failover request")
	sn := r.responses()[0].LastSN
	if sn.Epoch() < 2 {
		t.Fatalf("post-failover SN epoch = %d", sn.Epoch())
	}
	if sn <= types.MakeSN(1, ^uint32(0)) {
		t.Fatalf("post-failover SN %v not above every epoch-1 SN", sn)
	}
	// Topology routing updated.
	if l, _ := group[102].topo.Leader(0); l != 102 {
		t.Fatalf("topology leader = %v", l)
	}
}

func TestPartitionedLeaderStandsDown(t *testing.T) {
	net, group, _ := failoverCluster(t)
	// Let the leader see some acks first.
	time.Sleep(15 * time.Millisecond)
	// Partition the leader away from both backups (it can still reach the
	// replicas): it must stop serving to avoid split brain.
	net.Partition(100, 101)
	net.Partition(100, 102)
	waitUntil(t, 5*time.Second, func() bool {
		return group[100].Role() != RoleLeader || !group[100].Serving()
	}, "old leader stands down")
	// Backups elect a new leader among themselves.
	waitUntil(t, 5*time.Second, func() bool {
		return group[102].Role() == RoleLeader && group[102].Serving()
	}, "partition-side election")
	// Heal: the old leader rejoins as a backup and adopts the new epoch.
	net.HealAll()
	waitUntil(t, 5*time.Second, func() bool {
		return group[100].Role() == RoleBackup && group[100].Epoch() >= group[102].Epoch()
	}, "old leader rejoins as backup")
	if group[102].Role() != RoleLeader {
		t.Fatal("healing demoted the new leader")
	}
}

func TestEpochGrantedAtMostOnce(t *testing.T) {
	// Two concurrent claimants for the same epoch: only one can win it.
	net := transport.NewNetwork(transport.ZeroLink())
	topo := topology.New()
	topo.AddRegion(0, 0, 100, []types.NodeID{101, 102})
	cfgA := testConfig(101, 0, topo)
	cfgA.StartAsLeader = false
	cfgB := testConfig(102, 0, topo)
	cfgB.StartAsLeader = false
	// Node 100 never starts: the backups must sort leadership among
	// themselves (quorum of 2 within the 3-member group).
	a, _ := New(cfgA, net)
	b, _ := New(cfgB, net)
	t.Cleanup(func() { a.Stop(); b.Stop() })
	waitUntil(t, 5*time.Second, func() bool {
		ra, rb := a.Role() == RoleLeader && a.Serving(), b.Role() == RoleLeader && b.Serving()
		return (ra || rb) && !(ra && rb)
	}, "exactly one leader")
	// And they agree on the epoch eventually.
	waitUntil(t, 5*time.Second, func() bool {
		return a.Epoch() == b.Epoch() || a.Role() != RoleLeader || b.Role() != RoleLeader
	}, "epoch agreement")
}

func TestSecondFailover(t *testing.T) {
	net, group, reps := failoverCluster(t)
	group[100].Crash()
	net.Isolate(100)
	waitUntil(t, 5*time.Second, func() bool {
		return group[102].Role() == RoleLeader && group[102].Serving()
	}, "first failover")
	// Both backups may transiently claim successive epochs; wait until the
	// loser has stood down so exactly one leader remains.
	waitUntil(t, 5*time.Second, func() bool {
		return group[101].Role() == RoleBackup
	}, "roles settled after first failover")
	e1 := group[102].Epoch()

	group[102].Crash()
	net.Isolate(102)
	// 101 is the only backup left; group majority is 2 of 3, so 101 alone
	// cannot win — heal 100 back in (crash-recovery of the old leader as a
	// group member process).
	net.Rejoin(100)
	cfg := testConfig(100, 0, group[101].topo)
	cfg.StartAsLeader = false
	net.Deregister(100)
	restarted, err := New(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(restarted.Stop)
	waitUntil(t, 5*time.Second, func() bool {
		return (group[101].Role() == RoleLeader && group[101].Serving()) ||
			(restarted.Role() == RoleLeader && restarted.Serving())
	}, "second failover")

	// SNs issued under the new leadership carry a higher epoch.
	leaderID := types.NodeID(101)
	leader := group[101]
	if restarted.Role() == RoleLeader {
		leaderID, leader = 100, restarted
	}
	if leader.Epoch() <= e1 {
		t.Fatalf("second failover epoch %d not above %d", leader.Epoch(), e1)
	}
	reps[1].ep.Send(leaderID, orderReq(7, 0, 1))
	r := reps[1]
	waitUntil(t, time.Second, func() bool { return len(r.responses()) >= 1 }, "request after second failover")
}
