package seq

import (
	"sync"
	"sync/atomic"

	"flexlog/internal/types"
)

// This file holds the lock-free machinery of the sequencer hot path
// (DESIGN.md §14): the packed epoch/counter SN word, the striped token
// dedup cache, the per-color MPSC pending queues, the striped child-batch
// dedup map, and the all-atomic counter block. An ordering round touches
// only these structures; the big s.mu survives solely for the cold
// election/failover paths in failover.go.

// ---- Packed SN word ----
//
// snWord packs (servingEpoch<<32)|counter into one atomic word. A nonzero
// epoch half means this node is an initialized serving leader; every
// stand-down path stores 0 ("poison"), so a racing fetch-add that lands on
// a poisoned word is detected by its zero epoch half and dropped. The word
// only ever holds THIS node's own serving epoch — adopting another
// leader's epoch into it would let a deposed leader's in-flight add mint
// an SN inside the successor's epoch, colliding with the successor's
// counter. Epochs start at 1 and SN 0 is invalid (types.InvalidSN), so 0
// is unambiguous as the not-serving sentinel.

// servingEpoch returns the epoch this node currently serves, or 0 when it
// is not an initialized leader. This is the hot path's only role check.
func (s *Sequencer) servingEpoch() types.Epoch {
	return types.Epoch(s.snWord.Load() >> 32)
}

// assignFast reserves n sequence numbers with a single atomic fetch-add
// and returns the last SN of the range. ok=false means the node was not
// serving at the instant of the add (stand-down raced the request); the
// caller drops the request like the pre-lock-free role check did.
func (s *Sequencer) assignFast(n uint32) (types.SN, bool) {
	v := s.snWord.Add(uint64(n))
	if v>>32 == 0 {
		// Poisoned word: not serving. Best-effort undo of the counter
		// creep — only the last racing adder's CAS can succeed, and any
		// leftover creep is overwritten when service next begins.
		s.snWord.CompareAndSwap(v, 0)
		return 0, false
	}
	if uint32(v) < n {
		// The per-epoch counter wrapped into the epoch half. 2^32 SNs per
		// epoch is the design envelope (§5.2 packs epoch and counter into
		// one 64-bit SN); crossing it would silently corrupt the epoch, so
		// fail loudly instead.
		panic("seq: per-epoch SN counter overflow (>2^32 SNs in one epoch)")
	}
	s.c.assigned.Add(uint64(n))
	return types.SN(v), true
}

// beginServingLocked publishes the current epoch into the SN word with a
// zeroed counter — the moment the hot path starts assigning. Caller holds
// s.mu and has set role/epoch/serving.
func (s *Sequencer) beginServingLocked() {
	s.serving = true
	s.snWord.Store(uint64(s.epoch) << 32)
}

// stopServingLocked poisons the SN word so racing fast-path adds fail.
// Caller holds s.mu.
func (s *Sequencer) stopServingLocked() {
	s.serving = false
	s.snWord.Store(0)
}

// setEpochLocked updates the epoch and its wait-free mirror (Epoch() and
// the obs gauge read the mirror without taking s.mu). Caller holds s.mu.
func (s *Sequencer) setEpochLocked(e types.Epoch) {
	s.epoch = e
	s.epochMirror.Store(uint32(e))
}

// ---- Striped token dedup (Alg. 1 lines 28–31) ----

// tokenStripes is the number of independent token-cache shards. 64 keeps
// cross-core contention negligible at a few cache lines of overhead.
const tokenStripes = 64

// tokenEntry is the dedup state for one token, stamped with the serving
// epoch it was created under. Entries from older epochs are treated as
// absent (and lazily deleted), which replicates the pre-lock-free
// clear-the-map-on-election semantics without a global lock: a new
// leadership never trusts dedup state from a previous term.
type tokenEntry struct {
	epoch    types.Epoch
	assigned bool
	lastSN   types.SN
}

// tokenStripe is one shard of the token cache with its own FIFO eviction
// ring (cap = TokenCacheSize/tokenStripes).
type tokenStripe struct {
	mu    sync.Mutex
	m     map[types.Token]tokenEntry
	order []types.Token
	head  int // order[head:] are live, in insertion order
}

// lookup returns the entry for t unless it predates the serving epoch se,
// in which case it is deleted (a new leadership never trusts dedup state
// from a previous term). Entries stamped NEWER than se are hits: epochs
// only grow, so a newer stamp means the caller's se read is the stale side
// of an in-flight epoch bump and the entry belongs to the current term.
// Caller holds st.mu.
func (st *tokenStripe) lookup(t types.Token, se types.Epoch) (tokenEntry, bool) {
	e, ok := st.m[t]
	if !ok {
		return tokenEntry{}, false
	}
	if e.epoch < se {
		delete(st.m, t) // stale term; its order slot ages out naturally
		return tokenEntry{}, false
	}
	return e, true
}

// remember inserts or overwrites dedup state with FIFO eviction. Caller
// holds st.mu.
func (st *tokenStripe) remember(t types.Token, e tokenEntry, cap int) {
	if _, exists := st.m[t]; !exists {
		st.order = append(st.order, t)
	}
	st.m[t] = e
	for len(st.m) > cap && st.head < len(st.order) {
		old := st.order[st.head]
		st.head++
		delete(st.m, old)
	}
	if st.head > 0 && st.head == len(st.order) {
		st.order = st.order[:0]
		st.head = 0
	}
}

// tokenStripeFor hashes a token onto its stripe.
func (s *Sequencer) tokenStripeFor(t types.Token) *tokenStripe {
	return &s.tokens[mix64(uint64(t))%tokenStripes]
}

// mix64 is a splitmix64-style finalizer: cheap, and good enough to spread
// the (fid<<32|counter) token structure across stripes.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// ---- Per-color MPSC pending queues ----

// pnode is one pending aggregation member on an intrusive MPSC list,
// stamped with the serving epoch it was enqueued under (stale nodes are
// dropped at drain time — the lock-free equivalent of clearing the
// pending map on re-election).
type pnode struct {
	next  atomic.Pointer[pnode]
	m     member
	epoch types.Epoch
}

// colorQueue is a Vyukov-style intrusive MPSC queue: any handler
// goroutine pushes, only the flusher pops. Per-color FIFO holds because a
// color's messages arrive on one lane worker (or the single delivery
// loop) and the push is a single atomic swap.
type colorQueue struct {
	color types.ColorID
	tail  atomic.Pointer[pnode] // producers swap the new node in here
	head  *pnode                // consumer-owned; head is the stub

	// nrec is the pending record count — the adaptive flusher's urgency
	// signal and the obs pending gauge.
	nrec atomic.Int64
	// outstanding counts this color's upward batches in flight; >1 at
	// send time means the flusher pipelined a round on top of an
	// unanswered one.
	outstanding atomic.Int32
}

func newColorQueue(c types.ColorID) *colorQueue {
	stub := &pnode{}
	q := &colorQueue{color: c, head: stub}
	q.tail.Store(stub)
	return q
}

// push appends one member (multi-producer safe, wait-free).
func (q *colorQueue) push(m member, e types.Epoch) {
	n := &pnode{m: m, epoch: e}
	prev := q.tail.Swap(n)
	prev.next.Store(n)
	q.nrec.Add(int64(m.n))
}

// pop removes the next member (flusher only). ok=false when the queue is
// empty or a producer's link is mid-flight — the producer's kick after
// linking guarantees the flusher runs again, so nothing is lost.
func (q *colorQueue) pop() (member, types.Epoch, bool) {
	next := q.head.next.Load()
	if next == nil {
		return member{}, 0, false
	}
	q.head = next
	m := next.m
	e := next.epoch
	next.m = member{} // release request references from the new stub
	q.nrec.Add(-int64(m.n))
	return m, e, true
}

// queueFor returns color's pending queue, creating it on first use. The
// read path is one lock-free sync.Map hit; creation also appends to the
// copy-on-write pendList snapshot the flusher iterates.
func (s *Sequencer) queueFor(color types.ColorID) *colorQueue {
	if v, ok := s.pendQ.Load(color); ok {
		return v.(*colorQueue)
	}
	q := newColorQueue(color)
	if actual, loaded := s.pendQ.LoadOrStore(color, q); loaded {
		return actual.(*colorQueue)
	}
	s.pendMu.Lock()
	var list []*colorQueue
	if old := s.pendList.Load(); old != nil {
		list = append(list, *old...)
	}
	list = append(list, q)
	s.pendList.Store(&list)
	s.pendMu.Unlock()
	return q
}

// pendingQueues snapshots the flusher's iteration list.
func (s *Sequencer) pendingQueues() []*colorQueue {
	if p := s.pendList.Load(); p != nil {
		return *p
	}
	return nil
}

// ---- Striped child-batch dedup (owner side) ----

const aggStripes = 64

// aggStripe is one shard of the (from, batchID) → assigned-SN dedup map.
// The stripe mutex is held across the check-assign-record sequence so a
// duplicate resend racing the original can never burn a second SN range.
// Entries deliberately survive epoch changes, like the pre-lock-free map:
// a resend after failover must get the ORIGINAL assignment back.
type aggStripe struct {
	mu sync.Mutex
	m  map[childKey]types.SN
}

func (s *Sequencer) aggStripeFor(k childKey) *aggStripe {
	return &s.aggSeen[mix64(uint64(k.from)^k.batchID<<17)%aggStripes]
}

// ---- Atomic counter block ----

// counters is the all-atomic backing of Stats(): every hot-path increment
// is a single uncontended-in-practice atomic add, and a scrape is a plain
// load — nothing on the ordering path ever blocks on accounting.
type counters struct {
	assigned     atomic.Uint64
	directReqs   atomic.Uint64
	reqBatches   atomic.Uint64
	childReqs    atomic.Uint64
	batchesSent  atomic.Uint64
	resends      atomic.Uint64
	elections    atomic.Uint64
	epochGrants  atomic.Uint64
	dupTokens    atomic.Uint64
	droppedStale atomic.Uint64

	flushRounds      atomic.Uint64
	urgentFlushes    atomic.Uint64
	pipelinedBatches atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Assigned:         c.assigned.Load(),
		DirectReqs:       c.directReqs.Load(),
		ReqBatches:       c.reqBatches.Load(),
		ChildReqs:        c.childReqs.Load(),
		BatchesSent:      c.batchesSent.Load(),
		Resends:          c.resends.Load(),
		Elections:        c.elections.Load(),
		EpochGrants:      c.epochGrants.Load(),
		DupTokens:        c.dupTokens.Load(),
		DroppedStale:     c.droppedStale.Load(),
		FlushRounds:      c.flushRounds.Load(),
		UrgentFlushes:    c.urgentFlushes.Load(),
		PipelinedBatches: c.pipelinedBatches.Load(),
	}
}

// ---- Striped per-tenant accounting ----

// buildTenantCounters constructs the read-only color→counter table from
// the deployment's tenant declarations. Counters are shared per tenant;
// after construction the maps are never mutated, so the hot path reads
// them without synchronization and bumps a per-tenant atomic.
func (s *Sequencer) buildTenantCounters() {
	if len(s.cfg.TenantOf) == 0 {
		return
	}
	s.tenantTotals = map[types.TenantID]*atomic.Uint64{
		types.DefaultTenant: new(atomic.Uint64),
	}
	s.tenantByColor = make(map[types.ColorID]*atomic.Uint64, len(s.cfg.TenantOf))
	for color, tenant := range s.cfg.TenantOf {
		ctr := s.tenantTotals[tenant]
		if ctr == nil {
			ctr = new(atomic.Uint64)
			s.tenantTotals[tenant] = ctr
		}
		s.tenantByColor[color] = ctr
	}
}

// noteTenant attributes n ordered records to the tenant owning color —
// one map read plus one atomic add, no locks.
func (s *Sequencer) noteTenant(color types.ColorID, n uint64) {
	if s.tenantTotals == nil {
		return
	}
	ctr := s.tenantByColor[color]
	if ctr == nil {
		ctr = s.tenantTotals[types.DefaultTenant]
	}
	ctr.Add(n)
}
