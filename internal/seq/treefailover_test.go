package seq

import (
	"testing"
	"time"

	"flexlog/internal/topology"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// TestRootFailoverRedrivesInflightBatches covers §6.3 "Failures of the
// root and middle sequencers": a leaf with aggregated batches in flight to
// a crashed root re-sends them after the retry timeout, the new root
// leader answers, and every pending order request completes with a
// new-epoch SN. Batch-id dedup at the owner makes the resends safe.
func TestRootFailoverRedrivesInflightBatches(t *testing.T) {
	net := transport.NewNetwork(transport.ZeroLink())
	topo := topology.New()
	// Root group with one backup; a leaf below it.
	if err := topo.AddRegion(0, 0, 100, []types.NodeID{101}); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddRegion(1, 0, 110, nil); err != nil {
		t.Fatal(err)
	}
	topo.AddShard(1, 1, []types.NodeID{1})
	rep := newFakeReplica(t, net, 1)

	mkCfg := func(id types.NodeID, region types.ColorID, leader bool) Config {
		cfg := testConfig(id, region, topo)
		cfg.StartAsLeader = leader
		cfg.RetryTimeout = 40 * time.Millisecond
		return cfg
	}
	root, err := New(mkCfg(100, 0, true), net)
	if err != nil {
		t.Fatal(err)
	}
	defer root.Stop()
	backup, err := New(mkCfg(101, 0, false), net)
	if err != nil {
		t.Fatal(err)
	}
	defer backup.Stop()
	leaf, err := New(mkCfg(110, 1, true), net)
	if err != nil {
		t.Fatal(err)
	}
	defer leaf.Stop()

	// Warm up: one request through the healthy tree.
	rep.ep.Send(110, orderReq(1, 0, 1))
	waitUntil(t, 5*time.Second, func() bool { return len(rep.responses()) == 1 }, "warmup response")

	// Cut the root away from the leaf only: the leaf's next batch is lost
	// in flight, while the backup still sees the root's heartbeats stop
	// once we crash it.
	net.Partition(110, 100)
	rep.ep.Send(110, orderReq(2, 0, 1))
	time.Sleep(10 * time.Millisecond) // batch sent into the void
	root.Crash()
	net.Isolate(100)

	// The backup must take over (it needs the majority of the 2-node
	// group: itself + ... group is {100,101}, majority 2 — with 100 dead
	// it cannot win). Use Rejoin to let the old root grant the claim:
	// instead, heal the partition so the claim can reach node 100? Node
	// 100 is stopped and ignores messages. With a 2-member group and a
	// dead leader, election cannot reach quorum — this mirrors f=0 for
	// 2f=1 backups. So use the leaf-resend path against the SAME root
	// after a restart instead.
	net.Rejoin(100)
	net.Heal(110, 100)
	net.Deregister(100)
	restarted, err := New(mkCfg(100, 0, false), net)
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Stop()

	// One of {restarted 100, backup 101} wins the next epoch and serves;
	// the leaf re-drives its in-flight batch to the current leader and
	// request 2 completes.
	waitUntil(t, 10*time.Second, func() bool { return len(rep.responses()) >= 2 }, "re-driven batch response")
	resp := rep.responses()[1]
	if resp.Token != types.MakeToken(9, 2) {
		t.Fatalf("unexpected token %v", resp.Token)
	}
	if resp.LastSN.Epoch() < 2 {
		t.Fatalf("re-driven SN still in epoch %d", resp.LastSN.Epoch())
	}
	if leaf.Stats().Resends == 0 {
		t.Fatal("leaf never re-sent the in-flight batch")
	}

	// Subsequent requests keep working against the new leader.
	rep.ep.Send(110, orderReq(3, 0, 1))
	waitUntil(t, 5*time.Second, func() bool { return len(rep.responses()) >= 3 }, "post-failover request")
}
