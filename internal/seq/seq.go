// Package seq implements FlexLog's ordering layer (§5.2): an n-ary tree of
// sequencer nodes that assign 64-bit sequence numbers of the form
// (epoch<<32)|counter to order requests.
//
// Each sequencer owns one region (color). An order request for color c
// enters the tree at the leaf sequencer of the issuing shard and climbs
// toward the root sequencer of region c, which assigns the SN range; the
// response descends the same path. Sequencers below the owner act as
// aggregators: order requests for the same color that arrive within the
// batching interval are merged into a single upward request for the sum of
// their record counts (§5.2 "To improve throughput…").
//
// The ordering hot path is lock-free (DESIGN.md §14): SN assignment is one
// atomic fetch-add on a packed (epoch<<32)|counter word, token dedup and
// owner-side batch dedup live in striped maps, pending aggregation uses
// per-color MPSC queues, and all accounting is atomic. The global mutex
// survives only on the election/failover slow path (failover.go), which
// swaps the packed word when epochs change. With OrderWorkers > 0 the
// transport delivers order traffic on a keyed write lane (per-color FIFO,
// colors parallel) so concurrent colors never serialize on one goroutine.
//
// Fault tolerance follows §5.2 "Sequencer replication": each sequencer has
// 2f stateless backups replicating only the epoch number. Failure is
// detected by heartbeat silence; the new leader is the backup with the
// highest (epoch, node-id), elected via at-most-once epoch grants; it first
// secures its epoch on a majority of the group, then initializes every
// replica of its region (SeqInit) and only then serves. An old leader that
// cannot reach a majority of backups shuts itself down (split-brain
// avoidance).
package seq

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"flexlog/internal/proto"
	"flexlog/internal/topology"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// Role is a sequencer node's current role.
type Role int

// Sequencer roles.
const (
	RoleBackup Role = iota
	RoleLeader
	RoleStopped
)

func (r Role) String() string {
	switch r {
	case RoleBackup:
		return "backup"
	case RoleLeader:
		return "leader"
	default:
		return "stopped"
	}
}

// Config parameterizes one sequencer node.
type Config struct {
	ID     types.NodeID
	Region types.ColorID
	Topo   *topology.Topology

	// BatchInterval is the aggregation window for upward order requests
	// (1 µs in the paper's evaluation). Zero still batches whatever is
	// pending when the flusher runs, i.e. it effectively disables the
	// deliberate wait.
	BatchInterval time.Duration
	// HeartbeatInterval is the leader→backup heartbeat period.
	HeartbeatInterval time.Duration
	// FailureTimeout is the silence span after which a failure is assumed
	// (the Δ bound of §4).
	FailureTimeout time.Duration
	// RetryTimeout is how long an aggregated upward request may stay
	// unanswered before it is re-sent (parent failover re-drive).
	RetryTimeout time.Duration
	// TokenCacheSize bounds the token-deduplication map (Alg. 1 line 31).
	TokenCacheSize int
	// StartAsLeader makes this node the initial leader of its group.
	StartAsLeader bool
	// InitialEpoch overrides the starting epoch (default 1). Deployments
	// that restart a whole sequencer group cold must resume above every
	// epoch ever used, or the new leader would re-issue old SNs —
	// cmd/flexlog-server persists the epoch and passes lastEpoch+1 here.
	InitialEpoch types.Epoch
	// TenantOf attributes ordering work to tenants by the color an order
	// request names (qos.ColorMap of the deployment's tenant declarations).
	// Nil disables per-tenant sequencer accounting.
	TenantOf map[types.ColorID]types.TenantID

	// OrderWorkers sizes the keyed write lane order traffic is delivered
	// on: messages for different colors run on different workers while one
	// color stays FIFO on one worker. 0 keeps the single delivery loop.
	OrderWorkers int
	// FlushThreshold is the pending-record count at which a color's queue
	// triggers an urgent flush, skipping the rest of the BatchInterval
	// linger (only when PipelinedFlush is on). 0 uses a default of 256;
	// negative disables urgency entirely.
	FlushThreshold int
	// PipelinedFlush lets the flusher start a new upward round for a color
	// while the previous round is still unanswered, and combines the
	// rounds of multiple colors into a single AggOrderReqBatch frame to
	// the parent. Off, the flusher behaves like the classic one-frame-
	// per-color stage (still correct, just not overlapped).
	PipelinedFlush bool
}

// defaultFlushThreshold is the urgent-flush pending-record trigger when
// Config.FlushThreshold is zero.
const defaultFlushThreshold = 256

// DefaultConfig fills the timing knobs with test-friendly values.
func DefaultConfig() Config {
	return Config{
		BatchInterval:     time.Microsecond,
		HeartbeatInterval: 5 * time.Millisecond,
		FailureTimeout:    25 * time.Millisecond,
		RetryTimeout:      50 * time.Millisecond,
		TokenCacheSize:    1 << 20,
		PipelinedFlush:    true,
	}
}

// member is one constituent of a pending/in-flight aggregated batch.
type member struct {
	// Exactly one of req / child is set.
	req   *proto.OrderReq // direct request from a replica (entry point)
	child *childBatch     // merged batch from a child sequencer
	n     uint32
}

type childBatch struct {
	batchID uint64
	from    types.NodeID
}

// inflight tracks an aggregated request sent to the parent. It is stamped
// with the serving epoch it was flushed under; a new local leadership
// clears the inflight table, and the resend loop discards stragglers whose
// epoch no longer matches.
type inflight struct {
	color   types.ColorID
	epoch   types.Epoch
	total   uint32
	members []member
	sentAt  atomic.Int64 // unix nanos of the last (re)send
}

// Stats counts ordering-layer activity.
type Stats struct {
	Assigned     uint64 // SNs issued by this node as region owner
	DirectReqs   uint64 // order requests received from replicas (incl. batch items)
	ReqBatches   uint64 // coalesced OrderReqBatch messages received
	ChildReqs    uint64 // aggregated requests received from children (incl. batch items)
	BatchesSent  uint64 // aggregated requests sent to the parent
	Resends      uint64
	Elections    uint64 // leaderships won by this node
	EpochGrants  uint64
	DupTokens    uint64
	DroppedStale uint64

	FlushRounds      uint64 // flusher passes over the pending queues
	UrgentFlushes    uint64 // rounds triggered early by FlushThreshold
	PipelinedBatches uint64 // upward batches sent while a prior round for the same color was unanswered
}

// Sequencer is one ordering-layer node.
type Sequencer struct {
	cfg  Config
	topo *topology.Topology
	ep   transport.Endpoint

	// ready gates message handling on endpoint publication: delivery
	// starts at Register, before the constructor stores s.ep.
	ready atomic.Bool

	// ---- Lock-free hot path (hotpath.go) ----

	snWord      atomic.Uint64 // packed (servingEpoch<<32)|counter; 0 = not serving
	epochMirror atomic.Uint32 // wait-free mirror of epoch for Epoch()/obs
	c           counters

	tokens   [tokenStripes]tokenStripe // entry-side token dedup
	tokenCap int                       // per-stripe FIFO capacity

	pendQ    sync.Map // types.ColorID → *colorQueue
	pendMu   sync.Mutex
	pendList atomic.Pointer[[]*colorQueue]

	aggSeen [aggStripes]aggStripe // owner-side dedup of child batches

	batchSeq atomic.Uint64
	inflight sync.Map // batchID uint64 → *inflight

	urgent         atomic.Bool // a queue crossed FlushThreshold; skip the linger
	flushThreshold int

	// Per-tenant accounting: built once at construction, read-only after.
	tenantTotals  map[types.TenantID]*atomic.Uint64
	tenantByColor map[types.ColorID]*atomic.Uint64

	// ---- Cold path: election/failover state (failover.go) ----

	mu      sync.Mutex
	role    Role
	epoch   types.Epoch
	serving bool // leader finished initialization and serves requests

	grantedEpoch types.Epoch
	grantedTo    types.NodeID
	// lastLeaderHB is the candidacy-suppression clock: reset by leader
	// heartbeats but ALSO by grants and abandoned claims so elections
	// back off. lastLeaderBeat is reset only by an actual current-epoch
	// heartbeat; the stickiness check in onEpochClaim uses it so that a
	// recent grant/abandon is never mistaken for a live leader.
	lastLeaderHB   time.Time
	lastLeaderBeat time.Time
	hbAcks         map[types.NodeID]time.Time
	initAcks       map[types.NodeID]bool
	initEpoch      types.Epoch
	claimStart     time.Time

	stopCh   chan struct{}
	stopped  sync.WaitGroup
	kick     chan struct{} // wakes the flusher
	laneStop func()        // drains handler-wrapped lanes (custom endpoints)
}

type childKey struct {
	from    types.NodeID
	batchID uint64
}

// seqWriteClass keys order traffic onto the write lane: per-color frames
// hash by color (one color stays FIFO on one worker; colors run in
// parallel), multi-color batch frames hash by their sender so a child's
// combined rounds stay ordered. Election and heartbeat traffic stays on
// the inline delivery path.
func seqWriteClass(msg transport.Message) (uint64, bool) {
	switch m := msg.(type) {
	case proto.OrderReq:
		return uint64(m.Color), true
	case proto.OrderReqBatch:
		return uint64(m.Color), true
	case proto.AggOrderReq:
		return uint64(m.Color), true
	case proto.AggOrderResp:
		return uint64(m.Color), true
	case proto.AggOrderReqBatch:
		return uint64(m.From), true
	case proto.AggOrderRespBatch:
		return uint64(m.From), true
	}
	return 0, false
}

// lanes builds the transport lane layout for this sequencer.
func (s *Sequencer) lanes() transport.Lanes {
	return transport.Lanes{
		Write: transport.WriteLaneConfig{
			Workers: s.cfg.OrderWorkers,
			Key:     seqWriteClass,
		},
	}
}

// New creates the sequencer and registers it on the in-process network.
func New(cfg Config, net *transport.Network) (*Sequencer, error) {
	s := newSequencer(cfg)
	var (
		ep  transport.Endpoint
		err error
	)
	if cfg.OrderWorkers > 0 {
		ep, err = net.RegisterWithLanes(cfg.ID, s.handle, s.lanes())
	} else {
		ep, err = net.Register(cfg.ID, s.handle)
	}
	if err != nil {
		return nil, err
	}
	s.ep = ep
	s.ready.Store(true)
	s.start()
	return s, nil
}

// NewWithEndpoint creates the sequencer over an existing endpoint
// constructor (used for TCP deployments). attach must register s.Handle as
// the message handler and return the endpoint.
func NewWithEndpoint(cfg Config, attach func(h transport.Handler) (transport.Endpoint, error)) (*Sequencer, error) {
	s := newSequencer(cfg)
	h := transport.Handler(s.handle)
	if cfg.OrderWorkers > 0 {
		wrapped, _, _, stop := transport.WithLanes(h, s.lanes())
		h = wrapped
		s.laneStop = stop
	}
	ep, err := attach(h)
	if err != nil {
		if s.laneStop != nil {
			s.laneStop()
		}
		return nil, err
	}
	s.ep = ep
	s.ready.Store(true)
	s.start()
	return s, nil
}

func newSequencer(cfg Config) *Sequencer {
	if cfg.TokenCacheSize <= 0 {
		cfg.TokenCacheSize = 1 << 20
	}
	s := &Sequencer{
		cfg:    cfg,
		topo:   cfg.Topo,
		hbAcks: make(map[types.NodeID]time.Time),
		stopCh: make(chan struct{}),
		kick:   make(chan struct{}, 1),
	}
	s.tokenCap = cfg.TokenCacheSize / tokenStripes
	if s.tokenCap < 1 {
		s.tokenCap = 1
	}
	for i := range s.tokens {
		s.tokens[i].m = make(map[types.Token]tokenEntry)
	}
	for i := range s.aggSeen {
		s.aggSeen[i].m = make(map[childKey]types.SN)
	}
	switch {
	case cfg.FlushThreshold > 0:
		s.flushThreshold = cfg.FlushThreshold
	case cfg.FlushThreshold == 0:
		s.flushThreshold = defaultFlushThreshold
	default:
		s.flushThreshold = 0 // disabled
	}
	s.buildTenantCounters()
	epoch := types.Epoch(1)
	if cfg.InitialEpoch > 0 {
		epoch = cfg.InitialEpoch
	}
	if cfg.StartAsLeader {
		s.role = RoleLeader
		s.setEpochLocked(epoch)
		s.beginServingLocked()
	} else {
		s.role = RoleBackup
		s.setEpochLocked(epoch)
		s.lastLeaderHB = time.Now()
	}
	return s
}

func (s *Sequencer) start() {
	s.stopped.Add(2)
	go s.flusherLoop()
	go s.timerLoop()
}

// ID returns this node's id.
func (s *Sequencer) ID() types.NodeID { return s.cfg.ID }

// Region returns the color this sequencer group owns.
func (s *Sequencer) Region() types.ColorID { return s.cfg.Region }

// Role returns the node's current role.
func (s *Sequencer) Role() Role {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.role
}

// Epoch returns the node's current epoch (wait-free).
func (s *Sequencer) Epoch() types.Epoch {
	return types.Epoch(s.epochMirror.Load())
}

// Serving reports whether the node is an initialized, active leader
// (wait-free: the packed SN word's epoch half is nonzero exactly while
// the node serves).
func (s *Sequencer) Serving() bool {
	return s.servingEpoch() != 0
}

// Stats returns a snapshot of the counters (wait-free: plain atomic
// loads, so /metrics scrapes can never stall the ordering path).
func (s *Sequencer) Stats() Stats {
	return s.c.snapshot()
}

// TenantOrdered snapshots the per-tenant ordered-record counters (nil
// when per-tenant accounting is off). Wait-free: the tenant table is
// immutable after construction and each counter is one atomic load.
func (s *Sequencer) TenantOrdered() map[types.TenantID]uint64 {
	if s.tenantTotals == nil {
		return nil
	}
	out := make(map[types.TenantID]uint64, len(s.tenantTotals))
	for t, c := range s.tenantTotals {
		if v := c.Load(); v > 0 {
			out[t] = v
		}
	}
	return out
}

// Stop terminates the node's background loops (graceful shutdown).
func (s *Sequencer) Stop() {
	s.mu.Lock()
	if s.role == RoleStopped {
		s.mu.Unlock()
		return
	}
	s.role = RoleStopped
	s.stopServingLocked()
	close(s.stopCh)
	s.mu.Unlock()
	s.stopped.Wait()
	if s.laneStop != nil {
		s.laneStop()
	}
}

// Crash simulates a crash failure: the node stops processing and emitting
// all messages. Unlike Stop it is meant to be paired with network
// isolation in tests.
func (s *Sequencer) Crash() { s.Stop() }

// handle dispatches one inbound message. Messages racing the constructor
// (delivery starts at Register, before the endpoint is published) are
// dropped; every protocol above re-drives lost messages anyway.
func (s *Sequencer) handle(from types.NodeID, msg transport.Message) {
	if !s.ready.Load() {
		return
	}
	switch m := msg.(type) {
	case proto.OrderReq:
		s.onOrderReq(m)
	case proto.OrderReqBatch:
		s.onOrderReqBatch(from, m)
	case proto.AggOrderReq:
		s.onAggOrderReq(m)
	case proto.AggOrderReqBatch:
		s.onAggOrderReqBatch(m)
	case proto.AggOrderResp:
		s.onAggOrderResp(m)
	case proto.AggOrderRespBatch:
		s.onAggOrderRespBatch(m)
	case proto.SeqHeartbeat:
		s.onHeartbeat(m)
	case proto.SeqHeartbeatAck:
		s.onHeartbeatAck(m)
	case proto.EpochClaim:
		s.onEpochClaim(m)
	case proto.EpochGrant:
		s.onEpochGrant(m)
	case proto.EpochReject:
		s.onEpochReject(m)
	case proto.SeqInitAck:
		s.onSeqInitAck(m)
	case proto.ReplicaHeartbeat:
		// Replica liveness; sequencers do not act on it beyond receipt.
	}
}

// ---- Order request path (lock-free) ----

func (s *Sequencer) onOrderReq(req proto.OrderReq) {
	se := s.servingEpoch()
	if se == 0 {
		s.c.droppedStale.Add(1)
		return
	}
	s.c.directReqs.Add(1)
	s.noteTenant(req.Color, uint64(req.NRecords))
	st := s.tokenStripeFor(req.Token)
	st.mu.Lock()
	if e, ok := st.lookup(req.Token, se); ok {
		st.mu.Unlock()
		s.c.dupTokens.Add(1)
		if e.assigned {
			// Re-broadcast the cached response (a replica retried because
			// it missed the original OResp).
			s.ep.Broadcast(req.Replicas, proto.OrderResp{Token: req.Token, LastSN: e.lastSN, NRecords: req.NRecords, Color: req.Color})
		}
		// Else: still pending in a batch or in flight; the response will
		// reach the shard when the owner answers.
		return
	}
	if req.Color == s.cfg.Region {
		// This node owns the region: assign immediately (Alg. 1 lines
		// 32–35). The stripe lock is held across assign+remember so a
		// racing duplicate can never burn a second range for the token.
		last, ok := s.assignFast(req.NRecords)
		if !ok {
			st.mu.Unlock()
			s.c.droppedStale.Add(1)
			return
		}
		st.remember(req.Token, tokenEntry{epoch: types.Epoch(last.Epoch()), assigned: true, lastSN: last}, s.tokenCap)
		st.mu.Unlock()
		s.ep.Broadcast(req.Replicas, proto.OrderResp{Token: req.Token, LastSN: last, NRecords: req.NRecords, Color: req.Color})
		return
	}
	// Not the owner: aggregate upward (Alg. 1 line 37, merged per §5.2).
	st.remember(req.Token, tokenEntry{epoch: se}, s.tokenCap)
	st.mu.Unlock()
	r := req
	s.enqueue(req.Color, member{req: &r, n: req.NRecords}, se)
}

// onOrderReqBatch handles a replica's coalesced order requests: all items
// share one color and one shard, and — on the owner — are answered with a
// single OrderRespBatch broadcast instead of one OrderResp per token. Dup
// handling preserves the per-token semantics of onOrderReq: already-
// assigned items are re-answered to the SENDER only (the original
// assignment was already broadcast to the whole shard; a retrying replica
// just missed it), items still pending in a batch get no reply (the
// owner's answer will reach the shard), and fresh items are assigned or
// aggregated upward as individual members so the existing AggOrderReq
// machinery splits ranges exactly as before.
func (s *Sequencer) onOrderReqBatch(from types.NodeID, m proto.OrderReqBatch) {
	se := s.servingEpoch()
	if se == 0 {
		s.c.droppedStale.Add(1)
		return
	}
	s.c.reqBatches.Add(1)
	s.c.directReqs.Add(uint64(len(m.Items)))
	var nTotal uint64
	for _, it := range m.Items {
		nTotal += uint64(it.NRecords)
	}
	s.noteTenant(m.Color, nTotal)
	owner := m.Color == s.cfg.Region
	var fresh []proto.OrderRespItem // owner-path assignments → broadcast
	var dups []proto.OrderRespItem  // already-assigned retries → sender only
	for _, it := range m.Items {
		st := s.tokenStripeFor(it.Token)
		st.mu.Lock()
		if e, ok := st.lookup(it.Token, se); ok {
			st.mu.Unlock()
			s.c.dupTokens.Add(1)
			if e.assigned {
				dups = append(dups, proto.OrderRespItem{Token: it.Token, LastSN: e.lastSN, NRecords: it.NRecords})
			}
			continue
		}
		if owner {
			last, ok := s.assignFast(it.NRecords)
			if !ok {
				st.mu.Unlock()
				s.c.droppedStale.Add(1)
				continue
			}
			st.remember(it.Token, tokenEntry{epoch: types.Epoch(last.Epoch()), assigned: true, lastSN: last}, s.tokenCap)
			st.mu.Unlock()
			fresh = append(fresh, proto.OrderRespItem{Token: it.Token, LastSN: last, NRecords: it.NRecords})
			continue
		}
		st.remember(it.Token, tokenEntry{epoch: se}, s.tokenCap)
		st.mu.Unlock()
		req := &proto.OrderReq{Color: m.Color, Token: it.Token, NRecords: it.NRecords, Shard: m.Shard, Replicas: m.Replicas}
		s.enqueue(m.Color, member{req: req, n: it.NRecords}, se)
	}
	if len(fresh) > 0 {
		s.ep.Broadcast(m.Replicas, proto.OrderRespBatch{Color: m.Color, Items: fresh})
	}
	if len(dups) > 0 {
		s.ep.Send(from, proto.OrderRespBatch{Color: m.Color, Items: dups})
	}
}

func (s *Sequencer) onAggOrderReq(m proto.AggOrderReq) {
	if resp, ok := s.handleAggItem(m.From, m.Color, m.BatchID, m.Total); ok {
		s.ep.Send(m.From, resp)
	}
}

// onAggOrderReqBatch handles a child's combined upward rounds (several
// colors flushed in one frame). Items this node can answer now — owner
// assignments and dup resends — are returned in a single AggOrderRespBatch;
// the rest are enqueued toward this node's own parent.
func (s *Sequencer) onAggOrderReqBatch(m proto.AggOrderReqBatch) {
	var items []proto.AggOrderRespItem
	for _, it := range m.Items {
		if resp, ok := s.handleAggItem(m.From, it.Color, it.BatchID, it.Total); ok {
			items = append(items, proto.AggOrderRespItem{Color: resp.Color, BatchID: resp.BatchID, LastSN: resp.LastSN})
		}
	}
	if len(items) == 1 {
		s.ep.Send(m.From, proto.AggOrderResp{BatchID: items[0].BatchID, LastSN: items[0].LastSN, Color: items[0].Color})
		return
	}
	if len(items) > 0 {
		s.ep.Send(m.From, proto.AggOrderRespBatch{From: s.cfg.ID, Items: items})
	}
}

// handleAggItem processes one aggregated child request. ok=true returns
// the response this node can give immediately (owner assignment or dedup
// replay); ok=false means the item was enqueued upward or dropped.
func (s *Sequencer) handleAggItem(from types.NodeID, color types.ColorID, batchID uint64, total uint32) (proto.AggOrderResp, bool) {
	se := s.servingEpoch()
	if se == 0 {
		s.c.droppedStale.Add(1)
		return proto.AggOrderResp{}, false
	}
	s.c.childReqs.Add(1)
	key := childKey{from: from, batchID: batchID}
	ag := s.aggStripeFor(key)
	ag.mu.Lock()
	if last, ok := ag.m[key]; ok {
		// Duplicate resend of a batch we already answered.
		ag.mu.Unlock()
		return proto.AggOrderResp{BatchID: batchID, LastSN: last, Color: color}, true
	}
	if color == s.cfg.Region {
		// The stripe lock spans assign+record so a racing duplicate can
		// never burn a second range for the same child batch.
		last, ok := s.assignFast(total)
		if !ok {
			ag.mu.Unlock()
			s.c.droppedStale.Add(1)
			return proto.AggOrderResp{}, false
		}
		ag.m[key] = last
		ag.mu.Unlock()
		return proto.AggOrderResp{BatchID: batchID, LastSN: last, Color: color}, true
	}
	ag.mu.Unlock()
	s.enqueue(color, member{child: &childBatch{batchID: batchID, from: from}, n: total}, se)
	return proto.AggOrderResp{}, false
}

func (s *Sequencer) onAggOrderResp(m proto.AggOrderResp) {
	v, ok := s.inflight.LoadAndDelete(m.BatchID)
	if !ok {
		return
	}
	inf := v.(*inflight)
	s.queueFor(inf.color).outstanding.Add(-1)
	// Split the assigned range [last-total+1, last] across the members in
	// order (§5.2: "assigns all SNs in the range … which are distributed
	// to their respective origin").
	running := m.LastSN - types.SN(inf.total)
	// Direct members are grouped per replica set so the downward leg is
	// batched too: one OrderRespBatch broadcast per shard in the window
	// instead of one OrderResp broadcast per token. The grouping key is the
	// destination set itself (not the shard id), so requests that leave the
	// shard field unset — ordering-only drivers, older clients — still each
	// reach their own requester.
	type shardOut struct {
		replicas []types.NodeID
		items    []proto.OrderRespItem
	}
	var groupOrder []string
	byGroup := make(map[string]*shardOut)
	for _, mem := range inf.members {
		running += types.SN(mem.n)
		if mem.req != nil {
			st := s.tokenStripeFor(mem.req.Token)
			st.mu.Lock()
			if e, ok := st.m[mem.req.Token]; ok && e.epoch == inf.epoch && !e.assigned {
				st.m[mem.req.Token] = tokenEntry{epoch: e.epoch, assigned: true, lastSN: running}
			}
			st.mu.Unlock()
			key := replicaSetKey(mem.req.Shard, mem.req.Replicas)
			so := byGroup[key]
			if so == nil {
				so = &shardOut{replicas: mem.req.Replicas}
				byGroup[key] = so
				groupOrder = append(groupOrder, key)
			}
			so.items = append(so.items, proto.OrderRespItem{Token: mem.req.Token, LastSN: running, NRecords: mem.n})
		} else {
			s.ep.Send(mem.child.from, proto.AggOrderResp{BatchID: mem.child.batchID, LastSN: running, Color: inf.color})
		}
	}
	for _, key := range groupOrder {
		so := byGroup[key]
		if len(so.items) == 1 {
			// Single member: keep the compact legacy frame.
			it := so.items[0]
			s.ep.Broadcast(so.replicas, proto.OrderResp{Token: it.Token, LastSN: it.LastSN, NRecords: it.NRecords, Color: inf.color})
			continue
		}
		s.ep.Broadcast(so.replicas, proto.OrderRespBatch{Color: inf.color, Items: so.items})
	}
}

// onAggOrderRespBatch unpacks a parent's combined answers.
func (s *Sequencer) onAggOrderRespBatch(m proto.AggOrderRespBatch) {
	for _, it := range m.Items {
		s.onAggOrderResp(proto.AggOrderResp{BatchID: it.BatchID, LastSN: it.LastSN, Color: it.Color})
	}
}

// replicaSetKey builds the response-grouping key for one order request's
// destination set.
func replicaSetKey(shard types.ShardID, replicas []types.NodeID) string {
	b := make([]byte, 0, 4+4*len(replicas))
	b = append(b, byte(shard), byte(shard>>8), byte(shard>>16), byte(shard>>24))
	for _, id := range replicas {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// enqueue appends one member to color's pending queue and wakes the
// flusher; crossing FlushThreshold flags the round urgent so the flusher
// skips the remainder of its linger window.
func (s *Sequencer) enqueue(color types.ColorID, m member, se types.Epoch) {
	q := s.queueFor(color)
	q.push(m, se)
	if s.cfg.PipelinedFlush && s.flushThreshold > 0 && q.nrec.Load() >= int64(s.flushThreshold) {
		if s.urgent.CompareAndSwap(false, true) {
			s.c.urgentFlushes.Add(1)
		}
	}
	s.kickFlusher()
}

func (s *Sequencer) kickFlusher() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// flusherLoop merges pending members per color and sends them upward every
// BatchInterval; an urgent flag (queue crossed FlushThreshold) cuts the
// window short so a loaded leaf pipelines rounds back-to-back.
func (s *Sequencer) flusherLoop() {
	defer s.stopped.Done()
	for {
		select {
		case <-s.stopCh:
			return
		case <-s.kick:
		}
		if w := s.cfg.BatchInterval; w > 0 && !s.urgent.Load() {
			// The aggregation window: requests arriving in this interval
			// are merged (§5.2). Use stepped sleeps for ≥1ms windows and a
			// spin for microsecond ones, re-checking urgency either way.
			start := time.Now()
			if w >= time.Millisecond {
				for {
					left := w - time.Since(start)
					if left <= 0 || s.urgent.Load() {
						break
					}
					if left > 200*time.Microsecond {
						left = 200 * time.Microsecond
					}
					time.Sleep(left)
				}
			} else {
				for time.Since(start) < w && !s.urgent.Load() {
					runtime.Gosched() // let requests join the window
				}
			}
		}
		s.urgent.Store(false)
		s.flushPending()
	}
}

// flushPending drains every pending queue and sends the aggregated rounds
// upward — one AggOrderReq per color, or, with PipelinedFlush, a single
// AggOrderReqBatch combining all colors of the round. It never takes s.mu:
// staleness is decided per member by comparing its enqueue epoch against
// the serving epoch, which also covers the not-leader case (serving epoch
// 0 matches no member).
func (s *Sequencer) flushPending() {
	s.c.flushRounds.Add(1)
	se := s.servingEpoch()
	parent, hasParent := s.parentLeader()
	var singles []proto.AggOrderReq
	var items []proto.AggOrderItem
	for _, q := range s.pendingQueues() {
		var members []member
		var total uint32
		for {
			m, e, ok := q.pop()
			if !ok {
				break
			}
			if se == 0 || e != se {
				// Enqueued under a dead term (or we are no longer serving):
				// drop; replicas re-drive.
				s.c.droppedStale.Add(1)
				continue
			}
			members = append(members, m)
			total += m.n
		}
		if len(members) == 0 {
			continue
		}
		if !hasParent {
			// No parent (we are the tree root) yet the color is not ours:
			// misrouted; drop, replicas will retry.
			s.c.droppedStale.Add(uint64(len(members)))
			continue
		}
		id := s.batchSeq.Add(1)
		inf := &inflight{color: q.color, epoch: se, total: total, members: members}
		inf.sentAt.Store(time.Now().UnixNano())
		if q.outstanding.Add(1) > 1 {
			s.c.pipelinedBatches.Add(1)
		}
		s.inflight.Store(id, inf)
		s.c.batchesSent.Add(1)
		if s.cfg.PipelinedFlush {
			items = append(items, proto.AggOrderItem{Color: q.color, BatchID: id, Total: total})
		} else {
			singles = append(singles, proto.AggOrderReq{Color: q.color, BatchID: id, Total: total, From: s.cfg.ID})
		}
	}
	switch len(items) {
	case 0:
	case 1:
		// A single color's round keeps the compact legacy frame.
		it := items[0]
		s.ep.Send(parent, proto.AggOrderReq{Color: it.Color, BatchID: it.BatchID, Total: it.Total, From: s.cfg.ID})
	default:
		s.ep.Send(parent, proto.AggOrderReqBatch{From: s.cfg.ID, Items: items})
	}
	for _, r := range singles {
		s.ep.Send(parent, r)
	}
}

// parentLeader resolves the current leader of the parent region. The
// topology is internally synchronized; no sequencer lock is needed.
func (s *Sequencer) parentLeader() (types.NodeID, bool) {
	parent, has, err := s.topo.Parent(s.cfg.Region)
	if err != nil || !has {
		return 0, false
	}
	leader, err := s.topo.Leader(parent)
	if err != nil {
		return 0, false
	}
	return leader, true
}
