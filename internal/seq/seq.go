// Package seq implements FlexLog's ordering layer (§5.2): an n-ary tree of
// sequencer nodes that assign 64-bit sequence numbers of the form
// (epoch<<32)|counter to order requests.
//
// Each sequencer owns one region (color). An order request for color c
// enters the tree at the leaf sequencer of the issuing shard and climbs
// toward the root sequencer of region c, which assigns the SN range; the
// response descends the same path. Sequencers below the owner act as
// aggregators: order requests for the same color that arrive within the
// batching interval are merged into a single upward request for the sum of
// their record counts (§5.2 "To improve throughput…").
//
// Fault tolerance follows §5.2 "Sequencer replication": each sequencer has
// 2f stateless backups replicating only the epoch number. Failure is
// detected by heartbeat silence; the new leader is the backup with the
// highest (epoch, node-id), elected via at-most-once epoch grants; it first
// secures its epoch on a majority of the group, then initializes every
// replica of its region (SeqInit) and only then serves. An old leader that
// cannot reach a majority of backups shuts itself down (split-brain
// avoidance).
package seq

import (
	"runtime"
	"sync"
	"time"

	"flexlog/internal/proto"
	"flexlog/internal/topology"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// Role is a sequencer node's current role.
type Role int

// Sequencer roles.
const (
	RoleBackup Role = iota
	RoleLeader
	RoleStopped
)

func (r Role) String() string {
	switch r {
	case RoleBackup:
		return "backup"
	case RoleLeader:
		return "leader"
	default:
		return "stopped"
	}
}

// Config parameterizes one sequencer node.
type Config struct {
	ID     types.NodeID
	Region types.ColorID
	Topo   *topology.Topology

	// BatchInterval is the aggregation window for upward order requests
	// (1 µs in the paper's evaluation). Zero still batches whatever is
	// pending when the flusher runs, i.e. it effectively disables the
	// deliberate wait.
	BatchInterval time.Duration
	// HeartbeatInterval is the leader→backup heartbeat period.
	HeartbeatInterval time.Duration
	// FailureTimeout is the silence span after which a failure is assumed
	// (the Δ bound of §4).
	FailureTimeout time.Duration
	// RetryTimeout is how long an aggregated upward request may stay
	// unanswered before it is re-sent (parent failover re-drive).
	RetryTimeout time.Duration
	// TokenCacheSize bounds the token-deduplication map (Alg. 1 line 31).
	TokenCacheSize int
	// StartAsLeader makes this node the initial leader of its group.
	StartAsLeader bool
	// InitialEpoch overrides the starting epoch (default 1). Deployments
	// that restart a whole sequencer group cold must resume above every
	// epoch ever used, or the new leader would re-issue old SNs —
	// cmd/flexlog-server persists the epoch and passes lastEpoch+1 here.
	InitialEpoch types.Epoch
	// TenantOf attributes ordering work to tenants by the color an order
	// request names (qos.ColorMap of the deployment's tenant declarations).
	// Nil disables per-tenant sequencer accounting.
	TenantOf map[types.ColorID]types.TenantID
}

// DefaultConfig fills the timing knobs with test-friendly values.
func DefaultConfig() Config {
	return Config{
		BatchInterval:     time.Microsecond,
		HeartbeatInterval: 5 * time.Millisecond,
		FailureTimeout:    25 * time.Millisecond,
		RetryTimeout:      50 * time.Millisecond,
		TokenCacheSize:    1 << 20,
	}
}

// member is one constituent of a pending/in-flight aggregated batch.
type member struct {
	// Exactly one of req / child is set.
	req   *proto.OrderReq // direct request from a replica (entry point)
	child *childBatch     // merged batch from a child sequencer
	n     uint32
}

type childBatch struct {
	batchID uint64
	from    types.NodeID
}

// inflight tracks an aggregated request sent to the parent.
type inflight struct {
	color   types.ColorID
	total   uint32
	members []member
	sentAt  time.Time
}

// tokenState tracks dedup state for tokens this node has seen as the entry
// sequencer (Alg. 1 lines 28–31).
type tokenState struct {
	assigned bool
	lastSN   types.SN
	req      *proto.OrderReq
}

// Stats counts ordering-layer activity.
type Stats struct {
	Assigned     uint64 // SNs issued by this node as region owner
	DirectReqs   uint64 // order requests received from replicas (incl. batch items)
	ReqBatches   uint64 // coalesced OrderReqBatch messages received
	ChildReqs    uint64 // aggregated requests received from children
	BatchesSent  uint64 // aggregated requests sent to the parent
	Resends      uint64
	Elections    uint64 // leaderships won by this node
	EpochGrants  uint64
	DupTokens    uint64
	DroppedStale uint64
}

// Sequencer is one ordering-layer node.
type Sequencer struct {
	cfg  Config
	topo *topology.Topology
	ep   transport.Endpoint

	mu      sync.Mutex
	role    Role
	epoch   types.Epoch
	counter uint32
	serving bool // leader finished initialization and serves requests

	// entry-side token dedup (bounded FIFO eviction)
	tokens     map[types.Token]*tokenState
	tokenOrder []types.Token

	// aggregation
	pending  map[types.ColorID]*[]member
	batchSeq uint64
	inflight map[uint64]*inflight

	// owner-side dedup of child batches (survives duplicate resends)
	aggSeen map[childKey]types.SN

	// election / heartbeat state
	grantedEpoch types.Epoch
	grantedTo    types.NodeID
	// lastLeaderHB is the candidacy-suppression clock: reset by leader
	// heartbeats but ALSO by grants and abandoned claims so elections
	// back off. lastLeaderBeat is reset only by an actual current-epoch
	// heartbeat; the stickiness check in onEpochClaim uses it so that a
	// recent grant/abandon is never mistaken for a live leader.
	lastLeaderHB   time.Time
	lastLeaderBeat time.Time
	hbAcks         map[types.NodeID]time.Time
	initAcks       map[types.NodeID]bool
	initEpoch      types.Epoch
	claimStart     time.Time

	stats Stats
	// tenantOrdered counts records ordered per tenant, attributed at the
	// entry sequencer (direct requests only, so tree aggregation does not
	// double-count). Nil unless Config.TenantOf is set.
	tenantOrdered map[types.TenantID]uint64

	stopCh  chan struct{}
	stopped sync.WaitGroup
	kick    chan struct{} // wakes the flusher
}

type childKey struct {
	from    types.NodeID
	batchID uint64
}

// New creates the sequencer and registers it on the in-process network.
func New(cfg Config, net *transport.Network) (*Sequencer, error) {
	s := newSequencer(cfg)
	ep, err := net.Register(cfg.ID, s.handle)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ep = ep
	s.mu.Unlock()
	s.start()
	return s, nil
}

// NewWithEndpoint creates the sequencer over an existing endpoint
// constructor (used for TCP deployments). attach must register s.Handle as
// the message handler and return the endpoint.
func NewWithEndpoint(cfg Config, attach func(h transport.Handler) (transport.Endpoint, error)) (*Sequencer, error) {
	s := newSequencer(cfg)
	ep, err := attach(s.handle)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ep = ep
	s.mu.Unlock()
	s.start()
	return s, nil
}

func newSequencer(cfg Config) *Sequencer {
	if cfg.TokenCacheSize <= 0 {
		cfg.TokenCacheSize = 1 << 20
	}
	s := &Sequencer{
		cfg:      cfg,
		topo:     cfg.Topo,
		tokens:   make(map[types.Token]*tokenState),
		pending:  make(map[types.ColorID]*[]member),
		inflight: make(map[uint64]*inflight),
		aggSeen:  make(map[childKey]types.SN),
		hbAcks:   make(map[types.NodeID]time.Time),
		stopCh:   make(chan struct{}),
		kick:     make(chan struct{}, 1),
	}
	if len(cfg.TenantOf) > 0 {
		s.tenantOrdered = make(map[types.TenantID]uint64)
	}
	epoch := types.Epoch(1)
	if cfg.InitialEpoch > 0 {
		epoch = cfg.InitialEpoch
	}
	if cfg.StartAsLeader {
		s.role = RoleLeader
		s.epoch = epoch
		s.serving = true
	} else {
		s.role = RoleBackup
		s.epoch = epoch
		s.lastLeaderHB = time.Now()
	}
	return s
}

func (s *Sequencer) start() {
	s.stopped.Add(2)
	go s.flusherLoop()
	go s.timerLoop()
}

// ID returns this node's id.
func (s *Sequencer) ID() types.NodeID { return s.cfg.ID }

// Region returns the color this sequencer group owns.
func (s *Sequencer) Region() types.ColorID { return s.cfg.Region }

// Role returns the node's current role.
func (s *Sequencer) Role() Role {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.role
}

// Epoch returns the node's current epoch.
func (s *Sequencer) Epoch() types.Epoch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Serving reports whether the node is an initialized, active leader.
func (s *Sequencer) Serving() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.role == RoleLeader && s.serving
}

// Stats returns a snapshot of the counters.
func (s *Sequencer) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// noteTenantLocked attributes n ordered records to the tenant owning
// color. Caller holds s.mu.
func (s *Sequencer) noteTenantLocked(color types.ColorID, n uint64) {
	if s.tenantOrdered == nil {
		return
	}
	t, ok := s.cfg.TenantOf[color]
	if !ok {
		t = types.DefaultTenant
	}
	s.tenantOrdered[t] += n
}

// TenantOrdered snapshots the per-tenant ordered-record counters (nil
// when per-tenant accounting is off).
func (s *Sequencer) TenantOrdered() map[types.TenantID]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tenantOrdered == nil {
		return nil
	}
	out := make(map[types.TenantID]uint64, len(s.tenantOrdered))
	for k, v := range s.tenantOrdered {
		out[k] = v
	}
	return out
}

// Stop terminates the node's background loops (graceful shutdown).
func (s *Sequencer) Stop() {
	s.mu.Lock()
	if s.role == RoleStopped {
		s.mu.Unlock()
		return
	}
	s.role = RoleStopped
	s.serving = false
	close(s.stopCh)
	s.mu.Unlock()
	s.stopped.Wait()
}

// Crash simulates a crash failure: the node stops processing and emitting
// all messages. Unlike Stop it is meant to be paired with network
// isolation in tests.
func (s *Sequencer) Crash() { s.Stop() }

// handle dispatches one inbound message. Messages racing the constructor
// (delivery starts at Register, before the endpoint is published) are
// dropped; every protocol above re-drives lost messages anyway.
func (s *Sequencer) handle(from types.NodeID, msg transport.Message) {
	s.mu.Lock()
	ready := s.ep != nil
	s.mu.Unlock()
	if !ready {
		return
	}
	switch m := msg.(type) {
	case proto.OrderReq:
		s.onOrderReq(m)
	case proto.OrderReqBatch:
		s.onOrderReqBatch(from, m)
	case proto.AggOrderReq:
		s.onAggOrderReq(m)
	case proto.AggOrderResp:
		s.onAggOrderResp(m)
	case proto.SeqHeartbeat:
		s.onHeartbeat(m)
	case proto.SeqHeartbeatAck:
		s.onHeartbeatAck(m)
	case proto.EpochClaim:
		s.onEpochClaim(m)
	case proto.EpochGrant:
		s.onEpochGrant(m)
	case proto.EpochReject:
		s.onEpochReject(m)
	case proto.SeqInitAck:
		s.onSeqInitAck(m)
	case proto.ReplicaHeartbeat:
		// Replica liveness; sequencers do not act on it beyond receipt.
	}
}

// ---- Order request path ----

func (s *Sequencer) onOrderReq(req proto.OrderReq) {
	s.mu.Lock()
	if s.role != RoleLeader || !s.serving {
		s.stats.DroppedStale++
		s.mu.Unlock()
		return
	}
	s.stats.DirectReqs++
	s.noteTenantLocked(req.Color, uint64(req.NRecords))
	if st, ok := s.tokens[req.Token]; ok {
		s.stats.DupTokens++
		if st.assigned {
			// Re-broadcast the cached response (a replica retried because
			// it missed the original OResp).
			resp := proto.OrderResp{Token: req.Token, LastSN: st.lastSN, NRecords: req.NRecords, Color: req.Color}
			replicas := req.Replicas
			s.mu.Unlock()
			s.ep.Broadcast(replicas, resp)
			return
		}
		// Still pending in a batch or in flight; the response will reach
		// the shard when the owner answers.
		s.mu.Unlock()
		return
	}
	if req.Color == s.cfg.Region {
		// This node owns the region: assign immediately (Alg. 1 lines
		// 32–35).
		last := s.assignLocked(req.NRecords)
		s.rememberTokenLocked(req.Token, &tokenState{assigned: true, lastSN: last})
		resp := proto.OrderResp{Token: req.Token, LastSN: last, NRecords: req.NRecords, Color: req.Color}
		replicas := req.Replicas
		s.mu.Unlock()
		s.ep.Broadcast(replicas, resp)
		return
	}
	// Not the owner: aggregate upward (Alg. 1 line 37, merged per §5.2).
	r := req
	s.rememberTokenLocked(req.Token, &tokenState{req: &r})
	s.enqueueLocked(req.Color, member{req: &r, n: req.NRecords})
	s.mu.Unlock()
	s.kickFlusher()
}

// onOrderReqBatch handles a replica's coalesced order requests: all items
// share one color and one shard, so the whole batch takes a single pass
// under the lock and — on the owner — answers with a single OrderRespBatch
// broadcast instead of one OrderResp per token. Dup handling preserves the
// per-token semantics of onOrderReq: already-assigned items are re-answered
// to the SENDER only (the original assignment was already broadcast to the
// whole shard; a retrying replica just missed it), items still pending in a
// batch get no reply (the owner's answer will reach the shard), and fresh
// items are assigned or aggregated upward as individual members so the
// existing AggOrderReq machinery splits ranges exactly as before.
func (s *Sequencer) onOrderReqBatch(from types.NodeID, m proto.OrderReqBatch) {
	s.mu.Lock()
	if s.role != RoleLeader || !s.serving {
		s.stats.DroppedStale++
		s.mu.Unlock()
		return
	}
	s.stats.ReqBatches++
	s.stats.DirectReqs += uint64(len(m.Items))
	for _, it := range m.Items {
		s.noteTenantLocked(m.Color, uint64(it.NRecords))
	}
	owner := m.Color == s.cfg.Region
	var fresh []proto.OrderRespItem // owner-path assignments → broadcast
	var dups []proto.OrderRespItem  // already-assigned retries → sender only
	queued := false
	for _, it := range m.Items {
		if st, ok := s.tokens[it.Token]; ok {
			s.stats.DupTokens++
			if st.assigned {
				dups = append(dups, proto.OrderRespItem{Token: it.Token, LastSN: st.lastSN, NRecords: it.NRecords})
			}
			continue
		}
		if owner {
			last := s.assignLocked(it.NRecords)
			s.rememberTokenLocked(it.Token, &tokenState{assigned: true, lastSN: last})
			fresh = append(fresh, proto.OrderRespItem{Token: it.Token, LastSN: last, NRecords: it.NRecords})
			continue
		}
		req := &proto.OrderReq{Color: m.Color, Token: it.Token, NRecords: it.NRecords, Shard: m.Shard, Replicas: m.Replicas}
		s.rememberTokenLocked(it.Token, &tokenState{req: req})
		s.enqueueLocked(m.Color, member{req: req, n: it.NRecords})
		queued = true
	}
	replicas := m.Replicas
	s.mu.Unlock()
	if len(fresh) > 0 {
		s.ep.Broadcast(replicas, proto.OrderRespBatch{Color: m.Color, Items: fresh})
	}
	if len(dups) > 0 {
		s.ep.Send(from, proto.OrderRespBatch{Color: m.Color, Items: dups})
	}
	if queued {
		s.kickFlusher()
	}
}

func (s *Sequencer) onAggOrderReq(m proto.AggOrderReq) {
	s.mu.Lock()
	if s.role != RoleLeader || !s.serving {
		s.stats.DroppedStale++
		s.mu.Unlock()
		return
	}
	s.stats.ChildReqs++
	key := childKey{from: m.From, batchID: m.BatchID}
	if last, ok := s.aggSeen[key]; ok {
		// Duplicate resend of a batch we already answered.
		s.mu.Unlock()
		s.ep.Send(m.From, proto.AggOrderResp{BatchID: m.BatchID, LastSN: last, Color: m.Color})
		return
	}
	if m.Color == s.cfg.Region {
		last := s.assignLocked(m.Total)
		s.aggSeen[key] = last
		s.mu.Unlock()
		s.ep.Send(m.From, proto.AggOrderResp{BatchID: m.BatchID, LastSN: last, Color: m.Color})
		return
	}
	s.enqueueLocked(m.Color, member{child: &childBatch{batchID: m.BatchID, from: m.From}, n: m.Total})
	s.mu.Unlock()
	s.kickFlusher()
}

func (s *Sequencer) onAggOrderResp(m proto.AggOrderResp) {
	s.mu.Lock()
	inf, ok := s.inflight[m.BatchID]
	if !ok {
		s.mu.Unlock()
		return
	}
	delete(s.inflight, m.BatchID)
	// Split the assigned range [last-total+1, last] across the members in
	// order (§5.2: "assigns all SNs in the range … which are distributed
	// to their respective origin").
	running := m.LastSN - types.SN(inf.total)
	// Direct members are grouped per replica set so the downward leg is
	// batched too: one OrderRespBatch broadcast per shard in the window
	// instead of one OrderResp broadcast per token. The grouping key is the
	// destination set itself (not the shard id), so requests that leave the
	// shard field unset — ordering-only drivers, older clients — still each
	// reach their own requester.
	type shardOut struct {
		replicas []types.NodeID
		items    []proto.OrderRespItem
	}
	type childOut struct {
		resp proto.AggOrderResp
		to   types.NodeID
	}
	var groupOrder []string
	byGroup := make(map[string]*shardOut)
	var children []childOut
	for _, mem := range inf.members {
		running += types.SN(mem.n)
		if mem.req != nil {
			if st, ok := s.tokens[mem.req.Token]; ok {
				st.assigned = true
				st.lastSN = running
				st.req = nil
			}
			key := replicaSetKey(mem.req.Shard, mem.req.Replicas)
			so := byGroup[key]
			if so == nil {
				so = &shardOut{replicas: mem.req.Replicas}
				byGroup[key] = so
				groupOrder = append(groupOrder, key)
			}
			so.items = append(so.items, proto.OrderRespItem{Token: mem.req.Token, LastSN: running, NRecords: mem.n})
		} else {
			children = append(children, childOut{
				resp: proto.AggOrderResp{BatchID: mem.child.batchID, LastSN: running, Color: inf.color},
				to:   mem.child.from,
			})
		}
	}
	s.mu.Unlock()
	for _, key := range groupOrder {
		so := byGroup[key]
		if len(so.items) == 1 {
			// Single member: keep the compact legacy frame.
			it := so.items[0]
			s.ep.Broadcast(so.replicas, proto.OrderResp{Token: it.Token, LastSN: it.LastSN, NRecords: it.NRecords, Color: inf.color})
			continue
		}
		s.ep.Broadcast(so.replicas, proto.OrderRespBatch{Color: inf.color, Items: so.items})
	}
	for _, c := range children {
		s.ep.Send(c.to, c.resp)
	}
}

// replicaSetKey builds the response-grouping key for one order request's
// destination set.
func replicaSetKey(shard types.ShardID, replicas []types.NodeID) string {
	b := make([]byte, 0, 4+4*len(replicas))
	b = append(b, byte(shard), byte(shard>>8), byte(shard>>16), byte(shard>>24))
	for _, id := range replicas {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// assignLocked advances the counter by n and returns the SN of the last
// assigned number. Caller holds s.mu.
func (s *Sequencer) assignLocked(n uint32) types.SN {
	s.counter += n
	s.stats.Assigned += uint64(n)
	return s.epoch.SNFor(s.counter)
}

// rememberTokenLocked inserts token dedup state with FIFO eviction.
func (s *Sequencer) rememberTokenLocked(t types.Token, st *tokenState) {
	if _, exists := s.tokens[t]; !exists {
		s.tokenOrder = append(s.tokenOrder, t)
	}
	s.tokens[t] = st
	for len(s.tokenOrder) > s.cfg.TokenCacheSize {
		old := s.tokenOrder[0]
		s.tokenOrder = s.tokenOrder[1:]
		delete(s.tokens, old)
	}
}

func (s *Sequencer) enqueueLocked(color types.ColorID, m member) {
	q := s.pending[color]
	if q == nil {
		q = &[]member{}
		s.pending[color] = q
	}
	*q = append(*q, m)
}

func (s *Sequencer) kickFlusher() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// flusherLoop merges pending members per color and sends them upward every
// BatchInterval.
func (s *Sequencer) flusherLoop() {
	defer s.stopped.Done()
	for {
		select {
		case <-s.stopCh:
			return
		case <-s.kick:
		}
		if s.cfg.BatchInterval > 0 {
			// The aggregation window: requests arriving in this interval
			// are merged (§5.2). Use a plain sleep for ≥1ms windows and a
			// spin for microsecond ones.
			if s.cfg.BatchInterval >= time.Millisecond {
				time.Sleep(s.cfg.BatchInterval)
			} else {
				start := time.Now()
				for time.Since(start) < s.cfg.BatchInterval {
					runtime.Gosched() // let requests join the window
				}
			}
		}
		s.flushPending()
	}
}

// flushPending sends one aggregated request per pending color.
func (s *Sequencer) flushPending() {
	type out struct {
		req proto.AggOrderReq
		to  types.NodeID
	}
	var outs []out
	s.mu.Lock()
	if s.role != RoleLeader {
		s.pending = make(map[types.ColorID]*[]member)
		s.mu.Unlock()
		return
	}
	for color, q := range s.pending {
		if len(*q) == 0 {
			continue
		}
		parentLeader, ok := s.parentLeaderLocked()
		if !ok {
			// No parent (we are the tree root) yet the color is not ours:
			// misrouted; drop, replicas will retry.
			s.stats.DroppedStale += uint64(len(*q))
			delete(s.pending, color)
			continue
		}
		s.batchSeq++
		id := s.batchSeq
		members := append([]member(nil), (*q)...)
		var total uint32
		for _, m := range members {
			total += m.n
		}
		s.inflight[id] = &inflight{color: color, total: total, members: members, sentAt: time.Now()}
		s.stats.BatchesSent++
		outs = append(outs, out{
			req: proto.AggOrderReq{Color: color, BatchID: id, Total: total, From: s.cfg.ID},
			to:  parentLeader,
		})
		delete(s.pending, color)
	}
	s.mu.Unlock()
	for _, o := range outs {
		s.ep.Send(o.to, o.req)
	}
}

// parentLeaderLocked resolves the current leader of the parent region.
func (s *Sequencer) parentLeaderLocked() (types.NodeID, bool) {
	parent, has, err := s.topo.Parent(s.cfg.Region)
	if err != nil || !has {
		return 0, false
	}
	leader, err := s.topo.Leader(parent)
	if err != nil {
		return 0, false
	}
	return leader, true
}
