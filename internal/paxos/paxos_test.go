package paxos

import (
	"errors"
	"sync"
	"testing"
	"time"

	"flexlog/internal/transport"
	"flexlog/internal/types"
)

func newQuorum(t *testing.T, n int) (*transport.Network, []types.NodeID) {
	t.Helper()
	net := transport.NewNetwork(transport.ZeroLink())
	ids, _, err := AcceptorSet(net, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	return net, ids
}

func TestBallotComposition(t *testing.T) {
	b := MakeBallot(7, 42)
	if b.Round() != 7 || b.Proposer() != 42 {
		t.Fatalf("ballot parts = %d, %v", b.Round(), b.Proposer())
	}
	if MakeBallot(2, 1) <= MakeBallot(1, 99) {
		t.Fatal("higher round must dominate")
	}
	if MakeBallot(1, 2) <= MakeBallot(1, 1) {
		t.Fatal("proposer id must break ties")
	}
}

func TestSingleProposerDecides(t *testing.T) {
	net, ids := newQuorum(t, 3)
	p, err := NewProposer(ProposerConfig{ID: 100, Acceptors: ids}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	v := Value{N: 5, ReqID: 1, From: 100}
	got, err := p.ProposeSlot(0, v)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("decided %+v, want %+v", got, v)
	}
	st := p.Stats()
	if st.Decided != 1 || st.Preemptions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConsensusIsStable(t *testing.T) {
	// Once a value is chosen for a slot, any later proposal for that slot
	// must decide the SAME value (the core Paxos safety property).
	net, ids := newQuorum(t, 3)
	p1, _ := NewProposer(ProposerConfig{ID: 100, Acceptors: ids}, net)
	defer p1.Stop()
	p2, _ := NewProposer(ProposerConfig{ID: 101, Acceptors: ids}, net)
	defer p2.Stop()

	v1 := Value{N: 1, ReqID: 1, From: 100}
	got1, err := p1.ProposeSlot(0, v1)
	if err != nil {
		t.Fatal(err)
	}
	v2 := Value{N: 2, ReqID: 2, From: 101}
	got2, err := p2.ProposeSlot(0, v2)
	if err != nil {
		t.Fatal(err)
	}
	if got1 != got2 {
		t.Fatalf("slot 0 decided twice: %+v vs %+v", got1, got2)
	}
	if got2 != v1 {
		t.Fatalf("second proposer must adopt the chosen value, got %+v", got2)
	}
	if p2.Stats().StolenSlots != 1 {
		t.Fatalf("p2 stats = %+v", p2.Stats())
	}
}

func TestSkipPhase1LeaderMode(t *testing.T) {
	net, ids := newQuorum(t, 3)
	p, _ := NewProposer(ProposerConfig{ID: 100, Acceptors: ids, SkipPhase1: true}, net)
	defer p.Stop()
	for slot := uint64(0); slot < 10; slot++ {
		if _, err := p.ProposeSlot(slot, Value{N: 1, ReqID: slot + 1, From: 100}); err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
	}
	// Phase 1 skipped: acceptors saw no Prepares.
	// (Indirect check: proposer made exactly one proposal per slot.)
	if st := p.Stats(); st.Proposals != 10 || st.Decided != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQuorumLossBlocks(t *testing.T) {
	net, ids := newQuorum(t, 3)
	p, _ := NewProposer(ProposerConfig{
		ID: 100, Acceptors: ids,
		PhaseTimeout: 20 * time.Millisecond, MaxAttempts: 3,
	}, net)
	defer p.Stop()
	// Partition two of three acceptors away: no majority can form.
	net.Partition(100, ids[0])
	net.Partition(100, ids[1])
	if _, err := p.ProposeSlot(0, Value{N: 1, ReqID: 1, From: 100}); err == nil {
		t.Fatal("proposal without a quorum should fail")
	}
}

func TestCounterSequentialRanges(t *testing.T) {
	net, ids := newQuorum(t, 3)
	c, err := NewCounter(ProposerConfig{ID: 100, Acceptors: ids, SkipPhase1: true}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	var last uint64
	for i := 0; i < 20; i++ {
		got, err := c.Next(3)
		if err != nil {
			t.Fatal(err)
		}
		if got != last+3 {
			t.Fatalf("range end = %d, want %d", got, last+3)
		}
		last = got
	}
}

func TestCounterConcurrentClientsDistinctRanges(t *testing.T) {
	net, ids := newQuorum(t, 3)
	c, _ := NewCounter(ProposerConfig{ID: 100, Acceptors: ids, SkipPhase1: true}, net)
	defer c.Stop()
	const workers, per = 4, 20
	var mu sync.Mutex
	seen := make(map[uint64]bool)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				end, err := c.Next(2)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				for sn := end - 1; sn <= end; sn++ {
					if seen[sn] {
						t.Errorf("sequence number %d assigned twice", sn)
					}
					seen[sn] = true
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != workers*per*2 {
		t.Fatalf("assigned %d SNs, want %d", len(seen), workers*per*2)
	}
}

// TestMultiProposerPreemption demonstrates the §3.3 observation: classic
// multi-proposer Paxos makes little progress under contention because
// proposers keep preempting each other's ballots.
func TestMultiProposerPreemption(t *testing.T) {
	net, ids := newQuorum(t, 3)
	mk := func(id types.NodeID) *Counter {
		c, err := NewCounter(ProposerConfig{
			ID: id, Acceptors: ids,
			PhaseTimeout: 5 * time.Millisecond,
			MaxAttempts:  50,
		}, net)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1, c2 := mk(100), mk(101)
	defer c1.Stop()
	defer c2.Stop()

	var wg sync.WaitGroup
	run := func(c *Counter) {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if _, err := c.Next(1); err != nil {
				if errors.Is(err, ErrStopped) {
					return
				}
				// Livelock bound hit: acceptable for this experiment.
				return
			}
		}
	}
	wg.Add(2)
	go run(c1)
	go run(c2)
	wg.Wait()

	pre := c1.Stats().Preemptions + c2.Stats().Preemptions
	if pre == 0 {
		t.Fatal("competing proposers never preempted each other; contention not exercised")
	}
	t.Logf("preemptions under dueling proposers: %d (decided %d+%d)",
		pre, c1.Stats().Decided, c2.Stats().Decided)
}

func TestStoppedProposerFails(t *testing.T) {
	net, ids := newQuorum(t, 3)
	p, _ := NewProposer(ProposerConfig{ID: 100, Acceptors: ids}, net)
	p.Stop()
	if _, err := p.ProposeSlot(0, Value{N: 1}); !errors.Is(err, ErrStopped) {
		t.Fatalf("propose after stop: %v", err)
	}
}

func TestAcceptorStats(t *testing.T) {
	net, ids := newQuorum(t, 1)
	p, _ := NewProposer(ProposerConfig{ID: 100, Acceptors: ids}, net)
	defer p.Stop()
	if _, err := p.ProposeSlot(0, Value{N: 1, ReqID: 1, From: 100}); err != nil {
		t.Fatal(err)
	}
	// Reach into the network indirectly: re-create an acceptor handle is
	// not possible, so assert via a fresh acceptor set instead.
	net2 := transport.NewNetwork(transport.ZeroLink())
	_, accs, _ := AcceptorSet(net2, 1, 1)
	p2, _ := NewProposer(ProposerConfig{ID: 100, Acceptors: []types.NodeID{1}}, net2)
	defer p2.Stop()
	p2.ProposeSlot(0, Value{N: 1, ReqID: 1, From: 100})
	st := accs[0].Stats()
	if st.Promises != 1 || st.Accepteds != 1 {
		t.Fatalf("acceptor stats = %+v", st)
	}
}

// TestPipelinedCounterConflictDetected: pipelining is only safe with a
// unique primary; when a competitor steals a pipelined slot, Next must
// report ErrConflict instead of returning a wrong range.
func TestPipelinedCounterConflictDetected(t *testing.T) {
	net, ids := newQuorum(t, 3)
	pipelined, err := NewCounter(ProposerConfig{ID: 100, Acceptors: ids, SkipPhase1: true}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer pipelined.Stop()
	// A competing classic proposer steals slot 0 first.
	thief, err := NewProposer(ProposerConfig{ID: 200, Acceptors: ids}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer thief.Stop()
	if _, err := thief.ProposeSlot(0, Value{N: 9, ReqID: 1, From: 200}); err != nil {
		t.Fatal(err)
	}
	// The pipelined counter reserves slot 0 optimistically; acceptors
	// force the thief's value back, so the counter must flag the conflict.
	if _, err := pipelined.Next(1); !errors.Is(err, ErrConflict) {
		t.Fatalf("stolen pipelined slot: %v", err)
	}
}

// TestPipelinedCounterConcurrent: with a unique primary, concurrent
// pipelined Next calls return disjoint, gap-free ranges.
func TestPipelinedCounterConcurrent(t *testing.T) {
	net, ids := newQuorum(t, 3)
	c, _ := NewCounter(ProposerConfig{ID: 100, Acceptors: ids, SkipPhase1: true}, net)
	defer c.Stop()
	const workers, per = 8, 25
	results := make(chan uint64, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				end, err := c.Next(1)
				if err != nil {
					t.Error(err)
					return
				}
				results <- end
			}
		}()
	}
	wg.Wait()
	close(results)
	seen := make(map[uint64]bool)
	var max uint64
	for end := range results {
		if seen[end] {
			t.Fatalf("range end %d assigned twice", end)
		}
		seen[end] = true
		if end > max {
			max = end
		}
	}
	if int(max) != workers*per || len(seen) != workers*per {
		t.Fatalf("ranges not gap-free: max=%d distinct=%d want=%d", max, len(seen), workers*per)
	}
}
