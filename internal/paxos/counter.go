package paxos

import (
	"errors"
	"sync"

	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// Counter is the Scalog-style ordering service built on Multi-Paxos: the
// shared log's tail is a replicated counter and every increment is one
// Paxos decision (§3.3: Scalog "implements a Paxos-based counter service
// as its ordering layer").
//
// A Counter wraps one proposer (the primary). Next(n) proposes an
// increment of n at the next free slot; the counter's value is the prefix
// sum of all decided increments, so the call returns the last sequence
// number of the reserved range. With a unique primary and SkipPhase1 the
// service costs one Accept round per increment — the optimized baseline of
// Figure 4 (right). With multiple Counters over the same acceptors (multi-
// proposer Paxos), proposals preempt each other and throughput collapses —
// the livelock behaviour §3.3 reports.
type Counter struct {
	prop      *Proposer
	pipelined bool

	mu    sync.Mutex
	slot  uint64 // next slot to propose at
	tail  uint64 // prefix sum of decided increments up to slot-1
	reqID uint64
}

// ErrConflict is returned by a pipelined Next whose slot was stolen by a
// competing proposer (pipelining is only safe with a unique primary).
var ErrConflict = errors.New("paxos: pipelined slot decided with a competing value")

// NewCounter creates a counter service over the given acceptor set. With
// SkipPhase1 (unique primary) the counter pipelines: concurrent Next calls
// reserve consecutive slots and optimistic tails up front and run their
// Accept rounds in parallel — the Multi-Paxos pipelining real deployments
// (and libpaxos) rely on for throughput.
func NewCounter(cfg ProposerConfig, net *transport.Network) (*Counter, error) {
	prop, err := NewProposer(cfg, net)
	if err != nil {
		return nil, err
	}
	return &Counter{prop: prop, pipelined: cfg.SkipPhase1}, nil
}

// Stats exposes the underlying proposer counters.
func (c *Counter) Stats() ProposerStats { return c.prop.Stats() }

// Stop shuts the service down.
func (c *Counter) Stop() { c.prop.Stop() }

// Next reserves n sequence numbers and returns the last one. Safe for
// concurrent use. With a unique primary (SkipPhase1) concurrent calls
// pipeline their Accept rounds; otherwise they serialize on consecutive
// slots.
func (c *Counter) Next(n uint32) (uint64, error) {
	if c.pipelined {
		c.mu.Lock()
		c.reqID++
		req := Value{N: n, ReqID: c.reqID, From: c.prop.cfg.ID}
		slot := c.slot
		c.slot++
		c.tail += uint64(n)
		tail := c.tail
		c.mu.Unlock()
		decided, err := c.prop.ProposeSlot(slot, req)
		if err != nil {
			return 0, err
		}
		if decided.ReqID != req.ReqID || decided.From != req.From {
			return 0, ErrConflict
		}
		return tail, nil
	}
	c.mu.Lock()
	c.reqID++
	req := Value{N: n, ReqID: c.reqID, From: c.prop.cfg.ID}
	for {
		slot := c.slot
		// The slot is proposed while holding the mutex: the counter's
		// slots are sequential, and the prefix sum must be updated in
		// slot order. (Scalog serializes through its Paxos log the same
		// way.) Concurrency across clients comes from batching at the
		// aggregation layer, exactly as in Scalog/Boki.
		decided, err := c.prop.ProposeSlot(slot, req)
		if err != nil {
			c.mu.Unlock()
			return 0, err
		}
		c.slot++
		c.tail += uint64(decided.N)
		if decided.ReqID == req.ReqID && decided.From == req.From {
			tail := c.tail
			c.mu.Unlock()
			return tail, nil
		}
		// Another proposer's value won this slot; account for it and try
		// the next slot.
	}
}

// AcceptorSet spins up n acceptors with consecutive node ids starting at
// base and returns their ids (deployment helper used by tests, the scalog
// baseline, and the Fig. 4 bench).
func AcceptorSet(net *transport.Network, base types.NodeID, n int) ([]types.NodeID, []*Acceptor, error) {
	ids := make([]types.NodeID, n)
	accs := make([]*Acceptor, n)
	for i := 0; i < n; i++ {
		id := base + types.NodeID(i)
		a, err := NewAcceptor(id, net)
		if err != nil {
			return nil, nil, err
		}
		ids[i] = id
		accs[i] = a
	}
	return ids, accs, nil
}
