package paxos

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// ErrStopped is returned when proposing on a stopped proposer.
var ErrStopped = errors.New("paxos: proposer stopped")

// ProposerConfig parameterizes a proposer.
type ProposerConfig struct {
	ID        types.NodeID
	Acceptors []types.NodeID
	// SkipPhase1 enables the Multi-Paxos optimization: a stable, unique
	// leader runs only the Accept phase per slot. Only safe while no other
	// proposer is active (§3.3: "optimized versions elect a unique primary
	// to handle all requests").
	SkipPhase1 bool
	// PhaseTimeout bounds one phase round-trip before a retry.
	PhaseTimeout time.Duration
	// MaxAttempts bounds retries per slot (0 = unbounded). The livelock
	// experiment uses a bound to measure preemptions without hanging.
	MaxAttempts int
}

// ProposerStats counts proposer-side events; Preemptions is the §3.3
// livelock evidence (ballots that lost to a competing proposer).
type ProposerStats struct {
	Proposals   uint64
	Decided     uint64
	Preemptions uint64
	StolenSlots uint64 // slots decided with another proposer's value
}

// phaseKey correlates responses to an outstanding phase.
type phaseKey struct {
	ballot Ballot
	slot   uint64
}

type phaseWait struct {
	oks      map[types.NodeID]Promise  // phase 1
	accepted map[types.NodeID]Accepted // phase 2
	rejects  int
	highest  Ballot // highest ballot seen in rejections
	need     int
	done     chan struct{}
	closed   bool
}

// Proposer drives Paxos rounds against a set of acceptors.
type Proposer struct {
	cfg ProposerConfig
	ep  transport.Endpoint

	mu      sync.Mutex
	round   uint32
	p1      map[phaseKey]*phaseWait
	p2      map[phaseKey]*phaseWait
	stats   ProposerStats
	stopped bool
}

// NewProposer creates and registers a proposer.
func NewProposer(cfg ProposerConfig, net *transport.Network) (*Proposer, error) {
	if cfg.PhaseTimeout <= 0 {
		cfg.PhaseTimeout = 100 * time.Millisecond
	}
	p := &Proposer{
		cfg:   cfg,
		round: 1,
		p1:    make(map[phaseKey]*phaseWait),
		p2:    make(map[phaseKey]*phaseWait),
	}
	ep, err := net.Register(cfg.ID, p.handle)
	if err != nil {
		return nil, err
	}
	p.ep = ep
	return p, nil
}

// Stats returns a snapshot of the proposer counters.
func (p *Proposer) Stats() ProposerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Stop makes further proposals fail.
func (p *Proposer) Stop() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
	p.ep.Close()
}

func (p *Proposer) majority() int { return len(p.cfg.Acceptors)/2 + 1 }

func (p *Proposer) handle(from types.NodeID, msg transport.Message) {
	switch m := msg.(type) {
	case Promise:
		key := phaseKey{ballot: m.Ballot, slot: m.Slot}
		p.mu.Lock()
		w := p.p1[key]
		if w == nil && !m.OK {
			// A rejection carries the acceptor's promised ballot, not
			// ours; find the waiter by slot.
			for k, cand := range p.p1 {
				if k.slot == m.Slot {
					w, key = cand, k
					break
				}
			}
		}
		if w != nil && !w.closed {
			if m.OK {
				w.oks[m.From] = m
			} else {
				w.rejects++
				if m.Ballot > w.highest {
					w.highest = m.Ballot
				}
			}
			if len(w.oks) >= w.need || w.rejects >= w.need {
				w.closed = true
				close(w.done)
			}
		}
		p.mu.Unlock()
	case Accepted:
		key := phaseKey{ballot: m.Ballot, slot: m.Slot}
		p.mu.Lock()
		w := p.p2[key]
		if w == nil && !m.OK {
			for k, cand := range p.p2 {
				if k.slot == m.Slot {
					w, key = cand, k
					break
				}
			}
		}
		if w != nil && !w.closed {
			if m.OK {
				w.accepted[m.From] = m
			} else {
				w.rejects++
				if m.Ballot > w.highest {
					w.highest = m.Ballot
				}
			}
			if len(w.accepted) >= w.need || w.rejects >= w.need {
				w.closed = true
				close(w.done)
			}
		}
		p.mu.Unlock()
	}
}

// ProposeSlot runs Paxos for one slot and returns the value decided there
// (which may be a competing proposer's value — callers retry on the next
// slot in that case).
func (p *Proposer) ProposeSlot(slot uint64, v Value) (Value, error) {
	attempts := 0
	for {
		p.mu.Lock()
		if p.stopped {
			p.mu.Unlock()
			return Value{}, ErrStopped
		}
		b := MakeBallot(p.round, p.cfg.ID)
		p.stats.Proposals++
		p.mu.Unlock()

		attempts++
		if p.cfg.MaxAttempts > 0 && attempts > p.cfg.MaxAttempts {
			return Value{}, fmt.Errorf("paxos: slot %d undecided after %d attempts (livelock)", slot, attempts-1)
		}

		vUse := v
		// The Multi-Paxos fast path is only safe while this proposer's
		// ballot has never been preempted on the slot: after a rejection a
		// competitor may have gotten a value accepted, and Phase 1 is the
		// only way to discover (and re-propose) it. Skipping it after a
		// preemption would re-decide a settled slot — a safety violation.
		if !p.cfg.SkipPhase1 || attempts > 1 {
			promised, chosen, preempted := p.phase1(b, slot)
			if !promised {
				p.bumpRound(preempted)
				continue
			}
			if !chosen.zero() {
				vUse = chosen // must re-propose the highest accepted value
			}
		}
		ok, preempted := p.phase2(b, slot, vUse)
		if !ok {
			p.bumpRound(preempted)
			continue
		}
		p.mu.Lock()
		p.stats.Decided++
		if vUse.ReqID != v.ReqID || vUse.From != v.From {
			p.stats.StolenSlots++
		}
		p.mu.Unlock()
		return vUse, nil
	}
}

// bumpRound advances past the highest ballot that beat us.
func (p *Proposer) bumpRound(seen Ballot) {
	p.mu.Lock()
	p.stats.Preemptions++
	if seen.Round() >= p.round {
		p.round = seen.Round() + 1
	} else {
		p.round++
	}
	p.mu.Unlock()
}

// phase1 runs Prepare/Promise. Returns (majorityPromised, highest accepted
// value to re-propose, highest rejecting ballot).
func (p *Proposer) phase1(b Ballot, slot uint64) (bool, Value, Ballot) {
	key := phaseKey{ballot: b, slot: slot}
	w := &phaseWait{oks: make(map[types.NodeID]Promise), accepted: map[types.NodeID]Accepted{}, need: p.majority(), done: make(chan struct{})}
	p.mu.Lock()
	p.p1[key] = w
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.p1, key)
		p.mu.Unlock()
	}()
	p.ep.Broadcast(p.cfg.Acceptors, Prepare{Ballot: b, Slot: slot})
	select {
	case <-w.done:
	case <-time.After(p.cfg.PhaseTimeout):
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !w.closed {
		w.closed = true
		close(w.done)
	}
	if len(w.oks) < w.need {
		return false, Value{}, w.highest
	}
	var best Promise
	for _, pr := range w.oks {
		if pr.AcceptedBallot > best.AcceptedBallot {
			best = pr
		}
	}
	return true, best.AcceptedValue, 0
}

// phase2 runs Accept/Accepted. Returns (majorityAccepted, highest
// rejecting ballot).
func (p *Proposer) phase2(b Ballot, slot uint64, v Value) (bool, Ballot) {
	key := phaseKey{ballot: b, slot: slot}
	w := &phaseWait{oks: map[types.NodeID]Promise{}, accepted: make(map[types.NodeID]Accepted), need: p.majority(), done: make(chan struct{})}
	p.mu.Lock()
	p.p2[key] = w
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.p2, key)
		p.mu.Unlock()
	}()
	p.ep.Broadcast(p.cfg.Acceptors, Accept{Ballot: b, Slot: slot, Value: v})
	select {
	case <-w.done:
	case <-time.After(p.cfg.PhaseTimeout):
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !w.closed {
		w.closed = true
		close(w.done)
	}
	if len(w.accepted) < w.need {
		return false, w.highest
	}
	return true, 0
}
