// Package paxos implements the Paxos-based ordering baseline FlexLog is
// compared against (§3.3, §9.1 / Figure 4 right).
//
// Scalog — whose ordering layer Boki adopts — maintains the shared log's
// tail as a Paxos-replicated counter. This package provides:
//
//   - classic single-decree Paxos (Prepare/Promise, Accept/Accepted) over
//     the same transport fabric as FlexLog's sequencers, for an
//     apples-to-apples comparison;
//   - a Multi-Paxos counter service (a stable leader skips Phase 1 and runs
//     one Accept round per increment) — the optimized baseline of Fig. 4;
//   - a multi-proposer mode in which concurrent proposers compete for
//     slots with increasing ballots. As §3.3 observes, this mode exhibits
//     livelock: proposers keep preempting one another and throughput
//     collapses. The Stats expose the preemption counts that evidence it.
package paxos

import (
	"sync"

	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// Ballot is a Paxos ballot number: (round << 32) | proposerID, so ballots
// of distinct proposers never tie.
type Ballot uint64

// MakeBallot composes a ballot.
func MakeBallot(round uint32, proposer types.NodeID) Ballot {
	return Ballot(uint64(round)<<32 | uint64(proposer))
}

// Round extracts the round half.
func (b Ballot) Round() uint32 { return uint32(uint64(b) >> 32) }

// Proposer extracts the proposer id.
func (b Ballot) Proposer() types.NodeID { return types.NodeID(uint32(uint64(b))) }

// Value is the payload agreed on in one slot: a request for N sequence
// numbers, identified by the request id for response routing.
type Value struct {
	N     uint32
	ReqID uint64
	From  types.NodeID
}

// zeroValue reports whether the value is unset.
func (v Value) zero() bool { return v == Value{} }

// ---- Wire messages ----

// Prepare is Phase-1a.
type Prepare struct {
	Ballot Ballot
	Slot   uint64
}

// Promise is Phase-1b. OK=false carries the higher promised ballot.
type Promise struct {
	Ballot         Ballot
	Slot           uint64
	OK             bool
	AcceptedBallot Ballot
	AcceptedValue  Value
	From           types.NodeID
}

// Accept is Phase-2a.
type Accept struct {
	Ballot Ballot
	Slot   uint64
	Value  Value
}

// Accepted is Phase-2b. OK=false carries the higher promised ballot.
type Accepted struct {
	Ballot Ballot
	Slot   uint64
	OK     bool
	From   types.NodeID
}

// ---- Acceptor ----

type slotState struct {
	promised       Ballot
	acceptedBallot Ballot
	acceptedValue  Value
}

// Acceptor is a Paxos acceptor node.
type Acceptor struct {
	id types.NodeID
	ep transport.Endpoint

	mu    sync.Mutex
	slots map[uint64]*slotState

	stats AcceptorStats
}

// AcceptorStats counts acceptor-side events.
type AcceptorStats struct {
	Promises  uint64
	Rejects   uint64
	Accepteds uint64
}

// NewAcceptor creates and registers an acceptor.
func NewAcceptor(id types.NodeID, net *transport.Network) (*Acceptor, error) {
	a := &Acceptor{id: id, slots: make(map[uint64]*slotState)}
	ep, err := net.Register(id, a.handle)
	if err != nil {
		return nil, err
	}
	a.ep = ep
	return a, nil
}

// Stats returns a snapshot of the acceptor counters.
func (a *Acceptor) Stats() AcceptorStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

func (a *Acceptor) slot(s uint64) *slotState {
	st := a.slots[s]
	if st == nil {
		st = &slotState{}
		a.slots[s] = st
	}
	return st
}

func (a *Acceptor) handle(from types.NodeID, msg transport.Message) {
	switch m := msg.(type) {
	case Prepare:
		a.mu.Lock()
		st := a.slot(m.Slot)
		if m.Ballot >= st.promised {
			st.promised = m.Ballot
			a.stats.Promises++
			resp := Promise{
				Ballot: m.Ballot, Slot: m.Slot, OK: true,
				AcceptedBallot: st.acceptedBallot, AcceptedValue: st.acceptedValue,
				From: a.id,
			}
			a.mu.Unlock()
			a.ep.Send(from, resp)
			return
		}
		a.stats.Rejects++
		resp := Promise{Ballot: st.promised, Slot: m.Slot, OK: false, From: a.id}
		a.mu.Unlock()
		a.ep.Send(from, resp)
	case Accept:
		a.mu.Lock()
		st := a.slot(m.Slot)
		if m.Ballot >= st.promised {
			st.promised = m.Ballot
			st.acceptedBallot = m.Ballot
			st.acceptedValue = m.Value
			a.stats.Accepteds++
			resp := Accepted{Ballot: m.Ballot, Slot: m.Slot, OK: true, From: a.id}
			a.mu.Unlock()
			a.ep.Send(from, resp)
			return
		}
		a.stats.Rejects++
		resp := Accepted{Ballot: st.promised, Slot: m.Slot, OK: false, From: a.id}
		a.mu.Unlock()
		a.ep.Send(from, resp)
	}
}
