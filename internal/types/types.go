// Package types defines the identifiers shared across FlexLog's layers:
// sequence numbers, client tokens, colors, and log records (§4, §5.2, §6.1).
package types

import "fmt"

// SN is a 64-bit sequence number. Per §5.2 (Safety), the most significant
// 32 bits carry the sequencer epoch and the least significant 32 bits a
// per-epoch counter, so SNs grow monotonically across sequencer failovers.
// Epochs start at 1, therefore 0 never names a valid record and serves as
// the "unassigned" sentinel.
type SN uint64

// InvalidSN marks a record that has not been assigned a sequence number yet.
const InvalidSN SN = 0

// MakeSN composes a sequence number from an epoch and a counter value.
func MakeSN(epoch uint32, counter uint32) SN {
	return SN(uint64(epoch)<<32 | uint64(counter))
}

// Epoch extracts the epoch half of the SN.
func (s SN) Epoch() uint32 { return uint32(uint64(s) >> 32) }

// Counter extracts the per-epoch counter half of the SN.
func (s SN) Counter() uint32 { return uint32(uint64(s)) }

// Valid reports whether the SN names a committed record.
func (s SN) Valid() bool { return s != InvalidSN }

func (s SN) String() string {
	return fmt.Sprintf("sn(e=%d,c=%d)", s.Epoch(), s.Counter())
}

// Token uniquely identifies an append request: the caller's function id in
// the high 32 bits and a per-caller counter in the low 32 (Alg. 1 line 6).
// Replicas and sequencers deduplicate retries by token.
type Token uint64

// MakeToken composes a token from a function id and a request counter.
func MakeToken(fid uint32, counter uint32) Token {
	return Token(uint64(fid)<<32 | uint64(counter))
}

// FID extracts the function id that issued the request.
func (t Token) FID() uint32 { return uint32(uint64(t) >> 32) }

// Counter extracts the per-caller request counter.
func (t Token) Counter() uint32 { return uint32(uint64(t)) }

func (t Token) String() string {
	return fmt.Sprintf("tok(fid=%d,c=%d)", t.FID(), t.Counter())
}

// ColorID names a color (a region of the log, §4). Color 0 is the master
// region at the root of the region tree.
type ColorID uint32

// MasterColor is the root region: appends ordered here are totally ordered
// across the entire log.
const MasterColor ColorID = 0

func (c ColorID) String() string { return fmt.Sprintf("color#%d", c) }

// Record is one log entry.
type Record struct {
	Token Token
	SN    SN // InvalidSN until the ordering layer assigns a position
	Color ColorID
	Data  []byte
}

// Committed reports whether the record has a log position.
func (r Record) Committed() bool { return r.SN.Valid() }

// Clone returns a deep copy of the record.
func (r Record) Clone() Record {
	out := r
	out.Data = append([]byte(nil), r.Data...)
	return out
}

// TenantID names a tenant — the unit of QoS accounting, admission control,
// and weighted-fair scheduling (§5.1 sketches multi-tenancy as
// colors-per-application; tenants own disjoint color sets). Tenant 0 is the
// default tenant: untenanted traffic, never throttled by admission control
// but still scheduled fairly.
type TenantID uint32

// DefaultTenant is the identity of untenanted traffic.
const DefaultTenant TenantID = 0

func (t TenantID) String() string { return fmt.Sprintf("tenant#%d", t) }

// NodeID identifies a process in the deployment (replica, sequencer, or
// client). IDs are unique across the whole topology.
type NodeID uint32

func (n NodeID) String() string { return fmt.Sprintf("node#%d", n) }

// ShardID identifies a shard (a replica group, §4).
type ShardID uint32

func (s ShardID) String() string { return fmt.Sprintf("shard#%d", s) }

// Epoch numbers sequencer leadership terms (§5.2). A new epoch begins each
// time a sequencer fails over; it forms the high half of every SN issued by
// the new leader.
type Epoch uint32

// SNFor composes the SN for a counter value within this epoch.
func (e Epoch) SNFor(counter uint32) SN { return MakeSN(uint32(e), counter) }
