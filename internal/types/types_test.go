package types

import (
	"testing"
	"testing/quick"
)

func TestSNComposition(t *testing.T) {
	sn := MakeSN(3, 42)
	if sn.Epoch() != 3 || sn.Counter() != 42 {
		t.Fatalf("sn parts = %d,%d", sn.Epoch(), sn.Counter())
	}
	if !sn.Valid() {
		t.Fatal("composed SN should be valid")
	}
	if InvalidSN.Valid() {
		t.Fatal("InvalidSN should be invalid")
	}
}

// Property: SN round-trips and epoch dominance — a higher epoch always
// yields a larger SN than any counter value in a lower epoch (§5.2 Safety).
func TestSNOrderingProperty(t *testing.T) {
	f := func(e1, c1, e2, c2 uint32) bool {
		s1, s2 := MakeSN(e1, c1), MakeSN(e2, c2)
		if s1.Epoch() != e1 || s1.Counter() != c1 {
			return false
		}
		if e1 < e2 && s1 >= s2 {
			return false
		}
		if e1 == e2 && c1 < c2 && s1 >= s2 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTokenRoundTripProperty(t *testing.T) {
	f := func(fid, ctr uint32) bool {
		tok := MakeToken(fid, ctr)
		return tok.FID() == fid && tok.Counter() == ctr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecordClone(t *testing.T) {
	r := Record{Token: MakeToken(1, 2), SN: MakeSN(1, 1), Color: 5, Data: []byte("abc")}
	c := r.Clone()
	c.Data[0] = 'z'
	if r.Data[0] != 'a' {
		t.Fatal("clone aliases data")
	}
	if !r.Committed() {
		t.Fatal("record with SN should be committed")
	}
	if (Record{}).Committed() {
		t.Fatal("zero record should be uncommitted")
	}
}

func TestStringers(t *testing.T) {
	for _, s := range []string{
		MakeSN(1, 2).String(),
		MakeToken(1, 2).String(),
		ColorID(3).String(),
		NodeID(4).String(),
		ShardID(5).String(),
	} {
		if s == "" {
			t.Fatal("empty stringer output")
		}
	}
}
