package lsm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"flexlog/internal/ssd"
)

// SSTable layout on the simulated SSD (one file per table):
//
//	data:    [u32 klen][key][u32 vlen|tombstoneBit][value]...
//	index:   [u32 klen][key][u64 offset]...   (every indexInterval-th key)
//	bloom:   [u32 k][u32 nwords][words...]
//	footer:  [u64 dataLen][u64 indexLen][u64 bloomLen][u64 count][u32 magic]
//
// Readers keep the (small) index and bloom filter in memory and issue one
// device read per lookup, as RocksDB does for its block reads.

const (
	sstMagic      = 0x4C534D31 // "LSM1"
	indexInterval = 16
	tombstoneBit  = 1 << 31
	footerSize    = 8*4 + 4
)

type indexEntry struct {
	key    []byte
	offset uint64
}

// sstable is an open (readable) table.
type sstable struct {
	name    string
	dev     *ssd.Device
	index   []indexEntry
	bloom   *bloomFilter
	dataLen uint64
	count   int
	minKey  []byte
	maxKey  []byte
}

// writeSSTable serializes sorted (key,value) pairs (nil value = tombstone)
// into a new table file and syncs it.
func writeSSTable(dev *ssd.Device, name string, keys, values [][]byte) (*sstable, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("lsm: empty sstable")
	}
	var data, index bytes.Buffer
	bloom := newBloomFilter(len(keys))
	var idx []indexEntry
	for i, k := range keys {
		off := uint64(data.Len())
		if i%indexInterval == 0 {
			writeBytes(&index, k)
			var ob [8]byte
			binary.LittleEndian.PutUint64(ob[:], off)
			index.Write(ob[:])
			idx = append(idx, indexEntry{key: k, offset: off})
		}
		bloom.add(k)
		writeBytes(&data, k)
		v := values[i]
		vlen := uint32(len(v))
		if v == nil {
			vlen = tombstoneBit
		}
		var vb [4]byte
		binary.LittleEndian.PutUint32(vb[:], vlen)
		data.Write(vb[:])
		data.Write(v)
	}
	var bloomBuf bytes.Buffer
	var kb [4]byte
	binary.LittleEndian.PutUint32(kb[:], uint32(bloom.k))
	bloomBuf.Write(kb[:])
	binary.LittleEndian.PutUint32(kb[:], uint32(len(bloom.bits)))
	bloomBuf.Write(kb[:])
	for _, w := range bloom.bits {
		var wb [8]byte
		binary.LittleEndian.PutUint64(wb[:], w)
		bloomBuf.Write(wb[:])
	}
	footer := make([]byte, footerSize)
	binary.LittleEndian.PutUint64(footer[0:8], uint64(data.Len()))
	binary.LittleEndian.PutUint64(footer[8:16], uint64(index.Len()))
	binary.LittleEndian.PutUint64(footer[16:24], uint64(bloomBuf.Len()))
	binary.LittleEndian.PutUint64(footer[24:32], uint64(len(keys)))
	binary.LittleEndian.PutUint32(footer[32:36], sstMagic)

	if err := dev.Create(name); err != nil {
		return nil, err
	}
	for _, part := range [][]byte{data.Bytes(), index.Bytes(), bloomBuf.Bytes(), footer} {
		if _, err := dev.Append(name, part); err != nil {
			return nil, err
		}
	}
	if err := dev.Sync(name); err != nil {
		return nil, err
	}
	return &sstable{
		name: name, dev: dev, index: idx, bloom: bloom,
		dataLen: uint64(data.Len()), count: len(keys),
		minKey: append([]byte(nil), keys[0]...),
		maxKey: append([]byte(nil), keys[len(keys)-1]...),
	}, nil
}

func writeBytes(buf *bytes.Buffer, b []byte) {
	var lb [4]byte
	binary.LittleEndian.PutUint32(lb[:], uint32(len(b)))
	buf.Write(lb[:])
	buf.Write(b)
}

// openSSTable loads a table's index and bloom filter from the device.
func openSSTable(dev *ssd.Device, name string) (*sstable, error) {
	size, err := dev.Size(name)
	if err != nil {
		return nil, err
	}
	if size < footerSize {
		return nil, fmt.Errorf("lsm: table %s too small", name)
	}
	footer := make([]byte, footerSize)
	if err := dev.ReadAt(name, size-footerSize, footer); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(footer[32:36]) != sstMagic {
		return nil, fmt.Errorf("lsm: table %s bad magic", name)
	}
	dataLen := binary.LittleEndian.Uint64(footer[0:8])
	indexLen := binary.LittleEndian.Uint64(footer[8:16])
	bloomLen := binary.LittleEndian.Uint64(footer[16:24])
	count := binary.LittleEndian.Uint64(footer[24:32])

	if dataLen+indexLen+bloomLen+footerSize != uint64(size) {
		return nil, fmt.Errorf("lsm: table %s sections (%d+%d+%d+%d) disagree with size %d",
			name, dataLen, indexLen, bloomLen, footerSize, size)
	}
	indexBuf := make([]byte, indexLen)
	if err := dev.ReadAt(name, int64(dataLen), indexBuf); err != nil {
		return nil, err
	}
	var idx []indexEntry
	for off := 0; off < len(indexBuf); {
		if off+4 > len(indexBuf) {
			return nil, fmt.Errorf("lsm: table %s index truncated", name)
		}
		klen := int(binary.LittleEndian.Uint32(indexBuf[off : off+4]))
		off += 4
		if klen < 0 || off+klen+8 > len(indexBuf) {
			return nil, fmt.Errorf("lsm: table %s index entry overruns", name)
		}
		key := append([]byte(nil), indexBuf[off:off+klen]...)
		off += klen
		dataOff := binary.LittleEndian.Uint64(indexBuf[off : off+8])
		off += 8
		if dataOff > dataLen {
			return nil, fmt.Errorf("lsm: table %s index offset %d beyond data %d", name, dataOff, dataLen)
		}
		idx = append(idx, indexEntry{key: key, offset: dataOff})
	}
	if bloomLen < 8 {
		return nil, fmt.Errorf("lsm: table %s bloom section truncated", name)
	}
	bloomBuf := make([]byte, bloomLen)
	if err := dev.ReadAt(name, int64(dataLen+indexLen), bloomBuf); err != nil {
		return nil, err
	}
	k := int(binary.LittleEndian.Uint32(bloomBuf[0:4]))
	nwords := int(binary.LittleEndian.Uint32(bloomBuf[4:8]))
	if nwords < 0 || uint64(8+nwords*8) > bloomLen {
		return nil, fmt.Errorf("lsm: table %s bloom words %d overrun section %d", name, nwords, bloomLen)
	}
	words := make([]uint64, nwords)
	for i := 0; i < nwords; i++ {
		words[i] = binary.LittleEndian.Uint64(bloomBuf[8+i*8 : 16+i*8])
	}
	t := &sstable{
		name: name, dev: dev, index: idx,
		bloom: bloomFromBits(words, k), dataLen: dataLen, count: int(count),
	}
	if len(idx) > 0 {
		t.minKey = idx[0].key
	}
	return t, nil
}

// get looks a key up: bloom check, index binary search, then one block
// read and scan.
func (t *sstable) get(key []byte) (value []byte, tombstone, found bool, err error) {
	if !t.bloom.mayContain(key) {
		return nil, false, false, nil
	}
	// Find the last index entry with key <= target.
	i := sort.Search(len(t.index), func(i int) bool {
		return bytes.Compare(t.index[i].key, key) > 0
	}) - 1
	if i < 0 {
		return nil, false, false, nil
	}
	start := t.index[i].offset
	end := t.dataLen
	if i+1 < len(t.index) {
		end = t.index[i+1].offset
	}
	block := make([]byte, end-start)
	if err := t.dev.ReadAt(t.name, int64(start), block); err != nil {
		return nil, false, false, err
	}
	for off := 0; off < len(block); {
		k, v, tomb, next, ok := decodeEntryAt(block, off)
		if !ok {
			return nil, false, false, fmt.Errorf("lsm: table %s has a corrupt data block at %d", t.name, start+uint64(off))
		}
		if bytes.Equal(k, key) {
			if tomb {
				return nil, true, true, nil
			}
			return append([]byte(nil), v...), false, true, nil
		}
		off = next
	}
	return nil, false, false, nil
}

// decodeEntryAt parses one data-block entry with full bounds checking.
func decodeEntryAt(block []byte, off int) (key, value []byte, tomb bool, next int, ok bool) {
	if off+4 > len(block) {
		return nil, nil, false, 0, false
	}
	klen := int(binary.LittleEndian.Uint32(block[off : off+4]))
	off += 4
	if klen < 0 || off+klen+4 > len(block) {
		return nil, nil, false, 0, false
	}
	key = block[off : off+klen]
	off += klen
	vlen := binary.LittleEndian.Uint32(block[off : off+4])
	off += 4
	tomb = vlen&tombstoneBit != 0
	dlen := int(vlen &^ tombstoneBit)
	if tomb {
		dlen = 0
	}
	if dlen < 0 || off+dlen > len(block) {
		return nil, nil, false, 0, false
	}
	value = block[off : off+dlen]
	return key, value, tomb, off + dlen, true
}

// each streams all entries of the table in key order (used by compaction).
func (t *sstable) each(fn func(key, value []byte, tombstone bool) error) error {
	raw := make([]byte, t.dataLen)
	if err := t.dev.ReadAt(t.name, 0, raw); err != nil {
		return err
	}
	for off := 0; off < len(raw); {
		key, value, tomb, next, ok := decodeEntryAt(raw, off)
		if !ok {
			return fmt.Errorf("lsm: table %s has a corrupt data block at %d", t.name, off)
		}
		if err := fn(key, value, tomb); err != nil {
			return err
		}
		off = next
	}
	return nil
}
