// Package lsm is a log-structured merge-tree storage engine over the
// simulated SSD — the stand-in for RocksDB as the backend of the Boki
// baseline (§9.1: "Boki is built on top of RocksDB … with
// Write-Ahead-Log enabled").
//
// Architecture (mirroring the RocksDB pieces that dominate the paper's
// Fig. 5–7 costs):
//
//   - writes go to a write-ahead log on the SSD and are synced per batch —
//     the sync syscalls are exactly the overhead §9.1 blames for Boki's
//     storage throughput ("Boki's limited performance mainly derives from
//     the sync syscalls");
//   - a skip-list MemTable absorbs writes; at MemTableBytes it is flushed
//     to a sorted SSTable with a sparse index and a Bloom filter;
//   - reads consult the MemTable, the immutable (flushing) memtable, then
//     L0 tables newest-to-oldest, then the compacted L1 table;
//   - a background compaction merges L0 into L1 when L0 grows beyond
//     CompactionTrigger tables;
//   - crash recovery replays the WAL's synced prefix.
package lsm

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"flexlog/internal/ssd"
)

// ErrClosed is returned after Close.
var ErrClosed = errors.New("lsm: closed")

// ErrNotFound is returned for absent (or deleted) keys.
var ErrNotFound = errors.New("lsm: key not found")

// Config sizes the engine.
type Config struct {
	// MemTableBytes triggers a flush (RocksDB default in the paper: 64 MiB;
	// tests use much smaller values).
	MemTableBytes int
	// CompactionTrigger is the L0 table count that triggers compaction.
	CompactionTrigger int
	// SyncWAL syncs the WAL on every write batch (durability on; the
	// paper's configuration). Disabling it is the ablation knob.
	SyncWAL bool
}

// DefaultConfig mirrors the paper's RocksDB setup at test-friendly scale.
func DefaultConfig() Config {
	return Config{
		MemTableBytes:     64 << 20,
		CompactionTrigger: 4,
		SyncWAL:           true,
	}
}

// Stats counts engine activity.
type Stats struct {
	Puts, Gets, Deletes uint64
	Flushes             uint64
	Compactions         uint64
	WALSyncs            uint64
	BloomSkips          uint64
	SSD                 ssd.Stats
}

// hotStats are the counters touched on the concurrent read path.
type hotStats struct {
	gets       atomic.Uint64
	bloomSkips atomic.Uint64
}

// DB is the storage engine.
type DB struct {
	cfg Config
	dev *ssd.Device

	mu        sync.RWMutex
	mem       *skipList
	imms      []immEntry // immutable memtables queued for flush, oldest first
	l0        []*sstable
	l1        *sstable
	walName   string
	walSeq    uint64
	tableSeq  uint64
	stats     Stats
	hot       hotStats
	flushCond *sync.Cond
	flushing  bool
	bgWG      sync.WaitGroup // flushes + compactions
	loopWG    sync.WaitGroup // committer loop

	closeMu sync.RWMutex // guards closed + enqueue into writeCh
	closed  bool
	writeCh chan *pendingWrite
	stopCh  chan struct{}
}

// Open creates an engine over the device, replaying any existing WAL.
func Open(cfg Config, dev *ssd.Device) (*DB, error) {
	if cfg.MemTableBytes <= 0 {
		cfg.MemTableBytes = 64 << 20
	}
	if cfg.CompactionTrigger <= 0 {
		cfg.CompactionTrigger = 4
	}
	db := &DB{
		cfg: cfg, dev: dev, mem: newSkipList(1),
		writeCh: make(chan *pendingWrite, 1024),
		stopCh:  make(chan struct{}),
	}
	db.flushCond = sync.NewCond(&db.mu)
	db.walName = "wal-1"
	db.walSeq = 1
	if err := db.recover(); err != nil {
		return nil, err
	}
	if err := dev.Create(db.walName); err != nil {
		return nil, err
	}
	db.loopWG.Add(1)
	go db.committerLoop()
	return db, nil
}

// recover replays the synced WAL prefix and re-opens existing tables.
// Device listings are unordered, so tables and WALs are sorted by their
// sequence number before use (L0 newest-first; WALs oldest-first so newer
// entries overwrite older ones in the memtable).
func (db *DB) recover() error {
	type seqName struct {
		seq  uint64
		name string
	}
	var l0s, wals []seqName
	for _, name := range db.dev.List() {
		var seq uint64
		if n, _ := fmt.Sscanf(name, "sst-%d", &seq); n == 1 {
			l0s = append(l0s, seqName{seq, name})
			if seq >= db.tableSeq {
				db.tableSeq = seq + 1
			}
			continue
		}
		if n, _ := fmt.Sscanf(name, "l1-%d", &seq); n == 1 {
			t, err := openSSTable(db.dev, name)
			if err != nil {
				return err
			}
			// At most one L1 should exist; keep the newest if a crash
			// left a stale one behind.
			if db.l1 == nil || seq >= db.tableSeq-1 {
				db.l1 = t
			}
			if seq >= db.tableSeq {
				db.tableSeq = seq + 1
			}
			continue
		}
		if n, _ := fmt.Sscanf(name, "wal-%d", &seq); n == 1 {
			wals = append(wals, seqName{seq, name})
			if seq >= db.walSeq {
				db.walSeq = seq + 1
			}
		}
	}
	sort.Slice(l0s, func(i, j int) bool { return l0s[i].seq > l0s[j].seq }) // newest first
	for _, sn := range l0s {
		t, err := openSSTable(db.dev, sn.name)
		if err != nil {
			return err
		}
		db.l0 = append(db.l0, t)
	}
	sort.Slice(wals, func(i, j int) bool { return wals[i].seq < wals[j].seq }) // oldest first
	for _, sn := range wals {
		if err := db.replayWAL(sn.name); err != nil {
			return err
		}
		db.dev.Delete(sn.name)
	}
	db.walName = fmt.Sprintf("wal-%d", db.walSeq)
	return nil
}

// replayWAL inserts the WAL's records into the memtable.
func (db *DB) replayWAL(name string) error {
	size, err := db.dev.Size(name)
	if err != nil {
		return err
	}
	raw := make([]byte, size)
	if err := db.dev.ReadAt(name, 0, raw); err != nil {
		return err
	}
	for off := 0; off+8 <= len(raw); {
		klen := int(leU32(raw[off : off+4]))
		vlen := leU32(raw[off+4 : off+8])
		off += 8
		tomb := vlen&tombstoneBit != 0
		dlen := int(vlen &^ tombstoneBit)
		if off+klen+dlenSafe(tomb, dlen) > len(raw) {
			break // torn tail (unsynced remainder)
		}
		key := append([]byte(nil), raw[off:off+klen]...)
		off += klen
		var val []byte
		if !tomb {
			val = append([]byte(nil), raw[off:off+dlen]...)
			off += dlen
		}
		db.mem.set(key, val)
	}
	return nil
}

func dlenSafe(tomb bool, dlen int) int {
	if tomb {
		return 0
	}
	return dlen
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// immEntry is a rotated memtable waiting to be flushed, together with the
// WAL file that covers it.
type immEntry struct {
	sl  *skipList
	wal string
}

// pendingWrite is one queued write awaiting group commit.
type pendingWrite struct {
	key, value []byte
	tomb       bool
	done       chan error
}

// Put stores a key/value pair. The write is durable (WAL synced) when Put
// returns.
func (db *DB) Put(key, value []byte) error {
	if value == nil {
		value = []byte{}
	}
	return db.write(key, value, false)
}

// Delete removes a key (tombstone).
func (db *DB) Delete(key []byte) error {
	return db.write(key, nil, true)
}

// write enqueues the record for the committer's group commit — the
// RocksDB-style write group that lets WAL-synced writers scale with
// threads (Fig. 6): concurrent writers share one WAL sync.
func (db *DB) write(key, value []byte, tomb bool) error {
	pw := &pendingWrite{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
		tomb:  tomb,
		done:  make(chan error, 1),
	}
	if tomb {
		pw.value = nil
	}
	db.closeMu.RLock()
	if db.closed {
		db.closeMu.RUnlock()
		return ErrClosed
	}
	db.writeCh <- pw
	db.closeMu.RUnlock()
	return <-pw.done
}

// committerLoop batches queued writes: one WAL append + one sync per
// group, then the memtable inserts.
func (db *DB) committerLoop() {
	defer db.loopWG.Done()
	const maxGroup = 128
	batch := make([]*pendingWrite, 0, maxGroup)
	for {
		batch = batch[:0]
		select {
		case pw := <-db.writeCh:
			batch = append(batch, pw)
		case <-db.stopCh:
			// Drain what is left, then exit.
			for {
				select {
				case pw := <-db.writeCh:
					pw.done <- ErrClosed
				default:
					return
				}
			}
		}
		// Give concurrently released writers a chance to enqueue before the
		// group is cut — on few-core hosts the committer otherwise wins
		// every scheduling race and groups degenerate to size one.
		runtime.Gosched()
	drain:
		for len(batch) < maxGroup {
			select {
			case pw := <-db.writeCh:
				batch = append(batch, pw)
			default:
				break drain
			}
		}
		db.commitGroup(batch)
	}
}

// commitGroup durably writes one group and applies it to the memtable.
func (db *DB) commitGroup(batch []*pendingWrite) {
	var buf []byte
	for _, pw := range batch {
		rec := make([]byte, 8+len(pw.key)+len(pw.value))
		putLeU32(rec[0:4], uint32(len(pw.key)))
		vlen := uint32(len(pw.value))
		if pw.tomb {
			vlen = tombstoneBit
		}
		putLeU32(rec[4:8], vlen)
		copy(rec[8:], pw.key)
		copy(rec[8+len(pw.key):], pw.value)
		buf = append(buf, rec...)
	}
	db.mu.Lock()
	wal := db.walName
	db.mu.Unlock()

	var commitErr error
	if _, err := db.dev.Append(wal, buf); err != nil {
		commitErr = err
	} else if db.cfg.SyncWAL {
		commitErr = db.dev.Sync(wal)
	}

	db.mu.Lock()
	if commitErr == nil {
		for _, pw := range batch {
			if pw.tomb {
				db.mem.set(pw.key, nil)
				db.stats.Deletes++
			} else {
				db.mem.set(pw.key, pw.value)
				db.stats.Puts++
			}
		}
		if db.cfg.SyncWAL {
			db.stats.WALSyncs++
		}
		if db.mem.bytes >= db.cfg.MemTableBytes {
			db.rotateLocked()
		}
	}
	db.mu.Unlock()
	for _, pw := range batch {
		pw.done <- commitErr
	}
}

// rotateLocked queues the current memtable for flushing and starts the
// flusher if idle. Caller holds db.mu.
func (db *DB) rotateLocked() {
	db.imms = append(db.imms, immEntry{sl: db.mem, wal: db.walName})
	db.mem = newSkipList(int64(db.walSeq))
	db.walSeq++
	db.walName = fmt.Sprintf("wal-%d", db.walSeq)
	db.dev.Create(db.walName)
	if !db.flushing {
		db.flushing = true
		db.bgWG.Add(1)
		go db.flushLoop()
	}
}

func putLeU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// flushLoop drains the immutable-memtable queue, writing each as an L0
// SSTable, and triggers compaction when L0 grows past the trigger.
func (db *DB) flushLoop() {
	defer db.bgWG.Done()
	for {
		db.mu.Lock()
		if len(db.imms) == 0 {
			db.flushing = false
			db.flushCond.Broadcast()
			db.mu.Unlock()
			return
		}
		entry := db.imms[0]
		name := fmt.Sprintf("sst-%d", db.tableSeq)
		db.tableSeq++
		db.mu.Unlock()

		var keys, values [][]byte
		entry.sl.each(func(k, v []byte) bool {
			keys = append(keys, k)
			values = append(values, v)
			return true
		})
		var t *sstable
		var err error
		if len(keys) > 0 {
			t, err = writeSSTable(db.dev, name, keys, values)
		}

		db.mu.Lock()
		if err == nil {
			if t != nil {
				db.l0 = append([]*sstable{t}, db.l0...)
			}
			db.imms = db.imms[1:]
			db.stats.Flushes++
			db.dev.Delete(entry.wal)
		} else {
			// Leave the entry queued; a later flush retries. Avoid a hot
			// retry loop by giving up the flusher role.
			db.flushing = false
			db.flushCond.Broadcast()
			db.mu.Unlock()
			return
		}
		if len(db.l0) >= db.cfg.CompactionTrigger {
			db.bgWG.Add(1)
			go db.compact()
		}
		db.mu.Unlock()
	}
}

// compact merges all L0 tables and L1 into a new L1 (universal style).
func (db *DB) compact() {
	defer db.bgWG.Done()
	db.mu.Lock()
	l0 := append([]*sstable(nil), db.l0...)
	l1 := db.l1
	db.mu.Unlock()
	if len(l0) == 0 {
		return
	}
	// Merge newest-first: the first writer of a key wins.
	merged := newSkipList(42)
	seen := make(map[string]bool)
	ingest := func(t *sstable) error {
		return t.each(func(k, v []byte, tomb bool) error {
			if seen[string(k)] {
				return nil
			}
			seen[string(k)] = true
			if tomb {
				// Tombstones at the bottom level can be dropped entirely.
				merged.set(append([]byte(nil), k...), nil)
				return nil
			}
			merged.set(append([]byte(nil), k...), append([]byte(nil), v...))
			return nil
		})
	}
	for _, t := range l0 {
		if ingest(t) != nil {
			return
		}
	}
	if l1 != nil {
		if ingest(l1) != nil {
			return
		}
	}
	var keys, values [][]byte
	merged.each(func(k, v []byte) bool {
		if v == nil {
			return true // drop tombstones at the bottom level
		}
		keys = append(keys, k)
		values = append(values, v)
		return true
	})
	db.mu.Lock()
	name := fmt.Sprintf("l1-%d", db.tableSeq)
	db.tableSeq++
	db.mu.Unlock()

	var newL1 *sstable
	if len(keys) > 0 {
		var err error
		newL1, err = writeSSTable(db.dev, name, keys, values)
		if err != nil {
			return
		}
	}
	db.mu.Lock()
	// Drop exactly the tables we merged (new L0 flushes may have arrived).
	mergedSet := make(map[*sstable]bool, len(l0))
	for _, t := range l0 {
		mergedSet[t] = true
	}
	var rest []*sstable
	for _, t := range db.l0 {
		if !mergedSet[t] {
			rest = append(rest, t)
		}
	}
	db.l0 = rest
	oldL1 := db.l1
	db.l1 = newL1
	db.stats.Compactions++
	db.mu.Unlock()
	for _, t := range l0 {
		db.dev.Delete(t.name)
	}
	if oldL1 != nil {
		db.dev.Delete(oldL1.name)
	}
}

// Get returns the value for key, or ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) {
	db.closeMu.RLock()
	closed := db.closed
	db.closeMu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	db.mu.RLock()
	db.hot.gets.Add(1)
	if v, ok := db.mem.get(key); ok {
		db.mu.RUnlock()
		if v == nil {
			return nil, ErrNotFound
		}
		return v, nil
	}
	for i := len(db.imms) - 1; i >= 0; i-- { // newest immutable first
		if v, ok := db.imms[i].sl.get(key); ok {
			db.mu.RUnlock()
			if v == nil {
				return nil, ErrNotFound
			}
			return v, nil
		}
	}
	l0 := append([]*sstable(nil), db.l0...)
	l1 := db.l1
	db.mu.RUnlock()

	for _, t := range l0 {
		if !t.bloom.mayContain(key) {
			db.hot.bloomSkips.Add(1)
			continue
		}
		v, tomb, found, err := t.get(key)
		if err != nil {
			return nil, err
		}
		if found {
			if tomb {
				return nil, ErrNotFound
			}
			return v, nil
		}
	}
	if l1 != nil {
		v, tomb, found, err := l1.get(key)
		if err != nil {
			return nil, err
		}
		if found && !tomb {
			return v, nil
		}
	}
	return nil, ErrNotFound
}

// Flush forces the current memtable out and waits for all queued flushes
// (test and benchmark helper).
func (db *DB) Flush() {
	db.mu.Lock()
	if db.mem.length > 0 {
		db.rotateLocked()
	}
	for db.flushing {
		db.flushCond.Wait()
	}
	db.mu.Unlock()
}

// Stats returns a snapshot of the counters.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := db.stats
	s.Gets = db.hot.gets.Load()
	s.BloomSkips = db.hot.bloomSkips.Load()
	s.SSD = db.dev.Stats()
	return s
}

// L0Count returns the current number of level-0 tables (test hook).
func (db *DB) L0Count() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.l0)
}

// Close waits for background work and marks the engine closed.
func (db *DB) Close() error {
	db.closeMu.Lock()
	if db.closed {
		db.closeMu.Unlock()
		return nil
	}
	db.closed = true
	db.closeMu.Unlock()
	close(db.stopCh)
	db.loopWG.Wait()
	db.bgWG.Wait()
	return nil
}

// WaitBackground blocks until all in-flight flushes and compactions have
// completed (test and benchmark hook).
func (db *DB) WaitBackground() { db.bgWG.Wait() }
