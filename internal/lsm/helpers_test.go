package lsm

import "flexlog/internal/ssd"

func newTestDevice() *ssd.Device { return ssd.New(ssd.Zero()) }
