package lsm

import "hash/fnv"

// bloomFilter is a standard split Bloom filter with double hashing,
// attached to each SSTable so reads skip tables that cannot contain the
// key (the same role RocksDB's per-table filters play in Boki's read
// path).
type bloomFilter struct {
	bits []uint64
	k    int
}

// newBloomFilter sizes a filter for n keys at ~10 bits/key (k=7 gives
// ≈0.8% false positives, RocksDB's default ballpark).
func newBloomFilter(n int) *bloomFilter {
	if n < 1 {
		n = 1
	}
	nbits := n * 10
	words := (nbits + 63) / 64
	return &bloomFilter{bits: make([]uint64, words), k: 7}
}

// fromBits restores a filter from its serialized form.
func bloomFromBits(bits []uint64, k int) *bloomFilter {
	return &bloomFilter{bits: bits, k: k}
}

func bloomHash(key []byte) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(key)
	h1 := h.Sum64()
	h2 := h1>>33 | h1<<31 // derived second hash
	if h2 == 0 {
		h2 = 0x9E3779B97F4A7C15
	}
	return h1, h2
}

func (b *bloomFilter) add(key []byte) {
	if len(b.bits) == 0 {
		return
	}
	h1, h2 := bloomHash(key)
	n := uint64(len(b.bits) * 64)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % n
		b.bits[bit/64] |= 1 << (bit % 64)
	}
}

// mayContain reports whether the key may be present (false = definitely
// absent). A degenerate (empty) filter filters nothing.
func (b *bloomFilter) mayContain(key []byte) bool {
	if len(b.bits) == 0 {
		return true
	}
	h1, h2 := bloomHash(key)
	n := uint64(len(b.bits) * 64)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % n
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}
