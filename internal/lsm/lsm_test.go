package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"flexlog/internal/ssd"
)

func testDB(t *testing.T, cfg Config) (*DB, *ssd.Device) {
	t.Helper()
	dev := ssd.New(ssd.Zero())
	db, err := Open(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, dev
}

func smallCfg() Config {
	return Config{MemTableBytes: 4096, CompactionTrigger: 3, SyncWAL: true}
}

func key(i int) []byte   { return []byte(fmt.Sprintf("key-%06d", i)) }
func value(i int) []byte { return []byte(fmt.Sprintf("value-%06d", i)) }

func TestPutGetRoundTrip(t *testing.T) {
	db, _ := testDB(t, DefaultConfig())
	if err := db.Put(key(1), value(1)); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get(key(1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, value(1)) {
		t.Fatalf("get = %q", got)
	}
	if _, err := db.Get(key(2)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
}

func TestOverwrite(t *testing.T) {
	db, _ := testDB(t, DefaultConfig())
	db.Put(key(1), []byte("old"))
	db.Put(key(1), []byte("new"))
	got, _ := db.Get(key(1))
	if string(got) != "new" {
		t.Fatalf("get = %q", got)
	}
}

func TestDelete(t *testing.T) {
	db, _ := testDB(t, DefaultConfig())
	db.Put(key(1), value(1))
	if err := db.Delete(key(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(key(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
}

func TestFlushToSSTable(t *testing.T) {
	db, _ := testDB(t, smallCfg())
	const n = 200
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	db.Flush()
	if db.Stats().Flushes == 0 {
		t.Fatal("no memtable flushes happened")
	}
	for i := 0; i < n; i++ {
		got, err := db.Get(key(i))
		if err != nil {
			t.Fatalf("get %d after flush: %v", i, err)
		}
		if !bytes.Equal(got, value(i)) {
			t.Fatalf("get %d = %q", i, got)
		}
	}
}

func TestDeleteAcrossFlush(t *testing.T) {
	db, _ := testDB(t, smallCfg())
	db.Put(key(1), value(1))
	db.Flush()
	db.Delete(key(1))
	db.Flush()
	if _, err := db.Get(key(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tombstone across flush: %v", err)
	}
}

func TestCompactionPreservesData(t *testing.T) {
	db, _ := testDB(t, smallCfg())
	const n = 600
	for i := 0; i < n; i++ {
		if err := db.Put(key(i%100), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	db.Flush()
	db.WaitBackground()
	if db.Stats().Compactions == 0 {
		t.Fatal("compaction never ran")
	}
	// Latest value of every key survives.
	for k := 0; k < 100; k++ {
		want := value(500 + k) // last write of key k was at i = 500+k
		got, err := db.Get(key(k))
		if err != nil {
			t.Fatalf("get %d after compaction: %v", k, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("get %d = %q, want %q", k, got, want)
		}
	}
}

func TestWALRecoveryAfterCrash(t *testing.T) {
	dev := ssd.New(ssd.Zero())
	db, err := Open(smallCfg(), dev)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := db.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash: unsynced device state is dropped; the WAL was
	// synced on every write, so everything must survive.
	dev.Crash()
	dev.Recover()
	db2, err := Open(smallCfg(), dev)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 50; i++ {
		got, err := db2.Get(key(i))
		if err != nil {
			t.Fatalf("get %d after recovery: %v", i, err)
		}
		if !bytes.Equal(got, value(i)) {
			t.Fatalf("get %d = %q", i, got)
		}
	}
}

func TestNoSyncLosesUnsyncedOnCrash(t *testing.T) {
	dev := ssd.New(ssd.Zero())
	cfg := smallCfg()
	cfg.SyncWAL = false
	db, err := Open(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	db.Put(key(1), value(1))
	dev.Crash()
	dev.Recover()
	db2, err := Open(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Get(key(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unsynced write survived crash: %v", err)
	}
}

func TestRecoveryWithSSTablesAndWAL(t *testing.T) {
	dev := ssd.New(ssd.Zero())
	db, _ := Open(smallCfg(), dev)
	const n = 300
	for i := 0; i < n; i++ {
		db.Put(key(i), value(i))
	}
	db.Flush()
	// More writes into the fresh WAL after the flush.
	for i := n; i < n+20; i++ {
		db.Put(key(i), value(i))
	}
	db.Close()
	db2, err := Open(smallCfg(), dev)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < n+20; i++ {
		got, err := db2.Get(key(i))
		if err != nil || !bytes.Equal(got, value(i)) {
			t.Fatalf("get %d after restart = %q, %v", i, got, err)
		}
	}
}

func TestConcurrentWriters(t *testing.T) {
	db, _ := testDB(t, Config{MemTableBytes: 1 << 16, CompactionTrigger: 4, SyncWAL: true})
	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := []byte(fmt.Sprintf("w%d-%04d", w, i))
				if err := db.Put(k, value(i)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i++ {
			k := []byte(fmt.Sprintf("w%d-%04d", w, i))
			if _, err := db.Get(k); err != nil {
				t.Fatalf("get %s: %v", k, err)
			}
		}
	}
	// Group commit must have batched some writes: strictly fewer syncs
	// than writes under concurrency.
	st := db.Stats()
	if st.WALSyncs >= st.Puts {
		t.Logf("no group commit batching observed (syncs=%d puts=%d): acceptable under low contention", st.WALSyncs, st.Puts)
	}
}

func TestClosedOperationsFail(t *testing.T) {
	db, _ := testDB(t, DefaultConfig())
	db.Close()
	db.Close() // idempotent
	if err := db.Put(key(1), value(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close: %v", err)
	}
	if _, err := db.Get(key(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("get after close: %v", err)
	}
}

// Property: the engine agrees with a model map under random workloads,
// including across flush boundaries.
func TestModelEquivalenceProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		dev := ssd.New(ssd.Zero())
		db, err := Open(Config{MemTableBytes: 512, CompactionTrigger: 2, SyncWAL: true}, dev)
		if err != nil {
			return false
		}
		defer db.Close()
		model := make(map[string]string)
		for _, op := range ops {
			k := fmt.Sprintf("k%d", op%32)
			switch (op >> 5) % 3 {
			case 0, 1:
				v := fmt.Sprintf("v%d", op)
				if db.Put([]byte(k), []byte(v)) != nil {
					return false
				}
				model[k] = v
			case 2:
				if db.Delete([]byte(k)) != nil {
					return false
				}
				delete(model, k)
			}
		}
		for k, want := range model {
			got, err := db.Get([]byte(k))
			if err != nil || string(got) != want {
				return false
			}
		}
		for i := 0; i < 32; i++ {
			k := fmt.Sprintf("k%d", i)
			if _, inModel := model[k]; !inModel {
				if _, err := db.Get([]byte(k)); !errors.Is(err, ErrNotFound) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
