package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSkipListSetGet(t *testing.T) {
	s := newSkipList(1)
	s.set([]byte("b"), []byte("2"))
	s.set([]byte("a"), []byte("1"))
	s.set([]byte("c"), []byte("3"))
	for k, want := range map[string]string{"a": "1", "b": "2", "c": "3"} {
		got, ok := s.get([]byte(k))
		if !ok || string(got) != want {
			t.Fatalf("get(%s) = %q, %v", k, got, ok)
		}
	}
	if _, ok := s.get([]byte("d")); ok {
		t.Fatal("missing key reported present")
	}
	if s.length != 3 {
		t.Fatalf("length = %d", s.length)
	}
}

func TestSkipListReplace(t *testing.T) {
	s := newSkipList(1)
	s.set([]byte("k"), []byte("old"))
	s.set([]byte("k"), []byte("newer"))
	got, _ := s.get([]byte("k"))
	if string(got) != "newer" {
		t.Fatalf("get = %q", got)
	}
	if s.length != 1 {
		t.Fatalf("length after replace = %d", s.length)
	}
}

func TestSkipListTombstone(t *testing.T) {
	s := newSkipList(1)
	s.set([]byte("k"), nil)
	got, ok := s.get([]byte("k"))
	if !ok || got != nil {
		t.Fatalf("tombstone = %q, %v", got, ok)
	}
}

func TestSkipListOrderedIteration(t *testing.T) {
	s := newSkipList(7)
	r := rand.New(rand.NewSource(2))
	want := make([]string, 0, 200)
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("k%06d", r.Intn(100000))
		s.set([]byte(k), []byte("v"))
		want = append(want, k)
	}
	sort.Strings(want)
	// Deduplicate (set replaces).
	uniq := want[:0]
	for i, k := range want {
		if i == 0 || k != want[i-1] {
			uniq = append(uniq, k)
		}
	}
	var got []string
	s.each(func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != len(uniq) {
		t.Fatalf("iterated %d keys, want %d", len(got), len(uniq))
	}
	for i := range got {
		if got[i] != uniq[i] {
			t.Fatalf("order mismatch at %d: %s vs %s", i, got[i], uniq[i])
		}
	}
}

func TestSkipListEarlyStop(t *testing.T) {
	s := newSkipList(1)
	for i := 0; i < 10; i++ {
		s.set([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	count := 0
	s.each(func(k, v []byte) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop iterated %d", count)
	}
}

// Property: skip list matches a sorted model map.
func TestSkipListModelProperty(t *testing.T) {
	f := func(keys []uint8) bool {
		s := newSkipList(3)
		model := make(map[string]string)
		for i, k := range keys {
			key := fmt.Sprintf("%03d", k)
			val := fmt.Sprintf("v%d", i)
			s.set([]byte(key), []byte(val))
			model[key] = val
		}
		if s.length != len(model) {
			return false
		}
		for k, v := range model {
			got, ok := s.get([]byte(k))
			if !ok || string(got) != v {
				return false
			}
		}
		prev := ""
		okOrder := true
		s.each(func(k, v []byte) bool {
			if string(k) <= prev && prev != "" {
				okOrder = false
				return false
			}
			prev = string(k)
			return true
		})
		return okOrder
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBloomFilterBasics(t *testing.T) {
	b := newBloomFilter(100)
	for i := 0; i < 100; i++ {
		b.add(key(i))
	}
	for i := 0; i < 100; i++ {
		if !b.mayContain(key(i)) {
			t.Fatalf("false negative for key %d", i)
		}
	}
	// False-positive rate should be low.
	fp := 0
	for i := 1000; i < 2000; i++ {
		if b.mayContain(key(i)) {
			fp++
		}
	}
	if fp > 100 { // 10% — way above the ~1% design point
		t.Fatalf("false positive rate too high: %d/1000", fp)
	}
}

func TestBloomFilterNeverFalseNegativeProperty(t *testing.T) {
	f := func(keys [][]byte) bool {
		b := newBloomFilter(len(keys))
		for _, k := range keys {
			b.add(k)
		}
		for _, k := range keys {
			if !b.mayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBloomRoundTripSerialization(t *testing.T) {
	b := newBloomFilter(10)
	b.add([]byte("x"))
	restored := bloomFromBits(b.bits, b.k)
	if !restored.mayContain([]byte("x")) {
		t.Fatal("restored filter lost key")
	}
}

func TestSSTableRoundTrip(t *testing.T) {
	dev := newTestDevice()
	var keys, values [][]byte
	for i := 0; i < 100; i++ {
		keys = append(keys, key(i))
		values = append(values, value(i))
	}
	tbl, err := writeSSTable(dev, "t1", keys, values)
	if err != nil {
		t.Fatal(err)
	}
	// Read through the writer handle.
	for i := 0; i < 100; i++ {
		v, tomb, found, err := tbl.get(key(i))
		if err != nil || !found || tomb || !bytes.Equal(v, value(i)) {
			t.Fatalf("writer-handle get %d = %q, tomb=%v found=%v err=%v", i, v, tomb, found, err)
		}
	}
	// And through a reopened handle.
	tbl2, err := openSSTable(dev, "t1")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.count != 100 {
		t.Fatalf("count = %d", tbl2.count)
	}
	for i := 0; i < 100; i++ {
		v, _, found, err := tbl2.get(key(i))
		if err != nil || !found || !bytes.Equal(v, value(i)) {
			t.Fatalf("reopened get %d failed: %q %v %v", i, v, found, err)
		}
	}
	if _, _, found, _ := tbl2.get([]byte("zzz")); found {
		t.Fatal("phantom key found")
	}
	// Key below the table's range.
	if _, _, found, _ := tbl2.get([]byte("a")); found {
		t.Fatal("phantom low key found")
	}
}

func TestSSTableTombstones(t *testing.T) {
	dev := newTestDevice()
	tbl, err := writeSSTable(dev, "t", [][]byte{[]byte("dead")}, [][]byte{nil})
	if err != nil {
		t.Fatal(err)
	}
	_, tomb, found, err := tbl.get([]byte("dead"))
	if err != nil || !found || !tomb {
		t.Fatalf("tombstone get: tomb=%v found=%v err=%v", tomb, found, err)
	}
}

func TestSSTableEach(t *testing.T) {
	dev := newTestDevice()
	tbl, _ := writeSSTable(dev, "t",
		[][]byte{[]byte("a"), []byte("b")},
		[][]byte{[]byte("1"), nil})
	var got []string
	tbl.each(func(k, v []byte, tomb bool) error {
		got = append(got, fmt.Sprintf("%s=%s/%v", k, v, tomb))
		return nil
	})
	if len(got) != 2 || got[0] != "a=1/false" || got[1] != "b=/true" {
		t.Fatalf("each = %v", got)
	}
}

func TestEmptySSTableRejected(t *testing.T) {
	dev := newTestDevice()
	if _, err := writeSSTable(dev, "t", nil, nil); err == nil {
		t.Fatal("empty table should be rejected")
	}
}
