package lsm

import (
	"testing"

	"flexlog/internal/ssd"
)

// FuzzOpenSSTable writes arbitrary bytes as a table file and opens it: the
// reader must reject or parse, never panic, over-read, or over-allocate.
func FuzzOpenSSTable(f *testing.F) {
	dev := ssd.New(ssd.Zero())
	tbl, err := writeSSTable(dev, "seed", [][]byte{[]byte("a"), []byte("b")}, [][]byte{[]byte("1"), nil})
	if err == nil {
		raw := make([]byte, tbl.dataLen)
		dev.ReadAt("seed", 0, raw)
		sz, _ := dev.Size("seed")
		full := make([]byte, sz)
		dev.ReadAt("seed", 0, full)
		f.Add(full)
	}
	f.Add([]byte{})
	f.Add(make([]byte, footerSize))
	f.Fuzz(func(t *testing.T, raw []byte) {
		d := ssd.New(ssd.Zero())
		if _, err := d.Append("t", raw); err != nil {
			return
		}
		tbl, err := openSSTable(d, "t")
		if err != nil {
			return
		}
		// A table that opened must serve lookups without panicking.
		tbl.get([]byte("a"))
		tbl.each(func(k, v []byte, tomb bool) error { return nil })
	})
}
