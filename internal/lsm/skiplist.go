package lsm

import (
	"bytes"
	"math/rand"
)

// skipList is the MemTable's ordered index: a classic probabilistic skip
// list over byte-string keys, supporting insert-or-replace, point lookup
// and in-order iteration (needed when the memtable is flushed to an
// SSTable).
const (
	maxHeight  = 12
	branchProb = 4 // 1/4 promotion probability
)

type skipNode struct {
	key   []byte
	value []byte // nil = tombstone
	next  []*skipNode
}

type skipList struct {
	head   *skipNode
	height int
	length int
	bytes  int // approximate memory footprint of keys+values
	rng    *rand.Rand
}

func newSkipList(seed int64) *skipList {
	return &skipList{
		head:   &skipNode{next: make([]*skipNode, maxHeight)},
		height: 1,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

func (s *skipList) randomHeight() int {
	h := 1
	for h < maxHeight && s.rng.Intn(branchProb) == 0 {
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with key >= target and fills
// prev with the rightmost node before it at every level.
func (s *skipList) findGreaterOrEqual(key []byte, prev []*skipNode) *skipNode {
	x := s.head
	for level := s.height - 1; level >= 0; level-- {
		for x.next[level] != nil && bytes.Compare(x.next[level].key, key) < 0 {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// set inserts or replaces a key. A nil value stores a tombstone.
func (s *skipList) set(key, value []byte) {
	prev := make([]*skipNode, maxHeight)
	for i := range prev {
		prev[i] = s.head
	}
	if n := s.findGreaterOrEqual(key, prev); n != nil && bytes.Equal(n.key, key) {
		s.bytes += len(value) - len(n.value)
		n.value = value
		return
	}
	h := s.randomHeight()
	if h > s.height {
		s.height = h
	}
	n := &skipNode{key: key, value: value, next: make([]*skipNode, h)}
	for level := 0; level < h; level++ {
		n.next[level] = prev[level].next[level]
		prev[level].next[level] = n
	}
	s.length++
	s.bytes += len(key) + len(value) + 48 // node overhead estimate
}

// get returns (value, present). A present tombstone returns (nil, true).
func (s *skipList) get(key []byte) ([]byte, bool) {
	n := s.findGreaterOrEqual(key, nil)
	if n != nil && bytes.Equal(n.key, key) {
		return n.value, true
	}
	return nil, false
}

// each walks entries in key order.
func (s *skipList) each(fn func(key, value []byte) bool) {
	for n := s.head.next[0]; n != nil; n = n.next[0] {
		if !fn(n.key, n.value) {
			return
		}
	}
}
