// Package lock implements distributed locking over the shared log — one of
// the "fundamental primitives" §5.1 says FlexLog can provide beyond
// serverless ("distributed locking [22, 49]"), in the style of a
// ZooKeeper-like lock queue rebuilt on a colored log.
//
// The protocol: a lock is a color. To acquire, a client appends an
// `acquire <holder>` record; the log's total order within the color forms
// the wait queue. The holder of the lock is the oldest acquire record that
// has no matching `release`. Because the color's sequencer is the single
// point of serialization (§5.1), two clients can never both see themselves
// at the head of the queue — mutual exclusion reduces to the log's
// linearizability (§7, Theorem 1).
package lock

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/types"
)

var (
	// ErrNotHeld is returned when releasing a lock the caller doesn't hold.
	ErrNotHeld = errors.New("lock: not held by caller")
	// ErrTimeout is returned when ctx ends before acquisition.
	ErrTimeout = errors.New("lock: acquisition timed out")
)

// record is one lock-log entry.
type record struct {
	Kind   string `json:"kind"` // "acquire" | "release"
	Holder string `json:"holder"`
	Seq    uint64 `json:"seq"` // matches a release to its acquire
}

// Lock is a handle to one distributed lock (one color).
type Lock struct {
	color  types.ColorID
	handle *core.Client
	holder string
	// PollInterval is the queue re-check cadence while waiting.
	PollInterval time.Duration

	acquiredAt types.SN // SN of our acquire record while held
}

// New binds a lock handle for the given holder identity to a color.
func New(handle *core.Client, color types.ColorID, holder string) *Lock {
	return &Lock{color: color, handle: handle, holder: holder, PollInterval: 2 * time.Millisecond}
}

// Create provisions the lock's color and binds a handle.
func Create(handle *core.Client, color, parent types.ColorID, holder string) (*Lock, error) {
	if err := handle.AddColor(color, parent); err != nil {
		return nil, err
	}
	return New(handle, color, holder), nil
}

// Acquire appends an acquire record and waits until it reaches the head
// of the wait queue (all earlier acquires released).
func (l *Lock) Acquire(ctx context.Context) error {
	if l.acquiredAt.Valid() {
		return fmt.Errorf("lock: %s already holds the lock", l.holder)
	}
	seq := uint64(time.Now().UnixNano())
	enc, err := json.Marshal(record{Kind: "acquire", Holder: l.holder, Seq: seq})
	if err != nil {
		return err
	}
	sn, err := l.handle.Append([][]byte{enc}, l.color)
	if err != nil {
		return err
	}
	for {
		head, err := l.queueHead()
		if err != nil {
			return err
		}
		if head == sn {
			l.acquiredAt = sn
			return nil
		}
		select {
		case <-ctx.Done():
			// Withdraw from the queue so we don't deadlock successors.
			relEnc, _ := json.Marshal(record{Kind: "release", Holder: l.holder, Seq: seq})
			l.handle.Append([][]byte{relEnc}, l.color)
			return ErrTimeout
		case <-time.After(l.PollInterval):
		}
	}
}

// TryAcquire acquires only if the queue is empty at the time of the
// attempt; otherwise it withdraws immediately and reports false.
func (l *Lock) TryAcquire() (bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), l.PollInterval*4)
	defer cancel()
	err := l.Acquire(ctx)
	if err == nil {
		return true, nil
	}
	if errors.Is(err, ErrTimeout) {
		return false, nil
	}
	return false, err
}

// Release appends the matching release record.
func (l *Lock) Release() error {
	if !l.acquiredAt.Valid() {
		return ErrNotHeld
	}
	// Find our acquire's Seq to pair the release.
	recs, err := l.handle.Subscribe(l.color, types.InvalidSN)
	if err != nil {
		return err
	}
	var seq uint64
	found := false
	for _, r := range recs {
		if r.SN == l.acquiredAt {
			var rec record
			if json.Unmarshal(r.Data, &rec) == nil {
				seq, found = rec.Seq, true
			}
		}
	}
	if !found {
		// Our acquire was trimmed away while held — treat as released.
		l.acquiredAt = types.InvalidSN
		return nil
	}
	enc, err := json.Marshal(record{Kind: "release", Holder: l.holder, Seq: seq})
	if err != nil {
		return err
	}
	if _, err := l.handle.Append([][]byte{enc}, l.color); err != nil {
		return err
	}
	l.acquiredAt = types.InvalidSN
	return nil
}

// Holder returns the current holder identity, or "" when the lock is free.
func (l *Lock) Holder() (string, error) {
	head, err := l.queueHead()
	if err != nil {
		return "", err
	}
	if !head.Valid() {
		return "", nil
	}
	recs, err := l.handle.Subscribe(l.color, types.InvalidSN)
	if err != nil {
		return "", err
	}
	for _, r := range recs {
		if r.SN == head {
			var rec record
			if json.Unmarshal(r.Data, &rec) == nil {
				return rec.Holder, nil
			}
		}
	}
	return "", nil
}

// queueHead returns the SN of the oldest unreleased acquire record, or
// InvalidSN when the lock is free.
func (l *Lock) queueHead() (types.SN, error) {
	recs, err := l.handle.Subscribe(l.color, types.InvalidSN)
	if err != nil {
		return types.InvalidSN, err
	}
	released := make(map[uint64]int)
	type pending struct {
		sn  types.SN
		seq uint64
	}
	var queue []pending
	for _, r := range recs {
		var rec record
		if json.Unmarshal(r.Data, &rec) != nil {
			continue
		}
		switch rec.Kind {
		case "acquire":
			queue = append(queue, pending{sn: r.SN, seq: rec.Seq})
		case "release":
			released[rec.Seq]++
		}
	}
	for _, p := range queue {
		if released[p.seq] > 0 {
			released[p.seq]--
			continue
		}
		return p.sn, nil
	}
	return types.InvalidSN, nil
}
