package lock

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"flexlog/internal/core"
	"flexlog/internal/types"
)

func newLockCluster(t *testing.T) *core.Cluster {
	t.Helper()
	cl, err := core.SimpleCluster(core.TestClusterConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	return cl
}

func mkLock(t *testing.T, cl *core.Cluster, holder string) *Lock {
	t.Helper()
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	l, err := Create(c, 40, types.MasterColor, holder)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestAcquireRelease(t *testing.T) {
	cl := newLockCluster(t)
	l := mkLock(t, cl, "alice")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := l.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if h, _ := l.Holder(); h != "alice" {
		t.Fatalf("holder = %q", h)
	}
	if err := l.Acquire(ctx); err == nil {
		t.Fatal("double acquire by same handle should fail")
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	if h, _ := l.Holder(); h != "" {
		t.Fatalf("holder after release = %q", h)
	}
	if err := l.Release(); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("double release: %v", err)
	}
}

func TestContenderWaitsForRelease(t *testing.T) {
	cl := newLockCluster(t)
	alice := mkLock(t, cl, "alice")
	bob := mkLock(t, cl, "bob")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := alice.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- bob.Acquire(ctx) }()
	// Bob must not acquire while Alice holds.
	select {
	case err := <-got:
		t.Fatalf("bob acquired while alice holds (err=%v)", err)
	case <-time.After(30 * time.Millisecond):
	}
	if err := alice.Release(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("bob never acquired after release")
	}
	if h, _ := bob.Holder(); h != "bob" {
		t.Fatalf("holder = %q", h)
	}
}

func TestAcquireTimeoutWithdraws(t *testing.T) {
	cl := newLockCluster(t)
	alice := mkLock(t, cl, "alice")
	bob := mkLock(t, cl, "bob")
	carol := mkLock(t, cl, "carol")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := alice.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// Bob gives up quickly; his queue entry must be withdrawn so Carol is
	// next in line, not deadlocked behind a ghost.
	shortCtx, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	if err := bob.Acquire(shortCtx); !errors.Is(err, ErrTimeout) {
		t.Fatalf("bob: %v", err)
	}
	carolDone := make(chan error, 1)
	go func() { carolDone <- carol.Acquire(ctx) }()
	if err := alice.Release(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-carolDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("carol blocked behind a withdrawn waiter")
	}
}

func TestTryAcquire(t *testing.T) {
	cl := newLockCluster(t)
	alice := mkLock(t, cl, "alice")
	bob := mkLock(t, cl, "bob")
	ok, err := alice.TryAcquire()
	if err != nil || !ok {
		t.Fatalf("alice try = %v, %v", ok, err)
	}
	ok, err = bob.TryAcquire()
	if err != nil || ok {
		t.Fatalf("bob try while held = %v, %v", ok, err)
	}
	alice.Release()
	ok, err = bob.TryAcquire()
	if err != nil || !ok {
		t.Fatalf("bob try after release = %v, %v", ok, err)
	}
	bob.Release()
}

// TestMutualExclusionUnderContention: N contenders hammer a critical
// section; the lock must serialize them (no two inside at once) and every
// contender must eventually get in (the queue is fair by log order).
func TestMutualExclusionUnderContention(t *testing.T) {
	cl := newLockCluster(t)
	const contenders, rounds = 4, 3
	var inside int32
	var mu sync.Mutex
	entries := 0
	var wg sync.WaitGroup
	for i := 0; i < contenders; i++ {
		l := mkLock(t, cl, string(rune('a'+i)))
		wg.Add(1)
		go func(l *Lock) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			for r := 0; r < rounds; r++ {
				if err := l.Acquire(ctx); err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				mu.Lock()
				inside++
				if inside != 1 {
					t.Errorf("mutual exclusion violated: %d inside", inside)
				}
				entries++
				inside--
				mu.Unlock()
				if err := l.Release(); err != nil {
					t.Errorf("release: %v", err)
					return
				}
			}
		}(l)
	}
	wg.Wait()
	if entries != contenders*rounds {
		t.Fatalf("entries = %d, want %d", entries, contenders*rounds)
	}
}
