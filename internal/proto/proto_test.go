package proto

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"flexlog/internal/types"
)

// everyMessage is one populated instance of each wire message.
func everyMessage() []interface{} {
	return []interface{}{
		AppendReq{Color: 1, Token: types.MakeToken(2, 3), Records: [][]byte{[]byte("a"), {}}, Client: 4},
		AppendBatchReq{Color: 1, Token: types.MakeToken(2, 4), Sets: [][][]byte{{[]byte("a")}, {[]byte("b"), []byte("c")}}, Client: 4},
		AppendAck{Token: types.MakeToken(2, 3), SN: types.MakeSN(1, 9)},
		ReadReq{ID: 1, Color: 2, SN: types.MakeSN(1, 3), Client: 4},
		ReadResp{ID: 1, SN: types.MakeSN(1, 3), Data: []byte("x"), Found: true},
		SubscribeReq{ID: 1, Color: 2, From: types.MakeSN(1, 1), Client: 4},
		SubscribeResp{ID: 1, Color: 2, Records: []WireRecord{{Token: 1, SN: 2, Data: []byte("r")}}},
		TrimReq{ID: 1, Color: 2, SN: 3, Client: 4},
		TrimPeerAck{ID: 1, Color: 2, SN: 3, From: 4},
		TrimAck{ID: 1, Color: 2, Head: 3, Tail: 9},
		MultiAppendEnd{ID: 1, FID: 2, Tokens: []types.Token{3, 4}, Client: 5},
		MultiAppendAck{ID: 1},
		OrderReq{Color: 1, Token: 2, NRecords: 3, Shard: 4, Replicas: []types.NodeID{5, 6}},
		OrderResp{Token: 2, LastSN: 3, NRecords: 4, Color: 5},
		OrderReqBatch{Color: 1, Shard: 2, Replicas: []types.NodeID{3, 4}, Items: []OrderItem{{Token: 5, NRecords: 6}}},
		OrderRespBatch{Color: 1, Items: []OrderRespItem{{Token: 2, LastSN: 3, NRecords: 4}}},
		AggOrderReq{Color: 1, BatchID: 2, Total: 3, From: 4},
		AggOrderResp{BatchID: 2, LastSN: 3, Color: 4},
		AggOrderReqBatch{From: 4, Items: []AggOrderItem{{Color: 1, BatchID: 2, Total: 3}, {Color: 5, BatchID: 6, Total: 7}}},
		AggOrderRespBatch{From: 4, Items: []AggOrderRespItem{{Color: 1, BatchID: 2, LastSN: 3}}},
		SeqHeartbeat{Epoch: 1, From: 2},
		SeqHeartbeatAck{Epoch: 1, From: 2},
		EpochClaim{Epoch: 1, From: 2},
		EpochGrant{Epoch: 1, From: 2},
		EpochReject{Epoch: 1, Claimant: 2},
		SeqInit{Epoch: 1, From: 2},
		SeqInitAck{Epoch: 1, From: 2},
		ReplicaHeartbeat{From: 1},
		SyncRequest{ID: 1, From: 2},
		SyncState{ID: 1, Epoch: 2, MaxSNs: map[types.ColorID]types.SN{3: 4}, From: 5},
		SyncCatchup{ID: 1, UpToDate: 2, Max: map[types.ColorID]types.SN{3: 4}, Epoch: 5, From: 6},
		SyncFetch{ID: 1, Have: map[types.ColorID]types.SN{2: 3}, From: 4},
		SyncEntries{ID: 1, Records: map[types.ColorID][]WireRecord{2: {{Token: 3, SN: 4, Data: []byte("d")}}}},
		SyncDone{ID: 1, From: 2},
	}
}

// TestGobRoundTripAllMessages encodes each message as an interface value
// (the way the TCP transport ships them) and verifies it decodes
// identically — catching both unregistered types and lossy encodings.
func TestGobRoundTripAllMessages(t *testing.T) {
	RegisterGob()
	RegisterGob() // idempotent
	for _, msg := range everyMessage() {
		var buf bytes.Buffer
		type envelope struct {
			From types.NodeID
			Msg  interface{}
		}
		if err := gob.NewEncoder(&buf).Encode(envelope{From: 9, Msg: msg}); err != nil {
			t.Fatalf("%T: encode: %v", msg, err)
		}
		var got envelope
		if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
			t.Fatalf("%T: decode: %v", msg, err)
		}
		if !reflect.DeepEqual(normalize(got.Msg), normalize(msg)) {
			t.Errorf("%T: round trip mismatch:\n got %#v\nwant %#v", msg, got.Msg, msg)
		}
	}
}

// normalize maps gob's nil-vs-empty slice ambiguity away.
func normalize(v interface{}) interface{} {
	if ar, ok := v.(AppendReq); ok {
		for i, r := range ar.Records {
			if len(r) == 0 {
				ar.Records[i] = nil
			}
		}
		return ar
	}
	return v
}

// TestMessageCountMatchesRegistry keeps everyMessage in sync with the
// RegisterGob list: a new message type must be added to both.
func TestMessageCountMatchesRegistry(t *testing.T) {
	const registered = 34 // keep in lockstep with RegisterGob
	if got := len(everyMessage()); got != registered {
		t.Fatalf("everyMessage has %d entries, RegisterGob registers %d — update both together", got, registered)
	}
}
