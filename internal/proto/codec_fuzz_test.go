package proto

import (
	"bytes"
	"testing"
)

// FuzzCodecRoundTrip feeds arbitrary bytes to the frame decoder and, for
// every input that decodes, checks the codec's fixed point: one
// decode→encode round normalizes the frame (varints may arrive
// non-minimal, map keys in any order), after which decode→encode must be
// byte-stable. Seeded with every golden frame so the corpus covers all
// message types from run one.
func FuzzCodecRoundTrip(f *testing.F) {
	for _, g := range goldenFrames {
		frame := encodeFrame(f, g.msg)
		f.Add(frame[4:])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		from, msg, err := DecodeFrame(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if data[0] == TagGobFallback {
			return // gob streams are not canonical; stability not promised
		}
		e1, err := AppendFrame(nil, from, msg)
		if err != nil {
			t.Fatalf("re-encoding decoded message: %v", err)
		}
		from2, msg2, err := DecodeFrame(e1[4:])
		if err != nil {
			t.Fatalf("decoding own encoding: %v", err)
		}
		if from2 != from {
			t.Fatalf("sender drifted: %v → %v", from, from2)
		}
		e2, err := AppendFrame(nil, from2, msg2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(e1, e2) {
			t.Fatalf("encoding not stable after normalization:\n e1=%x\n e2=%x", e1, e2)
		}
	})
}

// FuzzCodecDecodeNoPanic hammers every typed decoder with raw bytes under
// all 32 tags plus invalid ones: any outcome but a panic or a runaway
// allocation is acceptable.
func FuzzCodecDecodeNoPanic(f *testing.F) {
	f.Add(byte(1), []byte{})
	f.Add(byte(13), []byte{0x03, 0x0b, 0x02, 0x01, 0x03, 0x01, 0x02, 0x03})
	f.Add(byte(255), []byte{0x00})
	f.Fuzz(func(t *testing.T, tag byte, body []byte) {
		_, _ = decodeBody(tag, body)
	})
}
