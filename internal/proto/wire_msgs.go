// Per-message AppendTo/Decode marshallers of the binary wire codec (see
// wire.go for the format rules). Fields are encoded in struct order.
// AppendTo uses value receivers so both a boxed value and a pointer
// satisfy the codec's wireMessage interface; Decode uses pointer
// receivers, aliases []byte fields into the input buffer, reuses the
// receiver's slice/map capacity, and requires the body to be consumed
// exactly.
package proto

import "flexlog/internal/types"

// AppendTo appends the message body to b. See wire.go.
func (m AppendReq) AppendTo(b []byte) []byte {
	b = appendUvarint(b, uint64(m.Color))
	b = appendUvarint(b, uint64(m.Token))
	b = appendByteSlices(b, m.Records)
	b = appendUvarint(b, uint64(m.Client))
	b = appendUvarint(b, uint64(m.Tenant))
	return b
}

// Decode parses a message body, aliasing []byte fields into b.
func (m *AppendReq) Decode(b []byte) error {
	r := wireReader{b: b}
	m.Color = types.ColorID(r.u32())
	m.Token = types.Token(r.uvarint())
	m.Records = readByteSlices(&r, m.Records)
	m.Client = types.NodeID(r.u32())
	m.Tenant = types.TenantID(r.u32())
	return r.done()
}

func (m AppendReq) wireTag() byte { return TagAppendReq }

// AppendTo appends the message body to b. See wire.go.
func (m AppendBatchReq) AppendTo(b []byte) []byte {
	b = appendUvarint(b, uint64(m.Color))
	b = appendUvarint(b, uint64(m.Token))
	b = appendUvarint(b, uint64(len(m.Sets)))
	for _, set := range m.Sets {
		b = appendByteSlices(b, set)
	}
	b = appendUvarint(b, uint64(m.Client))
	b = appendUvarint(b, uint64(m.Tenant))
	return b
}

// Decode parses a message body, aliasing []byte fields into b.
func (m *AppendBatchReq) Decode(b []byte) error {
	r := wireReader{b: b}
	m.Color = types.ColorID(r.u32())
	m.Token = types.Token(r.uvarint())
	m.Sets = readByteSliceSets(&r, m.Sets)
	m.Client = types.NodeID(r.u32())
	m.Tenant = types.TenantID(r.u32())
	return r.done()
}

func (m AppendBatchReq) wireTag() byte { return TagAppendBatchReq }

// AppendTo appends the message body to b. See wire.go.
func (m AppendAck) AppendTo(b []byte) []byte {
	b = appendUvarint(b, uint64(m.Token))
	b = appendUvarint(b, uint64(m.SN))
	return b
}

// Decode parses a message body.
func (m *AppendAck) Decode(b []byte) error {
	r := wireReader{b: b}
	m.Token = types.Token(r.uvarint())
	m.SN = types.SN(r.uvarint())
	return r.done()
}

func (m AppendAck) wireTag() byte { return TagAppendAck }

// AppendTo appends the message body to b. See wire.go.
func (m ReadReq) AppendTo(b []byte) []byte {
	b = appendUvarint(b, m.ID)
	b = appendUvarint(b, uint64(m.Color))
	b = appendUvarint(b, uint64(m.SN))
	b = appendUvarint(b, uint64(m.Client))
	b = appendUvarint(b, uint64(m.Tenant))
	return b
}

// Decode parses a message body.
func (m *ReadReq) Decode(b []byte) error {
	r := wireReader{b: b}
	m.ID = r.uvarint()
	m.Color = types.ColorID(r.u32())
	m.SN = types.SN(r.uvarint())
	m.Client = types.NodeID(r.u32())
	m.Tenant = types.TenantID(r.u32())
	return r.done()
}

func (m ReadReq) wireTag() byte { return TagReadReq }

// AppendTo appends the message body to b. See wire.go.
func (m ReadResp) AppendTo(b []byte) []byte {
	b = appendUvarint(b, m.ID)
	b = appendUvarint(b, uint64(m.SN))
	b = appendBytes(b, m.Data)
	b = appendBool(b, m.Found)
	b = append(b, m.Status)
	return b
}

// Decode parses a message body, aliasing Data into b.
func (m *ReadResp) Decode(b []byte) error {
	r := wireReader{b: b}
	m.ID = r.uvarint()
	m.SN = types.SN(r.uvarint())
	m.Data = r.bytes()
	m.Found = r.bool()
	m.Status = r.u8()
	return r.done()
}

func (m ReadResp) wireTag() byte { return TagReadResp }

// AppendTo appends the message body to b. See wire.go.
func (m SubscribeReq) AppendTo(b []byte) []byte {
	b = appendUvarint(b, m.ID)
	b = appendUvarint(b, uint64(m.Color))
	b = appendUvarint(b, uint64(m.From))
	b = appendUvarint(b, uint64(m.Client))
	return b
}

// Decode parses a message body.
func (m *SubscribeReq) Decode(b []byte) error {
	r := wireReader{b: b}
	m.ID = r.uvarint()
	m.Color = types.ColorID(r.u32())
	m.From = types.SN(r.uvarint())
	m.Client = types.NodeID(r.u32())
	return r.done()
}

func (m SubscribeReq) wireTag() byte { return TagSubscribeReq }

// AppendTo appends the message body to b. See wire.go.
func (m SubscribeResp) AppendTo(b []byte) []byte {
	b = appendUvarint(b, m.ID)
	b = appendUvarint(b, uint64(m.Color))
	b = appendWireRecords(b, m.Records)
	return b
}

// Decode parses a message body, aliasing record payloads into b.
func (m *SubscribeResp) Decode(b []byte) error {
	r := wireReader{b: b}
	m.ID = r.uvarint()
	m.Color = types.ColorID(r.u32())
	m.Records = readWireRecords(&r, m.Records)
	return r.done()
}

func (m SubscribeResp) wireTag() byte { return TagSubscribeResp }

// AppendTo appends the message body to b. See wire.go.
func (m TrimReq) AppendTo(b []byte) []byte {
	b = appendUvarint(b, m.ID)
	b = appendUvarint(b, uint64(m.Color))
	b = appendUvarint(b, uint64(m.SN))
	b = appendUvarint(b, uint64(m.Client))
	return b
}

// Decode parses a message body.
func (m *TrimReq) Decode(b []byte) error {
	r := wireReader{b: b}
	m.ID = r.uvarint()
	m.Color = types.ColorID(r.u32())
	m.SN = types.SN(r.uvarint())
	m.Client = types.NodeID(r.u32())
	return r.done()
}

func (m TrimReq) wireTag() byte { return TagTrimReq }

// AppendTo appends the message body to b. See wire.go.
func (m TrimPeerAck) AppendTo(b []byte) []byte {
	b = appendUvarint(b, m.ID)
	b = appendUvarint(b, uint64(m.Color))
	b = appendUvarint(b, uint64(m.SN))
	b = appendUvarint(b, uint64(m.From))
	return b
}

// Decode parses a message body.
func (m *TrimPeerAck) Decode(b []byte) error {
	r := wireReader{b: b}
	m.ID = r.uvarint()
	m.Color = types.ColorID(r.u32())
	m.SN = types.SN(r.uvarint())
	m.From = types.NodeID(r.u32())
	return r.done()
}

func (m TrimPeerAck) wireTag() byte { return TagTrimPeerAck }

// AppendTo appends the message body to b. See wire.go.
func (m TrimAck) AppendTo(b []byte) []byte {
	b = appendUvarint(b, m.ID)
	b = appendUvarint(b, uint64(m.Color))
	b = appendUvarint(b, uint64(m.Head))
	b = appendUvarint(b, uint64(m.Tail))
	return b
}

// Decode parses a message body.
func (m *TrimAck) Decode(b []byte) error {
	r := wireReader{b: b}
	m.ID = r.uvarint()
	m.Color = types.ColorID(r.u32())
	m.Head = types.SN(r.uvarint())
	m.Tail = types.SN(r.uvarint())
	return r.done()
}

func (m TrimAck) wireTag() byte { return TagTrimAck }

// AppendTo appends the message body to b. See wire.go.
func (m MultiAppendEnd) AppendTo(b []byte) []byte {
	b = appendUvarint(b, m.ID)
	b = appendUvarint(b, uint64(m.FID))
	b = appendUvarint(b, uint64(len(m.Tokens)))
	for _, tok := range m.Tokens {
		b = appendUvarint(b, uint64(tok))
	}
	b = appendUvarint(b, uint64(m.Client))
	return b
}

// Decode parses a message body.
func (m *MultiAppendEnd) Decode(b []byte) error {
	r := wireReader{b: b}
	m.ID = r.uvarint()
	m.FID = r.u32()
	n := r.count(1)
	m.Tokens = m.Tokens[:0]
	for i := 0; i < n; i++ {
		m.Tokens = append(m.Tokens, types.Token(r.uvarint()))
	}
	m.Client = types.NodeID(r.u32())
	return r.done()
}

func (m MultiAppendEnd) wireTag() byte { return TagMultiAppendEnd }

// AppendTo appends the message body to b. See wire.go.
func (m MultiAppendAck) AppendTo(b []byte) []byte {
	return appendUvarint(b, m.ID)
}

// Decode parses a message body.
func (m *MultiAppendAck) Decode(b []byte) error {
	r := wireReader{b: b}
	m.ID = r.uvarint()
	return r.done()
}

func (m MultiAppendAck) wireTag() byte { return TagMultiAppendAck }

// AppendTo appends the message body to b. See wire.go.
func (m OrderReq) AppendTo(b []byte) []byte {
	b = appendUvarint(b, uint64(m.Color))
	b = appendUvarint(b, uint64(m.Token))
	b = appendUvarint(b, uint64(m.NRecords))
	b = appendUvarint(b, uint64(m.Shard))
	b = appendNodeIDs(b, m.Replicas)
	return b
}

// Decode parses a message body, reusing the Replicas capacity.
func (m *OrderReq) Decode(b []byte) error {
	r := wireReader{b: b}
	m.Color = types.ColorID(r.u32())
	m.Token = types.Token(r.uvarint())
	m.NRecords = r.u32()
	m.Shard = types.ShardID(r.u32())
	m.Replicas = readNodeIDs(&r, m.Replicas)
	return r.done()
}

func (m OrderReq) wireTag() byte { return TagOrderReq }

// AppendTo appends the message body to b. See wire.go.
func (m OrderResp) AppendTo(b []byte) []byte {
	b = appendUvarint(b, uint64(m.Token))
	b = appendUvarint(b, uint64(m.LastSN))
	b = appendUvarint(b, uint64(m.NRecords))
	b = appendUvarint(b, uint64(m.Color))
	return b
}

// Decode parses a message body.
func (m *OrderResp) Decode(b []byte) error {
	r := wireReader{b: b}
	m.Token = types.Token(r.uvarint())
	m.LastSN = types.SN(r.uvarint())
	m.NRecords = r.u32()
	m.Color = types.ColorID(r.u32())
	return r.done()
}

func (m OrderResp) wireTag() byte { return TagOrderResp }

// AppendTo appends the message body to b. See wire.go.
func (m OrderReqBatch) AppendTo(b []byte) []byte {
	b = appendUvarint(b, uint64(m.Color))
	b = appendUvarint(b, uint64(m.Shard))
	b = appendNodeIDs(b, m.Replicas)
	b = appendUvarint(b, uint64(len(m.Items)))
	for _, it := range m.Items {
		b = appendUvarint(b, uint64(it.Token))
		b = appendUvarint(b, uint64(it.NRecords))
	}
	return b
}

// Decode parses a message body, reusing slice capacities.
func (m *OrderReqBatch) Decode(b []byte) error {
	r := wireReader{b: b}
	m.Color = types.ColorID(r.u32())
	m.Shard = types.ShardID(r.u32())
	m.Replicas = readNodeIDs(&r, m.Replicas)
	n := r.count(2)
	m.Items = m.Items[:0]
	for i := 0; i < n; i++ {
		m.Items = append(m.Items, OrderItem{
			Token:    types.Token(r.uvarint()),
			NRecords: r.u32(),
		})
	}
	return r.done()
}

func (m OrderReqBatch) wireTag() byte { return TagOrderReqBatch }

// AppendTo appends the message body to b. See wire.go.
func (m OrderRespBatch) AppendTo(b []byte) []byte {
	b = appendUvarint(b, uint64(m.Color))
	b = appendUvarint(b, uint64(len(m.Items)))
	for _, it := range m.Items {
		b = appendUvarint(b, uint64(it.Token))
		b = appendUvarint(b, uint64(it.LastSN))
		b = appendUvarint(b, uint64(it.NRecords))
	}
	return b
}

// Decode parses a message body, reusing the Items capacity.
func (m *OrderRespBatch) Decode(b []byte) error {
	r := wireReader{b: b}
	m.Color = types.ColorID(r.u32())
	n := r.count(3)
	m.Items = m.Items[:0]
	for i := 0; i < n; i++ {
		m.Items = append(m.Items, OrderRespItem{
			Token:    types.Token(r.uvarint()),
			LastSN:   types.SN(r.uvarint()),
			NRecords: r.u32(),
		})
	}
	return r.done()
}

func (m OrderRespBatch) wireTag() byte { return TagOrderRespBatch }

// AppendTo appends the message body to b. See wire.go.
func (m AggOrderReq) AppendTo(b []byte) []byte {
	b = appendUvarint(b, uint64(m.Color))
	b = appendUvarint(b, m.BatchID)
	b = appendUvarint(b, uint64(m.Total))
	b = appendUvarint(b, uint64(m.From))
	return b
}

// Decode parses a message body.
func (m *AggOrderReq) Decode(b []byte) error {
	r := wireReader{b: b}
	m.Color = types.ColorID(r.u32())
	m.BatchID = r.uvarint()
	m.Total = r.u32()
	m.From = types.NodeID(r.u32())
	return r.done()
}

func (m AggOrderReq) wireTag() byte { return TagAggOrderReq }

// AppendTo appends the message body to b. See wire.go.
func (m AggOrderResp) AppendTo(b []byte) []byte {
	b = appendUvarint(b, m.BatchID)
	b = appendUvarint(b, uint64(m.LastSN))
	b = appendUvarint(b, uint64(m.Color))
	return b
}

// Decode parses a message body.
func (m *AggOrderResp) Decode(b []byte) error {
	r := wireReader{b: b}
	m.BatchID = r.uvarint()
	m.LastSN = types.SN(r.uvarint())
	m.Color = types.ColorID(r.u32())
	return r.done()
}

func (m AggOrderResp) wireTag() byte { return TagAggOrderResp }

// AppendTo appends the message body to b. See wire.go.
func (m AggOrderReqBatch) AppendTo(b []byte) []byte {
	b = appendUvarint(b, uint64(m.From))
	b = appendUvarint(b, uint64(len(m.Items)))
	for _, it := range m.Items {
		b = appendUvarint(b, uint64(it.Color))
		b = appendUvarint(b, it.BatchID)
		b = appendUvarint(b, uint64(it.Total))
	}
	return b
}

// Decode parses a message body, reusing the Items capacity.
func (m *AggOrderReqBatch) Decode(b []byte) error {
	r := wireReader{b: b}
	m.From = types.NodeID(r.u32())
	n := r.count(3)
	m.Items = m.Items[:0]
	for i := 0; i < n; i++ {
		m.Items = append(m.Items, AggOrderItem{
			Color:   types.ColorID(r.u32()),
			BatchID: r.uvarint(),
			Total:   r.u32(),
		})
	}
	return r.done()
}

func (m AggOrderReqBatch) wireTag() byte { return TagAggOrderReqBatch }

// AppendTo appends the message body to b. See wire.go.
func (m AggOrderRespBatch) AppendTo(b []byte) []byte {
	b = appendUvarint(b, uint64(m.From))
	b = appendUvarint(b, uint64(len(m.Items)))
	for _, it := range m.Items {
		b = appendUvarint(b, uint64(it.Color))
		b = appendUvarint(b, it.BatchID)
		b = appendUvarint(b, uint64(it.LastSN))
	}
	return b
}

// Decode parses a message body, reusing the Items capacity.
func (m *AggOrderRespBatch) Decode(b []byte) error {
	r := wireReader{b: b}
	m.From = types.NodeID(r.u32())
	n := r.count(3)
	m.Items = m.Items[:0]
	for i := 0; i < n; i++ {
		m.Items = append(m.Items, AggOrderRespItem{
			Color:   types.ColorID(r.u32()),
			BatchID: r.uvarint(),
			LastSN:  types.SN(r.uvarint()),
		})
	}
	return r.done()
}

func (m AggOrderRespBatch) wireTag() byte { return TagAggOrderRespBatch }

// AppendTo appends the message body to b. See wire.go.
func (m SeqHeartbeat) AppendTo(b []byte) []byte {
	b = appendUvarint(b, uint64(m.Epoch))
	b = appendUvarint(b, uint64(m.From))
	return b
}

// Decode parses a message body.
func (m *SeqHeartbeat) Decode(b []byte) error {
	r := wireReader{b: b}
	m.Epoch = types.Epoch(r.u32())
	m.From = types.NodeID(r.u32())
	return r.done()
}

func (m SeqHeartbeat) wireTag() byte { return TagSeqHeartbeat }

// AppendTo appends the message body to b. See wire.go.
func (m SeqHeartbeatAck) AppendTo(b []byte) []byte {
	b = appendUvarint(b, uint64(m.Epoch))
	b = appendUvarint(b, uint64(m.From))
	return b
}

// Decode parses a message body.
func (m *SeqHeartbeatAck) Decode(b []byte) error {
	r := wireReader{b: b}
	m.Epoch = types.Epoch(r.u32())
	m.From = types.NodeID(r.u32())
	return r.done()
}

func (m SeqHeartbeatAck) wireTag() byte { return TagSeqHeartbeatAck }

// AppendTo appends the message body to b. See wire.go.
func (m EpochClaim) AppendTo(b []byte) []byte {
	b = appendUvarint(b, uint64(m.Epoch))
	b = appendUvarint(b, uint64(m.From))
	return b
}

// Decode parses a message body.
func (m *EpochClaim) Decode(b []byte) error {
	r := wireReader{b: b}
	m.Epoch = types.Epoch(r.u32())
	m.From = types.NodeID(r.u32())
	return r.done()
}

func (m EpochClaim) wireTag() byte { return TagEpochClaim }

// AppendTo appends the message body to b. See wire.go.
func (m EpochGrant) AppendTo(b []byte) []byte {
	b = appendUvarint(b, uint64(m.Epoch))
	b = appendUvarint(b, uint64(m.From))
	return b
}

// Decode parses a message body.
func (m *EpochGrant) Decode(b []byte) error {
	r := wireReader{b: b}
	m.Epoch = types.Epoch(r.u32())
	m.From = types.NodeID(r.u32())
	return r.done()
}

func (m EpochGrant) wireTag() byte { return TagEpochGrant }

// AppendTo appends the message body to b. See wire.go.
func (m EpochReject) AppendTo(b []byte) []byte {
	b = appendUvarint(b, uint64(m.Epoch))
	b = appendUvarint(b, uint64(m.Claimant))
	b = appendBool(b, m.LeaderAlive)
	return b
}

// Decode parses a message body.
func (m *EpochReject) Decode(b []byte) error {
	r := wireReader{b: b}
	m.Epoch = types.Epoch(r.u32())
	m.Claimant = types.NodeID(r.u32())
	m.LeaderAlive = r.bool()
	return r.done()
}

func (m EpochReject) wireTag() byte { return TagEpochReject }

// AppendTo appends the message body to b. See wire.go.
func (m SeqInit) AppendTo(b []byte) []byte {
	b = appendUvarint(b, uint64(m.Epoch))
	b = appendUvarint(b, uint64(m.From))
	return b
}

// Decode parses a message body.
func (m *SeqInit) Decode(b []byte) error {
	r := wireReader{b: b}
	m.Epoch = types.Epoch(r.u32())
	m.From = types.NodeID(r.u32())
	return r.done()
}

func (m SeqInit) wireTag() byte { return TagSeqInit }

// AppendTo appends the message body to b. See wire.go.
func (m SeqInitAck) AppendTo(b []byte) []byte {
	b = appendUvarint(b, uint64(m.Epoch))
	b = appendUvarint(b, uint64(m.From))
	return b
}

// Decode parses a message body.
func (m *SeqInitAck) Decode(b []byte) error {
	r := wireReader{b: b}
	m.Epoch = types.Epoch(r.u32())
	m.From = types.NodeID(r.u32())
	return r.done()
}

func (m SeqInitAck) wireTag() byte { return TagSeqInitAck }

// AppendTo appends the message body to b. See wire.go.
func (m ReplicaHeartbeat) AppendTo(b []byte) []byte {
	return appendUvarint(b, uint64(m.From))
}

// Decode parses a message body.
func (m *ReplicaHeartbeat) Decode(b []byte) error {
	r := wireReader{b: b}
	m.From = types.NodeID(r.u32())
	return r.done()
}

func (m ReplicaHeartbeat) wireTag() byte { return TagReplicaHeartbeat }

// AppendTo appends the message body to b. See wire.go.
func (m SyncRequest) AppendTo(b []byte) []byte {
	b = appendUvarint(b, m.ID)
	b = appendUvarint(b, uint64(m.From))
	return b
}

// Decode parses a message body.
func (m *SyncRequest) Decode(b []byte) error {
	r := wireReader{b: b}
	m.ID = r.uvarint()
	m.From = types.NodeID(r.u32())
	return r.done()
}

func (m SyncRequest) wireTag() byte { return TagSyncRequest }

// AppendTo appends the message body to b. See wire.go.
func (m SyncState) AppendTo(b []byte) []byte {
	b = appendUvarint(b, m.ID)
	b = appendUvarint(b, uint64(m.Epoch))
	b = appendSNMap(b, m.MaxSNs)
	b = appendSNMap(b, m.Trimmed)
	b = appendUvarint(b, uint64(m.From))
	return b
}

// Decode parses a message body, reusing the map storage.
func (m *SyncState) Decode(b []byte) error {
	r := wireReader{b: b}
	m.ID = r.uvarint()
	m.Epoch = types.Epoch(r.u32())
	m.MaxSNs = readSNMap(&r, m.MaxSNs)
	m.Trimmed = readSNMap(&r, m.Trimmed)
	m.From = types.NodeID(r.u32())
	return r.done()
}

func (m SyncState) wireTag() byte { return TagSyncState }

// AppendTo appends the message body to b. See wire.go.
func (m SyncFetch) AppendTo(b []byte) []byte {
	b = appendUvarint(b, m.ID)
	b = appendSNMap(b, m.Have)
	b = appendUvarint(b, uint64(m.From))
	return b
}

// Decode parses a message body, reusing the map storage.
func (m *SyncFetch) Decode(b []byte) error {
	r := wireReader{b: b}
	m.ID = r.uvarint()
	m.Have = readSNMap(&r, m.Have)
	m.From = types.NodeID(r.u32())
	return r.done()
}

func (m SyncFetch) wireTag() byte { return TagSyncFetch }

// AppendTo appends the message body to b. See wire.go.
func (m SyncEntries) AppendTo(b []byte) []byte {
	b = appendUvarint(b, m.ID)
	b = appendRecordsMap(b, m.Records)
	return b
}

// Decode parses a message body, aliasing record payloads into b.
func (m *SyncEntries) Decode(b []byte) error {
	r := wireReader{b: b}
	m.ID = r.uvarint()
	m.Records = readRecordsMap(&r, m.Records)
	return r.done()
}

func (m SyncEntries) wireTag() byte { return TagSyncEntries }

// AppendTo appends the message body to b. See wire.go.
func (m SyncCatchup) AppendTo(b []byte) []byte {
	b = appendUvarint(b, m.ID)
	b = appendUvarint(b, uint64(m.UpToDate))
	b = appendSNMap(b, m.Max)
	b = appendSNMap(b, m.Trimmed)
	b = appendUvarint(b, uint64(m.Epoch))
	b = appendUvarint(b, uint64(m.From))
	return b
}

// Decode parses a message body, reusing the map storage.
func (m *SyncCatchup) Decode(b []byte) error {
	r := wireReader{b: b}
	m.ID = r.uvarint()
	m.UpToDate = types.NodeID(r.u32())
	m.Max = readSNMap(&r, m.Max)
	m.Trimmed = readSNMap(&r, m.Trimmed)
	m.Epoch = types.Epoch(r.u32())
	m.From = types.NodeID(r.u32())
	return r.done()
}

func (m SyncCatchup) wireTag() byte { return TagSyncCatchup }

// AppendTo appends the message body to b. See wire.go.
func (m Reject) AppendTo(b []byte) []byte {
	b = appendUvarint(b, uint64(m.Token))
	b = appendUvarint(b, m.ID)
	b = appendUvarint(b, uint64(m.Color))
	b = appendUvarint(b, uint64(m.Tenant))
	b = append(b, m.Code)
	b = appendBool(b, m.IsRead)
	b = appendUvarint(b, m.RetryAfterMicros)
	return b
}

// Decode parses a message body.
func (m *Reject) Decode(b []byte) error {
	r := wireReader{b: b}
	m.Token = types.Token(r.uvarint())
	m.ID = r.uvarint()
	m.Color = types.ColorID(r.u32())
	m.Tenant = types.TenantID(r.u32())
	m.Code = r.u8()
	m.IsRead = r.bool()
	m.RetryAfterMicros = r.uvarint()
	return r.done()
}

func (m Reject) wireTag() byte { return TagReject }

// AppendTo appends the message body to b. See wire.go.
func (m JoinFetch) AppendTo(b []byte) []byte {
	b = appendUvarint(b, m.ID)
	b = appendSNMap(b, m.Have)
	b = appendUvarint(b, uint64(m.Budget))
	b = appendUvarint(b, uint64(m.From))
	return b
}

// Decode parses a message body, reusing the map storage.
func (m *JoinFetch) Decode(b []byte) error {
	r := wireReader{b: b}
	m.ID = r.uvarint()
	m.Have = readSNMap(&r, m.Have)
	m.Budget = r.u32()
	m.From = types.NodeID(r.u32())
	return r.done()
}

func (m JoinFetch) wireTag() byte { return TagJoinFetch }

// AppendTo appends the message body to b. See wire.go.
func (m JoinEntries) AppendTo(b []byte) []byte {
	b = appendUvarint(b, m.ID)
	b = appendRecordsMap(b, m.Records)
	b = appendSNMap(b, m.Frontier)
	b = appendBool(b, m.More)
	b = appendUvarint(b, uint64(m.From))
	return b
}

// Decode parses a message body, aliasing record payloads into b.
func (m *JoinEntries) Decode(b []byte) error {
	r := wireReader{b: b}
	m.ID = r.uvarint()
	m.Records = readRecordsMap(&r, m.Records)
	m.Frontier = readSNMap(&r, m.Frontier)
	m.More = r.bool()
	m.From = types.NodeID(r.u32())
	return r.done()
}

func (m JoinEntries) wireTag() byte { return TagJoinEntries }

// AppendTo appends the message body to b. See wire.go.
func (m TopoUpdate) AppendTo(b []byte) []byte {
	b = appendUvarint(b, m.Version)
	b = appendUvarint(b, uint64(len(m.Regions)))
	for _, rg := range m.Regions {
		b = appendUvarint(b, uint64(rg.Color))
		b = appendUvarint(b, uint64(rg.Parent))
		b = appendUvarint(b, uint64(rg.Leader))
		b = appendNodeIDs(b, rg.Backups)
		b = appendNodeIDs(b, rg.Members)
		b = appendBool(b, rg.IsRoot)
	}
	b = appendUvarint(b, uint64(len(m.Shards)))
	for _, sh := range m.Shards {
		b = appendUvarint(b, uint64(sh.ID))
		b = appendUvarint(b, uint64(sh.Leaf))
		b = appendNodeIDs(b, sh.Replicas)
	}
	b = appendUvarint(b, uint64(m.From))
	return b
}

// Decode parses a message body, reusing the slice storage.
func (m *TopoUpdate) Decode(b []byte) error {
	r := wireReader{b: b}
	m.Version = r.uvarint()
	nr := r.count(6)
	m.Regions = m.Regions[:0]
	for i := 0; i < nr; i++ {
		var rg TopoRegion
		rg.Color = types.ColorID(r.u32())
		rg.Parent = types.ColorID(r.u32())
		rg.Leader = types.NodeID(r.u32())
		rg.Backups = readNodeIDs(&r, nil)
		rg.Members = readNodeIDs(&r, nil)
		rg.IsRoot = r.bool()
		m.Regions = append(m.Regions, rg)
	}
	ns := r.count(3)
	m.Shards = m.Shards[:0]
	for i := 0; i < ns; i++ {
		var sh TopoShard
		sh.ID = types.ShardID(r.u32())
		sh.Leaf = types.ColorID(r.u32())
		sh.Replicas = readNodeIDs(&r, nil)
		m.Shards = append(m.Shards, sh)
	}
	m.From = types.NodeID(r.u32())
	return r.done()
}

func (m TopoUpdate) wireTag() byte { return TagTopoUpdate }

// AppendTo appends the message body to b. See wire.go.
func (m CtrlReconfig) AppendTo(b []byte) []byte {
	b = appendUvarint(b, m.Seq)
	b = append(b, m.Op)
	b = appendUvarint(b, uint64(m.Donor))
	b = appendUvarint(b, uint64(m.From))
	return b
}

// Decode parses a message body.
func (m *CtrlReconfig) Decode(b []byte) error {
	r := wireReader{b: b}
	m.Seq = r.uvarint()
	m.Op = r.u8()
	m.Donor = types.NodeID(r.u32())
	m.From = types.NodeID(r.u32())
	return r.done()
}

func (m CtrlReconfig) wireTag() byte { return TagCtrlReconfig }

// AppendTo appends the message body to b. See wire.go.
func (m CtrlAck) AppendTo(b []byte) []byte {
	b = appendUvarint(b, m.Seq)
	b = append(b, m.Op)
	b = appendBool(b, m.OK)
	b = append(b, m.Mode)
	b = appendUvarint(b, m.Lag)
	b = appendUvarint(b, m.Version)
	b = appendUvarint(b, uint64(m.From))
	return b
}

// Decode parses a message body.
func (m *CtrlAck) Decode(b []byte) error {
	r := wireReader{b: b}
	m.Seq = r.uvarint()
	m.Op = r.u8()
	m.OK = r.bool()
	m.Mode = r.u8()
	m.Lag = r.uvarint()
	m.Version = r.uvarint()
	m.From = types.NodeID(r.u32())
	return r.done()
}

func (m CtrlAck) wireTag() byte { return TagCtrlAck }

// AppendTo appends the message body to b. See wire.go.
func (m SyncDone) AppendTo(b []byte) []byte {
	b = appendUvarint(b, m.ID)
	b = appendUvarint(b, uint64(m.From))
	return b
}

// Decode parses a message body.
func (m *SyncDone) Decode(b []byte) error {
	r := wireReader{b: b}
	m.ID = r.uvarint()
	m.From = types.NodeID(r.u32())
	return r.done()
}

func (m SyncDone) wireTag() byte { return TagSyncDone }
