package proto

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"testing"

	"flexlog/internal/types"
)

// encodeFrame is a test helper that frames msg from the golden sender.
func encodeFrame(t testing.TB, msg any) []byte {
	t.Helper()
	frame, err := AppendFrame(nil, goldenFrom, msg)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// TestCodecRoundTripSemantics spot-checks that frame-level decode returns
// self-contained values with the fields intact (the golden test already
// pins the byte images; this guards the decoded-Go-value side).
func TestCodecRoundTripSemantics(t *testing.T) {
	req := AppendReq{Color: 7, Token: types.MakeToken(3, 4),
		Records: [][]byte{[]byte("one"), []byte("two")}, Client: 12}
	frame := encodeFrame(t, req)
	_, msg, err := DecodeFrame(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	got := msg.(AppendReq)
	if got.Color != req.Color || got.Token != req.Token || got.Client != req.Client {
		t.Fatalf("decoded = %+v", got)
	}
	if len(got.Records) != 2 || string(got.Records[0]) != "one" || string(got.Records[1]) != "two" {
		t.Fatalf("records = %q", got.Records)
	}
	// Self-containment: scribbling over the frame must not reach the
	// decoded message (DecodeFrame copies aliased bytes out).
	for i := range frame {
		frame[i] = 0xFF
	}
	if string(got.Records[0]) != "one" {
		t.Fatal("decoded message aliases the frame buffer")
	}

	batch := AppendBatchReq{Color: 1, Token: 9,
		Sets: [][][]byte{{[]byte("a")}, {[]byte("bb"), []byte("c")}}, Client: 2}
	frame = encodeFrame(t, batch)
	_, msg, err = DecodeFrame(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	gb := msg.(AppendBatchReq)
	if gb.NRecords() != 3 || string(gb.Sets[1][0]) != "bb" {
		t.Fatalf("batch = %+v", gb)
	}
}

// TestCodecDecodeReuse checks the zero-alloc reuse contract: decoding
// into a message that already holds capacity reuses it.
func TestCodecDecodeReuse(t *testing.T) {
	frameA := encodeFrame(t, AppendReq{Color: 1, Records: [][]byte{[]byte("aaaa"), []byte("bb")}})
	frameB := encodeFrame(t, AppendReq{Color: 2, Records: [][]byte{[]byte("c")}})
	body := func(frame []byte) []byte {
		r := wireReader{b: frame[4:]}
		r.u8()  // tag
		r.u32() // from
		return r.b
	}
	var msg AppendReq
	if err := msg.Decode(body(frameA)); err != nil {
		t.Fatal(err)
	}
	cap0 := cap(msg.Records)
	if err := msg.Decode(body(frameB)); err != nil {
		t.Fatal(err)
	}
	if len(msg.Records) != 1 || string(msg.Records[0]) != "c" {
		t.Fatalf("reused decode = %q", msg.Records)
	}
	if cap(msg.Records) != cap0 {
		t.Fatalf("records capacity not reused: %d → %d", cap0, cap(msg.Records))
	}
}

// TestCodecRejectsCorruptFrames drives malformed input through every
// decode guard: truncation, trailing bytes, bogus counts, bad bools.
func TestCodecRejectsCorruptFrames(t *testing.T) {
	frame := encodeFrame(t, AppendReq{Color: 1, Records: [][]byte{[]byte("abc")}, Client: 2})
	body := frame[4:]
	// Truncations at every boundary must error, never panic.
	for n := 0; n < len(body); n++ {
		if _, _, err := DecodeFrame(body[:n]); err == nil {
			t.Errorf("truncation to %d bytes decoded successfully", n)
		}
	}
	// Trailing garbage is rejected (frames must be consumed exactly).
	if _, _, err := DecodeFrame(append(bytes.Clone(body), 0x00)); err == nil {
		t.Error("trailing byte accepted")
	}
	// Unknown tag.
	if _, _, err := DecodeFrame([]byte{200, 1}); err == nil {
		t.Error("unknown tag accepted")
	}
	// A count that cannot fit the remaining bytes must fail fast instead
	// of allocating.
	huge := []byte{TagAppendReq, 1, 1, 1, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}
	if _, _, err := DecodeFrame(huge); !errors.Is(err, ErrBadFrame) {
		t.Errorf("oversized count: %v", err)
	}
	// Strict booleans: 2 is not a bool.
	rr := encodeFrame(t, ReadResp{ID: 1, Found: true})
	rb := bytes.Clone(rr[4:])
	rb[len(rb)-2] = 2 // Found byte
	if _, _, err := DecodeFrame(rb); !errors.Is(err, ErrBadFrame) {
		t.Errorf("bool=2 accepted: %v", err)
	}
}

// TestCodecFrameSizeLimit checks the MaxFrame guard on encode.
func TestCodecFrameSizeLimit(t *testing.T) {
	big := ReadResp{Data: make([]byte, MaxFrame+16)}
	if _, err := AppendFrame(nil, 1, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: %v", err)
	}
}

// TestCodecGobFallback frames a type the codec does not know and expects
// it back intact through tag 255.
func TestCodecGobFallback(t *testing.T) {
	type alien struct{ A, B int }
	gob.Register(alien{})
	frame := encodeFrame(t, alien{A: 1, B: 2})
	if frame[4] != TagGobFallback {
		t.Fatalf("tag = %d, want %d", frame[4], TagGobFallback)
	}
	from, msg, err := DecodeFrame(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	if from != goldenFrom {
		t.Fatalf("from = %v", from)
	}
	if got := msg.(alien); got != (alien{A: 1, B: 2}) {
		t.Fatalf("fallback round trip = %+v", got)
	}
}

// TestCodecFrameLengthPrefix checks the length prefix covers exactly the
// bytes after itself, little-endian.
func TestCodecFrameLengthPrefix(t *testing.T) {
	frame := encodeFrame(t, SyncDone{ID: 1, From: 2})
	n := binary.LittleEndian.Uint32(frame[:4])
	if int(n) != len(frame)-4 {
		t.Fatalf("length prefix %d, frame body %d", n, len(frame)-4)
	}
}

// TestFrameDecoderMatchesDecodeFrame drives the scratch-reusing decoder
// over every golden frame twice and checks it returns the same values as
// the stateless DecodeFrame, and that earlier results stay intact while
// later frames reuse the scratch (self-containment under reuse).
func TestFrameDecoderMatchesDecodeFrame(t *testing.T) {
	var fd FrameDecoder
	for pass := 0; pass < 2; pass++ {
		for _, g := range goldenFrames {
			frame := encodeFrame(t, g.msg)
			from, got, err := fd.Decode(frame[4:])
			if err != nil {
				t.Fatalf("%s: %v", g.name, err)
			}
			if from != goldenFrom {
				t.Fatalf("%s: from = %v", g.name, from)
			}
			_, want, err := DecodeFrame(frame[4:])
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
				t.Fatalf("%s: FrameDecoder = %+v, DecodeFrame = %+v", g.name, got, want)
			}
		}
	}
	// Reuse safety: a decoded message must survive the scratch being
	// overwritten by a later frame and the frame buffer being scribbled.
	f1 := encodeFrame(t, AppendReq{Color: 1, Records: [][]byte{[]byte("first"), []byte("xx")}})
	_, m1, err := fd.Decode(f1[4:])
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1 {
		f1[i] = 0xAA
	}
	f2 := encodeFrame(t, AppendReq{Color: 2, Records: [][]byte{[]byte("second-longer-record")}})
	if _, _, err := fd.Decode(f2[4:]); err != nil {
		t.Fatal(err)
	}
	got := m1.(AppendReq)
	if len(got.Records) != 2 || string(got.Records[0]) != "first" {
		t.Fatalf("earlier decode corrupted by scratch reuse: %q", got.Records)
	}
}
