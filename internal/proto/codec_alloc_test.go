package proto

import (
	"bytes"
	"encoding/gob"
	"testing"

	"flexlog/internal/types"
)

// hotMessages are the steady-state data-path frames (client append/read
// rounds and the replica↔sequencer ordering rounds) whose encode and
// decode must stay allocation-free. make codec-smoke gates on this.
func hotMessages() []any {
	rec := bytes.Repeat([]byte("x"), 128)
	return []any{
		AppendReq{Color: 3, Token: types.MakeToken(7, 9), Records: [][]byte{rec, rec, rec, rec}, Client: 500},
		AppendBatchReq{Color: 3, Token: types.MakeToken(7, 9), Sets: [][][]byte{{rec, rec}, {rec}}, Client: 500},
		AppendAck{Token: types.MakeToken(7, 9), SN: types.MakeSN(1, 99)},
		ReadReq{ID: 42, Color: 3, SN: types.MakeSN(1, 99), Client: 500},
		ReadResp{ID: 42, SN: types.MakeSN(1, 99), Data: rec, Found: true},
		OrderReq{Color: 3, Token: 11, NRecords: 4, Shard: 1, Replicas: []types.NodeID{1, 2, 3}},
		OrderResp{Token: 11, LastSN: types.MakeSN(1, 103), NRecords: 4, Color: 3},
		OrderReqBatch{Color: 3, Shard: 1, Replicas: []types.NodeID{1, 2, 3},
			Items: []OrderItem{{Token: 5, NRecords: 1}, {Token: 6, NRecords: 2}}},
		OrderRespBatch{Color: 3, Items: []OrderRespItem{{Token: 5, LastSN: types.MakeSN(1, 1), NRecords: 1}}},
	}
}

// frameBody strips the length prefix, tag and sender off a frame.
func frameBody(t testing.TB, frame []byte) []byte {
	t.Helper()
	r := wireReader{b: frame[4:]}
	r.u8()
	r.u32()
	if r.err != nil {
		t.Fatal(r.err)
	}
	return r.b
}

// hotDecoder returns a decode closure bound to a persistent typed message,
// so repeated calls reuse its slice/map capacity (the zero-alloc contract).
func hotDecoder(t testing.TB, msg any) func([]byte) error {
	t.Helper()
	switch msg.(type) {
	case AppendReq:
		m := &AppendReq{}
		return m.Decode
	case AppendBatchReq:
		m := &AppendBatchReq{}
		return m.Decode
	case AppendAck:
		m := &AppendAck{}
		return m.Decode
	case ReadReq:
		m := &ReadReq{}
		return m.Decode
	case ReadResp:
		m := &ReadResp{}
		return m.Decode
	case OrderReq:
		m := &OrderReq{}
		return m.Decode
	case OrderResp:
		m := &OrderResp{}
		return m.Decode
	case OrderReqBatch:
		m := &OrderReqBatch{}
		return m.Decode
	case OrderRespBatch:
		m := &OrderRespBatch{}
		return m.Decode
	default:
		t.Fatalf("unhandled hot type %T", msg)
		return nil
	}
}

// TestCodecZeroAllocHotPath is the allocs/op ceiling of ISSUE 7: encoding
// into a reused buffer and decoding into a reused message must both be
// 0 allocs/op at steady state for every hot frame type.
func TestCodecZeroAllocHotPath(t *testing.T) {
	for _, msg := range hotMessages() {
		name := typeName(msg)
		boxed := msg // box once, outside the measured loop
		buf := make([]byte, 0, 4096)
		if allocs := testing.AllocsPerRun(200, func() {
			var err error
			buf, err = AppendFrame(buf[:0], 500, boxed)
			if err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("%s encode: %.1f allocs/op, want 0", name, allocs)
		}

		frame, err := AppendFrame(nil, 500, msg)
		if err != nil {
			t.Fatal(err)
		}
		body := frameBody(t, frame)
		decode := hotDecoder(t, msg)
		if err := decode(body); err != nil { // populate reusable capacity
			t.Fatal(err)
		}
		if allocs := testing.AllocsPerRun(200, func() {
			if err := decode(body); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("%s decode: %.1f allocs/op, want 0", name, allocs)
		}
	}
}

func typeName(msg any) string {
	if wm, ok := msg.(wireMessage); ok {
		for _, g := range goldenFrames {
			if gw, ok := g.msg.(wireMessage); ok && gw.wireTag() == wm.wireTag() {
				return g.name
			}
		}
	}
	return "?"
}

// BenchmarkCodecEncode / BenchmarkCodecDecode measure the binary codec on
// a 4×128 B append frame; the Gob variants are the baseline the ablation
// (EXPERIMENTS.md ablate-codec) quotes.
func BenchmarkCodecEncode(b *testing.B) {
	var msg any = hotMessages()[0]
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendFrame(buf[:0], 500, msg)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecDecode(b *testing.B) {
	req := hotMessages()[0].(AppendReq)
	frame, err := AppendFrame(nil, 500, req)
	if err != nil {
		b.Fatal(err)
	}
	body := frameBody(b, frame)
	var m AppendReq
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Decode(body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecDecodeFrame includes the frame-level ownership copy the
// TCP read path pays so pooled buffers can recycle immediately.
func BenchmarkCodecDecodeFrame(b *testing.B) {
	frame, err := AppendFrame(nil, 500, hotMessages()[0])
	if err != nil {
		b.Fatal(err)
	}
	body := frame[4:]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeFrame(body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGobEncode(b *testing.B) {
	req := hotMessages()[0].(AppendReq)
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := gob.NewEncoder(&buf).Encode(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGobDecode(b *testing.B) {
	req := hotMessages()[0].(AppendReq)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var m AppendReq
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&m); err != nil {
			b.Fatal(err)
		}
	}
}
