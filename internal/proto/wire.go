// Hand-rolled binary wire codec for every proto message (DESIGN.md §12).
//
// Frame layout (everything little-endian / unsigned varint):
//
//	[u32 length N][1-byte type tag][uvarint from-node-id][message body]
//
// The length counts the bytes after the length field itself. Integers are
// encoded as unsigned varints (encoding/binary Uvarint), byte slices as a
// uvarint length followed by the raw bytes, slices as a uvarint element
// count followed by the elements, maps as a uvarint pair count followed by
// key/value pairs in ascending key order (canonical encoding — a message
// value has exactly one wire image). Booleans are one byte, strictly 0 or
// 1.
//
// Encoding is allocation-free: AppendTo appends to a caller-owned buffer.
// Decoding is zero-copy: Decode aliases []byte fields into the input
// buffer and reuses the slice/map capacity already in the receiver, so a
// steady-state decode into a reused message performs no allocations. The
// frame-level DecodeFrame used by the TCP transport instead returns a
// self-contained message (byte fields copied out) so pooled read buffers
// can be recycled as soon as it returns.
//
// Tag 255 frames a gob-encoded payload: the escape hatch for message
// types the codec does not know (tests, future rolling upgrades). The
// connection-level preamble Magic lets an accepting endpoint distinguish
// a binary-codec peer from a legacy pure-gob stream.
package proto

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"slices"

	"flexlog/internal/types"
)

// Magic is the 4-byte preamble a binary-codec connection sends after
// dialing; an accepting endpoint that sees it switches to frame decoding,
// anything else is treated as a legacy gob stream.
var Magic = [4]byte{'F', 'L', 'X', '1'}

// MaxFrame bounds the post-length size of a single frame (type tag +
// sender + body). A peer announcing more is corrupt or hostile and the
// connection is dropped.
const MaxFrame = 1 << 28

// Wire type tags, one per message (DESIGN.md §12 pins these: changing a
// value breaks cross-version framing and the golden-bytes test).
const (
	TagAppendReq         byte = 1
	TagAppendBatchReq    byte = 2
	TagAppendAck         byte = 3
	TagReadReq           byte = 4
	TagReadResp          byte = 5
	TagSubscribeReq      byte = 6
	TagSubscribeResp     byte = 7
	TagTrimReq           byte = 8
	TagTrimPeerAck       byte = 9
	TagTrimAck           byte = 10
	TagMultiAppendEnd    byte = 11
	TagMultiAppendAck    byte = 12
	TagOrderReq          byte = 13
	TagOrderResp         byte = 14
	TagOrderReqBatch     byte = 15
	TagOrderRespBatch    byte = 16
	TagAggOrderReq       byte = 17
	TagAggOrderResp      byte = 18
	TagSeqHeartbeat      byte = 19
	TagSeqHeartbeatAck   byte = 20
	TagEpochClaim        byte = 21
	TagEpochGrant        byte = 22
	TagEpochReject       byte = 23
	TagSeqInit           byte = 24
	TagSeqInitAck        byte = 25
	TagReplicaHeartbeat  byte = 26
	TagSyncRequest       byte = 27
	TagSyncState         byte = 28
	TagSyncFetch         byte = 29
	TagSyncEntries       byte = 30
	TagSyncCatchup       byte = 31
	TagSyncDone          byte = 32
	TagReject            byte = 33
	TagAggOrderReqBatch  byte = 34
	TagAggOrderRespBatch byte = 35
	TagJoinFetch         byte = 36
	TagJoinEntries       byte = 37
	TagTopoUpdate        byte = 38
	TagCtrlReconfig      byte = 39
	TagCtrlAck           byte = 40
	// TagGobFallback frames a gob-encoded payload for message types the
	// binary codec does not know.
	TagGobFallback byte = 255
)

// ErrBadFrame reports a malformed or truncated frame.
var ErrBadFrame = errors.New("proto: malformed frame")

// ErrFrameTooLarge reports a frame exceeding MaxFrame.
var ErrFrameTooLarge = errors.New("proto: frame exceeds size limit")

// wireMessage is satisfied (with value receivers, so both values and
// pointers qualify) by every codec-native message type.
type wireMessage interface {
	// AppendTo appends the message body to b and returns the extended
	// slice. It never allocates beyond growing b.
	AppendTo(b []byte) []byte
	wireTag() byte
}

// gobFallback wraps an unknown message type for tag-255 frames.
type gobFallback struct{ Msg any }

// AppendFrame appends one complete frame (length prefix, tag, sender,
// body) for msg to b and returns the extended slice. Message types the
// codec does not know are framed as gob (tag 255); their concrete type
// must be gob-registered on both ends. On error b is returned truncated
// to its original length.
func AppendFrame(b []byte, from types.NodeID, msg any) ([]byte, error) {
	start := len(b)
	b = append(b, 0, 0, 0, 0) // length back-filled below
	if wm, ok := msg.(wireMessage); ok {
		b = append(b, wm.wireTag())
		b = appendUvarint(b, uint64(from))
		b = wm.AppendTo(b)
	} else {
		b = append(b, TagGobFallback)
		b = appendUvarint(b, uint64(from))
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&gobFallback{Msg: msg}); err != nil {
			return b[:start], fmt.Errorf("proto: gob fallback encode: %w", err)
		}
		b = append(b, buf.Bytes()...)
	}
	n := len(b) - start - 4
	if n > MaxFrame {
		return b[:start], ErrFrameTooLarge
	}
	binary.LittleEndian.PutUint32(b[start:], uint32(n))
	return b, nil
}

// DecodeFrame parses one frame body (the bytes after the u32 length
// prefix) and returns the sender and the decoded message. The returned
// message is self-contained — byte fields are copied out of b — so the
// caller may recycle b immediately.
func DecodeFrame(b []byte) (types.NodeID, any, error) {
	r := wireReader{b: b}
	tag := r.u8()
	from := types.NodeID(r.u32())
	if r.err != nil {
		return 0, nil, r.err
	}
	body := r.b
	msg, err := decodeBody(tag, body)
	if err != nil {
		return 0, nil, err
	}
	return from, msg, nil
}

// decodeBody decodes a tagged message body into a self-contained value.
func decodeBody(tag byte, body []byte) (any, error) {
	switch tag {
	case TagAppendReq:
		var m AppendReq
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		m.Records = ownByteSlices(m.Records)
		return m, nil
	case TagAppendBatchReq:
		var m AppendBatchReq
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		for i := range m.Sets {
			m.Sets[i] = ownByteSlices(m.Sets[i])
		}
		return m, nil
	case TagAppendAck:
		var m AppendAck
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagReadReq:
		var m ReadReq
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagReadResp:
		var m ReadResp
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		m.Data = bytes.Clone(m.Data)
		return m, nil
	case TagSubscribeReq:
		var m SubscribeReq
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagSubscribeResp:
		var m SubscribeResp
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		ownRecordData(m.Records)
		return m, nil
	case TagTrimReq:
		var m TrimReq
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagTrimPeerAck:
		var m TrimPeerAck
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagTrimAck:
		var m TrimAck
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagMultiAppendEnd:
		var m MultiAppendEnd
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagMultiAppendAck:
		var m MultiAppendAck
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagOrderReq:
		var m OrderReq
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagOrderResp:
		var m OrderResp
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagOrderReqBatch:
		var m OrderReqBatch
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagOrderRespBatch:
		var m OrderRespBatch
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagAggOrderReq:
		var m AggOrderReq
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagAggOrderResp:
		var m AggOrderResp
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagAggOrderReqBatch:
		var m AggOrderReqBatch
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagAggOrderRespBatch:
		var m AggOrderRespBatch
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagSeqHeartbeat:
		var m SeqHeartbeat
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagSeqHeartbeatAck:
		var m SeqHeartbeatAck
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagEpochClaim:
		var m EpochClaim
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagEpochGrant:
		var m EpochGrant
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagEpochReject:
		var m EpochReject
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagSeqInit:
		var m SeqInit
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagSeqInitAck:
		var m SeqInitAck
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagReplicaHeartbeat:
		var m ReplicaHeartbeat
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagSyncRequest:
		var m SyncRequest
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagSyncState:
		var m SyncState
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagSyncFetch:
		var m SyncFetch
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagSyncEntries:
		var m SyncEntries
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		for _, recs := range m.Records {
			ownRecordData(recs)
		}
		return m, nil
	case TagSyncCatchup:
		var m SyncCatchup
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagSyncDone:
		var m SyncDone
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagReject:
		var m Reject
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagJoinFetch:
		var m JoinFetch
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagJoinEntries:
		var m JoinEntries
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		for _, recs := range m.Records {
			ownRecordData(recs)
		}
		return m, nil
	case TagTopoUpdate:
		var m TopoUpdate
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagCtrlReconfig:
		var m CtrlReconfig
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagCtrlAck:
		var m CtrlAck
		if err := m.Decode(body); err != nil {
			return nil, err
		}
		return m, nil
	case TagGobFallback:
		var env gobFallback
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&env); err != nil {
			return nil, fmt.Errorf("proto: gob fallback decode: %w", err)
		}
		return env.Msg, nil
	default:
		return nil, fmt.Errorf("%w: unknown tag %d", ErrBadFrame, tag)
	}
}

// ---- encode helpers ----

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendBytes(b, p []byte) []byte {
	b = appendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendByteSlices(b []byte, ss [][]byte) []byte {
	b = appendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendBytes(b, s)
	}
	return b
}

func appendNodeIDs(b []byte, ids []types.NodeID) []byte {
	b = appendUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		b = appendUvarint(b, uint64(id))
	}
	return b
}

func appendWireRecords(b []byte, recs []WireRecord) []byte {
	b = appendUvarint(b, uint64(len(recs)))
	for _, rec := range recs {
		b = appendUvarint(b, uint64(rec.Token))
		b = appendUvarint(b, uint64(rec.SN))
		b = appendBytes(b, rec.Data)
	}
	return b
}

// appendSNMap writes the map in ascending key order so the encoding is
// canonical (sync-phase messages only; the sort is off the hot path).
func appendSNMap(b []byte, m map[types.ColorID]types.SN) []byte {
	b = appendUvarint(b, uint64(len(m)))
	if len(m) == 0 {
		return b
	}
	keys := make([]types.ColorID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		b = appendUvarint(b, uint64(k))
		b = appendUvarint(b, uint64(m[k]))
	}
	return b
}

func appendRecordsMap(b []byte, m map[types.ColorID][]WireRecord) []byte {
	b = appendUvarint(b, uint64(len(m)))
	if len(m) == 0 {
		return b
	}
	keys := make([]types.ColorID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		b = appendUvarint(b, uint64(k))
		b = appendWireRecords(b, m[k])
	}
	return b
}

// ---- decode helpers ----

// wireReader is a sticky-error cursor over one frame body. All reads
// alias the input; nothing is copied.
type wireReader struct {
	b   []byte
	err error
}

func (r *wireReader) fail() {
	if r.err == nil {
		r.err = ErrBadFrame
	}
	r.b = nil
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *wireReader) u32() uint32 {
	v := r.uvarint()
	if v > 0xFFFFFFFF {
		r.fail()
		return 0
	}
	return uint32(v)
}

func (r *wireReader) u8() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *wireReader) bool() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail()
		return false
	}
}

// bytes returns the next length-prefixed byte slice, aliased into the
// input buffer (nil for length zero).
func (r *wireReader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := r.b[:n:n]
	r.b = r.b[n:]
	return out
}

// count reads an element count and rejects counts that could not possibly
// fit in the remaining bytes (each element consumes at least minBytes) —
// the guard that keeps fuzzed input from provoking huge allocations.
func (r *wireReader) count(minBytes int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if v > uint64(len(r.b))/uint64(minBytes) {
		r.fail()
		return 0
	}
	return int(v)
}

// done reports the sticky error, or ErrBadFrame on trailing bytes: a
// frame body must be consumed exactly.
func (r *wireReader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(r.b))
	}
	return nil
}

// readByteSlices decodes a [][]byte, reusing dst's capacity.
func readByteSlices(r *wireReader, dst [][]byte) [][]byte {
	n := r.count(1)
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, r.bytes())
	}
	return dst
}

// readByteSliceSets decodes a [][][]byte, reusing both the outer slice
// and each inner set's capacity.
func readByteSliceSets(r *wireReader, dst [][][]byte) [][][]byte {
	n := r.count(1)
	old := dst
	dst = dst[:0]
	for i := 0; i < n; i++ {
		var inner [][]byte
		if i < len(old) {
			inner = old[i]
		}
		dst = append(dst, readByteSlices(r, inner))
	}
	return dst
}

func readNodeIDs(r *wireReader, dst []types.NodeID) []types.NodeID {
	n := r.count(1)
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, types.NodeID(r.u32()))
	}
	return dst
}

func readWireRecords(r *wireReader, dst []WireRecord) []WireRecord {
	n := r.count(3)
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, WireRecord{
			Token: types.Token(r.uvarint()),
			SN:    types.SN(r.uvarint()),
			Data:  r.bytes(),
		})
	}
	return dst
}

func readSNMap(r *wireReader, dst map[types.ColorID]types.SN) map[types.ColorID]types.SN {
	n := r.count(2)
	if r.err != nil {
		return dst
	}
	if dst == nil {
		if n == 0 {
			return nil
		}
		dst = make(map[types.ColorID]types.SN, n)
	} else {
		clear(dst)
	}
	for i := 0; i < n; i++ {
		k := types.ColorID(r.u32())
		dst[k] = types.SN(r.uvarint())
	}
	return dst
}

func readRecordsMap(r *wireReader, dst map[types.ColorID][]WireRecord) map[types.ColorID][]WireRecord {
	n := r.count(2)
	if r.err != nil {
		return dst
	}
	if dst == nil {
		if n == 0 {
			return nil
		}
		dst = make(map[types.ColorID][]WireRecord, n)
	} else {
		clear(dst)
	}
	for i := 0; i < n; i++ {
		k := types.ColorID(r.u32())
		dst[k] = readWireRecords(r, nil)
	}
	return dst
}

// ---- ownership helpers (frame-level decode copies aliased data) ----

// ownByteSlices copies every slice's bytes into one fresh contiguous
// buffer so the decoded value no longer references the frame buffer.
func ownByteSlices(ss [][]byte) [][]byte {
	if len(ss) == 0 {
		return ss
	}
	total := 0
	for _, s := range ss {
		total += len(s)
	}
	buf := make([]byte, 0, total)
	for i, s := range ss {
		n := len(buf)
		buf = append(buf, s...)
		ss[i] = buf[n:len(buf):len(buf)]
	}
	return ss
}

// ownRecordData copies each record's payload out of the frame buffer.
func ownRecordData(recs []WireRecord) {
	if len(recs) == 0 {
		return
	}
	total := 0
	for _, rec := range recs {
		total += len(rec.Data)
	}
	buf := make([]byte, 0, total)
	for i := range recs {
		n := len(buf)
		buf = append(buf, recs[i].Data...)
		recs[i].Data = buf[n:len(buf):len(buf)]
	}
}

// ---- per-connection frame decoding with scratch reuse ----

// FrameDecoder is DecodeFrame with reusable scratch state. A transport
// read loop owns one per connection: the alias-carrying hot types
// (AppendReq, AppendBatchReq, SubscribeResp) first decode into scratch
// messages — reusing their slice-header capacity across frames — and then
// copy out exactly once into right-sized owned values. This halves the
// decode-side allocation churn of the stateless DecodeFrame, which
// rebuilds the intermediate aliased headers for every frame. Returned
// messages are self-contained; the scratch retains only dead aliases
// that the next Decode overwrites. Not safe for concurrent use.
type FrameDecoder struct {
	appendReq AppendReq
	batchReq  AppendBatchReq
	subResp   SubscribeResp
	arena     []byte
}

// arenaChunk is the decoder's backing-buffer granularity. Owned record
// copies are carved from one shared chunk, so the per-frame backing
// allocation (and its zeroing) amortizes over ~dozens of frames. A chunk
// stays reachable until every message carved from it is dropped — bounded
// retention the handlers' short message lifetimes make irrelevant.
const arenaChunk = 64 << 10

// carve returns an empty owned slice with room for total bytes, cut off
// the decoder's current arena chunk.
func (d *FrameDecoder) carve(total int) []byte {
	if cap(d.arena)-len(d.arena) < total {
		size := arenaChunk
		if total > size {
			size = total
		}
		d.arena = make([]byte, 0, size)
	}
	n := len(d.arena)
	d.arena = d.arena[:n+total]
	return d.arena[n : n : n+total]
}

// Decode decodes one frame (sans length prefix) into a self-contained
// message, like DecodeFrame, but with scratch reuse.
func (d *FrameDecoder) Decode(b []byte) (types.NodeID, any, error) {
	r := wireReader{b: b}
	tag := r.u8()
	from := types.NodeID(r.u32())
	if r.err != nil {
		return 0, nil, r.err
	}
	body := r.b
	switch tag {
	case TagAppendReq:
		if err := d.appendReq.Decode(body); err != nil {
			return 0, nil, err
		}
		m := d.appendReq
		m.Records = d.copyByteSlices(m.Records)
		return from, m, nil
	case TagAppendBatchReq:
		if err := d.batchReq.Decode(body); err != nil {
			return 0, nil, err
		}
		m := d.batchReq
		sets := make([][][]byte, len(m.Sets))
		for i, s := range m.Sets {
			sets[i] = d.copyByteSlices(s)
		}
		m.Sets = sets
		return from, m, nil
	case TagSubscribeResp:
		if err := d.subResp.Decode(body); err != nil {
			return 0, nil, err
		}
		m := d.subResp
		m.Records = d.copyWireRecords(m.Records)
		return from, m, nil
	}
	msg, err := decodeBody(tag, body)
	if err != nil {
		return 0, nil, err
	}
	return from, msg, nil
}

// copyByteSlices returns a fresh right-sized header array whose elements
// share one arena-carved backing region (the scratch keeps its headers).
func (d *FrameDecoder) copyByteSlices(src [][]byte) [][]byte {
	if src == nil {
		return nil
	}
	total := 0
	for _, s := range src {
		total += len(s)
	}
	out := make([][]byte, len(src))
	buf := d.carve(total)
	for i, s := range src {
		n := len(buf)
		buf = append(buf, s...)
		out[i] = buf[n:len(buf):len(buf)]
	}
	return out
}

// copyWireRecords is copyByteSlices for subscription records.
func (d *FrameDecoder) copyWireRecords(src []WireRecord) []WireRecord {
	if src == nil {
		return nil
	}
	total := 0
	for _, rec := range src {
		total += len(rec.Data)
	}
	out := make([]WireRecord, len(src))
	buf := d.carve(total)
	for i, rec := range src {
		n := len(buf)
		buf = append(buf, rec.Data...)
		out[i] = rec
		out[i].Data = buf[n:len(buf):len(buf)]
	}
	return out
}
