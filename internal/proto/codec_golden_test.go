package proto

import (
	"encoding/hex"
	"testing"

	"flexlog/internal/types"
)

// goldenFrom is the sender id every golden frame is encoded with.
const goldenFrom types.NodeID = 500

// goldenFrames pins the exact wire image of every message type (frame
// length prefix, tag, sender, body). These bytes are the cross-version
// compatibility contract of DESIGN.md §12: a codec change that alters any
// of them breaks mixed-version clusters and must bump the Magic preamble
// instead of silently reframing.
var goldenFrames = []struct {
	name string
	msg  any
	hex  string
}{
	{"AppendReq", AppendReq{Color: 0x3, Token: 0x700000009, Records: [][]uint8{[]uint8{0x61, 0x62}, []uint8(nil), []uint8{0x63}}, Client: 0x1f4, Tenant: 0x7},
		"1300000001f40303898080807003026162000163f40307"},
	{"AppendBatchReq", AppendBatchReq{Color: 0x1, Token: 0x2, Sets: [][][]uint8{[][]uint8{[]uint8{0x78}}, [][]uint8{[]uint8{0x79, 0x7a}, []uint8{0x77}}}, Client: 0x6, Tenant: 0x9},
		"1100000002f4030102020101780202797a01770609"},
	{"AppendAck", AppendAck{Token: 0x100000002, SN: 0x100000003},
		"0d00000003f40382808080108380808010"},
	{"ReadReq", ReadReq{ID: 0x4d, Color: 0x3, SN: 0x100000009, Client: 0x1f4, Tenant: 0x7},
		"0d00000004f4034d038980808010f40307"},
	{"ReadResp", ReadResp{ID: 0x4d, SN: 0x100000009, Data: []uint8{0x64, 0x61, 0x74, 0x61}, Found: true, Status: 0x0},
		"1000000005f4034d898080801004646174610100"},
	{"ReadRespMiss", ReadResp{ID: 0x4e, SN: 0x100000009, Data: []uint8(nil), Found: false, Status: 0x1},
		"0c00000005f4034e8980808010000001"},
	{"SubscribeReq", SubscribeReq{ID: 0x5, Color: 0x2, From: 0x100000001, Client: 0x1f4},
		"0c00000006f40305028180808010f403"},
	{"SubscribeResp", SubscribeResp{ID: 0x5, Color: 0x2, Records: []WireRecord{WireRecord{Token: 0x9, SN: 0x100000004, Data: []uint8{0x72}}}},
		"0e00000007f4030502010984808080100172"},
	{"TrimReq", TrimReq{ID: 0x8, Color: 0x2, SN: 0x100000006, Client: 0x1f4},
		"0c00000008f40308028680808010f403"},
	{"TrimPeerAck", TrimPeerAck{ID: 0x8, Color: 0x2, SN: 0x100000006, From: 0x3},
		"0b00000009f4030802868080801003"},
	{"TrimAck", TrimAck{ID: 0x8, Color: 0x2, Head: 0x100000007, Tail: 0x100000009},
		"0f0000000af403080287808080108980808010"},
	{"MultiAppendEnd", MultiAppendEnd{ID: 0x4, FID: 0x7, Tokens: []types.Token{0x1, 0x2}, Client: 0x1f4},
		"0a0000000bf4030407020102f403"},
	{"MultiAppendAck", MultiAppendAck{ID: 0x4},
		"040000000cf40304"},
	{"OrderReq", OrderReq{Color: 0x3, Token: 0xb, NRecords: 0x2, Shard: 0x1, Replicas: []types.NodeID{0x1, 0x2, 0x3}},
		"0b0000000df403030b020103010203"},
	{"OrderResp", OrderResp{Token: 0xb, LastSN: 0x10000000c, NRecords: 0x2, Color: 0x3},
		"0b0000000ef4030b8c808080100203"},
	{"OrderReqBatch", OrderReqBatch{Color: 0x3, Shard: 0x1, Replicas: []types.NodeID{0x1, 0x2}, Items: []OrderItem{OrderItem{Token: 0x5, NRecords: 0x1}, OrderItem{Token: 0x6, NRecords: 0x2}}},
		"0d0000000ff40303010201020205010602"},
	{"OrderRespBatch", OrderRespBatch{Color: 0x3, Items: []OrderRespItem{OrderRespItem{Token: 0x5, LastSN: 0x100000002, NRecords: 0x1}}},
		"0c00000010f403030105828080801001"},
	{"AggOrderReq", AggOrderReq{Color: 0x0, BatchID: 0x13, Total: 0x6, From: 0x384},
		"0800000011f4030013068407"},
	{"AggOrderResp", AggOrderResp{BatchID: 0x13, LastSN: 0x200000002, Color: 0x0},
		"0a00000012f40313828080802000"},
	{"AggOrderReqBatch", AggOrderReqBatch{From: 0x384, Items: []AggOrderItem{{Color: 0x1, BatchID: 0x13, Total: 0x6}, {Color: 0x2, BatchID: 0x14, Total: 0x3}}},
		"0c00000022f403840702011306021403"},
	{"AggOrderRespBatch", AggOrderRespBatch{From: 0x384, Items: []AggOrderRespItem{{Color: 0x1, BatchID: 0x13, LastSN: 0x200000002}, {Color: 0x2, BatchID: 0x14, LastSN: 0x200000005}}},
		"1400000023f4038407020113828080802002148580808020"},
	{"SeqHeartbeat", SeqHeartbeat{Epoch: 0x2, From: 0x384},
		"0600000013f403028407"},
	{"SeqHeartbeatAck", SeqHeartbeatAck{Epoch: 0x2, From: 0x385},
		"0600000014f403028507"},
	{"EpochClaim", EpochClaim{Epoch: 0x3, From: 0x385},
		"0600000015f403038507"},
	{"EpochGrant", EpochGrant{Epoch: 0x3, From: 0x386},
		"0600000016f403038607"},
	{"EpochReject", EpochReject{Epoch: 0x3, Claimant: 0x385, LeaderAlive: true},
		"0700000017f40303850701"},
	{"SeqInit", SeqInit{Epoch: 0x3, From: 0x385},
		"0600000018f403038507"},
	{"SeqInitAck", SeqInitAck{Epoch: 0x3, From: 0x1},
		"0500000019f4030301"},
	{"ReplicaHeartbeat", ReplicaHeartbeat{From: 0x2},
		"040000001af40302"},
	{"SyncRequest", SyncRequest{ID: 0x6, From: 0x2},
		"050000001bf4030602"},
	{"SyncState", SyncState{ID: 0x6, Epoch: 0x2, MaxSNs: map[types.ColorID]types.SN{0x0: 0x100000004, 0x3: 0x100000002}, Trimmed: map[types.ColorID]types.SN{0x0: 0x100000001}, From: 0x2},
		"1a0000001cf4030602020084808080100382808080100100818080801002"},
	{"SyncFetch", SyncFetch{ID: 0x6, Have: map[types.ColorID]types.SN{0x0: 0x100000002}, From: 0x2},
		"0c0000001df403060100828080801002"},
	{"SyncEntries", SyncEntries{ID: 0x6, Records: map[types.ColorID][]WireRecord{0x0: []WireRecord{WireRecord{Token: 0x1, SN: 0x100000003, Data: []uint8{0x65}}}}},
		"0f0000001ef403060100010183808080100165"},
	{"SyncCatchup", SyncCatchup{ID: 0x6, UpToDate: 0x3, Max: map[types.ColorID]types.SN{0x0: 0x100000004}, Trimmed: map[types.ColorID]types.SN(nil), Epoch: 0x2, From: 0x2},
		"0f0000001ff403060301008480808010000202"},
	{"SyncDone", SyncDone{ID: 0x6, From: 0x3},
		"0500000020f4030603"},
	{"Reject", Reject{Token: 0xb, ID: 0x4d, Color: 0x3, Tenant: 0x7, Code: RejectThrottled, IsRead: false, RetryAfterMicros: 1500},
		"0b00000021f4030b4d03070100dc0b"},
	{"JoinFetch", JoinFetch{ID: 0x6, Have: map[types.ColorID]types.SN{0x0: 0x100000002}, Budget: 0x80, From: 0x2},
		"0e00000024f4030601008280808010800102"},
	{"JoinEntries", JoinEntries{ID: 0x6, Records: map[types.ColorID][]WireRecord{0x0: {WireRecord{Token: 0x1, SN: 0x100000003, Data: []uint8{0x65}}}}, Frontier: map[types.ColorID]types.SN{0x0: 0x100000004}, More: true, From: 0x3},
		"1800000025f403060100010183808080100165010084808080100103"},
	{"TopoUpdate", TopoUpdate{Version: 0x7, Regions: []TopoRegion{
		{Color: 0x0, Parent: 0x0, Leader: 0x64, Backups: []types.NodeID{0x65}, Members: []types.NodeID{0x64, 0x65}, IsRoot: true},
		{Color: 0x1, Parent: 0x0, Leader: 0x6e, Backups: nil, Members: []types.NodeID{0x6e}, IsRoot: false},
	}, Shards: []TopoShard{{ID: 0x1, Leaf: 0x1, Replicas: []types.NodeID{0x1, 0x2, 0x3}}}, From: 0x1f4},
		"1e00000026f403070200006401650264650101006e00016e0001010103010203f403"},
	{"CtrlReconfig", CtrlReconfig{Seq: 0x9, Op: CtrlOpJoin, Donor: 0x2, From: 0x1f4},
		"0800000027f403090102f403"},
	{"CtrlAck", CtrlAck{Seq: 0x9, Op: CtrlOpJoin, OK: true, Mode: 0x5, Lag: 0x2a, Version: 0x7, From: 0x3},
		"0a00000028f403090101052a0703"},
}

// TestCodecGoldenBytes checks encode produces exactly the pinned bytes
// and that decoding those bytes re-encodes to the same image.
func TestCodecGoldenBytes(t *testing.T) {
	for _, g := range goldenFrames {
		t.Run(g.name, func(t *testing.T) {
			frame, err := AppendFrame(nil, goldenFrom, g.msg)
			if err != nil {
				t.Fatal(err)
			}
			if got := hex.EncodeToString(frame); got != g.hex {
				t.Fatalf("wire image changed:\n got %s\nwant %s", got, g.hex)
			}
			raw, err := hex.DecodeString(g.hex)
			if err != nil {
				t.Fatal(err)
			}
			from, msg, err := DecodeFrame(raw[4:])
			if err != nil {
				t.Fatalf("decoding golden bytes: %v", err)
			}
			if from != goldenFrom {
				t.Fatalf("from = %v, want %v", from, goldenFrom)
			}
			re, err := AppendFrame(nil, from, msg)
			if err != nil {
				t.Fatal(err)
			}
			if got := hex.EncodeToString(re); got != g.hex {
				t.Fatalf("decode→re-encode drifted:\n got %s\nwant %s", got, g.hex)
			}
		})
	}
}

// TestCodecGoldenCoversAllTags ensures the golden table exercises every
// codec-native tag, so adding a message type without pinning its bytes
// fails here.
func TestCodecGoldenCoversAllTags(t *testing.T) {
	seen := map[byte]bool{}
	for _, g := range goldenFrames {
		wm, ok := g.msg.(wireMessage)
		if !ok {
			t.Fatalf("%s is not codec-native", g.name)
		}
		seen[wm.wireTag()] = true
	}
	for tag := TagAppendReq; tag <= TagCtrlAck; tag++ {
		if !seen[tag] {
			t.Errorf("no golden frame for tag %d", tag)
		}
	}
}
