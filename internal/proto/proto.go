// Package proto defines the wire messages of every FlexLog protocol
// (§6.1–§6.4): the client append/read/subscribe/trim requests, the ordering
// layer's order requests and responses (including the aggregated tree
// forms), the heartbeat/election traffic of sequencer fault tolerance
// (§5.2), and the replica sync-phase messages (§6.3).
//
// On the wire every message travels in the hand-rolled binary framing of
// wire.go (zero-alloc encode, length-prefixed, one-byte type tag; see
// DESIGN.md §12). The gob registration below remains as the legacy /
// fallback path: tag-255 frames for types the codec does not know, and
// full-gob streams from peers running `-codec=gob`.
package proto

import (
	"encoding/gob"
	"time"

	"flexlog/internal/types"
)

// ---- Client ↔ replica (Alg. 1 client/replica rounds) ----

// AppendReq is the client's round-1 broadcast to all replicas of a shard.
// Tenant identifies the issuing tenant for QoS accounting and admission
// control (0 = default tenant, never throttled).
type AppendReq struct {
	Color   types.ColorID
	Token   types.Token
	Records [][]byte
	Client  types.NodeID
	Tenant  types.TenantID
}

// AppendAck is a replica's round-4 acknowledgement carrying the SN of the
// last record of the batch.
type AppendAck struct {
	Token types.Token
	SN    types.SN
}

// AppendBatchReq is the framing used by the client-side batching layer:
// several callers' appends to the same color, coalesced into one ordering
// request and one data RPC. Each inner set is one caller's records; the
// whole batch is persisted and ordered as a unit, so the sets occupy one
// consecutive SN range in enqueue order and the client can demultiplex
// per-set SNs from the last SN alone. Replicas acknowledge with a plain
// AppendAck (the ack needs only the token and the batch's last SN).
type AppendBatchReq struct {
	Color  types.ColorID
	Token  types.Token
	Sets   [][][]byte
	Client types.NodeID
	Tenant types.TenantID
}

// NRecords returns the total record count across all sets.
func (m AppendBatchReq) NRecords() int {
	n := 0
	for _, set := range m.Sets {
		n += len(set)
	}
	return n
}

// ReadReq asks one replica of a shard for the record at (Color, SN).
type ReadReq struct {
	ID     uint64 // client-chosen correlation id
	Color  types.ColorID
	SN     types.SN
	Client types.NodeID
	Tenant types.TenantID
}

// ReadStatus qualifies a ⊥ read response (Found=false). The values are
// ordered by precedence: when a client merges responses from several
// replicas, the highest status wins.
const (
	// ReadStatusNone: plain ⊥ — hole, unknown SN, or hold timeout.
	ReadStatusNone uint8 = iota
	// ReadStatusTrimmed: the SN was garbage collected after a trim.
	ReadStatusTrimmed
	// ReadStatusCkptTruncated: the SN lies at or below the replica's
	// checkpoint recovery floor — gone for good, clients should not retry.
	ReadStatusCkptTruncated
	// ReadStatusEvicted: the record was evicted to the cold tier and the
	// tier could not serve it (transient, e.g. mid-recovery); retryable.
	ReadStatusEvicted
)

// ReadResp carries the record payload, or Found=false for ⊥ (§6.1),
// qualified by Status.
type ReadResp struct {
	ID     uint64
	SN     types.SN
	Data   []byte
	Found  bool
	Status uint8 // ReadStatus*, meaningful when !Found
}

// SubscribeReq asks one replica of a shard for its local view of a color's
// log with SN > From.
type SubscribeReq struct {
	ID     uint64
	Color  types.ColorID
	From   types.SN
	Client types.NodeID
}

// WireRecord is a record as shipped in subscribe responses and sync fetches.
type WireRecord struct {
	Token types.Token
	SN    types.SN
	Data  []byte
}

// SubscribeResp returns a replica's local (committed) view, sorted by SN.
type SubscribeResp struct {
	ID      uint64
	Color   types.ColorID
	Records []WireRecord
}

// TrimReq asks every replica of every shard of the color to delete records
// with SN <= SN.
type TrimReq struct {
	ID     uint64
	Color  types.ColorID
	SN     types.SN
	Client types.NodeID
}

// TrimPeerAck is the replica-to-replica acknowledgement round of the trim
// protocol (§6.2: "all replicas acknowledge the operation to all replicas").
type TrimPeerAck struct {
	ID    uint64
	Color types.ColorID
	SN    types.SN
	From  types.NodeID
}

// TrimAck is the final [head, tail] answer to the caller.
type TrimAck struct {
	ID    uint64
	Color types.ColorID
	Head  types.SN
	Tail  types.SN
}

// ---- QoS rejection (overload backpressure) ----

// Reject reason codes. The distinction matters to the client: a throttled
// request failed admission control (the tenant exceeded its token-bucket
// rate) and should back off by at least the retry-after hint; an overloaded
// request was shed from a full service-lane queue and should retry with
// normal jittered backoff against (possibly) another replica.
const (
	// RejectOverloaded: the replica's bounded lane queue was full and the
	// request was shed rather than queued.
	RejectOverloaded uint8 = iota
	// RejectThrottled: per-tenant admission control rejected the request.
	RejectThrottled
	// RejectReconfiguring: the replica is being drained (or its shard
	// merged away) by the control plane and no longer accepts appends.
	// Retryable: the client re-resolves the topology and retries against
	// the post-reconfiguration membership.
	RejectReconfiguring
)

// Reject is a replica's typed backpressure response: instead of silently
// growing a queue (or silently dropping), an overloaded or throttling
// replica answers the request with a Reject the client maps onto
// ErrOverloaded / ErrThrottled. Token correlates appends (and carries the
// batch token for AppendBatchReq); ID correlates reads. Exactly one of the
// two is meaningful, disambiguated by IsRead.
type Reject struct {
	Token            types.Token
	ID               uint64
	Color            types.ColorID
	Tenant           types.TenantID
	Code             uint8 // Reject*
	IsRead           bool
	RetryAfterMicros uint64 // server hint; 0 = no hint
}

// RetryAfter returns the server's backoff hint as a duration.
func (m Reject) RetryAfter() time.Duration {
	return time.Duration(m.RetryAfterMicros) * time.Microsecond
}

// ---- Multi-color append (Alg. 2) ----

// MultiAppendEnd is the client's "end" marker broadcast to the broker
// shard's replicas after all staged appends acked.
type MultiAppendEnd struct {
	ID     uint64
	FID    uint32 // whose staged records to replay
	Tokens []types.Token
	Client types.NodeID
}

// MultiAppendAck signals that a broker replica finished replaying the
// staged records into their target colors.
type MultiAppendAck struct {
	ID uint64
}

// ---- Replica ↔ ordering layer (Alg. 1 sequencer rounds) ----

// OrderReq asks the ordering layer for NRecords sequence numbers in Color.
// Replicas carries the shard membership so the leaf sequencer can broadcast
// the response to every replica (Alg. 1 line 35).
type OrderReq struct {
	Color    types.ColorID
	Token    types.Token
	NRecords uint32
	Shard    types.ShardID
	Replicas []types.NodeID
}

// OrderResp delivers the SN of the last record of the batch to all replicas
// of the shard.
type OrderResp struct {
	Token    types.Token
	LastSN   types.SN
	NRecords uint32
	Color    types.ColorID
}

// OrderItem is one coalesced order request (one append batch's token).
type OrderItem struct {
	Token    types.Token
	NRecords uint32
}

// OrderReqBatch carries the order requests a replica accumulated for one
// color within its coalescing window — the replica→leaf edge batches the
// same way the sequencer tree already aggregates upward (§5.2). All items
// share the color and the shard membership.
type OrderReqBatch struct {
	Color    types.ColorID
	Shard    types.ShardID
	Replicas []types.NodeID
	Items    []OrderItem
}

// OrderRespItem is one assignment within an OrderRespBatch.
type OrderRespItem struct {
	Token    types.Token
	LastSN   types.SN
	NRecords uint32
}

// OrderRespBatch delivers the assignments for a whole OrderReqBatch (or
// for the direct members of one shard in an aggregated response) in a
// single message.
type OrderRespBatch struct {
	Color types.ColorID
	Items []OrderRespItem
}

// ---- Sequencer tree internals (§5.2 ordering layer) ----

// AggOrderReq is a merged order request forwarded up the sequencer tree:
// Total sequence numbers are requested for Color on behalf of the child
// sequencer From (§5.2: sub-region sequencers "serve as aggregators").
type AggOrderReq struct {
	Color   types.ColorID
	BatchID uint64
	Total   uint32
	From    types.NodeID
}

// AggOrderResp returns the last SN of the range assigned to the batch.
type AggOrderResp struct {
	BatchID uint64
	LastSN  types.SN
	Color   types.ColorID
}

// AggOrderItem is one color's aggregated round inside an AggOrderReqBatch.
type AggOrderItem struct {
	Color   types.ColorID
	BatchID uint64
	Total   uint32
}

// AggOrderReqBatch combines the upward rounds of several colors flushed in
// the same window by child sequencer From into one frame — the pipelined
// flusher's fan-in (DESIGN.md §14). Semantically identical to sending each
// item as its own AggOrderReq.
type AggOrderReqBatch struct {
	From  types.NodeID
	Items []AggOrderItem
}

// AggOrderRespItem is one batch's answer inside an AggOrderRespBatch.
type AggOrderRespItem struct {
	Color   types.ColorID
	BatchID uint64
	LastSN  types.SN
}

// AggOrderRespBatch returns the answers to several aggregated rounds in
// one frame, sent by sequencer From. Semantically identical to one
// AggOrderResp per item.
type AggOrderRespBatch struct {
	From  types.NodeID
	Items []AggOrderRespItem
}

// ---- Sequencer fault tolerance (§5.2 sequencer replication) ----

// SeqHeartbeat is sent by the active sequencer to its backups.
type SeqHeartbeat struct {
	Epoch types.Epoch
	From  types.NodeID
}

// SeqHeartbeatAck confirms a heartbeat; the leader needs a majority to
// stay active (split-brain avoidance).
type SeqHeartbeatAck struct {
	Epoch types.Epoch
	From  types.NodeID
}

// EpochClaim is a backup's claim to become leader of epoch Epoch.
// Backups grant the claim to the highest-id claimant they have seen.
type EpochClaim struct {
	Epoch types.Epoch
	From  types.NodeID
}

// EpochGrant accepts a claim.
type EpochGrant struct {
	Epoch types.Epoch
	From  types.NodeID
}

// EpochReject refuses a claim, telling the claimant the higher epoch or
// higher-id claimant it lost to. LeaderAlive marks a stickiness
// rejection: the rejector has recent evidence the current leader is
// alive (its own heartbeats, or acks from a live majority), so the claim
// looks like lost heartbeats rather than a dead leader. The claimant
// must abandon WITHOUT adopting Epoch — adopting would make it ignore
// the healthy leader's (lower-epoch) heartbeats and claim forever.
type EpochReject struct {
	Epoch       types.Epoch  // the rejecting node's current epoch
	Claimant    types.NodeID // the claimant the rejector prefers
	LeaderAlive bool         // rejector recently heard a live leader
}

// SeqInit is the new sequencer's initialization request to all replicas of
// its region: replicas must acknowledge (and sync, §6.3) before the new
// epoch starts serving.
type SeqInit struct {
	Epoch types.Epoch
	From  types.NodeID
}

// SeqInitAck acknowledges SeqInit.
type SeqInitAck struct {
	Epoch types.Epoch
	From  types.NodeID
}

// ---- Replica heartbeating & sync-phase (§6.3) ----

// ReplicaHeartbeat is exchanged between a replica and its leaf sequencer
// (and peers) for failure detection.
type ReplicaHeartbeat struct {
	From types.NodeID
}

// SyncRequest starts a sync-phase: the recovering replica asks all shard
// peers to pause and report their state.
type SyncRequest struct {
	ID   uint64
	From types.NodeID
}

// SyncState is a peer's reply: its known sequencer epoch and, per color,
// its maximum committed SN and trim frontier.
type SyncState struct {
	ID      uint64
	Epoch   types.Epoch
	MaxSNs  map[types.ColorID]types.SN
	Trimmed map[types.ColorID]types.SN
	From    types.NodeID
}

// SyncFetch asks the most up-to-date replica for records the requester is
// missing (per color, everything above Have).
type SyncFetch struct {
	ID   uint64
	Have map[types.ColorID]types.SN
	From types.NodeID
}

// SyncEntries returns the missing committed records.
type SyncEntries struct {
	ID      uint64
	Records map[types.ColorID][]WireRecord
}

// SyncCatchup is the coordinator's round-2 broadcast naming the most
// up-to-date replica; outdated peers fetch missing entries from it (§6.3:
// "it broadcasts the most up-to-date replica id").
type SyncCatchup struct {
	ID       uint64
	UpToDate types.NodeID
	Max      map[types.ColorID]types.SN
	// Trimmed carries the shard's maximum trim frontier per color: a
	// recovering replica applies it before serving so records garbage-
	// collected during its downtime are never resurrected (§6.2 + §6.3).
	Trimmed map[types.ColorID]types.SN
	Epoch   types.Epoch
	From    types.NodeID
}

// SyncDone is the all-to-all barrier message ending the sync-phase: a
// replica may resume only after receiving SyncDone from every peer (§6.3).
type SyncDone struct {
	ID   uint64
	From types.NodeID
}

// ---- Reconfiguration control plane (DESIGN.md §15) ----

// JoinFetch is a catch-up request from a replica outside (or being merged
// out of) a shard's serving set to a donor replica: send committed records
// above Have, per color. Unlike the sync-phase SyncFetch it never pauses
// the donor — catch-up runs in the background under live traffic. Budget
// bounds the records per color in one reply so a far-behind joiner fetches
// in rounds instead of one giant frame.
type JoinFetch struct {
	ID     uint64
	Have   map[types.ColorID]types.SN
	Budget uint32 // max records per color per reply; 0 = unlimited
	From   types.NodeID
}

// JoinEntries is the donor's reply to a JoinFetch: the missing committed
// records plus the donor's own committed frontier, from which the joiner
// computes its catch-up lag (the promotion gate). More marks a reply
// truncated by the fetch budget — the joiner immediately fetches again.
type JoinEntries struct {
	ID       uint64
	Records  map[types.ColorID][]WireRecord
	Frontier map[types.ColorID]types.SN // donor's committed frontier per color
	More     bool                       // reply truncated by Budget; fetch again
	From     types.NodeID
}

// TopoRegion is one region of a TopoUpdate snapshot.
type TopoRegion struct {
	Color   types.ColorID
	Parent  types.ColorID
	Leader  types.NodeID
	Backups []types.NodeID
	Members []types.NodeID
	IsRoot  bool
}

// TopoShard is one shard of a TopoUpdate snapshot.
type TopoShard struct {
	ID       types.ShardID
	Leaf     types.ColorID
	Replicas []types.NodeID
}

// TopoUpdate broadcasts a full, versioned topology snapshot after a
// reconfiguration. Receivers apply it through the epoch fence: a snapshot
// whose Version is not strictly newer than the local layout is a stale or
// duplicate broadcast and is dropped (topology.Apply).
type TopoUpdate struct {
	Version uint64
	Regions []TopoRegion
	Shards  []TopoShard
	From    types.NodeID
}

// Control-plane operation codes carried by CtrlReconfig.
const (
	// CtrlOpJoin starts background catch-up on a spare replica: fetch
	// committed records from Donor until the lag reaches zero.
	CtrlOpJoin uint8 = iota + 1
	// CtrlOpPromote promotes a caught-up replica: it runs the sync-phase
	// against its (new) shard peers and enters the serving set.
	CtrlOpPromote
	// CtrlOpDrain drains a replica out of the serving set: new appends get
	// a typed Reject(reconfiguring) while in-flight commits finish.
	CtrlOpDrain
	// CtrlOpStatus queries a node's reconfiguration state (mode, catch-up
	// lag, topology version) without changing anything.
	CtrlOpStatus
)

// CtrlReconfig is a control-plane command to one node: start a catch-up
// (Join, naming the Donor), promote, drain, or report status. Seq
// correlates the CtrlAck.
type CtrlReconfig struct {
	Seq   uint64
	Op    uint8 // CtrlOp*
	Donor types.NodeID
	From  types.NodeID
}

// CtrlAck answers a CtrlReconfig with the node's reconfiguration state:
// its replica mode, remaining catch-up lag in records (join in progress),
// and the topology fencing version it has applied.
type CtrlAck struct {
	Seq     uint64
	Op      uint8
	OK      bool
	Mode    uint8
	Lag     uint64
	Version uint64
	From    types.NodeID
}

// RegisterGob registers every message type for the TCP transport. It is
// safe to call multiple times (gob panics only on conflicting
// registrations, which cannot happen here).
func RegisterGob() {
	gob.Register(AppendReq{})
	gob.Register(AppendBatchReq{})
	gob.Register(AppendAck{})
	gob.Register(ReadReq{})
	gob.Register(ReadResp{})
	gob.Register(SubscribeReq{})
	gob.Register(SubscribeResp{})
	gob.Register(TrimReq{})
	gob.Register(TrimPeerAck{})
	gob.Register(TrimAck{})
	gob.Register(MultiAppendEnd{})
	gob.Register(MultiAppendAck{})
	gob.Register(OrderReq{})
	gob.Register(OrderResp{})
	gob.Register(OrderReqBatch{})
	gob.Register(OrderRespBatch{})
	gob.Register(AggOrderReq{})
	gob.Register(AggOrderResp{})
	gob.Register(AggOrderReqBatch{})
	gob.Register(AggOrderRespBatch{})
	gob.Register(SeqHeartbeat{})
	gob.Register(SeqHeartbeatAck{})
	gob.Register(EpochClaim{})
	gob.Register(EpochGrant{})
	gob.Register(EpochReject{})
	gob.Register(SeqInit{})
	gob.Register(SeqInitAck{})
	gob.Register(ReplicaHeartbeat{})
	gob.Register(SyncRequest{})
	gob.Register(SyncState{})
	gob.Register(SyncCatchup{})
	gob.Register(SyncFetch{})
	gob.Register(SyncEntries{})
	gob.Register(SyncDone{})
	gob.Register(Reject{})
	gob.Register(JoinFetch{})
	gob.Register(JoinEntries{})
	gob.Register(TopoUpdate{})
	gob.Register(CtrlReconfig{})
	gob.Register(CtrlAck{})
}
