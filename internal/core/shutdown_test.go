package core

import (
	"runtime"
	"testing"
	"time"

	"flexlog/internal/types"
)

// TestStopReleasesGoroutines pins cluster teardown: Stop must release the
// transport delivery loops, the lane worker pools, and the stores'
// background committers. Before this was enforced, every stopped cluster
// stranded ~600 goroutines, and long-lived processes (benchmark suites,
// chaos soaks) degraded progressively as leaked workers and their heap
// piled up.
func TestStopReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	cl, err := TreeCluster(TestClusterConfig(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cl.NewClient()
	if err != nil {
		cl.Stop()
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if _, err := c.Append([][]byte{[]byte("x")}, types.MasterColor); err != nil {
			cl.Stop()
			t.Fatal(err)
		}
	}
	running := runtime.NumGoroutine()
	if running <= before {
		t.Fatalf("cluster spawned no goroutines? before=%d running=%d", before, running)
	}
	cl.Stop()

	// Endpoint close is asynchronous (delivery loops notice and drain
	// their lanes); poll briefly instead of asserting an instant drop.
	deadline := time.Now().Add(10 * time.Second)
	for {
		now := runtime.NumGoroutine()
		// A handful of slack tolerates runtime/test-framework goroutines
		// that come and go; the leak this guards against is O(cluster
		// size) — hundreds per teardown.
		if now <= before+5 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after Stop: before=%d running=%d after=%d", before, running, now)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
