package core

import (
	"sync/atomic"
	"time"

	"flexlog/internal/topology"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// BatchConfig tunes the client-side append batching & pipelining layer.
// The zero value disables batching (every Append is its own round trip,
// the seed behaviour); enable it with WithBatching(DefaultBatchConfig())
// or a custom configuration. Zero fields of an otherwise non-zero config
// are filled from DefaultBatchConfig.
type BatchConfig struct {
	// MaxBatchRecords flushes a batch once it holds this many records.
	MaxBatchRecords int
	// MaxBatchBytes flushes a batch once its payload reaches this size.
	MaxBatchBytes int
	// MaxBatchDelay is the linger: how long the first record of a batch
	// waits for company before the batch is flushed anyway. It bounds the
	// latency cost of batching for idle clients.
	MaxBatchDelay time.Duration
	// MaxInFlight is the number of unacknowledged batches pipelined per
	// (color, shard) before the batcher applies backpressure.
	MaxInFlight int
}

// DefaultBatchConfig returns the tuning used by the benchmark harness:
// device-friendly batches with a 100 µs linger, four batches in flight.
func DefaultBatchConfig() BatchConfig {
	return BatchConfig{
		MaxBatchRecords: 64,
		MaxBatchBytes:   256 << 10,
		MaxBatchDelay:   100 * time.Microsecond,
		MaxInFlight:     4,
	}
}

// enabled reports whether any batching field is set.
func (b BatchConfig) enabled() bool { return b != (BatchConfig{}) }

// withDefaults fills zero fields of an enabled config.
func (b BatchConfig) withDefaults() BatchConfig {
	def := DefaultBatchConfig()
	if b.MaxBatchRecords <= 0 {
		b.MaxBatchRecords = def.MaxBatchRecords
	}
	if b.MaxBatchBytes <= 0 {
		b.MaxBatchBytes = def.MaxBatchBytes
	}
	if b.MaxBatchDelay < 0 {
		b.MaxBatchDelay = 0
	}
	if b.MaxInFlight <= 0 {
		b.MaxInFlight = def.MaxInFlight
	}
	return b
}

// Option customizes a client handle at construction time. Options are the
// v2 replacement for hand-built ClientConfig values; unspecified settings
// keep the documented defaults (see the package godoc).
type Option func(*ClientConfig)

// WithFID sets the client's distinct function id (Alg. 1: token =
// (FID<<32)+counter). Defaults to a value derived from the node id.
func WithFID(fid uint32) Option {
	return func(c *ClientConfig) { c.FID = fid }
}

// WithNodeID sets the client's transport node id. Connect auto-allocates
// one when unset; cluster-created clients are always assigned one.
func WithNodeID(id types.NodeID) Option {
	return func(c *ClientConfig) { c.ID = id }
}

// WithRetryInterval sets how often an unanswered (idempotent) request is
// re-broadcast. Default 50ms.
func WithRetryInterval(d time.Duration) Option {
	return func(c *ClientConfig) { c.RetryInterval = d }
}

// WithTimeout bounds every blocking operation. Default 10s.
func WithTimeout(d time.Duration) Option {
	return func(c *ClientConfig) { c.Timeout = d }
}

// WithSeed seeds shard selection; 0 derives one from the FID.
func WithSeed(seed int64) Option {
	return func(c *ClientConfig) { c.Seed = seed }
}

// WithBatching enables the client-side append batching & pipelining layer
// with the given tuning (zero fields are filled from DefaultBatchConfig).
func WithBatching(b BatchConfig) Option {
	return func(c *ClientConfig) { c.Batch = b }
}

// WithoutBatching disables append batching (the default), overriding a
// cluster-wide ClientBatch setting.
func WithoutBatching() Option {
	return func(c *ClientConfig) { c.Batch = BatchConfig{} }
}

// WithTenant sets the tenant identity carried in this client's append and
// read requests. Replicas map it onto the tenant's QoS envelope — fair-
// share weight, admission rate, per-tenant accounting. The default is
// tenant 0, which is never throttled.
func WithTenant(t types.TenantID) Option {
	return func(c *ClientConfig) { c.Tenant = t }
}

// WithHedging enables hedged reads: a read round that outlives the
// straggler threshold (cfg.Delay, or the observed read P99 when 0) is
// cloned to a backup replica per shard and the first response wins.
// cfg.BudgetPercent caps hedged rounds (≤0 means 10%).
func WithHedging(cfg HedgeConfig) Option {
	return func(c *ClientConfig) {
		if cfg.BudgetPercent <= 0 {
			cfg.BudgetPercent = 10
		}
		c.Hedge = cfg
	}
}

// autoClientID allocates node ids for Connect-created clients. The band
// is far above the Cluster allocator's (clientIDBase) so the two never
// collide on one network.
var autoClientID atomic.Uint64

const autoClientIDBase types.NodeID = 1_000_000

// Connect attaches a v2 client to an in-process network using functional
// options:
//
//	c, err := core.Connect(cl.Topology(), cl.Network(),
//	    core.WithBatching(core.DefaultBatchConfig()),
//	    core.WithTimeout(2*time.Second))
//
// Node and function ids are auto-allocated when not given explicitly via
// WithNodeID/WithFID. Cluster.NewClient accepts the same options and is
// the usual entry point for in-process deployments.
func Connect(topo *topology.Topology, net *transport.Network, opts ...Option) (*Client, error) {
	cfg := ClientConfig{Topo: topo}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.ID == 0 {
		cfg.ID = autoClientIDBase + types.NodeID(autoClientID.Add(1))
	}
	if cfg.FID == 0 {
		cfg.FID = uint32(cfg.ID)
	}
	return NewClient(cfg, net)
}
