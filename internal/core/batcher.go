package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"flexlog/internal/metrics"
	"flexlog/internal/proto"
	"flexlog/internal/topology"
	"flexlog/internal/types"
)

// This file implements the client-side append batching & pipelining layer:
// a per-(color, shard) batcher goroutine coalesces concurrent Append calls
// into a single ordering request + data RPC (proto.AppendBatchReq), bounded
// by MaxBatchRecords / MaxBatchBytes and a MaxBatchDelay linger timer, with
// MaxInFlight batches pipelined per shard. Because a batch is persisted and
// ordered as one unit, its records occupy one consecutive SN range in
// enqueue order, so per-caller completion is demultiplexed from the last
// SN alone — no per-record acks on the wire.

// AppendFuture is the handle returned by AsyncAppend: the eventual SN of
// the caller's last record, or the per-record error if the batch failed.
type AppendFuture struct {
	color types.ColorID
	done  chan struct{}
	sn    types.SN
	err   error
}

func newAppendFuture(color types.ColorID) *AppendFuture {
	return &AppendFuture{color: color, done: make(chan struct{})}
}

// complete resolves the future. Called exactly once, by the batcher (or by
// the constructor for immediate validation failures).
func (f *AppendFuture) complete(sn types.SN, err error) {
	f.sn, f.err = sn, err
	close(f.done)
}

// failedFuture returns an already-resolved future (validation errors).
func failedFuture(color types.ColorID, err error) *AppendFuture {
	f := newAppendFuture(color)
	f.complete(types.InvalidSN, opError("append", color, types.InvalidSN, err))
	return f
}

// Done returns a channel closed when the append has completed (either way).
func (f *AppendFuture) Done() <-chan struct{} { return f.done }

// Wait blocks for completion or context cancellation and returns the SN of
// the caller's last record. Cancellation abandons the wait, not the
// append: the records may still commit.
func (f *AppendFuture) Wait(ctx context.Context) (types.SN, error) {
	select {
	case <-f.done:
		return f.sn, f.err
	case <-ctx.Done():
		return types.InvalidSN, opError("append", f.color, types.InvalidSN, ctx.Err())
	}
}

// ClientMetrics exposes the batching layer's per-client instrumentation.
type ClientMetrics struct {
	// BatchRecords/BatchBytes are value histograms of flushed batch sizes.
	BatchRecords *metrics.Histogram
	BatchBytes   *metrics.Histogram
	// QueueDelay is the time the oldest record of each batch spent queued
	// before its flush (the realized linger).
	QueueDelay *metrics.Histogram
	// Batches and BatchedAppends count flushed batches and the records
	// they carried.
	Batches        *metrics.Counter
	BatchedAppends *metrics.Counter
}

func newClientMetrics() *ClientMetrics {
	return &ClientMetrics{
		BatchRecords:   metrics.NewHistogram(),
		BatchBytes:     metrics.NewHistogram(),
		QueueDelay:     metrics.NewHistogram(),
		Batches:        metrics.NewCounter(),
		BatchedAppends: metrics.NewCounter(),
	}
}

// Metrics returns the client's batching instrumentation. The histograms
// are empty when batching is disabled.
func (c *Client) Metrics() *ClientMetrics { return c.met }

// pendingAppend is one caller's enqueued record set.
type pendingAppend struct {
	records  [][]byte
	bytes    int
	fut      *AppendFuture
	enqueued time.Time
}

// batcherKey routes appends to their per-(color, shard) batcher.
type batcherKey struct {
	color types.ColorID
	shard types.ShardID
}

// shardBatcher coalesces appends bound for one (color, shard) pair.
type shardBatcher struct {
	c     *Client
	color types.ColorID
	shard topology.ShardInfo
	cfg   BatchConfig

	mu          sync.Mutex
	queue       []*pendingAppend
	queuedRecs  int
	queuedBytes int

	wake  chan struct{} // signalled (non-blocking) on enqueue
	slots chan struct{} // pipelining: MaxInFlight unacknowledged batches
}

func newShardBatcher(c *Client, color types.ColorID, shard topology.ShardInfo, cfg BatchConfig) *shardBatcher {
	return &shardBatcher{
		c:     c,
		color: color,
		shard: shard,
		cfg:   cfg,
		wake:  make(chan struct{}, 1),
		slots: make(chan struct{}, cfg.MaxInFlight),
	}
}

// enqueueAppend hands a record set to the batcher for its color and a
// randomly chosen shard, creating the batcher on first use.
func (c *Client) enqueueAppend(records [][]byte, color types.ColorID) (*AppendFuture, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	shard, err := c.topo.RandomShard(color, c.rng)
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	key := batcherKey{color, shard.ID}
	b := c.batchers[key]
	if b == nil {
		b = newShardBatcher(c, color, shard, c.cfg.Batch)
		c.batchers[key] = b
		go b.run()
	}
	c.mu.Unlock()
	return b.enqueue(records), nil
}

func (b *shardBatcher) enqueue(records [][]byte) *AppendFuture {
	n := 0
	for _, r := range records {
		n += len(r)
	}
	fut := newAppendFuture(b.color)
	b.mu.Lock()
	b.queue = append(b.queue, &pendingAppend{records: records, bytes: n, fut: fut, enqueued: time.Now()})
	b.queuedRecs += len(records)
	b.queuedBytes += n
	b.mu.Unlock()
	select {
	case b.wake <- struct{}{}:
	default:
	}
	return fut
}

// run is the batcher goroutine: wait for work, linger, cut a batch,
// acquire a pipeline slot, flush. The first broadcast happens inline so
// batches reach the replicas in flush order (FIFO links then keep the
// sequencer's SN ranges in that order on the happy path).
func (b *shardBatcher) run() {
	for {
		if !b.waitForWork() {
			return
		}
		if !b.linger() {
			return
		}
		items, recs, bytes := b.cut()
		if len(items) == 0 {
			continue
		}
		select {
		case b.slots <- struct{}{}:
		case <-b.c.closedCh:
			b.fail(items, ErrClosed)
			b.drain()
			return
		}
		b.flush(items, recs, bytes)
	}
}

// waitForWork blocks until the queue is non-empty; false means shutdown.
func (b *shardBatcher) waitForWork() bool {
	for {
		b.mu.Lock()
		n := len(b.queue)
		b.mu.Unlock()
		if n > 0 {
			return true
		}
		select {
		case <-b.wake:
		case <-b.c.closedCh:
			b.drain()
			return false
		}
	}
}

// full reports whether the queued work already fills a batch.
func (b *shardBatcher) fullLocked() bool {
	return b.queuedRecs >= b.cfg.MaxBatchRecords || b.queuedBytes >= b.cfg.MaxBatchBytes
}

// lingerTimerSlack is how late OS timers may fire (coarse-HZ hosts: up to
// ~2 ms). The linger blocks on a timer only while more than this remains
// and polls the fine-grained tail, so sub-millisecond lingers — the
// batching sweet spot — are honored accurately (same tradeoff as
// simclock.Spin).
const lingerTimerSlack = 2 * time.Millisecond

// linger waits until the batch fills or the oldest record's linger
// deadline passes; false means shutdown.
func (b *shardBatcher) linger() bool {
	b.mu.Lock()
	if len(b.queue) == 0 {
		b.mu.Unlock()
		return true
	}
	full := b.fullLocked()
	deadline := b.queue[0].enqueued.Add(b.cfg.MaxBatchDelay)
	b.mu.Unlock()
	if full || b.cfg.MaxBatchDelay <= 0 {
		return true
	}
	for !full {
		rem := time.Until(deadline)
		if rem <= 0 {
			return true
		}
		if rem > lingerTimerSlack {
			timer := time.NewTimer(rem - lingerTimerSlack)
			select {
			case <-timer.C:
			case <-b.wake:
			case <-b.c.closedCh:
				timer.Stop()
				b.drain()
				return false
			}
			timer.Stop()
		} else {
			// Fine-grained tail: poll so the flush lands on the deadline
			// rather than a timer tick.
			select {
			case <-b.wake:
			case <-b.c.closedCh:
				b.drain()
				return false
			default:
				runtime.Gosched()
				continue // no wake consumed — fullness unchanged
			}
		}
		b.mu.Lock()
		full = b.fullLocked()
		b.mu.Unlock()
	}
	return true
}

// cut takes whole record sets off the queue head until the next set would
// overflow the batch bounds. A single oversized set forms its own batch —
// a caller's records are never split across ordering requests (they must
// receive one consecutive SN range).
func (b *shardBatcher) cut() (items []*pendingAppend, recs, bytes int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	i := 0
	for ; i < len(b.queue); i++ {
		it := b.queue[i]
		if i > 0 && (recs+len(it.records) > b.cfg.MaxBatchRecords || bytes+it.bytes > b.cfg.MaxBatchBytes) {
			break
		}
		recs += len(it.records)
		bytes += it.bytes
	}
	items = b.queue[:i:i]
	b.queue = b.queue[i:]
	b.queuedRecs -= recs
	b.queuedBytes -= bytes
	return items, recs, bytes
}

// flush sends one coalesced batch: register the ack waiter, broadcast the
// AppendBatchReq inline, then hand retries and completion to a goroutine
// so the next batch can pipeline behind this one.
func (b *shardBatcher) flush(items []*pendingAppend, recs, bytes int) {
	c := b.c
	token := c.nextToken()
	w := &appendWait{
		needed: make(map[types.NodeID]bool, len(b.shard.Replicas)),
		acked:  make(map[types.NodeID]bool, len(b.shard.Replicas)),
		done:   make(chan struct{}),
	}
	for _, id := range b.shard.Replicas {
		w.needed[id] = true
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-b.slots
		b.fail(items, ErrClosed)
		return
	}
	c.appends[token] = w
	c.mu.Unlock()

	c.met.BatchRecords.RecordValue(uint64(recs))
	c.met.BatchBytes.RecordValue(uint64(bytes))
	c.met.QueueDelay.Record(time.Since(items[0].enqueued))
	c.met.Batches.Add(1)

	sets := make([][][]byte, len(items))
	for i, it := range items {
		sets[i] = it.records
	}
	req := proto.AppendBatchReq{Color: b.color, Token: token, Sets: sets, Client: c.cfg.ID, Tenant: c.cfg.Tenant}
	c.ep.Broadcast(b.shard.Replicas, req)
	go b.await(token, w, req, items, recs)
}

// await drives one in-flight batch to completion: retry the broadcast
// until every replica acked, the timeout expired, or the client closed.
func (b *shardBatcher) await(token types.Token, w *appendWait, req proto.AppendBatchReq, items []*pendingAppend, recs int) {
	c := b.c
	defer func() {
		c.mu.Lock()
		delete(c.appends, token)
		c.mu.Unlock()
		<-b.slots
	}()
	deadline := time.Now().Add(c.cfg.Timeout)
	bo := c.newBackoff()
	for {
		select {
		case <-w.done:
			b.complete(items, recs, w.sn)
			return
		case <-time.After(bo.nextAfter(c.takeAppendHint(w))):
			if time.Now().After(deadline) {
				c.mu.Lock()
				rej := w.rej
				c.mu.Unlock()
				if rej != nil {
					b.fail(items, fmt.Errorf("%w: batched append %v to %v", rej, token, b.color))
					return
				}
				b.fail(items, fmt.Errorf("%w: batched append %v to %v", ErrTimeout, token, b.color))
				return
			}
			// Epoch fencing, as on the unbatched path: rebuild the ack
			// barrier from the shard's current membership minus prior
			// responders before re-broadcasting. A removed shard fails the
			// batch with the typed retryable rejection.
			cur, err := c.topo.Shard(b.shard.ID)
			if err != nil {
				b.fail(items, fmt.Errorf("%w: shard %v removed during batched append %v", ErrReconfiguring, b.shard.ID, token))
				return
			}
			c.mu.Lock()
			if !w.closed {
				clear(w.needed)
				for _, id := range cur.Replicas {
					if !w.acked[id] {
						w.needed[id] = true
					}
				}
				if len(w.needed) == 0 {
					w.closed = true
					close(w.done)
				}
			}
			c.mu.Unlock()
			select {
			case <-w.done:
				b.complete(items, recs, w.sn)
				return
			default:
			}
			c.ep.Broadcast(cur.Replicas, req)
		case <-c.closedCh:
			b.fail(items, ErrClosed)
			return
		}
	}
}

// complete demultiplexes the batch's last SN into per-caller SNs: the sets
// occupy [last-recs+1, last] in enqueue order, so caller i's last record
// sits at last - (records after set i).
func (b *shardBatcher) complete(items []*pendingAppend, recs int, last types.SN) {
	if !last.Valid() {
		b.fail(items, fmt.Errorf("flexlog: batch committed without an SN"))
		return
	}
	b.c.rememberPlacement(b.color, last, recs, b.shard.ID)
	b.c.met.BatchedAppends.Add(uint64(recs))
	cum := 0
	for _, it := range items {
		cum += len(it.records)
		it.fut.complete(last-types.SN(recs-cum), nil)
	}
}

// fail delivers err to every caller of the batch, individually wrapped.
func (b *shardBatcher) fail(items []*pendingAppend, err error) {
	for _, it := range items {
		it.fut.complete(types.InvalidSN, opError("append", b.color, types.InvalidSN, err))
	}
}

// drain fails everything still queued (shutdown path).
func (b *shardBatcher) drain() {
	b.mu.Lock()
	items := b.queue
	b.queue = nil
	b.queuedRecs, b.queuedBytes = 0, 0
	b.mu.Unlock()
	b.fail(items, ErrClosed)
}
