// Package core is FlexLog's public API: the client handle implementing the
// operations of Table 2 (Append, Read, Subscribe, Trim, AddColor) plus the
// atomic multi-color append of §6.4, and the Cluster harness that deploys a
// complete FlexLog — sequencer tree, shards, replicas — either in-process
// (with the calibrated latency models) or over TCP.
//
// # The v2 client API
//
// The hot-path operations have context-first variants — AppendCtx, ReadCtx,
// TrimCtx, MultiAppendCtx — that honor cancellation and deadlines; the
// legacy Table-2 methods are thin wrappers over them with a background
// context. AsyncAppend returns an AppendFuture for fire-and-collect
// pipelining. Errors are typed: every operation returns a *OpError wrapping
// the sentinel causes (ErrNotFound, ErrTimeout, ErrClosed, context errors),
// so callers use errors.Is / errors.As.
//
// Clients are built with functional options (see Connect and
// Cluster.NewClient). The defaults are: RetryInterval 50ms, Timeout 10s,
// shard-selection seed derived from the FID, and batching disabled. With
// WithBatching, concurrent appends to one color are coalesced per shard
// into single ordering requests + data RPCs, bounded by
// BatchConfig.{MaxBatchRecords,MaxBatchBytes,MaxBatchDelay}, with
// MaxInFlight batches pipelined per shard (see batcher.go).
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"flexlog/internal/obs"
	"flexlog/internal/proto"
	"flexlog/internal/replica"
	"flexlog/internal/topology"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

var (
	// ErrNotFound is the ⊥ result: no record with that SN exists (§6.1).
	ErrNotFound = errors.New("flexlog: record not found")
	// ErrTimeout is returned when an operation exceeds its deadline.
	ErrTimeout = errors.New("flexlog: operation timed out")
	// ErrClosed is returned after the client is closed.
	ErrClosed = errors.New("flexlog: client closed")
	// ErrEvicted qualifies a read failure: every answering replica had the
	// record evicted to its cold storage tier and could not serve it there
	// (a transient condition, e.g. mid-recovery). Reads retry it
	// internally; when it survives to the caller it wraps ErrTimeout.
	ErrEvicted = errors.New("flexlog: record evicted and cold tier unavailable")
	// ErrCheckpointTruncated qualifies ErrNotFound: the SN lies below the
	// replicas' checkpoint recovery floor — trimmed and truncated from
	// the recoverable log. Terminal; retrying cannot succeed.
	ErrCheckpointTruncated = errors.New("flexlog: record below checkpoint recovery floor")
	// ErrOverloaded is QoS backpressure: a replica's service lane shed the
	// request from a full per-tenant queue. Transient — the client retries
	// internally, honoring the server's retry-after hint; it surfaces only
	// when the overload outlasts the operation's deadline.
	ErrOverloaded = errors.New("flexlog: server overloaded")
	// ErrThrottled is admission control: the tenant exceeded its configured
	// append rate and the replica rejected the request before processing
	// it. Like ErrOverloaded it is retried internally with the server's
	// retry-after hint and surfaces only past the deadline.
	ErrThrottled = errors.New("flexlog: tenant rate limit exceeded")
	// ErrReconfiguring is the control plane's typed rejection: the target
	// replica is draining (or its whole shard is being merged away) and no
	// longer accepts appends. Retryable — the client re-resolves the
	// topology on every retry tick, so an append normally completes against
	// the post-reconfiguration membership; the error surfaces only when the
	// shard disappears mid-operation or the reconfiguration outlasts the
	// deadline. Callers retry with a fresh append (the usual §6.3
	// re-execution), which lands on the surviving shards.
	ErrReconfiguring = errors.New("flexlog: shard reconfiguring")
)

// ClientConfig parameterizes a client handle.
type ClientConfig struct {
	FID  uint32 // distinct function id (Alg. 1: token = (FID<<32)+counter)
	ID   types.NodeID
	Topo *topology.Topology

	// RetryInterval re-broadcasts an unanswered request (idempotent).
	RetryInterval time.Duration
	// Timeout bounds every blocking operation.
	Timeout time.Duration
	// Seed seeds shard selection; 0 derives one from the FID.
	Seed int64
	// Batch configures client-side append batching & pipelining; the zero
	// value disables it (see WithBatching).
	Batch BatchConfig
	// Tenant is the identity carried in this client's append and read
	// requests; replicas map it onto QoS weight, rate and accounting.
	// The zero value is the default tenant (never throttled).
	Tenant types.TenantID
	// Hedge configures read hedging; the zero value disables it (see
	// WithHedging).
	Hedge HedgeConfig
}

// Client is a FlexLog handle used by one serverless function. It is safe
// for concurrent use.
type Client struct {
	cfg   ClientConfig
	topo  *topology.Topology
	ep    transport.Endpoint
	adder ColorAdder

	counter atomic.Uint32 // token counter (Alg. 1 line 3)
	reqSeq  atomic.Uint64 // correlation ids for read/subscribe/trim/multi

	met      *ClientMetrics
	closedCh chan struct{} // closed by Close; unblocks batchers and waiters

	// Read hedging state (see hedge.go).
	readLat    latencyTracker
	hedges     atomic.Uint64 // read rounds that sent backup requests
	readRounds atomic.Uint64 // all read rounds (the hedge budget's base)

	mu       sync.Mutex
	rng      *rand.Rand
	appends  map[types.Token]*appendWait
	reads    map[uint64]*readWait
	subs     map[uint64]*subWait
	trims    map[uint64]*trimWaitC
	multis   map[uint64]*multiWait
	batchers map[batcherKey]*shardBatcher
	closed   bool

	// place is the client-side placement cache: SNs this client appended
	// (or read) mapped to the shard storing them. A hit lets Read query a
	// single replica of one shard instead of one replica of every shard;
	// a stale hint degrades gracefully to the full protocol.
	place map[placeKey]types.ShardID
}

type placeKey struct {
	color types.ColorID
	sn    types.SN
}

// placeCacheLimit bounds the placement cache.
const placeCacheLimit = 8192

// ColorAdder provisions new colored regions (Table 2 AddColor). The
// in-process Cluster implements it; TCP deployments provision statically.
type ColorAdder interface {
	AddColor(color, parent types.ColorID) error
}

type appendWait struct {
	needed map[types.NodeID]bool
	acked  map[types.NodeID]bool // responders so far, kept across membership changes
	sn     types.SN
	rej    error         // last QoS rejection cause (ErrThrottled/ErrOverloaded/ErrReconfiguring)
	hint   time.Duration // server retry-after hint; consumed by the retry loop
	done   chan struct{}
	closed bool
}

type readWait struct {
	waiting  int                   // shards that have not answered
	seen     map[types.NodeID]bool // responders counted (dup-delivery safe)
	shardOf  map[types.NodeID]int  // replica → shard slot (primaries + hedges)
	answered []bool                // per-shard: first response landed
	data     []byte
	found    bool
	status   uint8         // highest proto.ReadStatus* across ⊥ responses
	rej      error         // QoS rejection cause, if any replica shed the read
	hint     time.Duration // server retry-after hint
	done     chan struct{}
	closed   bool
}

type subWait struct {
	waiting int
	seen    map[types.NodeID]bool
	records []proto.WireRecord
	done    chan struct{}
	closed  bool
}

type trimWaitC struct {
	waiting int
	seen    map[types.NodeID]bool
	head    types.SN
	tail    types.SN
	done    chan struct{}
	closed  bool
}

type multiWait struct {
	done   chan struct{}
	closed bool
}

// NewClient attaches a client to the in-process network. Options, if any,
// are applied on top of cfg.
func NewClient(cfg ClientConfig, net *transport.Network, opts ...Option) (*Client, error) {
	c := newClient(cfg, opts)
	ep, err := net.Register(c.cfg.ID, c.handle)
	if err != nil {
		return nil, err
	}
	c.ep = ep
	return c, nil
}

// NewClientWithEndpoint attaches a client over a custom endpoint (TCP).
func NewClientWithEndpoint(cfg ClientConfig, attach func(h transport.Handler) (transport.Endpoint, error), opts ...Option) (*Client, error) {
	c := newClient(cfg, opts)
	ep, err := attach(c.handle)
	if err != nil {
		return nil, err
	}
	c.ep = ep
	return c, nil
}

func newClient(cfg ClientConfig, opts []Option) *Client {
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 50 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Batch.enabled() {
		cfg.Batch = cfg.Batch.withDefaults()
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = int64(cfg.FID)*2654435761 + 1
	}
	return &Client{
		cfg:      cfg,
		topo:     cfg.Topo,
		met:      newClientMetrics(),
		closedCh: make(chan struct{}),
		rng:      rand.New(rand.NewSource(seed)),
		appends:  make(map[types.Token]*appendWait),
		reads:    make(map[uint64]*readWait),
		subs:     make(map[uint64]*subWait),
		trims:    make(map[uint64]*trimWaitC),
		multis:   make(map[uint64]*multiWait),
		batchers: make(map[batcherKey]*shardBatcher),
		place:    make(map[placeKey]types.ShardID),
	}
}

// rememberPlacement records which shard stores the SN range ending at last.
func (c *Client) rememberPlacement(color types.ColorID, last types.SN, n int, shard types.ShardID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < n; i++ {
		if len(c.place) >= placeCacheLimit {
			for k := range c.place { // drop an arbitrary entry
				delete(c.place, k)
				break
			}
		}
		c.place[placeKey{color, last - types.SN(i)}] = shard
	}
}

// placement looks a cached SN location up.
func (c *Client) placement(color types.ColorID, sn types.SN) (types.ShardID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sh, ok := c.place[placeKey{color, sn}]
	return sh, ok
}

// FID returns the client's function id.
func (c *Client) FID() uint32 { return c.cfg.FID }

// SetColorAdder wires the provisioning backend used by AddColor.
func (c *Client) SetColorAdder(a ColorAdder) { c.adder = a }

// Close detaches the client. Queued and in-flight batched appends fail
// with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.mu.Unlock()
	if !already {
		close(c.closedCh)
	}
	return c.ep.Close()
}

func (c *Client) nextToken() types.Token {
	return types.MakeToken(c.cfg.FID, c.counter.Add(1))
}

// handle dispatches responses to their waiters.
func (c *Client) handle(from types.NodeID, msg transport.Message) {
	switch m := msg.(type) {
	case proto.AppendAck:
		c.mu.Lock()
		w := c.appends[m.Token]
		// The closed guard covers every mutation, not just the close: a
		// duplicated ack (lossy-link DupProb) arriving after completion
		// must not touch w.sn while the waiter is reading it.
		if w != nil && !w.closed {
			delete(w.needed, from)
			w.acked[from] = true
			if m.SN.Valid() {
				w.sn = m.SN
			}
			if len(w.needed) == 0 {
				w.closed = true
				close(w.done)
			}
		}
		c.mu.Unlock()
	case proto.ReadResp:
		c.mu.Lock()
		w := c.reads[m.ID]
		// Count each responder once: a duplicated response must not
		// double-decrement waiting, or an all-⊥ round could complete with
		// a shard still unanswered and report a spurious ⊥. Accounting is
		// per shard, not per replica: with hedging two replicas of one
		// shard may both answer, and only the first counts.
		if w != nil && !w.closed && !w.seen[from] {
			w.seen[from] = true
			if si, ok := w.shardOf[from]; ok && !w.answered[si] {
				w.answered[si] = true
				w.waiting--
			}
			if m.Found {
				w.data, w.found = m.Data, true
			} else if m.Status > w.status {
				// ⊥ qualifiers merge by precedence (evicted > checkpoint-
				// truncated > trimmed > none), see proto.ReadStatus*.
				w.status = m.Status
			}
			// First hit wins; all-⊥ completes when every shard answered.
			if w.found || w.waiting <= 0 {
				w.closed = true
				close(w.done)
			}
		}
		c.mu.Unlock()
	case proto.Reject:
		// Typed QoS backpressure: a replica refused the request — admission
		// control (throttled, with a refill-derived retry-after) or a full
		// lane queue (overloaded). The waiter records the cause and hint;
		// the retry loops wait max(hint, backoff) before re-driving and
		// surface the cause if the deadline passes first.
		cause := ErrOverloaded
		switch m.Code {
		case proto.RejectThrottled:
			cause = ErrThrottled
		case proto.RejectReconfiguring:
			cause = ErrReconfiguring
		}
		c.mu.Lock()
		if !m.IsRead {
			if w := c.appends[m.Token]; w != nil && !w.closed {
				w.rej, w.hint = cause, m.RetryAfter()
			}
		} else if w := c.reads[m.ID]; w != nil && !w.closed && !w.seen[from] {
			// A shed read counts as the shard's (non-authoritative) answer:
			// the round completes without it and the caller retries.
			w.seen[from] = true
			w.rej, w.hint = cause, m.RetryAfter()
			if si, ok := w.shardOf[from]; ok && !w.answered[si] {
				w.answered[si] = true
				w.waiting--
			}
			if w.waiting <= 0 {
				w.closed = true
				close(w.done)
			}
		}
		c.mu.Unlock()
	case proto.SubscribeResp:
		c.mu.Lock()
		w := c.subs[m.ID]
		if w != nil && !w.closed && !w.seen[from] {
			w.seen[from] = true
			w.waiting--
			w.records = append(w.records, m.Records...)
			if w.waiting <= 0 {
				w.closed = true
				close(w.done)
			}
		}
		c.mu.Unlock()
	case proto.TrimAck:
		c.mu.Lock()
		w := c.trims[m.ID]
		if w != nil && !w.closed && !w.seen[from] {
			w.seen[from] = true
			w.waiting--
			// Replicas report their local bounds; the color's global head
			// is the smallest surviving SN, the tail the largest.
			if m.Head.Valid() && (!w.head.Valid() || m.Head < w.head) {
				w.head = m.Head
			}
			if m.Tail > w.tail {
				w.tail = m.Tail
			}
			if w.waiting <= 0 {
				w.closed = true
				close(w.done)
			}
		}
		c.mu.Unlock()
	case proto.MultiAppendAck:
		c.mu.Lock()
		w := c.multis[m.ID]
		if w != nil && !w.closed {
			// Alg. 2 line 6: "wait(ack) from any replica in shard".
			w.closed = true
			close(w.done)
		}
		c.mu.Unlock()
	}
}

// Append appends records to the log of color c and returns the SN of the
// last record (Table 2; Alg. 1 client role). The call completes only after
// every replica of the chosen shard committed and acknowledged the batch.
// Legacy wrapper over AppendCtx.
func (c *Client) Append(records [][]byte, color types.ColorID) (types.SN, error) {
	return c.AppendCtx(context.Background(), records, color)
}

// AppendCtx is the context-first append: it honors cancellation and
// deadlines on top of the client's configured Timeout. With batching
// enabled the call is coalesced with concurrent appends to the same color
// (see batcher.go); cancellation then abandons the wait, not the batch —
// the records may still commit.
func (c *Client) AppendCtx(ctx context.Context, records [][]byte, color types.ColorID) (types.SN, error) {
	if len(records) == 0 {
		return types.InvalidSN, opError("append", color, types.InvalidSN, fmt.Errorf("empty append"))
	}
	tr := obs.FromContext(ctx) // nil-safe span recording
	if c.cfg.Batch.enabled() {
		fut, err := c.enqueueAppend(records, color)
		if err != nil {
			return types.InvalidSN, opError("append", color, types.InvalidSN, err)
		}
		endWait := tr.StartSpan("batch_wait")
		sn, err := fut.Wait(ctx)
		endWait()
		return sn, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return types.InvalidSN, opError("append", color, types.InvalidSN, ErrClosed)
	}
	shard, err := c.topo.RandomShard(color, c.rng)
	c.mu.Unlock()
	if err != nil {
		return types.InvalidSN, opError("append", color, types.InvalidSN, err)
	}
	endRTT := tr.StartSpan("append_rtt")
	sn, _, err := c.appendToShard(ctx, records, color, shard)
	endRTT()
	if err != nil {
		return types.InvalidSN, opError("append", color, types.InvalidSN, err)
	}
	if sn.Valid() {
		c.rememberPlacement(color, sn, len(records), shard.ID)
	}
	return sn, nil
}

// AsyncAppend submits an append and returns immediately with a future for
// its SN. With batching enabled the future resolves when the record's
// batch commits; without, a goroutine drives a plain append. Futures of
// failed validation resolve immediately.
func (c *Client) AsyncAppend(records [][]byte, color types.ColorID) *AppendFuture {
	if len(records) == 0 {
		return failedFuture(color, fmt.Errorf("empty append"))
	}
	if c.cfg.Batch.enabled() {
		fut, err := c.enqueueAppend(records, color)
		if err != nil {
			return failedFuture(color, err)
		}
		return fut
	}
	fut := newAppendFuture(color)
	go func() {
		sn, err := c.AppendCtx(context.Background(), records, color)
		fut.complete(sn, err)
	}()
	return fut
}

// appendToShard runs the append protocol against a specific shard and
// returns the assigned SN together with the token used.
func (c *Client) appendToShard(ctx context.Context, records [][]byte, color types.ColorID, shard topology.ShardInfo) (types.SN, types.Token, error) {
	token := c.nextToken()
	w := &appendWait{
		needed: make(map[types.NodeID]bool, len(shard.Replicas)),
		acked:  make(map[types.NodeID]bool, len(shard.Replicas)),
		done:   make(chan struct{}),
	}
	for _, id := range shard.Replicas {
		w.needed[id] = true
	}
	c.mu.Lock()
	c.appends[token] = w
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.appends, token)
		c.mu.Unlock()
	}()

	req := proto.AppendReq{Color: color, Token: token, Records: records, Client: c.cfg.ID, Tenant: c.cfg.Tenant}
	deadline := time.Now().Add(c.cfg.Timeout)
	bo := c.newBackoff()
	for {
		c.ep.Broadcast(shard.Replicas, req)
		select {
		case <-w.done:
			return w.sn, token, nil
		case <-ctx.Done():
			c.mu.Lock()
			rej, hint := w.rej, w.hint
			c.mu.Unlock()
			if rej != nil {
				// The caller's deadline passed while the server was
				// rejecting: overload is never silent, so the error carries
				// both the context sentinel and the typed QoS cause (plus
				// the server's hint, for callers driving their own retries).
				return types.InvalidSN, token, &RetryAfterError{
					Err:   fmt.Errorf("%w: %w: append %v to %v", ctx.Err(), rej, token, color),
					After: hint,
				}
			}
			return types.InvalidSN, token, ctx.Err()
		case <-time.After(bo.nextAfter(c.takeAppendHint(w))):
			if time.Now().After(deadline) {
				c.mu.Lock()
				rej, hint := w.rej, w.hint
				c.mu.Unlock()
				if rej != nil {
					// The deadline passed while the server was rejecting:
					// surface the typed QoS cause, not a bare timeout.
					return types.InvalidSN, token, &RetryAfterError{
						Err:   fmt.Errorf("%w: append %v to %v", rej, token, color),
						After: hint,
					}
				}
				return types.InvalidSN, token, fmt.Errorf("%w: append %v to %v", ErrTimeout, token, color)
			}
			// Epoch fencing: the shard's membership may have changed under
			// this append (replica drained out, or a caught-up replica
			// promoted in). Re-resolve before re-broadcasting and rebuild
			// the ack barrier as the CURRENT members minus those that
			// already acked — a departed replica can no longer wedge the
			// wait, a newly promoted one must ack before completion. A
			// shard removed outright (merge cutover) surfaces the typed
			// retryable rejection.
			cur, err := c.topo.Shard(shard.ID)
			if err != nil {
				c.mu.Lock()
				hint := w.hint
				c.mu.Unlock()
				return types.InvalidSN, token, &RetryAfterError{
					Err:   fmt.Errorf("%w: shard %v removed during append %v to %v", ErrReconfiguring, shard.ID, token, color),
					After: hint,
				}
			}
			shard = cur
			c.mu.Lock()
			if !w.closed {
				clear(w.needed)
				for _, id := range cur.Replicas {
					if !w.acked[id] {
						w.needed[id] = true
					}
				}
				if len(w.needed) == 0 {
					w.closed = true
					close(w.done)
				}
			}
			c.mu.Unlock()
			select {
			case <-w.done:
				return w.sn, token, nil
			default:
			}
		}
	}
}

// takeAppendHint consumes the wait's pending retry-after hint (one-shot:
// each rejection stretches exactly one retry interval).
func (c *Client) takeAppendHint(w *appendWait) time.Duration {
	c.mu.Lock()
	hint := w.hint
	w.hint = 0
	c.mu.Unlock()
	return hint
}

// Read returns the record with the given SN from the c-colored log, or
// ErrNotFound for ⊥ (Table 2; §6.1). One replica of every shard of the
// color is consulted; only the shard storing the record answers non-⊥.
// Legacy wrapper over ReadCtx.
func (c *Client) Read(sn types.SN, color types.ColorID) ([]byte, error) {
	return c.ReadCtx(context.Background(), sn, color)
}

// ReadCtx is the context-first read: it honors cancellation and deadlines
// between (and within) retry rounds.
func (c *Client) ReadCtx(ctx context.Context, sn types.SN, color types.ColorID) ([]byte, error) {
	defer obs.FromContext(ctx).StartSpan("read_rtt")()
	shards := c.topo.ShardsInRegion(color)
	if len(shards) == 0 {
		return nil, opError("read", color, sn, fmt.Errorf("no shards"))
	}
	// Placement fast path: if the client knows which shard stores the SN
	// (it appended it), ask a single replica of that shard only. A miss
	// (stale hint, trimmed record) falls back to the full protocol.
	if shardID, ok := c.placement(color, sn); ok {
		if sh, err := c.topo.Shard(shardID); err == nil {
			if data, err := c.readOnce(ctx, sn, color, []topology.ShardInfo{sh}, c.cfg.RetryInterval); err == nil {
				return data, nil
			}
		}
	}
	deadline := time.Now().Add(c.cfg.Timeout)
	bo := c.newBackoff()
	var hint time.Duration
	for {
		// The round window doubles as the retry pacing; a server retry-after
		// hint from the previous round stretches it (max of hint and the
		// jittered backoff), so a throttled client never hammers.
		data, err := c.readOnce(ctx, sn, color, shards, bo.nextAfter(hint))
		if err == nil {
			return data, nil
		}
		if errors.Is(err, ErrNotFound) || errors.Is(err, ErrClosed) || ctx.Err() != nil {
			return nil, opError("read", color, sn, err)
		}
		if time.Now().After(deadline) {
			// Keep the last round's cause matchable (e.g. ErrEvicted when
			// every retry found the cold tier unavailable).
			return nil, opError("read", color, sn, fmt.Errorf("%w: read %v of %v: %w", ErrTimeout, sn, color, err))
		}
		hint = retryAfterHint(err)
		// Retry against (probably) different replicas — the paper's §6.3
		// "forces the FaaS application to re-execute the read" — and
		// against the CURRENT shard set: a shard split mid-read must be
		// consulted in the next round (the record may land there), a
		// merged-away shard must not wedge it (epoch fencing).
		if cur := c.topo.ShardsInRegion(color); len(cur) > 0 {
			shards = cur
		}
	}
}

// readOnce runs one round of the read protocol against one replica of each
// given shard. It returns ErrNotFound when every shard answered ⊥ and
// ErrTimeout when some shard did not answer within the given window.
func (c *Client) readOnce(ctx context.Context, sn types.SN, color types.ColorID, shards []topology.ShardInfo, window time.Duration) ([]byte, error) {
	id := c.reqSeq.Add(1)
	start := time.Now()
	c.readRounds.Add(1)
	w := &readWait{
		waiting:  len(shards),
		seen:     make(map[types.NodeID]bool, len(shards)),
		shardOf:  make(map[types.NodeID]int, len(shards)),
		answered: make([]bool, len(shards)),
		done:     make(chan struct{}),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.reads[id] = w
	targets := make([]types.NodeID, len(shards))
	for i, sh := range shards {
		targets[i] = sh.Replicas[c.rng.Intn(len(sh.Replicas))]
		w.shardOf[targets[i]] = i
	}
	c.mu.Unlock()

	req := proto.ReadReq{ID: id, Color: color, SN: sn, Client: c.cfg.ID, Tenant: c.cfg.Tenant}
	for _, t := range targets {
		c.ep.Send(t, req)
	}
	var timedOut bool
	var ctxErr error
	remaining := window
	// Hedging leg: when the round outlives the straggler threshold (and the
	// hedge budget allows), clone the request to a backup replica per shard
	// and keep waiting — first response per shard wins.
	if hd := c.hedgeDelay(); hd > 0 && hd < window && c.hedgeAllowed() {
		select {
		case <-w.done:
		case <-ctx.Done():
			ctxErr = ctx.Err()
		case <-time.After(hd):
			c.sendHedges(w, req, shards, targets)
			remaining = window - hd
		}
	}
	roundOver := ctxErr != nil
	if !roundOver {
		select {
		case <-w.done:
			roundOver = true
		default:
		}
	}
	if !roundOver {
		select {
		case <-w.done:
		case <-ctx.Done():
			ctxErr = ctx.Err()
		case <-time.After(remaining):
			timedOut = true
		}
	}
	c.mu.Lock()
	if !w.closed {
		w.closed = true
		close(w.done)
	}
	delete(c.reads, id)
	found, data, status := w.found, w.data, w.status
	rej, hint := w.rej, w.hint
	c.mu.Unlock()
	if found {
		c.readLat.record(time.Since(start))
		return data, nil
	}
	if ctxErr != nil {
		if rej != nil {
			// As on the append path: a caller deadline must not mask an
			// active QoS rejection.
			return nil, &RetryAfterError{Err: fmt.Errorf("%w: %w: read round", ctxErr, rej), After: hint}
		}
		return nil, ctxErr
	}
	if timedOut {
		return nil, fmt.Errorf("%w: read round", ErrTimeout)
	}
	if rej != nil {
		// Some replica shed or throttled the read, so the all-⊥ answer is
		// not authoritative: retryable, carrying the server's hint.
		return nil, &RetryAfterError{Err: rej, After: hint}
	}
	switch status {
	case proto.ReadStatusEvicted:
		// Transient cold-tier failure: not ErrNotFound, so ReadCtx keeps
		// retrying (likely against a recovered replica) until its deadline.
		return nil, fmt.Errorf("%w (sn %v)", ErrEvicted, sn)
	case proto.ReadStatusCkptTruncated:
		// Terminal ⊥ with a cause the caller can distinguish.
		return nil, fmt.Errorf("%w: %w", ErrNotFound, ErrCheckpointTruncated)
	}
	return nil, ErrNotFound
}

// Subscribe returns every committed record of the c-colored log, merged
// across shards and sorted by SN (Table 2; §6.2). From is exclusive; use
// types.InvalidSN for the full log.
func (c *Client) Subscribe(color types.ColorID, from types.SN) ([]types.Record, error) {
	shards := c.topo.ShardsInRegion(color)
	if len(shards) == 0 {
		return nil, fmt.Errorf("flexlog: no shards for %v", color)
	}
	deadline := time.Now().Add(c.cfg.Timeout)
	bo := c.newBackoff()
	for {
		// Re-resolve the shard set every round: a split adds a shard whose
		// records the merge must include; a merged-away shard must not be
		// waited on (epoch fencing).
		if cur := c.topo.ShardsInRegion(color); len(cur) > 0 {
			shards = cur
		}
		id := c.reqSeq.Add(1)
		w := &subWait{waiting: len(shards), seen: make(map[types.NodeID]bool, len(shards)), done: make(chan struct{})}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		c.subs[id] = w
		targets := make([]types.NodeID, len(shards))
		for i, sh := range shards {
			targets[i] = sh.Replicas[c.rng.Intn(len(sh.Replicas))]
		}
		c.mu.Unlock()

		req := proto.SubscribeReq{ID: id, Color: color, From: from, Client: c.cfg.ID}
		for _, t := range targets {
			c.ep.Send(t, req)
		}
		var ok bool
		select {
		case <-w.done:
			ok = true
		case <-time.After(bo.next()):
		}
		c.mu.Lock()
		if !w.closed {
			w.closed = true
			close(w.done)
		}
		delete(c.subs, id)
		records := w.records
		c.mu.Unlock()
		if ok {
			out := make([]types.Record, len(records))
			for i, rec := range records {
				out[i] = types.Record{Token: rec.Token, SN: rec.SN, Color: color, Data: rec.Data}
			}
			sort.Slice(out, func(i, j int) bool { return out[i].SN < out[j].SN })
			return out, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("%w: subscribe %v", ErrTimeout, color)
		}
	}
}

// SubscribeChan returns a live stream of the c-colored log: all current
// records followed by new ones as they commit, in SN order — the channel
// form Listing 1 iterates (`for idx, record := <-log`). The stream is
// implemented by polling Subscribe with the given interval and ends when
// ctx is done (the channel is then closed).
func (c *Client) SubscribeChan(ctx context.Context, color types.ColorID, poll time.Duration) (<-chan types.Record, error) {
	if poll <= 0 {
		poll = 5 * time.Millisecond
	}
	// Validate the color up front so misuse fails fast.
	if len(c.topo.ShardsInRegion(color)) == 0 {
		return nil, fmt.Errorf("flexlog: no shards for %v", color)
	}
	out := make(chan types.Record, 64)
	go func() {
		defer close(out)
		var cursor types.SN
		for {
			records, err := c.Subscribe(color, cursor)
			if err == nil {
				for _, r := range records {
					select {
					case out <- r:
						if r.SN > cursor {
							cursor = r.SN
						}
					case <-ctx.Done():
						return
					}
				}
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(poll):
			}
		}
	}()
	return out, nil
}

// Trim garbage-collects the log of color c up to and including sn and
// returns the remaining [head, tail] bounds (Table 2; §6.2). Legacy
// wrapper over TrimCtx.
func (c *Client) Trim(sn types.SN, color types.ColorID) (head, tail types.SN, err error) {
	return c.TrimCtx(context.Background(), sn, color)
}

// TrimCtx is the context-first trim: it honors cancellation and deadlines
// while waiting for the region's replicas to acknowledge.
func (c *Client) TrimCtx(ctx context.Context, sn types.SN, color types.ColorID) (head, tail types.SN, err error) {
	replicas := c.topo.ReplicasInRegion(color)
	if len(replicas) == 0 {
		return 0, 0, opError("trim", color, sn, fmt.Errorf("no replicas"))
	}
	id := c.reqSeq.Add(1)
	w := &trimWaitC{waiting: len(replicas), seen: make(map[types.NodeID]bool, len(replicas)), done: make(chan struct{})}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, 0, opError("trim", color, sn, ErrClosed)
	}
	c.trims[id] = w
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.trims, id)
		c.mu.Unlock()
	}()

	req := proto.TrimReq{ID: id, Color: color, SN: sn, Client: c.cfg.ID}
	deadline := time.Now().Add(c.cfg.Timeout)
	bo := c.newBackoff()
	for {
		c.ep.Broadcast(replicas, req)
		select {
		case <-w.done:
			return w.head, w.tail, nil
		case <-ctx.Done():
			return 0, 0, opError("trim", color, sn, ctx.Err())
		case <-time.After(bo.next()):
			if time.Now().After(deadline) {
				return 0, 0, opError("trim", color, sn, fmt.Errorf("%w: trim %v of %v", ErrTimeout, sn, color))
			}
			// Epoch fencing: a replica drained out of the region can no
			// longer acknowledge — shrink the barrier to the surviving
			// intersection so the trim completes. (Replicas promoted after
			// the trim started adopt the frontier via their sync-phase; the
			// barrier only ever shrinks.)
			curSet := make(map[types.NodeID]bool)
			for _, id := range c.topo.ReplicasInRegion(color) {
				curSet[id] = true
			}
			survivors := replicas[:0:0]
			for _, rid := range replicas {
				if curSet[rid] {
					survivors = append(survivors, rid)
				}
			}
			if len(survivors) == len(replicas) {
				continue
			}
			c.mu.Lock()
			if !w.closed {
				for _, rid := range replicas {
					if !curSet[rid] && !w.seen[rid] {
						w.seen[rid] = true
						w.waiting--
					}
				}
				if w.waiting <= 0 {
					w.closed = true
					close(w.done)
				}
			}
			c.mu.Unlock()
			replicas = survivors
			select {
			case <-w.done:
				return w.head, w.tail, nil
			default:
			}
			if len(replicas) == 0 {
				return 0, 0, opError("trim", color, sn, fmt.Errorf("%w: region %v replicas all reconfigured away", ErrReconfiguring, color))
			}
		}
	}
}

// AddColor creates a new c-colored log with parent as its parent region
// (Table 2). Requires a provisioning backend (the in-process Cluster).
func (c *Client) AddColor(color, parent types.ColorID) error {
	if c.adder == nil {
		return fmt.Errorf("flexlog: no color provisioning backend configured")
	}
	return c.adder.AddColor(color, parent)
}

// MultiAppend atomically appends each record set to its corresponding
// color (Alg. 2, §6.4): all sets become visible or none does. The broker
// ("special") color must be known to all participants a priori; the master
// region works by default. Legacy wrapper over MultiAppendCtx.
func (c *Client) MultiAppend(sets [][][]byte, colors []types.ColorID, special types.ColorID) error {
	return c.MultiAppendCtx(context.Background(), sets, colors, special)
}

// MultiAppendCtx is the context-first atomic multi-color append: it honors
// cancellation and deadlines across both the staging and end-marker phases.
func (c *Client) MultiAppendCtx(ctx context.Context, sets [][][]byte, colors []types.ColorID, special types.ColorID) error {
	if len(sets) != len(colors) || len(sets) == 0 {
		return opError("multi-append", special, types.InvalidSN,
			fmt.Errorf("%d record sets vs %d colors", len(sets), len(colors)))
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return opError("multi-append", special, types.InvalidSN, ErrClosed)
	}
	shard, err := c.topo.RandomShard(special, c.rng)
	c.mu.Unlock()
	if err != nil {
		return opError("multi-append", special, types.InvalidSN, err)
	}
	// Phase 1: stage every set on the broker shard (Alg. 2 lines 3–4).
	tokens := make([]types.Token, len(sets))
	for i, records := range sets {
		staged := replica.EncodeStaged(colors[i], c.cfg.FID, records)
		_, token, err := c.appendToShard(ctx, [][]byte{staged}, special, shard)
		if err != nil {
			return opError("multi-append", special, types.InvalidSN,
				fmt.Errorf("staging set %d: %w", i, err))
		}
		tokens[i] = token
	}
	// Phase 2: broadcast the end marker and wait for any broker ack
	// (Alg. 2 lines 5–6).
	id := c.reqSeq.Add(1)
	w := &multiWait{done: make(chan struct{})}
	c.mu.Lock()
	c.multis[id] = w
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.multis, id)
		c.mu.Unlock()
	}()

	endMsg := proto.MultiAppendEnd{ID: id, FID: c.cfg.FID, Tokens: tokens, Client: c.cfg.ID}
	deadline := time.Now().Add(c.cfg.Timeout)
	bo := c.newBackoff()
	for {
		c.ep.Broadcast(shard.Replicas, endMsg)
		select {
		case <-w.done:
			return nil
		case <-ctx.Done():
			return opError("multi-append", special, types.InvalidSN, ctx.Err())
		case <-time.After(bo.next()):
			if time.Now().After(deadline) {
				return opError("multi-append", special, types.InvalidSN, fmt.Errorf("%w: multi-append", ErrTimeout))
			}
			// Epoch fencing: re-resolve the broker shard so the end marker
			// reaches its current membership (any broker replica may ack).
			if cur, err := c.topo.Shard(shard.ID); err == nil {
				shard = cur
			}
		}
	}
}
