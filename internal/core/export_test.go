package core

import (
	"flexlog/internal/replica"
	"flexlog/internal/types"
)

// encodeStagedForTest exposes the staging encoder to tests.
func encodeStagedForTest(target types.ColorID, fid uint32, records [][]byte) []byte {
	return replica.EncodeStaged(target, fid, records)
}
