package core

import (
	"fmt"
	"net"
	"testing"
	"time"

	"flexlog/internal/deploy"
	"flexlog/internal/replica"
	"flexlog/internal/seq"
	"flexlog/internal/storage"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// TestTCPClusterEndToEnd deploys a complete FlexLog — a sequencer group
// and one shard of three replicas — over real TCP sockets on loopback and
// exercises the public API through a TCP client, validating that the
// protocols (and their gob encodings) survive a real network.
func TestTCPClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP deployment test skipped in -short mode")
	}
	deploy.RegisterWire()

	// Reserve loopback ports.
	ids := []types.NodeID{1, 2, 3, 900, 500}
	addrs := make(map[types.NodeID]string, len(ids))
	var lns []net.Listener
	for _, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns = append(lns, ln)
		addrs[id] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	m := &deploy.Manifest{
		Nodes:   addrs,
		Regions: []deploy.RegionSpec{{Color: 0, Leader: 900}},
		Shards:  []deploy.ShardSpec{{ID: 1, Leaf: 0, Replicas: []types.NodeID{1, 2, 3}}},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	topo, err := m.Topology()
	if err != nil {
		t.Fatal(err)
	}
	book := m.AddressBook()
	attach := func(id types.NodeID) func(h transport.Handler) (transport.Endpoint, error) {
		return func(h transport.Handler) (transport.Endpoint, error) {
			return transport.ListenTCP(id, book, h)
		}
	}

	// Sequencer.
	scfg := seq.DefaultConfig()
	scfg.ID = 900
	scfg.Region = 0
	scfg.Topo = topo
	scfg.BatchInterval = 0
	scfg.HeartbeatInterval = 50 * time.Millisecond
	scfg.FailureTimeout = time.Second
	scfg.StartAsLeader = true
	s, err := seq.NewWithEndpoint(scfg, attach(900))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	// Replicas.
	for _, id := range []types.NodeID{1, 2, 3} {
		rcfg := replica.DefaultConfig()
		rcfg.ID = id
		rcfg.Shard = 1
		rcfg.Topo = topo
		rcfg.Store = storage.TestConfig()
		rcfg.HeartbeatInterval = 50 * time.Millisecond
		rcfg.RetryTimeout = 500 * time.Millisecond
		r, err := replica.NewWithEndpoint(rcfg, attach(id))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Stop()
	}

	// Client over TCP.
	client, err := NewClientWithEndpoint(ClientConfig{
		FID: 500, ID: 500, Topo: topo,
		Timeout:       15 * time.Second,
		RetryInterval: 300 * time.Millisecond,
	}, attach(500))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Append / read / subscribe / trim over the wire.
	var sns []types.SN
	for i := 0; i < 5; i++ {
		sn, err := client.Append([][]byte{fmt.Appendf(nil, "tcp-%d", i)}, 0)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		sns = append(sns, sn)
	}
	got, err := client.Read(sns[3], 0)
	if err != nil || string(got) != "tcp-3" {
		t.Fatalf("read = %q, %v", got, err)
	}
	recs, err := client.Subscribe(0, types.InvalidSN)
	if err != nil || len(recs) != 5 {
		t.Fatalf("subscribe = %d records, %v", len(recs), err)
	}
	head, tail, err := client.Trim(sns[1], 0)
	if err != nil {
		t.Fatalf("trim: %v", err)
	}
	if head != sns[2] || tail != sns[4] {
		t.Fatalf("bounds after trim = %v, %v", head, tail)
	}
	if _, err := client.Read(sns[0], 0); err == nil {
		t.Fatal("trimmed record still readable")
	}
}
