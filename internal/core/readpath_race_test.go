package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flexlog/internal/types"
)

// TestReadLaneLinearizableUnderStress drives the two-lane replica with
// concurrent readers hammering the committed frontier while batched
// appends land and trims advance the floor. It asserts the §6.1/§6.3
// read semantics survive the concurrent read path:
//
//   - a read of a committed SN above the trim floor returns exactly the
//     record appended there (no stale or torn data from the lock-free
//     watermark/cache/storage paths);
//   - ⊥ for such an SN is a linearizability violation (holes cannot
//     exist in this workload) — unless a trim raced past it;
//   - reads above the frontier are held and legally resolve to the
//     record or ⊥ (read-hold, §6.3).
//
// Run with -race (the Makefile's race target includes this package).
func TestReadLaneLinearizableUnderStress(t *testing.T) {
	cfg := TestClusterConfig()
	cfg.ReadWorkers = 4
	// No sequencer backups: under stress the leader's heartbeats can starve
	// long enough for a backup to claim epoch+1, which resets the SN counter
	// and invalidates the dense counter space this test samples. Failover
	// has its own tests; this one is about the concurrent read path.
	cfg.SeqBackups = 0
	cl, err := SimpleCluster(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	writer, err := cl.NewClient(WithBatching(BatchConfig{
		MaxBatchRecords: 8,
		MaxBatchDelay:   100 * time.Microsecond,
		MaxInFlight:     4,
	}))
	if err != nil {
		t.Fatal(err)
	}
	trimmer, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}

	const (
		totalAppends = 1200
		inFlight     = 16
		readers      = 4
	)
	// SNs are epoch<<32|counter and the epoch stays 1 in this test (no
	// failover), so the frontier and trim floor are tracked as counters —
	// a dense space the readers can sample uniformly.
	var (
		payloads sync.Map      // types.SN -> []byte
		frontier atomic.Uint64 // highest counter whose predecessors are all in payloads
		floor    atomic.Uint64 // trim floor counter: sn <= floor may be gone
		writerWG sync.WaitGroup
		readerWG sync.WaitGroup
	)
	stop := make(chan struct{})
	errCh := make(chan error, readers+2)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	record := func(i int) []byte { return []byte(fmt.Sprintf("rec-%08d", i)) }

	// Writer: pipelined batched appends, futures collected in submission
	// order. SNs are granted in submission order here (single writer,
	// single shard, FIFO links), so once future i resolves every SN up to
	// it is already in the map and the frontier may advance.
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		futs := make([]*AppendFuture, 0, inFlight)
		flushOne := func() bool {
			fut := futs[0]
			futs = futs[1:]
			sn, err := fut.Wait(context.Background())
			if err != nil {
				fail(fmt.Errorf("append: %w", err))
				return false
			}
			c := uint64(sn.Counter())
			if prev := frontier.Load(); c <= prev {
				fail(fmt.Errorf("append SNs not monotone: got %v after frontier counter %d", sn, prev))
				return false
			}
			frontier.Store(c)
			return true
		}
		for i := 1; i <= totalAppends; i++ {
			fut := writer.AsyncAppend([][]byte{record(i)}, types.MasterColor)
			// The batch commits as one SN range in submission order, so
			// record i gets SN counter i: index it before the frontier can
			// reach it.
			payloads.Store(types.MakeSN(1, uint32(i)), record(i))
			futs = append(futs, fut)
			if len(futs) >= inFlight {
				if !flushOne() {
					return
				}
			}
		}
		for len(futs) > 0 {
			if !flushOne() {
				return
			}
		}
	}()

	// Trimmer: advances the floor, always publishing it before the trim
	// hits the replicas so readers never mistake a trimmed ⊥ for a hole.
	// Runs until stop, like the readers.
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(3 * time.Millisecond):
			}
			f := frontier.Load()
			if f < floor.Load()+200 {
				continue
			}
			newFloor := f - 150
			floor.Store(newFloor)
			if _, _, err := trimmer.Trim(types.MakeSN(1, uint32(newFloor)), types.MasterColor); err != nil {
				fail(fmt.Errorf("trim: %w", err))
				return
			}
		}
	}()

	for g := 0; g < readers; g++ {
		rc, err := cl.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		readerWG.Add(1)
		go func(rc *Client, seed int64) {
			defer readerWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				lo, hi := floor.Load(), frontier.Load()
				if hi <= lo {
					continue
				}
				sn := types.MakeSN(1, uint32(lo+1+uint64(rng.Int63n(int64(hi-lo)))))
				if rng.Intn(16) == 0 {
					// Probe above the frontier: exercises read-hold. The
					// record or ⊥ are both legal (§6.3).
					sn = types.MakeSN(1, uint32(hi+1))
					data, err := rc.Read(sn, types.MasterColor)
					if err != nil && !errors.Is(err, ErrNotFound) {
						fail(fmt.Errorf("held read %v: %w", sn, err))
						return
					}
					if err == nil {
						if want, ok := payloads.Load(sn); ok && !bytes.Equal(data, want.([]byte)) {
							fail(fmt.Errorf("held read %v returned %q, want %q", sn, data, want))
							return
						}
					}
					continue
				}
				data, err := rc.Read(sn, types.MasterColor)
				if err != nil {
					if errors.Is(err, ErrNotFound) && uint64(sn.Counter()) <= floor.Load() {
						continue // trim raced past the SN we picked
					}
					fail(fmt.Errorf("read %v (floor %d, frontier %d): %w", sn, floor.Load(), frontier.Load(), err))
					return
				}
				want, ok := payloads.Load(sn)
				if !ok {
					fail(fmt.Errorf("read %v returned data for an SN never indexed", sn))
					return
				}
				if !bytes.Equal(data, want.([]byte)) {
					fail(fmt.Errorf("read %v returned %q, want %q", sn, data, want))
					return
				}
			}
		}(rc, int64(g+1))
	}

	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if frontier.Load() == 0 {
		t.Fatal("writer made no progress")
	}

	// The lane actually served the reads: every replica of the shard has
	// lane traffic or the cluster silently fell back to the serial path.
	net := cl.Network()
	laneSeen := false
	for id := range net.NodeReadDelivered() {
		if ls, ok := net.LaneStats(id); ok && ls.Enqueued > 0 {
			laneSeen = true
			break
		}
	}
	if !laneSeen {
		t.Fatal("no read was served through a replica read lane")
	}
}
