package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"flexlog/internal/types"
)

// newSimple builds a single-region cluster with the given shard count and
// one client.
func newSimple(t *testing.T, shards int) (*Cluster, *Client) {
	t.Helper()
	cl, err := SimpleCluster(TestClusterConfig(), shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	return cl, c
}

func TestAppendReadRoundTrip(t *testing.T) {
	_, c := newSimple(t, 1)
	sn, err := c.Append([][]byte{[]byte("hello")}, types.MasterColor)
	if err != nil {
		t.Fatal(err)
	}
	if !sn.Valid() {
		t.Fatal("append returned invalid SN")
	}
	got, err := c.Read(sn, types.MasterColor)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("read = %q", got)
	}
}

func TestAppendBatchGetsLastSN(t *testing.T) {
	_, c := newSimple(t, 1)
	records := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	last, err := c.Append(records, types.MasterColor)
	if err != nil {
		t.Fatal(err)
	}
	// The batch occupies [last-2, last]; each record is readable.
	for i := 0; i < 3; i++ {
		snI := last - types.SN(2-i)
		got, err := c.Read(snI, types.MasterColor)
		if err != nil {
			t.Fatalf("read %v: %v", snI, err)
		}
		if !bytes.Equal(got, records[i]) {
			t.Fatalf("record %d = %q", i, got)
		}
	}
}

func TestAppendEmptyRejected(t *testing.T) {
	_, c := newSimple(t, 1)
	if _, err := c.Append(nil, types.MasterColor); err == nil {
		t.Fatal("empty append should fail")
	}
}

func TestSNsStrictlyIncreasePerColor(t *testing.T) {
	_, c := newSimple(t, 1)
	var prev types.SN
	for i := 0; i < 20; i++ {
		sn, err := c.Append([][]byte{[]byte(fmt.Sprintf("r%d", i))}, types.MasterColor)
		if err != nil {
			t.Fatal(err)
		}
		if sn <= prev {
			t.Fatalf("SN %v not above previous %v", sn, prev)
		}
		prev = sn
	}
}

func TestConcurrentAppendsDistinctSNs(t *testing.T) {
	cl, _ := newSimple(t, 2)
	const clients, per = 4, 25
	var mu sync.Mutex
	seen := make(map[types.SN][]byte)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		c, err := cl.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c *Client, i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				data := []byte(fmt.Sprintf("c%d-%d", i, j))
				sn, err := c.Append([][]byte{data}, types.MasterColor)
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				mu.Lock()
				if prev, dup := seen[sn]; dup {
					t.Errorf("SN %v assigned to both %q and %q", sn, prev, data)
				}
				seen[sn] = data
				mu.Unlock()
			}
		}(c, i)
	}
	wg.Wait()
	if len(seen) != clients*per {
		t.Fatalf("got %d distinct SNs, want %d", len(seen), clients*per)
	}
}

func TestReadNotFound(t *testing.T) {
	_, c := newSimple(t, 2)
	sn, _ := c.Append([][]byte{[]byte("x")}, types.MasterColor)
	// An SN far above the committed frontier: ⊥ after the read hold.
	if _, err := c.Read(sn+1000, types.MasterColor); !errors.Is(err, ErrNotFound) {
		t.Fatalf("future read: %v", err)
	}
}

func TestSubscribeReturnsSortedLog(t *testing.T) {
	_, c := newSimple(t, 3)
	want := make(map[types.SN][]byte)
	for i := 0; i < 30; i++ {
		data := []byte(fmt.Sprintf("rec%02d", i))
		sn, err := c.Append([][]byte{data}, types.MasterColor)
		if err != nil {
			t.Fatal(err)
		}
		want[sn] = data
	}
	recs, err := c.Subscribe(types.MasterColor, types.InvalidSN)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) {
		t.Fatalf("subscribe returned %d records, want %d", len(recs), len(want))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].SN <= recs[i-1].SN {
			t.Fatal("subscribe output not sorted")
		}
	}
	for _, r := range recs {
		if !bytes.Equal(want[r.SN], r.Data) {
			t.Fatalf("record %v = %q, want %q", r.SN, r.Data, want[r.SN])
		}
	}
}

// Property 2 (Stability): s1 from an earlier subscribe is a substring of s2
// from a later subscribe, absent trims.
func TestSubscribeStabilityProperty(t *testing.T) {
	_, c := newSimple(t, 2)
	for i := 0; i < 10; i++ {
		c.Append([][]byte{[]byte(fmt.Sprintf("a%d", i))}, types.MasterColor)
	}
	s1, err := c.Subscribe(types.MasterColor, types.InvalidSN)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Append([][]byte{[]byte(fmt.Sprintf("b%d", i))}, types.MasterColor)
	}
	s2, err := c.Subscribe(types.MasterColor, types.InvalidSN)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2) < len(s1) {
		t.Fatalf("log shrank: %d -> %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i].SN != s2[i].SN || !bytes.Equal(s1[i].Data, s2[i].Data) {
			t.Fatalf("s1 not a prefix of s2 at %d", i)
		}
	}
}

// Property 3 (Append-Visibility): an append that responded before the
// subscribe was invoked must be in the subscription, and readable.
func TestAppendVisibilityProperty(t *testing.T) {
	_, c := newSimple(t, 3)
	for i := 0; i < 20; i++ {
		data := []byte(fmt.Sprintf("v%02d", i))
		sn, err := c.Append([][]byte{data}, types.MasterColor)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Read(sn, types.MasterColor)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("read-after-append %d: %q, %v", i, got, err)
		}
		recs, err := c.Subscribe(types.MasterColor, types.InvalidSN)
		if err != nil {
			t.Fatal(err)
		}
		foundIt := false
		for _, r := range recs {
			if r.SN == sn {
				foundIt = bytes.Equal(r.Data, data)
			}
		}
		if !foundIt {
			t.Fatalf("append %d (sn %v) not visible in subscribe", i, sn)
		}
	}
}

func TestTrim(t *testing.T) {
	_, c := newSimple(t, 2)
	var sns []types.SN
	for i := 0; i < 10; i++ {
		sn, err := c.Append([][]byte{[]byte(fmt.Sprintf("t%d", i))}, types.MasterColor)
		if err != nil {
			t.Fatal(err)
		}
		sns = append(sns, sn)
	}
	head, tail, err := c.Trim(sns[4], types.MasterColor)
	if err != nil {
		t.Fatal(err)
	}
	if head != sns[5] || tail != sns[9] {
		t.Fatalf("bounds after trim = %v, %v; want %v, %v", head, tail, sns[5], sns[9])
	}
	// Trimmed records are ⊥.
	for _, sn := range sns[:5] {
		if _, err := c.Read(sn, types.MasterColor); !errors.Is(err, ErrNotFound) {
			t.Fatalf("read of trimmed %v: %v", sn, err)
		}
	}
	// Survivors intact.
	for i, sn := range sns[5:] {
		got, err := c.Read(sn, types.MasterColor)
		if err != nil || string(got) != fmt.Sprintf("t%d", i+5) {
			t.Fatalf("surviving record %v: %q, %v", sn, got, err)
		}
	}
	// Subscribe excludes trimmed records (Property 3's trim caveat).
	recs, _ := c.Subscribe(types.MasterColor, types.InvalidSN)
	if len(recs) != 5 {
		t.Fatalf("post-trim subscribe = %d records", len(recs))
	}
}

func TestAddColorAndColorIsolation(t *testing.T) {
	cl, c := newSimple(t, 1)
	_ = cl
	if err := c.AddColor(7, types.MasterColor); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := c.AddColor(7, types.MasterColor); err != nil {
		t.Fatal(err)
	}
	sn7, err := c.Append([][]byte{[]byte("seven")}, 7)
	if err != nil {
		t.Fatal(err)
	}
	snM, err := c.Append([][]byte{[]byte("master")}, types.MasterColor)
	if err != nil {
		t.Fatal(err)
	}
	// Color 7's log serves its own records only. Note SNs are per-color
	// (each region has its own sequencer counter), so the same numeric SN
	// may exist in both logs — but it must name different records.
	got, err := c.Read(sn7, 7)
	if err != nil || string(got) != "seven" {
		t.Fatalf("read color 7: %q, %v", got, err)
	}
	if data, err := c.Read(snM, 7); err == nil && string(data) == "master" {
		t.Fatal("master record leaked into color 7")
	}
	got, err = c.Read(snM, types.MasterColor)
	if err != nil || string(got) != "master" {
		t.Fatalf("read master: %q, %v", got, err)
	}
}

func TestTreeClusterLeafAndTotalOrder(t *testing.T) {
	cfg := TestClusterConfig()
	cl, err := TreeCluster(cfg, 2, 1) // master + 2 leaf colors, 1 shard each
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	// Appends to leaf colors are ordered by their leaf sequencers.
	sn1, err := c.Append([][]byte{[]byte("leaf1")}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sn2, err := c.Append([][]byte{[]byte("leaf2")}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Total-order appends to the master region travel the tree to the root.
	snM, err := c.Append([][]byte{[]byte("total")}, types.MasterColor)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		sn    types.SN
		color types.ColorID
		want  string
	}{{sn1, 1, "leaf1"}, {sn2, 2, "leaf2"}, {snM, types.MasterColor, "total"}} {
		got, err := c.Read(tc.sn, tc.color)
		if err != nil || string(got) != tc.want {
			t.Fatalf("read %v/%v = %q, %v", tc.color, tc.sn, got, err)
		}
	}
	// The root sequencer assigned only the master append.
	root := cl.LeaderOf(types.MasterColor)
	if root.Stats().Assigned != 1 {
		t.Fatalf("root assigned = %d, want 1", root.Stats().Assigned)
	}
}

func TestMultiTenancyDistinctColors(t *testing.T) {
	cfg := TestClusterConfig()
	cl, err := TreeCluster(cfg, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	tenantA, _ := cl.NewClient()
	tenantB, _ := cl.NewClient()
	var wg sync.WaitGroup
	for i, tenant := range []*Client{tenantA, tenantB} {
		wg.Add(1)
		go func(c *Client, color types.ColorID) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if _, err := c.Append([][]byte{[]byte(fmt.Sprintf("%v-%d", color, j))}, color); err != nil {
					t.Errorf("tenant %v append: %v", color, err)
					return
				}
			}
		}(tenant, types.ColorID(i+1))
	}
	wg.Wait()
	// Each tenant sees exactly its own records.
	recsA, _ := tenantA.Subscribe(1, types.InvalidSN)
	recsB, _ := tenantB.Subscribe(2, types.InvalidSN)
	if len(recsA) != 20 || len(recsB) != 20 {
		t.Fatalf("tenant logs = %d, %d", len(recsA), len(recsB))
	}
	for _, r := range recsA {
		if string(r.Data[:7]) != "color#1" {
			t.Fatalf("tenant A saw %q", r.Data)
		}
	}
}

func TestMultiAppendAtomic(t *testing.T) {
	cfg := TestClusterConfig()
	cl, err := TreeCluster(cfg, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	c, _ := cl.NewClient()
	// One shard on the master region to act as the broker (special) color.
	if _, err := cl.AddShard(types.MasterColor); err != nil {
		t.Fatal(err)
	}
	sets := [][][]byte{
		{[]byte("to-color-1a"), []byte("to-color-1b")},
		{[]byte("to-color-2")},
	}
	colors := []types.ColorID{1, 2}
	if err := c.MultiAppend(sets, colors, types.MasterColor); err != nil {
		t.Fatal(err)
	}
	// Both colors received their records.
	waitFor := func(color types.ColorID, wants []string) {
		deadline := time.Now().Add(5 * time.Second)
		for {
			recs, err := c.Subscribe(color, types.InvalidSN)
			if err == nil {
				found := 0
				for _, w := range wants {
					for _, r := range recs {
						if string(r.Data) == w {
							found++
							break
						}
					}
				}
				if found == len(wants) {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("color %v never received %v", color, wants)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor(1, []string{"to-color-1a", "to-color-1b"})
	waitFor(2, []string{"to-color-2"})
}

func TestMultiAppendMismatchedArgs(t *testing.T) {
	_, c := newSimple(t, 1)
	if err := c.MultiAppend([][][]byte{{[]byte("x")}}, []types.ColorID{1, 2}, types.MasterColor); err == nil {
		t.Fatal("mismatched sets/colors should fail")
	}
	if err := c.MultiAppend(nil, nil, types.MasterColor); err == nil {
		t.Fatal("empty multi-append should fail")
	}
}

func TestClientClose(t *testing.T) {
	_, c := newSimple(t, 1)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append([][]byte{[]byte("x")}, types.MasterColor); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if _, err := c.Read(1, types.MasterColor); !errors.Is(err, ErrClosed) && !errors.Is(err, ErrTimeout) {
		t.Fatalf("read after close: %v", err)
	}
}

func TestAddColorWithoutBackend(t *testing.T) {
	_, c := newSimple(t, 1)
	c.SetColorAdder(nil)
	if err := c.AddColor(9, types.MasterColor); err == nil {
		t.Fatal("AddColor without backend should fail")
	}
}
