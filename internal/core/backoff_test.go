package core

import (
	"errors"
	"testing"
	"time"
)

func TestBackoffEnvelope(t *testing.T) {
	base := 50 * time.Millisecond
	bo := newBackoff(base, 1)
	env := base
	for i := 0; i < 40; i++ {
		wait := bo.next()
		if wait < base/2 {
			t.Fatalf("attempt %d: wait %s below the %s floor", i, wait, base/2)
		}
		if wait > env {
			t.Fatalf("attempt %d: wait %s above the %s envelope", i, wait, env)
		}
		if env < backoffCapFactor*base {
			env *= 2
			if env > backoffCapFactor*base {
				env = backoffCapFactor * base
			}
		}
	}
	if max := backoffCapFactor * base; bo.env != max {
		t.Fatalf("envelope %s did not converge to the cap %s", bo.env, max)
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	a, b := newBackoff(time.Millisecond, 7), newBackoff(time.Millisecond, 7)
	for i := 0; i < 20; i++ {
		if wa, wb := a.next(), b.next(); wa != wb {
			t.Fatalf("attempt %d: same seed diverged: %s vs %s", i, wa, wb)
		}
	}
	c, d := newBackoff(time.Millisecond, 7), newBackoff(time.Millisecond, 8)
	same := true
	for i := 0; i < 20; i++ {
		if c.next() != d.next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

func TestBackoffDefaultsBase(t *testing.T) {
	bo := newBackoff(0, 1)
	if bo.base != 50*time.Millisecond {
		t.Fatalf("zero base not defaulted: %s", bo.base)
	}
}

// TestBackoffRetryAfter pins the server-hint contract: nextAfter waits
// max(hint, jittered backoff) — a large hint defers the retry past the
// jitter envelope, a small hint leaves the client's own pacing in
// charge — and either way the envelope keeps widening (a hint defers an
// attempt, it does not reset pacing).
func TestBackoffRetryAfter(t *testing.T) {
	base := time.Millisecond

	// A hint above the cap always wins, on every attempt.
	bo := newBackoff(base, 3)
	huge := 10 * backoffCapFactor * base
	for i := 0; i < 10; i++ {
		if wait := bo.nextAfter(huge); wait != huge {
			t.Fatalf("attempt %d: wait %s, want the %s hint verbatim", i, wait, huge)
		}
	}
	if max := backoffCapFactor * base; bo.env != max {
		t.Fatalf("hinted waits froze the envelope at %s, want %s", bo.env, max)
	}

	// A zero hint reproduces the plain jittered sequence exactly.
	a, b := newBackoff(base, 11), newBackoff(base, 11)
	for i := 0; i < 20; i++ {
		if wa, wb := a.next(), b.nextAfter(0); wa != wb {
			t.Fatalf("attempt %d: zero hint diverged from next(): %s vs %s", i, wa, wb)
		}
	}

	// The general shape: never below the hint, never below the jitter
	// floor, never above max(hint, envelope).
	bo = newBackoff(base, 5)
	env := base
	hint := base / 4 // below the floor: backoff pacing stays in charge
	for i := 0; i < 20; i++ {
		wait := bo.nextAfter(hint)
		if wait < hint || wait < base/2 {
			t.Fatalf("attempt %d: wait %s below floor/hint", i, wait)
		}
		upper := env
		if hint > upper {
			upper = hint
		}
		if wait > upper {
			t.Fatalf("attempt %d: wait %s above max(hint, envelope %s)", i, wait, env)
		}
		if env < backoffCapFactor*base {
			env *= 2
			if env > backoffCapFactor*base {
				env = backoffCapFactor * base
			}
		}
	}
}

// TestBackoffRetryAfterHintExtraction pins how retry loops recover the
// hint from an error chain: RetryAfterError carries it through wrapping,
// and the sentinel cause stays matchable with errors.Is.
func TestBackoffRetryAfterHintExtraction(t *testing.T) {
	inner := &RetryAfterError{Err: ErrThrottled, After: 7 * time.Millisecond}
	wrapped := opError("append", 1, 0, inner)
	if got := retryAfterHint(wrapped); got != 7*time.Millisecond {
		t.Fatalf("hint through OpError = %s, want 7ms", got)
	}
	if !errors.Is(wrapped, ErrThrottled) {
		t.Fatal("wrapped RetryAfterError lost the ErrThrottled sentinel")
	}
	if got := retryAfterHint(errors.New("plain")); got != 0 {
		t.Fatalf("hint on a plain error = %s, want 0", got)
	}
}
