package core

import (
	"testing"
	"time"
)

func TestBackoffEnvelope(t *testing.T) {
	base := 50 * time.Millisecond
	bo := newBackoff(base, 1)
	env := base
	for i := 0; i < 40; i++ {
		wait := bo.next()
		if wait < base/2 {
			t.Fatalf("attempt %d: wait %s below the %s floor", i, wait, base/2)
		}
		if wait > env {
			t.Fatalf("attempt %d: wait %s above the %s envelope", i, wait, env)
		}
		if env < backoffCapFactor*base {
			env *= 2
			if env > backoffCapFactor*base {
				env = backoffCapFactor * base
			}
		}
	}
	if max := backoffCapFactor * base; bo.env != max {
		t.Fatalf("envelope %s did not converge to the cap %s", bo.env, max)
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	a, b := newBackoff(time.Millisecond, 7), newBackoff(time.Millisecond, 7)
	for i := 0; i < 20; i++ {
		if wa, wb := a.next(), b.next(); wa != wb {
			t.Fatalf("attempt %d: same seed diverged: %s vs %s", i, wa, wb)
		}
	}
	c, d := newBackoff(time.Millisecond, 7), newBackoff(time.Millisecond, 8)
	same := true
	for i := 0; i < 20; i++ {
		if c.next() != d.next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

func TestBackoffDefaultsBase(t *testing.T) {
	bo := newBackoff(0, 1)
	if bo.base != 50*time.Millisecond {
		t.Fatalf("zero base not defaulted: %s", bo.base)
	}
}
