package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"flexlog/internal/types"
)

// batchedClient creates a client with batching enabled on cl.
func batchedClient(t *testing.T, cl *Cluster, opts ...Option) *Client {
	t.Helper()
	opts = append([]Option{WithBatching(DefaultBatchConfig())}, opts...)
	c, err := cl.NewClient(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestBatchedAppendLinearizable drives many concurrent AppendCtx calls
// through the batching layer and checks the core guarantees survive the
// coalescing: every caller gets a distinct SN, and every SN reads back the
// exact payload that was appended (i.e. the per-caller demux from the
// batch's last SN is correct). Run under -race this also exercises the
// batcher's synchronization.
func TestBatchedAppendLinearizable(t *testing.T) {
	cl, err := SimpleCluster(TestClusterConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	c := batchedClient(t, cl, WithBatching(BatchConfig{
		MaxBatchRecords: 16,
		MaxBatchDelay:   200 * time.Microsecond,
		MaxInFlight:     4,
	}))

	const (
		goroutines = 8
		perG       = 30
	)
	type res struct {
		sn   types.SN
		data []byte
	}
	results := make(chan res, goroutines*perG)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				data := fmt.Appendf(nil, "g%d-%d", g, i)
				sn, err := c.AppendCtx(context.Background(), [][]byte{data}, types.MasterColor)
				if err != nil {
					t.Errorf("append g%d-%d: %v", g, i, err)
					return
				}
				results <- res{sn, data}
			}
		}(g)
	}
	wg.Wait()
	close(results)

	seen := make(map[types.SN][]byte)
	for r := range results {
		if prev, dup := seen[r.sn]; dup {
			t.Fatalf("SN %v assigned to both %q and %q", r.sn, prev, r.data)
		}
		seen[r.sn] = r.data
	}
	if len(seen) != goroutines*perG {
		t.Fatalf("got %d distinct SNs, want %d", len(seen), goroutines*perG)
	}
	for sn, want := range seen {
		got, err := c.Read(sn, types.MasterColor)
		if err != nil {
			t.Fatalf("read %v: %v", sn, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read %v = %q, appended %q", sn, got, want)
		}
	}
	if got := c.Metrics().BatchedAppends.Count(); got != goroutines*perG {
		t.Errorf("BatchedAppends = %d, want %d", got, goroutines*perG)
	}
}

// TestBatchLingerFlush checks the linger timer: a lone append under a
// generous record limit must not wait for company forever — it flushes as
// one single-set batch once MaxBatchDelay elapses.
func TestBatchLingerFlush(t *testing.T) {
	cl, err := SimpleCluster(TestClusterConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	const linger = 10 * time.Millisecond
	c := batchedClient(t, cl, WithBatching(BatchConfig{
		MaxBatchRecords: 1 << 20,
		MaxBatchBytes:   1 << 30,
		MaxBatchDelay:   linger,
		MaxInFlight:     1,
	}))

	start := time.Now()
	sn, err := c.AppendCtx(context.Background(), [][]byte{[]byte("lonely")}, types.MasterColor)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if !sn.Valid() {
		t.Fatalf("invalid SN %v", sn)
	}
	// The single record must have waited out (most of) the linger — if it
	// flushed immediately the timer is not being honored. Allow half to
	// absorb coarse timers.
	if elapsed < linger/2 {
		t.Errorf("append completed in %v, expected to linger ~%v", elapsed, linger)
	}
	if got := c.Metrics().Batches.Count(); got != 1 {
		t.Errorf("Batches = %d, want 1", got)
	}
	if got := c.Metrics().BatchRecords.MaxValue(); got != 1 {
		t.Errorf("batch carried %d records, want 1", got)
	}
}

// TestBatchSizeCutoff checks the size bounds: a full batch flushes
// immediately without waiting out an (here: very long) linger, and the
// byte bound keeps any one batch under MaxBatchBytes when the queued sets
// allow a split.
func TestBatchSizeCutoff(t *testing.T) {
	cl, err := SimpleCluster(TestClusterConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	const maxBytes = 4 << 10
	c := batchedClient(t, cl, WithBatching(BatchConfig{
		MaxBatchRecords: 4,
		MaxBatchBytes:   maxBytes,
		MaxBatchDelay:   time.Second, // must never be waited out
		MaxInFlight:     4,
	}))

	// Record-count cutoff: 4 records fill the batch; the append must
	// complete far sooner than the 1 s linger.
	start := time.Now()
	if _, err := c.AppendCtx(context.Background(),
		[][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d")}, types.MasterColor); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("full batch took %v, expected immediate flush", elapsed)
	}

	// Byte cutoff: one oversized set still flushes immediately (it is
	// never split), and the size histogram records it.
	big := bytes.Repeat([]byte("x"), maxBytes+1)
	start = time.Now()
	if _, err := c.AppendCtx(context.Background(), [][]byte{big}, types.MasterColor); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("oversized batch took %v, expected immediate flush", elapsed)
	}
	if got := c.Metrics().BatchBytes.MaxValue(); got < maxBytes {
		t.Errorf("BatchBytes max = %d, want >= %d", got, maxBytes)
	}

	// Concurrent small sets must split into multiple batches rather than
	// exceed the record bound: 8 callers x 2 records with MaxBatchRecords=4
	// needs at least 4 batches.
	before := c.Metrics().Batches.Count()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			data := fmt.Appendf(nil, "s%d", g)
			if _, err := c.AppendCtx(context.Background(), [][]byte{data, data}, types.MasterColor); err != nil {
				t.Errorf("append %d: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
	if got := c.Metrics().Batches.Count() - before; got < 4 {
		t.Errorf("16 records in %d batches, record bound 4 requires >= 4", got)
	}
	if got := c.Metrics().BatchRecords.MaxValue(); got > 4+1 { // +1: one oversized single set is legal
		// Only multi-set batches are bounded; the earlier oversized set was
		// a single record, so any max above the bound means a bad cut.
		t.Errorf("a batch carried %d records, bound is 4", got)
	}
}

// TestBatchedAppendCtxCancel checks that a context deadline releases the
// caller promptly even while its batch lingers: Wait returns the context
// error wrapped in *OpError.
func TestBatchedAppendCtxCancel(t *testing.T) {
	cl, err := SimpleCluster(TestClusterConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	c := batchedClient(t, cl, WithBatching(BatchConfig{
		MaxBatchRecords: 1 << 20,
		MaxBatchDelay:   time.Second, // far beyond the ctx deadline
		MaxInFlight:     1,
	}))

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.AppendCtx(ctx, [][]byte{[]byte("doomed")}, types.MasterColor)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	var oe *OpError
	if !errors.As(err, &oe) || oe.Op != "append" {
		t.Fatalf("err = %#v, want *OpError{Op: append}", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("cancellation took %v, want ~20ms", elapsed)
	}
}

// TestAsyncAppendFutures submits a burst of AsyncAppends and collects the
// futures: all must resolve with distinct SNs and the records must read
// back. Also covers the immediate-failure future for empty appends.
func TestAsyncAppendFutures(t *testing.T) {
	cl, err := SimpleCluster(TestClusterConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	c := batchedClient(t, cl)

	const n = 20
	futs := make([]*AppendFuture, n)
	payload := func(i int) []byte { return fmt.Appendf(nil, "async-%d", i) }
	for i := range futs {
		futs[i] = c.AsyncAppend([][]byte{payload(i)}, types.MasterColor)
	}
	seen := make(map[types.SN]bool)
	for i, f := range futs {
		sn, err := f.Wait(context.Background())
		if err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
		if seen[sn] {
			t.Fatalf("future %d: duplicate SN %v", i, sn)
		}
		seen[sn] = true
		got, err := c.Read(sn, types.MasterColor)
		if err != nil {
			t.Fatalf("read %v: %v", sn, err)
		}
		if !bytes.Equal(got, payload(i)) {
			t.Fatalf("future %d: read %q, appended %q", i, got, payload(i))
		}
	}

	f := c.AsyncAppend(nil, types.MasterColor)
	select {
	case <-f.Done():
	default:
		t.Fatal("empty AsyncAppend future not immediately resolved")
	}
	if _, err := f.Wait(context.Background()); err == nil {
		t.Fatal("empty AsyncAppend succeeded")
	}
}

// TestBatchShardCrashFailsEveryCaller is the chaos case: a shard crashes
// mid-batch and every coalesced caller must receive its own error — a
// typed *OpError wrapping ErrTimeout — rather than hanging or getting a
// neighbor's result.
func TestBatchShardCrashFailsEveryCaller(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	cl, err := SimpleCluster(TestClusterConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	c := batchedClient(t, cl,
		WithTimeout(300*time.Millisecond),
		WithBatching(BatchConfig{
			MaxBatchRecords: 64,
			MaxBatchDelay:   5 * time.Millisecond,
			MaxInFlight:     2,
		}))

	// Warm up: prove the path works before the fault.
	if _, err := c.AppendCtx(context.Background(), [][]byte{[]byte("warmup")}, types.MasterColor); err != nil {
		t.Fatalf("warmup append: %v", err)
	}

	// Take the whole shard down: crash and isolate every replica so no
	// batch can commit or be acked.
	shards := cl.Topology().ShardsInRegion(types.MasterColor)
	if len(shards) != 1 {
		t.Fatalf("want 1 shard, have %d", len(shards))
	}
	for _, r := range cl.Replicas(shards[0].ID) {
		r.Crash()
		cl.Network().Isolate(r.ID())
	}

	const callers = 8
	errs := make(chan error, callers)
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			data := fmt.Appendf(nil, "doomed-%d", g)
			_, err := c.AppendCtx(context.Background(), [][]byte{data}, types.MasterColor)
			errs <- err
		}(g)
	}
	wg.Wait()
	close(errs)

	got := 0
	for err := range errs {
		got++
		if err == nil {
			t.Fatal("append against a fully crashed shard succeeded")
		}
		var oe *OpError
		if !errors.As(err, &oe) {
			t.Fatalf("err %v is not a *OpError", err)
		}
		if oe.Op != "append" || oe.Color != types.MasterColor {
			t.Fatalf("OpError = %+v, want Op=append Color=%v", oe, types.MasterColor)
		}
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("err %v does not wrap ErrTimeout", err)
		}
	}
	if got != callers {
		t.Fatalf("%d callers reported, want %d", got, callers)
	}
}

// TestBatchedClientClose checks shutdown: queued batched appends fail with
// ErrClosed instead of hanging.
func TestBatchedClientClose(t *testing.T) {
	cl, err := SimpleCluster(TestClusterConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	c := batchedClient(t, cl, WithBatching(BatchConfig{
		MaxBatchRecords: 1 << 20,
		MaxBatchDelay:   time.Minute, // queue until Close
		MaxInFlight:     1,
	}))

	fut := c.AsyncAppend([][]byte{[]byte("stranded")}, types.MasterColor)
	time.Sleep(5 * time.Millisecond) // let the batcher pick the set up
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := fut.Wait(waitCtx); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if _, err := c.AppendCtx(context.Background(), [][]byte{[]byte("late")}, types.MasterColor); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: err = %v, want ErrClosed", err)
	}
}

// TestConnectOptions covers the v2 constructor: auto-allocated ids, option
// application, and interoperability with cluster-created clients.
func TestConnectOptions(t *testing.T) {
	cl, err := SimpleCluster(TestClusterConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)

	c1, err := Connect(cl.Topology(), cl.Network(),
		WithTimeout(2*time.Second),
		WithRetryInterval(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c1.Close() })
	c2, err := Connect(cl.Topology(), cl.Network(), WithFID(777))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c2.Close() })
	if c2.FID() != 777 {
		t.Fatalf("FID = %d, want 777", c2.FID())
	}
	if c1.cfg.ID == c2.cfg.ID || c1.cfg.ID == 0 {
		t.Fatalf("auto node ids not distinct: %v vs %v", c1.cfg.ID, c2.cfg.ID)
	}
	if c1.cfg.Timeout != 2*time.Second || c1.cfg.RetryInterval != 20*time.Millisecond {
		t.Fatalf("options not applied: %+v", c1.cfg)
	}

	sn, err := c1.Append([][]byte{[]byte("via-connect")}, types.MasterColor)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.Read(sn, types.MasterColor)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("via-connect")) {
		t.Fatalf("read %q", got)
	}
}

// TestOpErrorShape pins down the typed-error contract on the unbatched
// paths too: ErrNotFound from Read and context cancellation from TrimCtx
// both surface as *OpError.
func TestOpErrorShape(t *testing.T) {
	cl, err := SimpleCluster(TestClusterConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}

	_, err = c.Read(types.MakeSN(1, 999), types.MasterColor)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("read of absent SN: %v, want ErrNotFound", err)
	}
	var oe *OpError
	if !errors.As(err, &oe) || oe.Op != "read" {
		t.Fatalf("read error %#v, want *OpError{Op: read}", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.AppendCtx(ctx, [][]byte{[]byte("x")}, types.MasterColor); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled append: %v, want context.Canceled", err)
	}
	if _, _, err := c.TrimCtx(ctx, types.MakeSN(1, 1), types.MasterColor); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled trim: %v, want context.Canceled", err)
	}
	if err := c.MultiAppendCtx(ctx, [][][]byte{{[]byte("x")}}, []types.ColorID{types.MasterColor}, types.MasterColor); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled multi-append: %v, want context.Canceled", err)
	}
}
