package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"flexlog/internal/replica"
	"flexlog/internal/types"
)

// TestRecoveryConvergesWithConcurrentTrim races a replica's crash/recovery
// sync-phase against a trim of the same color: the recovered replica must
// converge on the trimmed frontier — it must neither resurrect trimmed
// records (its sync fetch skips SNs at or below the frontier) nor lose
// acked ones above it.
func TestRecoveryConvergesWithConcurrentTrim(t *testing.T) {
	cl, c := newSimpleNoFailover(t, 1)
	sh, err := cl.Topology().Shard(1)
	if err != nil {
		t.Fatal(err)
	}

	const n = 40
	sns := make([]types.SN, n)
	payloads := make(map[types.SN]string, n)
	for i := 0; i < n; i++ {
		payload := fmt.Sprintf("tr-%03d", i)
		sn, err := c.Append([][]byte{[]byte(payload)}, types.MasterColor)
		if err != nil {
			t.Fatal(err)
		}
		sns[i] = sn
		payloads[sn] = payload
	}
	frontier := sns[n/2]

	victim := cl.Replica(sh.Replicas[0])
	victim.Crash()
	cl.Network().Isolate(victim.ID())

	// Fire the trim while the victim is down, then recover concurrently:
	// the trim barrier needs ALL region replicas, so it completes only
	// during (or after) the victim's sync-phase — the exact race under test.
	trimDone := make(chan error, 1)
	go func() {
		_, _, err := c.Trim(frontier, types.MasterColor)
		trimDone <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the trim reach the live replicas
	cl.Network().Rejoin(victim.ID())
	if err := victim.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := <-trimDone; err != nil {
		t.Fatalf("trim racing recovery failed: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for victim.Mode() != replica.ModeOperational {
		if time.Now().After(deadline) {
			t.Fatalf("victim stuck in mode %v", victim.Mode())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The recovered replica's own storage must reflect the frontier.
	st := victim.Store()
	if got := st.Trimmed(types.MasterColor); got < frontier {
		t.Fatalf("recovered replica trim frontier %v, want >= %v", got, frontier)
	}
	for _, sn := range sns {
		data, err := st.Get(types.MasterColor, sn)
		if sn <= frontier {
			if err == nil {
				t.Fatalf("recovered replica resurrected trimmed SN %v", sn)
			}
			continue
		}
		if err != nil {
			t.Fatalf("recovered replica lost acked SN %v: %v", sn, err)
		}
		if string(data) != payloads[sn] {
			t.Fatalf("SN %v holds %q, want %q", sn, data, payloads[sn])
		}
	}

	// And the cluster-level read view agrees: trimmed SNs read ⊥,
	// surviving SNs read their payloads.
	for _, sn := range sns {
		data, err := c.Read(sn, types.MasterColor)
		if sn <= frontier {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("read of trimmed SN %v: got (%q, %v), want ErrNotFound", sn, data, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("read of surviving SN %v: %v", sn, err)
		}
		if string(data) != payloads[sn] {
			t.Fatalf("read of SN %v returned %q, want %q", sn, data, payloads[sn])
		}
	}
}
