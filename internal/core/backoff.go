package core

import (
	"math/rand"
	"time"
)

// backoff paces the client's re-broadcast loops: a capped exponential
// envelope with full jitter. Attempt n waits uniformly in
// [base/2, min(cap, base·2^n)] — the jitter decorrelates the retry storms
// of many clients hammering a recovering shard in lockstep, the cap keeps
// a long outage probed every few intervals rather than minutes apart, and
// the base/2 floor keeps each wait a meaningful response window (the same
// timer doubles as the ack wait in every retry loop).
type backoff struct {
	base time.Duration
	cap  time.Duration
	env  time.Duration // current envelope: min(cap, base·2^attempt)
	rng  *rand.Rand
}

// backoffCapFactor bounds the envelope at this multiple of the base
// retry interval.
const backoffCapFactor = 16

// newBackoff derives a per-operation backoff from the client's seeded
// rng: pacing is reproducible for a fixed client seed, yet decorrelated
// across concurrent operations of the same client.
func (c *Client) newBackoff() *backoff {
	c.mu.Lock()
	seed := c.rng.Int63()
	c.mu.Unlock()
	return newBackoff(c.cfg.RetryInterval, seed)
}

func newBackoff(base time.Duration, seed int64) *backoff {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	return &backoff{
		base: base,
		cap:  backoffCapFactor * base,
		env:  base,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// next returns the wait before the following re-broadcast and widens the
// envelope for the attempt after it.
func (b *backoff) next() time.Duration {
	floor := b.base / 2
	wait := floor + time.Duration(b.rng.Int63n(int64(b.env-floor)+1))
	if b.env < b.cap {
		b.env *= 2
		if b.env > b.cap {
			b.env = b.cap
		}
	}
	return wait
}

// nextAfter is next with a server retry-after hint folded in: the wait is
// max(hint, jittered backoff). The envelope still widens — a hint defers
// the retry, it does not reset the client's own pacing.
func (b *backoff) nextAfter(hint time.Duration) time.Duration {
	wait := b.next()
	if hint > wait {
		return hint
	}
	return wait
}
