package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"flexlog/internal/obs"
	"flexlog/internal/qos"
	"flexlog/internal/replica"
	"flexlog/internal/seq"
	"flexlog/internal/storage"
	"flexlog/internal/topology"
	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// Node-id allocation bands for the in-process deployment.
const (
	replicaIDBase   types.NodeID = 1
	sequencerIDBase types.NodeID = 10_000
	clientIDBase    types.NodeID = 100_000
)

// ClusterConfig sizes an in-process FlexLog deployment.
type ClusterConfig struct {
	// Link is the network model (transport.DatacenterLink for benches,
	// transport.ZeroLink for tests).
	Link transport.LinkModel
	// Storage configures every replica's storage stack.
	Storage storage.Config
	// ReplicationFactor is the number of replicas per shard (default 3,
	// as in the paper's evaluation).
	ReplicationFactor int
	// SeqBackups is the number of backup nodes per sequencer (2f; default
	// 2, tolerating one failure).
	SeqBackups int
	// BatchInterval is the sequencer aggregation window (paper: 1 µs).
	BatchInterval time.Duration
	// HeartbeatInterval / FailureTimeout / RetryTimeout tune failure
	// detection for tests vs benches.
	HeartbeatInterval time.Duration
	FailureTimeout    time.Duration
	RetryTimeout      time.Duration
	// ReadHoldTimeout is the replica read-hold window (§6.3; paper: 1 ms).
	ReadHoldTimeout time.Duration
	// ReadWorkers sizes each replica's concurrent read/subscribe lane; 0
	// serves reads inline on the serialized delivery loop (the pre-lane
	// behavior, kept as the ablation baseline).
	ReadWorkers int
	// WriteWorkers sizes each replica's keyed write lane (appends/commits
	// pinned to a worker by color); 0 keeps mutations on the serialized
	// delivery loop (the ablation baseline).
	WriteWorkers int
	// SeqWorkers sizes each sequencer's keyed order lane (order traffic
	// pinned to a worker by color); 0 keeps ordering on the serialized
	// delivery loop (the ablation baseline).
	SeqWorkers int
	// GroupCommit enables the storage layer's PM group-commit engine:
	// concurrent persistence waits fold into shared transactions.
	GroupCommit bool
	// OrderCoalesce batches each replica's order requests per color for
	// OrderBatchInterval before shipping them as one OrderReqBatch.
	OrderCoalesce      bool
	OrderBatchInterval time.Duration
	// ClientTimeout bounds client operations.
	ClientTimeout time.Duration
	// ClientBatch, when non-zero, enables the append batching & pipelining
	// layer on every client the cluster creates (overridable per client
	// with WithBatching/WithoutBatching options).
	ClientBatch BatchConfig
	// Obs, when set, wires the whole deployment into one observability
	// registry: every replica (and through it, its storage stack), every
	// sequencer, and the network's delivery/fault counters.
	Obs *obs.Registry
	// TraceSlow and TraceRing tune each replica's slow-request ring (see
	// replica.Config); zero keeps the defaults.
	TraceSlow time.Duration
	TraceRing int
	// Tenants declares the deployment's multi-tenant QoS envelopes: per-
	// tenant weighted-fair lane shares, token-bucket admission rates, and
	// color ownership for ordering-layer accounting (DESIGN.md §13). Empty
	// runs without QoS — legacy blocking lanes, no admission control.
	Tenants []qos.TenantConfig
}

// TestClusterConfig returns a latency-free configuration with fast failure
// detection, for unit and integration tests.
func TestClusterConfig() ClusterConfig {
	return ClusterConfig{
		Link:              transport.ZeroLink(),
		Storage:           storage.TestConfig(),
		ReplicationFactor: 3,
		SeqBackups:        2,
		BatchInterval:     0,
		HeartbeatInterval: 3 * time.Millisecond,
		// Generous relative to the heartbeat so CPU-contention hiccups in
		// tests do not trigger spurious failovers: a new leader cannot
		// serve until ALL region replicas ack its SeqInit (§5.2), so a
		// spurious failover while any replica is crashed stalls the
		// region — faithful to the paper, but not what a test that
		// crashes replicas wants to exercise.
		FailureTimeout:  60 * time.Millisecond,
		RetryTimeout:    30 * time.Millisecond,
		ReadHoldTimeout: 5 * time.Millisecond,
		ReadWorkers:     4,
		WriteWorkers:    4,
		SeqWorkers:      4,
		GroupCommit:     true,
		ClientTimeout:   10 * time.Second,
	}
}

// BenchClusterConfig returns the calibrated configuration used by the
// evaluation harness: datacenter link latencies, Optane PM storage, 1 µs
// sequencer batching — the setup of §9 "Experimental Setup".
func BenchClusterConfig() ClusterConfig {
	cfg := TestClusterConfig()
	cfg.Link = transport.DatacenterLink()
	cfg.Storage = storage.DefaultConfig()
	cfg.BatchInterval = time.Microsecond
	cfg.HeartbeatInterval = 10 * time.Millisecond
	cfg.FailureTimeout = 100 * time.Millisecond
	cfg.RetryTimeout = 200 * time.Millisecond
	cfg.ReadHoldTimeout = time.Millisecond // §6.3: "a timeout of 1 ms is safe"
	cfg.ReadWorkers = 16                   // the testbed's spare cores per replica
	cfg.WriteWorkers = 16
	cfg.SeqWorkers = 16
	cfg.GroupCommit = true
	cfg.OrderCoalesce = true
	cfg.OrderBatchInterval = time.Microsecond // match the sequencer window (§9.1)
	return cfg
}

// Cluster is a complete in-process FlexLog deployment: network, topology,
// sequencer tree and shards, plus factories for clients.
type Cluster struct {
	cfg  ClusterConfig
	net  *transport.Network
	topo *topology.Topology

	mu        sync.Mutex
	seqs      map[types.NodeID]*seq.Sequencer
	replicas  map[types.NodeID]*replica.Replica
	clients   []*Client
	nextRepl  types.NodeID
	nextSeq   types.NodeID
	nextCli   types.NodeID
	nextShard types.ShardID
}

// NewCluster creates an empty deployment; add regions and shards next.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 3
	}
	cl := &Cluster{
		cfg:       cfg,
		net:       transport.NewNetwork(cfg.Link),
		topo:      topology.New(),
		seqs:      make(map[types.NodeID]*seq.Sequencer),
		replicas:  make(map[types.NodeID]*replica.Replica),
		nextRepl:  replicaIDBase,
		nextSeq:   sequencerIDBase,
		nextCli:   clientIDBase,
		nextShard: 1,
	}
	cl.net.PublishObs(cfg.Obs)
	return cl
}

// Network exposes the in-process fabric for fault injection.
func (cl *Cluster) Network() *transport.Network { return cl.net }

// Topology exposes the shared layout.
func (cl *Cluster) Topology() *topology.Topology { return cl.topo }

// AddRegion declares a color and spawns its sequencer group (leader +
// SeqBackups backups). The first region added is the master region.
func (cl *Cluster) AddRegion(color, parent types.ColorID) error {
	cl.mu.Lock()
	leaderID := cl.nextSeq
	backupIDs := make([]types.NodeID, cl.cfg.SeqBackups)
	for i := range backupIDs {
		backupIDs[i] = leaderID + types.NodeID(i) + 1
	}
	cl.nextSeq += types.NodeID(cl.cfg.SeqBackups) + 1
	cl.mu.Unlock()

	if err := cl.topo.AddRegion(color, parent, leaderID, backupIDs); err != nil {
		return err
	}
	mk := func(id types.NodeID, leader bool) error {
		scfg := seq.DefaultConfig()
		scfg.ID = id
		scfg.Region = color
		scfg.Topo = cl.topo
		scfg.BatchInterval = cl.cfg.BatchInterval
		scfg.HeartbeatInterval = cl.cfg.HeartbeatInterval
		scfg.FailureTimeout = cl.cfg.FailureTimeout
		scfg.RetryTimeout = cl.cfg.RetryTimeout
		scfg.StartAsLeader = leader
		scfg.TenantOf = qos.ColorMap(cl.cfg.Tenants)
		scfg.OrderWorkers = cl.cfg.SeqWorkers
		s, err := seq.New(scfg, cl.net)
		if err != nil {
			return err
		}
		s.PublishObs(cl.cfg.Obs)
		cl.mu.Lock()
		cl.seqs[id] = s
		cl.mu.Unlock()
		return nil
	}
	if err := mk(leaderID, true); err != nil {
		return err
	}
	for _, id := range backupIDs {
		if err := mk(id, false); err != nil {
			return err
		}
	}
	return nil
}

// AddShard attaches a new shard (ReplicationFactor replicas) to the given
// leaf color and returns its id.
func (cl *Cluster) AddShard(leaf types.ColorID) (types.ShardID, error) {
	return cl.AddShardWithReplicas(leaf, cl.cfg.ReplicationFactor)
}

// AddShardWithReplicas attaches a shard with an explicit replica count
// (used by the Fig. 8 replication-factor sweep).
func (cl *Cluster) AddShardWithReplicas(leaf types.ColorID, replicas int) (types.ShardID, error) {
	if replicas <= 0 {
		return 0, fmt.Errorf("core: replication factor must be positive")
	}
	cl.mu.Lock()
	shardID := cl.nextShard
	cl.nextShard++
	ids := make([]types.NodeID, replicas)
	for i := range ids {
		ids[i] = cl.nextRepl
		cl.nextRepl++
	}
	cl.mu.Unlock()

	if err := cl.topo.AddShard(shardID, leaf, ids); err != nil {
		return 0, err
	}
	for _, id := range ids {
		if _, err := cl.buildReplica(id, shardID); err != nil {
			return 0, err
		}
	}
	return shardID, nil
}

// buildReplica constructs one replica process from the cluster config and
// registers it; it does NOT touch the topology.
func (cl *Cluster) buildReplica(id types.NodeID, shardID types.ShardID) (*replica.Replica, error) {
	rcfg := replica.DefaultConfig()
	rcfg.ID = id
	rcfg.Shard = shardID
	rcfg.Topo = cl.topo
	rcfg.Store = cl.cfg.Storage
	rcfg.Store.GroupCommit = cl.cfg.GroupCommit
	rcfg.ReadHoldTimeout = cl.cfg.ReadHoldTimeout
	rcfg.ReadWorkers = cl.cfg.ReadWorkers
	rcfg.WriteWorkers = cl.cfg.WriteWorkers
	rcfg.OrderCoalesce = cl.cfg.OrderCoalesce
	rcfg.OrderBatchInterval = cl.cfg.OrderBatchInterval
	rcfg.HeartbeatInterval = cl.cfg.HeartbeatInterval
	rcfg.RetryTimeout = cl.cfg.RetryTimeout
	rcfg.Obs = cl.cfg.Obs
	rcfg.TraceSlow = cl.cfg.TraceSlow
	rcfg.TraceRing = cl.cfg.TraceRing
	rcfg.Tenants = cl.cfg.Tenants
	r, err := replica.New(rcfg, cl.net)
	if err != nil {
		return nil, err
	}
	cl.mu.Lock()
	cl.replicas[id] = r
	cl.mu.Unlock()
	return r, nil
}

// SpawnReplica creates a replica process for a shard WITHOUT adding it to
// the shard's membership — step one of the control plane's replica-add
// (DESIGN.md §15). Clients cannot address the node until the controller
// promotes it into the topology; until then it catches up from a donor.
func (cl *Cluster) SpawnReplica(shard types.ShardID) (types.NodeID, error) {
	if _, err := cl.topo.Shard(shard); err != nil {
		return 0, err
	}
	cl.mu.Lock()
	id := cl.nextRepl
	cl.nextRepl++
	cl.mu.Unlock()
	if _, err := cl.buildReplica(id, shard); err != nil {
		return 0, err
	}
	return id, nil
}

// RemoveReplicaNode stops a replica process and releases its resources —
// the final cutover of a drain, or the rollback of an abandoned join. The
// caller must already have removed the node from the topology.
func (cl *Cluster) RemoveReplicaNode(id types.NodeID) error {
	cl.mu.Lock()
	r := cl.replicas[id]
	delete(cl.replicas, id)
	cl.mu.Unlock()
	if r == nil {
		return fmt.Errorf("core: unknown replica %v", id)
	}
	r.Stop()
	cl.net.Deregister(id)
	r.Store().Close()
	return nil
}

// AddColor provisions a new colored region under parent with one shard —
// the dynamic Table 2 AddColor operation. Implements ColorAdder.
func (cl *Cluster) AddColor(color, parent types.ColorID) error {
	if cl.topo.HasColor(color) {
		return nil // idempotent: creating an existing color is a no-op
	}
	if err := cl.AddRegion(color, parent); err != nil {
		return err
	}
	_, err := cl.AddShard(color)
	return err
}

// NewClient creates a client handle with a fresh FID. Options are applied
// on top of the cluster defaults (ClientTimeout, RetryTimeout,
// ClientBatch).
func (cl *Cluster) NewClient(opts ...Option) (*Client, error) {
	cl.mu.Lock()
	id := cl.nextCli
	cl.nextCli++
	fid := uint32(id - clientIDBase + 1)
	cl.mu.Unlock()
	ccfg := ClientConfig{
		FID:     fid,
		ID:      id,
		Topo:    cl.topo,
		Timeout: cl.cfg.ClientTimeout,
		Batch:   cl.cfg.ClientBatch,
	}
	if cl.cfg.RetryTimeout > 0 {
		ccfg.RetryInterval = cl.cfg.RetryTimeout
	}
	c, err := NewClient(ccfg, cl.net, opts...)
	if err != nil {
		return nil, err
	}
	c.SetColorAdder(cl)
	cl.mu.Lock()
	cl.clients = append(cl.clients, c)
	cl.mu.Unlock()
	return c, nil
}

// Replica returns a replica by node id (fault injection in tests).
func (cl *Cluster) Replica(id types.NodeID) *replica.Replica {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.replicas[id]
}

// Replicas returns the replicas of a shard in id order.
func (cl *Cluster) Replicas(shard types.ShardID) []*replica.Replica {
	sh, err := cl.topo.Shard(shard)
	if err != nil {
		return nil
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	out := make([]*replica.Replica, 0, len(sh.Replicas))
	for _, id := range sh.Replicas {
		if r := cl.replicas[id]; r != nil {
			out = append(out, r)
		}
	}
	return out
}

// Sequencer returns a sequencer node by id.
func (cl *Cluster) Sequencer(id types.NodeID) *seq.Sequencer {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.seqs[id]
}

// RestartSequencer replaces a crashed sequencer process with a fresh
// backup on the same node id: the old endpoint is torn down and a new
// node joins the group with empty state, as a restarted process would.
// The chaos engine pairs this with Sequencer.Crash to exercise §5.2
// leader failover followed by group repair.
func (cl *Cluster) RestartSequencer(id types.NodeID) error {
	cl.mu.Lock()
	old := cl.seqs[id]
	cl.mu.Unlock()
	if old == nil {
		return fmt.Errorf("core: unknown sequencer %v", id)
	}
	old.Stop()
	cl.net.Deregister(id)
	scfg := seq.DefaultConfig()
	scfg.ID = id
	scfg.Region = old.Region()
	scfg.Topo = cl.topo
	scfg.BatchInterval = cl.cfg.BatchInterval
	scfg.HeartbeatInterval = cl.cfg.HeartbeatInterval
	scfg.FailureTimeout = cl.cfg.FailureTimeout
	scfg.RetryTimeout = cl.cfg.RetryTimeout
	scfg.StartAsLeader = false
	scfg.TenantOf = qos.ColorMap(cl.cfg.Tenants)
	scfg.OrderWorkers = cl.cfg.SeqWorkers
	// Rejoin at the epoch the group has reached so the fresh process does
	// not grant stale claims from before its crash.
	scfg.InitialEpoch = old.Epoch()
	s, err := seq.New(scfg, cl.net)
	if err != nil {
		return err
	}
	// Re-publishing under the same identity replaces the scrape closures,
	// so the fresh process's counters show up instead of the dead one's.
	s.PublishObs(cl.cfg.Obs)
	cl.mu.Lock()
	cl.seqs[id] = s
	cl.mu.Unlock()
	return nil
}

// LeaderOf returns the currently-serving leader sequencer of a color.
func (cl *Cluster) LeaderOf(color types.ColorID) *seq.Sequencer {
	leader, err := cl.topo.Leader(color)
	if err != nil {
		return nil
	}
	return cl.Sequencer(leader)
}

// SequencersOf returns all sequencer nodes (leader + backups) of a color.
func (cl *Cluster) SequencersOf(color types.ColorID) []*seq.Sequencer {
	si, err := cl.topo.Sequencer(color)
	if err != nil {
		return nil
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var out []*seq.Sequencer
	for _, id := range si.Members {
		if s := cl.seqs[id]; s != nil {
			out = append(out, s)
		}
	}
	return out
}

// Stop shuts every node down.
func (cl *Cluster) Stop() {
	cl.mu.Lock()
	seqs := make([]*seq.Sequencer, 0, len(cl.seqs))
	for _, s := range cl.seqs {
		seqs = append(seqs, s)
	}
	reps := make([]*replica.Replica, 0, len(cl.replicas))
	for _, r := range cl.replicas {
		reps = append(reps, r)
	}
	clients := cl.clients
	cl.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
	for _, s := range seqs {
		s.Stop()
	}
	for _, r := range reps {
		r.Stop()
	}
	// Release everything the nodes leave behind: the stores' background
	// committers/lifecycles and the transport's delivery + lane worker
	// goroutines. Stores stay readable and stats stay queryable after
	// Stop; only further writes fail.
	for _, r := range reps {
		r.Store().Close()
	}
	cl.net.Shutdown()
}

// Obs returns the registry the cluster publishes into (nil when
// observability is off).
func (cl *Cluster) Obs() *obs.Registry { return cl.cfg.Obs }

// Tracers collects every replica's request tracers for the debug server.
func (cl *Cluster) Tracers() []*obs.Tracer {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var out []*obs.Tracer
	for _, r := range cl.replicas {
		out = append(out, r.Tracers()...)
	}
	return out
}

// LaneSnapshots reports every replica's transport lane state for
// /debug/lanes: the read lane and the keyed write lane per node. The
// write-lane Drops column carries the replica's append drops (persistence
// failures), the closest thing a lane has to a loss counter.
func (cl *Cluster) LaneSnapshots() []obs.LaneSnapshot {
	cl.mu.Lock()
	ids := make([]types.NodeID, 0, len(cl.replicas))
	for id := range cl.replicas {
		ids = append(ids, id)
	}
	cl.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []obs.LaneSnapshot
	for _, id := range ids {
		node := fmt.Sprintf("%d", id)
		if ls, ok := cl.net.LaneStats(id); ok {
			out = append(out, obs.LaneSnapshot{
				Node: node, Lane: "read",
				Enqueued: ls.Enqueued, Dequeued: ls.Dequeued,
				MaxDepth: ls.MaxDepth, Busy: ls.Busy, Shed: ls.Shed,
			})
		}
		if ws, ok := cl.net.WriteLaneStats(id); ok {
			var drops uint64
			if r := cl.Replica(id); r != nil {
				drops = r.Stats().AppendDrops
			}
			out = append(out, obs.LaneSnapshot{
				Node: node, Lane: "write",
				Enqueued: ws.Enqueued, Dequeued: ws.Dequeued,
				MaxDepth: ws.MaxDepth, Busy: ws.Busy, Drops: drops, Shed: ws.Shed,
			})
		}
	}
	return out
}

// MuxConfig assembles the debug-server configuration for this cluster —
// what cmd/flexlog-server passes to obs.Serve.
func (cl *Cluster) MuxConfig() obs.MuxConfig {
	return obs.MuxConfig{
		Registry: cl.cfg.Obs,
		Tracers:  cl.Tracers(),
		Lanes:    cl.LaneSnapshots,
	}
}

// SimpleCluster builds the common single-region deployment: the master
// color with `shards` shards, each with the configured replication factor.
func SimpleCluster(cfg ClusterConfig, shards int) (*Cluster, error) {
	cl := NewCluster(cfg)
	if err := cl.AddRegion(types.MasterColor, types.MasterColor); err != nil {
		return nil, err
	}
	for i := 0; i < shards; i++ {
		if _, err := cl.AddShard(types.MasterColor); err != nil {
			return nil, err
		}
	}
	return cl, nil
}

// TreeCluster builds the paper's Figure 2 style deployment: a master
// region with `leaves` child regions, each child with `shardsPerLeaf`
// shards attached.
func TreeCluster(cfg ClusterConfig, leaves, shardsPerLeaf int) (*Cluster, error) {
	cl := NewCluster(cfg)
	if err := cl.AddRegion(types.MasterColor, types.MasterColor); err != nil {
		return nil, err
	}
	for leaf := 1; leaf <= leaves; leaf++ {
		color := types.ColorID(leaf)
		if err := cl.AddRegion(color, types.MasterColor); err != nil {
			return nil, err
		}
		for s := 0; s < shardsPerLeaf; s++ {
			if _, err := cl.AddShard(color); err != nil {
				return nil, err
			}
		}
	}
	return cl, nil
}
