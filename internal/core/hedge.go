package core

import (
	"sort"
	"sync"
	"time"

	"flexlog/internal/proto"
	"flexlog/internal/topology"
	"flexlog/internal/types"
)

// Hedged reads (DESIGN.md §13.4): when a read round's primary replicas are
// slow, the client clones the outstanding ReadReq to a second replica of
// each shard and takes whichever response arrives first. The hedge fires
// after a delay derived from the client's observed read latency (P99 of
// recent rounds), so hedges target genuine stragglers, and total hedge
// volume is budget-capped so a degraded cluster sees at most a bounded
// request amplification.

// HedgeConfig tunes client-side read hedging. The zero value disables it;
// enable with WithHedging.
type HedgeConfig struct {
	// Delay is the straggler threshold: how long a read round may stay
	// unanswered before the request is cloned to backup replicas. 0 derives
	// the threshold from the observed read P99 (no hedging until enough
	// rounds have been sampled).
	Delay time.Duration
	// BudgetPercent caps hedged rounds as a percentage of all read rounds
	// (≤0 defaults to 10 when hedging is enabled via WithHedging). The
	// budget keeps a uniformly slow cluster from doubling its read load.
	BudgetPercent int
}

// enabled reports whether hedging was configured at all.
func (h HedgeConfig) enabled() bool { return h.Delay > 0 || h.BudgetPercent > 0 }

// latencyRingSize bounds the read-latency sample ring backing the adaptive
// hedge delay.
const latencyRingSize = 128

// minHedgeSamples is how many completed rounds the adaptive delay needs
// before it trusts its P99 (a cold client never hedges).
const minHedgeSamples = 16

// latencyTracker is a fixed ring of recent read-round latencies.
type latencyTracker struct {
	mu   sync.Mutex
	ring [latencyRingSize]time.Duration
	n    int // total samples recorded (ring index = n % size)
}

func (t *latencyTracker) record(d time.Duration) {
	t.mu.Lock()
	t.ring[t.n%latencyRingSize] = d
	t.n++
	t.mu.Unlock()
}

// p99 returns the 99th-percentile recent latency, or 0 while fewer than
// minHedgeSamples rounds have completed.
func (t *latencyTracker) p99() time.Duration {
	t.mu.Lock()
	n := t.n
	if n > latencyRingSize {
		n = latencyRingSize
	}
	if n < minHedgeSamples {
		t.mu.Unlock()
		return 0
	}
	buf := make([]time.Duration, n)
	copy(buf, t.ring[:n])
	t.mu.Unlock()
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := n * 99 / 100
	if idx >= n {
		idx = n - 1
	}
	return buf[idx]
}

// hedgeDelay resolves the straggler threshold for the next read round; 0
// means "do not hedge this round".
func (c *Client) hedgeDelay() time.Duration {
	h := c.cfg.Hedge
	if !h.enabled() {
		return 0
	}
	if h.Delay > 0 {
		return h.Delay
	}
	return c.readLat.p99()
}

// hedgeAllowed checks the hedge budget: hedged rounds must stay under
// BudgetPercent of all read rounds.
func (c *Client) hedgeAllowed() bool {
	pct := c.cfg.Hedge.BudgetPercent
	if pct <= 0 {
		return false
	}
	return c.hedges.Load()*100 < c.readRounds.Load()*uint64(pct)
}

// HedgedReads returns how many read rounds this client has hedged.
func (c *Client) HedgedReads() uint64 { return c.hedges.Load() }

// sendHedges clones an outstanding read to one extra replica per shard
// (distinct from the round's primary target). The backups are registered
// in the wait's shard map first, so their responses participate in the
// round's per-shard accounting: the first response per shard counts,
// duplicates are absorbed.
func (c *Client) sendHedges(w *readWait, req proto.ReadReq, shards []topology.ShardInfo, primary []types.NodeID) {
	var backups []types.NodeID
	c.mu.Lock()
	if w.closed || c.closed {
		c.mu.Unlock()
		return
	}
	for i, sh := range shards {
		if len(sh.Replicas) < 2 {
			continue
		}
		var alt types.NodeID
		off := c.rng.Intn(len(sh.Replicas))
		for j := 0; j < len(sh.Replicas); j++ {
			cand := sh.Replicas[(off+j)%len(sh.Replicas)]
			if cand != primary[i] {
				alt = cand
				break
			}
		}
		if alt == 0 {
			continue
		}
		if _, dup := w.shardOf[alt]; dup {
			continue
		}
		w.shardOf[alt] = i
		backups = append(backups, alt)
	}
	c.mu.Unlock()
	if len(backups) == 0 {
		return
	}
	c.hedges.Add(1)
	for _, t := range backups {
		c.ep.Send(t, req)
	}
}
