package core

import (
	"fmt"
	"testing"
	"time"

	"flexlog/internal/types"
)

// multiCluster builds a deployment with two target colors and a dedicated
// broker shard on the master region.
func multiCluster(t *testing.T) (*Cluster, *Client) {
	t.Helper()
	cl, err := TreeCluster(TestClusterConfig(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	if _, err := cl.AddShard(types.MasterColor); err != nil {
		t.Fatal(err)
	}
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	return cl, c
}

func countIn(t *testing.T, c *Client, color types.ColorID, want string) int {
	t.Helper()
	recs, err := c.Subscribe(color, types.InvalidSN)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, r := range recs {
		if string(r.Data) == want {
			n++
		}
	}
	return n
}

// TestMultiAppendExactlyOnceAcrossRetries: client-side retries of the end
// marker and concurrent broker replays must not duplicate records in the
// target colors (§7: "append operations are idempotent; the client's
// tokens uniquely identify the records").
func TestMultiAppendExactlyOnceAcrossRetries(t *testing.T) {
	_, c := multiCluster(t)
	for round := 0; round < 5; round++ {
		a := fmt.Sprintf("a-%d", round)
		b := fmt.Sprintf("b-%d", round)
		err := c.MultiAppend(
			[][][]byte{{[]byte(a)}, {[]byte(b)}},
			[]types.ColorID{1, 2}, types.MasterColor)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Replays from the other broker replicas may still be in flight; wait
	// for stability then check exactly-once.
	time.Sleep(100 * time.Millisecond)
	for round := 0; round < 5; round++ {
		if n := countIn(t, c, 1, fmt.Sprintf("a-%d", round)); n != 1 {
			t.Fatalf("color 1 has %d copies of a-%d", n, round)
		}
		if n := countIn(t, c, 2, fmt.Sprintf("b-%d", round)); n != 1 {
			t.Fatalf("color 2 has %d copies of b-%d", n, round)
		}
	}
}

// TestMultiAppendClientStopsBeforeEnd: a client that stages records but
// never sends the end marker publishes nothing to the target colors
// (§7: "Since the replicas never receive the special end message, none of
// the records are appended to any color").
func TestMultiAppendClientStopsBeforeEnd(t *testing.T) {
	cl, c := multiCluster(t)
	// Stage manually: append the staged payloads to the broker color but
	// never broadcast MultiAppendEnd — exactly what a client crash between
	// Alg. 2 line 4 and line 5 leaves behind.
	staged := stagedPayload(t, 1, c.FID(), "orphan-a")
	if _, err := c.Append([][]byte{staged}, types.MasterColor); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if n := countIn(t, c, 1, "orphan-a"); n != 0 {
		t.Fatalf("staged-only record leaked into color 1 (%d copies)", n)
	}
	_ = cl
}

// TestMultiAppendSurvivesBrokerReplicaCrash: if one broker replica crashes
// after the end marker, the remaining replicas' replays still deliver all
// sets (f=1 of 3 tolerated, §7).
func TestMultiAppendSurvivesBrokerReplicaCrash(t *testing.T) {
	cl, c := multiCluster(t)
	// Find the broker shard (the master-region shard added last).
	shards := cl.Topology().ShardsInRegion(types.MasterColor)
	var broker types.ShardID
	for _, sh := range shards {
		if sh.Leaf == types.MasterColor {
			broker = sh.ID
		}
	}
	if broker == 0 {
		t.Fatal("no broker shard")
	}
	brokerReplicas := cl.Replicas(broker)

	done := make(chan error, 1)
	go func() {
		done <- c.MultiAppend(
			[][][]byte{{[]byte("crash-a")}, {[]byte("crash-b")}},
			[]types.ColorID{1, 2}, types.MasterColor)
	}()
	// Crash one broker replica while the multi-append runs. The staging
	// appends need all three replicas, so crash only after a short delay
	// gives a mix of outcomes across runs — both must preserve atomicity.
	time.Sleep(2 * time.Millisecond)
	victim := brokerReplicas[2]
	victim.Crash()
	cl.Network().Isolate(victim.ID())

	select {
	case err := <-done:
		if err != nil {
			// The crash landed during staging: the operation could not
			// complete (appends block on replica failure). Nothing may
			// have leaked into the targets.
			time.Sleep(50 * time.Millisecond)
			na, nb := countIn(t, c, 1, "crash-a"), countIn(t, c, 2, "crash-b")
			if na != 0 || nb != 0 {
				// Partial-visibility check: either both or neither.
				if na == 0 || nb == 0 {
					t.Fatalf("atomicity violated after failed multi-append: a=%d b=%d", na, nb)
				}
			}
			return
		}
	case <-time.After(30 * time.Second):
		t.Fatal("multi-append hung")
	}
	// Acked: both targets must (eventually) contain their records.
	deadline := time.Now().Add(5 * time.Second)
	for {
		na, nb := countIn(t, c, 1, "crash-a"), countIn(t, c, 2, "crash-b")
		if na >= 1 && nb >= 1 {
			if na != 1 || nb != 1 {
				t.Fatalf("duplicates after broker crash: a=%d b=%d", na, nb)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("acked multi-append incomplete: a=%d b=%d", na, nb)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// stagedPayload builds the broker-color payload for one record set (test
// mirror of the client's staging encoder).
func stagedPayload(t *testing.T, target types.ColorID, fid uint32, data string) []byte {
	t.Helper()
	// Reuse the replica package's public encoder through the client path:
	// core imports replica, so encode directly.
	return encodeStagedForTest(target, fid, [][]byte{[]byte(data)})
}
