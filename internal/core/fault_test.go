package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"flexlog/internal/replica"
	"flexlog/internal/seq"
	"flexlog/internal/types"
)

// newSimpleNoFailover builds a cluster whose sequencers effectively never
// suspect their leader: tests that crash REPLICAS for extended windows use
// it, because per §5.2 a new sequencer cannot serve until every region
// replica acks its SeqInit — so a host-scheduling-induced spurious
// failover while a replica is down stalls the region until that replica
// recovers, deadlocking tests that only want to exercise replica recovery.
func newSimpleNoFailover(t *testing.T, shards int) (*Cluster, *Client) {
	t.Helper()
	cfg := TestClusterConfig()
	cfg.FailureTimeout = 30 * time.Second
	cl, err := SimpleCluster(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	return cl, c
}

// TestReplicaCrashRecoverySyncsState is the §6.3 replica-recovery scenario:
// a replica crashes, the shard keeps committing (it can't — appends to that
// shard block, so we use another shard), the replica recovers, the
// sync-phase converges the shard, and appends flow again.
func TestReplicaCrashRecoverySyncsState(t *testing.T) {
	cl, c := newSimpleNoFailover(t, 1)
	sh, err := cl.Topology().Shard(1)
	if err != nil {
		t.Fatal(err)
	}

	// Seed some records.
	var sns []types.SN
	for i := 0; i < 5; i++ {
		sn, err := c.Append([][]byte{[]byte(fmt.Sprintf("pre%d", i))}, types.MasterColor)
		if err != nil {
			t.Fatal(err)
		}
		sns = append(sns, sn)
	}

	victim := cl.Replica(sh.Replicas[0])
	victim.Crash()
	cl.Network().Isolate(victim.ID())
	if victim.Mode() != replica.ModeCrashed {
		t.Fatalf("victim mode = %v", victim.Mode())
	}

	// Appends to this (only) shard block while a replica is down — §4:
	// "upon replicas' failures we choose to sacrifice availability".
	quick, _ := cl.NewClient()
	quick.cfg.Timeout = 200 * time.Millisecond
	if _, err := quick.Append([][]byte{[]byte("blocked")}, types.MasterColor); err == nil {
		t.Fatal("append should block while a replica is down")
	}

	// Recover: rejoin the network and run the sync-phase.
	cl.Network().Rejoin(victim.ID())
	if err := victim.Recover(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for victim.Mode() != replica.ModeOperational {
		if time.Now().After(deadline) {
			t.Fatalf("victim stuck in %v", victim.Mode())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// All pre-crash records still readable; new appends work.
	for i, sn := range sns {
		got, err := c.Read(sn, types.MasterColor)
		if err != nil || string(got) != fmt.Sprintf("pre%d", i) {
			t.Fatalf("pre-crash record %d: %q, %v", i, got, err)
		}
	}
	sn, err := c.Append([][]byte{[]byte("post")}, types.MasterColor)
	if err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	got, err := c.Read(sn, types.MasterColor)
	if err != nil || string(got) != "post" {
		t.Fatalf("post-recovery read: %q, %v", got, err)
	}
	// The recovered replica's own store converged to the full log.
	if victim.Store().MaxSN(types.MasterColor) < sn {
		t.Fatal("victim store did not converge")
	}
}

// TestLaggingReplicaCatchesUpViaSync verifies the §6.3 fetch path: a
// replica that missed commits (crashed before they happened) fetches them
// from the most up-to-date peer during its sync-phase.
func TestLaggingReplicaCatchesUpViaSync(t *testing.T) {
	// Two shards so appends continue while one shard's replica is down.
	cl, c := newSimpleNoFailover(t, 2)
	sh, _ := cl.Topology().Shard(1)
	victim := cl.Replica(sh.Replicas[1])

	// A few records into shard 1 specifically (bypass random choice by
	// appending until shard 1's replicas hold something).
	seed := func(n int) []types.SN {
		var out []types.SN
		for len(out) < n {
			sn, err := c.Append([][]byte{[]byte(fmt.Sprintf("s%d", len(out)))}, types.MasterColor)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, sn)
		}
		return out
	}
	seed(10)
	before := victim.Store().MaxSN(types.MasterColor)

	victim.Crash()
	cl.Network().Isolate(victim.ID())
	// Keep appending: the other shard still accepts (random shard choice
	// retries may hit the broken shard and stall; use a dedicated client
	// with its own rng until enough new records landed on shard 2).
	w, _ := cl.NewClient()
	w.cfg.Timeout = 300 * time.Millisecond
	extra := 0
	for extra < 10 {
		if _, err := w.Append([][]byte{[]byte(fmt.Sprintf("x%d", extra))}, types.MasterColor); err == nil {
			extra++
		}
	}

	cl.Network().Rejoin(victim.ID())
	if err := victim.Recover(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for victim.Mode() != replica.ModeOperational {
		if time.Now().After(deadline) {
			t.Fatalf("victim stuck in %v", victim.Mode())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The victim's peers in shard 1 never saw the new records (they went
	// to shard 2), so its frontier only needs to match its own shard; but
	// everything it had before the crash must survive.
	if victim.Store().MaxSN(types.MasterColor) < before {
		t.Fatalf("victim lost records: %v < %v", victim.Store().MaxSN(types.MasterColor), before)
	}
	// End-to-end: the full log is still consistent for readers.
	recs, err := c.Subscribe(types.MasterColor, types.InvalidSN)
	if err != nil {
		t.Fatal(err)
	}
	// At least the 10 seeds and 10 acknowledged extras must be present;
	// timed-out appends that still committed on live replicas are legal
	// extras (an incomplete operation may or may not take effect).
	if len(recs) < 20 {
		t.Fatalf("subscribe found %d records, want >= 20", len(recs))
	}
}

// TestShardDivergenceHealsOnSync creates real divergence inside one shard
// (one replica misses a commit) and verifies the sync-phase fetch repairs
// it.
func TestShardDivergenceHealsOnSync(t *testing.T) {
	cl, c := newSimpleNoFailover(t, 1)
	sh, _ := cl.Topology().Shard(1)
	lagger := cl.Replica(sh.Replicas[2])

	// Volume of records, then crash the lagger and let it miss nothing —
	// instead simulate divergence by crashing DURING load: run appends in
	// the background and crash mid-way.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 30; i++ {
			c.Append([][]byte{[]byte(fmt.Sprintf("d%02d", i))}, types.MasterColor)
		}
	}()
	<-done

	// Crash + recover; sync-phase must converge the shard so that all
	// three replicas have identical committed frontiers.
	lagger.Crash()
	cl.Network().Isolate(lagger.ID())
	time.Sleep(10 * time.Millisecond)
	cl.Network().Rejoin(lagger.ID())
	if err := lagger.Recover(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for lagger.Mode() != replica.ModeOperational {
		if time.Now().After(deadline) {
			t.Fatalf("lagger stuck in %v", lagger.Mode())
		}
		time.Sleep(2 * time.Millisecond)
	}
	frontier := lagger.Store().MaxSN(types.MasterColor)
	for _, id := range sh.Replicas {
		if got := cl.Replica(id).Store().MaxSN(types.MasterColor); got != frontier {
			t.Fatalf("replica %v frontier %v != %v", id, got, frontier)
		}
	}
	// And the shard serves appends again.
	if _, err := c.Append([][]byte{[]byte("after")}, types.MasterColor); err != nil {
		t.Fatal(err)
	}
}

// TestSequencerFailoverEndToEnd kills the leaf/root sequencer under load
// and verifies appends resume under the new epoch with larger SNs.
func TestSequencerFailoverEndToEnd(t *testing.T) {
	cl, c := newSimple(t, 1)
	before, err := c.Append([][]byte{[]byte("before")}, types.MasterColor)
	if err != nil {
		t.Fatal(err)
	}

	leader := cl.LeaderOf(types.MasterColor)
	leader.Crash()
	cl.Network().Isolate(leader.ID())

	// A new leader must be elected, initialize the replicas, and serve.
	deadline := time.Now().Add(10 * time.Second)
	var newLeader *seq.Sequencer
	for newLeader == nil {
		if time.Now().After(deadline) {
			t.Fatal("no new sequencer leader")
		}
		for _, s := range cl.SequencersOf(types.MasterColor) {
			if s != leader && s.Serving() {
				newLeader = s
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if newLeader.Epoch() < 2 {
		t.Fatalf("new epoch = %d", newLeader.Epoch())
	}

	// Appends flow again and land strictly above every old SN.
	after, err := c.Append([][]byte{[]byte("after")}, types.MasterColor)
	if err != nil {
		t.Fatalf("append after failover: %v", err)
	}
	if after <= before {
		t.Fatalf("post-failover SN %v not above %v", after, before)
	}
	if after.Epoch() < 2 {
		t.Fatalf("post-failover SN epoch = %d", after.Epoch())
	}
	// Old records still readable.
	got, err := c.Read(before, types.MasterColor)
	if err != nil || string(got) != "before" {
		t.Fatalf("pre-failover record: %q, %v", got, err)
	}
	got, err = c.Read(after, types.MasterColor)
	if err != nil || string(got) != "after" {
		t.Fatalf("post-failover record: %q, %v", got, err)
	}
}

// TestAppendsBlockedDuringFailoverEventuallyComplete starts an append
// while the sequencer is down; the append must complete once the new
// leader serves (replica OReq retry path).
func TestAppendsBlockedDuringFailoverEventuallyComplete(t *testing.T) {
	if raceEnabled {
		t.Skip("failover-timing test skipped under the race detector")
	}
	cl, c := newSimple(t, 1)
	leader := cl.LeaderOf(types.MasterColor)
	leader.Crash()
	cl.Network().Isolate(leader.ID())

	type result struct {
		sn  types.SN
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		sn, err := c.Append([][]byte{[]byte("during")}, types.MasterColor)
		resCh <- result{sn, err}
	}()
	select {
	case res := <-resCh:
		if res.err != nil {
			t.Fatalf("append during failover failed: %v", res.err)
		}
		got, err := c.Read(res.sn, types.MasterColor)
		if err != nil || !bytes.Equal(got, []byte("during")) {
			t.Fatalf("read after failover append: %q, %v", got, err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("append never completed across failover")
	}
}

// TestHoleReadsReturnBottom verifies §6.3 hole management: SNs that were
// never assigned a record answer ⊥ while later SNs answer values.
func TestHoleReadsReturnBottom(t *testing.T) {
	cl, c := newSimple(t, 1)
	// Force an epoch bump mid-stream to create a hole between the last
	// epoch-1 SN and the first epoch-2 SN.
	sn1, err := c.Append([][]byte{[]byte("one")}, types.MasterColor)
	if err != nil {
		t.Fatal(err)
	}
	leader := cl.LeaderOf(types.MasterColor)
	leader.Crash()
	cl.Network().Isolate(leader.ID())
	sn2, err := c.Append([][]byte{[]byte("two")}, types.MasterColor)
	if err != nil {
		t.Fatal(err)
	}
	if sn2.Epoch() == sn1.Epoch() {
		t.Skip("failover did not interleave; no hole to test")
	}
	// Every SN strictly between sn1 and sn2 is a hole: reads return ⊥
	// but do not violate linearizability (r(i)=⊥, r(j)≠⊥ with i<j is
	// allowed, §6.3).
	hole := sn1 + 1
	if _, err := c.Read(hole, types.MasterColor); err == nil {
		t.Fatal("hole read returned a value")
	}
	got, err := c.Read(sn2, types.MasterColor)
	if err != nil || string(got) != "two" {
		t.Fatalf("read above hole: %q, %v", got, err)
	}
}

// TestConcurrentReplicaRecoveries exercises the multi-run sync-phase: two
// replicas of the same shard crash together and recover simultaneously,
// each coordinating its own sync run; all runs must complete, the shard
// converge, and appends resume.
func TestConcurrentReplicaRecoveries(t *testing.T) {
	cl, c := newSimpleNoFailover(t, 1)
	sh, _ := cl.Topology().Shard(1)
	for i := 0; i < 5; i++ {
		if _, err := c.Append([][]byte{fmt.Appendf(nil, "seed-%d", i)}, types.MasterColor); err != nil {
			t.Fatal(err)
		}
	}
	v1 := cl.Replica(sh.Replicas[0])
	v2 := cl.Replica(sh.Replicas[1])
	for _, v := range []*replica.Replica{v1, v2} {
		v.Crash()
		cl.Network().Isolate(v.ID())
	}
	time.Sleep(10 * time.Millisecond)
	for _, v := range []*replica.Replica{v1, v2} {
		cl.Network().Rejoin(v.ID())
	}
	// Recover both at the same time: their sync runs overlap.
	errs := make(chan error, 2)
	go func() { errs <- v1.Recover() }()
	go func() { errs <- v2.Recover() }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, v := range []*replica.Replica{v1, v2} {
		for v.Mode() != replica.ModeOperational {
			if time.Now().After(deadline) {
				t.Fatalf("replica %v stuck in %v after concurrent recovery", v.ID(), v.Mode())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	// The shard converged and serves.
	sn, err := c.Append([][]byte{[]byte("post-concurrent")}, types.MasterColor)
	if err != nil {
		t.Fatalf("append after concurrent recovery: %v", err)
	}
	got, err := c.Read(sn, types.MasterColor)
	if err != nil || string(got) != "post-concurrent" {
		t.Fatalf("read = %q, %v", got, err)
	}
	frontier := v1.Store().MaxSN(types.MasterColor)
	for _, id := range sh.Replicas {
		if got := cl.Replica(id).Store().MaxSN(types.MasterColor); got != frontier {
			t.Fatalf("replica %v frontier %v != %v", id, got, frontier)
		}
	}
}
