package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"flexlog/internal/replica"
	"flexlog/internal/types"
)

// TestChaosCrashRecoveryUnderLoad drives continuous appends and reads
// while replicas crash and recover (and, once, the sequencer leader
// fails over), then checks the §7 safety properties on the survivors:
//
//   - every acknowledged append is readable with its exact payload;
//   - no two acknowledged appends share a sequence number;
//   - the final subscribe is sorted, duplicate-free, and contains every
//     acknowledged record.
func TestChaosCrashRecoveryUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing-sensitive chaos run skipped under the race detector")
	}
	cfg := TestClusterConfig()
	cl, err := SimpleCluster(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)

	type acked struct {
		sn   types.SN
		data []byte
	}
	var mu sync.Mutex
	var ackedAppends []acked

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers: keep appending; only acknowledged appends are recorded.
	const writers = 3
	for w := 0; w < writers; w++ {
		c, err := cl.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		c.cfg.Timeout = 500 * time.Millisecond
		wg.Add(1)
		go func(w int, c *Client) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				data := fmt.Appendf(nil, "w%d-%d", w, i)
				sn, err := c.Append([][]byte{data}, types.MasterColor)
				if err != nil {
					continue // blocked by a fault; fine
				}
				mu.Lock()
				ackedAppends = append(ackedAppends, acked{sn, data})
				mu.Unlock()
			}
		}(w, c)
	}

	// Reader: continuously re-reads a random acknowledged record; a read
	// may time out during faults but must never return wrong data.
	readerC, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	readerC.cfg.Timeout = 500 * time.Millisecond
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			if len(ackedAppends) == 0 {
				mu.Unlock()
				time.Sleep(time.Millisecond)
				continue
			}
			pick := ackedAppends[rng.Intn(len(ackedAppends))]
			mu.Unlock()
			got, err := readerC.Read(pick.sn, types.MasterColor)
			if err == nil && !bytes.Equal(got, pick.data) {
				t.Errorf("read %v returned %q, acked %q", pick.sn, got, pick.data)
				return
			}
		}
	}()

	// Chaos: crash/recover replicas; one sequencer failover mid-run.
	rng := rand.New(rand.NewSource(99))
	shards := cl.Topology().ShardsInRegion(types.MasterColor)
	crashedSeq := false
	for round := 0; round < 6; round++ {
		time.Sleep(60 * time.Millisecond)
		if round == 3 && !crashedSeq {
			leader := cl.LeaderOf(types.MasterColor)
			if leader != nil {
				leader.Crash()
				cl.Network().Isolate(leader.ID())
				crashedSeq = true
			}
			continue
		}
		sh := shards[rng.Intn(len(shards))]
		victim := cl.Replica(sh.Replicas[rng.Intn(len(sh.Replicas))])
		if victim.Mode() != replica.ModeOperational {
			continue
		}
		victim.Crash()
		cl.Network().Isolate(victim.ID())
		time.Sleep(time.Duration(rng.Intn(40)+10) * time.Millisecond)
		cl.Network().Rejoin(victim.ID())
		if err := victim.Recover(); err != nil {
			t.Errorf("recover: %v", err)
		}
	}

	// Quiesce: heal, let recoveries finish, stop load.
	cl.Network().HealAll()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Wait for every replica to return to operational mode.
	deadline := time.Now().Add(10 * time.Second)
	for _, sh := range shards {
		for _, id := range sh.Replicas {
			for cl.Replica(id).Mode() != replica.ModeOperational {
				if time.Now().After(deadline) {
					t.Fatalf("replica %v stuck in %v", id, cl.Replica(id).Mode())
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
	}

	mu.Lock()
	final := append([]acked(nil), ackedAppends...)
	mu.Unlock()
	if len(final) == 0 {
		t.Fatal("chaos run acknowledged no appends at all")
	}
	t.Logf("chaos: %d acknowledged appends across faults", len(final))

	// Invariant: distinct SNs.
	bySN := make(map[types.SN][]byte, len(final))
	for _, a := range final {
		if prev, dup := bySN[a.sn]; dup && !bytes.Equal(prev, a.data) {
			t.Fatalf("SN %v acknowledged for %q and %q", a.sn, prev, a.data)
		}
		bySN[a.sn] = a.data
	}

	// Invariant: all acked records readable with exact payloads.
	verifier, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range final {
		got, err := verifier.Read(a.sn, types.MasterColor)
		if err != nil {
			t.Fatalf("acked record %v unreadable after chaos: %v", a.sn, err)
		}
		if !bytes.Equal(got, a.data) {
			t.Fatalf("acked record %v = %q, want %q", a.sn, got, a.data)
		}
	}

	// Invariant: subscribe is sorted, duplicate-free, and complete.
	recs, err := verifier.Subscribe(types.MasterColor, types.InvalidSN)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[types.SN]bool, len(recs))
	for i, r := range recs {
		if i > 0 && recs[i-1].SN >= r.SN {
			t.Fatal("subscribe not strictly sorted")
		}
		seen[r.SN] = true
	}
	for sn := range bySN {
		if !seen[sn] {
			t.Fatalf("acked SN %v missing from subscribe", sn)
		}
	}
}
