package core

import (
	"context"
	"fmt"
	"testing"

	"flexlog/internal/transport"
	"flexlog/internal/types"
)

// checkExactlyOnce asserts the color's committed log holds each expected
// payload exactly once and nothing else, with unique SNs.
func checkExactlyOnce(t *testing.T, c *Client, color types.ColorID, want map[string]bool) {
	t.Helper()
	recs, err := c.Subscribe(color, types.InvalidSN)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	sns := make(map[types.SN]bool)
	for _, r := range recs {
		counts[string(r.Data)]++
		if sns[r.SN] {
			t.Fatalf("SN %v assigned to two records", r.SN)
		}
		sns[r.SN] = true
	}
	for payload := range want {
		if counts[payload] != 1 {
			t.Errorf("payload %q appended %d times, want exactly 1", payload, counts[payload])
		}
	}
	if len(recs) != len(want) {
		t.Fatalf("log holds %d records, want %d", len(recs), len(want))
	}
}

// TestDuplicatedAppendReqNotDoubleAppended is the dup-delivery regression:
// with every message duplicated (DupProb=1) each AppendReq arrives at each
// replica at least twice, and the replica's token dedup must commit the
// records once. The duplicated acks must likewise leave the client's
// waiter state intact.
func TestDuplicatedAppendReqNotDoubleAppended(t *testing.T) {
	cl, c := newSimpleNoFailover(t, 1)
	net := cl.Network()
	net.SetFaultSeed(11)
	net.SetDefaultFaults(transport.FaultModel{DupProb: 1})

	const n = 25
	want := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		payload := fmt.Sprintf("dup-%03d", i)
		if _, err := c.Append([][]byte{[]byte(payload)}, types.MasterColor); err != nil {
			t.Fatal(err)
		}
		want[payload] = true
	}
	if st := net.FaultStats(); st.Dups == 0 {
		t.Fatal("fault model injected no duplicates — test exercised nothing")
	}
	net.ClearFaults()
	checkExactlyOnce(t, c, types.MasterColor, want)
}

// TestDuplicatedAppendBatchReqNotDoubleAppended covers the batched append
// path: a duplicated AppendBatchReq must not commit its record sets twice.
func TestDuplicatedAppendBatchReqNotDoubleAppended(t *testing.T) {
	cl, _ := newSimpleNoFailover(t, 1)
	net := cl.Network()
	net.SetFaultSeed(13)
	net.SetDefaultFaults(transport.FaultModel{DupProb: 1})

	c, err := cl.NewClient(WithBatching(DefaultBatchConfig()))
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	futs := make([]*AppendFuture, 0, n)
	want := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		payload := fmt.Sprintf("bdup-%03d", i)
		futs = append(futs, c.AsyncAppend([][]byte{[]byte(payload)}, types.MasterColor))
		want[payload] = true
	}
	for _, f := range futs {
		if _, err := f.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if st := net.FaultStats(); st.Dups == 0 {
		t.Fatal("fault model injected no duplicates — test exercised nothing")
	}
	net.ClearFaults()
	checkExactlyOnce(t, c, types.MasterColor, want)
}
