package core

import (
	"context"
	"os"
	"strings"
	"testing"
	"time"

	"flexlog/internal/obs"
	"flexlog/internal/types"
)

// buildObsCluster deploys a small observed cluster and exercises every
// path that registers metrics: appends (batch + direct), reads, a trim,
// and a registry scrape — the union of what a real deployment exposes.
func buildObsCluster(t *testing.T) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry()
	obs.RegisterProcess(reg)
	cfg := TestClusterConfig()
	cfg.Obs = reg
	cfg.TraceSlow = time.Nanosecond // everything is "slow": exercise the ring
	cl, err := SimpleCluster(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace("append")
	ctx := obs.WithTrace(context.Background(), tr)
	var lastSN types.SN
	for i := 0; i < 20; i++ {
		sn, err := c.AppendCtx(ctx, [][]byte{[]byte("obs")}, types.MasterColor)
		if err != nil {
			t.Fatal(err)
		}
		lastSN = sn
	}
	tr.Finish()
	if _, err := c.ReadCtx(context.Background(), lastSN, types.MasterColor); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Trim(0, types.MasterColor); err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestOperationsDocCoversMetrics is the doc-drift gate of OPERATIONS.md:
// every metric family a full deployment registers must appear by name in
// the operator handbook. Adding a metric without documenting it fails
// here.
func TestOperationsDocCoversMetrics(t *testing.T) {
	reg := buildObsCluster(t)
	doc, err := os.ReadFile("../../OPERATIONS.md")
	if err != nil {
		t.Fatalf("reading OPERATIONS.md: %v", err)
	}
	fams := reg.Families()
	if len(fams) < 40 {
		t.Fatalf("only %d metric families registered; the cluster exercise lost coverage", len(fams))
	}
	var missing []string
	for _, name := range fams {
		if !strings.Contains(string(doc), name) {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		t.Errorf("OPERATIONS.md does not document %d metric families:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
}

// TestClusterObsEndToEnd checks the observed cluster's exposition and
// debug surfaces carry real data: counters moved, stage histograms
// recorded, lanes visible, and a slow append shows its per-stage
// breakdown in some replica's trace ring.
func TestClusterObsEndToEnd(t *testing.T) {
	reg := buildObsCluster(t)
	snap := reg.Snapshot()
	for _, want := range []string{
		"flexlog_replica_appends_total",
		"flexlog_replica_commits_total",
		"flexlog_seq_assigned_total",
		"flexlog_store_cache_hits_total",
		"flexlog_pm_ops_total",
		"flexlog_net_delivered_total",
		"flexlog_trace_total_seconds",
		`flexlog_trace_stage_seconds{node=`,
	} {
		if !strings.Contains(snap, want) {
			t.Errorf("exposition is missing %s", want)
		}
	}
}
