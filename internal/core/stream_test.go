package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"flexlog/internal/types"
)

func TestSubscribeChanStreamsExistingAndNew(t *testing.T) {
	_, c := newSimple(t, 2)
	for i := 0; i < 5; i++ {
		if _, err := c.Append([][]byte{fmt.Appendf(nil, "pre-%d", i)}, types.MasterColor); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := c.SubscribeChan(ctx, types.MasterColor, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Existing records arrive first, in order.
	var got []string
	deadline := time.After(5 * time.Second)
	for len(got) < 5 {
		select {
		case r := <-ch:
			got = append(got, string(r.Data))
		case <-deadline:
			t.Fatalf("existing records not streamed; got %v", got)
		}
	}
	for i, g := range got {
		if g != fmt.Sprintf("pre-%d", i) {
			t.Fatalf("stream order broken at %d: %q", i, g)
		}
	}
	// New appends keep flowing.
	if _, err := c.Append([][]byte{[]byte("live")}, types.MasterColor); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-ch:
		if string(r.Data) != "live" {
			t.Fatalf("live record = %q", r.Data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("live append never streamed")
	}
}

func TestSubscribeChanNoDuplicates(t *testing.T) {
	_, c := newSimple(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := c.SubscribeChan(ctx, types.MasterColor, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	go func() {
		for i := 0; i < n; i++ {
			c.Append([][]byte{fmt.Appendf(nil, "r%02d", i)}, types.MasterColor)
		}
	}()
	seen := make(map[types.SN]bool)
	deadline := time.After(10 * time.Second)
	for len(seen) < n {
		select {
		case r := <-ch:
			if seen[r.SN] {
				t.Fatalf("duplicate SN %v streamed", r.SN)
			}
			seen[r.SN] = true
		case <-deadline:
			t.Fatalf("stream stalled at %d/%d", len(seen), n)
		}
	}
}

func TestSubscribeChanCloseOnCancel(t *testing.T) {
	_, c := newSimple(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	ch, err := c.SubscribeChan(ctx, types.MasterColor, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return // closed as promised
			}
		case <-deadline:
			t.Fatal("channel not closed after cancel")
		}
	}
}

func TestSubscribeChanUnknownColor(t *testing.T) {
	_, c := newSimple(t, 1)
	if _, err := c.SubscribeChan(context.Background(), 42, time.Millisecond); err == nil {
		t.Fatal("unknown color accepted")
	}
}
