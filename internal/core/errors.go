package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"flexlog/internal/types"
)

// OpError is the typed error returned by the client's Table-2 operations.
// It records which operation failed and on which log, and wraps the
// underlying cause so callers can match the sentinel errors:
//
//	var oe *core.OpError
//	if errors.As(err, &oe) { log.Printf("%s on %v failed", oe.Op, oe.Color) }
//	if errors.Is(err, core.ErrNotFound) { ... } // ⊥
//
// Context cancellation and deadline expiry surface here too:
// errors.Is(err, context.Canceled) / context.DeadlineExceeded.
type OpError struct {
	Op    string        // "append", "read", "trim", "multi-append"
	Color types.ColorID // the log the operation targeted
	SN    types.SN      // the SN involved, if the operation names one
	Err   error         // the underlying cause
}

func (e *OpError) Error() string {
	// The sentinel causes already carry the "flexlog: " prefix; strip it
	// so wrapped messages read "flexlog: read …: record not found" rather
	// than stuttering the module name.
	cause := strings.TrimPrefix(e.Err.Error(), "flexlog: ")
	if e.SN.Valid() {
		return fmt.Sprintf("flexlog: %s %v sn=%v: %s", e.Op, e.Color, e.SN, cause)
	}
	return fmt.Sprintf("flexlog: %s %v: %s", e.Op, e.Color, cause)
}

func (e *OpError) Unwrap() error { return e.Err }

// RetryAfterError wraps a QoS rejection (ErrThrottled / ErrOverloaded)
// with the server's retry-after hint. The client's retry loops honor the
// hint internally — they wait max(hint, jittered backoff) before the next
// attempt — and callers that drive their own retries can extract it with
// errors.As.
type RetryAfterError struct {
	Err   error
	After time.Duration
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("%v (retry after %v)", e.Err, e.After)
}

func (e *RetryAfterError) Unwrap() error { return e.Err }

// retryAfterHint extracts the server's retry-after hint from an error
// chain; 0 when none.
func retryAfterHint(err error) time.Duration {
	var ra *RetryAfterError
	if errors.As(err, &ra) {
		return ra.After
	}
	return 0
}

// opError wraps err in an *OpError unless it is nil or already one (the
// innermost operation wins — it knows the most specific context).
func opError(op string, color types.ColorID, sn types.SN, err error) error {
	if err == nil {
		return nil
	}
	var oe *OpError
	if errors.As(err, &oe) {
		return err
	}
	return &OpError{Op: op, Color: color, SN: sn, Err: err}
}
