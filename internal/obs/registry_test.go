package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrency hammers one registry from many goroutines —
// registering, recording, and scraping concurrently — and checks the
// final counts. Run under -race this is the registry's thread-safety
// proof.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 16
	const perG = 1000

	var extern sync.Map // node -> *uint64 published via CounterFunc
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			node := string(rune('a' + g%4))
			c := reg.Counter("flexlog_test_ops_total", "help", Labels{"node": node})
			h := reg.Histogram("flexlog_test_latency_seconds", "help", Labels{"node": node})
			v, _ := extern.LoadOrStore(node, new(uint64))
			reg.CounterFunc("flexlog_test_extern_total", "help", Labels{"node": node},
				func() uint64 { return *(v.(*uint64)) })
			reg.GaugeFunc("flexlog_test_depth", "help", Labels{"node": node},
				func() float64 { return 7 })
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(time.Microsecond)
				if i%100 == 0 {
					_ = reg.Snapshot() // concurrent scrapes
				}
			}
		}(g)
	}
	wg.Wait()

	// Each of the 4 node labels was incremented by goroutines/4 workers.
	want := uint64(goroutines / 4 * perG)
	for _, node := range []string{"a", "b", "c", "d"} {
		c := reg.Counter("flexlog_test_ops_total", "help", Labels{"node": node})
		if c.Value() != want {
			t.Errorf("node %s: ops = %d, want %d", node, c.Value(), want)
		}
		h := reg.Histogram("flexlog_test_latency_seconds", "help", Labels{"node": node})
		if h.HDR().Count() != want {
			t.Errorf("node %s: hist count = %d, want %d", node, h.HDR().Count(), want)
		}
	}
}

// TestRegistryIdentity checks that re-registration returns the same
// instance (no double counting) and that distinct labels are distinct.
func TestRegistryIdentity(t *testing.T) {
	reg := NewRegistry()
	a1 := reg.Counter("c", "h", Labels{"x": "1"})
	a2 := reg.Counter("c", "h", Labels{"x": "1"})
	b := reg.Counter("c", "h", Labels{"x": "2"})
	if a1 != a2 {
		t.Fatal("same (name, labels) returned different counters")
	}
	if a1 == b {
		t.Fatal("different labels returned the same counter")
	}
	a1.Add(3)
	if a2.Value() != 3 || b.Value() != 0 {
		t.Fatalf("a=%d b=%d, want 3 and 0", a2.Value(), b.Value())
	}
}

// TestNilSafety checks every hot-path method on nil receivers — the
// "observability off" mode instrumented code relies on.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x", "h", nil)
	c.Inc()
	c.Add(2)
	if c.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	h := reg.Histogram("x2", "h", nil)
	h.Observe(time.Second)
	h.Since(time.Now())
	reg.CounterFunc("x3", "h", nil, func() uint64 { return 1 })
	reg.GaugeFunc("x4", "h", nil, func() float64 { return 1 })
	if got := reg.Snapshot(); got != "" {
		t.Fatalf("nil registry snapshot = %q", got)
	}
	if fams := reg.Families(); fams != nil {
		t.Fatalf("nil registry families = %v", fams)
	}

	var tr *Tracer
	tr.ObserveStage("s", time.Millisecond)
	tr.Observe("id", time.Millisecond, nil)
	tr.SetEnabled(true)
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if NewTracer(nil, "op", nil, 0, 0) != nil {
		t.Fatal("NewTracer(nil registry) should be nil")
	}

	var trace *Trace
	trace.StartSpan("s")()
	trace.AddSpan("s", time.Second)
	if trace.Finish() != 0 || trace.Spans() != nil {
		t.Fatal("nil trace should no-op")
	}
}

// TestExpositionGolden locks the Prometheus text format: fixed metrics
// with fixed values must render byte-for-byte as expected. If this test
// changes, OPERATIONS.md's format documentation must change with it.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("flexlog_golden_ops_total", "Operations handled.", Labels{"node": "1", "kind": "append"}).Add(42)
	reg.GaugeFunc("flexlog_golden_depth", "Queue depth.", Labels{"node": "1"}, func() float64 { return 3.5 })
	h := reg.Histogram("flexlog_golden_latency_seconds", "Latency.", Labels{"node": "1"})
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}

	want := strings.Join([]string{
		`# HELP flexlog_golden_depth Queue depth.`,
		`# TYPE flexlog_golden_depth gauge`,
		`flexlog_golden_depth{node="1"} 3.5`,
		`# HELP flexlog_golden_latency_seconds Latency.`,
		`# TYPE flexlog_golden_latency_seconds summary`,
		`flexlog_golden_latency_seconds{node="1",quantile="0.5"} 0.001007616`,
		`flexlog_golden_latency_seconds{node="1",quantile="0.99"} 0.001007616`,
		`flexlog_golden_latency_seconds{node="1",quantile="0.999"} 0.001007616`,
		`flexlog_golden_latency_seconds_sum{node="1"} 0.1`,
		`flexlog_golden_latency_seconds_count{node="1"} 100`,
		`# HELP flexlog_golden_ops_total Operations handled.`,
		`# TYPE flexlog_golden_ops_total counter`,
		`flexlog_golden_ops_total{kind="append",node="1"} 42`,
		``,
	}, "\n")
	if got := reg.Snapshot(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestKindMismatchPanics checks the programming-error guard.
func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "h", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	reg.GaugeFunc("m", "h", nil, func() float64 { return 0 })
}
