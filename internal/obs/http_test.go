package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// get fetches a path from the test server and returns the body.
func get(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return string(body)
}

// TestDebugMux exercises every endpoint of the debug surface.
func TestDebugMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("flexlog_http_test_total", "help", Labels{"node": "1"}).Add(5)
	tr := NewTracer(reg, "append", Labels{"node": "1"}, 0, 8)
	tr.Observe("tok1", 3*time.Millisecond, []Span{{Name: "persist", D: time.Millisecond}})

	mux := NewMux(MuxConfig{
		Registry: reg,
		Tracers:  []*Tracer{tr},
		Lanes: func() []LaneSnapshot {
			return []LaneSnapshot{{Node: "1", Lane: "write", Enqueued: 10, Dequeued: 8, MaxDepth: 4, Busy: time.Millisecond, Drops: 1}}
		},
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	if body := get(t, srv, "/metrics"); !strings.Contains(body, `flexlog_http_test_total{node="1"} 5`) {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	body := get(t, srv, "/debug/traces")
	if !strings.Contains(body, "append") || !strings.Contains(body, "persist=") {
		t.Errorf("/debug/traces missing slow trace:\n%s", body)
	}
	body = get(t, srv, "/debug/lanes")
	if !strings.Contains(body, "write") || !strings.Contains(body, "DEPTH") {
		t.Errorf("/debug/lanes missing lane row:\n%s", body)
	}
	if body := get(t, srv, "/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/ index unexpected:\n%s", body)
	}
}

// TestServe checks the standalone listener path used by flexlog-server.
func TestServe(t *testing.T) {
	reg := NewRegistry()
	RegisterProcess(reg)
	srv, addr, err := Serve("127.0.0.1:0", MuxConfig{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"flexlog_process_goroutines", "flexlog_process_heap_bytes", "flexlog_process_uptime_seconds"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}
