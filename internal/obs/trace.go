package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the request-tracing half of the observability layer.
//
// A Trace is a lightweight per-request span recorder: the client creates
// one, threads it through context.Context (WithTrace/FromContext), and
// each instrumented stage appends a named duration. There is no wire
// propagation — FlexLog's server-side stages are attributed by the node
// that executes them (a Tracer per path per node), which is what the
// latency-decomposition question ("where does an append's latency go?")
// actually needs: stage histograms per node, plus a bounded ring of
// recent slow requests with their per-stage breakdown.

// Span is one named, timed stage of a traced request.
type Span struct {
	// Name identifies the stage (e.g. "persist", "order_wait").
	Name string
	// D is the stage's duration.
	D time.Duration
}

// Trace accumulates the spans of one request. All methods are safe on a
// nil receiver (no-ops), so call sites never branch on tracing being
// enabled. A Trace is safe for concurrent span recording.
type Trace struct {
	// Op names the traced operation (e.g. "append", "read").
	Op string
	// Start is when the trace began.
	Start time.Time

	mu    sync.Mutex
	spans []Span
	total time.Duration // set by Finish
}

// NewTrace starts a trace for the named operation.
func NewTrace(op string) *Trace {
	return &Trace{Op: op, Start: time.Now()}
}

// StartSpan opens a stage and returns the function that closes it,
// recording the elapsed time under name. Safe on a nil Trace.
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.AddSpan(name, time.Since(start)) }
}

// AddSpan records an externally measured stage. Safe on a nil Trace.
func (t *Trace) AddSpan(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, D: d})
	t.mu.Unlock()
}

// Finish stamps the trace's end-to-end duration and returns it. Safe on a
// nil Trace (returns 0).
func (t *Trace) Finish() time.Duration {
	if t == nil {
		return 0
	}
	d := time.Since(t.Start)
	t.mu.Lock()
	t.total = d
	t.mu.Unlock()
	return d
}

// Total returns the end-to-end duration recorded by Finish (0 before).
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Spans returns a copy of the recorded stages.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// traceKey is the context key for WithTrace/FromContext.
type traceKey struct{}

// WithTrace returns a context carrying the trace; the v2 client APIs
// (AppendCtx, ReadCtx, ...) record their stages into it.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil — callers rely on
// Trace's nil-safety rather than checking.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// TraceRecord is one completed request kept in a Tracer's slow-request
// ring: the operation, when it finished, its end-to-end latency, and the
// per-stage breakdown.
type TraceRecord struct {
	// Op names the traced operation.
	Op string
	// ID identifies the request (e.g. the append token), for correlating
	// with logs; free-form.
	ID string
	// End is when the request completed.
	End time.Time
	// Total is the end-to-end latency.
	Total time.Duration
	// Spans is the per-stage breakdown, in recording order.
	Spans []Span
}

// String renders the record as one /debug/traces line.
func (tr TraceRecord) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s total=%v", tr.End.Format("15:04:05.000"), tr.Op, tr.Total)
	if tr.ID != "" {
		fmt.Fprintf(&b, " id=%s", tr.ID)
	}
	var attributed time.Duration
	for _, s := range tr.Spans {
		fmt.Fprintf(&b, " %s=%v", s.Name, s.D)
		attributed += s.D
	}
	if rest := tr.Total - attributed; rest > 0 && len(tr.Spans) > 0 {
		fmt.Fprintf(&b, " other=%v", rest)
	}
	return b.String()
}

// Tracer aggregates one operation path's traces on one node: per-stage
// latency histograms and an end-to-end histogram in the registry, plus a
// bounded ring of recent slow requests for /debug/traces. All methods are
// safe on a nil receiver, so "tracing off" is a nil Tracer.
type Tracer struct {
	reg    *Registry
	op     string
	labels Labels

	slow    atomic.Int64 // slow-request threshold, ns
	enabled atomic.Bool

	total *Histogram
	mu    sync.Mutex
	stage map[string]*Histogram

	ringMu  sync.Mutex
	ring    []TraceRecord
	ringPos int
}

// NewTracer creates a tracer for op (labels distinguish the node), with a
// slow-request threshold and ring capacity. Stage and end-to-end
// histograms register as flexlog_trace_stage_seconds and
// flexlog_trace_total_seconds. A nil registry yields a nil tracer.
func NewTracer(reg *Registry, op string, labels Labels, slow time.Duration, ringCap int) *Tracer {
	if reg == nil {
		return nil
	}
	if ringCap <= 0 {
		ringCap = 64
	}
	lb := Labels{"op": op}
	for k, v := range labels {
		lb[k] = v
	}
	t := &Tracer{
		reg:    reg,
		op:     op,
		labels: lb,
		total: reg.Histogram("flexlog_trace_total_seconds",
			"End-to-end latency of traced operations, by op.", lb),
		stage: make(map[string]*Histogram),
		ring:  make([]TraceRecord, 0, ringCap),
	}
	t.slow.Store(int64(slow))
	t.enabled.Store(true)
	return t
}

// Enabled reports whether the tracer records (false on nil).
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled switches recording on or off at runtime; the overhead
// ablation benchmarks flip this. Safe on nil.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// SetSlowThreshold changes the latency above which a request enters the
// slow-request ring. Safe on nil.
func (t *Tracer) SetSlowThreshold(d time.Duration) {
	if t != nil {
		t.slow.Store(int64(d))
	}
}

// Op returns the traced operation name ("" on nil).
func (t *Tracer) Op() string {
	if t == nil {
		return ""
	}
	return t.op
}

// stageHist returns (creating if needed) the histogram for one stage.
func (t *Tracer) stageHist(name string) *Histogram {
	t.mu.Lock()
	h, ok := t.stage[name]
	if !ok {
		lb := Labels{"stage": name}
		for k, v := range t.labels {
			lb[k] = v
		}
		h = t.reg.Histogram("flexlog_trace_stage_seconds",
			"Latency of one pipeline stage of a traced operation, by op and stage.", lb)
		t.stage[name] = h
	}
	t.mu.Unlock()
	return h
}

// ObserveStage records one stage duration into the stage histogram
// without an enclosing Trace — used for stages observed in aggregate
// (lane queue wait, group-commit windows, PM transactions). Safe on nil
// and when disabled.
func (t *Tracer) ObserveStage(name string, d time.Duration) {
	if !t.Enabled() {
		return
	}
	t.stageHist(name).Observe(d)
}

// Observe folds a finished request into the histograms and, if it was
// slow, into the ring. id is free-form correlation (may be ""). spans may
// be nil. Safe on nil and when disabled.
func (t *Tracer) Observe(id string, total time.Duration, spans []Span) {
	if !t.Enabled() {
		return
	}
	t.total.Observe(total)
	for _, s := range spans {
		t.stageHist(s.Name).Observe(s.D)
	}
	if total < time.Duration(t.slow.Load()) {
		return
	}
	rec := TraceRecord{Op: t.op, ID: id, End: time.Now(), Total: total,
		Spans: append([]Span(nil), spans...)}
	t.ringMu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.ringPos] = rec
		t.ringPos = (t.ringPos + 1) % len(t.ring)
	}
	t.ringMu.Unlock()
}

// ObserveTrace folds a finished Trace (client-side, context-threaded)
// into the tracer. Safe on nil.
func (t *Tracer) ObserveTrace(tr *Trace, id string) {
	if t == nil || tr == nil {
		return
	}
	total := tr.Total()
	if total == 0 {
		total = tr.Finish()
	}
	t.Observe(id, total, tr.Spans())
}

// Recent returns the slow-request ring, most recent last.
func (t *Tracer) Recent() []TraceRecord {
	if t == nil {
		return nil
	}
	t.ringMu.Lock()
	defer t.ringMu.Unlock()
	out := make([]TraceRecord, 0, len(t.ring))
	out = append(out, t.ring[t.ringPos:]...)
	out = append(out, t.ring[:t.ringPos]...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].End.Before(out[j].End) })
	return out
}
