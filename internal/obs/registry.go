// Package obs is FlexLog's cluster observability layer: a process-wide
// metrics registry with Prometheus text exposition, lightweight request
// tracing with per-stage latency attribution, and the HTTP debug surface
// (/metrics, /debug/traces, /debug/lanes, /debug/pprof) that
// cmd/flexlog-server mounts.
//
// The package is stdlib-only (plus internal/metrics, whose HDR histograms
// back the registry's latency distributions) and is designed so that a
// component can be instrumented unconditionally: every method on Counter,
// Histogram, Trace and Tracer is nil-receiver safe, so "observability
// off" is simply a nil registry — no branches in the hot paths.
//
// Three layers:
//
//   - Registry (this file): named metric families — counters, gauges,
//     histograms — each fanned out into labeled instances. Existing
//     atomic counters elsewhere in the tree are published without double
//     bookkeeping via CounterFunc/GaugeFunc, which read the component's
//     own state at scrape time.
//   - Trace / Tracer (trace.go): per-request span recording threaded
//     through context.Context on the client, and per-stage histograms
//     plus a bounded ring of recent slow requests on the server.
//   - NewMux / Serve (http.go): the debug HTTP server.
//
// Metric naming follows the Prometheus conventions: flexlog_<subsystem>_
// prefix, _total suffix for counters, _seconds suffix for durations.
// OPERATIONS.md documents every exported family; the golden exposition
// test cross-references the two so the doc cannot drift from the code.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flexlog/internal/metrics"
)

// Labels is one metric instance's label set (e.g. {"node": "3"}). Label
// values are escaped at exposition; keys must be valid Prometheus label
// names (the registry does not validate them — callers use literals).
type Labels map[string]string

// Kind discriminates the metric families a Registry holds.
type Kind int

// Metric family kinds. Histograms are exposed in the Prometheus summary
// format (pre-computed quantiles), since the backing HDR histograms
// already answer percentile queries exactly.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind; histograms
// expose as "summary" (see the Kind constants).
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "summary"
	}
}

// Counter is a monotonically increasing metric owned by the registry.
// All methods are safe on a nil receiver (a no-op), so instrumented code
// needs no "is observability on" branches.
type Counter struct {
	n atomic.Uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) {
	if c != nil {
		c.n.Add(delta)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Histogram is a latency distribution owned by the registry, backed by an
// HDR histogram from internal/metrics. All methods are safe on a nil
// receiver, and recording is lock-free (a few atomic adds), so hot paths
// record unconditionally.
type Histogram struct {
	h *metrics.Histogram
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h != nil {
		h.h.Record(d)
	}
}

// Since records the time elapsed from start; a convenience for the common
// "stamp, work, observe" pattern.
func (h *Histogram) Since(start time.Time) {
	if h != nil {
		h.h.Record(time.Since(start))
	}
}

// HDR exposes the backing histogram for percentile queries (nil on a nil
// receiver).
func (h *Histogram) HDR() *metrics.Histogram {
	if h == nil {
		return nil
	}
	return h.h
}

// instance is one labeled time series inside a family.
type instance struct {
	labels    string // pre-rendered {k="v",...} or ""
	counter   *Counter
	counterFn func() uint64
	gaugeFn   func() float64
	hist      *Histogram
}

// family is one named metric with its help text and instances.
type family struct {
	name string
	help string
	kind Kind

	mu    sync.Mutex
	byKey map[string]*instance
	order []string
}

// Registry is a set of metric families. It is safe for concurrent
// registration, recording, and scraping. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns (creating if needed) the named family, enforcing kind
// and help consistency: the first registration wins on help text, and a
// kind mismatch panics — it is a programming error, caught by any test
// that touches the metric.
func (r *Registry) family(name, help string, kind Kind) *family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, byKey: make(map[string]*instance)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, f.kind))
	}
	return f
}

// renderLabels serializes a label set deterministically (sorted by key).
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

// instance returns (creating if needed) the labeled instance of f.
func (f *family) instance(labels Labels) *instance {
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	in, ok := f.byKey[key]
	if !ok {
		in = &instance{labels: key}
		f.byKey[key] = in
		f.order = append(f.order, key)
	}
	return in
}

// Counter returns the registry-owned counter for (name, labels), creating
// it on first use; repeated calls with the same identity return the same
// counter. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	f := r.family(name, help, KindCounter)
	if f == nil {
		return nil
	}
	in := f.instance(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if in.counter == nil {
		in.counter = &Counter{}
	}
	return in.counter
}

// CounterFunc publishes an externally maintained monotonic counter: fn is
// invoked at scrape time. Re-registering the same (name, labels) replaces
// the function — a component restarted under the same identity publishes
// its fresh state. No-op on a nil registry.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() uint64) {
	f := r.family(name, help, KindCounter)
	if f == nil {
		return
	}
	in := f.instance(labels)
	f.mu.Lock()
	in.counterFn = fn
	f.mu.Unlock()
}

// GaugeFunc publishes an instantaneous value read at scrape time (queue
// depths, sizes, process state). Re-registering replaces the function.
// No-op on a nil registry.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	f := r.family(name, help, KindGauge)
	if f == nil {
		return
	}
	in := f.instance(labels)
	f.mu.Lock()
	in.gaugeFn = fn
	f.mu.Unlock()
}

// Histogram returns the registry-owned duration histogram for
// (name, labels), creating it on first use. By convention the name ends
// in _seconds; values are exposed in seconds. A nil registry returns a
// nil (no-op) histogram.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	f := r.family(name, help, KindHistogram)
	if f == nil {
		return nil
	}
	in := f.instance(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if in.hist == nil {
		in.hist = &Histogram{h: metrics.NewHistogram()}
	}
	return in.hist
}

// Families returns the sorted names of every registered metric family.
// The OPERATIONS.md cross-reference test is built on this.
func (r *Registry) Families() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.families))
	for name := range r.families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Sample is one instance's scraped value, as returned by the query API the
// autoscaler polls (DESIGN.md §15): the pre-rendered label body (the text
// between the braces in the exposition) plus the value.
type Sample struct {
	Labels string
	Value  float64
}

// Samples scrapes every instance of the named counter or gauge family.
// Counters include their func-backed component; histogram families return
// nil (use MaxQuantile). Nil registry or unknown family returns nil.
func (r *Registry) Samples(name string) []Sample {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []Sample
	for _, key := range f.order {
		in := f.byKey[key]
		switch f.kind {
		case KindCounter:
			v := in.counter.Value()
			if in.counterFn != nil {
				v += in.counterFn()
			}
			out = append(out, Sample{Labels: in.labels, Value: float64(v)})
		case KindGauge:
			if in.gaugeFn != nil {
				out = append(out, Sample{Labels: in.labels, Value: in.gaugeFn()})
			}
		}
	}
	return out
}

// MaxGauge returns the largest instance value of a gauge family — the
// busiest-node view a scale-up policy thresholds on. Zero when the family
// is unknown or empty.
func (r *Registry) MaxGauge(name string) float64 {
	var max float64
	for _, s := range r.Samples(name) {
		if s.Value > max {
			max = s.Value
		}
	}
	return max
}

// SumCounter returns the summed instance values of a counter family.
func (r *Registry) SumCounter(name string) uint64 {
	var sum uint64
	for _, s := range r.Samples(name) {
		sum += uint64(s.Value)
	}
	return sum
}

// MaxQuantile returns the largest per-instance q-th percentile of a
// histogram family (q in percent, e.g. 99 for p99). Zero when the family
// is unknown, empty, or not a histogram.
func (r *Registry) MaxQuantile(name string, q float64) time.Duration {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil || f.kind != KindHistogram {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var max time.Duration
	for _, key := range f.order {
		h := f.byKey[key].hist.HDR()
		if h == nil || h.Count() == 0 {
			continue
		}
		if p := h.Percentile(q); p > max {
			max = p
		}
	}
	return max
}

// quantiles exposed for each histogram family.
var summaryQuantiles = []struct {
	q     float64
	label string
}{{50, "0.5"}, {99, "0.99"}, {99.9, "0.999"}}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, instances in
// registration order, histograms as summaries with p50/p99/p99.9.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, key := range f.order {
			in := f.byKey[key]
			switch f.kind {
			case KindCounter:
				v := in.counter.Value()
				if in.counterFn != nil {
					v += in.counterFn()
				}
				fmt.Fprintf(&b, "%s%s %d\n", f.name, braced(in.labels), v)
			case KindGauge:
				var v float64
				if in.gaugeFn != nil {
					v = in.gaugeFn()
				}
				fmt.Fprintf(&b, "%s%s %s\n", f.name, braced(in.labels), formatFloat(v))
			case KindHistogram:
				h := in.hist.HDR()
				if h == nil {
					continue
				}
				for _, sq := range summaryQuantiles {
					fmt.Fprintf(&b, "%s%s %s\n", f.name,
						bracedExtra(in.labels, `quantile="`+sq.label+`"`),
						formatFloat(h.Percentile(sq.q).Seconds()))
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, braced(in.labels),
					formatFloat(h.Sum().Seconds()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, braced(in.labels), h.Count())
			}
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot returns the full exposition as a string — the dump format
// flexlog-bench and the chaos soak emit on exit.
func (r *Registry) Snapshot() string {
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	return b.String()
}

// braced wraps a pre-rendered label body in {}, or returns "" when empty.
func braced(body string) string {
	if body == "" {
		return ""
	}
	return "{" + body + "}"
}

// bracedExtra appends one extra rendered label to a pre-rendered body.
func bracedExtra(body, extra string) string {
	if body == "" {
		return "{" + extra + "}"
	}
	return "{" + body + "," + extra + "}"
}

// formatFloat renders a metric value the way Prometheus clients expect:
// plain decimal, no exponent for the magnitudes we emit.
func formatFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}
