package obs

import (
	"context"
	"testing"
	"time"
)

// TestSpanPropagation threads a trace through a context across simulated
// pipeline stages and asserts the stage timings sum to (approximately)
// the end-to-end latency — the invariant that makes /debug/traces output
// attributable: stages partition the total, leaving only a small
// unattributed remainder.
func TestSpanPropagation(t *testing.T) {
	ctx := WithTrace(context.Background(), NewTrace("append"))

	stage := func(ctx context.Context, name string, d time.Duration) {
		end := FromContext(ctx).StartSpan(name)
		time.Sleep(d)
		end()
	}
	stage(ctx, "batch_wait", 5*time.Millisecond)
	stage(ctx, "persist", 10*time.Millisecond)
	stage(ctx, "order_wait", 15*time.Millisecond)

	tr := FromContext(ctx)
	total := tr.Finish()

	var sum time.Duration
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for _, s := range spans {
		if s.D <= 0 {
			t.Fatalf("span %s has non-positive duration %v", s.Name, s.D)
		}
		sum += s.D
	}
	if sum > total {
		t.Fatalf("stage sum %v exceeds end-to-end %v", sum, total)
	}
	// The stages are contiguous, so they must account for nearly all of
	// the total; allow generous slack for sleep overshoot and scheduling.
	if float64(sum) < 0.7*float64(total) {
		t.Fatalf("stage sum %v attributes <70%% of end-to-end %v", sum, total)
	}
}

// TestTracerRingAndHistograms checks that observed requests land in the
// stage and total histograms, and that slow requests enter the bounded
// ring (oldest evicted first).
func TestTracerRingAndHistograms(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, "append", Labels{"node": "1"}, 10*time.Millisecond, 4)

	// Fast request: histograms only, no ring entry.
	tr.Observe("fast", time.Millisecond, []Span{{Name: "persist", D: time.Millisecond}})
	if got := len(tr.Recent()); got != 0 {
		t.Fatalf("fast request entered the ring (%d entries)", got)
	}

	// Six slow requests through a ring of 4: the first two fall out.
	for i := 0; i < 6; i++ {
		tr.Observe(string(rune('a'+i)), 20*time.Millisecond, []Span{
			{Name: "persist", D: 8 * time.Millisecond},
			{Name: "order_wait", D: 10 * time.Millisecond},
		})
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring holds %d records, want 4", len(recent))
	}
	if recent[0].ID != "c" || recent[3].ID != "f" {
		t.Fatalf("ring eviction order wrong: got ids %q..%q, want c..f", recent[0].ID, recent[3].ID)
	}
	if s := recent[0].String(); s == "" {
		t.Fatal("empty trace record rendering")
	}

	total := reg.Histogram("flexlog_trace_total_seconds", "", Labels{"op": "append", "node": "1"})
	if n := total.HDR().Count(); n != 7 {
		t.Fatalf("total histogram count = %d, want 7", n)
	}
	stage := reg.Histogram("flexlog_trace_stage_seconds", "",
		Labels{"op": "append", "node": "1", "stage": "persist"})
	if n := stage.HDR().Count(); n != 7 {
		t.Fatalf("persist stage count = %d, want 7", n)
	}

	// Disabled tracer records nothing further.
	tr.SetEnabled(false)
	tr.Observe("g", time.Second, nil)
	tr.ObserveStage("persist", time.Second)
	if n := total.HDR().Count(); n != 7 {
		t.Fatalf("disabled tracer still recorded (count %d)", n)
	}
	if len(tr.Recent()) != 4 {
		t.Fatal("disabled tracer still filled the ring")
	}
}

// TestObserveTrace checks the client-side path: a context-threaded Trace
// folded into a Tracer carries its spans into the stage histograms.
func TestObserveTrace(t *testing.T) {
	reg := NewRegistry()
	tc := NewTracer(reg, "read", nil, time.Hour, 4)
	trace := NewTrace("read")
	trace.AddSpan("rpc", 2*time.Millisecond)
	trace.Finish()
	tc.ObserveTrace(trace, "tok")
	h := reg.Histogram("flexlog_trace_stage_seconds", "", Labels{"op": "read", "stage": "rpc"})
	if h.HDR().Count() != 1 {
		t.Fatal("span did not reach the stage histogram")
	}
}
