package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"time"
)

// LaneSnapshot is one transport service lane's state as shown by
// /debug/lanes: the queue counters of a replica's read or write lane plus
// the drop counters that share its dashboard row.
type LaneSnapshot struct {
	// Node is the owning node's id, rendered.
	Node string
	// Lane is "read" or "write".
	Lane string
	// Enqueued / Dequeued / MaxDepth mirror transport.LaneStats.
	Enqueued, Dequeued, MaxDepth uint64
	// Busy is summed worker wall time.
	Busy time.Duration
	// Drops counts messages the owning component dropped on this path
	// (e.g. a replica's AppendDrops for the write lane).
	Drops uint64
	// Shed counts messages rejected by QoS backpressure (full per-tenant
	// lane queue answered with Reject rather than queued).
	Shed uint64
}

// Depth returns the instantaneous queue depth.
func (s LaneSnapshot) Depth() uint64 { return s.Enqueued - s.Dequeued }

// MuxConfig assembles the debug HTTP surface.
type MuxConfig struct {
	// Registry backs /metrics. Required.
	Registry *Registry
	// Tracers back /debug/traces (each contributes its slow-request ring).
	Tracers []*Tracer
	// Lanes backs /debug/lanes; nil serves an empty table.
	Lanes func() []LaneSnapshot
	// Extra mounts additional handlers by path (e.g. /debug/topology from
	// the control plane); paths here must not collide with the built-ins.
	Extra map[string]http.Handler
}

// NewMux builds the debug mux: /metrics (Prometheus text), /debug/traces
// (recent slow requests with per-stage latencies), /debug/lanes (service
// lane depths and drops), and the net/http/pprof suite under
// /debug/pprof/.
func NewMux(cfg MuxConfig) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = cfg.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var recs []TraceRecord
		for _, t := range cfg.Tracers {
			recs = append(recs, t.Recent()...)
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i].End.Before(recs[j].End) })
		fmt.Fprintf(w, "# %d recent slow requests (oldest first; stage durations attribute the total)\n", len(recs))
		for _, rec := range recs {
			fmt.Fprintln(w, rec.String())
		}
	})
	mux.HandleFunc("/debug/lanes", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%-8s %-6s %12s %12s %8s %10s %14s %8s %8s\n",
			"NODE", "LANE", "ENQUEUED", "DEQUEUED", "DEPTH", "MAXDEPTH", "BUSY", "DROPS", "SHED")
		if cfg.Lanes == nil {
			return
		}
		for _, l := range cfg.Lanes() {
			fmt.Fprintf(w, "%-8s %-6s %12d %12d %8d %10d %14v %8d %8d\n",
				l.Node, l.Lane, l.Enqueued, l.Dequeued, l.Depth(), l.MaxDepth,
				l.Busy.Round(time.Microsecond), l.Drops, l.Shed)
		}
	})
	for path, h := range cfg.Extra {
		mux.Handle(path, h)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the debug server on addr (e.g. ":9100"; use ":0" for an
// ephemeral port) and returns the server and its bound address. The
// caller shuts it down with srv.Close.
func Serve(addr string, cfg MuxConfig) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: NewMux(cfg)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}

// RegisterProcess publishes process-level gauges (goroutines, heap bytes,
// uptime) into the registry — the first things an operator checks when a
// node misbehaves.
func RegisterProcess(reg *Registry) {
	start := time.Now()
	reg.GaugeFunc("flexlog_process_goroutines",
		"Number of live goroutines in this process.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("flexlog_process_heap_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).", nil,
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.GaugeFunc("flexlog_process_uptime_seconds",
		"Seconds since this process registered its metrics.", nil,
		func() float64 { return time.Since(start).Seconds() })
}
