// Package metrics provides the measurement primitives used by the FlexLog
// benchmark harness: thread-safe latency histograms with percentile queries
// and throughput counters. The histogram uses logarithmic buckets with
// linear sub-buckets (HDR-style), giving <4% relative error across the
// nanosecond-to-second range at a fixed, small memory footprint.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// subBucketBits controls resolution: each power-of-two range is split
	// into 2^subBucketBits linear sub-buckets.
	subBucketBits = 5
	subBuckets    = 1 << subBucketBits
	// maxExp covers values up to 2^40 ns (~18 minutes).
	maxExp     = 40
	numBuckets = (maxExp + 1) * subBuckets
)

// Histogram is a thread-safe latency histogram. The zero value is unusable;
// use NewHistogram.
type Histogram struct {
	counts []atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Uint64 // nanoseconds, for Mean
	min    atomic.Uint64
	max    atomic.Uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{counts: make([]atomic.Uint64, numBuckets)}
	h.min.Store(math.MaxUint64)
	return h
}

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(v uint64) int {
	if v < subBuckets {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // floor(log2(v)), >= subBucketBits
	shift := exp - subBucketBits
	sub := (v >> uint(shift)) & (subBuckets - 1)
	idx := (exp-subBucketBits+1)*subBuckets + int(sub)
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// bucketValue returns a representative (midpoint) value for a bucket index.
func bucketValue(idx int) uint64 {
	if idx < subBuckets {
		return uint64(idx)
	}
	exp := idx/subBuckets + subBucketBits - 1
	sub := uint64(idx % subBuckets)
	base := (uint64(1) << uint(exp)) | (sub << uint(exp-subBucketBits))
	half := uint64(1) << uint(exp-subBucketBits-1)
	return base + half
}

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.RecordValue(uint64(d))
}

// RecordValue adds one dimensionless observation (e.g. a batch size in
// records or bytes). Value histograms share the duration histogram's
// buckets; read them back with MeanValue/PercentileValue rather than the
// time.Duration accessors.
func (h *Histogram) RecordValue(v uint64) {
	h.counts[bucketIndex(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Mean returns the arithmetic mean of observations, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Sum returns the sum of all observations as a duration (exact, unlike
// Mean()*Count()); used by the registry's summary exposition.
func (h *Histogram) Sum() time.Duration {
	return time.Duration(h.sum.Load())
}

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() time.Duration {
	if h.total.Load() == 0 {
		return 0
	}
	return time.Duration(h.min.Load())
}

// Max returns the largest observation, or 0 if empty.
func (h *Histogram) Max() time.Duration {
	if h.total.Load() == 0 {
		return 0
	}
	return time.Duration(h.max.Load())
}

// MeanValue returns the arithmetic mean of dimensionless observations.
func (h *Histogram) MeanValue() float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// PercentileValue returns the dimensionless observation at quantile q.
func (h *Histogram) PercentileValue(q float64) uint64 {
	return uint64(h.Percentile(q))
}

// MaxValue returns the largest dimensionless observation, or 0 if empty.
func (h *Histogram) MaxValue() uint64 {
	if h.total.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Percentile returns the latency at quantile q in [0,100].
func (h *Histogram) Percentile(q float64) time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 100 {
		q = 100
	}
	rank := uint64(math.Ceil(q / 100 * float64(n)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			return time.Duration(bucketValue(i))
		}
	}
	return time.Duration(h.max.Load())
}

// Merge adds all observations of other into h. min/max are merged exactly;
// bucket counts are summed.
func (h *Histogram) Merge(other *Histogram) {
	for i := range other.counts {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.total.Add(other.total.Load())
	h.sum.Add(other.sum.Load())
	if other.total.Load() > 0 {
		om := other.min.Load()
		for {
			cur := h.min.Load()
			if om >= cur || h.min.CompareAndSwap(cur, om) {
				break
			}
		}
		oM := other.max.Load()
		for {
			cur := h.max.Load()
			if oM <= cur || h.max.CompareAndSwap(cur, oM) {
				break
			}
		}
	}
}

// Summary is a point-in-time digest of a histogram.
type Summary struct {
	Count          uint64
	Mean, P50, P99 time.Duration
	Min, Max       time.Duration
}

// Summarize captures the histogram's current digest.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P99:   h.Percentile(99),
		Min:   h.Min(),
		Max:   h.Max(),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v min=%v max=%v",
		s.Count, s.Mean, s.P50, s.P99, s.Min, s.Max)
}

// Counter is a thread-safe monotonically increasing event counter with a
// start time, used to compute throughput.
type Counter struct {
	n     atomic.Uint64
	start time.Time
}

// NewCounter returns a counter whose rate window starts now.
func NewCounter() *Counter { return &Counter{start: time.Now()} }

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Count returns the current value.
func (c *Counter) Count() uint64 { return c.n.Load() }

// Rate returns events per second since the counter was created.
func (c *Counter) Rate() float64 {
	el := time.Since(c.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(c.n.Load()) / el
}

// RateOver returns events per second over an explicit elapsed duration.
func (c *Counter) RateOver(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.n.Load()) / elapsed.Seconds()
}

// Series is an ordered set of (label, value) points, used by the bench
// harness to print one figure curve.
type Series struct {
	Name   string
	Unit   string
	mu     sync.Mutex
	labels []string
	values []float64
}

// NewSeries creates a named series whose values carry the given unit.
func NewSeries(name, unit string) *Series {
	return &Series{Name: name, Unit: unit}
}

// Add appends one point.
func (s *Series) Add(label string, value float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.labels = append(s.labels, label)
	s.values = append(s.values, value)
}

// Points returns copies of the labels and values.
func (s *Series) Points() ([]string, []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.labels...), append([]float64(nil), s.values...)
}

// Value returns the value recorded for label, and whether it exists.
func (s *Series) Value(label string) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, l := range s.labels {
		if l == label {
			return s.values[i], true
		}
	}
	return 0, false
}

// Table renders one or more series sharing the same x labels as an aligned
// text table, in the style of the paper's figures.
func Table(xHeader string, series ...*Series) string {
	if len(series) == 0 {
		return ""
	}
	labels, _ := series[0].Points()
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s", xHeader)
	for _, s := range series {
		name := s.Name
		if s.Unit != "" {
			name += " (" + s.Unit + ")"
		}
		fmt.Fprintf(&b, "%24s", name)
	}
	b.WriteByte('\n')
	for i, l := range labels {
		fmt.Fprintf(&b, "%-16s", l)
		for _, s := range series {
			_, vals := s.Points()
			if i < len(vals) {
				fmt.Fprintf(&b, "%24s", formatValue(vals[i]))
			} else {
				fmt.Fprintf(&b, "%24s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatValue(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.4gk", v/1e3)
	case av == math.Trunc(av):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// SortedKeys returns the sorted keys of a string-keyed map; a small helper
// for deterministic report output.
func SortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
