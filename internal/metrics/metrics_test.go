package metrics

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Record(100 * time.Microsecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 100*time.Microsecond || h.Max() != 100*time.Microsecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	p := h.Percentile(50)
	if relErr(float64(p), float64(100*time.Microsecond)) > 0.05 {
		t.Fatalf("p50 = %v, want ~100µs", p)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-time.Second)
	if h.Max() != 0 {
		t.Fatalf("negative value should clamp to 0, max=%v", h.Max())
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	// 1..1000 microseconds uniformly.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	checks := map[float64]time.Duration{
		50: 500 * time.Microsecond,
		90: 900 * time.Microsecond,
		99: 990 * time.Microsecond,
	}
	for q, want := range checks {
		got := h.Percentile(q)
		if relErr(float64(got), float64(want)) > 0.05 {
			t.Errorf("p%.0f = %v, want ~%v", q, got, want)
		}
	}
	if h.Percentile(-5) == 0 && h.Count() > 0 {
		// p0 clamps to smallest rank; just ensure it does not panic and
		// returns a small value.
	}
	if h.Percentile(200) < h.Percentile(50) {
		t.Error("clamped p200 should be >= p50")
	}
}

func TestHistogramMeanExact(t *testing.T) {
	h := NewHistogram()
	h.Record(10 * time.Nanosecond)
	h.Record(30 * time.Nanosecond)
	if h.Mean() != 20*time.Nanosecond {
		t.Fatalf("mean = %v, want 20ns", h.Mean())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(time.Millisecond)
	b.Record(3 * time.Millisecond)
	b.Record(5 * time.Millisecond)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != time.Millisecond || a.Max() != 5*time.Millisecond {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(time.Second)
	a.Merge(b) // merging an empty histogram must not disturb min/max
	if a.Min() != time.Second || a.Max() != time.Second {
		t.Fatalf("min/max disturbed by empty merge: %v/%v", a.Min(), a.Max())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(time.Duration(r.Intn(1e6)))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
}

// Property: for any recorded value v, the bucket midpoint reported for it is
// within ~2*2^-subBucketBits relative error.
func TestBucketRoundTripProperty(t *testing.T) {
	f := func(v uint32) bool {
		val := uint64(v)
		idx := bucketIndex(val)
		rep := bucketValue(idx)
		if val < 64 {
			return rep == val || relErr(float64(rep), float64(val)) < 0.5
		}
		return relErr(float64(rep), float64(val)) < 0.08
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: bucketIndex is monotone non-decreasing.
func TestBucketMonotoneProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := uint64(a), uint64(b)
		if x > y {
			x, y = y, x
		}
		return bucketIndex(x) <= bucketIndex(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketIndexBounds(t *testing.T) {
	if idx := bucketIndex(math.MaxUint64); idx != numBuckets-1 {
		t.Fatalf("max value should land in last bucket, got %d", idx)
	}
}

func TestCounterRate(t *testing.T) {
	c := NewCounter()
	c.Add(1000)
	if c.Count() != 1000 {
		t.Fatalf("count = %d", c.Count())
	}
	r := c.RateOver(2 * time.Second)
	if r != 500 {
		t.Fatalf("rate over 2s = %v, want 500", r)
	}
	if c.RateOver(0) != 0 {
		t.Fatal("rate over 0 should be 0")
	}
	if c.Rate() <= 0 {
		t.Fatal("live rate should be positive")
	}
}

func TestSeriesAndTable(t *testing.T) {
	s1 := NewSeries("FlexLog", "ops/s")
	s2 := NewSeries("Boki", "ops/s")
	s1.Add("64", 2e6)
	s1.Add("128", 1.9e6)
	s2.Add("64", 2e5)
	s2.Add("128", 1.8e5)
	if v, ok := s1.Value("64"); !ok || v != 2e6 {
		t.Fatalf("Value(64) = %v, %v", v, ok)
	}
	if _, ok := s1.Value("nope"); ok {
		t.Fatal("Value of missing label should report !ok")
	}
	out := Table("record sz (B)", s1, s2)
	for _, want := range []string{"record sz (B)", "FlexLog (ops/s)", "Boki (ops/s)", "64", "128", "2M"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if Table("x") != "" {
		t.Fatal("table with no series should be empty")
	}
}

func TestTableShorterSecondSeries(t *testing.T) {
	s1 := NewSeries("a", "")
	s2 := NewSeries("b", "")
	s1.Add("p1", 1)
	s1.Add("p2", 2)
	s2.Add("p1", 3)
	out := Table("x", s1, s2)
	if !strings.Contains(out, "-") {
		t.Fatalf("missing filler for short series:\n%s", out)
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		2500000: "2.5M",
		1500:    "1.5k",
		42:      "42",
		0.5:     "0.5",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSummaryString(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	s := h.Summarize()
	if s.Count != 1 {
		t.Fatalf("summary count = %d", s.Count)
	}
	if !strings.Contains(s.String(), "n=1") {
		t.Fatalf("summary string: %s", s)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted keys = %v", got)
		}
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / want
}

func TestValueHistogram(t *testing.T) {
	h := NewHistogram()
	for _, v := range []uint64{1, 2, 3, 4, 10} {
		h.RecordValue(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.MeanValue(); got != 4 {
		t.Fatalf("mean value = %v, want 4", got)
	}
	if got := h.MaxValue(); got != 10 {
		t.Fatalf("max value = %d, want 10", got)
	}
	if got := h.PercentileValue(50); relErr(float64(got), 3) > 0.05 {
		t.Fatalf("p50 value = %d, want ~3", got)
	}
	// Merged value histograms keep exact totals.
	h2 := NewHistogram()
	h2.RecordValue(100)
	h.Merge(h2)
	if h.Count() != 6 || h.MaxValue() != 100 {
		t.Fatalf("after merge: count=%d max=%d", h.Count(), h.MaxValue())
	}
}
