// Package simclock provides calibrated latency injection for device and
// network simulation.
//
// The FlexLog reproduction models persistent-memory accesses (hundreds of
// nanoseconds) and datacenter network hops (tens of microseconds). OS sleep
// granularity is far too coarse for either, so sub-millisecond waits are
// realized as busy-waits on the monotonic clock, while longer waits sleep
// for the bulk of the duration and spin only for the remainder.
//
// Latency injection can be disabled globally (the default for unit tests):
// with injection disabled Wait returns immediately, so the protocol stack
// runs at full speed while preserving identical code paths.
package simclock

import (
	"runtime"
	"sync/atomic"
	"time"
)

// spinThreshold is the longest duration realized purely by spinning.
// Above it, Wait sleeps for all but the final spinThreshold and spins the
// remainder, trading a little CPU for accuracy.
const spinThreshold = 200 * time.Microsecond

// enabled gates all latency injection. Benchmarks enable it; unit tests
// leave it off so the suite stays fast.
var enabled atomic.Bool

// Enable turns latency injection on or off process-wide and returns the
// previous setting so callers can restore it.
func Enable(on bool) (previous bool) {
	return enabled.Swap(on)
}

// Enabled reports whether latency injection is currently active.
func Enabled() bool { return enabled.Load() }

// Wait injects a delay of d if latency injection is enabled.
// It is a no-op for non-positive d or when injection is disabled.
func Wait(d time.Duration) {
	if d <= 0 || !enabled.Load() {
		return
	}
	Spin(d)
}

// Spin unconditionally delays for d with sub-microsecond accuracy,
// regardless of the global enable flag. Most callers want Wait.
func Spin(d time.Duration) {
	if d <= 0 {
		return
	}
	start := time.Now()
	if d > spinThreshold {
		time.Sleep(d - spinThreshold)
	}
	for time.Since(start) < d {
		// Busy-wait. time.Now uses the vDSO on Linux (~tens of ns per
		// call), which bounds the overshoot to well under a microsecond.
		// Yield so concurrent goroutines make progress even when the
		// runtime has few Ps (spinning must not starve the simulation).
		runtime.Gosched()
	}
}

// WaitUntil injects a delay until the given deadline if injection is
// enabled. It is the pipelined form of Wait: callers that stamp messages
// with a delivery deadline at send time can overlap many in-flight delays.
func WaitUntil(deadline time.Time) {
	if !enabled.Load() {
		return
	}
	SpinUntil(deadline)
}

// SpinUntil unconditionally delays until deadline (no-op if already past).
func SpinUntil(deadline time.Time) {
	d := time.Until(deadline)
	if d <= 0 {
		return
	}
	if d > spinThreshold {
		time.Sleep(d - spinThreshold)
	}
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// Stopwatch measures elapsed wall time for profiling sections.
type Stopwatch struct {
	start time.Time
}

// NewStopwatch returns a running stopwatch.
func NewStopwatch() Stopwatch { return Stopwatch{start: time.Now()} }

// Elapsed returns the time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.start) }
