package simclock

import (
	"testing"
	"time"
)

func TestWaitDisabledIsInstant(t *testing.T) {
	prev := Enable(false)
	defer Enable(prev)
	start := time.Now()
	Wait(50 * time.Millisecond)
	if el := time.Since(start); el > 5*time.Millisecond {
		t.Fatalf("Wait with injection disabled took %v, want ~0", el)
	}
}

func TestWaitEnabledDelays(t *testing.T) {
	prev := Enable(true)
	defer Enable(prev)
	const d = 2 * time.Millisecond
	start := time.Now()
	Wait(d)
	if el := time.Since(start); el < d {
		t.Fatalf("Wait(%v) returned after %v", d, el)
	}
}

func TestSpinAccuracy(t *testing.T) {
	for _, d := range []time.Duration{500 * time.Nanosecond, 10 * time.Microsecond, 300 * time.Microsecond} {
		start := time.Now()
		Spin(d)
		el := time.Since(start)
		if el < d {
			t.Errorf("Spin(%v) returned early after %v", d, el)
		}
		// Generous upper bound: scheduling noise can add a few ms in CI,
		// but a gross overshoot indicates a calibration bug.
		if el > d+20*time.Millisecond {
			t.Errorf("Spin(%v) overshot to %v", d, el)
		}
	}
}

func TestSpinNonPositive(t *testing.T) {
	start := time.Now()
	Spin(0)
	Spin(-time.Second)
	if el := time.Since(start); el > time.Millisecond {
		t.Fatalf("Spin(<=0) took %v", el)
	}
}

func TestSpinUntilPastDeadline(t *testing.T) {
	start := time.Now()
	SpinUntil(time.Now().Add(-time.Second))
	if el := time.Since(start); el > time.Millisecond {
		t.Fatalf("SpinUntil(past) took %v", el)
	}
}

func TestWaitUntilFuture(t *testing.T) {
	prev := Enable(true)
	defer Enable(prev)
	deadline := time.Now().Add(1 * time.Millisecond)
	WaitUntil(deadline)
	if time.Now().Before(deadline) {
		t.Fatal("WaitUntil returned before deadline")
	}
}

func TestEnableReturnsPrevious(t *testing.T) {
	prev := Enable(true)
	defer Enable(prev)
	if !Enable(false) {
		t.Fatal("Enable(false) should report previous=true")
	}
	if Enabled() {
		t.Fatal("Enabled() should be false after Enable(false)")
	}
}

func TestStopwatch(t *testing.T) {
	sw := NewStopwatch()
	Spin(time.Millisecond)
	if sw.Elapsed() < time.Millisecond {
		t.Fatal("stopwatch under-reports elapsed time")
	}
}
