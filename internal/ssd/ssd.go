// Package ssd simulates a flash block device accessed through the OS file
// interface. It is the "fileio" baseline of the paper's Figure 1, the
// overflow tier of FlexLog's storage stack (§5.2), and the backend of the
// Boki/RocksDB baseline (WAL + SSTables).
//
// The device exposes named append-oriented files with explicit Sync. To
// support failure injection it models the page cache: bytes written but not
// yet synced are lost on a simulated crash, which is exactly the behaviour
// the RocksDB baseline pays for with its per-batch WAL sync.
package ssd

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"flexlog/internal/simclock"
)

var (
	// ErrNotFound is returned when the named file does not exist.
	ErrNotFound = errors.New("ssd: file not found")
	// ErrCrashed is returned between Crash and Recover.
	ErrCrashed = errors.New("ssd: device is in crashed state")
	// ErrOutOfRange is returned for reads beyond end of file.
	ErrOutOfRange = errors.New("ssd: read out of range")
)

// LatencyModel is the affine cost model of SSD accesses through the kernel.
type LatencyModel struct {
	ReadBase   time.Duration
	ReadPerKB  time.Duration
	WriteBase  time.Duration
	WritePerKB time.Duration
	SyncCost   time.Duration
}

// NVMe models a fast datacenter NVMe flash drive accessed via syscalls.
// Calibrated so the fileio curves of Figure 1 sit roughly an order of
// magnitude above the pmem curves across 64 B – 8 KiB blocks.
func NVMe() LatencyModel {
	return LatencyModel{
		ReadBase:   8 * time.Microsecond,
		ReadPerKB:  5 * time.Microsecond,
		WriteBase:  12 * time.Microsecond,
		WritePerKB: 8 * time.Microsecond,
		SyncCost:   80 * time.Microsecond,
	}
}

// Zero is the latency-free model used by unit tests.
func Zero() LatencyModel { return LatencyModel{} }

// ReadCost returns the modeled latency of reading n bytes.
func (m LatencyModel) ReadCost(n int) time.Duration {
	return m.ReadBase + m.ReadPerKB*time.Duration(n)/1024
}

// WriteCost returns the modeled latency of writing n bytes (without sync).
func (m LatencyModel) WriteCost(n int) time.Duration {
	return m.WriteBase + m.WritePerKB*time.Duration(n)/1024
}

// TimeOf returns the total modeled device time the counted operations
// would take (see pmem.LatencyModel.TimeOf).
func (m LatencyModel) TimeOf(s Stats) time.Duration {
	d := time.Duration(s.Reads)*m.ReadBase + m.ReadPerKB*time.Duration(s.BytesRead)/1024
	d += time.Duration(s.Writes)*m.WriteBase + m.WritePerKB*time.Duration(s.BytesWritten)/1024
	d += time.Duration(s.Syncs) * m.SyncCost
	return d
}

type file struct {
	data   []byte
	synced int // bytes guaranteed durable
}

// Device is a simulated SSD holding named files.
type Device struct {
	mu      sync.RWMutex
	files   map[string]*file
	model   LatencyModel
	crashed bool
	stats   Stats
}

// Stats counts device operations.
type Stats struct {
	Reads, Writes, Syncs uint64
	BytesRead            uint64
	BytesWritten         uint64
}

// New creates an empty device with the given latency model.
func New(model LatencyModel) *Device {
	return &Device{files: make(map[string]*file), model: model}
}

// Model returns the device's latency model.
func (d *Device) Model() LatencyModel { return d.model }

// Stats returns a snapshot of the operation counters.
func (d *Device) Stats() Stats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.stats
}

// Create makes an empty file, truncating any existing one with that name.
func (d *Device) Create(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	d.files[name] = &file{}
	return nil
}

// Append writes data at the end of the named file (creating it if needed)
// and returns the offset at which the data begins. The data is volatile
// until Sync.
func (d *Device) Append(name string, data []byte) (int64, error) {
	d.mu.Lock()
	if d.crashed {
		d.mu.Unlock()
		return 0, ErrCrashed
	}
	f := d.files[name]
	if f == nil {
		f = &file{}
		d.files[name] = f
	}
	off := int64(len(f.data))
	f.data = append(f.data, data...)
	d.stats.Writes++
	d.stats.BytesWritten += uint64(len(data))
	d.mu.Unlock()
	simclock.Wait(d.model.WriteCost(len(data)))
	return off, nil
}

// ReadAt reads len(buf) bytes at offset off of the named file.
func (d *Device) ReadAt(name string, off int64, buf []byte) error {
	d.mu.RLock()
	if d.crashed {
		d.mu.RUnlock()
		return ErrCrashed
	}
	f := d.files[name]
	if f == nil {
		d.mu.RUnlock()
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if off < 0 || off+int64(len(buf)) > int64(len(f.data)) {
		d.mu.RUnlock()
		return ErrOutOfRange
	}
	copy(buf, f.data[off:])
	d.mu.RUnlock()
	d.mu.Lock()
	d.stats.Reads++
	d.stats.BytesRead += uint64(len(buf))
	d.mu.Unlock()
	simclock.Wait(d.model.ReadCost(len(buf)))
	return nil
}

// Size returns the current length of the named file.
func (d *Device) Size(name string) (int64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.crashed {
		return 0, ErrCrashed
	}
	f := d.files[name]
	if f == nil {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return int64(len(f.data)), nil
}

// Sync makes all appended bytes of the named file durable.
func (d *Device) Sync(name string) error {
	d.mu.Lock()
	if d.crashed {
		d.mu.Unlock()
		return ErrCrashed
	}
	f := d.files[name]
	if f == nil {
		d.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	f.synced = len(f.data)
	d.stats.Syncs++
	d.mu.Unlock()
	simclock.Wait(d.model.SyncCost)
	return nil
}

// Delete removes the named file. Deleting a missing file is a no-op.
func (d *Device) Delete(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	delete(d.files, name)
	return nil
}

// List returns the names of all files on the device.
func (d *Device) List() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.files))
	for n := range d.files {
		names = append(names, n)
	}
	return names
}

// Crash simulates a power failure: unsynced bytes are dropped from every
// file and all operations fail until Recover.
func (d *Device) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashed = true
	for _, f := range d.files {
		f.data = f.data[:f.synced]
	}
}

// Crashed reports whether the device is in the crashed state.
func (d *Device) Crashed() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.crashed
}

// Recover makes the device usable again after Crash.
func (d *Device) Recover() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashed = false
}

// snapshot is the gob-serialized device image.
type snapshot struct {
	Files map[string][]byte
}

// SaveTo atomically snapshots the device's synced contents to a file, so a
// multi-process deployment preserves its flash tier across restarts.
// Only the synced prefix of each file is captured — exactly what a real
// power cycle would preserve.
func (d *Device) SaveTo(path string) error {
	d.mu.RLock()
	snap := snapshot{Files: make(map[string][]byte, len(d.files))}
	for name, f := range d.files {
		snap.Files[name] = append([]byte(nil), f.data[:f.synced]...)
	}
	d.mu.RUnlock()

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ssd-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	return os.Rename(tmpName, path)
}

// LoadFrom restores a device from a snapshot file.
func LoadFrom(path string, model LatencyModel) (*Device, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("ssd: decoding snapshot %s: %w", path, err)
	}
	d := New(model)
	for name, data := range snap.Files {
		d.files[name] = &file{data: append([]byte(nil), data...), synced: len(data)}
	}
	return d, nil
}
