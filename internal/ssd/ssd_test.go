package ssd

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"flexlog/internal/simclock"
)

func TestAppendReadRoundTrip(t *testing.T) {
	d := New(Zero())
	off1, err := d.Append("log", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	off2, err := d.Append("log", []byte("world"))
	if err != nil {
		t.Fatal(err)
	}
	if off1 != 0 || off2 != 5 {
		t.Fatalf("offsets = %d, %d", off1, off2)
	}
	buf := make([]byte, 10)
	if err := d.ReadAt("log", 0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "helloworld" {
		t.Fatalf("read = %q", buf)
	}
	sz, err := d.Size("log")
	if err != nil || sz != 10 {
		t.Fatalf("size = %d, %v", sz, err)
	}
}

func TestReadErrors(t *testing.T) {
	d := New(Zero())
	if err := d.ReadAt("missing", 0, make([]byte, 1)); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing file: %v", err)
	}
	d.Append("f", []byte("abc"))
	if err := d.ReadAt("f", 2, make([]byte, 5)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("OOB read: %v", err)
	}
	if err := d.ReadAt("f", -1, make([]byte, 1)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("negative offset: %v", err)
	}
	if _, err := d.Size("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("size of missing: %v", err)
	}
	if err := d.Sync("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("sync of missing: %v", err)
	}
}

func TestCreateTruncates(t *testing.T) {
	d := New(Zero())
	d.Append("f", []byte("old"))
	d.Create("f")
	sz, _ := d.Size("f")
	if sz != 0 {
		t.Fatalf("size after create = %d", sz)
	}
}

func TestUnsyncedDataLostOnCrash(t *testing.T) {
	d := New(Zero())
	d.Append("wal", []byte("durable!"))
	d.Sync("wal")
	d.Append("wal", []byte("volatile"))
	d.Crash()
	if !d.Crashed() {
		t.Fatal("Crashed() = false")
	}
	if _, err := d.Append("wal", []byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append while crashed: %v", err)
	}
	d.Recover()
	sz, _ := d.Size("wal")
	if sz != 8 {
		t.Fatalf("post-crash size = %d, want 8 (synced prefix only)", sz)
	}
	buf := make([]byte, 8)
	d.ReadAt("wal", 0, buf)
	if string(buf) != "durable!" {
		t.Fatalf("synced data corrupted: %q", buf)
	}
}

func TestCrashedOperationsFail(t *testing.T) {
	d := New(Zero())
	d.Append("f", []byte("x"))
	d.Crash()
	if err := d.Create("g"); !errors.Is(err, ErrCrashed) {
		t.Errorf("create: %v", err)
	}
	if err := d.ReadAt("f", 0, make([]byte, 1)); !errors.Is(err, ErrCrashed) {
		t.Errorf("read: %v", err)
	}
	if _, err := d.Size("f"); !errors.Is(err, ErrCrashed) {
		t.Errorf("size: %v", err)
	}
	if err := d.Sync("f"); !errors.Is(err, ErrCrashed) {
		t.Errorf("sync: %v", err)
	}
	if err := d.Delete("f"); !errors.Is(err, ErrCrashed) {
		t.Errorf("delete: %v", err)
	}
}

func TestDeleteAndList(t *testing.T) {
	d := New(Zero())
	d.Append("a", []byte("1"))
	d.Append("b", []byte("2"))
	if got := d.List(); len(got) != 2 {
		t.Fatalf("list = %v", got)
	}
	if err := d.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete("a"); err != nil {
		t.Fatal("double delete should be a no-op")
	}
	if got := d.List(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("list after delete = %v", got)
	}
}

func TestConcurrentAppendsDisjointFiles(t *testing.T) {
	d := New(Zero())
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w))
			for i := 0; i < per; i++ {
				if _, err := d.Append(name, []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		sz, _ := d.Size(string(rune('a' + w)))
		if sz != per {
			t.Fatalf("file %c size = %d", 'a'+w, sz)
		}
	}
}

// Property: sync watermark semantics — after any sequence of (append, sync?)
// steps and a crash, exactly the prefix up to the last sync survives.
func TestSyncWatermarkProperty(t *testing.T) {
	f := func(steps []bool) bool {
		d := New(Zero())
		want := 0
		total := 0
		for _, doSync := range steps {
			d.Append("f", []byte("abcd"))
			total += 4
			if doSync {
				d.Sync("f")
				want = total
			}
		}
		d.Crash()
		d.Recover()
		sz, err := d.Size("f")
		if len(steps) == 0 {
			return errors.Is(err, ErrNotFound)
		}
		return err == nil && int(sz) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyModelOrdering(t *testing.T) {
	m := NVMe()
	if m.ReadCost(64) <= 0 || m.WriteCost(64) <= m.ReadCost(64)-m.ReadCost(0) {
		t.Error("NVMe model degenerate")
	}
	if m.ReadCost(8192) <= m.ReadCost(64) {
		t.Error("cost should grow with size")
	}
	if m.SyncCost <= m.WriteCost(64) {
		t.Error("sync should dominate a small write")
	}
}

func TestLatencyInjectionApplies(t *testing.T) {
	prev := simclock.Enable(true)
	defer simclock.Enable(prev)
	d := New(LatencyModel{WriteBase: 2 * time.Millisecond, SyncCost: 2 * time.Millisecond})
	start := time.Now()
	d.Append("f", []byte("x"))
	d.Sync("f")
	if el := time.Since(start); el < 4*time.Millisecond {
		t.Fatalf("latency not injected: %v", el)
	}
}

func TestStats(t *testing.T) {
	d := New(Zero())
	d.Append("f", bytes.Repeat([]byte("x"), 10))
	d.ReadAt("f", 0, make([]byte, 5))
	d.Sync("f")
	st := d.Stats()
	if st.Writes != 1 || st.Reads != 1 || st.Syncs != 1 || st.BytesWritten != 10 || st.BytesRead != 5 {
		t.Fatalf("stats = %+v", st)
	}
}
