// Package qos implements the building blocks of FlexLog's multi-tenant
// quality of service (ROADMAP item 4, DESIGN.md §13): the tenant
// configuration shared by the deploy manifest, the cluster builder and the
// replicas, and per-tenant token-bucket admission control at the replica
// ingress. Scheduling fairness itself lives in the transport lanes
// (transport.LaneQoS); this package decides what is admitted at all.
package qos

import (
	"sync"
	"time"

	"flexlog/internal/types"
)

// TenantConfig declares one tenant's QoS envelope.
type TenantConfig struct {
	// ID is the tenant identity carried in append/read requests.
	ID types.TenantID
	// Weight is the tenant's weighted-fair scheduling share across the
	// replica service lanes (messages per DRR round). 0 means 1.
	Weight uint32
	// Rate is the admitted append throughput in records per second; 0
	// disables admission control for the tenant (unlimited).
	Rate float64
	// Burst is the token-bucket depth in records; 0 defaults to one
	// second's worth of Rate (min 1).
	Burst float64
	// Colors lists the log regions this tenant owns, used to attribute
	// ordering-layer work (sequencer stats) to tenants without widening
	// the order-request wire messages. Optional; colors not claimed by
	// any tenant attribute to the default tenant.
	Colors []types.ColorID
}

// Weights extracts the transport-lane weight map from a tenant list.
func Weights(tenants []TenantConfig) map[types.TenantID]uint32 {
	if len(tenants) == 0 {
		return nil
	}
	m := make(map[types.TenantID]uint32, len(tenants))
	for _, t := range tenants {
		w := t.Weight
		if w == 0 {
			w = 1
		}
		m[t.ID] = w
	}
	return m
}

// ColorMap inverts the tenant declarations into a color→tenant lookup for
// the ordering layer. Nil when no tenant claims a color.
func ColorMap(tenants []TenantConfig) map[types.ColorID]types.TenantID {
	var m map[types.ColorID]types.TenantID
	for _, t := range tenants {
		for _, c := range t.Colors {
			if m == nil {
				m = make(map[types.ColorID]types.TenantID)
			}
			m[c] = t.ID
		}
	}
	return m
}

// TokenBucket is a thread-safe token bucket with float refill, so
// fractional per-request costs and sub-second windows accumulate exactly.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket depth
	tokens float64
	last   time.Time
}

// NewTokenBucket returns a full bucket refilling at rate tokens/second up
// to burst.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}
}

// Take attempts to remove n tokens at time now. On success it returns
// (true, 0); on failure the bucket is untouched and the returned duration
// is the time until n tokens will have refilled — the retry-after hint a
// throttled client should honor.
func (b *TokenBucket) Take(n float64, now time.Time) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.last = now
	}
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += dt.Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	need := n - b.tokens
	if need > b.burst {
		need = b.burst // a request larger than the bucket can ever hold
	}
	wait := time.Duration(need / b.rate * float64(time.Second))
	if wait <= 0 {
		wait = time.Microsecond
	}
	return false, wait
}

// Admission is per-tenant token-bucket admission control. Tenants without
// a configured rate — including the default tenant 0 — are always
// admitted; admission bounds only the tenants an operator declared limits
// for.
type Admission struct {
	buckets map[types.TenantID]*TokenBucket // built once, read-only after
}

// NewAdmission builds admission state from the tenant declarations.
// Returns nil when no tenant declares a rate, so callers can gate the
// ingress check on a nil receiver.
func NewAdmission(tenants []TenantConfig) *Admission {
	var buckets map[types.TenantID]*TokenBucket
	for _, t := range tenants {
		if t.Rate <= 0 {
			continue
		}
		burst := t.Burst
		if burst <= 0 {
			burst = t.Rate
		}
		if buckets == nil {
			buckets = make(map[types.TenantID]*TokenBucket)
		}
		buckets[t.ID] = NewTokenBucket(t.Rate, burst)
	}
	if buckets == nil {
		return nil
	}
	return &Admission{buckets: buckets}
}

// Admit charges n records against the tenant's bucket. ok=false comes
// with the retry-after hint. A nil receiver or an unconfigured tenant
// admits everything.
func (a *Admission) Admit(t types.TenantID, n int, now time.Time) (bool, time.Duration) {
	if a == nil {
		return true, 0
	}
	b := a.buckets[t]
	if b == nil {
		return true, 0
	}
	return b.Take(float64(n), now)
}
