package histcheck

import (
	"strings"
	"testing"
	"time"

	"flexlog/internal/types"
)

func rec(sn types.SN, data string) types.Record {
	return types.Record{SN: sn, Data: []byte(data)}
}

// hasProp reports whether a violation with the given property slug exists.
func hasProp(vs []Violation, prop string) bool {
	for _, v := range vs {
		if v.Prop == prop {
			return true
		}
	}
	return false
}

func TestCleanHistoryPasses(t *testing.T) {
	r := NewRecorder()
	a1 := r.BeginAppend(0, []byte("x1"))
	a1.Ack(types.SN(5))
	a2 := r.BeginAppend(0, []byte("x2"))
	a2.Ack(types.SN(6))
	rd := r.BeginRead(0, types.SN(5))
	rd.ReadOK([]byte("x1"))
	final := FinalState{Logs: map[types.ColorID][]types.Record{
		0: {rec(5, "x1"), rec(6, "x2")},
	}}
	if vs := Check(r.Ops(), final); len(vs) != 0 {
		t.Fatalf("clean history produced violations: %v", vs)
	}
}

func TestDuplicateSNCaught(t *testing.T) {
	r := NewRecorder()
	r.BeginAppend(0, []byte("a")).Ack(types.SN(5))
	r.BeginAppend(0, []byte("b")).Ack(types.SN(5))
	final := FinalState{Logs: map[types.ColorID][]types.Record{0: {rec(5, "a")}}}
	vs := Check(r.Ops(), final)
	if !hasProp(vs, "unique-sn") {
		t.Fatalf("duplicate SN not caught: %v", vs)
	}
}

func TestLostAckedAppendCaught(t *testing.T) {
	r := NewRecorder()
	r.BeginAppend(0, []byte("kept")).Ack(types.SN(5))
	r.BeginAppend(0, []byte("lost")).Ack(types.SN(6))
	final := FinalState{Logs: map[types.ColorID][]types.Record{0: {rec(5, "kept")}}}
	vs := Check(r.Ops(), final)
	if !hasProp(vs, "durability") {
		t.Fatalf("lost acked append not caught: %v", vs)
	}
}

func TestUnackedAppendMayOrMayNotSurvive(t *testing.T) {
	r := NewRecorder()
	r.BeginAppend(0, []byte("timed-out")).Fail()
	// Absent: fine.
	if vs := Check(r.Ops(), FinalState{Logs: map[types.ColorID][]types.Record{0: nil}}); len(vs) != 0 {
		t.Fatalf("absent unacked append flagged: %v", vs)
	}
	// Present: also fine (commit raced the timeout).
	final := FinalState{Logs: map[types.ColorID][]types.Record{0: {rec(9, "timed-out")}}}
	if vs := Check(r.Ops(), final); len(vs) != 0 {
		t.Fatalf("surviving unacked append flagged: %v", vs)
	}
}

func TestCorruptReadCaught(t *testing.T) {
	r := NewRecorder()
	r.BeginAppend(0, []byte("real")).Ack(types.SN(5))
	r.BeginRead(0, types.SN(5)).ReadOK([]byte("bogus"))
	final := FinalState{Logs: map[types.ColorID][]types.Record{0: {rec(5, "real")}}}
	vs := Check(r.Ops(), final)
	if !hasProp(vs, "read-integrity") {
		t.Fatalf("corrupt read not caught: %v", vs)
	}
}

func TestStaleNotFoundCaught(t *testing.T) {
	r := NewRecorder()
	a := r.BeginAppend(0, []byte("v"))
	a.Ack(types.SN(5))
	time.Sleep(time.Millisecond) // the read strictly follows the ack
	r.BeginRead(0, types.SN(5)).ReadNotFound()
	final := FinalState{Logs: map[types.ColorID][]types.Record{0: {rec(5, "v")}}}
	vs := Check(r.Ops(), final)
	if !hasProp(vs, "read-linearizability") {
		t.Fatalf("stale ⊥ read not caught: %v", vs)
	}
}

func TestNotFoundLegalWhenTrimCovers(t *testing.T) {
	r := NewRecorder()
	a := r.BeginAppend(0, []byte("v"))
	a.Ack(types.SN(5))
	tr := r.BeginTrim(0, types.SN(5))
	tr.Ack(types.InvalidSN)
	time.Sleep(time.Millisecond)
	r.BeginRead(0, types.SN(5)).ReadNotFound()
	final := FinalState{Logs: map[types.ColorID][]types.Record{0: nil}}
	if vs := Check(r.Ops(), final); len(vs) != 0 {
		t.Fatalf("trim-covered ⊥ read flagged: %v", vs)
	}
}

func TestResurrectionAfterAckedTrimCaught(t *testing.T) {
	r := NewRecorder()
	r.BeginAppend(0, []byte("old")).Ack(types.SN(3))
	r.BeginTrim(0, types.SN(4)).Ack(types.InvalidSN)
	final := FinalState{Logs: map[types.ColorID][]types.Record{0: {rec(3, "old")}}}
	vs := Check(r.Ops(), final)
	if !hasProp(vs, "trim") {
		t.Fatalf("resurrected trimmed record not caught: %v", vs)
	}
}

func TestIndeterminateTrimAllowsEither(t *testing.T) {
	r := NewRecorder()
	r.BeginAppend(0, []byte("maybe")).Ack(types.SN(3))
	r.BeginTrim(0, types.SN(4)).Fail() // timed out: may have applied
	// Record gone: fine.
	if vs := Check(r.Ops(), FinalState{Logs: map[types.ColorID][]types.Record{0: nil}}); len(vs) != 0 {
		t.Fatalf("indeterminate trim removal flagged: %v", vs)
	}
	// Record kept: also fine.
	final := FinalState{Logs: map[types.ColorID][]types.Record{0: {rec(3, "maybe")}}}
	if vs := Check(r.Ops(), final); len(vs) != 0 {
		t.Fatalf("indeterminate trim survival flagged: %v", vs)
	}
}

func TestMultiAtomicityCaught(t *testing.T) {
	r := NewRecorder()
	m := r.BeginMulti([]types.ColorID{1, 2}, [][]byte{[]byte("m1"), []byte("m2")})
	m.Ack(types.InvalidSN)
	// Only color 1 got its record.
	final := FinalState{Logs: map[types.ColorID][]types.Record{
		1: {rec(7, "m1")},
		2: nil,
	}}
	vs := Check(r.Ops(), final)
	if !hasProp(vs, "multi-atomicity") {
		t.Fatalf("partial multi-append not caught: %v", vs)
	}

	// Unacked partial visibility is also a violation.
	r2 := NewRecorder()
	r2.BeginMulti([]types.ColorID{1, 2}, [][]byte{[]byte("m1"), []byte("m2")}).Fail()
	vs2 := Check(r2.Ops(), final)
	if !hasProp(vs2, "multi-atomicity") {
		t.Fatalf("unacked partial multi-append not caught: %v", vs2)
	}

	// All-or-nothing outcomes pass.
	both := FinalState{Logs: map[types.ColorID][]types.Record{
		1: {rec(7, "m1")}, 2: {rec(9, "m2")},
	}}
	if vs := Check(r2.Ops(), both); len(vs) != 0 {
		t.Fatalf("fully visible unacked multi flagged: %v", vs)
	}
	neither := FinalState{Logs: map[types.ColorID][]types.Record{1: nil, 2: nil}}
	if vs := Check(r2.Ops(), neither); len(vs) != 0 {
		t.Fatalf("fully invisible unacked multi flagged: %v", vs)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Prop: "durability", Op: 3, Msg: "gone"}
	if !strings.Contains(v.String(), "durability") || !strings.Contains(v.String(), "op 3") {
		t.Fatalf("unexpected rendering %q", v.String())
	}
}
